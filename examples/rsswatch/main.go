// Command rsswatch monitors RSS feeds — the application the paper
// reports actively testing. A community portal's feed churns (entries
// added, modified, removed); a subscription watches for additions and
// publishes them both as a channel and as e-mail notifications.
package main

import (
	"fmt"
	"log"

	"p2pm"
	"p2pm/internal/workload"
)

func main() {
	sys := p2pm.MustSystem(p2pm.DefaultConfig())
	monitor := sys.MustAddPeer("monitor")
	portal := sys.MustAddPeer("portal.com")

	churn := workload.NewFeedChurn(42, "community news", 5)
	portal.RegisterFeed("http://portal.com/feed", churn.Fetch())

	task, err := monitor.Subscribe(`
for $r in rssCOM(<p>portal.com</p>)
where $r.change = "add"
return <fresh feed="{$r.feed}" entry="{$r.entryId}"/>
by publish as channel "freshEntries" and email "editors@portal.com"`)
	if err != nil {
		log.Fatal(err)
	}

	// Let the feed churn, polling after every mutation so each change is
	// observed as a distinct snapshot delta.
	adds := 0
	for round := 0; round < 30; round++ {
		if churn.Step() == "add" {
			adds++
		}
		if _, err := sys.Poll(); err != nil {
			log.Fatal(err)
		}
	}
	task.Stop()

	results := task.Results().Drain()
	fmt.Printf("feed mutations produced %d additions; %d alerts published:\n", adds, len(results))
	for _, it := range results {
		fmt.Printf("  %s\n", it.Tree)
	}
	fmt.Printf("\nfirst e-mail notification:\n%s\n", firstMail(task))
	if len(results) != adds {
		log.Fatalf("expected %d alerts, got %d", adds, len(results))
	}
}

func firstMail(task *p2pm.Task) string {
	mail := task.Mailbox.String()
	if len(mail) > 400 {
		mail = mail[:400] + "..."
	}
	return mail
}
