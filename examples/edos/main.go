// Command edos monitors a simulated Edos content-distribution network
// (the Mandriva Linux package-sharing system that motivated the paper):
// mirrors serve package downloads and metadata queries; monitoring
// subscriptions gather usage statistics — per-mirror query rates — the
// primary use the paper reports for Edos.
package main

import (
	"fmt"
	"log"
	"sort"

	"p2pm"
	"p2pm/internal/workload"
)

func main() {
	sys := p2pm.MustSystem(p2pm.DefaultConfig())
	noc := sys.MustAddPeer("noc") // network operations center

	cfg := workload.DefaultEdos()
	cfg.Downloads, cfg.Queries = 200, 100
	edos, err := workload.SetupEdos(sys, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Two statistics subscriptions: downloads and metadata queries. Note
	// that both monitor the same inCOM alerters — the second subscription
	// reuses the first one's alerter streams (Section 5).
	downloads, err := noc.Subscribe(edos.StatsSubscription("GetPackage"))
	if err != nil {
		log.Fatal(err)
	}
	queries, err := noc.Subscribe(edos.StatsSubscription("QueryMetadata"))
	if err != nil {
		log.Fatal(err)
	}
	if queries.Reuse != nil {
		fmt.Printf("second subscription reused %d stream(s) from the first\n\n",
			len(queries.Reuse.Mappings))
	}

	nd, nq, err := edos.Run()
	if err != nil {
		log.Fatal(err)
	}
	downloads.Stop()
	queries.Stop()

	perMirror := map[string]int{}
	for _, it := range downloads.Results().Drain() {
		perMirror[it.Tree.AttrOr("mirror", "?")]++
	}
	queryPerMirror := map[string]int{}
	for _, it := range queries.Results().Drain() {
		queryPerMirror[it.Tree.AttrOr("mirror", "?")]++
	}

	fmt.Printf("drove %d downloads and %d metadata queries\n\n", nd, nq)
	fmt.Println("mirror                     downloads  queries")
	mirrors := edos.Mirrors()
	sort.Strings(mirrors)
	totalD, totalQ := 0, 0
	for _, m := range mirrors {
		url := "http://" + m
		fmt.Printf("%-26s %9d  %7d\n", m, perMirror[url], queryPerMirror[url])
		totalD += perMirror[url]
		totalQ += queryPerMirror[url]
	}
	fmt.Printf("%-26s %9d  %7d\n", "total", totalD, totalQ)
	if totalD != nd || totalQ != nq {
		log.Fatalf("monitoring lost events: %d/%d downloads, %d/%d queries", totalD, nd, totalQ, nq)
	}
}
