// Command meteoqos runs the paper's running example end to end (Figures
// 1–4): the monitor office of meteo.com detects answers slower than 10
// seconds served to clients a.com and b.com. It prints the processing
// chain (subscription → compiled plan → optimized distributed plan) and
// then the detected incidents.
package main

import (
	"fmt"
	"log"

	"p2pm"
	"p2pm/internal/peer"
	"p2pm/internal/workload"
)

func main() {
	cfg := workload.DefaultMeteo()
	sub := workload.MeteoSubscription(cfg.Clients, cfg.Server)

	// Show the Figure 3 processing chain before running anything.
	explained, err := p2pm.Explain(sub, "p")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(explained)

	sys := peer.MustSystem(peer.DefaultConfig())
	manager := sys.MustAddPeer("p")
	if err := workload.SetupMeteo(sys, cfg); err != nil {
		log.Fatal(err)
	}
	task, err := manager.Subscribe(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Deployed stream identities ==")
	for node, ref := range task.StreamRefs() {
		fmt.Printf("  %-40s -> %s\n", node.Label(), ref)
	}

	slow, err := workload.RunMeteo(sys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	task.Stop()

	incidents := task.Results().Drain()
	fmt.Printf("\n== Incidents (channel %s) ==\n", task.ResultChannel())
	for _, it := range incidents {
		fmt.Printf("  %s\n", it.Tree)
	}
	fmt.Printf("\n%d calls driven, %d slow, %d incidents detected\n", cfg.Calls, slow, len(incidents))
	tot := sys.Net.Totals()
	fmt.Printf("network: %d messages, %d bytes across %d links\n", tot.Messages, tot.Bytes, tot.Links)
	if len(incidents) != slow {
		log.Fatalf("expected %d incidents, got %d", slow, len(incidents))
	}
}
