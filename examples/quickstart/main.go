// Command quickstart is the smallest useful P2PM program: monitor the
// inbound calls of one Web service and print an alert stream.
package main

import (
	"fmt"
	"log"
	"time"

	"p2pm"
	"p2pm/internal/xmltree"
)

func main() {
	sys := p2pm.MustSystem(p2pm.DefaultConfig())

	// The monitoring peer (runs the Subscription Manager) and a service
	// peer being monitored.
	monitor := sys.MustAddPeer("monitor")
	server := sys.MustAddPeer("svc.example")
	server.Endpoint().Register("Greet",
		func(params *xmltree.Node) (*xmltree.Node, error) {
			return xmltree.ElemText("greeting", "hello "+params.InnerText()), nil
		},
		func() time.Duration { return 80 * time.Millisecond })
	client := sys.MustAddPeer("client.example")

	// A P2PML subscription: watch Greet calls arriving at svc.example.
	task, err := monitor.Subscribe(`
for $c in inCOM(<p>svc.example</p>)
where $c.callMethod = "Greet"
return <call id="{$c.callId}" from="{$c.caller}"/>
by publish as channel "greetCalls"`)
	if err != nil {
		log.Fatal(err)
	}

	// Drive some traffic.
	for _, name := range []string{"ada", "alan", "grace"} {
		if _, err := client.Endpoint().Invoke("svc.example", "Greet", xmltree.Text(name)); err != nil {
			log.Fatal(err)
		}
		sys.Net.Clock().Advance(time.Second)
	}

	// Stop the task (sources emit eos) and read the result stream.
	task.Stop()
	fmt.Println("monitoring results on channel", task.ResultChannel(), ":")
	for _, item := range task.Results().Drain() {
		fmt.Printf("  t=%-6s %s\n", item.Time, item.Tree)
	}
}
