// Command workflows follows BPEL-style telecom workflow instances across
// Web services — the paper's first motivating application ("follow the
// concurrent execution of large number of workflow instances in telecom
// services ... to detect malfunctions"). Each workflow issues a Provision
// call and later a Bill call carrying the same workflow identifier inside
// the SOAP payload; a join on that payload value pairs them up and flags
// workflows whose billing lags provisioning by more than a minute.
package main

import (
	"fmt"
	"log"
	"time"

	"p2pm"
	"p2pm/internal/xmltree"
)

func main() {
	sys := p2pm.MustSystem(p2pm.DefaultConfig())
	noc := sys.MustAddPeer("noc")
	orch := sys.MustAddPeer("orchestrator")
	svc := sys.MustAddPeer("svc.telecom")
	for _, m := range []string{"Provision", "Bill"} {
		method := m
		svc.Endpoint().Register(method, func(params *xmltree.Node) (*xmltree.Node, error) {
			out := xmltree.Elem("ok")
			out.SetAttr("wf", params.AttrOr("wf", ""))
			return out, nil
		}, nil)
	}

	// The join key lives inside the SOAP envelope: the wf attribute of
	// the request payload. Dot notation reaches only root attributes;
	// payload values need tree-pattern navigation.
	task, err := noc.Subscribe(`
for $p in outCOM(<p>orchestrator</p>),
    $b in outCOM(<p>orchestrator</p>)
let $lag := $b.callTimestamp - $p.responseTimestamp
where $p.callMethod = "Provision" and
      $b.callMethod = "Bill" and
      $p/alert/Envelope/Body/Provision/req/@wf = $b/alert/Envelope/Body/Bill/req/@wf and
      $lag > 60
return <slowBilling wf="{$p/alert/Envelope/Body/Provision/req/@wf}" lag="{$lag}"/>
by publish as channel "slowBilling"`)
	if err != nil {
		log.Fatal(err)
	}

	// Drive 6 workflows; workflows 2 and 4 bill late.
	lateBillers := map[int]bool{2: true, 4: true}
	for wf := 0; wf < 6; wf++ {
		req := xmltree.Elem("req")
		req.SetAttr("wf", fmt.Sprintf("wf-%d", wf))
		if _, err := orch.Endpoint().Invoke("svc.telecom", "Provision", req); err != nil {
			log.Fatal(err)
		}
		if lateBillers[wf] {
			sys.Net.Clock().Advance(5 * time.Minute)
		} else {
			sys.Net.Clock().Advance(10 * time.Second)
		}
		if _, err := orch.Endpoint().Invoke("svc.telecom", "Bill", req.Clone()); err != nil {
			log.Fatal(err)
		}
		sys.Net.Clock().Advance(10 * time.Second)
	}
	task.Stop()

	results := task.Results().Drain()
	fmt.Printf("%d slow-billing workflows detected:\n", len(results))
	for _, it := range results {
		fmt.Printf("  %s\n", it.Tree)
	}
	if len(results) != len(lateBillers) {
		log.Fatalf("expected %d detections, got %d", len(lateBillers), len(results))
	}
}
