package p2pm_test

import (
	"strings"
	"testing"
	"time"

	"p2pm"
	"p2pm/internal/xmltree"
)

// TestPublicAPIQuickstart exercises the documented public surface the way
// a downstream user would.
func TestPublicAPIQuickstart(t *testing.T) {
	sys := p2pm.MustSystem(p2pm.DefaultConfig())
	mgr := sys.MustAddPeer("monitor")
	server := sys.MustAddPeer("svc.example")
	server.Endpoint().Register("Echo", func(params *xmltree.Node) (*xmltree.Node, error) {
		return params.Clone(), nil
	}, func() time.Duration { return 50 * time.Millisecond })
	client := sys.MustAddPeer("client.example")

	task, err := mgr.Subscribe(`for $c in inCOM(<p>svc.example</p>)
where $c.callMethod = "Echo"
return <seen id="{$c.callId}"/>
by publish as channel "seen"`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Endpoint().Invoke("svc.example", "Echo", xmltree.ElemText("x", "hi")); err != nil {
			t.Fatal(err)
		}
	}
	task.Stop()
	if got := len(task.Results().Drain()); got != 3 {
		t.Errorf("results = %d", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := p2pm.Parse("not p2pml"); err == nil {
		t.Error("garbage accepted")
	}
	sub, err := p2pm.Parse(`for $x in inCOM(<p>m</p>) return $x by channel C`)
	if err != nil || len(sub.For) != 1 {
		t.Fatalf("sub=%v err=%v", sub, err)
	}
}

func TestExplainRendersAllStages(t *testing.T) {
	out, err := p2pm.Explain(`for $c1 in outCOM(<p>a.com</p><p>b.com</p>),
    $c2 in inCOM(<p>meteo.com</p>)
where $c1.callMethod = "GetTemperature" and $c1.callId = $c2.callId
return <m/> by publish as channel "x"`, "p")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"== Subscription (P2PML) ==",
		"== Compiled plan",
		"== Optimized plan",
		"⋈@meteo.com",
		"∪@b.com",
		"σ@a.com",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	if _, err := p2pm.Explain("garbage", "p"); err == nil {
		t.Error("garbage explained")
	}
}

func TestMonitorExplainIncludesReuse(t *testing.T) {
	mon := p2pm.MustMonitor(p2pm.DefaultConfig())
	mgr := mon.MustAddPeer("p")
	mon.MustAddPeer("m.com")
	sub := `for $e in inCOM(<p>m.com</p>) return $e by publish as channel "raw"`
	task, err := mgr.Subscribe(sub)
	if err != nil {
		t.Fatal(err)
	}
	defer task.Stop()
	out, err := mon.Explain(sub, "p")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== Stream reuse ==") {
		t.Errorf("reuse section missing:\n%s", out)
	}
	if out.Reuse == nil || len(out.Reuse.Mappings) == 0 {
		t.Error("expected reuse mappings against the deployed task")
	}
}
