module p2pm

go 1.23
