// Command p2pmlc is the P2PML compiler front end: it parses a
// subscription, prints its canonical form, and renders the Figure 3
// processing chain (compiled plan, optimized distributed plan).
//
// Usage:
//
//	p2pmlc -e 'for $c in inCOM(<p>m.com</p>) return $c by channel X'
//	p2pmlc subscription.p2pml
//	echo '...' | p2pmlc
//	p2pmlc -subscriber noc.example -e '...'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"p2pm/internal/core"
)

func main() {
	expr := flag.String("e", "", "subscription text (instead of a file/stdin)")
	subscriber := flag.String("subscriber", "p", "peer that manages the subscription")
	parseOnly := flag.Bool("parse", false, "stop after parsing (print canonical form only)")
	flag.Parse()

	src, err := input(*expr, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ex, err := core.Explain(src, *subscriber)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *parseOnly {
		fmt.Println(ex.Subscription.String())
		return
	}
	fmt.Println(ex.String())
}

func input(expr string, args []string) (string, error) {
	if expr != "" {
		return expr, nil
	}
	if len(args) == 1 {
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	if len(args) > 1 {
		return "", fmt.Errorf("p2pmlc: at most one input file")
	}
	b, err := io.ReadAll(os.Stdin)
	if err != nil {
		return "", err
	}
	if len(b) == 0 {
		return "", fmt.Errorf("p2pmlc: no input (use -e, a file, or stdin)")
	}
	return string(b), nil
}
