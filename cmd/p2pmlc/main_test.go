package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestInputFromFlag(t *testing.T) {
	got, err := input("for ...", nil)
	if err != nil || got != "for ..." {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestInputFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub.p2pml")
	if err := os.WriteFile(path, []byte("file contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := input("", []string{path})
	if err != nil || got != "file contents" {
		t.Fatalf("got %q err %v", got, err)
	}
	if _, err := input("", []string{path, path}); err == nil {
		t.Error("two files accepted")
	}
	if _, err := input("", []string{"/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
}
