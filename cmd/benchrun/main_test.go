package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, id := range []string{"F1", "C5", "X2"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("listing lacks %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-quick", "-exp", "F2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "claim shape: HOLDS") {
		t.Errorf("output lacks verdict:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "Z99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %s", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
