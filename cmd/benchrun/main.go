// Command benchrun regenerates the repository's experiment tables: the
// paper's Figures 1–7 as runnable scenarios (F1–F7) and every prose
// performance claim as a measured comparison (C1–C11). See DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	benchrun            # run everything at full scale
//	benchrun -quick     # CI-sized runs
//	benchrun -exp C5    # one experiment
//	benchrun -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p2pm/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	exp := flag.String("exp", "", "run a single experiment by id (e.g. C5)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	runners := experiments.All()
	if *exp != "" {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	failures := 0
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", r.ID, err)
			failures++
			continue
		}
		fmt.Println(res)
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if !res.Holds {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed to reproduce their claim shape\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiment claim shapes reproduced")
}
