// Command benchrun regenerates the repository's experiment tables: the
// paper's Figures 1–7 as runnable scenarios (F1–F7), every prose
// performance claim as a measured comparison (C1–C11), and the
// extensions (X*). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	benchrun            # run everything at full scale
//	benchrun -quick     # CI-sized runs
//	benchrun -exp C5    # one experiment
//	benchrun -list      # list experiment ids
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"p2pm/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given flags and streams; it
// returns the process exit code (separated from main for testing).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run reduced-size experiments")
	exp := fs.String("exp", "", "run a single experiment by id (e.g. C5)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", r.ID, r.Name)
		}
		return 0
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	runners := experiments.All()
	if *exp != "" {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; try -list\n", *exp)
			return 2
		}
		runners = []experiments.Runner{r}
	}

	failures := 0
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(stderr, "%s: error: %v\n", r.ID, err)
			failures++
			continue
		}
		fmt.Fprintln(stdout, res)
		fmt.Fprintf(stdout, "(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if !res.Holds {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) failed to reproduce their claim shape\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "all experiment claim shapes reproduced")
	return 0
}
