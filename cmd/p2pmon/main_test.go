package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRSSScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "rss"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "deployed plan:") || !strings.Contains(s, "results on feedChanges@manager") {
		t.Errorf("unexpected report:\n%s", s)
	}
}

func TestChurnScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "churn"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "completeness") || !strings.Contains(s, "repaired:") {
		t.Errorf("churn report incomplete:\n%s", s)
	}
}

func TestChurnReplayScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "churn", "-replay"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "completeness 100%") || !strings.Contains(s, "replayed:") {
		t.Errorf("replay churn report not lossless:\n%s", s)
	}
}

func TestReplayFlagOutsideChurnRejected(t *testing.T) {
	if err := run([]string{"-scenario", "rss", "-replay"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-replay accepted outside the churn scenario")
	}
}

func TestChurnLeaveScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "churn", "-replay", "-crash-every", "0", "-leave-every", "15"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "completeness 100%") || !strings.Contains(s, "graceful departures") {
		t.Errorf("leave churn report incomplete:\n%s", s)
	}
}

func TestAggScenarioTreeAndFlat(t *testing.T) {
	for _, mode := range []string{"tree", "flat"} {
		var out bytes.Buffer
		if err := run([]string{"-scenario", "agg", "-agg", mode, "-events", "48"}, &out); err != nil {
			t.Fatal(err)
		}
		s := out.String()
		if !strings.Contains(s, "windowed-group completeness 100%") || !strings.Contains(s, "max versus mean") {
			t.Errorf("agg %s report incomplete:\n%s", mode, s)
		}
		if mode == "tree" && !strings.Contains(s, "γm!") {
			t.Errorf("tree plan missing a Final merge root:\n%s", s)
		}
		if mode == "flat" && !strings.Contains(s, "γ[") {
			t.Errorf("flat plan missing the Group operator:\n%s", s)
		}
	}
}

func TestAggSketchScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "agg", "-agg", "tree", "-agg-fn", "distinct", "-users", "50", "-events", "48"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fn distinct") || !strings.Contains(s, "windowed-group completeness 100%") {
		t.Errorf("sketch run incomplete:\n%s", s)
	}
	if !strings.Contains(s, "sketch accuracy: max rel err") {
		t.Errorf("sketch run missing the accuracy line:\n%s", s)
	}
	if err := run([]string{"-scenario", "agg", "-agg-fn", "median"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown -agg-fn accepted")
	}
	if err := run([]string{"-scenario", "churn", "-agg-fn", "distinct"}, &bytes.Buffer{}); err == nil {
		t.Error("-agg-fn accepted outside the agg scenario")
	}
}

func TestAggChurnScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "agg", "-agg", "tree", "-agg-degree", "3", "-replay", "-crash-every", "20", "-leave-every", "17"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "windowed-group completeness 100%") {
		t.Errorf("agg churn run not lossless:\n%s", s)
	}
}

func TestAggFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-scenario", "agg", "-agg", "pyramid"},
		{"-scenario", "agg", "-agg-degree", "1"},
		{"-scenario", "agg", "-agg-degree", "-2"},
		{"-scenario", "agg", "-partition-home", "5"},
		{"-scenario", "agg", "-spread"},
		{"-scenario", "churn", "-agg", "tree"},
		{"-scenario", "churn", "-agg-degree", "4"},
		{"-scenario", "rss", "-agg", "tree"},
		{"-scenario", "rss", "-leave-every", "5"},
	}
	for _, args := range bad {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("accepted: %v", args)
		}
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestCustomSubscriptionFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub.p2pml")
	src := `for $r in rssCOM(<p>portal.com</p>) return $r by publish as channel "mine"`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-scenario", "rss", "-sub", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `channel "mine"`) {
		t.Errorf("custom subscription not used:\n%s", out.String())
	}
	if err := run([]string{"-scenario", "rss", "-sub", "/nonexistent"}, &bytes.Buffer{}); err == nil {
		t.Error("missing sub file accepted")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestSubcommandForm: `p2pmon <scenario> [flags]` routes to the same
// runner as the legacy -scenario spelling.
func TestSubcommandForm(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"rss"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "results on feedChanges@manager") {
		t.Errorf("unexpected report:\n%s", out.String())
	}
	if err := run([]string{"nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"churn", "-agg", "tree"}, &bytes.Buffer{}); err == nil {
		t.Error("foreign flag accepted by the churn subcommand")
	}
}

// TestLegacyScenarioEquals: the -scenario=name spelling still works.
func TestLegacyScenarioEquals(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario=rss"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "feedChanges@manager") {
		t.Errorf("unexpected report:\n%s", out.String())
	}
	if err := run([]string{"-scenario"}, &bytes.Buffer{}); err == nil {
		t.Error("-scenario without a value accepted")
	}
}

// TestScenarioScopedHelp: `p2pmon <scenario> -h` is help, not an error.
func TestScenarioScopedHelp(t *testing.T) {
	if err := run([]string{"agg", "-h"}, &bytes.Buffer{}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("scoped help returned %v, want flag.ErrHelp", err)
	}
	if err := run([]string{"-h"}, &bytes.Buffer{}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("top-level help returned %v, want flag.ErrHelp", err)
	}
}

// TestAdaptScenario: the X6 lab as a subcommand — compare mode runs all
// three deployments and gates adaptive against static.
func TestAdaptScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"adapt"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"flat:", "static:", "adaptive:", "byte-identical true",
		"adaptive beats static: zero false kills"} {
		if !strings.Contains(s, want) {
			t.Errorf("compare report missing %q:\n%s", want, s)
		}
	}
	out.Reset()
	if err := run([]string{"adapt", "-mode", "static"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "static:") || strings.Contains(out.String(), "adaptive:") {
		t.Errorf("single-mode run leaked other modes:\n%s", out.String())
	}
	if err := run([]string{"adapt", "-mode", "chaotic"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown adapt mode accepted")
	}
	if err := run([]string{"adapt", "-replay"}, &bytes.Buffer{}); err == nil {
		t.Error("foreign flag accepted by the adapt subcommand")
	}
}

func TestChurnGossipScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "churn", "-replay", "-detector", "gossip"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "detector gossip") || !strings.Contains(s, "completeness 100%") {
		t.Errorf("gossip churn report not lossless:\n%s", s)
	}
}

func TestChurnPartitionHomeScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "churn", "-replay", "-detector", "gossip",
		"-events", "40", "-crash-every", "12", "-partition-home", "5"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "monitor peer partitioned away after 5 events") ||
		!strings.Contains(s, "completeness 100%") {
		t.Errorf("partition-home gossip run not lossless:\n%s", s)
	}
}

func TestChurnBadDetectorRejected(t *testing.T) {
	if err := run([]string{"-scenario", "churn", "-detector", "psychic"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown detector mode accepted")
	}
}

func TestDetectorFlagOutsideChurnRejected(t *testing.T) {
	if err := run([]string{"-scenario", "rss", "-detector", "gossip"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-detector accepted outside the churn scenario")
	}
}

func TestChurnElasticGrowScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "churn", "-replay", "-detector", "gossip",
		"-grow", "8", "-join-every", "10", "-events", "60", "-spread"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "growing from 4 to 8 workers") ||
		!strings.Contains(s, "joins: 4 workers admitted at runtime") {
		t.Errorf("elastic growth not reported:\n%s", s)
	}
	if !strings.Contains(s, "completeness 100%") {
		t.Errorf("elastic growth run not lossless:\n%s", s)
	}
	if !strings.Contains(s, "DHT spreading") {
		t.Errorf("-spread not reported:\n%s", s)
	}
}

func TestShareScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "share", "-subs", "8", "-leave-every", "24"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// Both modes must answer every subscription byte-identically, and the
	// reuse pass's discovery must never have degraded to fresh deployment.
	if strings.Count(s, "byte-identical 8/8 subs") != 2 {
		t.Errorf("share run not byte-identical in both modes:\n%s", s)
	}
	if !strings.Contains(s, "(0 failed)") || !strings.Contains(s, "fewer operators") {
		t.Errorf("share report incomplete:\n%s", s)
	}
	if !strings.Contains(s, "churn (shared run):") || strings.Contains(s, "leaves 0,") {
		t.Errorf("graceful leave not reported:\n%s", s)
	}
}

func TestShareFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-scenario", "agg", "-subs", "8"},
		{"-scenario", "share", "-agg", "tree"},
		{"-scenario", "share", "-spread"},
		{"-scenario", "share", "-partition-home", "5"},
		{"-scenario", "share", "-no-reuse"},
		{"-scenario", "share", "-join-every", "5"},
		{"-scenario", "share", "-grow", "2"},
	}
	for _, args := range bad {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("accepted: %v", args)
		}
	}
}

func TestGrowFlagValidation(t *testing.T) {
	if err := run([]string{"-scenario", "churn", "-grow", "3"}, &bytes.Buffer{}); err == nil {
		t.Error("-grow below the starting pool accepted")
	}
	if err := run([]string{"-scenario", "churn", "-join-every", "5"}, &bytes.Buffer{}); err == nil {
		t.Error("-join-every without -grow accepted")
	}
	if err := run([]string{"-scenario", "rss", "-grow", "8"}, &bytes.Buffer{}); err == nil {
		t.Error("-grow accepted outside the churn scenario")
	}
	if err := run([]string{"-scenario", "rss", "-spread"}, &bytes.Buffer{}); err == nil {
		t.Error("-spread accepted outside the churn scenario")
	}
}
