// Command p2pmon runs a P2PM monitoring scenario on a simulated P2P
// network and streams the results to stdout.
//
// Each scenario is a subcommand with its own flag set — `p2pmon
// <scenario> -h` shows only the flags that scenario takes:
//
//	p2pmon meteo                # the paper's Figure 1 running example
//	p2pmon telecom              # workflow surveillance
//	p2pmon edos                 # content-distribution statistics
//	p2pmon rss                  # feed monitoring
//	p2pmon churn                # self-healing under relay crashes
//	p2pmon churn -replay                  # lossless failover (replay + checkpoints)
//	p2pmon churn -detector gossip         # SWIM-style decentralized detection
//	p2pmon churn -replay -detector gossip -events 600 -crash-every 8   # soak
//	p2pmon churn -replay -detector gossip -partition-home 10           # survivability
//	p2pmon churn -replay -detector gossip -grow 10 -join-every 12      # elastic growth
//	p2pmon churn -replay -grow 10 -spread                              # + DHT checkpoint spreading
//	p2pmon churn -replay -leave-every 15                               # graceful leave/rejoin cycles
//	p2pmon agg -agg tree -agg-degree 3                                 # in-network aggregation tree
//	p2pmon agg -agg flat                                               # the O(n) hotspot baseline
//	p2pmon agg -agg tree -replay -crash-every 16 -leave-every 13       # aggregation under flap churn
//	p2pmon share                                                       # multi-tenant aggregate sharing
//	p2pmon share -subs 48 -leave-every 24                              # sharing under graceful-leave churn
//	p2pmon adapt                                                       # self-adaptive runtime vs static (X6 profile)
//	p2pmon adapt -mode adaptive -events 192                            # one mode, longer schedule
//	p2pmon net                                                         # transport cluster, in-process simnet backend
//	p2pmon net -nodes 5 -windows 8 -agg-fn avg                         # bigger simnet cluster
//	p2pmon net -listen 127.0.0.1:7101 -name n1 \
//	       -peers n1=127.0.0.1:7101,n2=127.0.0.1:7102,n3=127.0.0.1:7103  # one real-TCP cluster process
//	p2pmon meteo -sub custom.p2pml   # custom subscription text
//
// The legacy spelling `p2pmon -scenario <name> [flags]` keeps working
// and routes to the same per-scenario flag sets.
//
// The net scenario prints only the root's window results on stdout
// (status goes to stderr), so a multi-process TCP run is byte-
// comparable to the single-process simnet run of the same scenario —
// scripts/netsmoke.sh automates exactly that diff.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"p2pm/internal/peer"
	"p2pm/internal/workload"
)

// scenario is one registered subcommand: a name, a one-line synopsis
// for the top-level usage listing, and a runner that owns its flag set.
type scenario struct {
	name     string
	synopsis string
	run      func(args []string, out io.Writer) error
}

// scenarios is the registry, in listing order. Every scenario —
// including the X6 adapt lab — registers here and nowhere else.
var scenarios []*scenario

func registerScenario(name, synopsis string, run func([]string, io.Writer) error) {
	scenarios = append(scenarios, &scenario{name: name, synopsis: synopsis, run: run})
}

func lookupScenario(name string) *scenario {
	for _, sc := range scenarios {
		if sc.name == name {
			return sc
		}
	}
	return nil
}

func scenarioNames() string {
	names := make([]string, len(scenarios))
	for i, sc := range scenarios {
		names[i] = sc.name
	}
	return strings.Join(names, " | ")
}

// newFlagSet builds a scenario's flag set with a scoped usage header.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet("p2pmon "+name, flag.ContinueOnError)
	sc := lookupScenario(name)
	fs.Usage = func() {
		if sc != nil {
			fmt.Fprintf(fs.Output(), "p2pmon %s — %s\n", sc.name, sc.synopsis)
		}
		fmt.Fprintf(fs.Output(), "usage: p2pmon %s [flags]\n", name)
		fs.PrintDefaults()
	}
	return fs
}

func init() {
	registerScenario("meteo", "the paper's Figure 1 running example (weather alerts)", func(a []string, out io.Writer) error {
		return runQuery("meteo", a, out)
	})
	registerScenario("telecom", "workflow surveillance over orchestrator call logs", func(a []string, out io.Writer) error {
		return runQuery("telecom", a, out)
	})
	registerScenario("edos", "content-distribution statistics gathering", func(a []string, out io.Writer) error {
		return runQuery("edos", a, out)
	})
	registerScenario("rss", "feed monitoring with churn", func(a []string, out io.Writer) error {
		return runQuery("rss", a, out)
	})
	registerScenario("churn", "self-healing under relay crashes, leaves, joins and partitions", runChurnScenario)
	registerScenario("agg", "in-network aggregation tree vs the flat hotspot, under churn", runAggScenario)
	registerScenario("share", "multi-tenant aggregate sharing, shared vs unshared", runShareScenario)
	registerScenario("adapt", "self-adaptive runtime vs static under the diurnal+hotspot profile (X6)", runAdaptScenario)
	registerScenario("net", "transport cluster: in-process simnet or one real-TCP node", runNetScenario)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run dispatches to a scenario runner (separated from main for
// testing). Two spellings are accepted: the subcommand form
// `p2pmon <scenario> [flags]` and the legacy `-scenario <name>` flag,
// which is extracted here and routed identically.
func run(args []string, out io.Writer) error {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sc := lookupScenario(args[0])
		if sc == nil {
			return fmt.Errorf("p2pmon: unknown scenario %q (have: %s)", args[0], scenarioNames())
		}
		return sc.run(args[1:], out)
	}
	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		fmt.Fprintf(os.Stderr, "usage: p2pmon <scenario> [flags]   (or legacy: p2pmon -scenario <name> [flags])\nscenarios:\n")
		for _, sc := range scenarios {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", sc.name, sc.synopsis)
		}
		fmt.Fprintf(os.Stderr, "`p2pmon <scenario> -h` lists that scenario's flags.\n")
		return flag.ErrHelp
	}
	name, rest, err := extractScenario(args)
	if err != nil {
		return err
	}
	if name == "" {
		name = "meteo"
	}
	sc := lookupScenario(name)
	if sc == nil {
		return fmt.Errorf("p2pmon: unknown scenario %q (have: %s)", name, scenarioNames())
	}
	return sc.run(rest, out)
}

// extractScenario strips a legacy -scenario flag (either spelling,
// space- or =-separated) from the argument list.
func extractScenario(args []string) (name string, rest []string, err error) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		trimmed := strings.TrimPrefix(strings.TrimPrefix(a, "-"), "-")
		switch {
		case trimmed == "scenario":
			if i+1 >= len(args) {
				return "", nil, fmt.Errorf("p2pmon: -scenario needs a value")
			}
			name = args[i+1]
			i++
		case strings.HasPrefix(trimmed, "scenario="):
			name = strings.TrimPrefix(trimmed, "scenario=")
		default:
			rest = append(rest, a)
		}
	}
	return name, rest, nil
}

// runQuery runs one of the P2PML query scenarios: set up the monitored
// world, subscribe, drive, and print every result item.
func runQuery(name string, args []string, out io.Writer) error {
	fs := newFlagSet(name)
	subFile := fs.String("sub", "", "file with a custom P2PML subscription (overrides the scenario default)")
	noReuse := fs.Bool("no-reuse", false, "disable stream reuse")
	noPushdown := fs.Bool("no-pushdown", false, "disable selection pushdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := peer.DefaultConfig()
	opts.Reuse = !*noReuse
	opts.Pushdown = !*noPushdown
	sys := peer.MustSystem(opts)
	mgr := sys.MustAddPeer("manager")

	var subSrc string
	var drive func() (int, error)
	switch name {
	case "meteo":
		cfg := workload.DefaultMeteo()
		if err := workload.SetupMeteo(sys, cfg); err != nil {
			return err
		}
		subSrc = workload.MeteoSubscription(cfg.Clients, cfg.Server)
		drive = func() (int, error) { return workload.RunMeteo(sys, cfg) }
	case "telecom":
		cfg := workload.DefaultTelecom()
		if err := workload.SetupTelecom(sys, cfg); err != nil {
			return err
		}
		subSrc = `for $c in outCOM(<p>orchestrator</p>)
return <call id="{$c.callId}" method="{$c.callMethod}" to="{$c.callee}"/>
by publish as channel "calls"`
		drive = func() (int, error) { return workload.RunTelecom(sys, cfg) }
	case "edos":
		cfg := workload.DefaultEdos()
		e, err := workload.SetupEdos(sys, cfg)
		if err != nil {
			return err
		}
		subSrc = e.StatsSubscription("GetPackage")
		drive = func() (int, error) {
			d, q, err := e.Run()
			return d + q, err
		}
	case "rss":
		portal := sys.MustAddPeer("portal.com")
		churn := workload.NewFeedChurn(9, "portal news", 4)
		portal.RegisterFeed("http://portal.com/feed", churn.Fetch())
		subSrc = `for $r in rssCOM(<p>portal.com</p>)
return $r by publish as channel "feedChanges"`
		drive = func() (int, error) {
			n := 0
			for i := 0; i < 12; i++ {
				churn.Step()
				k, err := sys.Poll()
				if err != nil {
					return n, err
				}
				n += k
			}
			return n, nil
		}
	}
	if *subFile != "" {
		b, err := os.ReadFile(*subFile)
		if err != nil {
			return err
		}
		subSrc = string(b)
	}

	fmt.Fprintf(out, "== scenario %s ==\n%s\n\n", name, subSrc)
	task, err := mgr.Subscribe(subSrc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "deployed plan:\n%s\n", task.Plan.Tree())

	events, err := drive()
	if err != nil {
		return err
	}
	task.Stop()
	results := task.Results().Drain()
	fmt.Fprintf(out, "drove %d events; %d results on %s:\n", events, len(results), task.ResultChannel())
	for _, it := range results {
		fmt.Fprintf(out, "  t=%-8s %s\n", it.Time, it.Tree)
	}
	tot := sys.Net.Totals()
	fmt.Fprintf(out, "\nnetwork: %d messages, %d bytes over %d links\n", tot.Messages, tot.Bytes, tot.Links)
	return nil
}

// runChurnScenario parses the churn lab's flags and runs it.
func runChurnScenario(args []string, out io.Writer) error {
	fs := newFlagSet("churn")
	replay := fs.Bool("replay", false, "enable replay buffers + operator checkpointing (lossless failover)")
	detector := fs.String("detector", "", "failure detection mode, home | gossip (see docs/DETECTOR.md)")
	nEvents := fs.Int("events", 0, "events to drive (0 = scenario default)")
	crashEvery := fs.Int("crash-every", -1, "crash the relay host every N events (0 = never, -1 = scenario default)")
	leaveEvery := fs.Int("leave-every", 0, "the relay host gracefully leaves every N events, rejoining after MTTR (0 = never)")
	partitionHome := fs.Int("partition-home", 0, "isolate the monitor peer after N events (0 = never) — the detector survivability case")
	grow := fs.Int("grow", 0, "grow the worker pool from 4 to N at runtime via the membership join protocol (0 = static pool, see docs/MEMBERSHIP.md)")
	joinEvery := fs.Int("join-every", 0, "admit one pending worker every N driven events (0 = spread the joins evenly; needs -grow)")
	spread := fs.Bool("spread", false, "enable DHT virtual-node + bounded-load checkpoint spreading")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := workload.DefaultChurn()
	cfg.Replay = *replay
	if *detector != "" {
		cfg.Detector = *detector
	}
	if *nEvents > 0 {
		cfg.Events = *nEvents
	}
	if *crashEvery >= 0 {
		cfg.CrashEvery = *crashEvery
	}
	cfg.LeaveEvery = *leaveEvery
	cfg.PartitionHomeAfter = *partitionHome
	if *grow > 0 {
		if *grow <= cfg.Workers {
			return fmt.Errorf("p2pmon: -grow %d must exceed the starting pool of %d workers", *grow, cfg.Workers)
		}
		cfg.GrowFrom = cfg.Workers
		cfg.Workers = *grow
		cfg.JoinEvery = *joinEvery
	} else if *joinEvery > 0 {
		return fmt.Errorf("p2pmon: -join-every needs -grow (there is nothing to admit)")
	}
	cfg.Spread = *spread
	return runChurn(out, cfg)
}

// runAggScenario parses the aggregation lab's flags and runs it.
func runAggScenario(args []string, out io.Writer) error {
	fs := newFlagSet("agg")
	aggMode := fs.String("agg", "", "aggregation deployment, tree | flat (see docs/AGGREGATION.md; default tree)")
	aggDegree := fs.Int("agg-degree", 0, "aggregation-tree fan-in bound (0 = default 3)")
	aggFn := fs.String("agg-fn", "", "aggregate function, count | sum | min | max | avg | set | distinct | freq (default count; see docs/AGGREGATION.md)")
	users := fs.Int("users", 0, "distinct-value universe for value-consuming aggregate functions (0 = default 24)")
	replay := fs.Bool("replay", false, "enable replay buffers + operator checkpointing (lossless failover)")
	detector := fs.String("detector", "", "failure detection mode, home | gossip (see docs/DETECTOR.md)")
	nEvents := fs.Int("events", 0, "events to drive (0 = scenario default)")
	crashEvery := fs.Int("crash-every", -1, "crash the aggregation host every N events (0 = never, -1 = scenario default)")
	leaveEvery := fs.Int("leave-every", 0, "the aggregation host gracefully leaves every N events, rejoining after MTTR (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := workload.DefaultAgg()
	if *aggMode != "" {
		cfg.Mode = *aggMode
	}
	if *aggDegree != 0 {
		if *aggDegree < 2 {
			return fmt.Errorf("p2pmon: -agg-degree %d is not a valid fan-in bound (want >= 2, or 0 for the default)", *aggDegree)
		}
		cfg.Degree = *aggDegree
	}
	cfg.Fn = *aggFn
	cfg.Users = *users
	cfg.Replay = *replay
	if *detector != "" {
		cfg.Detector = *detector
	}
	if *nEvents > 0 {
		cfg.Events = *nEvents
	}
	if *crashEvery >= 0 {
		cfg.CrashEvery = *crashEvery
	}
	cfg.LeaveEvery = *leaveEvery
	return runAgg(out, cfg)
}

// runShareScenario parses the sharing lab's flags and runs it.
func runShareScenario(args []string, out io.Writer) error {
	fs := newFlagSet("share")
	replay := fs.Bool("replay", false, "replay buffers + checkpointing (on by default in this scenario; the flag restates it)")
	detector := fs.String("detector", "", "failure detection mode, home | gossip (see docs/DETECTOR.md)")
	nEvents := fs.Int("events", 0, "events to drive (0 = scenario default)")
	crashEvery := fs.Int("crash-every", -1, "crash an aggregation host every N events (0 = never, -1 = scenario default)")
	leaveEvery := fs.Int("leave-every", 0, "an aggregation host gracefully leaves every N events, rejoining after MTTR (0 = never)")
	subs := fs.Int("subs", 0, "number of overlapping subscriptions (0 = default 12)")
	grow := fs.Int("grow", 0, "grow the worker pool to N at runtime via the membership join protocol (0 = static pool)")
	joinEvery := fs.Int("join-every", 0, "admit one pending worker every N driven events (needs -grow)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := workload.DefaultShare()
	// Replay is on in DefaultShare (byte-identity through churn needs
	// it); -replay stays legal as an explicit statement of the default.
	cfg.Replay = cfg.Replay || *replay
	if *detector != "" {
		cfg.Detector = *detector
	}
	if *nEvents > 0 {
		cfg.Events = *nEvents
	}
	if *crashEvery >= 0 {
		cfg.CrashEvery = *crashEvery
	}
	cfg.LeaveEvery = *leaveEvery
	if *subs > 0 {
		cfg.Subs = *subs
	}
	if *grow > 0 {
		if *grow <= cfg.Workers {
			return fmt.Errorf("p2pmon: -grow %d must exceed the starting pool of %d workers", *grow, cfg.Workers)
		}
		cfg.GrowFrom = cfg.Workers
		cfg.Workers = *grow
		cfg.JoinEvery = *joinEvery
	} else if *joinEvery > 0 {
		return fmt.Errorf("p2pmon: -join-every needs -grow (there is nothing to admit)")
	}
	return runShare(out, cfg)
}

// runNetScenario parses the transport cluster's flags and runs it.
func runNetScenario(args []string, out io.Writer) error {
	fs := newFlagSet("net")
	aggFn := fs.String("agg-fn", "", "aggregate function, count | sum | min | max | avg | set | distinct | freq (default count)")
	users := fs.Int("users", 0, "distinct-value universe for value-consuming aggregate functions (0 = default 24)")
	listen := fs.String("listen", "", "TCP listen address — run ONE cluster node as this OS process (needs -name and -peers; see docs/TRANSPORT.md)")
	name := fs.String("name", "", "this node's peer name (with -listen)")
	peersFlag := fs.String("peers", "", "full cluster map name=host:port,... including self (with -listen)")
	nodes := fs.Int("nodes", 0, "cluster size for the in-process simnet backend (0 = default 3)")
	windows := fs.Int("windows", 0, "windows to aggregate (0 = default 5)")
	metricsAddr := fs.String("metrics-addr", "", "serve this process's telemetry over HTTP on this address (Prometheus /metrics, JSON /metrics.json; see docs/TELEMETRY.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := netConfig{Fn: *aggFn, Users: *users, Windows: *windows, Nodes: *nodes,
		Listen: *listen, Name: *name, Peers: *peersFlag, MetricsAddr: *metricsAddr}
	return runNet(out, cfg)
}

// runAdaptScenario parses the self-adaptation lab's flags and runs it.
func runAdaptScenario(args []string, out io.Writer) error {
	fs := newFlagSet("adapt")
	mode := fs.String("mode", "compare", "flat | static | adaptive | compare (compare runs all three and gates adaptive against static)")
	nEvents := fs.Int("events", 0, "protocol periods to drive (0 = scenario default; the fault schedule scales with it)")
	seed := fs.Int64("seed", 0, "deterministic seed (0 = scenario default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := workload.DefaultAdapt()
	if *nEvents > 0 {
		cfg.Events = *nEvents
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	return runAdapt(out, cfg, *mode)
}

// runAdapt runs the X6 scenario: the monitor monitoring itself. In
// compare mode it runs the undisturbed flat ground truth, the static
// configuration and the adaptive runtime over the same seeded fault
// schedule and fails (non-zero exit) if the adaptive run false-kills
// anyone, misses a real crash, never splits the hot interior, or drifts
// from the flat baseline — the soak gate.
func runAdapt(out io.Writer, cfg workload.AdaptConfig, mode string) error {
	runOne := func(m string) (*workload.AdaptReport, error) {
		c := cfg
		c.Mode = m
		lab, err := workload.SetupAdapt(c)
		if err != nil {
			return nil, err
		}
		return lab.Run()
	}
	fmt.Fprintf(out, "== scenario adapt ==\nevents: %d, window %v, degree %d, slow phase: +%v / %.0f%% loss, probe timeout %v, suspicion %v\n",
		cfg.Events, cfg.Window, cfg.Degree, cfg.SlowDelay, cfg.SlowDrop*100, cfg.ProbeTimeout, cfg.Suspicion)
	report := func(rep *workload.AdaptReport) {
		fmt.Fprintf(out, "%-9s records %d, false kills %d, true kills %d, repairs %d, replayed %d\n",
			rep.Mode+":", len(rep.Records), rep.FalseKills, rep.TrueKills, rep.Repairs, rep.Replayed)
		if rep.Mode == "flat" {
			return
		}
		fmt.Fprintf(out, "          splits %d, post-split ingest max %d mean %.1f (%.2fx), health peak %d\n",
			rep.Splits, rep.PostMax, rep.PostMean, rep.PostRatio(), rep.HealthPeak)
		fmt.Fprintf(out, "          control: %d quarantine engages, %d replication raises, quarantined at teardown: [%s]\n",
			rep.Quarantines, rep.ReplRaises, strings.Join(rep.Quarantined, " "))
	}

	if mode != "compare" {
		rep, err := runOne(mode)
		if err != nil {
			return err
		}
		report(rep)
		return nil
	}

	flat, err := runOne("flat")
	if err != nil {
		return err
	}
	static, err := runOne("static")
	if err != nil {
		return err
	}
	adaptive, err := runOne("adaptive")
	if err != nil {
		return err
	}
	for _, rep := range []*workload.AdaptReport{flat, static, adaptive} {
		report(rep)
		if rep.Mode != "flat" {
			fmt.Fprintf(out, "          completeness %.0f%% vs flat, byte-identical %v\n",
				rep.Completeness(flat.Records)*100, rep.Identical(flat.Records))
		}
	}
	switch {
	case adaptive.FalseKills != 0:
		return fmt.Errorf("p2pmon adapt: adaptive run false-killed %d peers: %v", adaptive.FalseKills, adaptive.Kills)
	case adaptive.TrueKills < 1:
		return fmt.Errorf("p2pmon adapt: adaptive run missed the flapper's real crashes")
	case adaptive.Splits < 1:
		return fmt.Errorf("p2pmon adapt: adaptive run never split the hot interior")
	case !adaptive.Identical(flat.Records):
		return fmt.Errorf("p2pmon adapt: adaptive records drifted from the flat baseline")
	case static.FalseKills < 1:
		return fmt.Errorf("p2pmon adapt: static run false-killed nobody — the scenario lost its trap")
	}
	fmt.Fprintf(out, "adaptive beats static: zero false kills (static %d), hot interior split at runtime, output byte-identical to flat\n",
		static.FalseKills)
	return nil
}

// runAgg runs the in-network aggregation scenario: a windowed
// group-by-count over every monitored source, deployed flat (one
// aggregator ingesting all streams) or as a DHT-routed partial/merge
// tree, optionally under crash and graceful-leave churn. The report
// scores every windowed count against the deterministic expectation of
// the drive schedule.
func runAgg(out io.Writer, cfg workload.AggConfig) error {
	lab, err := workload.SetupAgg(cfg)
	if err != nil {
		return err
	}
	det := cfg.Detector
	if det == "" {
		det = "gossip"
	}
	fn := cfg.Fn
	if fn == "" {
		fn = "count"
	}
	fmt.Fprintf(out, "== scenario agg ==\nmode %s (degree %d), fn %s, sources: %d, workers: %d, events: %d, window %v, crash every %d, leave every %d, replay %v, detector %s\n",
		cfg.Mode, cfg.Degree, fn, cfg.Sources, cfg.Workers, cfg.Events, cfg.Window, cfg.CrashEvery, cfg.LeaveEvery, cfg.Replay, det)
	fmt.Fprintf(out, "deployed plan:\n%s\n", lab.Task.Plan.Tree())
	rep, err := lab.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "drove %d events across %d windows\n", rep.Driven, rep.Windows)
	fmt.Fprintf(out, "windowed-group completeness %.0f%% (%d/%d groups correct, %d emitted)\n",
		rep.Completeness()*100, rep.CorrectGroups, rep.ExpectedGroups, rep.ResultGroups)
	if rep.SketchGroups > 0 {
		fmt.Fprintf(out, "sketch accuracy: max rel err %.2f%%, mean %.2f%% over %d groups (vs exact replayed distinct counts)\n",
			rep.MaxRelErr*100, rep.MeanRelErr*100, rep.SketchGroups)
	}
	fmt.Fprintf(out, "ingest load: max %d/peer, mean %.1f/peer, max versus mean %.2fx\n",
		rep.IngestMax, rep.IngestMean, rep.IngestRatio())
	fmt.Fprintf(out, "crashes: %d, leaves: %d, joins: %d, detected: %d, repaired: %d, replayed: %d\n",
		rep.Crashes, rep.Leaves, rep.Joins, rep.Deaths, rep.Repairs, rep.Replayed)
	fmt.Fprintf(out, "aggregation host ended at %s\n", lab.AggHost())
	fmt.Fprintf(out, "\nnetwork: %d messages, %d bytes, %d dropped over %d links\n",
		rep.Traffic.Messages, rep.Traffic.Bytes, rep.Traffic.Dropped, rep.Traffic.Links)
	return nil
}

// runShare runs the multi-tenant aggregation scenario twice — once
// through the reuse pass (overlapping subscriptions share aggregation
// trees) and once unshared (every subscription builds its own) — and
// reports both against the same ground truth, so the sharing shows up as
// pure deployment and ingest savings, never as an answer change.
func runShare(out io.Writer, cfg workload.ShareConfig) error {
	det := cfg.Detector
	if det == "" {
		det = "gossip"
	}
	win := cfg.Window
	if win <= 0 {
		step := cfg.Step
		if step <= 0 {
			step = time.Second
		}
		win = 8 * step // SetupShare's default
	}
	fmt.Fprintf(out, "== scenario share ==\nsources: %d, workers: %d, subscriptions: %d, events: %d, window %v, crash every %d, leave every %d, replay %v, detector %s\n",
		cfg.Sources, cfg.Workers, cfg.Subs, cfg.Events, win, cfg.CrashEvery, cfg.LeaveEvery, cfg.Replay, det)
	if cfg.GrowFrom > 0 {
		fmt.Fprintf(out, "elastic pool: growing from %d to %d workers via the join protocol\n", cfg.GrowFrom, cfg.Workers)
	}
	reps := make(map[string]*workload.ShareReport, 2)
	for _, mode := range []string{"shared", "unshared"} {
		c := cfg
		c.Mode = mode
		lab, err := workload.SetupShare(c)
		if err != nil {
			return err
		}
		rep, err := lab.Run()
		if err != nil {
			return err
		}
		reps[mode] = rep
		fmt.Fprintf(out, "%-9s %d operators (%.2f/sub), byte-identical %d/%d subs, completeness %.0f%%, hottest peer ingest %d (%.2fx mean)\n",
			mode+":", rep.Operators, rep.OpsPerSub(), rep.ByteIdenticalSubs, rep.Subs,
			rep.Completeness()*100, rep.IngestMax, rep.IngestRatio())
		for _, m := range rep.Mismatches {
			fmt.Fprintf(out, "  mismatch: %s\n", m)
		}
	}
	sh, un := reps["shared"], reps["unshared"]
	fmt.Fprintf(out, "reuse pass: %d ops reused, %d fresh, %d discovery lookups (%d failed)\n",
		sh.ReusedOps, sh.NewOps, sh.Lookups, sh.FailedLookups)
	fmt.Fprintf(out, "sharing: %.1fx fewer operators, hotspot ingest %d vs %d\n",
		float64(un.Operators)/float64(sh.Operators), sh.IngestMax, un.IngestMax)
	fmt.Fprintf(out, "churn (shared run): crashes %d, leaves %d, joins %d, repaired %d, replayed %d\n",
		sh.Crashes, sh.Leaves, sh.Joins, sh.Repairs+sh.LeaveRepairs, sh.Replayed)
	fmt.Fprintf(out, "\nnetwork (shared run): %d messages, %d bytes, %d dropped over %d links\n",
		sh.Traffic.Messages, sh.Traffic.Bytes, sh.Traffic.Dropped, sh.Traffic.Links)
	return nil
}

// runChurn runs the self-healing scenario: the relay operator of a
// subscription is killed repeatedly while events flow; the supervisor
// migrates it and the report shows what the churn cost. With replay on,
// outage windows are retransmitted and the run ends lossless. The
// detector-mode and partition knobs select the failure-detection axis
// (home heartbeats vs SWIM gossip) and the survivability case.
func runChurn(out io.Writer, cfg workload.ChurnConfig) error {
	lab, err := workload.SetupChurn(cfg)
	if err != nil {
		return err
	}
	det := cfg.Detector
	if det == "" {
		det = "home"
	}
	fmt.Fprintf(out, "== scenario churn ==\nrelay workers: %d, events: %d, crash every %d events, MTTR %v, replay %v, detector %s\n",
		cfg.Workers, cfg.Events, cfg.CrashEvery, cfg.MTTR, cfg.Replay, det)
	if cfg.GrowFrom > 0 {
		fmt.Fprintf(out, "elastic pool: growing from %d to %d workers via the join protocol\n", cfg.GrowFrom, cfg.Workers)
	}
	if cfg.Spread {
		fmt.Fprintf(out, "DHT spreading: virtual-node tokens + bounded-load checkpoint placement\n")
	}
	if cfg.PartitionHomeAfter > 0 {
		fmt.Fprintf(out, "monitor peer partitioned away after %d events\n", cfg.PartitionHomeAfter)
	}
	fmt.Fprintf(out, "deployed plan:\n%s\n", lab.Task.Plan.Tree())
	rep, err := lab.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "drove %d events; %d results arrived (completeness %.0f%%)\n",
		rep.Driven, rep.Received, rep.Completeness()*100)
	fmt.Fprintf(out, "crashes: %d, detected: %d, repaired: %d, replayed: %d, mean detection latency %.1fs\n",
		rep.Crashes, rep.Deaths, rep.Repairs, rep.Replayed, rep.DetectionLatency.Mean())
	if rep.Joins > 0 {
		fmt.Fprintf(out, "joins: %d workers admitted at runtime\n", rep.Joins)
	}
	if rep.Leaves > 0 {
		fmt.Fprintf(out, "leaves: %d graceful departures (%d handoff migrations, zero detection latency)\n",
			rep.Leaves, rep.LeaveRepairs)
	}
	fmt.Fprintf(out, "relay ended at %s\n", lab.RelayHost())
	fmt.Fprintf(out, "\nnetwork: %d messages, %d bytes, %d dropped over %d links\n",
		rep.Traffic.Messages, rep.Traffic.Bytes, rep.Traffic.Dropped, rep.Traffic.Links)
	return nil
}
