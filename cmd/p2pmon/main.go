// Command p2pmon runs a P2PM monitoring scenario on a simulated P2P
// network and streams the results to stdout.
//
// Usage:
//
//	p2pmon -scenario meteo      # the paper's Figure 1 running example
//	p2pmon -scenario telecom    # workflow surveillance
//	p2pmon -scenario edos       # content-distribution statistics
//	p2pmon -scenario rss        # feed monitoring
//	p2pmon -scenario meteo -sub custom.p2pml   # custom subscription text
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"p2pm/internal/peer"
	"p2pm/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "meteo", "meteo | telecom | edos | rss")
	subFile := flag.String("sub", "", "file with a custom P2PML subscription (overrides the scenario default)")
	noReuse := flag.Bool("no-reuse", false, "disable stream reuse")
	noPushdown := flag.Bool("no-pushdown", false, "disable selection pushdown")
	flag.Parse()

	opts := peer.DefaultOptions()
	opts.Reuse = !*noReuse
	opts.Pushdown = !*noPushdown
	sys := peer.NewSystem(opts)
	mgr := sys.MustAddPeer("manager")

	var subSrc string
	var drive func() (int, error)
	switch *scenario {
	case "meteo":
		cfg := workload.DefaultMeteo()
		if err := workload.SetupMeteo(sys, cfg); err != nil {
			log.Fatal(err)
		}
		subSrc = workload.MeteoSubscription(cfg.Clients, cfg.Server)
		drive = func() (int, error) { return workload.RunMeteo(sys, cfg) }
	case "telecom":
		cfg := workload.DefaultTelecom()
		if err := workload.SetupTelecom(sys, cfg); err != nil {
			log.Fatal(err)
		}
		subSrc = `for $c in outCOM(<p>orchestrator</p>)
return <call id="{$c.callId}" method="{$c.callMethod}" to="{$c.callee}"/>
by publish as channel "calls"`
		drive = func() (int, error) { return workload.RunTelecom(sys, cfg) }
	case "edos":
		cfg := workload.DefaultEdos()
		e, err := workload.SetupEdos(sys, cfg)
		if err != nil {
			log.Fatal(err)
		}
		subSrc = e.StatsSubscription("GetPackage")
		drive = func() (int, error) {
			d, q, err := e.Run()
			return d + q, err
		}
	case "rss":
		portal := sys.MustAddPeer("portal.com")
		churn := workload.NewFeedChurn(9, "portal news", 4)
		portal.RegisterFeed("http://portal.com/feed", churn.Fetch())
		subSrc = `for $r in rssCOM(<p>portal.com</p>)
return $r by publish as channel "feedChanges"`
		drive = func() (int, error) {
			n := 0
			for i := 0; i < 12; i++ {
				churn.Step()
				k, err := sys.Poll()
				if err != nil {
					return n, err
				}
				n += k
			}
			return n, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *subFile != "" {
		b, err := os.ReadFile(*subFile)
		if err != nil {
			log.Fatal(err)
		}
		subSrc = string(b)
	}

	fmt.Printf("== scenario %s ==\n%s\n\n", *scenario, subSrc)
	task, err := mgr.Subscribe(subSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed plan:\n%s\n", task.Plan.Tree())

	events, err := drive()
	if err != nil {
		log.Fatal(err)
	}
	task.Stop()
	results := task.Results().Drain()
	fmt.Printf("drove %d events; %d results on %s:\n", events, len(results), task.ResultChannel())
	for _, it := range results {
		fmt.Printf("  t=%-8s %s\n", it.Time, it.Tree)
	}
	tot := sys.Net.Totals()
	fmt.Printf("\nnetwork: %d messages, %d bytes over %d links\n", tot.Messages, tot.Bytes, tot.Links)
}
