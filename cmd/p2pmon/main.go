// Command p2pmon runs a P2PM monitoring scenario on a simulated P2P
// network and streams the results to stdout.
//
// Usage:
//
//	p2pmon -scenario meteo      # the paper's Figure 1 running example
//	p2pmon -scenario telecom    # workflow surveillance
//	p2pmon -scenario edos       # content-distribution statistics
//	p2pmon -scenario rss        # feed monitoring
//	p2pmon -scenario churn      # self-healing under relay crashes
//	p2pmon -scenario churn -replay             # lossless failover (replay + checkpoints)
//	p2pmon -scenario churn -detector gossip    # SWIM-style decentralized detection
//	p2pmon -scenario churn -replay -detector gossip -events 600 -crash-every 8   # soak
//	p2pmon -scenario churn -replay -detector gossip -partition-home 10           # survivability
//	p2pmon -scenario churn -replay -detector gossip -grow 10 -join-every 12      # elastic growth
//	p2pmon -scenario churn -replay -grow 10 -spread                              # + DHT checkpoint spreading
//	p2pmon -scenario meteo -sub custom.p2pml   # custom subscription text
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"p2pm/internal/peer"
	"p2pm/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes one scenario against the given flags, writing the report
// to out (separated from main for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("p2pmon", flag.ContinueOnError)
	scenario := fs.String("scenario", "meteo", "meteo | telecom | edos | rss | churn")
	subFile := fs.String("sub", "", "file with a custom P2PML subscription (overrides the scenario default)")
	noReuse := fs.Bool("no-reuse", false, "disable stream reuse")
	noPushdown := fs.Bool("no-pushdown", false, "disable selection pushdown")
	replay := fs.Bool("replay", false, "churn scenario: enable replay buffers + operator checkpointing (lossless failover)")
	detector := fs.String("detector", "home", "churn scenario: failure detection mode, home | gossip (see docs/DETECTOR.md)")
	nEvents := fs.Int("events", 0, "churn scenario: events to drive (0 = scenario default)")
	crashEvery := fs.Int("crash-every", -1, "churn scenario: crash the relay every N events (0 = never, -1 = scenario default)")
	partitionHome := fs.Int("partition-home", 0, "churn scenario: isolate the monitor peer after N events (0 = never) — the detector survivability case")
	grow := fs.Int("grow", 0, "churn scenario: grow the worker pool from 4 to N at runtime via the membership join protocol (0 = static pool, see docs/MEMBERSHIP.md)")
	joinEvery := fs.Int("join-every", 0, "churn scenario: admit one pending worker every N driven events (0 = spread the joins evenly; needs -grow)")
	spread := fs.Bool("spread", false, "churn scenario: enable DHT virtual-node + bounded-load checkpoint spreading")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenario == "churn" {
		// The churn lab deploys a fixed hand-placed plan: the P2PML and
		// optimizer knobs do not apply, so reject them instead of
		// silently ignoring them.
		if *subFile != "" || *noReuse || *noPushdown {
			return fmt.Errorf("p2pmon: -sub, -no-reuse and -no-pushdown are not supported by the churn scenario")
		}
		cfg := workload.DefaultChurn()
		cfg.Replay = *replay
		cfg.Detector = *detector
		if *nEvents > 0 {
			cfg.Events = *nEvents
		}
		if *crashEvery >= 0 {
			cfg.CrashEvery = *crashEvery
		}
		cfg.PartitionHomeAfter = *partitionHome
		if *grow > 0 {
			if *grow <= cfg.Workers {
				return fmt.Errorf("p2pmon: -grow %d must exceed the starting pool of %d workers", *grow, cfg.Workers)
			}
			cfg.GrowFrom = cfg.Workers
			cfg.Workers = *grow
			cfg.JoinEvery = *joinEvery
		} else if *joinEvery > 0 {
			return fmt.Errorf("p2pmon: -join-every needs -grow (there is nothing to admit)")
		}
		cfg.Spread = *spread
		return runChurn(out, cfg)
	}
	// Reject explicitly-set churn-only flags outside the churn scenario.
	// fs.Visit reports only flags the command line actually set, in
	// lexical order, so the error is deterministic and `-detector home`
	// spelled out is rejected like any other churn knob.
	churnOnly := map[string]bool{
		"replay": true, "detector": true, "events": true,
		"crash-every": true, "partition-home": true,
		"grow": true, "join-every": true, "spread": true,
	}
	var misused string
	fs.Visit(func(f *flag.Flag) {
		if churnOnly[f.Name] && misused == "" {
			misused = f.Name
		}
	})
	if misused != "" {
		return fmt.Errorf("p2pmon: -%s applies to the churn scenario only", misused)
	}

	opts := peer.DefaultOptions()
	opts.Reuse = !*noReuse
	opts.Pushdown = !*noPushdown
	sys := peer.NewSystem(opts)
	mgr := sys.MustAddPeer("manager")

	var subSrc string
	var drive func() (int, error)
	switch *scenario {
	case "meteo":
		cfg := workload.DefaultMeteo()
		if err := workload.SetupMeteo(sys, cfg); err != nil {
			return err
		}
		subSrc = workload.MeteoSubscription(cfg.Clients, cfg.Server)
		drive = func() (int, error) { return workload.RunMeteo(sys, cfg) }
	case "telecom":
		cfg := workload.DefaultTelecom()
		if err := workload.SetupTelecom(sys, cfg); err != nil {
			return err
		}
		subSrc = `for $c in outCOM(<p>orchestrator</p>)
return <call id="{$c.callId}" method="{$c.callMethod}" to="{$c.callee}"/>
by publish as channel "calls"`
		drive = func() (int, error) { return workload.RunTelecom(sys, cfg) }
	case "edos":
		cfg := workload.DefaultEdos()
		e, err := workload.SetupEdos(sys, cfg)
		if err != nil {
			return err
		}
		subSrc = e.StatsSubscription("GetPackage")
		drive = func() (int, error) {
			d, q, err := e.Run()
			return d + q, err
		}
	case "rss":
		portal := sys.MustAddPeer("portal.com")
		churn := workload.NewFeedChurn(9, "portal news", 4)
		portal.RegisterFeed("http://portal.com/feed", churn.Fetch())
		subSrc = `for $r in rssCOM(<p>portal.com</p>)
return $r by publish as channel "feedChanges"`
		drive = func() (int, error) {
			n := 0
			for i := 0; i < 12; i++ {
				churn.Step()
				k, err := sys.Poll()
				if err != nil {
					return n, err
				}
				n += k
			}
			return n, nil
		}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if *subFile != "" {
		b, err := os.ReadFile(*subFile)
		if err != nil {
			return err
		}
		subSrc = string(b)
	}

	fmt.Fprintf(out, "== scenario %s ==\n%s\n\n", *scenario, subSrc)
	task, err := mgr.Subscribe(subSrc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "deployed plan:\n%s\n", task.Plan.Tree())

	events, err := drive()
	if err != nil {
		return err
	}
	task.Stop()
	results := task.Results().Drain()
	fmt.Fprintf(out, "drove %d events; %d results on %s:\n", events, len(results), task.ResultChannel())
	for _, it := range results {
		fmt.Fprintf(out, "  t=%-8s %s\n", it.Time, it.Tree)
	}
	tot := sys.Net.Totals()
	fmt.Fprintf(out, "\nnetwork: %d messages, %d bytes over %d links\n", tot.Messages, tot.Bytes, tot.Links)
	return nil
}

// runChurn runs the self-healing scenario: the relay operator of a
// subscription is killed repeatedly while events flow; the supervisor
// migrates it and the report shows what the churn cost. With replay on,
// outage windows are retransmitted and the run ends lossless. The
// detector-mode and partition knobs select the failure-detection axis
// (home heartbeats vs SWIM gossip) and the survivability case.
func runChurn(out io.Writer, cfg workload.ChurnConfig) error {
	lab, err := workload.SetupChurn(cfg)
	if err != nil {
		return err
	}
	det := cfg.Detector
	if det == "" {
		det = "home"
	}
	fmt.Fprintf(out, "== scenario churn ==\nrelay workers: %d, events: %d, crash every %d events, MTTR %v, replay %v, detector %s\n",
		cfg.Workers, cfg.Events, cfg.CrashEvery, cfg.MTTR, cfg.Replay, det)
	if cfg.GrowFrom > 0 {
		fmt.Fprintf(out, "elastic pool: growing from %d to %d workers via the join protocol\n", cfg.GrowFrom, cfg.Workers)
	}
	if cfg.Spread {
		fmt.Fprintf(out, "DHT spreading: virtual-node tokens + bounded-load checkpoint placement\n")
	}
	if cfg.PartitionHomeAfter > 0 {
		fmt.Fprintf(out, "monitor peer partitioned away after %d events\n", cfg.PartitionHomeAfter)
	}
	fmt.Fprintf(out, "deployed plan:\n%s\n", lab.Task.Plan.Tree())
	rep, err := lab.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "drove %d events; %d results arrived (completeness %.0f%%)\n",
		rep.Driven, rep.Received, rep.Completeness()*100)
	fmt.Fprintf(out, "crashes: %d, detected: %d, repaired: %d, replayed: %d, mean detection latency %.1fs\n",
		rep.Crashes, rep.Deaths, rep.Repairs, rep.Replayed, rep.DetectionLatency.Mean())
	if rep.Joins > 0 {
		fmt.Fprintf(out, "joins: %d workers admitted at runtime\n", rep.Joins)
	}
	fmt.Fprintf(out, "relay ended at %s\n", lab.RelayHost())
	fmt.Fprintf(out, "\nnetwork: %d messages, %d bytes, %d dropped over %d links\n",
		rep.Traffic.Messages, rep.Traffic.Bytes, rep.Traffic.Dropped, rep.Traffic.Links)
	return nil
}
