// Command p2pmon runs a P2PM monitoring scenario on a simulated P2P
// network and streams the results to stdout.
//
// Usage:
//
//	p2pmon -scenario meteo      # the paper's Figure 1 running example
//	p2pmon -scenario telecom    # workflow surveillance
//	p2pmon -scenario edos       # content-distribution statistics
//	p2pmon -scenario rss        # feed monitoring
//	p2pmon -scenario churn      # self-healing under relay crashes
//	p2pmon -scenario churn -replay             # lossless failover (replay + checkpoints)
//	p2pmon -scenario churn -detector gossip    # SWIM-style decentralized detection
//	p2pmon -scenario churn -replay -detector gossip -events 600 -crash-every 8   # soak
//	p2pmon -scenario churn -replay -detector gossip -partition-home 10           # survivability
//	p2pmon -scenario churn -replay -detector gossip -grow 10 -join-every 12      # elastic growth
//	p2pmon -scenario churn -replay -grow 10 -spread                              # + DHT checkpoint spreading
//	p2pmon -scenario churn -replay -leave-every 15                               # graceful leave/rejoin cycles
//	p2pmon -scenario agg -agg tree -agg-degree 3                                 # in-network aggregation tree
//	p2pmon -scenario agg -agg flat                                               # the O(n) hotspot baseline
//	p2pmon -scenario agg -agg tree -replay -crash-every 16 -leave-every 13       # aggregation under flap churn
//	p2pmon -scenario share                                                       # multi-tenant aggregate sharing, shared vs unshared
//	p2pmon -scenario share -subs 48 -leave-every 24                              # sharing under graceful-leave churn
//	p2pmon -scenario net                                                         # transport cluster, in-process simnet backend
//	p2pmon -scenario net -nodes 5 -windows 8 -agg-fn avg                         # bigger simnet cluster
//	p2pmon -scenario net -listen 127.0.0.1:7101 -name n1 \
//	       -peers n1=127.0.0.1:7101,n2=127.0.0.1:7102,n3=127.0.0.1:7103          # one real-TCP cluster process
//	p2pmon -scenario meteo -sub custom.p2pml   # custom subscription text
//
// The net scenario prints only the root's window results on stdout
// (status goes to stderr), so a multi-process TCP run is byte-
// comparable to the single-process simnet run of the same scenario —
// scripts/netsmoke.sh automates exactly that diff.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"p2pm/internal/peer"
	"p2pm/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes one scenario against the given flags, writing the report
// to out (separated from main for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("p2pmon", flag.ContinueOnError)
	scenario := fs.String("scenario", "meteo", "meteo | telecom | edos | rss | churn | agg | share | net")
	subFile := fs.String("sub", "", "file with a custom P2PML subscription (overrides the scenario default)")
	noReuse := fs.Bool("no-reuse", false, "disable stream reuse")
	noPushdown := fs.Bool("no-pushdown", false, "disable selection pushdown")
	replay := fs.Bool("replay", false, "churn/agg scenarios: enable replay buffers + operator checkpointing (lossless failover)")
	detector := fs.String("detector", "", "churn/agg scenarios: failure detection mode, home | gossip (see docs/DETECTOR.md)")
	nEvents := fs.Int("events", 0, "churn/agg scenarios: events to drive (0 = scenario default)")
	crashEvery := fs.Int("crash-every", -1, "churn/agg scenarios: crash the relay/aggregation host every N events (0 = never, -1 = scenario default)")
	leaveEvery := fs.Int("leave-every", 0, "churn/agg scenarios: the relay/aggregation host gracefully leaves every N events, rejoining after MTTR (0 = never)")
	partitionHome := fs.Int("partition-home", 0, "churn scenario: isolate the monitor peer after N events (0 = never) — the detector survivability case")
	grow := fs.Int("grow", 0, "churn scenario: grow the worker pool from 4 to N at runtime via the membership join protocol (0 = static pool, see docs/MEMBERSHIP.md)")
	joinEvery := fs.Int("join-every", 0, "churn scenario: admit one pending worker every N driven events (0 = spread the joins evenly; needs -grow)")
	spread := fs.Bool("spread", false, "churn scenario: enable DHT virtual-node + bounded-load checkpoint spreading")
	aggMode := fs.String("agg", "", "agg scenario: aggregation deployment, tree | flat (see docs/AGGREGATION.md; default tree)")
	aggDegree := fs.Int("agg-degree", 0, "agg scenario: aggregation-tree fan-in bound (0 = default 3)")
	aggFn := fs.String("agg-fn", "", "agg scenario: aggregate function, count | sum | min | max | avg | set | distinct | freq (default count; see docs/AGGREGATION.md)")
	users := fs.Int("users", 0, "agg scenario: distinct-value universe for value-consuming aggregate functions (0 = default 24)")
	subs := fs.Int("subs", 0, "share scenario: number of overlapping subscriptions (0 = default 12)")
	listen := fs.String("listen", "", "net scenario: TCP listen address — run ONE cluster node as this OS process (needs -name and -peers; see docs/TRANSPORT.md)")
	name := fs.String("name", "", "net scenario: this node's peer name (with -listen)")
	peersFlag := fs.String("peers", "", "net scenario: full cluster map name=host:port,... including self (with -listen)")
	nodes := fs.Int("nodes", 0, "net scenario: cluster size for the in-process simnet backend (0 = default 3)")
	windows := fs.Int("windows", 0, "net scenario: windows to aggregate (0 = default 5)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Each lab flag applies to specific scenarios only; an explicitly
	// set flag outside them is a misuse, rejected instead of silently
	// ignored. fs.Visit reports only flags the command line actually
	// set, in lexical order, so the error is deterministic.
	labFlags := map[string]map[string]bool{
		"replay":         {"churn": true, "agg": true, "share": true},
		"detector":       {"churn": true, "agg": true, "share": true},
		"events":         {"churn": true, "agg": true, "share": true},
		"crash-every":    {"churn": true, "agg": true, "share": true},
		"leave-every":    {"churn": true, "agg": true, "share": true},
		"partition-home": {"churn": true},
		"grow":           {"churn": true, "share": true},
		"join-every":     {"churn": true, "share": true},
		"spread":         {"churn": true},
		"agg":            {"agg": true},
		"agg-degree":     {"agg": true},
		"agg-fn":         {"agg": true, "net": true},
		"users":          {"agg": true, "net": true},
		"subs":           {"share": true},
		"listen":         {"net": true},
		"name":           {"net": true},
		"peers":          {"net": true},
		"nodes":          {"net": true},
		"windows":        {"net": true},
	}
	var misused string
	fs.Visit(func(f *flag.Flag) {
		if in, known := labFlags[f.Name]; known && !in[*scenario] && misused == "" {
			misused = f.Name
		}
	})
	if misused != "" {
		return fmt.Errorf("p2pmon: -%s does not apply to the %s scenario", misused, *scenario)
	}

	if *scenario == "net" {
		if *subFile != "" || *noReuse || *noPushdown {
			return fmt.Errorf("p2pmon: -sub, -no-reuse and -no-pushdown are not supported by the net scenario")
		}
		cfg := netConfig{Fn: *aggFn, Users: *users, Windows: *windows, Nodes: *nodes,
			Listen: *listen, Name: *name, Peers: *peersFlag}
		return runNet(out, cfg)
	}
	if *scenario == "churn" || *scenario == "agg" || *scenario == "share" {
		// The labs deploy fixed hand-placed plans: the P2PML and
		// optimizer knobs do not apply.
		if *subFile != "" || *noReuse || *noPushdown {
			return fmt.Errorf("p2pmon: -sub, -no-reuse and -no-pushdown are not supported by the %s scenario", *scenario)
		}
	}
	switch *scenario {
	case "churn":
		cfg := workload.DefaultChurn()
		cfg.Replay = *replay
		if *detector != "" {
			cfg.Detector = *detector
		}
		if *nEvents > 0 {
			cfg.Events = *nEvents
		}
		if *crashEvery >= 0 {
			cfg.CrashEvery = *crashEvery
		}
		cfg.LeaveEvery = *leaveEvery
		cfg.PartitionHomeAfter = *partitionHome
		if *grow > 0 {
			if *grow <= cfg.Workers {
				return fmt.Errorf("p2pmon: -grow %d must exceed the starting pool of %d workers", *grow, cfg.Workers)
			}
			cfg.GrowFrom = cfg.Workers
			cfg.Workers = *grow
			cfg.JoinEvery = *joinEvery
		} else if *joinEvery > 0 {
			return fmt.Errorf("p2pmon: -join-every needs -grow (there is nothing to admit)")
		}
		cfg.Spread = *spread
		return runChurn(out, cfg)
	case "agg":
		cfg := workload.DefaultAgg()
		if *aggMode != "" {
			cfg.Mode = *aggMode
		}
		if *aggDegree != 0 {
			if *aggDegree < 2 {
				return fmt.Errorf("p2pmon: -agg-degree %d is not a valid fan-in bound (want >= 2, or 0 for the default)", *aggDegree)
			}
			cfg.Degree = *aggDegree
		}
		cfg.Fn = *aggFn
		cfg.Users = *users
		cfg.Replay = *replay
		if *detector != "" {
			cfg.Detector = *detector
		}
		if *nEvents > 0 {
			cfg.Events = *nEvents
		}
		if *crashEvery >= 0 {
			cfg.CrashEvery = *crashEvery
		}
		cfg.LeaveEvery = *leaveEvery
		return runAgg(out, cfg)
	case "share":
		cfg := workload.DefaultShare()
		// Replay is on in DefaultShare (byte-identity through churn needs
		// it); -replay stays legal as an explicit statement of the default.
		cfg.Replay = cfg.Replay || *replay
		if *detector != "" {
			cfg.Detector = *detector
		}
		if *nEvents > 0 {
			cfg.Events = *nEvents
		}
		if *crashEvery >= 0 {
			cfg.CrashEvery = *crashEvery
		}
		cfg.LeaveEvery = *leaveEvery
		if *subs > 0 {
			cfg.Subs = *subs
		}
		if *grow > 0 {
			if *grow <= cfg.Workers {
				return fmt.Errorf("p2pmon: -grow %d must exceed the starting pool of %d workers", *grow, cfg.Workers)
			}
			cfg.GrowFrom = cfg.Workers
			cfg.Workers = *grow
			cfg.JoinEvery = *joinEvery
		} else if *joinEvery > 0 {
			return fmt.Errorf("p2pmon: -join-every needs -grow (there is nothing to admit)")
		}
		return runShare(out, cfg)
	}

	opts := peer.DefaultOptions()
	opts.Reuse = !*noReuse
	opts.Pushdown = !*noPushdown
	sys := peer.NewSystem(opts)
	mgr := sys.MustAddPeer("manager")

	var subSrc string
	var drive func() (int, error)
	switch *scenario {
	case "meteo":
		cfg := workload.DefaultMeteo()
		if err := workload.SetupMeteo(sys, cfg); err != nil {
			return err
		}
		subSrc = workload.MeteoSubscription(cfg.Clients, cfg.Server)
		drive = func() (int, error) { return workload.RunMeteo(sys, cfg) }
	case "telecom":
		cfg := workload.DefaultTelecom()
		if err := workload.SetupTelecom(sys, cfg); err != nil {
			return err
		}
		subSrc = `for $c in outCOM(<p>orchestrator</p>)
return <call id="{$c.callId}" method="{$c.callMethod}" to="{$c.callee}"/>
by publish as channel "calls"`
		drive = func() (int, error) { return workload.RunTelecom(sys, cfg) }
	case "edos":
		cfg := workload.DefaultEdos()
		e, err := workload.SetupEdos(sys, cfg)
		if err != nil {
			return err
		}
		subSrc = e.StatsSubscription("GetPackage")
		drive = func() (int, error) {
			d, q, err := e.Run()
			return d + q, err
		}
	case "rss":
		portal := sys.MustAddPeer("portal.com")
		churn := workload.NewFeedChurn(9, "portal news", 4)
		portal.RegisterFeed("http://portal.com/feed", churn.Fetch())
		subSrc = `for $r in rssCOM(<p>portal.com</p>)
return $r by publish as channel "feedChanges"`
		drive = func() (int, error) {
			n := 0
			for i := 0; i < 12; i++ {
				churn.Step()
				k, err := sys.Poll()
				if err != nil {
					return n, err
				}
				n += k
			}
			return n, nil
		}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if *subFile != "" {
		b, err := os.ReadFile(*subFile)
		if err != nil {
			return err
		}
		subSrc = string(b)
	}

	fmt.Fprintf(out, "== scenario %s ==\n%s\n\n", *scenario, subSrc)
	task, err := mgr.Subscribe(subSrc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "deployed plan:\n%s\n", task.Plan.Tree())

	events, err := drive()
	if err != nil {
		return err
	}
	task.Stop()
	results := task.Results().Drain()
	fmt.Fprintf(out, "drove %d events; %d results on %s:\n", events, len(results), task.ResultChannel())
	for _, it := range results {
		fmt.Fprintf(out, "  t=%-8s %s\n", it.Time, it.Tree)
	}
	tot := sys.Net.Totals()
	fmt.Fprintf(out, "\nnetwork: %d messages, %d bytes over %d links\n", tot.Messages, tot.Bytes, tot.Links)
	return nil
}

// runAgg runs the in-network aggregation scenario: a windowed
// group-by-count over every monitored source, deployed flat (one
// aggregator ingesting all streams) or as a DHT-routed partial/merge
// tree, optionally under crash and graceful-leave churn. The report
// scores every windowed count against the deterministic expectation of
// the drive schedule.
func runAgg(out io.Writer, cfg workload.AggConfig) error {
	lab, err := workload.SetupAgg(cfg)
	if err != nil {
		return err
	}
	det := cfg.Detector
	if det == "" {
		det = "gossip"
	}
	fn := cfg.Fn
	if fn == "" {
		fn = "count"
	}
	fmt.Fprintf(out, "== scenario agg ==\nmode %s (degree %d), fn %s, sources: %d, workers: %d, events: %d, window %v, crash every %d, leave every %d, replay %v, detector %s\n",
		cfg.Mode, cfg.Degree, fn, cfg.Sources, cfg.Workers, cfg.Events, cfg.Window, cfg.CrashEvery, cfg.LeaveEvery, cfg.Replay, det)
	fmt.Fprintf(out, "deployed plan:\n%s\n", lab.Task.Plan.Tree())
	rep, err := lab.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "drove %d events across %d windows\n", rep.Driven, rep.Windows)
	fmt.Fprintf(out, "windowed-group completeness %.0f%% (%d/%d groups correct, %d emitted)\n",
		rep.Completeness()*100, rep.CorrectGroups, rep.ExpectedGroups, rep.ResultGroups)
	if rep.SketchGroups > 0 {
		fmt.Fprintf(out, "sketch accuracy: max rel err %.2f%%, mean %.2f%% over %d groups (vs exact replayed distinct counts)\n",
			rep.MaxRelErr*100, rep.MeanRelErr*100, rep.SketchGroups)
	}
	fmt.Fprintf(out, "ingest load: max %d/peer, mean %.1f/peer, max versus mean %.2fx\n",
		rep.IngestMax, rep.IngestMean, rep.IngestRatio())
	fmt.Fprintf(out, "crashes: %d, leaves: %d, joins: %d, detected: %d, repaired: %d, replayed: %d\n",
		rep.Crashes, rep.Leaves, rep.Joins, rep.Deaths, rep.Repairs, rep.Replayed)
	fmt.Fprintf(out, "aggregation host ended at %s\n", lab.AggHost())
	fmt.Fprintf(out, "\nnetwork: %d messages, %d bytes, %d dropped over %d links\n",
		rep.Traffic.Messages, rep.Traffic.Bytes, rep.Traffic.Dropped, rep.Traffic.Links)
	return nil
}

// runShare runs the multi-tenant aggregation scenario twice — once
// through the reuse pass (overlapping subscriptions share aggregation
// trees) and once unshared (every subscription builds its own) — and
// reports both against the same ground truth, so the sharing shows up as
// pure deployment and ingest savings, never as an answer change.
func runShare(out io.Writer, cfg workload.ShareConfig) error {
	det := cfg.Detector
	if det == "" {
		det = "gossip"
	}
	win := cfg.Window
	if win <= 0 {
		step := cfg.Step
		if step <= 0 {
			step = time.Second
		}
		win = 8 * step // SetupShare's default
	}
	fmt.Fprintf(out, "== scenario share ==\nsources: %d, workers: %d, subscriptions: %d, events: %d, window %v, crash every %d, leave every %d, replay %v, detector %s\n",
		cfg.Sources, cfg.Workers, cfg.Subs, cfg.Events, win, cfg.CrashEvery, cfg.LeaveEvery, cfg.Replay, det)
	if cfg.GrowFrom > 0 {
		fmt.Fprintf(out, "elastic pool: growing from %d to %d workers via the join protocol\n", cfg.GrowFrom, cfg.Workers)
	}
	reps := make(map[string]*workload.ShareReport, 2)
	for _, mode := range []string{"shared", "unshared"} {
		c := cfg
		c.Mode = mode
		lab, err := workload.SetupShare(c)
		if err != nil {
			return err
		}
		rep, err := lab.Run()
		if err != nil {
			return err
		}
		reps[mode] = rep
		fmt.Fprintf(out, "%-9s %d operators (%.2f/sub), byte-identical %d/%d subs, completeness %.0f%%, hottest peer ingest %d (%.2fx mean)\n",
			mode+":", rep.Operators, rep.OpsPerSub(), rep.ByteIdenticalSubs, rep.Subs,
			rep.Completeness()*100, rep.IngestMax, rep.IngestRatio())
		for _, m := range rep.Mismatches {
			fmt.Fprintf(out, "  mismatch: %s\n", m)
		}
	}
	sh, un := reps["shared"], reps["unshared"]
	fmt.Fprintf(out, "reuse pass: %d ops reused, %d fresh, %d discovery lookups (%d failed)\n",
		sh.ReusedOps, sh.NewOps, sh.Lookups, sh.FailedLookups)
	fmt.Fprintf(out, "sharing: %.1fx fewer operators, hotspot ingest %d vs %d\n",
		float64(un.Operators)/float64(sh.Operators), sh.IngestMax, un.IngestMax)
	fmt.Fprintf(out, "churn (shared run): crashes %d, leaves %d, joins %d, repaired %d, replayed %d\n",
		sh.Crashes, sh.Leaves, sh.Joins, sh.Repairs+sh.LeaveRepairs, sh.Replayed)
	fmt.Fprintf(out, "\nnetwork (shared run): %d messages, %d bytes, %d dropped over %d links\n",
		sh.Traffic.Messages, sh.Traffic.Bytes, sh.Traffic.Dropped, sh.Traffic.Links)
	return nil
}

// runChurn runs the self-healing scenario: the relay operator of a
// subscription is killed repeatedly while events flow; the supervisor
// migrates it and the report shows what the churn cost. With replay on,
// outage windows are retransmitted and the run ends lossless. The
// detector-mode and partition knobs select the failure-detection axis
// (home heartbeats vs SWIM gossip) and the survivability case.
func runChurn(out io.Writer, cfg workload.ChurnConfig) error {
	lab, err := workload.SetupChurn(cfg)
	if err != nil {
		return err
	}
	det := cfg.Detector
	if det == "" {
		det = "home"
	}
	fmt.Fprintf(out, "== scenario churn ==\nrelay workers: %d, events: %d, crash every %d events, MTTR %v, replay %v, detector %s\n",
		cfg.Workers, cfg.Events, cfg.CrashEvery, cfg.MTTR, cfg.Replay, det)
	if cfg.GrowFrom > 0 {
		fmt.Fprintf(out, "elastic pool: growing from %d to %d workers via the join protocol\n", cfg.GrowFrom, cfg.Workers)
	}
	if cfg.Spread {
		fmt.Fprintf(out, "DHT spreading: virtual-node tokens + bounded-load checkpoint placement\n")
	}
	if cfg.PartitionHomeAfter > 0 {
		fmt.Fprintf(out, "monitor peer partitioned away after %d events\n", cfg.PartitionHomeAfter)
	}
	fmt.Fprintf(out, "deployed plan:\n%s\n", lab.Task.Plan.Tree())
	rep, err := lab.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "drove %d events; %d results arrived (completeness %.0f%%)\n",
		rep.Driven, rep.Received, rep.Completeness()*100)
	fmt.Fprintf(out, "crashes: %d, detected: %d, repaired: %d, replayed: %d, mean detection latency %.1fs\n",
		rep.Crashes, rep.Deaths, rep.Repairs, rep.Replayed, rep.DetectionLatency.Mean())
	if rep.Joins > 0 {
		fmt.Fprintf(out, "joins: %d workers admitted at runtime\n", rep.Joins)
	}
	if rep.Leaves > 0 {
		fmt.Fprintf(out, "leaves: %d graceful departures (%d handoff migrations, zero detection latency)\n",
			rep.Leaves, rep.LeaveRepairs)
	}
	fmt.Fprintf(out, "relay ended at %s\n", lab.RelayHost())
	fmt.Fprintf(out, "\nnetwork: %d messages, %d bytes, %d dropped over %d links\n",
		rep.Traffic.Messages, rep.Traffic.Bytes, rep.Traffic.Dropped, rep.Traffic.Links)
	return nil
}
