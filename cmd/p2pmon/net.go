package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"p2pm/internal/simnet"
	"p2pm/internal/telemetry"
	"p2pm/internal/transport"
)

// netConfig is the -scenario net parameter set.
type netConfig struct {
	Fn      string // aggregate function (default count)
	Users   int    // value universe for value-consuming aggregates
	Windows int    // windows to complete (default 5)
	Nodes   int    // simnet mode: cluster size (default 3)

	// TCP mode: this process runs exactly one node.
	Listen string // listen address; empty = single-process simnet mode
	Name   string // this node's peer name
	Peers  string // name=addr,name=addr,... including self

	// MetricsAddr serves this process's telemetry registry over HTTP
	// (Prometheus at /metrics, JSON at /metrics.json) for the run's
	// lifetime; empty disables the endpoint. See docs/TELEMETRY.md.
	MetricsAddr string
}

// netTelemetry starts the optional metrics endpoint for a net run and
// returns the registry instrumented transports should feed. Both are
// nil when the endpoint is off; the caller closes the server.
func netTelemetry(cfg netConfig) (*telemetry.Registry, *telemetry.Server, error) {
	if cfg.MetricsAddr == "" {
		return nil, nil, nil
	}
	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve(cfg.MetricsAddr, reg)
	if err != nil {
		return nil, nil, fmt.Errorf("p2pmon: metrics endpoint: %w", err)
	}
	fmt.Fprintf(os.Stderr, "net: metrics on http://%s/metrics\n", srv.Addr)
	return reg, srv, nil
}

// netWait bounds a cluster run; the CI smoke job budgets three minutes
// for the whole three-process exercise, so any healthy run finishes
// far inside this.
const netWait = 120 * time.Second

// runNet runs the transport cluster scenario. Only the root's window
// results go to out — one line per window, a pure function of
// (fn, windows, events, users, sorted peer names) — so the output of a
// multi-process TCP cluster and of the in-process simnet run are
// byte-comparable. Status and progress go to stderr.
func runNet(out io.Writer, cfg netConfig) error {
	if cfg.Listen == "" {
		if cfg.Name != "" || cfg.Peers != "" {
			return fmt.Errorf("p2pmon: -name and -peers need -listen (they describe a TCP cluster process)")
		}
		return runNetSim(out, cfg)
	}
	return runNetTCP(out, cfg)
}

func netNodeConfig(cfg netConfig, self string, peers []string) transport.NodeConfig {
	return transport.NodeConfig{
		Self:            self,
		Peers:           peers,
		Fn:              cfg.Fn,
		Windows:         cfg.Windows,
		Users:           cfg.Users,
		ResendEvery:     50 * time.Millisecond,
		HeartbeatEvery:  100 * time.Millisecond,
		EventsPerWindow: 16,
	}
}

// runNetSim runs the whole cluster in this process over the simnet
// backend — the reference output a TCP run must reproduce byte for
// byte.
func runNetSim(out io.Writer, cfg netConfig) error {
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	if cfg.Nodes < 2 {
		return fmt.Errorf("p2pmon: -nodes %d cannot form a cluster (want >= 2)", cfg.Nodes)
	}
	peers := make([]string, cfg.Nodes)
	for i := range peers {
		peers[i] = fmt.Sprintf("n%d", i+1)
	}
	nw := simnet.New(simnet.Options{Seed: 1})
	sn := transport.NewSimNet(nw)
	reg, msrv, err := netTelemetry(cfg)
	if err != nil {
		return err
	}
	if reg != nil {
		nw.Instrument(reg)
		sn.Instrument(reg)
		defer msrv.Close()
	}
	nodes := make([]*transport.Node, 0, len(peers))
	for _, p := range peers {
		n, err := transport.NewNode(netNodeConfig(cfg, p, peers), sn.Endpoint(p))
		if err != nil {
			return err
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	var root *transport.Node
	for _, n := range nodes {
		if err := n.Wait(netWait); err != nil {
			return err
		}
		if n.IsRoot() {
			root = n
		}
	}
	fmt.Fprintf(os.Stderr, "net: simnet cluster %s done, root %s\n", strings.Join(peers, " "), root.Root())
	for _, line := range root.Results() {
		fmt.Fprintln(out, line)
	}
	lingerForScrape(msrv)
	return nil
}

// lingerForScrape holds a finished run's metrics endpoint open briefly:
// a short cluster run can complete faster than an external scraper
// (scripts/netsmoke.sh, a Prometheus poll) gets its first request in,
// and the final counters are the ones worth reading.
func lingerForScrape(msrv *telemetry.Server) {
	if msrv != nil {
		time.Sleep(2 * time.Second)
	}
}

// runNetTCP runs ONE cluster node in this process over real sockets.
// Start one process per peer of the -peers map; the root process
// prints the window results, the others print nothing on stdout.
func runNetTCP(out io.Writer, cfg netConfig) error {
	if cfg.Name == "" || cfg.Peers == "" {
		return fmt.Errorf("p2pmon: -listen needs -name and -peers")
	}
	if cfg.Nodes != 0 {
		return fmt.Errorf("p2pmon: -nodes applies to the simnet mode only (the TCP cluster size is the -peers map)")
	}
	addrs := make(map[string]string)
	for _, ent := range strings.Split(cfg.Peers, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok || name == "" || addr == "" {
			return fmt.Errorf("p2pmon: -peers entry %q is not name=host:port", ent)
		}
		addrs[name] = addr
	}
	if _, ok := addrs[cfg.Name]; !ok {
		return fmt.Errorf("p2pmon: -name %s is missing from the -peers map", cfg.Name)
	}
	peers := make([]string, 0, len(addrs))
	for p := range addrs {
		peers = append(peers, p)
	}
	sort.Strings(peers)

	reg, msrv, err := netTelemetry(cfg)
	if err != nil {
		return err
	}
	if msrv != nil {
		defer msrv.Close()
	}
	tr, err := transport.ListenTCP(cfg.Name, cfg.Listen, transport.TCPOptions{Telemetry: reg})
	if err != nil {
		return err
	}
	defer tr.Close()
	for p, a := range addrs {
		if p != cfg.Name {
			tr.AddPeer(p, a)
		}
	}
	n, err := transport.NewNode(netNodeConfig(cfg, cfg.Name, peers), tr)
	if err != nil {
		return err
	}
	n.Start()
	defer n.Stop()
	if err := n.Wait(netWait); err != nil {
		return err
	}
	st := tr.Stats()
	fmt.Fprintf(os.Stderr, "net: %s done (root %s): sent %d msgs/%d B, received %d msgs/%d B, dropped %d, reconnects %d\n",
		cfg.Name, n.Root(), st.Sent, st.SentBytes, st.Received, st.ReceivedBytes, st.Dropped, st.Reconnects)
	if n.IsRoot() {
		for _, line := range n.Results() {
			fmt.Fprintln(out, line)
		}
		// Linger briefly with the handler still live: a source whose
		// final ack was lost re-sends within its resend period and gets
		// re-acked, instead of retrying against a closed socket.
		time.Sleep(500 * time.Millisecond)
	}
	lingerForScrape(msrv)
	return nil
}
