package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestNetScenarioSimnet(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "net"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("net scenario emitted %d lines, want 5:\n%s", len(lines), out.String())
	}
	for w, l := range lines {
		want := fmt.Sprintf("window=%d fn=count count=32 events=32 sources=2", w)
		if l != want {
			t.Errorf("line %d = %q, want %q", w, l, want)
		}
	}
}

func TestNetScenarioDeterministic(t *testing.T) {
	args := []string{"-scenario", "net", "-nodes", "4", "-windows", "3", "-agg-fn", "distinct"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two identical net runs diverged:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestNetScenarioTCPMatchesSimnet runs a full 3-member TCP cluster
// in-process (one run() per member, as three OS processes would) and
// requires the root's stdout to be byte-identical to the simnet run —
// the CLI-level form of the acceptance criterion that
// scripts/netsmoke.sh checks across real processes.
func TestNetScenarioTCPMatchesSimnet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster skipped in -short")
	}
	var want bytes.Buffer
	if err := run([]string{"-scenario", "net", "-windows", "3"}, &want); err != nil {
		t.Fatal(err)
	}
	// Reserve three loopback ports.
	addrs := make(map[string]string, 3)
	for _, n := range []string{"n1", "n2", "n3"} {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[n] = l.Addr().String()
		l.Close()
	}
	peers := fmt.Sprintf("n1=%s,n2=%s,n3=%s", addrs["n1"], addrs["n2"], addrs["n3"])
	// Fill both maps before spawning anything: the goroutines only read
	// addrs and write through their own *bytes.Buffer.
	outs := make(map[string]*bytes.Buffer, 3)
	for name := range addrs {
		outs[name] = &bytes.Buffer{}
	}
	errs := make(map[string]error, 3)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for name, out := range outs {
		wg.Add(1)
		go func(name string, out *bytes.Buffer) {
			defer wg.Done()
			err := run([]string{"-scenario", "net", "-windows", "3",
				"-listen", addrs[name], "-name", name, "-peers", peers}, out)
			mu.Lock()
			errs[name] = err
			mu.Unlock()
		}(name, out)
	}
	wg.Wait()
	for name, err := range errs {
		if err != nil {
			t.Fatalf("member %s: %v", name, err)
		}
	}
	if got := outs["n1"].String(); got != want.String() {
		t.Errorf("tcp root output != simnet output\n got:\n%s\nwant:\n%s", got, want.String())
	}
	if outs["n2"].Len() != 0 || outs["n3"].Len() != 0 {
		t.Errorf("non-root members wrote to stdout: n2=%q n3=%q", outs["n2"], outs["n3"])
	}
}

func TestNetFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-scenario", "net", "-nodes", "1"},
		{"-scenario", "net", "-name", "n1"},                                                  // -name without -listen
		{"-scenario", "net", "-peers", "n1=127.0.0.1:1"},                                     // -peers without -listen
		{"-scenario", "net", "-listen", "127.0.0.1:0"},                                       // -listen without -name/-peers
		{"-scenario", "net", "-listen", "127.0.0.1:0", "-name", "n9", "-peers", "n1=a,n2=b"}, // self not in map
		{"-scenario", "net", "-listen", "127.0.0.1:0", "-name", "n1", "-peers", "garbage"},   // bad map entry
		{"-scenario", "net", "-agg-fn", "median"},                                            // unknown aggregate
		{"-scenario", "net", "-replay"},                                                      // lab flag from another scenario
		{"-scenario", "net", "-events", "10"},                                                // ditto
		{"-scenario", "net", "-no-reuse"},                                                    // optimizer knob
		{"-scenario", "churn", "-windows", "4"},                                              // net flag elsewhere
		{"-scenario", "agg", "-nodes", "3"},                                                  // ditto
		{"-scenario", "meteo", "-listen", "127.0.0.1:0"},
	}
	for _, args := range bad {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("accepted: %v", args)
		}
	}
}
