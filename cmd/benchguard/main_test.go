package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: p2pm
BenchmarkXMLParse-8           100        52000 ns/op      12000 B/op      150 allocs/op
BenchmarkXMLParse-8           100        50000 ns/op      12000 B/op      150 allocs/op
BenchmarkXMLParse-8           100        51000 ns/op      12000 B/op      150 allocs/op
BenchmarkJoinIndexed-8        100         8000 ns/op
BenchmarkJoinIndexed-8        100         7500 ns/op
BenchmarkGroupAccept-8        100          100 ns/op
BenchmarkXPathEval-8          100          400 ns/op
PASS
ok      p2pm    1.234s
`

func writeInput(t *testing.T, dir, content string) string {
	t.Helper()
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchTakesMinAcrossCounts(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Benchmarks["BenchmarkXMLParse"]; got != 50000 {
		t.Errorf("XMLParse min = %v, want 50000 (GOMAXPROCS suffix stripped, min of counts)", got)
	}
	if got := snap.Benchmarks["BenchmarkJoinIndexed"]; got != 7500 {
		t.Errorf("JoinIndexed min = %v, want 7500", got)
	}
}

func TestUpdateThenCleanPass(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, sampleBench)
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-in", in, "-baseline", base, "-update"}, &out, &errb); code != 0 {
		t.Fatalf("update exit = %d (%s)", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"-in", in, "-baseline", base}, &out, &errb); code != 0 {
		t.Fatalf("identical run flagged: exit %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Errorf("missing pass summary:\n%s", out.String())
	}
}

func TestRegressionFailsTheGate(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, sampleBench)
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-in", in, "-baseline", base, "-update"}, &out, &errb); code != 0 {
		t.Fatal("baseline write failed")
	}
	// One benchmark slows 60% while the pack holds still: a real
	// hot-path regression, beyond the 25% gate even after the median
	// shift (≈1.0) is divided out.
	slow := strings.ReplaceAll(strings.ReplaceAll(sampleBench,
		"7500 ns/op", "12000 ns/op"), "8000 ns/op", "12500 ns/op")
	in2 := writeInput(t, t.TempDir(), slow)
	out.Reset()
	code := run([]string{"-in", in2, "-baseline", base}, &out, &errb)
	if code != 1 {
		t.Fatalf("regression exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED BenchmarkJoinIndexed") {
		t.Errorf("regression not named:\n%s", out.String())
	}
	// A generous threshold lets the same run pass.
	out.Reset()
	if code := run([]string{"-in", in2, "-baseline", base, "-threshold", "0.8"}, &out, &errb); code != 0 {
		t.Errorf("exit = %d with -threshold 0.8, want 0", code)
	}
}

// TestUniformShiftIsMachineSpeedNotRegression: every benchmark exactly
// 2× slower is a slower machine (a different CI runner class), not a
// code regression — the median normalization absorbs it. With
// -no-normalize the same input fails, which is the intended absolute
// mode for identical hardware.
func TestUniformShiftIsMachineSpeedNotRegression(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, sampleBench)
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-in", in, "-baseline", base, "-update"}, &out, &errb); code != 0 {
		t.Fatal("baseline write failed")
	}
	doubled := `BenchmarkXMLParse-8    100  100000 ns/op
BenchmarkJoinIndexed-8  100  15000 ns/op
BenchmarkGroupAccept-8  100  200 ns/op
BenchmarkXPathEval-8    100  800 ns/op
`
	in2 := writeInput(t, t.TempDir(), doubled)
	out.Reset()
	if code := run([]string{"-in", in2, "-baseline", base}, &out, &errb); code != 0 {
		t.Fatalf("uniform 2x shift failed the normalized gate: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "machine-speed factor ×2.00") {
		t.Errorf("machine factor not reported:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-in", in2, "-baseline", base, "-no-normalize"}, &out, &errb); code != 1 {
		t.Errorf("-no-normalize exit = %d, want 1 (absolute mode must see the 2x)", code)
	}
}

func TestMissingAndNewBenchmarksDoNotFail(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, sampleBench)
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-in", in, "-baseline", base, "-update"}, &out, &errb); code != 0 {
		t.Fatal("baseline write failed")
	}
	subset := `BenchmarkXMLParse-8  100  50000 ns/op
BenchmarkBrandNew-8  100  10 ns/op
`
	in2 := writeInput(t, t.TempDir(), subset)
	out.Reset()
	if code := run([]string{"-in", in2, "-baseline", base}, &out, &errb); code != 0 {
		t.Fatalf("subset run failed the gate: %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip") || !strings.Contains(out.String(), "new") {
		t.Errorf("missing/new benchmarks not reported:\n%s", out.String())
	}
}

func TestSnapshotOutputWritten(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, sampleBench)
	base := filepath.Join(dir, "base.json")
	outJSON := filepath.Join(dir, "BENCH_pr3.json")
	var out, errb bytes.Buffer
	run([]string{"-in", in, "-baseline", base, "-update", "-out", outJSON}, &out, &errb)
	snap, err := readSnapshot(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 4 {
		t.Errorf("snapshot holds %d benchmarks, want 4", len(snap.Benchmarks))
	}
}

func TestNoInputIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-in", "/nonexistent"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	empty := writeInput(t, t.TempDir(), "PASS\n")
	if code := run([]string{"-in", empty}, &out, &errb); code != 2 {
		t.Errorf("empty input exit = %d, want 2", code)
	}
}

// TestSmallSharedSetFallsBackToAbsolute: with fewer than 3 shared
// benchmarks the median IS the sample, so normalization would launder
// any regression — the gate must fall back to absolute comparison.
func TestSmallSharedSetFallsBackToAbsolute(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	one := writeInput(t, dir, "BenchmarkXMLParse-8  100  50000 ns/op\n")
	if code := run([]string{"-in", one, "-baseline", base, "-update"}, &out, &errb); code != 0 {
		t.Fatal("baseline write failed")
	}
	slow := writeInput(t, t.TempDir(), "BenchmarkXMLParse-8  100  500000 ns/op\n")
	out.Reset()
	if code := run([]string{"-in", slow, "-baseline", base}, &out, &errb); code != 1 {
		t.Fatalf("10x slowdown on the only shared benchmark passed: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "comparing absolute") {
		t.Errorf("fallback not announced:\n%s", out.String())
	}
}

// TestZeroOverlapFailsTheGate: a run sharing no benchmark with the
// baseline compared nothing — renamed benchmarks or a drifted regex
// must not produce a green check.
func TestZeroOverlapFailsTheGate(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir, sampleBench)
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-in", in, "-baseline", base, "-update"}, &out, &errb); code != 0 {
		t.Fatal("baseline write failed")
	}
	other := writeInput(t, t.TempDir(), "BenchmarkRenamed-8  100  50000 ns/op\n")
	out.Reset()
	if code := run([]string{"-in", other, "-baseline", base}, &out, &errb); code != 2 {
		t.Fatalf("zero-overlap run exit = %d, want 2\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "guarded nothing") {
		t.Errorf("zero overlap not named:\n%s", errb.String())
	}
}
