// Command benchguard is the CI bench-regression gate: it parses `go
// test -bench` output, aggregates each benchmark's best (minimum)
// ns/op across -count repetitions — the least-noise estimator — and
// compares the result against a committed baseline, failing when any
// guarded hot-path benchmark regressed beyond the threshold.
//
// The comparison is median-normalized by default: the median ns/op
// shift across all guarded benchmarks is treated as the machine-speed
// factor (a different runner class, CPU throttling, a busy host) and
// divided out before the threshold applies. A real hot-path regression
// moves one benchmark away from the pack; a slower machine moves them
// all together. `-no-normalize` compares absolute ns/op instead —
// only meaningful when baseline and run share identical hardware, and
// blind-spotted the other way: normalization cannot see a regression
// that slows every guarded benchmark uniformly.
//
// Usage:
//
//	go test -run '^$' -bench 'X|Y' -benchtime 100x -count 3 . | tee bench.txt
//	benchguard -in bench.txt -out BENCH_pr3.json                  # compare vs BENCH_baseline.json
//	benchguard -in bench.txt -update                              # (re)write the baseline
//	benchguard -in bench.txt -baseline other.json -threshold 0.5  # custom gate
//
// The exit code is 1 on regression, 2 on usage errors. Benchmarks
// present in the baseline but missing from the run are reported but do
// not fail the gate (CI may guard a subset); new benchmarks are added
// to the output snapshot for the next baseline refresh.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Snapshot is the persisted form: benchmark name → best ns/op.
type Snapshot struct {
	// Note documents provenance (host class, flags); informational.
	Note string `json:"note,omitempty"`
	// GoVersion records the toolchain that produced the numbers.
	GoVersion string `json:"goVersion,omitempty"`
	// Benchmarks maps the benchmark name (GOMAXPROCS suffix stripped)
	// to its minimum observed ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkXMLParse-8   	     100	    123456 ns/op	..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "file with `go test -bench` output (default stdin)")
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline snapshot")
	outFile := fs.String("out", "", "write the run's snapshot here (e.g. BENCH_pr3.json)")
	threshold := fs.Float64("threshold", 0.25, "maximum tolerated slowdown ratio (0.25 = +25% ns/op)")
	update := fs.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	note := fs.String("note", "", "provenance note stored in written snapshots")
	noNormalize := fs.Bool("no-normalize", false, "compare absolute ns/op instead of dividing out the median (machine-speed) shift")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		src = f
	}
	cur, err := parseBench(src)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchguard: no benchmark results in input")
		return 2
	}
	cur.GoVersion = runtime.Version()
	cur.Note = *note

	if *outFile != "" {
		if err := writeSnapshot(*outFile, cur); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if *update {
		if err := writeSnapshot(*baseline, cur); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "benchguard: baseline %s updated with %d benchmarks\n", *baseline, len(cur.Benchmarks))
		return 0
	}

	base, err := readSnapshot(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: cannot read baseline %s: %v (run with -update to create it)\n", *baseline, err)
		return 2
	}
	machine := 1.0
	if !*noNormalize {
		var ratios []float64
		for name, baseNs := range base.Benchmarks {
			if curNs, ok := cur.Benchmarks[name]; ok {
				ratios = append(ratios, curNs/baseNs)
			}
		}
		// The median is only a machine-speed estimate when a regression
		// in one benchmark cannot drag it: with fewer than 3 shared
		// benchmarks the "median" IS the (possibly regressed) sample,
		// and normalizing by it would wave any slowdown through.
		if len(ratios) >= 3 {
			machine = median(ratios)
			if machine != 1 {
				fmt.Fprintf(stdout, "  machine-speed factor ×%.2f (median shift across %d shared benchmarks, divided out; -no-normalize for absolute)\n",
					machine, len(ratios))
			}
		} else {
			fmt.Fprintf(stdout, "  only %d shared benchmark(s): comparing absolute ns/op (median normalization needs >= 3)\n", len(ratios))
		}
	}
	regressions := 0
	for _, name := range sortedNames(base.Benchmarks) {
		baseNs := base.Benchmarks[name]
		curNs, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(stdout, "  skip  %-40s (not in this run)\n", name)
			continue
		}
		ratio := curNs / baseNs / machine
		status := "ok"
		if ratio > 1+*threshold {
			status = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(stdout, "  %-9s %-40s base %12s  now %12s  (%+.1f%% normalized)\n",
			status, name, fmtNs(baseNs), fmtNs(curNs), (ratio-1)*100)
	}
	for _, name := range sortedNames(cur.Benchmarks) {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(stdout, "  new   %-40s %12s (no baseline yet)\n", name, fmtNs(cur.Benchmarks[name]))
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchguard: %d benchmark(s) regressed more than %.0f%% vs %s\n",
			regressions, *threshold*100, *baseline)
		return 1
	}
	// A run sharing nothing with the baseline compared nothing: renamed
	// benchmarks or a drifted -bench regex must not pass as green.
	compared := 0
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; ok {
			compared++
		}
	}
	if compared == 0 {
		fmt.Fprintf(stderr, "benchguard: no benchmark in this run matches the baseline %s — the gate guarded nothing (renamed benchmarks? refresh with -update)\n", *baseline)
		return 2
	}
	fmt.Fprintf(stdout, "benchguard: no regression beyond %.0f%% across %d compared benchmarks (%d in baseline)\n",
		*threshold*100, compared, len(base.Benchmarks))
	return 0
}

// parseBench extracts min-ns/op per benchmark from `go test -bench`
// output (multiple -count repetitions collapse to their minimum).
func parseBench(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Benchmarks: map[string]float64{}}
	start := 0
	for i := 0; i <= len(data); i++ {
		if i != len(data) && data[i] != '\n' {
			continue
		}
		line := string(data[start:i])
		start = i + 1
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if old, ok := snap.Benchmarks[m[1]]; !ok || ns < old {
			snap.Benchmarks[m[1]] = ns
		}
	}
	return snap, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("%s holds no benchmarks", path)
	}
	return &s, nil
}

func writeSnapshot(path string, s *Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// median returns the middle value (mean of the middle two for even
// counts); 1.0 for an empty set.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 1
	}
	sort.Float64s(v)
	mid := len(v) / 2
	if len(v)%2 == 1 {
		return v[mid]
	}
	return (v[mid-1] + v[mid]) / 2
}

func sortedNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// fmtNs renders ns/op human-readably without pulling in a deps.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}
