// Package p2pm is a Go implementation of P2P Monitor (P2PM), the
// distributed monitoring system for peer-to-peer systems of Abiteboul &
// Marinoiu, "Distributed Monitoring of Peer to Peer Systems" (WIDM 2007 /
// HAL inria-00259054).
//
// P2PM monitors other P2P systems: declarative P2PML subscriptions are
// compiled into distributed algebraic plans over XML streams, whose
// operators — alerters detecting local events, stream processors
// (filter, restructure, union, join, duplicate removal), and publishers —
// are deployed across the peers and stitched together with channels.
// A multi-subscription Filter evaluates cheap root-attribute conditions
// first (preFilter + AES hash-tree) and shared-NFA tree patterns
// (YFilter) only for the subscriptions still alive, and a DHT-backed
// stream-definition database lets new subscriptions reuse streams that
// existing tasks already compute.
//
// The monitor tolerates the churn that defines the P2P systems it
// watches: the simulated substrate can crash, partition and lose
// messages (simnet fault injection); a heartbeat failure detector on the
// virtual clock declares silent peers dead; and a supervisor migrates a
// dead peer's operators onto live peers — preferring hosts that
// announced a replica of the affected stream — re-binding every consumer
// end-to-end while the DHT re-replicates the stream definitions the
// crashed node held. See docs/CHURN.md and the X2 experiment.
//
// Quick start:
//
//	sys := p2pm.MustSystem(p2pm.DefaultConfig())
//	mgr := sys.MustAddPeer("monitor")
//	server := sys.MustAddPeer("meteo.com")
//	server.Endpoint().Register("GetTemperature", handler, latency)
//	task, err := mgr.Subscribe(`for $c in inCOM(<p>meteo.com</p>) ...`)
//	... drive traffic ...
//	task.Stop()
//	for _, item := range task.Results().Drain() { ... }
//
// The heavy lifting lives in the internal packages (filter, algebra,
// p2pml, kadop, reuse, ...); this package re-exports the stable surface.
package p2pm

import (
	"p2pm/internal/core"
	"p2pm/internal/p2pml"
	"p2pm/internal/peer"
	"p2pm/internal/stream"
)

// System is a P2PM deployment: the monitoring network, the monitored
// substrates and the stream-definition database.
type System = peer.System

// Peer is one P2PM peer (Subscription Manager plus hosted operators).
type Peer = peer.Peer

// Task is a deployed monitoring subscription.
type Task = peer.Task

// Config configures a System: functional sub-structs (DHT, Agg, Replay,
// Gossip) validated by NewSystem, runtime-mutable through
// System.Tuning(). See docs/ADAPTIVE.md for the control surface.
type Config = peer.Config

// DHTConfig groups the stream-definition ring knobs.
type DHTConfig = peer.DHTConfig

// AggConfig groups aggregation-tree construction and the adaptive
// re-chunking controller.
type AggConfig = peer.AggConfig

// ReplayConfig groups the lossless-failover layer.
type ReplayConfig = peer.ReplayConfig

// GossipConfig supplies system-level gossip-detector defaults.
type GossipConfig = peer.GossipConfig

// Tuning is the runtime-mutable control surface of a running System.
type Tuning = peer.Tuning

// Monitor is the high-level facade with explain tooling.
type Monitor = core.Monitor

// Subscription is a parsed P2PML statement.
type Subscription = p2pml.Subscription

// Item is one element of an XML stream.
type Item = stream.Item

// Ref names a stream as (StreamID, PeerID) — the paper's s@p notation.
type Ref = stream.Ref

// DetectorOptions configures the heartbeat failure detector (interval,
// suspicion threshold, accounted heartbeat size).
type DetectorOptions = peer.DetectorOptions

// GossipOptions configures the SWIM-style gossip failure detector
// (probe interval/fanout/timeout, indirect proxies, suspicion window,
// death quorum); see docs/DETECTOR.md.
type GossipOptions = peer.GossipOptions

// FailureDetector is the detector interface a Supervisor consumes —
// implemented by both the heartbeat Detector and the GossipDetector,
// and returned by Supervisor.Detector().
type FailureDetector = peer.FailureDetector

// Supervisor couples a failure detector with self-healing task
// migration; start one with System.StartSupervisor (single-home
// heartbeats) or System.StartGossipSupervisor (decentralized, survives
// the loss of any individual peer) and drive it with System.Step.
type Supervisor = peer.Supervisor

// FailoverEvent records one repair action taken when a peer died.
type FailoverEvent = peer.FailoverEvent

// NewSystem builds an empty monitoring system from a validated
// configuration.
func NewSystem(cfg Config) (*System, error) { return peer.NewSystem(cfg) }

// MustSystem is NewSystem that panics on a bad configuration.
func MustSystem(cfg Config) *System { return peer.MustSystem(cfg) }

// NewMonitor builds a system wrapped in the explain facade.
func NewMonitor(cfg Config) (*Monitor, error) { return core.New(cfg) }

// MustMonitor is NewMonitor that panics on a bad configuration.
func MustMonitor(cfg Config) *Monitor { return core.MustNew(cfg) }

// DefaultConfig enables the full feature set (pushdown, reuse, SOAP
// envelopes in alerts) with 2-way DHT replication.
func DefaultConfig() Config { return peer.DefaultConfig() }

// Parse parses and validates a P2PML subscription without deploying it.
func Parse(src string) (*Subscription, error) { return p2pml.Parse(src) }

// Explain renders the Figure 3 processing chain (parse → compile →
// optimize) for a subscription, managed at the named peer.
func Explain(src, subscriber string) (string, error) {
	ex, err := core.Explain(src, subscriber)
	if err != nil {
		return "", err
	}
	return ex.String(), nil
}
