// Benchmarks backing the experiment tables (DESIGN.md index, C1–C11).
// Each bench isolates the hot loop of one experiment; `go run
// ./cmd/benchrun` regenerates the full comparison tables around them.
package p2pm_test

import (
	"fmt"
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/dht"
	"p2pm/internal/filter"
	"p2pm/internal/kadop"
	"p2pm/internal/monoid"
	"p2pm/internal/operators"
	"p2pm/internal/p2pml"
	"p2pm/internal/peer"
	"p2pm/internal/reuse"
	"p2pm/internal/stream"
	"p2pm/internal/telemetry"
	"p2pm/internal/wire"
	"p2pm/internal/workload"
	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// --- substrate ---

func BenchmarkXMLParse(b *testing.B) {
	gen := workload.NewFilterGen(workload.DefaultFilterGen())
	raw := gen.Document().String()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmltree.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLSerialize(b *testing.B) {
	gen := workload.NewFilterGen(workload.DefaultFilterGen())
	doc := gen.Document()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = doc.String()
	}
}

func BenchmarkReadFirstTag(b *testing.B) {
	gen := workload.NewFilterGen(workload.DefaultFilterGen())
	raw := gen.Document().String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := xmltree.ReadFirstTag(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXPathEval(b *testing.B) {
	gen := workload.NewFilterGen(workload.DefaultFilterGen())
	doc := gen.Document()
	q := xpath.MustCompile(`//body//param[@p1 = "x2"]`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Matches(doc, nil)
	}
}

// --- C1/C2: the Filter ---

func filterWorld(b *testing.B, subs int, complexFrac float64) (*filter.Filter, []*xmltree.Node) {
	b.Helper()
	cfg := workload.DefaultFilterGen()
	cfg.ComplexFraction = complexFrac
	gen := workload.NewFilterGen(cfg)
	f := filter.New()
	for _, s := range gen.Subscriptions(subs) {
		if err := f.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	return f, gen.Documents(256)
}

func benchFilterMode(b *testing.B, subs int, mode filter.Mode) {
	f, docs := filterWorld(b, subs, 0.3)
	// Warm up: the first match triggers the lazy AES/YFilter rebuild
	// (the offline adjustment path), which is not the steady state.
	if _, err := f.MatchMode(docs[0], mode); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.MatchMode(docs[i%len(docs)], mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterTwoStage(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) { benchFilterMode(b, n, filter.ModeTwoStage) })
	}
}

func BenchmarkFilterNaive(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) { benchFilterMode(b, n, filter.ModeNaive) })
	}
}

func BenchmarkFilterYFilterOnly(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) { benchFilterMode(b, n, filter.ModeYFilterOnly) })
	}
}

// BenchmarkFilterSerializedFastPath measures the first-tag-only path: no
// complex subscriptions, bodies never parsed.
func BenchmarkFilterSerializedFastPath(b *testing.B) {
	cfg := workload.DefaultFilterGen()
	cfg.ComplexFraction = 0
	gen := workload.NewFilterGen(cfg)
	f := filter.New()
	for _, s := range gen.Subscriptions(10000) {
		if err := f.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	raws := gen.SerializedDocuments(256)
	if _, err := f.MatchSerialized(raws[0]); err != nil { // warm rebuild
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.MatchSerialized(raws[i%len(raws)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C3: AES ---

func BenchmarkAESMatch(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			a := filter.NewAES()
			rng := newBenchRand(1)
			for i := 0; i < n; i++ {
				var seq []int
				for c := 0; c < 60; c++ {
					if rng.Intn(20) == 0 {
						seq = append(seq, c)
					}
				}
				if len(seq) == 0 {
					seq = []int{i % 60}
				}
				if err := a.Insert(seq, i); err != nil {
					b.Fatal(err)
				}
			}
			satisfied := []int{3, 7, 12, 25, 31, 44, 58}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Match(satisfied)
			}
		})
	}
}

// --- C4: YFilter ---

func BenchmarkYFilterShared(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			gen := workload.NewFilterGen(workload.DefaultFilterGen())
			yf := filter.NewYFilter()
			for i := 0; i < n; i++ {
				if err := yf.Add(i, gen.Query()); err != nil {
					b.Fatal(err)
				}
			}
			docs := gen.Documents(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				yf.MatchAll(docs[i%len(docs)])
			}
		})
	}
}

func BenchmarkYFilterIndependentBaseline(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			gen := workload.NewFilterGen(workload.DefaultFilterGen())
			queries := make([]*xpath.Path, n)
			for i := range queries {
				queries[i] = gen.Query()
			}
			docs := gen.Documents(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := docs[i%len(docs)]
				for _, q := range queries {
					q.Matches(d, nil)
				}
			}
		})
	}
}

// --- C5/C7: whole-system (per-op: one full scenario) ---

func benchMeteoScenario(b *testing.B, pushdown, reuseOn bool, managers int) {
	for i := 0; i < b.N; i++ {
		opts := peer.DefaultConfig()
		opts.Pushdown = pushdown
		opts.Reuse = reuseOn
		sys := peer.MustSystem(opts)
		cfg := workload.DefaultMeteo()
		cfg.Calls = 10
		if err := workload.SetupMeteo(sys, cfg); err != nil {
			b.Fatal(err)
		}
		sub := workload.MeteoSubscription(cfg.Clients, cfg.Server)
		var tasks []*peer.Task
		for m := 0; m < managers; m++ {
			mgr := sys.MustAddPeer(fmt.Sprintf("mgr-%d", m))
			t, err := mgr.Subscribe(sub)
			if err != nil {
				b.Fatal(err)
			}
			tasks = append(tasks, t)
		}
		if _, err := workload.RunMeteo(sys, cfg); err != nil {
			b.Fatal(err)
		}
		for _, t := range tasks {
			t.Stop()
			t.Results().Drain()
		}
	}
}

func BenchmarkScenarioPushdown(b *testing.B)   { benchMeteoScenario(b, true, false, 1) }
func BenchmarkScenarioNoPushdown(b *testing.B) { benchMeteoScenario(b, false, false, 1) }
func BenchmarkScenarioReuse4(b *testing.B)     { benchMeteoScenario(b, true, true, 4) }
func BenchmarkScenarioNoReuse4(b *testing.B)   { benchMeteoScenario(b, true, false, 4) }

// --- C8/C10: Join ---

func benchJoin(b *testing.B, useIndex bool, window time.Duration) {
	j := &operators.Join{
		LeftKey:  operators.AttrKey("k"),
		RightKey: operators.AttrKey("k"),
		UseIndex: useIndex,
		Window:   window,
	}
	sink := func(stream.Item) {}
	const history = 10000
	for i := 0; i < history; i++ {
		l := xmltree.Elem("l")
		l.SetAttr("k", fmt.Sprintf("%d", i))
		j.Accept(0, stream.Item{Tree: l, Time: time.Duration(i) * time.Millisecond}, sink)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := xmltree.Elem("r")
		r.SetAttr("k", fmt.Sprintf("%d", i%history))
		j.Accept(1, stream.Item{Tree: r, Time: history * time.Millisecond}, sink)
	}
}

func BenchmarkJoinIndexed(b *testing.B)  { benchJoin(b, true, 0) }
func BenchmarkJoinScan(b *testing.B)     { benchJoin(b, false, 0) }
func BenchmarkJoinWindowed(b *testing.B) { benchJoin(b, true, time.Hour) }

// --- C9: KadoP discovery ---

func BenchmarkKadopDiscovery(b *testing.B) {
	for _, peers := range []int{100, 1000} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			ring := dht.New()
			for i := 0; i < peers; i++ {
				if err := ring.Join(fmt.Sprintf("peer-%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			db := kadop.New(ring)
			for i := 0; i < peers*10; i++ {
				def := &kadop.StreamDef{
					Ref:       stream.Ref{PeerID: fmt.Sprintf("peer-%d", i%peers), StreamID: fmt.Sprintf("s%d", i)},
					Operator:  "inCOM",
					Signature: fmt.Sprintf("inCOM(peer-%d)#%d", i%peers, i),
				}
				if err := db.Publish(def); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.FindAlerters(fmt.Sprintf("peer-%d", i%peers),
					fmt.Sprintf("peer-%d", (i*13)%peers), "inCOM"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C11 / language plumbing ---

func BenchmarkP2PMLParse(b *testing.B) {
	cfg := workload.DefaultMeteo()
	src := workload.MeteoSubscription(cfg.Clients, cfg.Server)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p2pml.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubsumptionSubscribe measures subscribing the k-th task of a
// nested-condition chain (X1): discovery + residual deployment cost.
func BenchmarkSubsumptionSubscribe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := peer.MustSystem(peer.DefaultConfig())
		m := sys.MustAddPeer("m.com")
		m.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.Elem("ok"), nil
		}, nil)
		base := sys.MustAddPeer("p0")
		t0, err := base.Subscribe(`for $e in inCOM(<p>m.com</p>) where $e.callMethod = "Q" return $e by publish as channel "c0"`)
		if err != nil {
			b.Fatal(err)
		}
		p1 := sys.MustAddPeer("p1")
		t1, err := p1.Subscribe(`for $e in inCOM(<p>m.com</p>) where $e.callMethod = "Q" and $e.fault != "" return $e by publish as channel "c1"`)
		if err != nil {
			b.Fatal(err)
		}
		t1.Stop()
		t0.Stop()
	}
}

// BenchmarkGroupAccept measures the windowed aggregator's per-item cost.
func BenchmarkGroupAccept(b *testing.B) {
	g := &operators.Group{
		Key:    func(n *xmltree.Node) string { return n.AttrOr("k", "") },
		Window: time.Minute,
	}
	sink := func(stream.Item) {}
	items := make([]stream.Item, 64)
	for i := range items {
		n := xmltree.Elem("e")
		n.SetAttr("k", fmt.Sprintf("key-%d", i%8))
		items[i] = stream.Item{Tree: n, Time: time.Duration(i) * time.Second}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Accept(0, items[i%len(items)], sink)
	}
}

func BenchmarkSubscribeDeployStop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := peer.MustSystem(peer.DefaultConfig())
		mgr := sys.MustAddPeer("p")
		cfg := workload.DefaultMeteo()
		if err := workload.SetupMeteo(sys, cfg); err != nil {
			b.Fatal(err)
		}
		t, err := mgr.Subscribe(workload.MeteoSubscription(cfg.Clients, cfg.Server))
		if err != nil {
			b.Fatal(err)
		}
		t.Stop()
	}
}

// --- in-network aggregation trees (PR 5) ---

// BenchmarkAggTreeIngest measures the tree's per-item hot path: the
// PartialAgg leaf accumulating raw events (with periodic watermark
// emissions) feeding a Final MergeAgg through partial states — the
// work one event costs the tree, compared against BenchmarkGroupAccept
// (the flat operator's per-item cost).
func BenchmarkAggTreeIngest(b *testing.B) {
	root := &operators.MergeAgg{Final: true}
	sinkFinal := func(stream.Item) {}
	leaf := &operators.PartialAgg{
		Key:    func(n *xmltree.Node) string { return n.AttrOr("k", "") },
		Window: time.Minute,
	}
	forward := func(it stream.Item) { root.Accept(0, it, sinkFinal) }
	items := make([]stream.Item, 64)
	for i := range items {
		n := xmltree.Elem("e")
		n.SetAttr("k", fmt.Sprintf("key-%d", i%8))
		items[i] = stream.Item{Tree: n, Time: time.Duration(i) * time.Second}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		it.Time += time.Duration(i/len(items)) * 64 * time.Second // advancing watermark
		leaf.Accept(0, it, forward)
	}
}

// BenchmarkAggTreeRepair measures one interior-node migration on a live
// tree — crash the merge host, run the full FailPeer repair (DHT
// re-placement, checkpoint restore, consumer re-binding, input replay),
// recover the old host. The failover hot path X4's churn rows hammer.
func BenchmarkAggTreeRepair(b *testing.B) {
	opts := peer.DefaultConfig()
	opts.Agg.Degree = 2
	opts.Replay.Buffer = 1024
	opts.Replay.CheckpointInterval = time.Second
	sys := peer.MustSystem(opts)
	mgr := sys.MustAddPeer("mgr")
	var branches []*algebra.Node
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("s%d", i)
		sp := sys.MustAddPeer(name)
		sp.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.Elem("ok"), nil
		}, nil)
		sys.Net.AddLoad(name, 1000)
		branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", name, "e", nil))
	}
	sys.Net.AddLoad("mgr", 1000)
	sys.MustAddPeer("w0")
	sys.MustAddPeer("w1")
	sys.SetAggHosts(func(n string) bool { return n[0] == 'w' })
	union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
		Schema: []string{"e"}, Group: &algebra.GroupSpec{KeyAttr: "callee", Window: "10s"},
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "agg"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		b.Fatal(err)
	}
	defer task.Stop()
	client := sys.MustAddPeer("client")
	for i := 0; i < 8; i++ {
		if _, err := client.Endpoint().Invoke(fmt.Sprintf("s%d", i%4), "Q", nil); err != nil {
			b.Fatal(err)
		}
		sys.Step(time.Second)
	}
	interiors := func() []*algebra.Node {
		var out []*algebra.Node
		task.Plan.Walk(func(n *algebra.Node) {
			if n.AggKey != "" {
				out = append(out, n)
			}
		})
		return out
	}
	if len(interiors()) == 0 {
		b.Fatal("no tree interiors deployed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := interiors()[0].Peer
		sys.FailPeer(victim, sys.Net.Clock().Now())
		sys.RejoinPeer(victim)
	}
}

// --- multi-tenant aggregate sharing (PR 7) ---

// shareBenchPlan builds the ShareLab-shaped windowed group-by-count plan
// over source range [lo, hi).
func shareBenchPlan(lo, hi int, channel string) *algebra.Node {
	var branches []*algebra.Node
	for i := lo; i < hi; i++ {
		branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", fmt.Sprintf("s%d", i), "e", nil))
	}
	union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
		Schema: []string{"e"},
		Group:  &algebra.GroupSpec{KeyAttr: "callee", Window: "24s"},
	}
	return &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: channel},
	}
}

// BenchmarkReuseMatch measures the Section 5 reuse pass itself against a
// live shared aggregation tree: bottom-up signature matching, the DHT
// discovery lookups, and the rewrite. "exact" hits the tree root's flat
// alias (a later identical subscription); "graft" covers a contained
// source range from the published partial streams and rewrites to a
// merge over them. This is the per-subscription deploy-time cost the X5
// scaling table amortizes.
func BenchmarkReuseMatch(b *testing.B) {
	const sources = 8
	for _, c := range []struct {
		name   string
		lo, hi int
	}{{"exact", 0, sources}, {"graft", 2, 6}} {
		b.Run(c.name, func(b *testing.B) {
			opts := peer.DefaultConfig()
			opts.Agg.Degree = 3
			sys := peer.MustSystem(opts)
			mgr := sys.MustAddPeer("mgr")
			for i := 0; i < sources; i++ {
				name := fmt.Sprintf("s%d", i)
				sp := sys.MustAddPeer(name)
				sp.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
					return xmltree.Elem("ok"), nil
				}, nil)
				sys.Net.AddLoad(name, 1000)
			}
			sys.Net.AddLoad("mgr", 1000)
			for i := 0; i < 4; i++ {
				sys.MustAddPeer(fmt.Sprintf("w%d", i))
			}
			sys.SetAggHosts(func(n string) bool { return n[0] == 'w' })
			seed, err := mgr.DeployPlanShared(shareBenchPlan(0, sources, "seed"))
			if err != nil {
				b.Fatal(err)
			}
			defer seed.Stop()
			ro := reuse.Options{
				From:     "mgr",
				Consumer: "mgr",
				Choose:   reuse.PreferClose(sys.Net.Distance, sys.Net.Load),
			}
			probe := shareBenchPlan(c.lo, c.hi, "probe")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ro.Apply(probe, sys.DB)
				if err != nil {
					b.Fatal(err)
				}
				if res.ReusedOps == 0 || res.FailedLookups > 0 {
					b.Fatalf("reuse pass degraded: reused=%d failed=%d", res.ReusedOps, res.FailedLookups)
				}
			}
		})
	}
}

// BenchmarkSharedAggIngest measures the shared tree's per-event hot path
// when one PartialAgg leaf feeds several tenants' Final roots at once —
// the fan-out an event costs a multi-tenant tree, against
// BenchmarkAggTreeIngest's single-tenant cost. Sharing keeps this the
// only per-event work: the unshared alternative runs the whole leaf
// path once per tenant.
func BenchmarkSharedAggIngest(b *testing.B) {
	const tenants = 4
	sinkFinal := func(stream.Item) {}
	roots := make([]*operators.MergeAgg, tenants)
	for i := range roots {
		roots[i] = &operators.MergeAgg{Final: true}
	}
	leaf := &operators.PartialAgg{
		Key:    func(n *xmltree.Node) string { return n.AttrOr("k", "") },
		Window: time.Minute,
	}
	forward := func(it stream.Item) {
		for _, r := range roots {
			r.Accept(0, it, sinkFinal)
		}
	}
	items := make([]stream.Item, 64)
	for i := range items {
		n := xmltree.Elem("e")
		n.SetAttr("k", fmt.Sprintf("key-%d", i%8))
		items[i] = stream.Item{Tree: n, Time: time.Duration(i) * time.Second}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		it.Time += time.Duration(i/len(items)) * 64 * time.Second // advancing watermark
		leaf.Accept(0, it, forward)
	}
}

type benchRand struct{ state uint64 }

func newBenchRand(seed int64) *benchRand {
	return &benchRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *benchRand) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

// --- DHT elastic rebalance (PR 4) ---

// benchRing builds a loaded ring: members joined, keys stored.
func benchRing(b *testing.B, members, keys, vnodes int, bound float64) *dht.Ring {
	b.Helper()
	r := dht.New()
	r.SetReplication(2)
	if vnodes > 1 {
		r.SetVirtual(vnodes)
	}
	if bound > 0 {
		r.SetLoadBound(bound)
	}
	for i := 0; i < members; i++ {
		if err := r.Join(fmt.Sprintf("m%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		if err := r.Set(fmt.Sprintf("ckpt|task-%d|op-%d", i/3, i%3), "v"); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkDHTRebalanceJoin measures the membership-change hot path the
// elastic scenarios hammer: one node joining (keys hand off to it) and
// failing again, on a loaded ring. The vnode axis contrasts the classic
// neighborhood rebalance with the fragmented-ownership full re-placement.
func BenchmarkDHTRebalanceJoin(b *testing.B) {
	for _, v := range []int{1, 32} {
		b.Run(fmt.Sprintf("vnodes=%d", v), func(b *testing.B) {
			r := benchRing(b, 16, 240, v, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Join("elastic"); err != nil {
					b.Fatal(err)
				}
				if err := r.Fail("elastic"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDHTSpreadPut measures the checkpoint write path under
// bounded-load placement (sticky primary lookup + replica fan-out) —
// the per-sweep cost every operator checkpoint pays with Spread on.
func BenchmarkDHTSpreadPut(b *testing.B) {
	r := benchRing(b, 16, 240, 32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Set(fmt.Sprintf("ckpt|task-%d|op-%d", (i/3)%80, i%3), "v"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDHTBoundedGet measures the bounded-load read path — the
// checkpoint-restore lookup every migration pays — with and without the
// per-reader location cache. The cache=on leg proves the win: warm
// repeat reads skip the successor scan past full members.
func BenchmarkDHTBoundedGet(b *testing.B) {
	for _, cache := range []bool{false, true} {
		b.Run(fmt.Sprintf("cache=%v", cache), func(b *testing.B) {
			r := benchRing(b, 16, 240, 32, 1.2)
			if cache {
				r.EnableReadCache()
			}
			// Warm the cache (and fault in every lazy path) once.
			for i := 0; i < 240; i++ {
				if _, _, err := r.Get("m0", fmt.Sprintf("ckpt|task-%d|op-%d", i/3, i%3)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := r.Get("m0", fmt.Sprintf("ckpt|task-%d|op-%d", (i/3)%80, i%3)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- sketch monoids (PR 6) ---

// BenchmarkSketchIngest measures each sketch monoid's absorb cost
// against the exact set baseline — the leaf-side work a window of 1024
// events adds to a distinct-count or heavy-hitter state. One iteration
// absorbs the whole batch so the number sits at µs scale, where the
// bench guard's 25ms samples are stable.
func BenchmarkSketchIngest(b *testing.B) {
	for _, name := range []string{"set", "distinct", "freq"} {
		b.Run(name, func(b *testing.B) {
			m, ok := monoid.Lookup(name)
			if !ok {
				b.Fatalf("unknown monoid %q", name)
			}
			vals := make([]string, 1024)
			for i := range vals {
				vals[i] = fmt.Sprintf("user-%d", i%512)
			}
			s := m.Zero()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, v := range vals {
					if err := s.Absorb(v); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSketchMerge measures one wire-level partial merge: decode a
// serialized 2000-value state and fold it in — the interior-node work
// per arriving partial.
func BenchmarkSketchMerge(b *testing.B) {
	for _, name := range []string{"set", "distinct", "freq"} {
		b.Run(name, func(b *testing.B) {
			m, ok := monoid.Lookup(name)
			if !ok {
				b.Fatalf("unknown monoid %q", name)
			}
			acc, other := m.Zero(), m.Zero()
			for i := 0; i < 2000; i++ {
				if err := acc.Absorb(fmt.Sprintf("a-%d", i)); err != nil {
					b.Fatal(err)
				}
				if err := other.Absorb(fmt.Sprintf("b-%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			enc := other.Encode()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := m.Decode(enc)
				if err != nil {
					b.Fatal(err)
				}
				if err := acc.Merge(dec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireEncodeDecode measures the PR 8 transport codec round
// trip for the frames that dominate cluster traffic: a stream item, a
// monoid partial, and a gossip probe with piggybacked updates. Every
// message both backends ship pays exactly this path (the tcp backend
// adds only the 4-byte length prefix), so a codec regression taxes all
// inter-peer traffic at once.
func BenchmarkWireEncodeDecode(b *testing.B) {
	msgs := map[string]wire.Message{
		"item":    &wire.Item{Stream: "s3@relay", Seq: 412, TimeNS: 9_500_000_000, XML: `<call id="7" method="Reserve" to="airline"/>`},
		"partial": &wire.Partial{Fn: "avg", Window: 6, Key: "eu-west", Source: "n3", Count: 1800, State: "1800|45210"},
		"probe": &wire.Probe{Seq: 12, Updates: []wire.GossipUpdate{
			{Peer: "n4", Status: wire.StatusSuspect, Inc: 3},
			{Peer: "n7", Status: wire.StatusAlive, Inc: 9},
		}},
	}
	for _, name := range []string{"item", "partial", "probe"} {
		b.Run(name, func(b *testing.B) {
			m := msgs[name]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.Decode(wire.Encode(m)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- self-adaptive runtime (PR 9) ---

// aggBenchWorld builds the small aggregation deployment the adaptive
// benches reshape: 8 sources, degree-4 tree, replay armed.
func aggBenchWorld(b *testing.B) (*peer.System, *peer.Task) {
	b.Helper()
	opts := peer.DefaultConfig()
	opts.Agg.Degree = 4
	opts.Replay.Buffer = 1024
	opts.Replay.CheckpointInterval = time.Second
	sys := peer.MustSystem(opts)
	mgr := sys.MustAddPeer("mgr")
	var branches []*algebra.Node
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("s%d", i)
		sp := sys.MustAddPeer(name)
		sp.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.Elem("ok"), nil
		}, nil)
		branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", name, "e", nil))
	}
	for i := 0; i < 3; i++ {
		sys.MustAddPeer(fmt.Sprintf("w%d", i))
	}
	sys.SetAggHosts(func(n string) bool { return n[0] == 'w' })
	union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
		Schema: []string{"e"}, Group: &algebra.GroupSpec{KeyAttr: "callee", Window: "10s"},
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "agg"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		b.Fatal(err)
	}
	client := sys.MustAddPeer("client")
	for i := 0; i < 8; i++ {
		if _, err := client.Endpoint().Invoke(fmt.Sprintf("s%d", i%8), "Q", nil); err != nil {
			b.Fatal(err)
		}
		sys.Step(time.Second)
	}
	return sys, task
}

// BenchmarkAdaptiveRechunk measures one full SplitInterior transaction —
// cut capture, plan re-chunk, channel migration, sub-interior spin-up
// and the immediate checkpoint — on a freshly driven degree-4 tree.
func BenchmarkAdaptiveRechunk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, task := aggBenchWorld(b)
		var key string
		task.Plan.Walk(func(n *algebra.Node) {
			if key == "" && n.AggKey != "" && len(n.Inputs) >= 4 {
				key = n.AggKey
			}
		})
		if key == "" {
			b.Fatal("no splittable interior")
		}
		b.StartTimer()
		if _, err := sys.SplitInterior(task, key); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		task.Stop()
		b.StartTimer()
	}
}

// BenchmarkTelemetryCounter measures the registry's hot path: one
// pre-registered counter increment, the cost every instrumented seam
// (transport send, wire decode, DHT get) pays per event. Must stay a
// single uncontended atomic add — 0 allocs/op, enforced by
// telemetry.TestZeroAllocHotPath; this bench pins the latency.
func BenchmarkTelemetryCounter(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_events_total", telemetry.L("peer", "n1"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetrySnapshot measures a deterministic full-registry
// snapshot — the operation MetricsSysmon and the HTTP exporter run per
// period — over a realistically sized registry: 48 labelled series plus
// an 8-bucket histogram.
func BenchmarkTelemetrySnapshot(b *testing.B) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 24; i++ {
		p := telemetry.L("peer", fmt.Sprintf("n%02d", i))
		reg.Counter("bench_sent_total", p).Add(uint64(i))
		reg.Gauge("bench_depth", p).Set(int64(i))
	}
	h := reg.Histogram("bench_step_ns", telemetry.ExpBounds(1000, 10, 8))
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i) * 997)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := reg.Snapshot(); len(snap.Metrics) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkHealthScore measures one adaptive gossip protocol period —
// probe rounds, piggyback application, Lifeguard health bookkeeping and
// the suspicion sweep — across a 16-member degraded membership.
func BenchmarkHealthScore(b *testing.B) {
	sys := peer.MustSystem(peer.DefaultConfig())
	for i := 0; i < 16; i++ {
		sys.MustAddPeer(fmt.Sprintf("p%d", i))
	}
	sys.StartGossipDetector(peer.GossipOptions{
		Seed: 9, ProbeInterval: time.Second,
		ProbeTimeout: 500 * time.Millisecond, Suspicion: time.Second,
		Adaptive: true,
	})
	for i := 0; i < 4; i++ {
		sys.Step(time.Second)
	}
	// Two members slow-but-alive: health scores stay exercised.
	for i := 0; i < 16; i++ {
		p := fmt.Sprintf("p%d", i)
		for _, victim := range []string{"p3", "p7"} {
			if p == victim {
				continue
			}
			sys.Net.SetExtraDelay(p, victim, 400*time.Millisecond)
			sys.Net.SetExtraDelay(victim, p, 400*time.Millisecond)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(time.Second)
	}
}
