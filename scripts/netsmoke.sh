#!/usr/bin/env bash
# netsmoke.sh — the PR 8 acceptance check as a script: build p2pmon,
# run a 3-process monitor cluster over real loopback TCP sockets, and
# require the root's windowed-aggregation output to be byte-identical
# to the single-process simnet run of the same scenario. The root runs
# with -metrics-addr, and the script scrapes its live telemetry
# endpoint (Prometheus and JSON) asserting non-empty wire counters —
# the docs/TELEMETRY.md export path exercised end to end.
#
# Usage: scripts/netsmoke.sh [windows] [fn]
set -euo pipefail

WINDOWS="${1:-4}"
FN="${2:-count}"
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== netsmoke: building p2pmon =="
go build -o "$WORK/p2pmon" ./cmd/p2pmon

# Reserve three distinct loopback ports: hold all three listeners open
# at once so the kernel cannot hand the same port out twice.
cat >"$WORK/freeports.go" <<'EOF'
package main

import (
	"fmt"
	"net"
)

func main() {
	var ls []net.Listener
	for i := 0; i < 4; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		ls = append(ls, l)
		fmt.Println(l.Addr().(*net.TCPAddr).Port)
	}
	for _, l := range ls {
		l.Close()
	}
}
EOF
mapfile -t PORTS < <(go run "$WORK/freeports.go")
P1="${PORTS[0]}"; P2="${PORTS[1]}"; P3="${PORTS[2]}"; PM="${PORTS[3]}"
PEERS="n1=127.0.0.1:$P1,n2=127.0.0.1:$P2,n3=127.0.0.1:$P3"

echo "== netsmoke: reference run (simnet backend, single process) =="
"$WORK/p2pmon" -scenario net -windows "$WINDOWS" -agg-fn "$FN" \
  >"$WORK/simnet.out" 2>"$WORK/simnet.err"

echo "== netsmoke: 3-process cluster over real TCP ($PEERS) =="
for n in n1 n2 n3; do
  addr_var="P${n#n}"
  metrics=()
  if [ "$n" = n1 ]; then metrics=(-metrics-addr "127.0.0.1:$PM"); fi
  "$WORK/p2pmon" -scenario net -windows "$WINDOWS" -agg-fn "$FN" \
    -listen "127.0.0.1:${!addr_var}" -name "$n" -peers "$PEERS" \
    "${metrics[@]}" >"$WORK/$n.out" 2>"$WORK/$n.err" &
  PIDS+=("$!")
done

# Scrape the root's live telemetry endpoint while the cluster runs:
# both export formats must answer, and the wire counters must show real
# traffic. The root lingers ~2s after finishing so a scrape of the
# final counters always fits.
echo "== netsmoke: scraping root telemetry at 127.0.0.1:$PM =="
scraped=0
for _ in $(seq 1 200); do
  if curl -fsS "http://127.0.0.1:$PM/metrics" >"$WORK/metrics.prom" 2>/dev/null &&
    curl -fsS "http://127.0.0.1:$PM/metrics.json" >"$WORK/metrics.json" 2>/dev/null &&
    grep -Eq '^wire_decoded_total\{[^}]*\} [1-9]' "$WORK/metrics.prom" &&
    grep -Eq '^transport_sent_total\{[^}]*\} [1-9]' "$WORK/metrics.prom" &&
    grep -q '"name":"wire_decoded_total"' "$WORK/metrics.json"; then
    scraped=1
    break
  fi
  sleep 0.05
done
if [ "$scraped" -ne 1 ]; then
  echo "netsmoke: FAIL — no non-empty wire counters scraped from the root's /metrics" >&2
  cat "$WORK/metrics.prom" 2>/dev/null >&2 || true
  exit 1
fi
echo "root telemetry live:"
grep -E '^(transport_sent_total|transport_recv_total|wire_decoded_total|wire_dropped_total)' "$WORK/metrics.prom" | sed 's/^/  /'

fail=0
for i in "${!PIDS[@]}"; do
  if ! wait "${PIDS[$i]}"; then
    echo "netsmoke: member process $((i + 1)) failed:" >&2
    cat "$WORK/n$((i + 1)).err" >&2
    fail=1
  fi
done
PIDS=()
[ "$fail" -eq 0 ] || exit 1

echo "== netsmoke: comparing root output to the simnet reference =="
if ! diff -u "$WORK/simnet.out" "$WORK/n1.out"; then
  echo "netsmoke: FAIL — tcp cluster output diverged from the simnet run" >&2
  exit 1
fi
if [ -s "$WORK/n2.out" ] || [ -s "$WORK/n3.out" ]; then
  echo "netsmoke: FAIL — a non-root member wrote to stdout" >&2
  exit 1
fi
echo "netsmoke: OK — $(wc -l <"$WORK/simnet.out") windows byte-identical across backends (fn=$FN)"
cat "$WORK/simnet.out"
