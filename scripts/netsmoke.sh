#!/usr/bin/env bash
# netsmoke.sh — the PR 8 acceptance check as a script: build p2pmon,
# run a 3-process monitor cluster over real loopback TCP sockets, and
# require the root's windowed-aggregation output to be byte-identical
# to the single-process simnet run of the same scenario.
#
# Usage: scripts/netsmoke.sh [windows] [fn]
set -euo pipefail

WINDOWS="${1:-4}"
FN="${2:-count}"
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== netsmoke: building p2pmon =="
go build -o "$WORK/p2pmon" ./cmd/p2pmon

# Reserve three distinct loopback ports: hold all three listeners open
# at once so the kernel cannot hand the same port out twice.
cat >"$WORK/freeports.go" <<'EOF'
package main

import (
	"fmt"
	"net"
)

func main() {
	var ls []net.Listener
	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		ls = append(ls, l)
		fmt.Println(l.Addr().(*net.TCPAddr).Port)
	}
	for _, l := range ls {
		l.Close()
	}
}
EOF
mapfile -t PORTS < <(go run "$WORK/freeports.go")
P1="${PORTS[0]}"; P2="${PORTS[1]}"; P3="${PORTS[2]}"
PEERS="n1=127.0.0.1:$P1,n2=127.0.0.1:$P2,n3=127.0.0.1:$P3"

echo "== netsmoke: reference run (simnet backend, single process) =="
"$WORK/p2pmon" -scenario net -windows "$WINDOWS" -agg-fn "$FN" \
  >"$WORK/simnet.out" 2>"$WORK/simnet.err"

echo "== netsmoke: 3-process cluster over real TCP ($PEERS) =="
for n in n1 n2 n3; do
  addr_var="P${n#n}"
  "$WORK/p2pmon" -scenario net -windows "$WINDOWS" -agg-fn "$FN" \
    -listen "127.0.0.1:${!addr_var}" -name "$n" -peers "$PEERS" \
    >"$WORK/$n.out" 2>"$WORK/$n.err" &
  PIDS+=("$!")
done

fail=0
for i in "${!PIDS[@]}"; do
  if ! wait "${PIDS[$i]}"; then
    echo "netsmoke: member process $((i + 1)) failed:" >&2
    cat "$WORK/n$((i + 1)).err" >&2
    fail=1
  fi
done
PIDS=()
[ "$fail" -eq 0 ] || exit 1

echo "== netsmoke: comparing root output to the simnet reference =="
if ! diff -u "$WORK/simnet.out" "$WORK/n1.out"; then
  echo "netsmoke: FAIL — tcp cluster output diverged from the simnet run" >&2
  exit 1
fi
if [ -s "$WORK/n2.out" ] || [ -s "$WORK/n3.out" ]; then
  echo "netsmoke: FAIL — a non-root member wrote to stdout" >&2
  exit 1
fi
echo "netsmoke: OK — $(wc -l <"$WORK/simnet.out") windows byte-identical across backends (fn=$FN)"
cat "$WORK/simnet.out"
