package stream

import (
	"sort"
	"sync"
)

// Channel is the paper's publication primitive: a tuple
// (peerID, streamID, subscribers). Publishing an item multicasts it to
// every current subscriber; subscribing to a channel is how a peer
// expresses "the will to receive the data published by the channel"
// (Section 3.2). A Channel is also how deployed plan fragments on
// different peers are stitched together (channels X, Y, M of Figure 4).
type Channel struct {
	ref Ref

	mu        sync.Mutex
	subs      map[int]*subscriber
	nextSub   int
	seq       uint64
	closed    bool
	published uint64
	bytes     uint64
}

type subscriber struct {
	id    int
	name  string
	queue *Queue
	// deliver, when set, intercepts the delivery (simnet uses it to add
	// latency and count bytes). It must eventually push to queue.
	deliver func(Item, *Queue)
}

// Subscription is a live subscription to a channel.
type Subscription struct {
	ch   *Channel
	id   int
	Name string
	// Queue receives the published items.
	Queue *Queue
}

// NewChannel creates a channel identified by (peerID, streamID).
func NewChannel(peerID, streamID string) *Channel {
	return &Channel{
		ref:  Ref{StreamID: streamID, PeerID: peerID},
		subs: make(map[int]*subscriber),
	}
}

// Ref returns the channel's (streamID, peerID) identity.
func (c *Channel) Ref() Ref { return c.ref }

// Publish multicasts the item to all subscribers, stamping the channel's
// own sequence number and source. Publishing eos closes the channel.
func (c *Channel) Publish(it Item) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if it.EOS() {
		c.closed = true
	} else {
		c.seq++
		it.Seq = c.seq
		c.published++
		c.bytes += uint64(it.Tree.SerializedSize())
	}
	it.Source = c.ref.String()
	targets := make([]*subscriber, 0, len(c.subs))
	for _, s := range c.subs {
		targets = append(targets, s)
	}
	c.mu.Unlock()
	// Deliver outside the lock: deliver hooks may simulate latency.
	for _, s := range targets {
		if s.deliver != nil {
			s.deliver(it, s.queue)
		} else {
			s.queue.Push(it)
		}
		if it.EOS() {
			s.queue.Close()
		}
	}
}

// Close publishes eos.
func (c *Channel) Close() { c.Publish(EOSItem(c.ref.String())) }

// Closed reports whether the channel has seen eos.
func (c *Channel) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Published returns the number of non-eos items published.
func (c *Channel) Published() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.published
}

// Volume returns the cumulative serialized size of all published items —
// the "average volume of data in the stream" statistic the paper's
// stream descriptors maintain.
func (c *Channel) Volume() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Subscribe registers a named subscriber and returns its subscription.
// deliver may be nil for direct in-memory delivery.
func (c *Channel) Subscribe(name string, deliver func(Item, *Queue)) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := NewQueue()
	if c.closed {
		q.Close()
		return &Subscription{ch: c, id: -1, Name: name, Queue: q}
	}
	id := c.nextSub
	c.nextSub++
	c.subs[id] = &subscriber{id: id, name: name, queue: q, deliver: deliver}
	return &Subscription{ch: c, id: id, Name: name, Queue: q}
}

// Unsubscribe removes the subscription and closes its queue.
func (s *Subscription) Unsubscribe() {
	s.ch.mu.Lock()
	delete(s.ch.subs, s.id)
	s.ch.mu.Unlock()
	s.Queue.Close()
}

// Detach removes the subscription from the channel without closing its
// queue. Failure handling uses it to re-bind a consumer's input queue to
// a replacement producer: the old producer stops feeding the queue, the
// new subscription takes over, and the consumer never observes the swap.
func (s *Subscription) Detach() {
	s.ch.mu.Lock()
	delete(s.ch.subs, s.id)
	s.ch.mu.Unlock()
}

// Subscribers returns the current subscriber names, sorted.
func (c *Channel) Subscribers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.subs))
	for _, s := range c.subs {
		names = append(names, s.name)
	}
	sort.Strings(names)
	return names
}

// SubscriberCount returns the number of live subscribers.
func (c *Channel) SubscriberCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs)
}
