package stream

import (
	"sort"
	"sync"
)

// Channel is the paper's publication primitive: a tuple
// (peerID, streamID, subscribers). Publishing an item multicasts it to
// every current subscriber; subscribing to a channel is how a peer
// expresses "the will to receive the data published by the channel"
// (Section 3.2). A Channel is also how deployed plan fragments on
// different peers are stitched together (channels X, Y, M of Figure 4).
type Channel struct {
	ref Ref

	mu        sync.Mutex
	subs      map[int]*subscriber
	nextSub   int
	seq       uint64
	closed    bool
	published uint64
	bytes     uint64
	replay    *replayBuffer
}

type subscriber struct {
	id    int
	name  string
	queue *Queue
	// deliver, when set, intercepts the delivery (simnet uses it to add
	// latency and count bytes). It must eventually push to queue.
	deliver func(Item, *Queue)
}

// Subscription is a live subscription to a channel.
type Subscription struct {
	ch   *Channel
	id   int
	Name string
	// Queue receives the published items.
	Queue *Queue
	// StartSeq is the channel's sequence number at the moment the
	// subscription attached: items up to StartSeq predate it and are not
	// owed to this subscriber.
	StartSeq uint64
	// Replayed counts retained items retransmitted at attach time
	// (SubscribeFrom).
	Replayed int
	// ReplayFrom is the first sequence actually retransmitted by
	// SubscribeFrom — greater than the requested start when the bounded
	// retention buffer already trimmed the prefix.
	ReplayFrom uint64
}

// NewChannel creates a channel identified by (peerID, streamID).
func NewChannel(peerID, streamID string) *Channel {
	return &Channel{
		ref:  Ref{StreamID: streamID, PeerID: peerID},
		subs: make(map[int]*subscriber),
	}
}

// Ref returns the channel's (streamID, peerID) identity.
func (c *Channel) Ref() Ref { return c.ref }

// Publish multicasts the item to all subscribers, stamping the channel's
// own sequence number and source. Publishing eos closes the channel.
func (c *Channel) Publish(it Item) { c.publish(it, false) }

// PublishPreserved multicasts the item keeping its existing sequence
// number. Replica forwarders use it so a replica carries the *original*
// stream's numbering: consumer cursors then stay valid across a failover
// from the original to any replica (the whole point of announced
// replicas, Section 5).
func (c *Channel) PublishPreserved(it Item) { c.publish(it, true) }

func (c *Channel) publish(it Item, preserveSeq bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if it.EOS() {
		c.closed = true
	} else {
		if preserveSeq && it.Seq != 0 {
			if it.Seq > c.seq {
				c.seq = it.Seq
			}
		} else {
			c.seq++
			it.Seq = c.seq
		}
		c.published++
		c.bytes += uint64(it.Tree.SerializedSize())
		if c.replay != nil {
			c.replay.add(Item{Tree: it.Tree, Seq: it.Seq, Source: c.ref.String(), Time: it.Time})
		}
	}
	it.Source = c.ref.String()
	targets := make([]*subscriber, 0, len(c.subs))
	for _, s := range c.subs {
		targets = append(targets, s)
	}
	c.mu.Unlock()
	// Deliver outside the lock: deliver hooks may simulate latency.
	for _, s := range targets {
		if s.deliver != nil {
			s.deliver(it, s.queue)
		} else {
			s.queue.Push(it)
		}
		if it.EOS() {
			s.queue.Close()
		}
	}
}

// Close publishes eos.
func (c *Channel) Close() { c.Publish(EOSItem(c.ref.String())) }

// Closed reports whether the channel has seen eos.
func (c *Channel) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Published returns the number of non-eos items published.
func (c *Channel) Published() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.published
}

// Volume returns the cumulative serialized size of all published items —
// the "average volume of data in the stream" statistic the paper's
// stream descriptors maintain.
func (c *Channel) Volume() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Subscribe registers a named subscriber and returns its subscription.
// deliver may be nil for direct in-memory delivery.
func (c *Channel) Subscribe(name string, deliver func(Item, *Queue)) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subscribeLocked(name, deliver)
}

func (c *Channel) subscribeLocked(name string, deliver func(Item, *Queue)) *Subscription {
	q := NewQueue()
	if c.closed {
		q.Close()
		return &Subscription{ch: c, id: -1, Name: name, Queue: q, StartSeq: c.seq}
	}
	id := c.nextSub
	c.nextSub++
	c.subs[id] = &subscriber{id: id, name: name, queue: q, deliver: deliver}
	return &Subscription{ch: c, id: id, Name: name, Queue: q, StartSeq: c.seq}
}

// EnableReplay makes the channel retain its last capacity published
// items for retransmission. It must be enabled before items needing
// retention are published (the System enables it at registration).
func (c *Channel) EnableReplay(capacity int) {
	if capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replay == nil {
		c.replay = newReplayBuffer(capacity)
	}
}

// ReplayEnabled reports whether the channel retains items for replay.
func (c *Channel) ReplayEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replay != nil
}

// Seq returns the sequence number of the most recently published item.
func (c *Channel) Seq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// SeedSeq positions the channel's sequence counter — a restored operator
// adopting this channel as its output continues the logical stream's
// numbering from its checkpoint instead of restarting at 1, so
// downstream cursors keep deduplicating correctly. Seeding backwards
// makes the producer re-emit its post-checkpoint suffix under the same
// sequence numbers (consumers that already saw it drop the overlap).
func (c *Channel) SeedSeq(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq = seq
}

// SeedBuffer pre-loads the retention buffer with already-published items
// of the logical stream — the undelivered output tail carried by an
// operator checkpoint, restored into the replacement channel so
// re-bound consumers can still fetch what the crashed producer had
// published but not delivered. Items must arrive in ascending sequence
// order and are re-attributed to this channel.
func (c *Channel) SeedBuffer(items []Item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replay == nil {
		return
	}
	for _, it := range items {
		if it.Seq == 0 || it.Tree == nil {
			continue
		}
		c.replay.add(Item{Tree: it.Tree, Seq: it.Seq, Source: c.ref.String(), Time: it.Time})
	}
}

// Replay returns copies of the retained items with sequence numbers in
// [from, to], plus the first sequence actually available — greater than
// from when the bounded buffer already trimmed part of the range.
func (c *Channel) Replay(from, to uint64) ([]Item, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replay == nil {
		return nil, from
	}
	return c.replay.slice(from, to)
}

// ReplayTrimmed returns the number of items evicted from the retention
// buffer — sequences that can no longer be retransmitted.
func (c *Channel) ReplayTrimmed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replay == nil {
		return 0
	}
	return c.replay.trimmed
}

// ReplayLen returns how many items the retention buffer currently
// holds (0 without the replay layer) — the occupancy the telemetry
// collector exports.
func (c *Channel) ReplayLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replay == nil || c.replay.lo == 0 {
		return 0
	}
	return int(c.replay.hi - c.replay.lo + 1)
}

// QueueDepth returns the total number of items waiting in this
// channel's subscriber queues.
func (c *Channel) QueueDepth() int {
	c.mu.Lock()
	subs := make([]*subscriber, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.mu.Unlock()
	depth := 0
	for _, s := range subs {
		depth += s.queue.Len()
	}
	return depth
}

// SubscribeFrom registers a subscriber that first receives the retained
// items from sequence fromSeq onwards and then every future publication,
// with no gap and no duplicate in between: replayed items are delivered
// through the subscriber's hook while the channel lock is held, so a
// concurrent Publish cannot interleave. This is how a re-bound consumer
// resumes from its cursor instead of from "now". Delivery hooks must not
// call back into the channel.
func (c *Channel) SubscribeFrom(name string, fromSeq uint64, deliver func(Item, *Queue)) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	var items []Item
	var first uint64
	if c.replay != nil && fromSeq <= c.seq {
		items, first = c.replay.slice(fromSeq, c.seq)
	}
	wasClosed := c.closed
	c.closed = false // allow attach even to a closed channel: replay, then eos
	sub := c.subscribeLocked(name, deliver)
	c.closed = wasClosed
	sub.StartSeq = 0
	if fromSeq > 0 {
		sub.StartSeq = fromSeq - 1
	}
	sub.Replayed = len(items)
	if len(items) > 0 {
		sub.ReplayFrom = first
	}
	s := c.subs[sub.id]
	for _, it := range items {
		if s != nil && s.deliver != nil {
			s.deliver(it, sub.Queue)
		} else {
			sub.Queue.Push(it)
		}
	}
	if wasClosed {
		eos := Item{Source: c.ref.String()}
		if s != nil && s.deliver != nil {
			s.deliver(eos, sub.Queue)
		}
		delete(c.subs, sub.id)
		sub.Queue.Close()
	}
	return sub
}

// Unsubscribe removes the subscription and closes its queue.
func (s *Subscription) Unsubscribe() {
	s.ch.mu.Lock()
	delete(s.ch.subs, s.id)
	s.ch.mu.Unlock()
	s.Queue.Close()
}

// Detach removes the subscription from the channel without closing its
// queue. Failure handling uses it to re-bind a consumer's input queue to
// a replacement producer: the old producer stops feeding the queue, the
// new subscription takes over, and the consumer never observes the swap.
func (s *Subscription) Detach() {
	s.ch.mu.Lock()
	delete(s.ch.subs, s.id)
	s.ch.mu.Unlock()
}

// Subscribers returns the current subscriber names, sorted.
func (c *Channel) Subscribers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.subs))
	for _, s := range c.subs {
		names = append(names, s.name)
	}
	sort.Strings(names)
	return names
}

// SubscriberCount returns the number of live subscribers.
func (c *Channel) SubscriberCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs)
}
