package stream

import (
	"sync"
	"testing"
	"testing/quick"

	"p2pm/internal/xmltree"
)

func item(label string) Item { return Item{Tree: xmltree.Elem(label)} }

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	q.Push(item("a"))
	q.Push(item("b"))
	q.Push(item("c"))
	for _, want := range []string{"a", "b", "c"} {
		it, ok := q.Pop()
		if !ok || it.Tree.Label != want {
			t.Fatalf("got %v,%v want %s", it, ok, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := NewQueue()
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Error("Pop should report !ok after close")
	}
}

func TestQueueCloseDrainsRemaining(t *testing.T) {
	q := NewQueue()
	q.Push(item("a"))
	q.Close()
	if it, ok := q.Pop(); !ok || it.Tree.Label != "a" {
		t.Fatal("buffered item lost on close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("expected drained")
	}
	// Pushing after close is dropped.
	q.Push(item("b"))
	if q.Len() != 0 {
		t.Error("push after close should be dropped")
	}
}

func TestQueueHighWaterAndPushed(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 5; i++ {
		q.Push(item("x"))
	}
	q.Pop()
	q.Push(item("x"))
	if q.HighWater() != 5 {
		t.Errorf("highWater = %d", q.HighWater())
	}
	if q.Pushed() != 6 {
		t.Errorf("pushed = %d", q.Pushed())
	}
}

func TestQueueTryPop(t *testing.T) {
	q := NewQueue()
	if _, ok := q.TryPop(); ok {
		t.Error("TryPop on empty should be false")
	}
	q.Push(item("a"))
	if it, ok := q.TryPop(); !ok || it.Tree.Label != "a" {
		t.Error("TryPop should return the item")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue()
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(item("x"))
			}
		}()
	}
	got := make(chan int)
	for c := 0; c < 4; c++ {
		go func() {
			n := 0
			for {
				if _, ok := q.Pop(); !ok {
					got <- n
					return
				}
				n++
			}
		}()
	}
	wg.Wait()
	q.Close()
	total := 0
	for c := 0; c < 4; c++ {
		total += <-got
	}
	if total != producers*perProducer {
		t.Errorf("consumed %d, want %d", total, producers*perProducer)
	}
}

func TestEOS(t *testing.T) {
	if !EOSItem("s@p").EOS() {
		t.Error("EOSItem not EOS")
	}
	if item("a").EOS() {
		t.Error("regular item is EOS")
	}
}

func TestRefParse(t *testing.T) {
	r, err := ParseRef("alertQoS@meteo.com")
	if err != nil || r.StreamID != "alertQoS" || r.PeerID != "meteo.com" {
		t.Fatalf("r=%v err=%v", r, err)
	}
	if r.String() != "alertQoS@meteo.com" {
		t.Errorf("String = %q", r.String())
	}
	for _, bad := range []string{"", "noat", "@p", "s@"} {
		if _, err := ParseRef(bad); err == nil {
			t.Errorf("ParseRef(%q) should fail", bad)
		}
	}
}

func TestChannelMulticast(t *testing.T) {
	ch := NewChannel("meteo.com", "alertQoS")
	s1 := ch.Subscribe("b.com", nil)
	s2 := ch.Subscribe("c.com", nil)
	ch.Publish(item("one"))
	ch.Publish(item("two"))
	ch.Close()
	for _, s := range []*Subscription{s1, s2} {
		got := s.Queue.Drain()
		if len(got) != 2 || got[0].Tree.Label != "one" || got[1].Tree.Label != "two" {
			t.Fatalf("%s got %v", s.Name, got)
		}
		if got[0].Seq != 1 || got[1].Seq != 2 {
			t.Errorf("seq = %d,%d", got[0].Seq, got[1].Seq)
		}
		if got[0].Source != "alertQoS@meteo.com" {
			t.Errorf("source = %q", got[0].Source)
		}
	}
	if ch.Published() != 2 {
		t.Errorf("published = %d", ch.Published())
	}
}

func TestChannelLateSubscriberMissesEarlierItems(t *testing.T) {
	ch := NewChannel("p", "s")
	ch.Publish(item("early"))
	s := ch.Subscribe("late", nil)
	ch.Publish(item("later"))
	ch.Close()
	got := s.Queue.Drain()
	if len(got) != 1 || got[0].Tree.Label != "later" {
		t.Fatalf("got %v", got)
	}
}

func TestChannelUnsubscribe(t *testing.T) {
	ch := NewChannel("p", "s")
	s := ch.Subscribe("x", nil)
	s.Unsubscribe()
	ch.Publish(item("a"))
	if _, ok := s.Queue.Pop(); ok {
		t.Error("unsubscribed queue should be closed and empty")
	}
	if ch.SubscriberCount() != 0 {
		t.Errorf("count = %d", ch.SubscriberCount())
	}
}

func TestChannelSubscribeAfterClose(t *testing.T) {
	ch := NewChannel("p", "s")
	ch.Close()
	s := ch.Subscribe("x", nil)
	if _, ok := s.Queue.Pop(); ok {
		t.Error("subscription to closed channel should be immediately drained")
	}
	// Publish after close is dropped.
	ch.Publish(item("a"))
	if ch.Published() != 0 {
		t.Error("publish after close counted")
	}
}

func TestChannelSubscribersSorted(t *testing.T) {
	ch := NewChannel("p", "s")
	ch.Subscribe("zeta", nil)
	ch.Subscribe("alpha", nil)
	subs := ch.Subscribers()
	if len(subs) != 2 || subs[0] != "alpha" || subs[1] != "zeta" {
		t.Errorf("subs = %v", subs)
	}
}

func TestChannelDeliverHook(t *testing.T) {
	ch := NewChannel("p", "s")
	var delivered []string
	s := ch.Subscribe("x", func(it Item, q *Queue) {
		if !it.EOS() {
			delivered = append(delivered, it.Tree.Label)
		}
		q.Push(it)
	})
	ch.Publish(item("a"))
	ch.Close()
	got := s.Queue.Drain()
	if len(got) != 1 || len(delivered) != 1 || delivered[0] != "a" {
		t.Fatalf("got=%v delivered=%v", got, delivered)
	}
}

// Property: for any interleaving of pushes, a single consumer sees exactly
// the pushed count and FIFO order per producer is irrelevant here; we check
// the conservation property.
func TestQuickQueueConservation(t *testing.T) {
	f := func(counts []uint8) bool {
		q := NewQueue()
		total := 0
		var wg sync.WaitGroup
		for _, c := range counts {
			n := int(c % 16)
			total += n
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					q.Push(item("x"))
				}
			}(n)
		}
		wg.Wait()
		q.Close()
		return len(q.Drain()) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
