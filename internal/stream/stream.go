// Package stream implements the data plane of P2PM: possibly-infinite
// sequences of XML trees terminated by an explicit eos symbol, and
// channels — published streams with a dynamic set of subscribers — which
// are the paper's pub/sub primitive (Section 3.2).
package stream

import (
	"fmt"
	"sync"
	"time"

	"p2pm/internal/xmltree"
)

// Item is one element of an XML stream. An Item with a nil Tree is the
// eos symbol: it terminates the stream.
type Item struct {
	Tree *xmltree.Node
	// Seq is the item's sequence number within its producing stream.
	Seq uint64
	// Source identifies the producing stream as "streamID@peerID".
	Source string
	// Time is the virtual timestamp at which the item was produced.
	Time time.Duration
}

// EOS reports whether the item is the end-of-stream symbol.
func (it Item) EOS() bool { return it.Tree == nil }

// EOSItem returns an eos item attributed to the given source.
func EOSItem(source string) Item { return Item{Source: source} }

// Ref names a stream as the pair (StreamID, PeerID), which per the paper
// fully identifies it.
type Ref struct {
	StreamID string
	PeerID   string
}

// String renders the paper's s@p notation.
func (r Ref) String() string { return r.StreamID + "@" + r.PeerID }

// ParseRef parses "s@p" notation.
func ParseRef(s string) (Ref, error) {
	for i := 0; i < len(s); i++ {
		if s[i] == '@' {
			if i == 0 || i == len(s)-1 {
				break
			}
			return Ref{StreamID: s[:i], PeerID: s[i+1:]}, nil
		}
	}
	return Ref{}, fmt.Errorf("stream: invalid ref %q (want streamID@peerID)", s)
}

// Queue is an unbounded FIFO of items with a blocking Pop. Operators in a
// deployed plan communicate through queues so a slow consumer never
// deadlocks a fan-out; the high-water mark is tracked so experiments can
// report buffer pressure.
type Queue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	items     []Item
	closed    bool
	highWater int
	pushed    uint64
}

// NewQueue returns an empty open queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends an item. Pushing to a closed queue is a no-op (late
// publishers lose the race with Unsubscribe, matching channel semantics).
func (q *Queue) Push(it Item) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, it)
	q.pushed++
	if len(q.items) > q.highWater {
		q.highWater = len(q.items)
	}
	q.cond.Signal()
}

// Pop removes and returns the oldest item, blocking until one is
// available. It returns ok=false once the queue is closed and drained.
func (q *Queue) Pop() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Item{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

// TryPop is a non-blocking Pop; ok is false when the queue is empty or
// closed-and-drained.
func (q *Queue) TryPop() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return Item{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

// Close marks the queue closed; blocked Pops return.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.cond.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Len returns the number of buffered items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// HighWater returns the maximum number of items ever buffered.
func (q *Queue) HighWater() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.highWater
}

// Pushed returns the total number of items ever pushed.
func (q *Queue) Pushed() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushed
}

// Drain pops until eos or queue close and returns all non-eos items.
// Intended for tests and examples on finite streams.
func (q *Queue) Drain() []Item {
	var out []Item
	for {
		it, ok := q.Pop()
		if !ok || it.EOS() {
			return out
		}
		out = append(out, it)
	}
}
