package stream

// replayBuffer retains the tail of a channel's published items, indexed
// by sequence number, so consumers that re-bind after a producer
// migration (or lose items to link faults) can ask for a retransmission
// instead of accepting a gap. The buffer is bounded: it holds at most
// cap items covering the contiguous sequence range [lo, hi]; older items
// are trimmed and show up in the Trimmed counter — the retention
// vs. memory trade-off documented in docs/REPLAY.md.
//
// All methods are called with the owning Channel's lock held.
type replayBuffer struct {
	capacity int
	slots    []Item
	lo, hi   uint64 // retained contiguous seq range; lo == 0 means empty
	trimmed  uint64
}

func newReplayBuffer(capacity int) *replayBuffer {
	return &replayBuffer{capacity: capacity, slots: make([]Item, capacity)}
}

func (b *replayBuffer) slot(seq uint64) int { return int(seq % uint64(b.capacity)) }

// add records one published item. Re-publication of a retained sequence
// number (a restored operator re-emitting its post-checkpoint suffix)
// overwrites the slot in place; a forward jump (a re-seeded channel)
// resets the window.
func (b *replayBuffer) add(it Item) {
	seq := it.Seq
	if seq == 0 {
		return
	}
	switch {
	case b.lo == 0: // empty
		b.lo, b.hi = seq, seq
	case seq >= b.lo && seq <= b.hi: // overwrite
	case seq == b.hi+1:
		b.hi = seq
		if b.hi-b.lo+1 > uint64(b.capacity) {
			b.trimmed += b.hi - b.lo + 1 - uint64(b.capacity)
			b.lo = b.hi - uint64(b.capacity) + 1
		}
	case seq < b.lo: // too old: the slot was already trimmed
		return
	default: // discontinuous jump forward: restart the window
		b.lo, b.hi = seq, seq
	}
	b.slots[b.slot(seq)] = it
}

// slice returns copies of the retained items with sequence numbers in
// [from, to], plus the first sequence actually available (> from when
// the prefix was trimmed away).
func (b *replayBuffer) slice(from, to uint64) ([]Item, uint64) {
	if b.lo == 0 || to < b.lo || from > b.hi {
		first := from
		if b.lo > from {
			first = b.lo
		}
		return nil, first
	}
	first := from
	if first < b.lo {
		first = b.lo
	}
	if to > b.hi {
		to = b.hi
	}
	out := make([]Item, 0, to-first+1)
	for seq := first; seq <= to; seq++ {
		out = append(out, b.slots[b.slot(seq)])
	}
	return out, first
}
