package stream

import (
	"sort"
	"sync"
)

// Cursor is the consumer side of the replay protocol: a per-subscription
// delivery gate that tracks which sequence numbers of a logical stream
// have been handed to the consumer. It deduplicates overlap (a re-bound
// subscription replaying items the consumer already saw), reorders
// ahead-of-sequence arrivals (an item that overtook a dropped
// predecessor waits until the gap is repaired), and exposes the next
// undelivered sequence so re-binding and anti-entropy sweeps know where
// to resume.
//
// Items are handed to the sink strictly in sequence order, under the
// cursor's lock, so concurrent producers (a live subscription racing a
// replay sweep) can never interleave out of order. Unsequenced items
// (Seq == 0) bypass the gate in arrival order.
type Cursor struct {
	mu      sync.Mutex
	next    uint64 // lowest sequence not yet delivered
	pending map[uint64]Item
	maxSeen uint64
	dups    uint64
	skipped uint64
	sink    func(Item)
}

// NewCursor returns a cursor that treats every sequence <= after as
// already delivered and hands deliverable items to sink in order.
func NewCursor(after uint64, sink func(Item)) *Cursor {
	return &Cursor{next: after + 1, pending: make(map[uint64]Item), sink: sink}
}

// Offer submits one item. Duplicates are dropped, in-order items (and
// any pending run they unblock) go to the sink, ahead-of-sequence items
// are parked until the gap fills.
func (c *Cursor) Offer(it Item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := it.Seq
	if seq == 0 {
		c.sink(it)
		return
	}
	if seq > c.maxSeen {
		c.maxSeen = seq
	}
	if seq < c.next {
		c.dups++
		return
	}
	if _, dup := c.pending[seq]; dup {
		c.dups++
		return
	}
	if seq > c.next {
		c.pending[seq] = it
		return
	}
	c.sink(it)
	c.next++
	c.drainLocked()
}

func (c *Cursor) drainLocked() {
	for {
		it, ok := c.pending[c.next]
		if !ok {
			return
		}
		delete(c.pending, c.next)
		c.sink(it)
		c.next++
	}
}

// AdvanceTo marks every sequence <= seq as delivered without delivering
// it — the floor set when a subscription attaches mid-stream (history
// before the attach point is not owed to the consumer).
func (c *Cursor) AdvanceTo(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq+1 <= c.next {
		return
	}
	for s := range c.pending {
		if s <= seq {
			delete(c.pending, s)
		}
	}
	c.next = seq + 1
	c.drainLocked()
}

// SkipTo abandons the gap [next, seq): the retention buffer trimmed
// those items, so they are unrecoverable. Skipped sequences are counted;
// parked items at or beyond seq become deliverable.
func (c *Cursor) SkipTo(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq <= c.next {
		return
	}
	c.skipped += seq - c.next
	for s := c.next; s < seq; s++ {
		if _, ok := c.pending[s]; ok {
			c.skipped--
			c.sink(c.pending[s])
			delete(c.pending, s)
		}
	}
	c.next = seq
	c.drainLocked()
}

// Terminate flushes any still-parked items (in sequence order, accepting
// the remaining gaps) and forwards the end-of-stream item — losing
// parked data to an unrepairable gap at teardown would be worse than
// delivering it late.
func (c *Cursor) Terminate(eos Item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seqs := make([]uint64, 0, len(c.pending))
	for s := range c.pending {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		c.sink(c.pending[s])
		delete(c.pending, s)
		if s >= c.next {
			c.next = s + 1
		}
	}
	c.sink(eos)
}

// Next returns the lowest sequence number not yet delivered — where a
// re-bound subscription or a repair sweep should resume.
func (c *Cursor) Next() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// Has reports whether the cursor already holds the sequence — delivered
// (below Next) or parked ahead-of-order. Repair sweeps use it to
// retransmit only the genuinely missing sequences.
func (c *Cursor) Has(seq uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq < c.next {
		return true
	}
	_, ok := c.pending[seq]
	return ok
}

// MaxSeen returns the highest sequence number ever offered.
func (c *Cursor) MaxSeen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxSeen
}

// Pending returns the number of parked ahead-of-sequence items.
func (c *Cursor) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Dups returns the number of duplicate deliveries suppressed.
func (c *Cursor) Dups() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dups
}

// Skipped returns the number of sequences abandoned as unrecoverable.
func (c *Cursor) Skipped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}
