package stream

import (
	"fmt"
	"sync"
	"testing"

	"p2pm/internal/xmltree"
)

func seqItem(n int) Item {
	t := xmltree.Elem("e")
	t.SetAttr("id", fmt.Sprintf("%d", n))
	return Item{Tree: t}
}

func seqsOf(items []Item) []uint64 {
	out := make([]uint64, len(items))
	for i, it := range items {
		out[i] = it.Seq
	}
	return out
}

func TestReplayBufferRetainsTail(t *testing.T) {
	ch := NewChannel("p", "s")
	ch.EnableReplay(4)
	for i := 1; i <= 10; i++ {
		ch.Publish(seqItem(i))
	}
	items, first := ch.Replay(1, 10)
	if first != 7 {
		t.Errorf("first available = %d, want 7 (capacity 4 of 10)", first)
	}
	if got := seqsOf(items); len(got) != 4 || got[0] != 7 || got[3] != 10 {
		t.Errorf("replayed seqs = %v, want [7 8 9 10]", got)
	}
	if ch.ReplayTrimmed() != 6 {
		t.Errorf("trimmed = %d, want 6", ch.ReplayTrimmed())
	}
	// A mid-range request is served exactly.
	items, first = ch.Replay(8, 9)
	if first != 8 || len(items) != 2 {
		t.Errorf("mid-range replay = (%v, %d), want 2 items from 8", seqsOf(items), first)
	}
}

func TestReplayDisabledByDefault(t *testing.T) {
	ch := NewChannel("p", "s")
	ch.Publish(seqItem(1))
	if ch.ReplayEnabled() {
		t.Error("replay enabled without EnableReplay")
	}
	if items, _ := ch.Replay(1, 1); items != nil {
		t.Errorf("replay on a buffer-less channel returned %v", items)
	}
}

func TestSubscribeFromReplaysThenContinues(t *testing.T) {
	ch := NewChannel("p", "s")
	ch.EnableReplay(16)
	for i := 1; i <= 5; i++ {
		ch.Publish(seqItem(i))
	}
	sub := ch.SubscribeFrom("late", 3, nil)
	if sub.Replayed != 3 || sub.ReplayFrom != 3 {
		t.Fatalf("replayed=%d from=%d, want 3 from 3", sub.Replayed, sub.ReplayFrom)
	}
	for i := 6; i <= 7; i++ {
		ch.Publish(seqItem(i))
	}
	ch.Close()
	got := seqsOf(sub.Queue.Drain())
	want := []uint64{3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("delivered seqs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered seqs = %v, want %v", got, want)
		}
	}
}

func TestSubscribeFromClosedChannelReplaysAndTerminates(t *testing.T) {
	ch := NewChannel("p", "s")
	ch.EnableReplay(16)
	ch.Publish(seqItem(1))
	ch.Publish(seqItem(2))
	ch.Close()
	sub := ch.SubscribeFrom("late", 1, nil)
	items := sub.Queue.Drain() // Drain stops at eos/close
	if len(items) != 2 {
		t.Fatalf("replayed %d items from a closed channel, want 2", len(items))
	}
	if !sub.Queue.Closed() {
		t.Error("queue left open after closed-channel replay")
	}
}

func TestSeedSeqContinuesNumbering(t *testing.T) {
	ch := NewChannel("p", "s")
	ch.EnableReplay(8)
	ch.SeedSeq(41)
	ch.Publish(seqItem(1))
	if got := ch.Seq(); got != 42 {
		t.Errorf("seq after seed+publish = %d, want 42", got)
	}
	// Seeding backwards overwrites: a restored producer re-emits its
	// post-checkpoint suffix under the same numbers.
	ch.SeedSeq(41)
	ch.Publish(seqItem(2))
	items, first := ch.Replay(42, 42)
	if first != 42 || len(items) != 1 {
		t.Fatalf("replay after re-seed = (%v, %d)", seqsOf(items), first)
	}
	if got := items[0].Tree.AttrOr("id", ""); got != "2" {
		t.Errorf("slot not overwritten: id = %s, want 2", got)
	}
}

func TestPublishPreservedKeepsNumbering(t *testing.T) {
	orig := NewChannel("p", "s")
	rep := NewChannel("q", "r")
	rep.EnableReplay(8)
	for i := 1; i <= 3; i++ {
		it := seqItem(i)
		it.Seq = uint64(i + 10)
		rep.PublishPreserved(it)
	}
	if got := rep.Seq(); got != 13 {
		t.Errorf("mirror seq = %d, want 13", got)
	}
	items, first := rep.Replay(11, 13)
	if first != 11 || len(items) != 3 {
		t.Errorf("mirror replay = (%v, %d), want 3 from 11", seqsOf(items), first)
	}
	_ = orig
}

func TestCursorOrdersDedupsAndRepairs(t *testing.T) {
	var got []uint64
	cur := NewCursor(0, func(it Item) { got = append(got, it.Seq) })
	offer := func(seqs ...uint64) {
		for _, s := range seqs {
			cur.Offer(Item{Tree: xmltree.Elem("e"), Seq: s})
		}
	}
	offer(1, 2, 4, 5) // 3 dropped: 4 and 5 park
	if len(got) != 2 || cur.Pending() != 2 {
		t.Fatalf("delivered %v pending %d, want [1 2] pending 2", got, cur.Pending())
	}
	offer(2)    // duplicate
	offer(3)    // gap repaired: 3,4,5 flush in order
	offer(4, 5) // replayed overlap: dropped
	want := []uint64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
	if cur.Dups() != 3 {
		t.Errorf("dups = %d, want 3", cur.Dups())
	}
	if cur.Next() != 6 {
		t.Errorf("next = %d, want 6", cur.Next())
	}
}

func TestCursorSkipToAbandonsTrimmedGap(t *testing.T) {
	var got []uint64
	cur := NewCursor(0, func(it Item) { got = append(got, it.Seq) })
	cur.Offer(Item{Tree: xmltree.Elem("e"), Seq: 5})
	cur.SkipTo(5) // 1..4 trimmed from the upstream buffer
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("delivered %v, want [5]", got)
	}
	if cur.Skipped() != 4 {
		t.Errorf("skipped = %d, want 4", cur.Skipped())
	}
}

func TestCursorAdvanceToSetsFloor(t *testing.T) {
	var got []uint64
	cur := NewCursor(0, func(it Item) { got = append(got, it.Seq) })
	cur.AdvanceTo(10)
	cur.Offer(Item{Tree: xmltree.Elem("e"), Seq: 9}) // history: dropped
	cur.Offer(Item{Tree: xmltree.Elem("e"), Seq: 11})
	if len(got) != 1 || got[0] != 11 {
		t.Fatalf("delivered %v, want [11]", got)
	}
}

func TestCursorTerminateFlushesPending(t *testing.T) {
	var got []uint64
	var eos int
	cur := NewCursor(0, func(it Item) {
		if it.EOS() {
			eos++
			return
		}
		got = append(got, it.Seq)
	})
	cur.Offer(Item{Tree: xmltree.Elem("e"), Seq: 1})
	cur.Offer(Item{Tree: xmltree.Elem("e"), Seq: 3})
	cur.Offer(Item{Tree: xmltree.Elem("e"), Seq: 5})
	cur.Terminate(Item{})
	want := []uint64{1, 3, 5}
	if len(got) != len(want) || eos != 1 {
		t.Fatalf("flush = %v (eos %d), want %v (eos 1)", got, eos, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flush = %v, want %v", got, want)
		}
	}
}

// TestCursorConcurrentOfferStaysOrdered hammers one cursor from several
// goroutines (a live subscription racing replay sweeps) and checks the
// sink still sees a strictly ordered, duplicate-free prefix. Run with
// -race.
func TestCursorConcurrentOfferStaysOrdered(t *testing.T) {
	const n = 500
	var mu sync.Mutex
	var got []uint64
	cur := NewCursor(0, func(it Item) {
		mu.Lock()
		got = append(got, it.Seq)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= n; i++ {
				cur.Offer(Item{Tree: xmltree.Elem("e"), Seq: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d items, want %d", len(got), n)
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("out of order at %d: %d", i, s)
		}
	}
}
