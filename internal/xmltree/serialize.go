package xmltree

import "strings"

func serialize(n *Node, b *strings.Builder) {
	if n.IsText() {
		escapeText(b, n.Text)
		return
	}
	b.WriteByte('<')
	b.WriteString(n.Label)
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		escapeAttr(b, a.Value)
		b.WriteByte('"')
	}
	if len(n.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range n.Children {
		serialize(c, b)
	}
	b.WriteString("</")
	b.WriteString(n.Label)
	b.WriteByte('>')
}

// Indent returns a pretty-printed form with two-space indentation, used by
// the CLI tools and examples. Text-only elements stay on one line.
func (n *Node) Indent() string {
	var b strings.Builder
	indent(n, &b, 0)
	return b.String()
}

func indent(n *Node, b *strings.Builder, depth int) {
	pad := strings.Repeat("  ", depth)
	if n.IsText() {
		if strings.TrimSpace(n.Text) == "" {
			return
		}
		b.WriteString(pad)
		escapeText(b, strings.TrimSpace(n.Text))
		b.WriteByte('\n')
		return
	}
	b.WriteString(pad)
	b.WriteByte('<')
	b.WriteString(n.Label)
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		escapeAttr(b, a.Value)
		b.WriteByte('"')
	}
	if len(n.Children) == 0 {
		b.WriteString("/>\n")
		return
	}
	if textOnly(n) {
		b.WriteByte('>')
		for _, c := range n.Children {
			escapeText(b, c.Text)
		}
		b.WriteString("</")
		b.WriteString(n.Label)
		b.WriteString(">\n")
		return
	}
	b.WriteString(">\n")
	for _, c := range n.Children {
		indent(c, b, depth+1)
	}
	b.WriteString(pad)
	b.WriteString("</")
	b.WriteString(n.Label)
	b.WriteString(">\n")
}

func textOnly(n *Node) bool {
	for _, c := range n.Children {
		if !c.IsText() {
			return false
		}
	}
	return true
}

func escapeText(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteRune(r)
		}
	}
}

func escapeAttr(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
}
