package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestElemConstruction(t *testing.T) {
	n := Elem("alert", ElemText("client", "a.com"))
	n.SetAttr("callId", "42")
	if n.Label != "alert" {
		t.Fatalf("label = %q", n.Label)
	}
	if v, ok := n.Attr("callId"); !ok || v != "42" {
		t.Fatalf("attr callId = %q, %v", v, ok)
	}
	if got := n.Child("client").InnerText(); got != "a.com" {
		t.Fatalf("client text = %q", got)
	}
}

func TestAttrReplaceAndRemove(t *testing.T) {
	n := Elem("a")
	n.SetAttr("x", "1")
	n.SetAttr("x", "2")
	if len(n.Attrs) != 1 || n.Attrs[0].Value != "2" {
		t.Fatalf("attrs = %v", n.Attrs)
	}
	n.RemoveAttr("x")
	if _, ok := n.Attr("x"); ok {
		t.Fatal("x should be removed")
	}
	n.RemoveAttr("absent") // must not panic
}

func TestAttrOr(t *testing.T) {
	n := Elem("a")
	n.SetAttr("k", "v")
	if n.AttrOr("k", "d") != "v" || n.AttrOr("missing", "d") != "d" {
		t.Fatal("AttrOr wrong")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	cases := []string{
		`<a/>`,
		`<a x="1" y="two"/>`,
		`<a><b/><c>text</c></a>`,
		`<incident type="slowAnswer"><client>a.com</client><tstamp>17</tstamp></incident>`,
		`<a>one<b/>two</a>`,
	}
	for _, src := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := n.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
	}
}

func TestParseEntitiesAndQuotes(t *testing.T) {
	n, err := Parse(`<a x='1 &amp; 2'>3 &lt; 4 &gt; 5 &quot;q&quot; &apos;a&apos;</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Attr("x"); v != "1 & 2" {
		t.Errorf("attr = %q", v)
	}
	if got := n.InnerText(); got != `3 < 4 > 5 "q" 'a'` {
		t.Errorf("text = %q", got)
	}
}

func TestParseUnknownEntityPassthrough(t *testing.T) {
	n, err := Parse(`<a>&unknown; stays</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.InnerText(); got != "&unknown; stays" {
		t.Errorf("text = %q", got)
	}
}

func TestParsePrologCommentsCDATA(t *testing.T) {
	src := `<?xml version="1.0"?>
<!-- outer comment -->
<root a="1">
  <!-- inner -->
  <![CDATA[raw <stuff> & more]]>
  <child/>
</root>`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "root" || n.Child("child") == nil {
		t.Fatalf("structure wrong: %s", n)
	}
	if !strings.Contains(n.InnerText(), "raw <stuff> & more") {
		t.Errorf("CDATA lost: %q", n.InnerText())
	}
}

func TestParseDoctypeSkipped(t *testing.T) {
	n, err := Parse(`<!DOCTYPE html><page/>`)
	if err != nil || n.Label != "page" {
		t.Fatalf("n=%v err=%v", n, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<`,
		`<a>`,
		`<a></b>`,
		`<a x=1/>`,
		`<a x="1/>`,
		`<a/><b/>`,
		`plain text`,
		`<a><b></a></b>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorHasOffset(t *testing.T) {
	_, err := Parse(`<a></b>`)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Offset <= 0 || !strings.Contains(pe.Error(), "offset") {
		t.Errorf("unexpected error: %v", pe)
	}
}

func TestReadFirstTag(t *testing.T) {
	label, attrs, err := ReadFirstTag(`<alert callId="7" caller="a.com"><big><deep/></big></alert>`)
	if err != nil {
		t.Fatal(err)
	}
	if label != "alert" || len(attrs) != 2 || attrs[0] != (Attr{"callId", "7"}) {
		t.Fatalf("label=%q attrs=%v", label, attrs)
	}
	// Self-closing roots work too.
	label, attrs, err = ReadFirstTag(`<ping t="1"/>`)
	if err != nil || label != "ping" || len(attrs) != 1 {
		t.Fatalf("label=%q attrs=%v err=%v", label, attrs, err)
	}
	if _, _, err := ReadFirstTag(`no xml`); err == nil {
		t.Error("want error for non-XML")
	}
}

// TestReadFirstTagDoesNotScanBody pins the performance contract the paper
// relies on: the body of the document is never touched. We verify by
// handing it a document whose body is not even well-formed.
func TestReadFirstTagDoesNotScanBody(t *testing.T) {
	label, _, err := ReadFirstTag(`<alert a="1"><<<< broken body`)
	if err != nil || label != "alert" {
		t.Fatalf("label=%q err=%v", label, err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := MustParse(`<a x="1"><b>t</b></a>`)
	cp := orig.Clone()
	cp.SetAttr("x", "2")
	cp.Child("b").Children[0].Text = "changed"
	if v, _ := orig.Attr("x"); v != "1" {
		t.Error("clone shares attrs")
	}
	if orig.Child("b").InnerText() != "t" {
		t.Error("clone shares children")
	}
	if (*Node)(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestEqual(t *testing.T) {
	a := MustParse(`<a x="1"><b/>text</a>`)
	b := MustParse(`<a x="1"><b/>text</a>`)
	if !Equal(a, b) {
		t.Error("identical trees unequal")
	}
	c := MustParse(`<a x="2"><b/>text</a>`)
	if Equal(a, c) {
		t.Error("different attr value equal")
	}
	d := MustParse(`<a x="1"><b/></a>`)
	if Equal(a, d) {
		t.Error("different children equal")
	}
	if Equal(a, nil) || !Equal(nil, nil) {
		t.Error("nil handling wrong")
	}
}

func TestCanonicalSortsAttrsAndDropsWhitespace(t *testing.T) {
	a := MustParse(`<a z="1" b="2">  <c/>  </a>`)
	b := MustParse(`<a b="2" z="1"><c/></a>`)
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical differ: %q vs %q", a.Canonical(), b.Canonical())
	}
	if Equal(a, b) {
		t.Error("Equal should still see attribute order")
	}
}

func TestWalkPrunes(t *testing.T) {
	n := MustParse(`<a><skip><deep/></skip><keep/></a>`)
	var visited []string
	n.Walk(func(x *Node) bool {
		if x.IsText() {
			return true
		}
		visited = append(visited, x.Label)
		return x.Label != "skip"
	})
	want := "a,skip,keep"
	if got := strings.Join(visited, ","); got != want {
		t.Errorf("visited %q want %q", got, want)
	}
}

func TestCountNodes(t *testing.T) {
	n := MustParse(`<a><b>t</b><c/></a>`)
	if got := n.CountNodes(); got != 4 {
		t.Errorf("CountNodes = %d, want 4", got)
	}
}

func TestChildrenByLabel(t *testing.T) {
	n := MustParse(`<a><p>1</p><q/><p>2</p></a>`)
	ps := n.ChildrenByLabel("p")
	if len(ps) != 2 || ps[0].InnerText() != "1" || ps[1].InnerText() != "2" {
		t.Fatalf("ps = %v", ps)
	}
}

func TestIndentStable(t *testing.T) {
	n := MustParse(`<a x="1"><b>t</b><c/></a>`)
	want := "<a x=\"1\">\n  <b>t</b>\n  <c/>\n</a>\n"
	if got := n.Indent(); got != want {
		t.Errorf("Indent = %q want %q", got, want)
	}
}

func TestSerializedSizeMatchesString(t *testing.T) {
	n := MustParse(`<a x="1"><b>t</b></a>`)
	if n.SerializedSize() != len(n.String()) {
		t.Error("size mismatch")
	}
}

func TestEscapingInSerialize(t *testing.T) {
	n := Elem("a")
	n.SetAttr("q", `he said "hi" & <left`)
	n.Append(Text(`1 < 2 & 3 > 0`))
	out := n.String()
	re, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if v, _ := re.Attr("q"); v != `he said "hi" & <left` {
		t.Errorf("attr = %q", v)
	}
	if re.InnerText() != `1 < 2 & 3 > 0` {
		t.Errorf("text = %q", re.InnerText())
	}
}

// genTree builds a pseudo-random tree from quick's rand source via a
// recursive structure of bounded depth.
func genTree(rnd interface{ Intn(int) int }, depth int) *Node {
	labels := []string{"a", "b", "c", "alert", "item"}
	n := Elem(labels[rnd.Intn(len(labels))])
	for i := 0; i < rnd.Intn(3); i++ {
		n.SetAttr("k"+string(rune('0'+rnd.Intn(5))), "v"+string(rune('0'+rnd.Intn(5))))
	}
	if depth > 0 {
		for i := 0; i < rnd.Intn(3); i++ {
			// Adjacent text siblings merge on reparse, so only emit a text
			// node when the previous child is an element.
			last := len(n.Children) - 1
			if rnd.Intn(4) == 0 && (last < 0 || !n.Children[last].IsText()) {
				n.Append(Text("txt"))
			} else {
				n.Append(genTree(rnd, depth-1))
			}
		}
	}
	return n
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rnd := newRand(seed)
		tree := genTree(rnd, 4)
		parsed, err := Parse(tree.String())
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		return Equal(tree, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		tree := genTree(newRand(seed), 4)
		return Equal(tree, tree.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// newRand is a tiny deterministic generator so property tests do not rely
// on math/rand global state.
type lcg struct{ state uint64 }

func newRand(seed int64) *lcg { return &lcg{state: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) Intn(n int) int {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return int((l.state >> 33) % uint64(n))
}
