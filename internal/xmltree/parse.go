package xmltree

import (
	"fmt"
	"strings"
)

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xmltree: parse error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses a single XML document and returns its root element.
// Leading/trailing whitespace, an optional <?xml?> prolog, comments and
// CDATA sections are accepted. The parser is hand written: the encoding/xml
// token stream drops attribute order guarantees we rely on and is far
// slower than needed for the filter benchmarks.
func Parse(s string) (*Node, error) {
	p := &parser{src: s}
	p.skipMisc()
	root, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	p.skipMisc()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing content after root element")
	}
	return root, nil
}

// MustParse is Parse that panics on error; for tests and fixtures only.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// ReadFirstTag scans only the first start tag of a serialized document and
// returns its label and attributes. This is the operation the paper's
// preFilter performs: simple conditions are evaluated "on the fly" from the
// root tag without materializing the rest of the item.
func ReadFirstTag(s string) (label string, attrs []Attr, err error) {
	p := &parser{src: s}
	p.skipMisc()
	if !p.consume('<') {
		return "", nil, p.errf("expected start tag")
	}
	label = p.readName()
	if label == "" {
		return "", nil, p.errf("expected element name")
	}
	for {
		p.skipSpace()
		if p.consume('>') || p.consumeSeq("/>") {
			return label, attrs, nil
		}
		name := p.readName()
		if name == "" {
			return "", nil, p.errf("expected attribute name")
		}
		p.skipSpace()
		if !p.consume('=') {
			return "", nil, p.errf("expected '=' after attribute %q", name)
		}
		p.skipSpace()
		val, e := p.readQuoted()
		if e != nil {
			return "", nil, e
		}
		attrs = append(attrs, Attr{Name: name, Value: val})
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) consume(b byte) bool {
	if p.pos < len(p.src) && p.src[p.pos] == b {
		p.pos++
		return true
	}
	return false
}

func (p *parser) consumeSeq(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// skipMisc skips whitespace, comments, processing instructions and the
// XML declaration between top-level constructs.
func (p *parser) skipMisc() {
	for {
		p.skipSpace()
		switch {
		case p.consumeSeq("<!--"):
			if i := strings.Index(p.src[p.pos:], "-->"); i >= 0 {
				p.pos += i + 3
			} else {
				p.pos = len(p.src)
			}
		case p.consumeSeq("<?"):
			if i := strings.Index(p.src[p.pos:], "?>"); i >= 0 {
				p.pos += i + 2
			} else {
				p.pos = len(p.src)
			}
		case p.consumeSeq("<!DOCTYPE"):
			if i := strings.IndexByte(p.src[p.pos:], '>'); i >= 0 {
				p.pos += i + 1
			} else {
				p.pos = len(p.src)
			}
		default:
			return
		}
	}
}

func nameChar(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		return true
	case !first && (b >= '0' && b <= '9' || b == '-' || b == '.'):
		return true
	case b >= 0x80: // multi-byte runes allowed in names
		return true
	}
	return false
}

func (p *parser) readName() string {
	start := p.pos
	for p.pos < len(p.src) && nameChar(p.src[p.pos], p.pos == start) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) readQuoted() (string, error) {
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", p.errf("expected quoted attribute value")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated attribute value")
	}
	raw := p.src[start:p.pos]
	p.pos++
	return unescape(raw), nil
}

func (p *parser) parseElement() (*Node, error) {
	if !p.consume('<') {
		return nil, p.errf("expected '<'")
	}
	label := p.readName()
	if label == "" {
		return nil, p.errf("expected element name")
	}
	n := &Node{Label: label}
	for {
		p.skipSpace()
		if p.consumeSeq("/>") {
			return n, nil
		}
		if p.consume('>') {
			break
		}
		name := p.readName()
		if name == "" {
			return nil, p.errf("expected attribute name in <%s>", label)
		}
		p.skipSpace()
		if !p.consume('=') {
			return nil, p.errf("expected '=' after attribute %q", name)
		}
		p.skipSpace()
		val, err := p.readQuoted()
		if err != nil {
			return nil, err
		}
		n.Attrs = append(n.Attrs, Attr{Name: name, Value: val})
	}
	// Content.
	for {
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated element <%s>", label)
		}
		switch {
		case p.consumeSeq("</"):
			end := p.readName()
			p.skipSpace()
			if !p.consume('>') {
				return nil, p.errf("malformed end tag </%s", end)
			}
			if end != label {
				return nil, p.errf("mismatched end tag </%s> for <%s>", end, label)
			}
			return n, nil
		case p.consumeSeq("<!--"):
			i := strings.Index(p.src[p.pos:], "-->")
			if i < 0 {
				return nil, p.errf("unterminated comment")
			}
			p.pos += i + 3
		case p.consumeSeq("<![CDATA["):
			i := strings.Index(p.src[p.pos:], "]]>")
			if i < 0 {
				return nil, p.errf("unterminated CDATA section")
			}
			n.Children = append(n.Children, Text(p.src[p.pos:p.pos+i]))
			p.pos += i + 3
		case p.consumeSeq("<?"):
			i := strings.Index(p.src[p.pos:], "?>")
			if i < 0 {
				return nil, p.errf("unterminated processing instruction")
			}
			p.pos += i + 2
		case p.peek() == '<':
			child, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		default:
			start := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != '<' {
				p.pos++
			}
			text := unescape(p.src[start:p.pos])
			if strings.TrimSpace(text) != "" {
				n.Children = append(n.Children, Text(text))
			}
		}
	}
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		rest := s[i:]
		switch {
		case strings.HasPrefix(rest, "&lt;"):
			b.WriteByte('<')
			i += 4
		case strings.HasPrefix(rest, "&gt;"):
			b.WriteByte('>')
			i += 4
		case strings.HasPrefix(rest, "&amp;"):
			b.WriteByte('&')
			i += 5
		case strings.HasPrefix(rest, "&quot;"):
			b.WriteByte('"')
			i += 6
		case strings.HasPrefix(rest, "&apos;"):
			b.WriteByte('\'')
			i += 6
		default:
			b.WriteByte('&')
			i++
		}
	}
	return b.String()
}
