package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

// Parsers face hostile input (stream items arrive from other peers).
// These properties pin down that Parse and ReadFirstTag never panic and
// fail cleanly, for arbitrary byte strings and for mutilated documents.

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		n, err := Parse(s)
		// Either a tree or an error, never both nil.
		return (n != nil) != (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReadFirstTagNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		_, _, _ = ReadFirstTag(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseMutilatedDocuments truncates and corrupts a real document at
// every position: Parse must error (or succeed on by-chance-valid
// prefixes) without panicking, and a reparse of a successful parse's
// serialization must agree.
func TestParseMutilatedDocuments(t *testing.T) {
	src := `<alert callId="c1" type="ws-in"><Envelope><Body a="1">text &amp; more<Deep/></Body></Envelope></alert>`
	for cut := 0; cut <= len(src); cut++ {
		s := src[:cut]
		n, err := Parse(s)
		if err != nil {
			continue
		}
		re, err2 := Parse(n.String())
		if err2 != nil || !Equal(n, re) {
			t.Fatalf("cut=%d: parse succeeded but round trip failed: %v", cut, err2)
		}
	}
	// Byte corruption at every position.
	for i := 0; i < len(src); i++ {
		for _, b := range []byte{'<', '>', '"', 0} {
			mut := src[:i] + string(b) + src[i+1:]
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on corruption at %d: %v", i, r)
					}
				}()
				Parse(mut)
			}()
		}
	}
}

func TestDeepNestingNoStackIssues(t *testing.T) {
	depth := 2000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	n, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if n.CountNodes() != depth+1 {
		t.Errorf("nodes = %d", n.CountNodes())
	}
	// Serialization and canonicalization of the deep tree also work.
	if len(n.String()) == 0 || len(n.Canonical()) == 0 {
		t.Error("serialization failed")
	}
}
