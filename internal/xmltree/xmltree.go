// Package xmltree provides the XML tree model that underlies every stream
// item in P2PM. Alerters emit trees, stream processors transform trees and
// channels transport trees; the monitoring algebra of the paper is an
// algebra over sequences of these values.
//
// The model is deliberately small: ordered elements with ordered attributes
// and text leaves. Namespaces are carried verbatim in labels ("soap:Envelope")
// as the paper's examples do; no URI resolution is performed.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a single attribute of an element. Attribute order is preserved
// because the serialized form (and hence measured transfer size) depends
// on it.
type Attr struct {
	Name  string
	Value string
}

// Node is a node of an XML tree: either an element (Label != "") or a text
// node (Label == "", Text holds the content). The zero value is an empty
// text node.
type Node struct {
	Label    string
	Text     string
	Attrs    []Attr
	Children []*Node
}

// Elem constructs an element node.
func Elem(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// Text constructs a text node.
func Text(s string) *Node { return &Node{Text: s} }

// ElemText constructs an element with a single text child, a very common
// shape in alerts (<client>a.com</client>).
func ElemText(label, text string) *Node {
	return &Node{Label: label, Children: []*Node{Text(text)}}
}

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n.Label == "" }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets (or replaces) an attribute and returns n for chaining.
func (n *Node) SetAttr(name, value string) *Node {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// RemoveAttr deletes an attribute if present.
func (n *Node) RemoveAttr(name string) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return
		}
	}
}

// Append adds children and returns n for chaining.
func (n *Node) Append(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Child returns the first child element with the given label, or nil.
func (n *Node) Child(label string) *Node {
	for _, c := range n.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// ChildrenByLabel returns all child elements with the given label.
func (n *Node) ChildrenByLabel(label string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Label == label {
			out = append(out, c)
		}
	}
	return out
}

// InnerText returns the concatenation of all text beneath n, in document
// order.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.innerText(&b)
	return b.String()
}

func (n *Node) innerText(b *strings.Builder) {
	if n.IsText() {
		b.WriteString(n.Text)
		return
	}
	for _, c := range n.Children {
		c.innerText(b)
	}
}

// Clone returns a deep copy of the tree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Label: n.Label, Text: n.Text}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(n.Attrs))
		copy(cp.Attrs, n.Attrs)
	}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Equal reports deep structural equality, including attribute order.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Label != b.Label || a.Text != b.Text ||
		len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Walk visits every node of the tree in document order. Returning false
// from fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// CountNodes returns the number of nodes in the tree (elements and text).
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// Canonical returns a canonical serialization of the tree in which
// attributes are sorted by name and insignificant whitespace-only text
// nodes are dropped. Two trees considered "similar" by the paper's
// Duplicate-removal operator canonicalize to the same string.
func (n *Node) Canonical() string {
	var b strings.Builder
	canonical(n, &b)
	return b.String()
}

func canonical(n *Node, b *strings.Builder) {
	if n.IsText() {
		if strings.TrimSpace(n.Text) == "" {
			return
		}
		escapeText(b, n.Text)
		return
	}
	b.WriteByte('<')
	b.WriteString(n.Label)
	if len(n.Attrs) > 0 {
		attrs := make([]Attr, len(n.Attrs))
		copy(attrs, n.Attrs)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
		for _, a := range attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			escapeAttr(b, a.Value)
			b.WriteByte('"')
		}
	}
	b.WriteByte('>')
	for _, c := range n.Children {
		canonical(c, b)
	}
	b.WriteString("</")
	b.WriteString(n.Label)
	b.WriteByte('>')
}

// String returns the serialized XML form of the tree.
func (n *Node) String() string {
	var b strings.Builder
	serialize(n, &b)
	return b.String()
}

// SerializedSize returns the byte size of the serialized form. simnet uses
// this as the transfer cost of shipping a tree between peers.
func (n *Node) SerializedSize() int {
	return len(n.String())
}

// GoString implements fmt.GoStringer for debugging output in tests.
func (n *Node) GoString() string { return fmt.Sprintf("xmltree.Node(%s)", n.String()) }
