package simnet

import (
	"testing"
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

func item() stream.Item { return stream.Item{Tree: xmltree.ElemText("x", "payload")} }

func TestCrashRecoverSemantics(t *testing.T) {
	nw := New(Options{Seed: 1})
	nw.AddNode("a")
	nw.AddNode("b")

	if !nw.Alive("a") || !nw.Alive("never-registered") {
		t.Fatal("nodes should default to alive")
	}
	if err := nw.Crash("ghost"); err == nil {
		t.Error("crashing an unknown node should fail")
	}
	if err := nw.Crash("b"); err != nil {
		t.Fatal(err)
	}
	if nw.Alive("b") {
		t.Error("b should be down")
	}
	if nw.Reachable("a", "b") || nw.Reachable("b", "a") {
		t.Error("links to a crashed node should be unreachable")
	}
	if !nw.Reachable("b", "b") {
		t.Error("local delivery is always reachable")
	}

	if _, ok := nw.Deliver("a", "b", item()); ok {
		t.Error("delivery to a crashed node should be dropped")
	}
	if got := nw.Link("a", "b").Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	if got := nw.Link("a", "b").Messages; got != 0 {
		t.Errorf("messages = %d, want 0", got)
	}

	if err := nw.Recover("b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.Deliver("a", "b", item()); !ok {
		t.Error("delivery after recovery should succeed")
	}
	if got := nw.Link("a", "b").Messages; got != 1 {
		t.Errorf("messages after recovery = %d, want 1", got)
	}
	if got := nw.Totals(); got.Dropped != 1 || got.Messages != 1 {
		t.Errorf("totals = %+v", got)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	nw := New(Options{Seed: 1})
	for _, n := range []string{"a1", "a2", "b1", "b2", "free"} {
		nw.AddNode(n)
	}
	nw.Partition([]string{"a1", "a2"}, []string{"b1", "b2"})

	if !nw.Partitioned("a1", "b1") || !nw.Partitioned("b2", "a2") {
		t.Error("cross-group pairs should be partitioned")
	}
	if nw.Partitioned("a1", "a2") || nw.Partitioned("b1", "b2") {
		t.Error("same-group pairs should not be partitioned")
	}
	if nw.Partitioned("a1", "free") || nw.Partitioned("free", "b1") {
		t.Error("unassigned nodes should reach both sides")
	}
	if nw.Reachable("a1", "b1") {
		t.Error("a1→b1 should be unreachable during the partition")
	}
	if !nw.Reachable("a1", "a2") || !nw.Reachable("free", "b2") {
		t.Error("intra-group and free links should stay up")
	}
	if _, ok := nw.Deliver("a1", "b1", item()); ok {
		t.Error("cross-partition delivery should drop")
	}

	// A new Partition call replaces the previous grouping.
	nw.Partition([]string{"a1"}, []string{"a2"})
	if !nw.Partitioned("a1", "a2") || nw.Partitioned("a1", "b1") {
		t.Error("repartition did not replace the old groups")
	}

	nw.Heal()
	if nw.Partitioned("a1", "a2") || !nw.Reachable("a1", "b1") {
		t.Error("heal should restore full connectivity")
	}
	if _, ok := nw.Deliver("a1", "b1", item()); !ok {
		t.Error("delivery after heal should succeed")
	}
}

func TestDropInjection(t *testing.T) {
	nw := New(Options{Seed: 42})
	nw.AddNode("a")
	nw.AddNode("b")
	nw.SetDrop("a", "b", 0.5)
	delivered, dropped := 0, 0
	for i := 0; i < 200; i++ {
		if _, ok := nw.Deliver("a", "b", item()); ok {
			delivered++
		} else {
			dropped++
		}
	}
	if delivered == 0 || dropped == 0 {
		t.Fatalf("p=0.5 should both deliver and drop (delivered=%d dropped=%d)", delivered, dropped)
	}
	if got := nw.Link("a", "b"); int(got.Dropped) != dropped || int(got.Messages) != delivered {
		t.Errorf("link stats %+v disagree with delivered=%d dropped=%d", got, delivered, dropped)
	}
	// The reverse link is unaffected.
	if _, ok := nw.Deliver("b", "a", item()); !ok {
		t.Error("reverse link should not drop")
	}
	nw.SetDrop("a", "b", 0)
	if _, ok := nw.Deliver("a", "b", item()); !ok {
		t.Error("clearing the injection should stop the loss")
	}
}

func TestExtraDelayInjection(t *testing.T) {
	nw := New(Options{Seed: 1, BaseLatency: 5 * time.Millisecond, LatencyPerUnit: 0})
	nw.AddNode("a")
	nw.AddNode("b")
	base := nw.Latency("a", "b")
	nw.SetExtraDelay("a", "b", 30*time.Millisecond)
	if got := nw.Latency("a", "b"); got != base+30*time.Millisecond {
		t.Errorf("latency with extra delay = %v, want %v", got, base+30*time.Millisecond)
	}
	if got := nw.Latency("b", "a"); got != base {
		t.Errorf("reverse latency = %v, want %v", got, base)
	}
	// Extra delay stacks on top of an explicit override too.
	nw.SetLatency("a", "b", time.Millisecond)
	if got := nw.Latency("a", "b"); got != 31*time.Millisecond {
		t.Errorf("override+delay = %v, want 31ms", got)
	}
	nw.SetExtraDelay("a", "b", 0)
	if got := nw.Latency("a", "b"); got != time.Millisecond {
		t.Errorf("cleared delay = %v, want 1ms", got)
	}
}

func TestEOSNeverDropped(t *testing.T) {
	nw := New(Options{Seed: 1})
	nw.AddNode("a")
	nw.AddNode("b")
	nw.Crash("b")
	if _, ok := nw.Deliver("a", "b", stream.EOSItem("s@a")); !ok {
		t.Error("eos should pass through a down link")
	}
	if got := nw.Totals(); got.Messages != 0 || got.Dropped != 0 {
		t.Errorf("eos should not be accounted: %+v", got)
	}
}

func TestDeliverHookDropsToQueue(t *testing.T) {
	nw := New(Options{Seed: 1})
	nw.AddNode("a")
	nw.AddNode("b")
	hook := nw.DeliverHook("a", "b")
	q := stream.NewQueue()
	hook(item(), q)
	nw.Crash("b")
	hook(item(), q)
	if q.Len() != 1 {
		t.Errorf("queue has %d items, want only the pre-crash one", q.Len())
	}
}
