package simnet

import (
	"testing"
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

func TestClock(t *testing.T) {
	c := &Clock{}
	if c.Now() != 0 {
		t.Fatal("clock should start at 0")
	}
	c.Advance(3 * time.Second)
	if c.Now() != 3*time.Second {
		t.Errorf("now = %v", c.Now())
	}
	c.Set(2 * time.Second) // backwards: ignored
	if c.Now() != 3*time.Second {
		t.Errorf("Set moved clock backwards: %v", c.Now())
	}
	c.Set(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Errorf("now = %v", c.Now())
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	nw := New(Options{Seed: 7})
	a := nw.AddNode("a.com")
	b := nw.AddNode("a.com")
	if a != b {
		t.Error("AddNode should return the existing node")
	}
	if nw.Node("a.com") == nil || nw.Node("missing") != nil {
		t.Error("Node lookup wrong")
	}
}

func TestLatencyProperties(t *testing.T) {
	nw := New(DefaultOptions())
	nw.AddNode("a")
	nw.AddNode("b")
	if nw.Latency("a", "a") != 0 {
		t.Error("local latency must be zero")
	}
	if nw.Latency("a", "b") < DefaultOptions().BaseLatency {
		t.Error("remote latency below base")
	}
	nw.SetLatency("a", "b", 42*time.Millisecond)
	if nw.Latency("a", "b") != 42*time.Millisecond {
		t.Error("override ignored")
	}
	// Override is directional.
	if nw.Latency("b", "a") == 42*time.Millisecond && nw.Distance("a", "b") > 0 {
		// Could coincide only by accident with the distance formula; the
		// override map must not apply in reverse.
		t.Log("reverse latency coincided; checking map not used")
	}
}

func TestDeterministicCoordinates(t *testing.T) {
	n1 := New(Options{Seed: 42})
	n2 := New(Options{Seed: 42})
	a1 := n1.AddNode("x")
	a2 := n2.AddNode("x")
	if a1.X != a2.X || a1.Y != a2.Y {
		t.Error("same seed should give same coordinates")
	}
}

func TestTransferAccounting(t *testing.T) {
	nw := New(DefaultOptions())
	nw.AddNode("a")
	nw.AddNode("b")
	it := stream.Item{Tree: xmltree.MustParse(`<alert callId="1"/>`)}
	size := it.Tree.SerializedSize()
	out := nw.Send("a", "b", it)
	if out.Time < nw.Latency("a", "b") {
		t.Errorf("arrival time %v < latency", out.Time)
	}
	tot := nw.Totals()
	if tot.Messages != 1 || tot.Bytes != uint64(size) || tot.Links != 1 {
		t.Errorf("totals = %+v", tot)
	}
	if got := nw.Link("a", "b"); got.Messages != 1 {
		t.Errorf("link = %+v", got)
	}
	// Local delivery is free and uncounted.
	nw.Send("a", "a", it)
	if nw.Totals().Messages != 1 {
		t.Error("local send counted")
	}
	nw.ResetTraffic()
	if nw.Totals().Messages != 0 {
		t.Error("reset failed")
	}
}

func TestSendEOSNotCounted(t *testing.T) {
	nw := New(DefaultOptions())
	nw.AddNode("a")
	nw.AddNode("b")
	nw.Send("a", "b", stream.EOSItem("s@a"))
	if nw.Totals().Messages != 0 {
		t.Error("eos counted as traffic")
	}
}

func TestDeliverHookIntegratesWithChannel(t *testing.T) {
	nw := New(DefaultOptions())
	nw.AddNode("pub")
	nw.AddNode("sub")
	ch := stream.NewChannel("pub", "s")
	s := ch.Subscribe("sub", nw.DeliverHook("pub", "sub"))
	ch.Publish(stream.Item{Tree: xmltree.MustParse(`<a/>`)})
	ch.Close()
	got := s.Queue.Drain()
	if len(got) != 1 {
		t.Fatalf("got %d items", len(got))
	}
	if got[0].Time == 0 {
		t.Error("latency not applied")
	}
	if nw.Totals().Messages != 1 {
		t.Error("traffic not counted")
	}
}

func TestSendIgnoresWallClockScheduling(t *testing.T) {
	// Virtual arrival time depends only on the item's production time and
	// the link latency — never on when the delivering goroutine happens
	// to run relative to the global clock.
	nw := New(DefaultOptions())
	nw.AddNode("a")
	nw.AddNode("b")
	nw.Clock().Advance(time.Hour) // simulation has moved on
	out := nw.Send("a", "b", stream.Item{Tree: xmltree.Elem("x"), Time: time.Second})
	if want := time.Second + nw.Latency("a", "b"); out.Time != want {
		t.Errorf("arrival = %v, want %v", out.Time, want)
	}
}

func TestLoadGauge(t *testing.T) {
	nw := New(DefaultOptions())
	nw.AddNode("a")
	nw.AddLoad("a", 3)
	nw.AddLoad("a", -1)
	if nw.Load("a") != 2 {
		t.Errorf("load = %d", nw.Load("a"))
	}
	if nw.Load("missing") != 0 {
		t.Error("missing node load should be 0")
	}
}

func TestNodesSorted(t *testing.T) {
	nw := New(DefaultOptions())
	nw.AddNode("zeta")
	nw.AddNode("alpha")
	ns := nw.Nodes()
	if len(ns) != 2 || ns[0] != "alpha" {
		t.Errorf("nodes = %v", ns)
	}
}

func TestDistance(t *testing.T) {
	nw := New(DefaultOptions())
	nw.AddNode("a")
	nw.AddNode("b")
	if nw.Distance("a", "a") != 0 {
		t.Error("self distance should be 0")
	}
	if d := nw.Distance("a", "b"); d <= 0 || d > 1.5 {
		t.Errorf("distance = %f", d)
	}
}
