// Fault injection: the churn model. A node can crash (fail-stop: every
// message to or from it is dropped) and recover; the network can be split
// into partition groups and healed; individual links can lose a fraction
// of their messages or add delay on top of the latency model. All of it
// composes with the virtual clock and the per-link traffic accounting, so
// experiments can measure the cost of monitoring under churn.

package simnet

import (
	"fmt"
	"time"
)

// Crash marks a node dead. Messages to and from it are dropped (counted
// in LinkStats.Dropped) until Recover. Crashing an unknown node is an
// error; crashing a dead node is a no-op.
func (nw *Network) Crash(name string) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	n := nw.nodes[name]
	if n == nil {
		return fmt.Errorf("simnet: cannot crash unknown node %q", name)
	}
	n.down = true
	return nil
}

// Recover brings a crashed node back.
func (nw *Network) Recover(name string) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	n := nw.nodes[name]
	if n == nil {
		return fmt.Errorf("simnet: cannot recover unknown node %q", name)
	}
	n.down = false
	return nil
}

// Alive reports whether a node is up. Names that were never registered
// are treated as alive, matching the latency model's tolerance for
// external endpoints.
func (nw *Network) Alive(name string) bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	n := nw.nodes[name]
	return n == nil || !n.down
}

// Partition splits the network: nodes in a and nodes in b can no longer
// exchange messages. Nodes in neither group keep full connectivity.
// Partition replaces any previous partition; unknown names are ignored.
func (nw *Network) Partition(a, b []string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for _, n := range nw.nodes {
		n.part = 0
	}
	for _, name := range a {
		if n := nw.nodes[name]; n != nil {
			n.part = 1
		}
	}
	for _, name := range b {
		if n := nw.nodes[name]; n != nil {
			n.part = 2
		}
	}
}

// Heal removes the partition.
func (nw *Network) Heal() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for _, n := range nw.nodes {
		n.part = 0
	}
}

// Partitioned reports whether a and b sit in different partition groups.
func (nw *Network) Partitioned(a, b string) bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	na, nb := nw.nodes[a], nw.nodes[b]
	if na == nil || nb == nil {
		return false
	}
	return na.part != 0 && nb.part != 0 && na.part != nb.part
}

// Reachable reports whether a message from a can currently reach b: both
// endpoints alive and not separated by a partition. Local delivery always
// succeeds.
func (nw *Network) Reachable(a, b string) bool {
	if a == b {
		return true
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	na, nb := nw.nodes[a], nw.nodes[b]
	if na != nil && na.down {
		return false
	}
	if nb != nil && nb.down {
		return false
	}
	if na != nil && nb != nil && na.part != 0 && nb.part != 0 && na.part != nb.part {
		return false
	}
	return true
}

// SetDrop injects message loss on the directed link a→b: each message is
// dropped with probability p (seeded by the network's rng). p <= 0 clears
// the injection.
func (nw *Network) SetDrop(a, b string, p float64) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if p <= 0 {
		delete(nw.dropProb, [2]string{a, b})
		return
	}
	nw.dropProb[[2]string{a, b}] = p
}

// SetExtraDelay injects additional delay on the directed link a→b, added
// on top of the latency model (a slow-but-alive link). d <= 0 clears it.
func (nw *Network) SetExtraDelay(a, b string, d time.Duration) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if d <= 0 {
		delete(nw.linkDelay, [2]string{a, b})
		return
	}
	nw.linkDelay[[2]string{a, b}] = d
}

// Ping accounts one small control message (a heartbeat) on from→to and
// returns its one-way latency. ok=false when the fault model loses it:
// crashed endpoint, partition, or injected drop — lost pings are counted
// like any dropped message.
func (nw *Network) Ping(from, to string, bytes int) (time.Duration, bool) {
	if from == to {
		return 0, true
	}
	if !nw.Reachable(from, to) || nw.lose(from, to) {
		nw.countDropped(from, to)
		return 0, false
	}
	nw.CountTransfer(from, to, bytes)
	return nw.Latency(from, to), true
}

// countDropped records a lost message on link from→to.
func (nw *Network) countDropped(from, to string) {
	if from == to {
		return
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	key := [2]string{from, to}
	ls := nw.links[key]
	if ls == nil {
		ls = &LinkStats{}
		nw.links[key] = ls
	}
	ls.Dropped++
	if nw.tele != nil {
		nw.tele.dropped.Inc()
	}
}

// lose decides whether a message on from→to is lost to injected drop
// probability (seeded rng; unrelated links are unaffected).
func (nw *Network) lose(from, to string) bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	p, ok := nw.dropProb[[2]string{from, to}]
	return ok && nw.rng.Float64() < p
}
