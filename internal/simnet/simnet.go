// Package simnet simulates the P2P network substrate the paper deploys on
// (Java/Tomcat/Axis peers exchanging SOAP over HTTP). Peers become nodes
// in an in-process network with a virtual clock, a latency model derived
// from 2D coordinates, and per-link accounting of messages and bytes
// (serialized XML size). The experiments about communication savings
// (selection pushdown C5, ActiveXML laziness C6, stream reuse C7) read
// their numbers from these counters.
package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/telemetry"
)

// Options configures a simulated network.
type Options struct {
	// Seed drives all randomness (coordinates, workload draws).
	Seed int64
	// BaseLatency is the fixed per-message latency floor.
	BaseLatency time.Duration
	// LatencyPerUnit scales latency with Euclidean coordinate distance.
	LatencyPerUnit time.Duration
}

// DefaultOptions mirror a modest wide-area deployment: 5ms floor plus up
// to ~70ms of distance-dependent latency on the unit square.
func DefaultOptions() Options {
	return Options{Seed: 1, BaseLatency: 5 * time.Millisecond, LatencyPerUnit: 50 * time.Millisecond}
}

// Clock is the virtual clock shared by every node of a network.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Set jumps the clock to t if t is later than now.
func (c *Clock) Set(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Node is one simulated machine.
type Node struct {
	Name string
	X, Y float64
	load int
	down bool
	part int // partition group; 0 = unassigned (reachable from any group)
}

// LinkStats counts traffic on one directed link.
type LinkStats struct {
	Messages uint64
	Bytes    uint64
	// Dropped counts messages lost on the link: crashed endpoint,
	// partition, or injected loss.
	Dropped uint64
}

// Network is the simulated substrate.
type Network struct {
	opts  Options
	clock *Clock

	mu        sync.Mutex
	rng       *rand.Rand
	nodes     map[string]*Node
	links     map[[2]string]*LinkStats
	latOver   map[[2]string]time.Duration
	dropProb  map[[2]string]float64
	linkDelay map[[2]string]time.Duration
	tele      *netMetrics // nil unless Instrument was called
}

// netMetrics are the network-wide telemetry handles: totals across all
// links (per-link series would explode cardinality on large meshes —
// per-link numbers stay available via LinkStats).
type netMetrics struct {
	msgs, bytes, dropped *telemetry.Counter
}

// Instrument registers the network's aggregate traffic counters
// (simnet_messages_total, simnet_bytes_total, simnet_dropped_total)
// with the telemetry registry. Idempotent; uninstrumented networks pay
// nothing on the accounting paths.
func (nw *Network) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.tele = &netMetrics{
		msgs:    reg.Counter("simnet_messages_total"),
		bytes:   reg.Counter("simnet_bytes_total"),
		dropped: reg.Counter("simnet_dropped_total"),
	}
}

// New builds an empty network.
func New(opts Options) *Network {
	if opts.BaseLatency == 0 && opts.LatencyPerUnit == 0 {
		opts.BaseLatency = DefaultOptions().BaseLatency
		opts.LatencyPerUnit = DefaultOptions().LatencyPerUnit
	}
	return &Network{
		opts:      opts,
		clock:     &Clock{},
		rng:       rand.New(rand.NewSource(opts.Seed)),
		nodes:     make(map[string]*Node),
		links:     make(map[[2]string]*LinkStats),
		latOver:   make(map[[2]string]time.Duration),
		dropProb:  make(map[[2]string]float64),
		linkDelay: make(map[[2]string]time.Duration),
	}
}

// Clock returns the network's virtual clock.
func (nw *Network) Clock() *Clock { return nw.clock }

// Rand returns the network's seeded random source. Callers must not use
// it concurrently with AddNode (tests and workload generators are
// single-threaded at setup time).
func (nw *Network) Rand() *rand.Rand { return nw.rng }

// AddNode registers a node at a random coordinate and returns it.
// Re-adding an existing name returns the existing node.
func (nw *Network) AddNode(name string) *Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if n, ok := nw.nodes[name]; ok {
		return n
	}
	n := &Node{Name: name, X: nw.rng.Float64(), Y: nw.rng.Float64()}
	nw.nodes[name] = n
	return n
}

// Node returns a registered node or nil.
func (nw *Network) Node(name string) *Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.nodes[name]
}

// Nodes returns all node names, sorted.
func (nw *Network) Nodes() []string {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	names := make([]string, 0, len(nw.nodes))
	for n := range nw.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetLatency overrides the latency of the directed link a→b.
func (nw *Network) SetLatency(a, b string, d time.Duration) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.latOver[[2]string{a, b}] = d
}

// Latency returns the one-way latency between two nodes. Local delivery
// (a == b) is free.
func (nw *Network) Latency(a, b string) time.Duration {
	if a == b {
		return 0
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	extra := nw.linkDelay[[2]string{a, b}]
	if d, ok := nw.latOver[[2]string{a, b}]; ok {
		return d + extra
	}
	na, nb := nw.nodes[a], nw.nodes[b]
	if na == nil || nb == nil {
		return nw.opts.BaseLatency + extra
	}
	dist := math.Hypot(na.X-nb.X, na.Y-nb.Y)
	return nw.opts.BaseLatency + time.Duration(dist*float64(nw.opts.LatencyPerUnit)) + extra
}

// Distance returns the coordinate distance between two nodes (used by the
// reuse optimizer's "close networkwise" replica choice).
func (nw *Network) Distance(a, b string) float64 {
	if a == b {
		return 0
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	na, nb := nw.nodes[a], nw.nodes[b]
	if na == nil || nb == nil {
		return math.Inf(1)
	}
	return math.Hypot(na.X-nb.X, na.Y-nb.Y)
}

// CountTransfer records a message of the given byte size on link from→to.
// Local deliveries are not counted: the paper's savings are about the
// network.
func (nw *Network) CountTransfer(from, to string, bytes int) {
	if from == to {
		return
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	key := [2]string{from, to}
	ls := nw.links[key]
	if ls == nil {
		ls = &LinkStats{}
		nw.links[key] = ls
	}
	ls.Messages++
	ls.Bytes += uint64(bytes)
	if nw.tele != nil {
		nw.tele.msgs.Inc()
		nw.tele.bytes.Add(uint64(bytes))
	}
}

// Send accounts for shipping an item from one node to another and returns
// the item restamped with its arrival time: production time plus link
// latency. Virtual time is carried entirely on items — wall-clock
// goroutine scheduling never leaks into timestamps. Send ignores faults;
// use Deliver for fault-aware transport.
func (nw *Network) Send(from, to string, it stream.Item) stream.Item {
	if !it.EOS() {
		nw.CountTransfer(from, to, it.Tree.SerializedSize())
	}
	it.Time += nw.Latency(from, to)
	return it
}

// Deliver ships an item across the from→to link under the fault model:
// the message is lost (ok=false, counted in LinkStats.Dropped) when
// either endpoint is crashed, the link crosses a partition, or injected
// loss strikes. Delivered items are accounted and latency-stamped like
// Send. The eos symbol is never dropped — a crashed producer's stream is
// torn down by the failure handling layer, not by losing its terminator.
func (nw *Network) Deliver(from, to string, it stream.Item) (stream.Item, bool) {
	if !it.EOS() && (!nw.Reachable(from, to) || nw.lose(from, to)) {
		nw.countDropped(from, to)
		return it, false
	}
	return nw.Send(from, to, it), true
}

// DeliverPayload ships an opaque control-plane payload of the given
// wire size across the from→to link under the fault model, returning
// whether it arrived. This is the delivery primitive behind the simnet
// transport backend (internal/transport): gossip probes, checkpoint
// traffic and partial-aggregation states all cross links through it,
// so they obey the same crash/partition/loss faults and land in the
// same per-link byte accounting as stream items do.
func (nw *Network) DeliverPayload(from, to string, bytes int) bool {
	if from != to && (!nw.Reachable(from, to) || nw.lose(from, to)) {
		nw.countDropped(from, to)
		return false
	}
	nw.CountTransfer(from, to, bytes)
	return true
}

// DeliverHook returns a stream.Channel delivery hook that routes items
// across the from→to link with accounting, latency stamping and fault
// injection: messages lost to crashes, partitions or injected drop
// probability never reach the consumer's queue.
func (nw *Network) DeliverHook(from, to string) func(stream.Item, *stream.Queue) {
	return func(it stream.Item, q *stream.Queue) {
		if out, ok := nw.Deliver(from, to, it); ok {
			q.Push(out)
		}
	}
}

// Totals summarizes all traffic.
type Totals struct {
	Messages uint64
	Bytes    uint64
	Dropped  uint64
	Links    int
}

// Totals returns aggregate traffic counters.
func (nw *Network) Totals() Totals {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var t Totals
	for _, ls := range nw.links {
		t.Messages += ls.Messages
		t.Bytes += ls.Bytes
		t.Dropped += ls.Dropped
		t.Links++
	}
	return t
}

// Link returns a copy of the stats for the directed link a→b.
func (nw *Network) Link(a, b string) LinkStats {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if ls := nw.links[[2]string{a, b}]; ls != nil {
		return *ls
	}
	return LinkStats{}
}

// ResetTraffic zeroes all link counters (between experiment phases).
func (nw *Network) ResetTraffic() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.links = make(map[[2]string]*LinkStats)
}

// AddLoad adjusts a node's load gauge (number of hosted operators); the
// reuse optimizer prefers unloaded providers.
func (nw *Network) AddLoad(name string, delta int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if n := nw.nodes[name]; n != nil {
		n.load += delta
	}
}

// Load returns a node's current load gauge.
func (nw *Network) Load(name string) int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if n := nw.nodes[name]; n != nil {
		return n.load
	}
	return 0
}

// String renders a short summary.
func (nw *Network) String() string {
	t := nw.Totals()
	return fmt.Sprintf("simnet{nodes=%d links=%d msgs=%d bytes=%d}", len(nw.Nodes()), t.Links, t.Messages, t.Bytes)
}
