package peer

import (
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/xmltree"
)

// leaveWorld builds the minimal relay deployment the leave tests hand
// off: alerter at src → relay (∪) at w0 → publisher at mgr, with a
// gossip supervisor watching everything and non-workers load-biased so
// migrations stay in the pool.
func leaveWorld(t *testing.T, replay bool) (*System, *Task, *Supervisor) {
	t.Helper()
	opts := DefaultConfig()
	if replay {
		opts.Replay.Buffer = 1024
		opts.Replay.CheckpointInterval = 2 * time.Second
	}
	sys := MustSystem(opts)
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src")
	src.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	sys.MustAddPeer("client")
	sys.MustAddPeer("w0")
	sys.MustAddPeer("w1")
	for _, busy := range []string{"mgr", "src", "client"} {
		sys.Net.AddLoad(busy, 1000)
	}
	al := algebra.NewAlerter("inCOM", "ws-in", "src", "e", nil)
	relay := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: []*algebra.Node{al}, Schema: []string{"e"}}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{relay},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "relayed"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.StartGossipSupervisor(GossipOptions{
		Seed: 1, ProbeInterval: time.Second, Suspicion: 2 * time.Second,
	})
	return sys, task, sup
}

// TestLeavePeerGracefulHandoff: a departing relay host announces and
// hands off — tasks migrate immediately (zero detection latency), the
// detector never declares a death, the DHT keys move with their store
// intact, and with replay on not a single event is lost.
func TestLeavePeerGracefulHandoff(t *testing.T) {
	sys, task, sup := leaveWorld(t, true)
	client := sys.Peer("client")
	drive := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := client.Endpoint().Invoke("src", "Q", nil); err != nil {
				t.Fatal(err)
			}
			settleTask(task)
			sys.Step(time.Second)
		}
	}
	drive(10)
	if relayHost(task) != "w0" {
		t.Fatalf("relay starts at %s, want w0", relayHost(task))
	}

	evs, err := sys.LeavePeer("w0")
	if err != nil {
		t.Fatal(err)
	}
	repaired := 0
	for _, ev := range evs {
		if ev.Repaired() {
			repaired++
		}
	}
	if repaired == 0 {
		t.Fatalf("leave produced no migrations: %v", evs)
	}
	if got := relayHost(task); got != "w1" {
		t.Errorf("relay after leave at %s, want w1", got)
	}
	if got := sys.Ring.Size(); got != 4 {
		t.Errorf("ring size after leave = %d, want 4", got)
	}

	drive(10)
	for i := 0; i < 6; i++ {
		sys.Step(time.Second)
	}
	if deaths := sup.Deaths(); len(deaths) != 0 {
		t.Errorf("graceful leave was declared a death: %v", deaths)
	}
	task.Stop()
	if got := len(task.Results().Drain()); got != 20 {
		t.Errorf("results = %d, want 20 (lossless handoff)", got)
	}
}

// TestLeavePeerRingHandsOffStore: unlike a crash, a graceful departure
// migrates the leaver's stored copies, so even a replication-1 ring
// keeps every key.
func TestLeavePeerRingHandsOffStore(t *testing.T) {
	opts := DefaultConfig()
	opts.DHT.Replication = 1
	sys := MustSystem(opts)
	for _, n := range []string{"a", "b", "c"} {
		sys.MustAddPeer(n)
	}
	for i := 0; i < 12; i++ {
		if err := sys.Ring.Set(string(rune('k'+i))+"|x", "v"); err != nil {
			t.Fatal(err)
		}
	}
	victim := ""
	for _, n := range sys.Ring.Nodes() {
		if sys.Ring.KeysAt(n) > 0 {
			victim = n
			break
		}
	}
	if victim == "" {
		t.Fatal("no member holds keys")
	}
	if _, err := sys.LeavePeer(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		key := string(rune('k'+i)) + "|x"
		if vals, _, err := sys.Ring.Get("", key); err != nil || len(vals) == 0 {
			t.Errorf("key %s lost in the graceful handoff (vals=%v err=%v)", key, vals, err)
		}
	}
}

// TestLeavePeerErrors: only live members can leave gracefully.
func TestLeavePeerErrors(t *testing.T) {
	sys, _, _ := leaveWorld(t, false)
	if _, err := sys.LeavePeer("nobody"); err == nil {
		t.Error("unknown peer left without error")
	}
	sys.Net.Crash("w1") //nolint:errcheck // known node
	if _, err := sys.LeavePeer("w1"); err == nil {
		t.Error("crashed peer left gracefully")
	}
}

// TestLeaveThenRejoin: a departed peer re-enters through the join
// protocol; its departure statement is outranked and the aggregate
// clears it without ever firing crash repair.
func TestLeaveThenRejoin(t *testing.T) {
	sys, task, sup := leaveWorld(t, true)
	if _, err := sys.LeavePeer("w1"); err != nil { // idle worker leaves
		t.Fatal(err)
	}
	if got := sup.Detector().Suspects(); len(got) != 1 || got[0] != "w1" {
		t.Fatalf("departed peer not reflected in the aggregate: %v", got)
	}
	if _, err := sys.JoinPeer("w1", "mgr"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12 && len(sup.Detector().Suspects()) > 0; i++ {
		sys.Step(time.Second)
	}
	if got := sup.Detector().Suspects(); len(got) != 0 {
		t.Errorf("rejoined peer still confirmed gone: %v", got)
	}
	if deaths := sup.Deaths(); len(deaths) != 0 {
		t.Errorf("leave/rejoin cycle declared deaths: %v", deaths)
	}
	task.Stop()
}
