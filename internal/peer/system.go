// Package peer implements P2PM's control plane: the System (a network of
// monitor peers plus the monitored substrates), the per-peer Subscription
// Manager with its subscription database, and the deployment machinery
// that turns an optimized algebraic plan into running operators connected
// by channels (Section 3).
package peer

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/dht"
	"p2pm/internal/kadop"
	"p2pm/internal/rss"
	"p2pm/internal/simnet"
	"p2pm/internal/soap"
	"p2pm/internal/stream"
	"p2pm/internal/telemetry"
	"p2pm/internal/transport"
	"p2pm/internal/xmltree"
)

// System is one P2PM deployment: the monitoring P2P network, the
// monitored substrates (Web services fabric, feeds, repositories), the
// KadoP stream-definition database over its DHT, and the channel
// registry stitching deployed plan fragments together.
type System struct {
	// cfg is the grouped configuration; cfgMu guards it because the
	// Tuning surface mutates parts of it mid-run.
	cfgMu sync.RWMutex
	cfg   Config

	Net *simnet.Network
	// link is the fault-aware delivery seam every data-plane transfer
	// goes through (transport.Link). It is the same object as Net — the
	// simulated network satisfies the interface — but call sites that
	// move items or account bytes use this narrow surface, keeping the
	// operator data plane portable to other transport substrates.
	link   transport.Link
	Fabric *soap.Fabric
	Ring   *dht.Ring
	DB     *kadop.DB

	mu         sync.Mutex
	peers      map[string]*Peer
	channels   map[stream.Ref]*stream.Channel
	sidSeq     map[string]int
	taskSeq    int
	detectors  []FailureDetector
	forwarders []*replicaForwarder
	// aggHosts, when set, restricts DHT-routed aggregation-tree interior
	// placement to matching peers (e.g. a worker pool, keeping merge
	// nodes off monitored sources). nil admits every ring member.
	aggHosts func(name string) bool
	// quarantined removes peers from aggregation-tree interior placement
	// on top of the aggHosts filter (Tuning.QuarantineAggHost — the
	// control action a flap-monitoring query triggers).
	quarantined map[string]bool
	// stale marks channels whose producer migrated away during failover:
	// the channel object survives (and its host may come back), but no
	// operator feeds it anymore, so it must never be chosen as a
	// provider again.
	stale map[stream.Ref]bool
	// onStep hooks run at the end of every Step (after detectors, sweeps
	// and checkpoints) — the seam per-Step adaptive controllers hang off.
	onStep []func(now time.Duration)

	lastCkpt time.Duration // virtual time of the last checkpoint sweep
	replayed atomic.Uint64 // items retransmitted from replay buffers
	splitSeq int           // fresh ids for re-chunked interiors
	splitLog []SplitEvent  // audit log of completed splits

	// tele and teleSrv are set once at construction when
	// Config.Telemetry opts in (docs/TELEMETRY.md); nil otherwise.
	tele    *sysMetrics
	teleSrv *telemetry.Server
}

// replicaForwarder records the subscription tying a replica channel to
// its origin, so failure handling can sever it when the origin's host
// crashes (a re-deployed operator takes over publishing into the
// replica; the origin's eventual teardown must not close it).
type replicaForwarder struct {
	orig stream.Ref
	rep  *stream.Channel
	sub  *stream.Subscription
	// cur, when the replay layer is on, orders and deduplicates the
	// forwarded items so the replica mirrors a gap-free prefix of the
	// original (its replay buffer stays contiguous); the anti-entropy
	// sweep refills link-fault losses through it.
	cur *stream.Cursor
	// severed is set when the origin's host died and a re-deployed
	// operator adopted the replica: the sweep must stop pulling from the
	// abandoned origin.
	severed bool
}

// NewSystem validates the configuration and builds an empty system.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	nw := simnet.New(cfg.Net)
	ring := dht.New()
	if cfg.DHT.Replication > 1 {
		ring.SetReplication(cfg.DHT.Replication)
	}
	if cfg.DHT.VirtualNodes > 1 {
		ring.SetVirtual(cfg.DHT.VirtualNodes)
	}
	if cfg.DHT.LoadBound > 0 {
		ring.SetLoadBound(cfg.DHT.LoadBound)
	}
	if cfg.DHT.ReadCache {
		ring.EnableReadCache()
	}
	s := &System{
		cfg:      cfg,
		Net:      nw,
		link:     nw,
		Fabric:   soap.NewFabric(nw),
		Ring:     ring,
		DB:       kadop.New(ring),
		peers:    make(map[string]*Peer),
		channels: make(map[stream.Ref]*stream.Channel),
		stale:    make(map[stream.Ref]bool),
		sidSeq:   make(map[string]int),
	}
	if cfg.Agg.SplitRatio > 0 {
		s.startRechunkController()
	}
	if err := s.instrumentTelemetry(); err != nil {
		return nil, fmt.Errorf("peer: telemetry endpoint: %w", err)
	}
	return s, nil
}

// MustSystem is NewSystem that panics on a bad configuration (setup
// code and tests).
func MustSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// AddPeer registers a peer: it gets a network node, a SOAP endpoint and a
// position in the DHT ring backing the stream-definition database.
// Adding an existing name returns the existing peer.
func (s *System) AddPeer(name string) (*Peer, error) {
	s.mu.Lock()
	if p, ok := s.peers[name]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()
	s.Net.AddNode(name)
	if err := s.Ring.Join(name); err != nil {
		return nil, fmt.Errorf("peer: %s cannot join the DHT: %w", name, err)
	}
	p := &Peer{
		sys:      s,
		name:     name,
		endpoint: s.Fabric.Endpoint(name),
		tasks:    make(map[string]*Task),
		feeds:    make(map[string]func() (*rss.Feed, error)),
		pages:    make(map[string]func() (*xmltree.Node, error)),
		incoming: make(map[string]*stream.Queue),
	}
	s.mu.Lock()
	s.peers[name] = p
	s.mu.Unlock()
	return p, nil
}

// JoinPeer admits a peer at runtime through the membership protocol, no
// pre-run registration anywhere: the peer's network node comes up, it
// takes its positions on the stream-definition DHT ring (the keys it
// now owns hand off to it), and every running failure detector learns
// of it — gossip detectors through the join protocol (seed contact,
// bootstrap, piggybacked dissemination with incarnation numbers), home
// heartbeat detectors through direct registration at the home. The
// peer is immediately eligible for operator placement and failover
// targeting. Re-joining a dead peer revives it: its links come up, it
// re-enters the ring, and its gossip incarnation is bumped above every
// death rumor so the stale declarations cannot kill it again.
func (s *System) JoinPeer(name, seed string) (*Peer, error) {
	if name == seed {
		return nil, fmt.Errorf("peer: %s cannot seed its own join", name)
	}
	if s.Peer(seed) == nil {
		return nil, fmt.Errorf("peer: join seed %q is not a member", seed)
	}
	if !s.Net.Alive(seed) {
		return nil, fmt.Errorf("peer: join seed %q is down", seed)
	}
	s.mu.Lock()
	dets := append([]FailureDetector(nil), s.detectors...)
	s.mu.Unlock()
	// Validate the join against every gossip detector BEFORE touching
	// any state: a rejected join (unknown seed view, joiner partitioned
	// from the seed) must not leave a half-admitted peer owning DHT
	// keys that no detector watches.
	for _, det := range dets {
		if g, ok := det.(*GossipDetector); ok {
			if err := g.joinPrecheck(name, seed); err != nil {
				return nil, err
			}
		}
	}
	rejoining := s.Peer(name) != nil
	p, err := s.AddPeer(name)
	if err != nil {
		return nil, err
	}
	if rejoining {
		s.Net.Recover(name) //nolint:errcheck // known node
		s.Ring.Join(name)   //nolint:errcheck // already-joined is fine
	}
	gossiped := false
	for _, det := range dets {
		if g, ok := det.(*GossipDetector); ok {
			if err := g.Join(name, seed); err != nil {
				// Unreachable given the precheck above (no state changed
				// between the two under this harness's single-threaded
				// membership control); surface it rather than hide it.
				return p, err
			}
			gossiped = true
		} else {
			det.Watch(name)
		}
	}
	if !gossiped {
		// Home-mode registration: the join contact is one control
		// message on the joiner→seed link. (Gossip mode accounted the
		// contact and bootstrap transfer inside Join — don't double-
		// charge the same link.)
		s.link.CountTransfer(name, seed, ctrlMsgBytes)
	}
	if s.aggDegree() > 1 {
		// The ring just changed: aggregation-tree interiors whose
		// DHT-derived host moved re-parent onto the new owner (children
		// and consumers re-bind; with replay on the move is exactly-once
		// through the checkpoint+cursor machinery).
		s.RebalanceAggTrees(s.Net.Clock().Now())
	}
	return p, nil
}

// MustAddPeer is AddPeer that panics on error (setup code and tests).
func (s *System) MustAddPeer(name string) *Peer {
	p, err := s.AddPeer(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Peer returns a registered peer, or nil.
func (s *System) Peer(name string) *Peer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peers[name]
}

// Peers returns all peer names.
func (s *System) Peers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.peers))
	for n := range s.peers {
		names = append(names, n)
	}
	return names
}

// Config returns a snapshot of the system configuration (runtime tuning
// may have diverged from the value NewSystem was given).
func (s *System) Config() Config {
	s.cfgMu.RLock()
	defer s.cfgMu.RUnlock()
	return s.cfg
}

// Targeted config getters for the hot read paths; the full-snapshot
// Config() is for diagnostics and derived setup, these are for the
// runtime checks that race with Tuning setters.

func (s *System) aggDegree() int {
	s.cfgMu.RLock()
	defer s.cfgMu.RUnlock()
	return s.cfg.Agg.Degree
}

func (s *System) aggSplit() AggConfig {
	s.cfgMu.RLock()
	defer s.cfgMu.RUnlock()
	return s.cfg.Agg
}

func (s *System) replayBuffer() int {
	s.cfgMu.RLock()
	defer s.cfgMu.RUnlock()
	return s.cfg.Replay.Buffer
}

func (s *System) checkpointInterval() time.Duration {
	s.cfgMu.RLock()
	defer s.cfgMu.RUnlock()
	return s.cfg.Replay.CheckpointInterval
}

// OnStep registers a hook run at the end of every Step, after detector
// ticks, anti-entropy sweeps and the checkpoint cadence — where per-Step
// adaptive controllers observe and actuate.
func (s *System) OnStep(f func(now time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onStep = append(s.onStep, f)
}

// SetAggHosts restricts DHT-routed aggregation-tree interior placement
// to peers the filter accepts (nil lifts the restriction). Workloads use
// it to keep merge operators on a worker pool instead of landing them on
// monitored sources or the manager.
func (s *System) SetAggHosts(filter func(name string) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aggHosts = filter
}

// newAggPlacer returns a stateful bounded placer for aggregation-tree
// interiors: each key offered lands on the first live, eligible ring
// successor of its hash that is below the running per-host cap
// ⌈placed/eligible⌉ — consistent hashing with bounded loads, the PR 4
// checkpoint-spreading guarantee applied to operator placement, so no
// worker stacks more than its fair share of a tree's merge fan-in.
// Offering the keys in sorted order makes the placement a deterministic
// function of ring membership: repair and membership rebalancing
// re-derive identical hosts by replaying the walk (AggPlacements).
// Empty when no eligible member is alive.
func (s *System) newAggPlacer() func(key string) string {
	used := map[string]int{}
	placed := 0
	return func(key string) string {
		s.mu.Lock()
		filter := s.aggHosts
		quarantined := make(map[string]bool, len(s.quarantined))
		for name := range s.quarantined {
			quarantined[name] = true
		}
		s.mu.Unlock()
		eligible := func(name string) bool {
			return s.Net.Alive(name) && !quarantined[name] && (filter == nil || filter(name))
		}
		pool := 0
		for _, m := range s.Ring.Nodes() {
			if eligible(m) {
				pool++
			}
		}
		if pool == 0 {
			return ""
		}
		placed++
		cap := (placed + pool - 1) / pool
		first := ""
		for _, cand := range s.Ring.Successors(key, s.Ring.Size()) {
			if !eligible(cand) {
				continue
			}
			if first == "" {
				first = cand
			}
			if used[cand] < cap {
				used[cand]++
				return cand
			}
		}
		if first != "" {
			used[first]++
		}
		return first
	}
}

// AggPlacements re-derives the bounded DHT placement of every interior
// routing key in a plan against the *current* ring: keys in sorted
// (= construction) order through a fresh bounded placer. This is the
// placement invariant — where each interior belongs right now — that
// deployment establishes, failover restores and membership changes
// rebalance toward.
func (s *System) AggPlacements(plan *algebra.Node) map[string]string {
	var keys []string
	plan.Walk(func(n *algebra.Node) {
		if n.AggKey != "" {
			keys = append(keys, n.AggKey)
		}
	})
	sort.Strings(keys)
	place := s.newAggPlacer()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = place(k)
	}
	return out
}

// nextStreamID allocates a fresh stream identifier on a peer.
func (s *System) nextStreamID(peer string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sidSeq[peer]++
	return fmt.Sprintf("s%d", s.sidSeq[peer])
}

func (s *System) nextTaskID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.taskSeq++
	return fmt.Sprintf("task-%d", s.taskSeq)
}

// allocChannel creates and registers a task-owned channel at host,
// charging the host's load gauge — the shared bookkeeping of every
// deployment and re-deployment path.
func (s *System) allocChannel(t *Task, host, streamID string) *stream.Channel {
	ch := stream.NewChannel(host, streamID)
	s.registerChannel(ch)
	t.channels = append(t.channels, ch)
	s.Net.AddLoad(host, 1)
	t.loads = append(t.loads, host)
	return ch
}

// registerChannel enrolls a channel in the system-wide registry so
// ChannelIn nodes and external subscribers can find it, enabling the
// configured replay retention before the first publication.
func (s *System) registerChannel(ch *stream.Channel) {
	if buf := s.replayBuffer(); buf > 0 {
		ch.EnableReplay(buf)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.channels[ch.Ref()] = ch
}

// replayOn reports whether the lossless-failover layer is enabled.
func (s *System) replayOn() bool { return s.replayBuffer() > 0 }

// ReplayedItems returns the total number of items retransmitted from
// channel replay buffers (re-bind resumes and anti-entropy repairs).
func (s *System) ReplayedItems() uint64 { return s.replayed.Load() }

// Channel resolves a registered channel by reference.
func (s *System) Channel(ref stream.Ref) (*stream.Channel, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, ok := s.channels[ref]
	return ch, ok
}

// SubscribeChannel subscribes consumerPeer to a registered channel,
// routing deliveries over the simulated network (bytes counted, latency
// applied). This is the paper's "subscribing to a channel".
func (s *System) SubscribeChannel(ref stream.Ref, consumerPeer string) (*stream.Subscription, error) {
	ch, ok := s.Channel(ref)
	if !ok {
		return nil, fmt.Errorf("peer: unknown channel %s", ref)
	}
	var deliver func(stream.Item, *stream.Queue)
	if ref.PeerID != consumerPeer {
		deliver = s.link.DeliverHook(ref.PeerID, consumerPeer)
	}
	return ch.Subscribe(consumerPeer, deliver), nil
}

// AnnounceReplica makes consumerPeer a re-publisher of a channel: it
// subscribes to the original stream, forwards every item into a new
// channel of its own, and records the replica in the stream-definition
// database — Section 5's "p′ may choose to publish this information to
// let it be known that he can also provide (p, s)". Later subscriptions
// whose optimizer prefers a close, unloaded provider will consume from
// the replica instead of the original.
func (s *System) AnnounceReplica(orig stream.Ref, consumerPeer string) (stream.Ref, error) {
	ch, ok := s.Channel(orig)
	if !ok {
		return stream.Ref{}, fmt.Errorf("peer: unknown channel %s", orig)
	}
	rep := stream.NewChannel(consumerPeer, s.nextStreamID(consumerPeer))
	if err := s.DB.PublishReplica(orig, rep.Ref()); err != nil {
		return stream.Ref{}, err
	}
	s.registerChannel(rep)
	s.Net.AddLoad(consumerPeer, 1)
	// Forward synchronously from inside the original's delivery fan-out:
	// an item is re-published by the replica the moment the original
	// publishes it, so producers tearing down (eos) cannot race ahead of
	// buffered data. Transport to the replica host still pays the
	// simulated link (accounting, latency, faults); items lost on a
	// faulty link simply never reach the replica's subscribers.
	f := &replicaForwarder{orig: orig, rep: rep}
	if s.replayOn() {
		// The replica preserves the original's sequence numbering, so a
		// consumer cursor positioned on the original stream stays valid
		// when failover re-binds it to the replica (and vice versa). The
		// forwarder's own cursor keeps the mirror gap-free: items lost on
		// the faulty link are refilled by the anti-entropy sweep before
		// anything later is mirrored.
		f.cur = stream.NewCursor(0, func(it stream.Item) {
			if it.EOS() {
				rep.Close()
				return
			}
			rep.PublishPreserved(it)
		})
		f.sub = ch.Subscribe(consumerPeer, func(it stream.Item, _ *stream.Queue) {
			if it.EOS() {
				f.cur.Terminate(it)
				return
			}
			if out, ok := s.link.Deliver(orig.PeerID, consumerPeer, it); ok {
				f.cur.Offer(out)
			}
		})
		f.cur.AdvanceTo(f.sub.StartSeq)
	} else {
		f.sub = ch.Subscribe(consumerPeer, func(it stream.Item, _ *stream.Queue) {
			if it.EOS() {
				rep.Close()
				return
			}
			if out, ok := s.link.Deliver(orig.PeerID, consumerPeer, it); ok {
				rep.Publish(out)
			}
		})
	}
	s.mu.Lock()
	s.forwarders = append(s.forwarders, f)
	s.mu.Unlock()
	return rep.Ref(), nil
}

// RefreshStreamStats records current item and volume counters for every
// registered channel into the stream-definition database (the Stats part
// of the paper's descriptors).
func (s *System) RefreshStreamStats() error {
	s.mu.Lock()
	chans := make([]*stream.Channel, 0, len(s.channels))
	for _, ch := range s.channels {
		chans = append(chans, ch)
	}
	s.mu.Unlock()
	for _, ch := range chans {
		items := ch.Published()
		stats := map[string]string{
			"items":  fmt.Sprintf("%d", items),
			"volume": fmt.Sprintf("%d", ch.Volume()),
		}
		if items > 0 {
			stats["avgItemSize"] = fmt.Sprintf("%d", ch.Volume()/items)
		}
		if err := s.DB.UpdateStats(ch.Ref(), stats); err != nil {
			return err
		}
	}
	return nil
}

// Step advances the virtual clock by d and ticks every registered
// failure detector. Churn harnesses drive the system with repeated small
// Steps; detection latency is quantized to the step size, so use steps
// no coarser than the heartbeat interval when measuring it. With the
// replay layer on, each Step also runs the anti-entropy sweep (repairing
// link-fault losses from the upstream replay buffers) and, every
// CheckpointInterval, the operator checkpoint sweep.
func (s *System) Step(d time.Duration) {
	if s.tele != nil {
		defer s.observeStep(time.Now())
	}
	s.Net.Clock().Advance(d)
	s.mu.Lock()
	dets := append([]FailureDetector(nil), s.detectors...)
	s.mu.Unlock()
	for _, det := range dets {
		det.Tick()
	}
	if s.replayOn() {
		s.syncReplicas()
		s.syncBindings()
	}
	if interval := s.checkpointInterval(); interval > 0 {
		now := s.Net.Clock().Now()
		s.mu.Lock()
		due := now-s.lastCkpt >= interval
		if due {
			s.lastCkpt = now
		}
		s.mu.Unlock()
		if due {
			s.CheckpointNow()
		}
	}
	now := s.Net.Clock().Now()
	s.mu.Lock()
	hooks := append([]func(time.Duration){}, s.onStep...)
	s.mu.Unlock()
	for _, f := range hooks {
		f(now)
	}
}

// Poll drives every polling alerter (RSS, Web page) across all running
// tasks once, returning the number of alerts produced. Simulation
// harnesses call it between workload steps.
func (s *System) Poll() (int, error) {
	s.mu.Lock()
	peers := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	total := 0
	var firstErr error
	for _, p := range peers {
		n, err := p.pollTasks()
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}
