package peer

import (
	"fmt"
	"sync"

	"p2pm/internal/alerters"
	"p2pm/internal/algebra"
	"p2pm/internal/p2pml"
	"p2pm/internal/reuse"
	"p2pm/internal/rss"
	"p2pm/internal/soap"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// Peer is one P2PM peer. Per Figure 2 it can host alerters, stream
// processors and publishers; the minimum it runs is a Subscription
// Manager, which this type implements: accepting P2PML subscriptions,
// compiling/optimizing/reusing, deploying and tracking them in its
// subscription database.
type Peer struct {
	sys      *System
	name     string
	endpoint *soap.Endpoint

	mu       sync.Mutex
	tasks    map[string]*Task // the subscription database
	repo     *alerters.AXMLRepo
	repoCh   *stream.Channel
	feeds    map[string]func() (*rss.Feed, error)
	pages    map[string]func() (*xmltree.Node, error)
	incoming map[string]*stream.Queue
}

// Name returns the peer's identity.
func (p *Peer) Name() string { return p.name }

// Endpoint exposes the peer's SOAP stack so workloads can register
// services and issue calls.
func (p *Peer) Endpoint() *soap.Endpoint { return p.endpoint }

// RegisterFeed publishes an RSS feed at this peer under the given URL;
// rssCOM alerters monitoring this peer poll it.
func (p *Peer) RegisterFeed(url string, fetch func() (*rss.Feed, error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.feeds[url] = fetch
}

// RegisterPage publishes a Web page at this peer; pageCOM alerters
// monitoring this peer poll it.
func (p *Peer) RegisterPage(url string, fetch func() (*xmltree.Node, error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pages[url] = fetch
}

// feed resolves a registered feed; an empty URL selects the peer's only
// feed. The resolved URL is returned so alerts carry it even when the
// subscription left it implicit.
func (p *Peer) feed(url string) (string, func() (*rss.Feed, error), error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if url == "" && len(p.feeds) == 1 {
		for u, f := range p.feeds {
			return u, f, nil
		}
	}
	if f, ok := p.feeds[url]; ok {
		return url, f, nil
	}
	return "", nil, fmt.Errorf("peer: no feed %q registered at %s", url, p.name)
}

// page resolves a registered page; an empty URL selects the only page.
func (p *Peer) page(url string) (string, func() (*xmltree.Node, error), error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if url == "" && len(p.pages) == 1 {
		for u, f := range p.pages {
			return u, f, nil
		}
	}
	if f, ok := p.pages[url]; ok {
		return url, f, nil
	}
	return "", nil, fmt.Errorf("peer: no page %q registered at %s", url, p.name)
}

// Repo returns the peer's ActiveXML repository, creating it (and its
// permanent event channel) on first use. All axmlCOM alerters monitoring
// this peer consume the same event channel.
func (p *Peer) Repo() *alerters.AXMLRepo {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.repo == nil {
		ch := stream.NewChannel(p.name, "axml-events")
		p.sys.registerChannel(ch)
		p.repoCh = ch
		p.repo = alerters.NewAXMLRepo("axml@"+p.name, true, p.sys.Net.Clock().Now, func(it stream.Item) {
			if it.EOS() {
				ch.Close()
				return
			}
			ch.Publish(it)
		})
	}
	return p.repo
}

// Incoming returns the queue bound to a #channelID expectation at this
// peer (the ♯X@b.com destinations of Section 3.4), creating it lazily.
func (p *Peer) Incoming(id string) *stream.Queue {
	p.mu.Lock()
	defer p.mu.Unlock()
	q, ok := p.incoming[id]
	if !ok {
		q = stream.NewQueue()
		p.incoming[id] = q
	}
	return q
}

// Subscribe accepts a P2PML subscription: this peer becomes its
// Subscription Manager. The text is parsed, compiled into an algebraic
// plan, optimized, covered with existing streams when reuse is enabled,
// deployed across the involved peers, and recorded in the subscription
// database.
func (p *Peer) Subscribe(src string) (*Task, error) {
	sub, err := p2pml.Parse(src)
	if err != nil {
		return nil, err
	}
	return p.SubscribeParsed(sub)
}

// SubscribeParsed is Subscribe for an already-parsed subscription.
func (p *Peer) SubscribeParsed(sub *p2pml.Subscription) (*Task, error) {
	plan, err := algebra.Compile(sub)
	if err != nil {
		return nil, err
	}
	cfg := p.sys.Config()
	opts := algebra.DefaultOptions(p.name)
	opts.Pushdown = cfg.Pushdown
	plan = algebra.Optimize(plan, opts)

	var reuseRes *reuse.Result
	if cfg.Reuse {
		ro := reuse.Options{
			From:     p.name,
			Consumer: p.name,
			Choose:   aliveOnly(p.sys, reuse.PreferClose(p.sys.Net.Distance, p.sys.Net.Load)),
		}
		reuseRes, err = ro.Apply(plan, p.sys.DB)
		if err != nil {
			return nil, err
		}
		plan = reuseRes.Plan
		// Re-run placement: operators that now sit above reused channels
		// should follow their new inputs (e.g. a residual filter runs at
		// the chosen provider, not where the original plan put it).
		plan = algebra.Optimize(plan, algebra.Options{SubscriberPeer: p.name, Pushdown: false})
	}

	task := &Task{
		ID:      p.sys.nextTaskID(),
		Manager: p.name,
		Sub:     sub,
		Plan:    plan,
		Reuse:   reuseRes,
	}
	if err := p.deploy(task); err != nil {
		task.Stop()
		return nil, err
	}
	p.mu.Lock()
	p.tasks[task.ID] = task
	p.mu.Unlock()
	return task, nil
}

// DeployPlan deploys a programmatically built monitoring plan. The plan
// must be rooted at a Publish node and fully placed (no @any operators) —
// run algebra.Optimize first for placement. This is the escape hatch for
// operators P2PML has no syntax for, such as windowed Group aggregation.
func (p *Peer) DeployPlan(plan *algebra.Node) (*Task, error) {
	if plan == nil || plan.Op != algebra.OpPublish {
		return nil, fmt.Errorf("peer: plan must be rooted at a Publish node")
	}
	var anyErr error
	plan.Walk(func(n *algebra.Node) {
		if n.Peer == algebra.AnyPeer {
			anyErr = fmt.Errorf("peer: operator %s is unplaced; run algebra.Optimize", n.Label())
		}
	})
	if anyErr != nil {
		return nil, anyErr
	}
	task := &Task{
		ID:      p.sys.nextTaskID(),
		Manager: p.name,
		Plan:    plan.Clone(),
	}
	if err := p.deploy(task); err != nil {
		task.Stop()
		return nil, err
	}
	p.mu.Lock()
	p.tasks[task.ID] = task
	p.mu.Unlock()
	return task, nil
}

// DeployPlanShared is DeployPlan preceded by the reuse pass: the plan is
// covered with existing streams (exact matches, filter subsumption,
// aggregate-tree grafting) before deployment, then re-placed so fresh
// operators follow their reused inputs. It is the sharing variant of the
// escape hatch: programmatically built windowed-Group plans deployed
// through it share aggregation trees across subscriptions. The input
// plan is not modified.
func (p *Peer) DeployPlanShared(plan *algebra.Node) (*Task, error) {
	if plan == nil || plan.Op != algebra.OpPublish {
		return nil, fmt.Errorf("peer: plan must be rooted at a Publish node")
	}
	ro := reuse.Options{
		From:     p.name,
		Consumer: p.name,
		Choose:   aliveOnly(p.sys, reuse.PreferClose(p.sys.Net.Distance, p.sys.Net.Load)),
	}
	res, err := ro.Apply(plan, p.sys.DB)
	if err != nil {
		return nil, err
	}
	shared := algebra.Optimize(res.Plan, algebra.Options{SubscriberPeer: p.name, Pushdown: false})
	task := &Task{
		ID:      p.sys.nextTaskID(),
		Manager: p.name,
		Plan:    shared,
		Reuse:   res,
	}
	if err := p.deploy(task); err != nil {
		task.Stop()
		return nil, err
	}
	p.mu.Lock()
	p.tasks[task.ID] = task
	p.mu.Unlock()
	return task, nil
}

// Tasks lists the subscription database contents.
func (p *Peer) Tasks() []*Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Task, 0, len(p.tasks))
	for _, t := range p.tasks {
		out = append(out, t)
	}
	return out
}

// pollTasks drives all polling alerters of this peer's tasks once.
func (p *Peer) pollTasks() (int, error) {
	p.mu.Lock()
	tasks := make([]*Task, 0, len(p.tasks))
	for _, t := range p.tasks {
		tasks = append(tasks, t)
	}
	p.mu.Unlock()
	total := 0
	var firstErr error
	for _, t := range tasks {
		n, err := t.Poll()
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// Components reports which module kinds this peer currently hosts —
// the Figure 2 architecture introspection.
func (p *Peer) Components() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := []string{"SubscriptionManager"}
	seen := map[string]bool{}
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, t := range p.tasks {
		t.Plan.Walk(func(n *algebra.Node) {
			if n.Peer != p.name {
				return
			}
			switch n.Op {
			case algebra.OpAlerter, algebra.OpDynAlerter:
				add("Alerter:" + n.Alerter.Func)
			case algebra.OpPublish:
				add("Publisher")
			case algebra.OpChannelIn:
			default:
				add("Processor:" + n.Op.String())
			}
		})
	}
	if p.repo != nil {
		add("AXMLRepository")
	}
	return out
}
