package peer

import (
	"strings"
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/xmltree"
)

// TestSubsumptionReuseLive: a broad subscription runs; a narrower one
// (superset of conditions) is deployed as a residual filter over the
// broad stream and still produces exactly the right results.
func TestSubsumptionReuseLive(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	m := sys.MustAddPeer("m.com")
	m.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	m.Endpoint().Register("Other", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	sys.MustAddPeer("x.com")
	sys.MustAddPeer("y.com")

	p1 := sys.MustAddPeer("p1")
	broad, err := p1.Subscribe(`for $e in inCOM(<p>m.com</p>)
where $e.callMethod = "Q"
return $e by publish as channel "allQ"`)
	if err != nil {
		t.Fatal(err)
	}
	p2 := sys.MustAddPeer("p2")
	narrow, err := p2.Subscribe(`for $e in inCOM(<p>m.com</p>)
where $e.callMethod = "Q" and $e.caller = "http://x.com"
return <fromX id="{$e.callId}"/> by publish as channel "xQ"`)
	if err != nil {
		t.Fatal(err)
	}
	// The narrow task must ride on the broad one: no new alerter, a
	// residual σ over a channel.
	hasChannelIn := false
	narrow.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn {
			hasChannelIn = true
		}
		if n.Op == algebra.OpAlerter {
			t.Errorf("narrow task deployed its own alerter:\n%s", narrow.Plan.Tree())
		}
	})
	if !hasChannelIn {
		t.Fatalf("no reuse in narrow plan:\n%s", narrow.Plan.Tree())
	}

	// Traffic: 2 Q calls from x.com, 1 Q from y.com, 1 Other from x.com.
	x := sys.Peer("x.com").Endpoint()
	y := sys.Peer("y.com").Endpoint()
	x.Invoke("m.com", "Q", nil)
	x.Invoke("m.com", "Q", nil)
	y.Invoke("m.com", "Q", nil)
	x.Invoke("m.com", "Other", nil)

	broad.Stop()
	narrow.Stop()
	if got := len(broad.Results().Drain()); got != 3 {
		t.Errorf("broad results = %d, want 3", got)
	}
	nres := narrow.Results().Drain()
	if len(nres) != 2 {
		t.Fatalf("narrow results = %d, want 2", len(nres))
	}
	for _, it := range nres {
		if it.Tree.Label != "fromX" {
			t.Errorf("item = %s", it.Tree)
		}
	}
}

// TestJoinWindowOptionBoundsState: the Section 7 GC extension is
// reachable through system options and does not lose in-window matches.
func TestJoinWindowOptionBoundsState(t *testing.T) {
	opts := DefaultConfig()
	opts.JoinWindow = 2 * time.Minute
	sys, p := meteoWorld(t, opts, func(int) bool { return true }) // all slow
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Peer("a.com").Endpoint()
	const rounds = 6
	for i := 0; i < rounds; i++ {
		if _, err := a.Invoke("meteo.com", "GetTemperature", nil); err != nil {
			t.Fatal(err)
		}
		// Advance well past the window: histories are collected between
		// rounds, but each out/in pair arrives together and still joins.
		sys.Net.Clock().Advance(10 * time.Minute)
	}
	task.Stop()
	if got := len(task.Results().Drain()); got != rounds {
		t.Errorf("incidents = %d, want %d", got, rounds)
	}
}

// TestDistinctWindowOption: duplicate suppression forgets old items.
func TestDistinctWindowOption(t *testing.T) {
	opts := DefaultConfig()
	opts.DistinctWindow = time.Minute
	sys := MustSystem(opts)
	mon := sys.MustAddPeer("mon")
	m := sys.MustAddPeer("m.com")
	m.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	c := sys.MustAddPeer("c.com")
	task, err := mon.Subscribe(`for $e in inCOM(<p>m.com</p>)
return distinct <caller>{$e.caller}</caller> by publish as channel "callers"`)
	if err != nil {
		t.Fatal(err)
	}
	// Two bursts of identical callers separated by more than the window.
	c.Endpoint().Invoke("m.com", "Q", nil)
	c.Endpoint().Invoke("m.com", "Q", nil)
	sys.Net.Clock().Advance(10 * time.Minute)
	c.Endpoint().Invoke("m.com", "Q", nil)
	task.Stop()
	if got := len(task.Results().Drain()); got != 2 {
		t.Errorf("distinct results = %d, want 2 (window expiry re-admits)", got)
	}
}

// TestNestedSubscriptionLive deploys a nested subscription end to end.
func TestNestedSubscriptionLive(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mon := sys.MustAddPeer("mon")
	m := sys.MustAddPeer("m.com")
	m.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	c := sys.MustAddPeer("c.com")
	task, err := mon.Subscribe(`for $x in ( for $y in inCOM(<p>m.com</p>)
                   where $y.callMethod = "Q"
                   return <q caller="{$y.caller}"/> )
where $x.caller = "http://c.com"
return $x by publish as channel "nested"`)
	if err != nil {
		t.Fatal(err)
	}
	c.Endpoint().Invoke("m.com", "Q", nil)
	task.Stop()
	got := task.Results().Drain()
	if len(got) != 1 || got[0].Tree.Label != "q" {
		t.Fatalf("results = %v", got)
	}
}

// TestFaultMonitoring: handler errors surface as fault alerts that
// subscriptions can select on — error management, the paper's first
// motivating context.
func TestFaultMonitoring(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mon := sys.MustAddPeer("mon")
	m := sys.MustAddPeer("m.com")
	calls := 0
	m.Endpoint().Register("Flaky", func(*xmltree.Node) (*xmltree.Node, error) {
		calls++
		if calls%2 == 0 {
			return nil, errBackend
		}
		return xmltree.Elem("ok"), nil
	}, nil)
	c := sys.MustAddPeer("c.com")
	task, err := mon.Subscribe(`for $e in inCOM(<p>m.com</p>)
where $e.fault != ""
return <failure method="{$e.callMethod}" why="{$e.fault}"/>
by publish as channel "failures" and email "oncall@m.com"`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.Endpoint().Invoke("m.com", "Flaky", nil)
	}
	task.Stop()
	got := task.Results().Drain()
	if len(got) != 3 {
		t.Fatalf("failures = %d, want 3", len(got))
	}
	if got[0].Tree.AttrOr("why", "") != "backend down" {
		t.Errorf("failure = %s", got[0].Tree)
	}
	if !strings.Contains(task.Mailbox.String(), "oncall@m.com") {
		t.Error("on-call mail missing")
	}
}

var errBackend = &backendErr{}

type backendErr struct{}

func (*backendErr) Error() string { return "backend down" }
