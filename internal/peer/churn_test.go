package peer

import (
	"math/rand"
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// relayPlan builds the canonical churn topology by hand: an inCOM
// alerter at src feeding a relay operator (∪ with one input — a pure
// forwarder) hosted at relay, publishing at mgr. The relay is the
// operator the churn tests kill.
func relayPlan(src, relay, mgr, channelID string) *algebra.Node {
	al := algebra.NewAlerter("inCOM", "ws-in", src, "e", nil)
	un := &algebra.Node{Op: algebra.OpUnion, Peer: relay, Inputs: []*algebra.Node{al}, Schema: []string{"e"}}
	return &algebra.Node{
		Op: algebra.OpPublish, Peer: mgr, Inputs: []*algebra.Node{un},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: channelID},
	}
}

// registerService registers a trivial Q service at the peer.
func registerService(p *Peer) {
	p.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
}

// waitResults blocks until the task's result queue holds at least want
// items. Churn tests quiesce like this before killing a peer: items
// still in flight inside an operator at crash time are legitimately lost
// (fail-stop), so completeness is only promised for settled results.
func waitResults(t *testing.T, task *Task, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for task.Results().Len() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := task.Results().Len(); got < want {
		t.Fatalf("only %d results settled, want %d", got, want)
	}
}

func relayHost(task *Task) string {
	host := ""
	task.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpUnion {
			host = n.Peer
		}
	})
	return host
}

// TestDetectorSuspicionThresholds drives outages of varying length
// against varying suspicion thresholds.
func TestDetectorSuspicionThresholds(t *testing.T) {
	cases := []struct {
		name      string
		suspicion time.Duration
		downFor   time.Duration
		wantDead  bool
	}{
		{"outage shorter than suspicion", 5 * time.Second, 2 * time.Second, false},
		{"outage beyond suspicion", 3 * time.Second, 10 * time.Second, true},
		{"tight threshold catches short outage", 1500 * time.Millisecond, 3 * time.Second, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys := MustSystem(DefaultConfig())
			sys.MustAddPeer("w")
			sys.MustAddPeer("mon")
			det := sys.StartDetector("mon", DetectorOptions{Interval: time.Second, Suspicion: c.suspicion})
			died, recovered := 0, 0
			det.OnDeath(func(string, time.Duration) { died++ })
			det.OnRecover(func(string, time.Duration) { recovered++ })

			step := 500 * time.Millisecond
			for i := 0; i < 10; i++ { // healthy warm-up
				sys.Step(step)
			}
			if died != 0 {
				t.Fatal("false positive on a healthy peer")
			}
			sys.Net.Crash("w")
			for el := time.Duration(0); el < c.downFor; el += step {
				sys.Step(step)
			}
			sys.Net.Recover("w")
			for i := 0; i < 30; i++ {
				sys.Step(step)
			}
			if (died > 0) != c.wantDead {
				t.Errorf("death declared = %v, want %v", died > 0, c.wantDead)
			}
			if died != recovered {
				t.Errorf("death/recovery not symmetric after the peer returned: died=%d recovered=%d", died, recovered)
			}
			if len(det.Suspects()) != 0 {
				t.Errorf("suspects after recovery = %v", det.Suspects())
			}
		})
	}
}

// TestDetectorSlowButAlivePeer checks the false-positive tradeoff: a
// slow link only fools a detector whose suspicion threshold is below the
// link's delay.
func TestDetectorSlowButAlivePeer(t *testing.T) {
	cases := []struct {
		name              string
		suspicion         time.Duration
		wantFalsePositive bool
	}{
		{"generous threshold tolerates the slow link", 4 * time.Second, false},
		{"threshold below link delay false-positives", 2 * time.Second, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys := MustSystem(DefaultConfig())
			sys.MustAddPeer("w")
			sys.MustAddPeer("mon")
			sys.Net.SetExtraDelay("w", "mon", 2500*time.Millisecond)
			det := sys.StartDetector("mon", DetectorOptions{Interval: time.Second, Suspicion: c.suspicion})
			died, recovered := 0, 0
			det.OnDeath(func(string, time.Duration) { died++ })
			det.OnRecover(func(string, time.Duration) { recovered++ })
			for i := 0; i < 40; i++ {
				sys.Step(500 * time.Millisecond)
			}
			if (died > 0) != c.wantFalsePositive {
				t.Errorf("false positive = %v, want %v (died=%d)", died > 0, c.wantFalsePositive, died)
			}
			if c.wantFalsePositive && recovered == 0 {
				t.Error("late heartbeats should eventually clear the false positive")
			}
		})
	}
}

// TestDetectorPartition: a partition separating a peer from the detector
// is indistinguishable from a crash until it heals.
func TestDetectorPartition(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	sys.MustAddPeer("w")
	sys.MustAddPeer("mon")
	det := sys.StartDetector("mon", DetectorOptions{Interval: time.Second, Suspicion: 3 * time.Second})
	for i := 0; i < 4; i++ {
		sys.Step(time.Second)
	}
	sys.Net.Partition([]string{"w"}, []string{"mon"})
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	if got := det.Suspects(); len(got) != 1 || got[0] != "w" {
		t.Fatalf("suspects during partition = %v, want [w]", got)
	}
	sys.Net.Heal()
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	if got := det.Suspects(); len(got) != 0 {
		t.Errorf("suspects after heal = %v", got)
	}
}

// TestFailoverEndToEnd is the acceptance scenario: killing the peer
// hosting a task's relay operator mid-subscription must not lose the
// subscription — the supervisor re-deploys the operator onto a live peer
// and the traffic counters prove the failover path carried the data.
func TestFailoverEndToEnd(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src.com")
	registerService(src)
	client := sys.MustAddPeer("c.com")
	sys.MustAddPeer("w1")
	sys.MustAddPeer("w2")
	sys.MustAddPeer("mon")
	// Bias placement so the failover target is the idle worker w2, not a
	// substrate peer.
	for _, busy := range []string{"src.com", "c.com", "mon", "mgr"} {
		sys.Net.AddLoad(busy, 10)
	}

	task, err := mgr.DeployPlan(relayPlan("src.com", "w1", "mgr", "relayed"))
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.StartSupervisor("mon", DetectorOptions{Interval: time.Second, Suspicion: 3 * time.Second})

	for i := 0; i < 3; i++ {
		if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
			t.Fatal(err)
		}
		sys.Step(time.Second)
	}
	waitResults(t, task, 3)
	if sys.Net.Link("src.com", "w1").Messages == 0 {
		t.Fatal("pre-crash data did not flow through the relay")
	}

	sys.Net.Crash("w1")
	for i := 0; i < 20 && len(sup.Deaths()) == 0; i++ {
		sys.Step(time.Second)
	}
	if got := sup.Deaths(); len(got) != 1 || got[0] != "w1" {
		t.Fatalf("deaths = %v, want [w1]", got)
	}
	var ev FailoverEvent
	for _, e := range sup.Events() {
		if e.From == "w1" && e.Repaired() {
			ev = e
		}
	}
	if ev.To != "w2" {
		t.Fatalf("relay migrated to %q, want w2 (events: %+v)", ev.To, sup.Events())
	}
	if got := relayHost(task); got != "w2" {
		t.Errorf("plan relay host = %q, want w2", got)
	}

	sys.Net.ResetTraffic()
	for i := 0; i < 3; i++ {
		if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
			t.Fatal(err)
		}
		sys.Step(time.Second)
	}
	task.Stop()
	if got := len(task.Results().Drain()); got != 6 {
		t.Fatalf("results = %d, want all 6 (3 pre-crash + 3 post-failover)", got)
	}
	// The failover path carried the post-crash data; the dead peer saw
	// none of it.
	if sys.Net.Link("src.com", "w2").Messages == 0 {
		t.Error("no data on the src→w2 failover link")
	}
	if sys.Net.Link("w2", "mgr").Messages == 0 {
		t.Error("no data on the w2→mgr failover link")
	}
	if sys.Net.Link("src.com", "w1").Messages != 0 {
		t.Error("data still flowed toward the dead relay")
	}
	if len(task.Degraded()) != 0 {
		t.Errorf("task degraded: %v", task.Degraded())
	}
}

// TestFailoverPrefersAnnouncedReplica: when a live peer announced a
// replica of the dead operator's output stream, the operator re-deploys
// there and keeps publishing into the replica channel, so the replica's
// existing subscribers never miss a beat.
func TestFailoverPrefersAnnouncedReplica(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src.com")
	registerService(src)
	client := sys.MustAddPeer("c.com")
	sys.MustAddPeer("w1")
	sys.MustAddPeer("edge.com")
	sys.MustAddPeer("mon")

	task, err := mgr.DeployPlan(relayPlan("src.com", "w1", "mgr", "relayed"))
	if err != nil {
		t.Fatal(err)
	}
	var unionRef stream.Ref
	for n, ref := range task.StreamRefs() {
		if n.Op == algebra.OpUnion {
			unionRef = ref
		}
	}
	repRef, err := sys.AnnounceReplica(unionRef, "edge.com")
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.StartSupervisor("mon", DetectorOptions{Interval: time.Second, Suspicion: 3 * time.Second})

	for i := 0; i < 2; i++ {
		client.Endpoint().Invoke("src.com", "Q", nil)
		sys.Step(time.Second)
	}
	waitResults(t, task, 2)
	sys.Net.Crash("w1")
	for i := 0; i < 20 && len(sup.Deaths()) == 0; i++ {
		sys.Step(time.Second)
	}
	var ev FailoverEvent
	for _, e := range sup.Events() {
		if e.From == "w1" && e.Repaired() {
			ev = e
		}
	}
	if !ev.ViaReplica || ev.To != "edge.com" {
		t.Fatalf("failover event = %+v, want via replica at edge.com", ev)
	}
	for i := 0; i < 2; i++ {
		client.Endpoint().Invoke("src.com", "Q", nil)
		sys.Step(time.Second)
	}
	task.Stop()
	if got := len(task.Results().Drain()); got != 4 {
		t.Fatalf("results = %d, want 4", got)
	}
	// The replica channel carried both the forwarded pre-crash items and
	// the re-deployed operator's post-crash output.
	repCh, ok := sys.Channel(repRef)
	if !ok {
		t.Fatal("replica channel vanished")
	}
	if got := repCh.Published(); got != 4 {
		t.Errorf("replica channel published %d items, want 4", got)
	}
}

// TestFailoverChainAfterRecovery: a consumer bound through a replica
// survives two generations of failover — even when the stream's
// original host has recovered in between. The recovered host's channel
// lost its producer in the first migration, so the second repair must
// not re-bind consumers to it (it would be silent forever); the chained
// replica records lead to the live provider instead.
func TestFailoverChainAfterRecovery(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src.com")
	registerService(src)
	client := sys.MustAddPeer("c.com")
	sys.MustAddPeer("w1")
	sys.MustAddPeer("w2")
	sys.MustAddPeer("edge.com")
	far := sys.MustAddPeer("far.com")
	for _, busy := range []string{"src.com", "c.com", "mgr", "far.com"} {
		sys.Net.AddLoad(busy, 10)
	}

	task, err := mgr.DeployPlan(relayPlan("src.com", "w1", "mgr", "chained"))
	if err != nil {
		t.Fatal(err)
	}
	var unionRef stream.Ref
	for n, ref := range task.StreamRefs() {
		if n.Op == algebra.OpUnion {
			unionRef = ref
		}
	}
	repRef, err := sys.AnnounceReplica(unionRef, "edge.com")
	if err != nil {
		t.Fatal(err)
	}
	// A second task consumes the stream through the replica.
	consumer := &algebra.Node{
		Op: algebra.OpPublish, Peer: "far.com", Schema: []string{"e"},
		Publish: &algebra.PublishSpec{ChannelID: "mirror"},
		Inputs: []*algebra.Node{{
			Op: algebra.OpChannelIn, Peer: repRef.PeerID, Schema: []string{"e"},
			Channel: repRef, Origin: unionRef,
		}},
	}
	t2, err := far.DeployPlan(consumer)
	if err != nil {
		t.Fatal(err)
	}

	drive := func(n, settled int) {
		for i := 0; i < n; i++ {
			if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
				t.Fatal(err)
			}
		}
		waitResults(t, t2, settled)
	}
	drive(2, 2)

	// Generation 1: the original relay host dies; the operator migrates
	// into the announced replica at edge.com.
	sys.FailPeer("w1", 0)
	drive(2, 4)
	// The original host recovers — but its channel has no producer now.
	sys.RejoinPeer("w1")
	// Generation 2: the replica host dies too. The consumer must land on
	// the second-generation provider, not on the recovered-but-silent
	// original channel at w1.
	sys.FailPeer("edge.com", 0)
	var rebound stream.Ref
	t2.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn {
			rebound = n.Channel
		}
	})
	if rebound == unionRef || rebound == repRef {
		t.Fatalf("consumer re-bound to a dead or stale provider: %v", rebound)
	}
	drive(2, 6)

	task.Stop()
	t2.Stop()
	if got := len(t2.Results().Drain()); got != 6 {
		t.Fatalf("consumer results = %d, want 6 across two failover generations", got)
	}
	if got := len(task.Results().Drain()); got != 6 {
		t.Fatalf("task results = %d, want 6", got)
	}
}

// TestFailPeerSourceDeathDegrades: when the monitored peer itself dies,
// its alerter has no replacement — the task reports itself degraded.
func TestFailPeerSourceDeathDegrades(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src.com")
	registerService(src)
	sys.MustAddPeer("w1")
	task, err := mgr.DeployPlan(relayPlan("src.com", "w1", "mgr", "relayed"))
	if err != nil {
		t.Fatal(err)
	}
	events := sys.FailPeer("src.com", 0)
	if len(events) != 1 || events[0].Repaired() {
		t.Fatalf("events = %+v, want one unrepairable loss", events)
	}
	if len(task.Degraded()) != 1 {
		t.Errorf("degraded = %v, want the alerter", task.Degraded())
	}
	task.Stop()
}

// TestChurnSoak subjects one subscription to a random crash/recover
// schedule across a pool of relay workers: every event driven while the
// system is stable must eventually reach the subscriber, across many
// migrations. Run with -race.
func TestChurnSoak(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src.com")
	registerService(src)
	client := sys.MustAddPeer("c.com")
	workers := []string{"w0", "w1", "w2", "w3"}
	for _, w := range workers {
		sys.MustAddPeer(w)
	}
	sys.MustAddPeer("mon")
	for _, busy := range []string{"src.com", "c.com", "mon", "mgr"} {
		sys.Net.AddLoad(busy, 100)
	}

	task, err := mgr.DeployPlan(relayPlan("src.com", "w0", "mgr", "soak"))
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.StartSupervisor("mon", DetectorOptions{Interval: time.Second, Suspicion: 3 * time.Second})
	rng := rand.New(rand.NewSource(11))

	driven := 0
	drive := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
				t.Fatal(err)
			}
			driven++
			sys.Step(time.Second)
		}
	}
	stable := func() bool { return len(sup.Detector().Suspects()) == 0 }

	drive(3)
	const rounds = 6
	for r := 0; r < rounds; r++ {
		// Quiesce: results of the stable period must settle before the
		// next crash — items in flight at the relay die with it.
		waitResults(t, task, driven)
		victim := relayHost(task)
		if victim == "" {
			t.Fatal("no relay host")
		}
		sys.Net.Crash(victim)
		deaths := len(sup.Deaths())
		for i := 0; i < 30 && len(sup.Deaths()) == deaths; i++ {
			sys.Step(time.Second)
		}
		if len(sup.Deaths()) == deaths {
			t.Fatalf("round %d: %s never declared dead", r, victim)
		}
		newHost := relayHost(task)
		if newHost == victim || newHost == "" {
			t.Fatalf("round %d: relay still at %q after failover", r, newHost)
		}
		// Mean-time-to-recovery: the victim comes back a few (virtual)
		// seconds later and rejoins the pool.
		drive(1 + rng.Intn(3))
		sys.Net.Recover(victim)
		for i := 0; i < 30 && !stable(); i++ {
			sys.Step(time.Second)
		}
		if !stable() {
			t.Fatalf("round %d: %s never rejoined", r, victim)
		}
		drive(1 + rng.Intn(2))
	}
	task.Stop()
	got := len(task.Results().Drain())
	if got != driven {
		t.Fatalf("results = %d, want %d (every stable-period event must survive churn)", got, driven)
	}
	if got := len(sup.Deaths()); got != rounds {
		t.Errorf("deaths = %d, want %d", got, rounds)
	}
	if tot := sys.Net.Totals(); tot.Dropped == 0 {
		t.Error("a churn soak should drop some messages (dead peers' heartbeats)")
	}
	if len(task.Degraded()) != 0 {
		t.Errorf("task degraded: %v", task.Degraded())
	}
}

// TestFailoverReusedStreamRebinds: a second task that reused the first
// task's relay stream (via the stream-definition database) survives the
// relay host's crash: phase 2 re-binds its ChannelIn to the re-deployed
// provider announced in phase 1.
func TestFailoverReusedStreamRebinds(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	m := sys.MustAddPeer("m.com")
	registerService(m)
	c := sys.MustAddPeer("c.com")
	p1 := sys.MustAddPeer("p1")
	sys.MustAddPeer("w2")
	sys.MustAddPeer("mon")

	// Task 1 deploys σ[callMethod=Q] at m.com (pushdown).
	base, err := p1.Subscribe(`for $e in inCOM(<p>m.com</p>)
where $e.callMethod = "Q"
return $e by publish as channel "qStream"`)
	if err != nil {
		t.Fatal(err)
	}
	// Task 2 reuses task 1's σ stream: its residual σ consumes the
	// published stream through a ChannelIn.
	p2 := sys.MustAddPeer("far.com")
	t2, err := p2.Subscribe(`for $e in inCOM(<p>m.com</p>)
where $e.callMethod = "Q" and $e.caller = "http://c.com"
return <hit id="{$e.callId}"/> by publish as channel "hits"`)
	if err != nil {
		t.Fatal(err)
	}
	usesChannel := false
	t2.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn {
			usesChannel = true
		}
	})
	if !usesChannel {
		t.Fatalf("task 2 did not reuse task 1's stream:\n%s", t2.Plan.Tree())
	}

	if _, err := c.Endpoint().Invoke("m.com", "Q", nil); err != nil {
		t.Fatal(err)
	}
	waitResults(t, t2, 1)
	// m.com dies: task 1 loses both its alerter (unrepairable — the
	// source is gone) and the σ; task 2's ChannelIn must be re-bound to
	// wherever the σ re-deployed.
	events := sys.FailPeer("m.com", 0)
	repaired := 0
	for _, e := range events {
		if e.Repaired() {
			repaired++
		}
	}
	if repaired == 0 {
		t.Fatalf("no repairs in %+v", events)
	}
	var rebound stream.Ref
	t2.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn {
			rebound = n.Channel
		}
	})
	if rebound.PeerID == "m.com" {
		t.Errorf("task 2 still consumes from the dead peer: %v", rebound)
	}
	base.Stop()
	t2.Stop()
	if got := len(t2.Results().Drain()); got != 1 {
		t.Errorf("pre-crash event lost: results = %d, want 1", got)
	}
}
