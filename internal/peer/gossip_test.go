package peer

import (
	"strings"
	"fmt"
	"testing"
	"time"
)

// gossipLab builds a small system with a gossip detector: nPeers named
// p0..pN-1, default network, seeded deterministically.
func gossipLab(t *testing.T, nPeers int, opts GossipOptions) (*System, *GossipDetector) {
	t.Helper()
	sys := MustSystem(DefaultConfig())
	for i := 0; i < nPeers; i++ {
		sys.MustAddPeer(fmt.Sprintf("p%d", i))
	}
	return sys, sys.StartGossipDetector(opts)
}

// timeline records detector events for comparison.
type timeline []string

func recordTimeline(det FailureDetector, tl *timeline) {
	det.OnDeath(func(peer string, at time.Duration) {
		*tl = append(*tl, fmt.Sprintf("dead %s @%v", peer, at))
	})
	det.OnRecover(func(peer string, at time.Duration) {
		*tl = append(*tl, fmt.Sprintf("recovered %s @%v", peer, at))
	})
}

// TestGossipDetectsCrashAndRecovery: the aggregate confirms a crashed
// member dead within a bounded number of protocol periods, and
// un-confirms it after it recovers (incarnation-bumped refutation).
func TestGossipDetectsCrashAndRecovery(t *testing.T) {
	sys, det := gossipLab(t, 5, GossipOptions{Seed: 7, ProbeInterval: time.Second, Suspicion: 2 * time.Second})
	var tl timeline
	recordTimeline(det, &tl)

	for i := 0; i < 5; i++ { // healthy warm-up
		sys.Step(time.Second)
	}
	if len(tl) != 0 {
		t.Fatalf("events on a healthy membership: %v", tl)
	}

	sys.Net.Crash("p2")
	deadline := 25
	for i := 0; i < deadline && len(det.Suspects()) == 0; i++ {
		sys.Step(time.Second)
	}
	if got := det.Suspects(); len(got) != 1 || got[0] != "p2" {
		t.Fatalf("suspects after crash = %v, want [p2] (timeline %v)", got, tl)
	}

	sys.Net.Recover("p2")
	for i := 0; i < deadline && len(det.Suspects()) != 0; i++ {
		sys.Step(time.Second)
	}
	if got := det.Suspects(); len(got) != 0 {
		t.Fatalf("suspects after recovery = %v, want none (timeline %v)", got, tl)
	}
	// The recovered member refuted with a bumped incarnation.
	bumped := false
	for i := 0; i < 5; i++ {
		owner := fmt.Sprintf("p%d", i)
		if owner == "p2" {
			continue
		}
		if st, inc, ok := det.ViewOf(owner, "p2"); ok && st == "alive" && inc > 0 {
			bumped = true
		}
	}
	if !bumped {
		t.Error("no view holds an incarnation-bumped alive record for the recovered peer")
	}
}

// TestGossipDeterministicTimelines: the hard requirement — same seed,
// same fault schedule ⇒ byte-identical suspect/dead/recover timelines,
// however the test binary shuffles or repeats.
func TestGossipDeterministicTimelines(t *testing.T) {
	run := func() timeline {
		sys, det := gossipLab(t, 6, GossipOptions{Seed: 42, ProbeInterval: time.Second, Suspicion: 2 * time.Second})
		var tl timeline
		recordTimeline(det, &tl)
		for i := 0; i < 4; i++ {
			sys.Step(time.Second)
		}
		sys.Net.Crash("p1")
		for i := 0; i < 10; i++ {
			sys.Step(time.Second)
		}
		sys.Net.Crash("p4")
		for i := 0; i < 10; i++ {
			sys.Step(time.Second)
		}
		sys.Net.Recover("p1")
		for i := 0; i < 12; i++ {
			sys.Step(time.Second)
		}
		return tl
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("schedule produced no events at all")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n run1: %v\n run2: %v", a, b)
	}
}

// TestGossipRefutesFalseSuspicion: a short partition raises suspicions
// but, with a suspicion timeout longer than the outage, the refutation
// (incarnation bump gossiped on probe traffic) clears them before any
// view declares death — zero false positives.
func TestGossipRefutesFalseSuspicion(t *testing.T) {
	sys, det := gossipLab(t, 5, GossipOptions{Seed: 3, ProbeInterval: time.Second, Suspicion: 10 * time.Second})
	var tl timeline
	recordTimeline(det, &tl)
	for i := 0; i < 4; i++ {
		sys.Step(time.Second)
	}
	sys.Net.Partition([]string{"p0"}, []string{"p1", "p2", "p3", "p4"})
	for i := 0; i < 3; i++ {
		sys.Step(time.Second)
	}
	sys.Net.Heal()
	for i := 0; i < 15; i++ {
		sys.Step(time.Second)
	}
	if len(tl) != 0 {
		t.Fatalf("false positives despite refutation window: %v", tl)
	}
	for i := 1; i < 5; i++ {
		if st, _, ok := det.ViewOf(fmt.Sprintf("p%d", i), "p0"); !ok || st != "alive" {
			t.Errorf("p%d's view of p0 = %q, want alive", i, st)
		}
	}
}

// TestGossipSupervisorSurvivesHomePartition is the acceptance scenario
// for decentralizing detection: the peer that used to host the home
// detector is partitioned away, the relay host crashes afterwards, and
// the gossip supervisor still detects the crash and migrates the
// operator. The home-detector supervisor, run over the identical
// schedule, is blind: it never detects the relay crash (and its own
// silence-is-death rule mass-false-positives the healthy peers).
func TestGossipSupervisorSurvivesHomePartition(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: two full survivability scenarios; covered by the matrix job")
	}
	type outcome struct {
		relayDeaths    int
		falsePositives int // deaths declared for peers that never crashed
		migratedTo     string
		results        int
	}
	runMode := func(gossip bool) outcome {
		sys := MustSystem(DefaultConfig())
		mgr := sys.MustAddPeer("mgr")
		src := sys.MustAddPeer("src.com")
		registerService(src)
		client := sys.MustAddPeer("c.com")
		sys.MustAddPeer("w1")
		sys.MustAddPeer("w2")
		sys.MustAddPeer("mon")
		for _, busy := range []string{"src.com", "c.com", "mon", "mgr"} {
			sys.Net.AddLoad(busy, 10)
		}
		task, err := mgr.DeployPlan(relayPlan("src.com", "w1", "mgr", "survive"))
		if err != nil {
			t.Fatal(err)
		}
		var sup *Supervisor
		if gossip {
			sup = sys.StartGossipSupervisor(GossipOptions{Seed: 11, ProbeInterval: time.Second, Suspicion: 2 * time.Second})
		} else {
			sup = sys.StartSupervisor("mon", DetectorOptions{Interval: time.Second, Suspicion: 2 * time.Second})
		}

		drive := func(n int) {
			for i := 0; i < n; i++ {
				if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err == nil {
					sys.Step(time.Second)
				}
			}
		}
		drive(3)
		waitResults(t, task, 3)

		// The old detector home is cut off from everyone else.
		sys.Net.Partition([]string{"mon"}, []string{"mgr", "src.com", "c.com", "w1", "w2"})
		for i := 0; i < 12; i++ {
			sys.Step(time.Second)
		}
		// Now the relay host actually dies.
		sys.Net.Crash("w1")
		for i := 0; i < 25; i++ {
			sys.Step(time.Second)
		}
		drive(3)

		var out outcome
		for _, d := range sup.Deaths() {
			switch d {
			case "w1":
				out.relayDeaths++
			case "mon":
				// The isolated peer being treated as dead is correct in
				// either mode, not a false positive.
			default:
				out.falsePositives++
			}
		}
		for _, ev := range sup.Events() {
			if ev.From == "w1" && ev.Repaired() {
				out.migratedTo = ev.To
			}
		}
		// Bounded settle: count what arrived without stopping the task
		// first (a wrecked home-mode system may never deliver).
		deadline := time.Now().Add(2 * time.Second)
		for task.Results().Len() < 6 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		out.results = task.Results().Len()
		task.Stop()
		return out
	}

	g := runMode(true)
	if g.relayDeaths != 1 {
		t.Errorf("gossip: relay deaths = %d, want 1", g.relayDeaths)
	}
	if g.falsePositives != 0 {
		t.Errorf("gossip: %d healthy peers declared dead — the quorum view must shield them", g.falsePositives)
	}
	if g.migratedTo != "w2" {
		t.Errorf("gossip: relay migrated to %q, want w2", g.migratedTo)
	}
	if g.results < 6 {
		t.Errorf("gossip: results = %d, want >= 6 (pre-partition 3 + post-migration 3)", g.results)
	}

	// Home mode fails in the characteristic way: the blind detector's
	// silence-is-death rule declares the healthy peers dead (crashing
	// them via the supervisor), and the post-crash traffic is lost.
	h := runMode(false)
	if h.falsePositives == 0 {
		t.Error("home: a partitioned home detector should have mass-false-positived the healthy peers")
	}
	if h.results >= 6 {
		t.Errorf("home: results = %d; a blind detector should have lost the post-crash traffic", h.results)
	}
}

// TestGossipQuorumShieldsAgainstLonePeer: while partitioned, the
// isolated peer's view declares everyone dead — but the quorum rule
// keeps those lone votes out of the aggregate, so only the isolated
// peer itself is confirmed dead.
func TestGossipQuorumShieldsAgainstLonePeer(t *testing.T) {
	sys, det := gossipLab(t, 6, GossipOptions{Seed: 5, ProbeInterval: time.Second, Suspicion: 2 * time.Second})
	var tl timeline
	recordTimeline(det, &tl)
	for i := 0; i < 4; i++ {
		sys.Step(time.Second)
	}
	sys.Net.Partition([]string{"p0"}, []string{"p1", "p2", "p3", "p4", "p5"})
	for i := 0; i < 30; i++ {
		sys.Step(time.Second)
	}
	got := det.Suspects()
	if len(got) != 1 || got[0] != "p0" {
		t.Fatalf("confirmed dead = %v, want exactly [p0] — the lone partitioned view must not poison the quorum", got)
	}
	// p0's own view HAS declared others dead (it is blind), proving the
	// aggregate did the shielding, not luck.
	lone := 0
	for i := 1; i < 6; i++ {
		if st, _, ok := det.ViewOf("p0", fmt.Sprintf("p%d", i)); ok && st == "dead" {
			lone++
		}
	}
	if lone == 0 {
		t.Error("isolated peer's view never went blind — partition did not bite?")
	}
}

// TestGossipFanoutCutsDetectionTail: with fanout f, a peer probes f
// distinct members per period, so a crashed member is discovered in
// ~1/f the rounds. The test pins behavior, not exact latency: higher
// fanout must still detect exactly the crashed peer, and the protocol
// cost (probes per round) must scale with f.
func TestGossipFanoutCutsDetectionTail(t *testing.T) {
	detectIn := func(fanout int) (rounds int, probes uint64) {
		sys, det := gossipLab(t, 8, GossipOptions{
			Seed: 9, ProbeInterval: time.Second, Suspicion: 2 * time.Second, Fanout: fanout,
		})
		for i := 0; i < 3; i++ {
			sys.Step(time.Second)
		}
		sys.Net.Crash("p5")
		for rounds = 0; rounds < 40 && len(det.Suspects()) == 0; rounds++ {
			sys.Step(time.Second)
		}
		if got := det.Suspects(); len(got) != 1 || got[0] != "p5" {
			t.Fatalf("fanout %d: suspects = %v, want [p5]", fanout, got)
		}
		p, _, _ := det.ProtocolCounters()
		return rounds, p
	}
	r1, p1 := detectIn(1)
	r3, p3 := detectIn(3)
	if r1 >= 40 || r3 >= 40 {
		t.Fatalf("detection never completed (fanout1 %d rounds, fanout3 %d rounds)", r1, r3)
	}
	if p3 <= p1 {
		t.Errorf("fanout 3 sent %d probes vs %d at fanout 1 — the cost should scale with fanout", p3, p1)
	}
}

// slowLinks injects extra delay on every link touching victim, both
// directions — the peer is alive but slow, the classic gossip
// false-positive trap.
func slowLinks(sys *System, nPeers int, victim string, d time.Duration, drop float64) {
	for i := 0; i < nPeers; i++ {
		p := fmt.Sprintf("p%d", i)
		if p == victim {
			continue
		}
		sys.Net.SetExtraDelay(p, victim, d)
		sys.Net.SetExtraDelay(victim, p, d)
		sys.Net.SetDrop(p, victim, drop)
		sys.Net.SetDrop(victim, p, drop)
	}
}

func deathsOf(tl timeline, peer string) int {
	n := 0
	for _, e := range tl {
		if strings.HasPrefix(e, "dead "+peer+" ") {
			n++
		}
	}
	return n
}

// TestGossipAdaptiveShieldsSlowPeer is the Lifeguard acceptance
// scenario: under an aggressive static configuration a delayed-but-alive
// peer is falsely declared dead, while the identical schedule with
// Adaptive enabled kills nobody — local health scaling stretches the
// probe timeout until re-probes reach the slow peer again.
func TestGossipAdaptiveShieldsSlowPeer(t *testing.T) {
	run := func(adaptive bool) (timeline, *GossipDetector) {
		sys, det := gossipLab(t, 5, GossipOptions{
			Seed: 9, ProbeInterval: time.Second,
			ProbeTimeout: 500 * time.Millisecond, Suspicion: time.Second,
			Adaptive: adaptive,
		})
		var tl timeline
		recordTimeline(det, &tl)
		for i := 0; i < 4; i++ { // healthy warm-up
			sys.Step(time.Second)
		}
		// 400ms per direction pushes direct round-trips (~810ms) and
		// relayed ones (~820ms) beyond the 500ms base timeout, and half
		// the messages are lost outright — alive, but degraded. The
		// refutation path (incarnation bumps on piggyback) stays up,
		// only slower and lossier.
		slowLinks(sys, 5, "p3", 400*time.Millisecond, 0.5)
		for i := 0; i < 40; i++ {
			sys.Step(time.Second)
		}
		return tl, det
	}

	staticTL, _ := run(false)
	if deathsOf(staticTL, "p3") == 0 {
		t.Fatalf("static config did not false-kill the slow peer — scenario lost its teeth (timeline %v)", staticTL)
	}

	adaptiveTL, det := run(true)
	if n := deathsOf(adaptiveTL, "p3"); n != 0 {
		t.Fatalf("adaptive config declared the slow-but-alive peer dead %d times: %v", n, adaptiveTL)
	}
	// The shield must come from health scaling, not luck: some prober
	// raised its local health score while its probes timed out.
	maxHealth := 0
	for i := 0; i < 5; i++ {
		if h := det.HealthOf(fmt.Sprintf("p%d", i)); h > maxHealth {
			maxHealth = h
		}
	}
	if maxHealth == 0 {
		t.Error("no view raised its health score under injected delay")
	}
}

// TestGossipAdaptiveStillDetectsCrash: health scaling must not blunt
// true-crash detection — a genuinely dead peer is still confirmed within
// the same bounded deadline the static detector gets.
func TestGossipAdaptiveStillDetectsCrash(t *testing.T) {
	sys, det := gossipLab(t, 5, GossipOptions{
		Seed: 7, ProbeInterval: time.Second, Suspicion: 2 * time.Second, Adaptive: true,
	})
	var tl timeline
	recordTimeline(det, &tl)
	for i := 0; i < 5; i++ {
		sys.Step(time.Second)
	}
	sys.Net.Crash("p2")
	for i := 0; i < 25 && len(det.Suspects()) == 0; i++ {
		sys.Step(time.Second)
	}
	if got := det.Suspects(); len(got) != 1 || got[0] != "p2" {
		t.Fatalf("suspects after crash = %v, want [p2] (timeline %v)", got, tl)
	}
}

// TestGossipAdaptiveDisableResetsHealth: turning the mechanism off
// mid-run clears accumulated health so timeouts snap back to base.
func TestGossipAdaptiveDisableResetsHealth(t *testing.T) {
	sys, det := gossipLab(t, 4, GossipOptions{
		Seed: 5, ProbeInterval: time.Second,
		ProbeTimeout: 500 * time.Millisecond, Suspicion: time.Second,
		Adaptive: true,
	})
	for i := 0; i < 3; i++ {
		sys.Step(time.Second)
	}
	slowLinks(sys, 4, "p1", 400*time.Millisecond, 0.5)
	for i := 0; i < 20; i++ {
		sys.Step(time.Second)
	}
	raised := false
	for i := 0; i < 4; i++ {
		if det.HealthOf(fmt.Sprintf("p%d", i)) > 0 {
			raised = true
		}
	}
	if !raised {
		t.Fatal("no health accumulated under delay — nothing to reset")
	}
	det.SetAdaptive(false)
	for i := 0; i < 4; i++ {
		if h := det.HealthOf(fmt.Sprintf("p%d", i)); h != 0 {
			t.Fatalf("p%d health = %d after SetAdaptive(false), want 0", i, h)
		}
	}
}
