package peer

import (
	"fmt"
	"sort"
	"time"

	"p2pm/internal/simnet"
	"p2pm/internal/telemetry"
)

// Config configures a System. It groups the former flat Options into
// functional sub-structs (DHT placement, aggregation trees, the replay/
// checkpoint layer, gossip detection defaults) and is validated by
// NewSystem. Fields that stay meaningful after startup are mutable at
// runtime through System.Tuning — the seam the adaptive controllers
// (docs/ADAPTIVE.md) actuate through.
type Config struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Reuse enables the Section 5 stream-reuse pass on new subscriptions.
	Reuse bool
	// Pushdown enables selection pushdown (disable only for baselines).
	Pushdown bool
	// IncludeEnvelopes embeds SOAP envelopes in WS alerts. They dominate
	// alert size, which matters for the communication-savings benches.
	IncludeEnvelopes bool
	// JoinWindow, when non-zero, bounds join histories by virtual time —
	// the garbage-collection mechanism of the paper's future work.
	JoinWindow time.Duration
	// DistinctWindow likewise bounds duplicate-removal memory.
	DistinctWindow time.Duration
	// DHT configures the stream-definition database's ring placement.
	DHT DHTConfig
	// Agg configures aggregation-tree decomposition and the load-driven
	// re-chunking controller.
	Agg AggConfig
	// Replay configures the lossless-failover layer (replay buffers,
	// cursors, operator checkpoints).
	Replay ReplayConfig
	// Gossip supplies system-level defaults for gossip failure detectors
	// started without explicit values (StartGossipDetector merges them
	// into zero fields of its GossipOptions argument).
	Gossip GossipConfig
	// Net overrides the simulated-network parameters; zero value uses
	// simnet defaults seeded from Seed.
	Net simnet.Options
	// Telemetry opts the system into the metrics registry
	// (docs/TELEMETRY.md). The zero value keeps every layer
	// uninstrumented at zero cost.
	Telemetry TelemetryConfig
}

// TelemetryConfig wires a System into a telemetry registry. Enabled
// when either field is set; a non-empty Addr with a nil Registry uses
// telemetry.Default (the process-wide registry the p2pmon net mode
// exports).
type TelemetryConfig struct {
	// Addr, when non-empty, serves the registry over HTTP
	// (GET /metrics Prometheus text, /metrics.json JSON) for the
	// system's lifetime. ":0" picks a free port; read it back from
	// System.TelemetryAddr.
	Addr string
	// Registry receives the system's metrics. Tests pass a fresh
	// telemetry.NewRegistry() so concurrent systems never share series.
	Registry *telemetry.Registry
}

// enabled reports whether the system should instrument itself.
func (t TelemetryConfig) enabled() bool { return t.Registry != nil || t.Addr != "" }

// DHTConfig groups the stream-definition ring knobs.
type DHTConfig struct {
	// Replication is the number of copies the stream-definition database
	// keeps per key (owner + successors). Values > 1 let lookups survive
	// node crashes; <= 1 keeps a single copy. Mutable at runtime via
	// Tuning.SetDHTReplication (subsequent puts — including every
	// checkpoint sweep — pick the new factor up).
	Replication int
	// VirtualNodes gives every peer that many tokens on the ring instead
	// of one: key ownership fragments into small arcs, so a membership
	// change hands off ~K/n keys instead of whole successor arcs. <= 1
	// keeps classic placement.
	VirtualNodes int
	// LoadBound, when > 0, enables bounded-load placement: no peer holds
	// more than ceil(c·K/n) primary keys, capping its share of
	// checkpoint/descriptor traffic at ~c× the mean. 0 keeps plain
	// successor placement.
	LoadBound float64
	// ReadCache caches resolved bounded-load primary locations per
	// reader, invalidated on membership or placement changes. Only
	// meaningful with LoadBound > 0.
	ReadCache bool
}

// AggConfig groups aggregation-tree construction and the adaptive
// re-chunking controller.
type AggConfig struct {
	// Degree, when > 1, makes the deploy planner decompose windowed
	// Group aggregation into a DHT-routed partial/merge fan-in tree
	// whenever the aggregated union fans in more than Degree branches.
	// 0 keeps every aggregation flat. See docs/AGGREGATION.md.
	Degree int
	// SplitRatio, when > 1, arms the load-driven re-chunking controller:
	// each Step it compares every first-level interior's ingest rate
	// against the tree mean, and an interior staying above
	// SplitRatio×mean for SplitObservations consecutive Steps is split
	// in place (its children re-chunked under fresh sub-interiors,
	// exactly-once across the move). Requires the replay layer. 0
	// disables re-chunking. Mutable via Tuning.SetAggSplitRatio.
	SplitRatio float64
	// SplitMinFanIn is the smallest interior fan-in the controller will
	// split (a split must leave every new interior with ≥ 2 children).
	// Default 4.
	SplitMinFanIn int
	// SplitObservations is the hysteresis depth: how many consecutive
	// over-ratio Steps an interior must accumulate before it is split.
	// Default 3.
	SplitObservations int
	// SplitCooldown is the minimum virtual time between two splits in
	// the same task, bounding how fast the controller can reshape a
	// tree. Default 0 (no cooldown).
	SplitCooldown time.Duration
}

// ReplayConfig groups the lossless-failover layer.
type ReplayConfig struct {
	// Buffer, when > 0, makes every registered channel retain its last
	// Buffer published items for retransmission, and turns on the
	// consumer-side cursors and the per-Step anti-entropy sweep. 0 keeps
	// the lossy fail-stop delivery semantics. See docs/REPLAY.md.
	Buffer int
	// CheckpointInterval, when > 0, snapshots every stateful operator
	// each interval of virtual time into the DHT-replicated store;
	// failover restores operators from their checkpoint instead of
	// restarting them cold. Mutable via Tuning.SetCheckpointInterval.
	CheckpointInterval time.Duration
}

// GossipConfig supplies system-level defaults for gossip detectors:
// StartGossipDetector fills zero fields of its GossipOptions argument
// from here, so workloads can configure detection once at the System.
type GossipConfig struct {
	// ProbeInterval is one protocol period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds a probe round trip (default 500ms).
	ProbeTimeout time.Duration
	// Suspicion is the refutation window before a suspect is declared
	// dead in a view (default 3×ProbeInterval).
	Suspicion time.Duration
	// Adaptive enables Lifeguard-style local-health scaling of probe
	// timeouts and suspicion windows. See docs/ADAPTIVE.md.
	Adaptive bool
	// HealthMax caps the health multiplier (default 8).
	HealthMax int
}

// DefaultConfig enables the paper's full feature set, plus 2-way DHT
// replication so stream-definition lookups survive churn.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Reuse:            true,
		Pushdown:         true,
		IncludeEnvelopes: true,
		DHT:              DHTConfig{Replication: 2},
		Net:              simnet.DefaultOptions(),
	}
}

// normalize fills derived defaults (after validation).
func (c Config) normalize() Config {
	if c.Net == (simnet.Options{}) {
		c.Net = simnet.DefaultOptions()
		c.Net.Seed = c.Seed
	}
	if c.Agg.SplitRatio > 0 {
		if c.Agg.SplitMinFanIn == 0 {
			c.Agg.SplitMinFanIn = 4
		}
		if c.Agg.SplitObservations == 0 {
			c.Agg.SplitObservations = 3
		}
	}
	if c.Gossip.HealthMax == 0 {
		c.Gossip.HealthMax = 8
	}
	if c.Telemetry.Addr != "" && c.Telemetry.Registry == nil {
		c.Telemetry.Registry = telemetry.Default
	}
	return c
}

// validate rejects configurations that cannot work rather than letting
// them fail obscurely mid-run.
func (c Config) validate() error {
	if c.DHT.Replication < 0 {
		return fmt.Errorf("peer: DHT.Replication %d is negative", c.DHT.Replication)
	}
	if c.DHT.VirtualNodes < 0 {
		return fmt.Errorf("peer: DHT.VirtualNodes %d is negative", c.DHT.VirtualNodes)
	}
	if c.DHT.LoadBound < 0 {
		return fmt.Errorf("peer: DHT.LoadBound %g is negative", c.DHT.LoadBound)
	}
	if c.DHT.LoadBound > 0 && c.DHT.LoadBound < 1 {
		return fmt.Errorf("peer: DHT.LoadBound %g is below 1 (no peer could hold its fair share)", c.DHT.LoadBound)
	}
	if c.Agg.Degree < 0 || c.Agg.Degree == 1 {
		return fmt.Errorf("peer: Agg.Degree %d must be 0 (flat) or >= 2", c.Agg.Degree)
	}
	if c.Agg.SplitRatio < 0 {
		return fmt.Errorf("peer: Agg.SplitRatio %g is negative", c.Agg.SplitRatio)
	}
	if c.Agg.SplitRatio > 0 && c.Agg.SplitRatio <= 1 {
		return fmt.Errorf("peer: Agg.SplitRatio %g must exceed 1 (an interior at the mean must not split)", c.Agg.SplitRatio)
	}
	if c.Agg.SplitRatio > 0 && c.Replay.Buffer <= 0 {
		return fmt.Errorf("peer: Agg.SplitRatio needs the replay layer (Replay.Buffer > 0) for exactly-once re-chunking")
	}
	if c.Agg.SplitMinFanIn < 0 || c.Agg.SplitObservations < 0 || c.Agg.SplitCooldown < 0 {
		return fmt.Errorf("peer: negative Agg split knob")
	}
	if c.Replay.Buffer < 0 {
		return fmt.Errorf("peer: Replay.Buffer %d is negative", c.Replay.Buffer)
	}
	if c.Replay.CheckpointInterval < 0 {
		return fmt.Errorf("peer: Replay.CheckpointInterval %v is negative", c.Replay.CheckpointInterval)
	}
	if c.Replay.CheckpointInterval > 0 && c.Replay.Buffer <= 0 {
		return fmt.Errorf("peer: Replay.CheckpointInterval needs Replay.Buffer > 0 (checkpoint resume replays from the buffers)")
	}
	if c.Gossip.ProbeInterval < 0 || c.Gossip.ProbeTimeout < 0 || c.Gossip.Suspicion < 0 {
		return fmt.Errorf("peer: negative Gossip duration")
	}
	if c.Gossip.HealthMax < 0 {
		return fmt.Errorf("peer: Gossip.HealthMax %d is negative", c.Gossip.HealthMax)
	}
	if c.JoinWindow < 0 || c.DistinctWindow < 0 {
		return fmt.Errorf("peer: negative operator window")
	}
	return nil
}

// ---------------------------------------------------------------------
// Runtime tuning.

// Tuning is the runtime-mutable control surface of a running System.
// Every setter is safe to call mid-run — this is the seam the adaptive
// controllers (and operators doing manual intervention) actuate through.
// Mutations take effect at well-defined points: the next checkpoint
// sweep, the next controller observation, the next detector tick.
type Tuning struct{ s *System }

// Tuning returns the runtime control surface.
func (s *System) Tuning() Tuning { return Tuning{s: s} }

// SetCheckpointInterval changes the operator checkpoint cadence (0
// disables future sweeps; CheckpointNow still works).
func (t Tuning) SetCheckpointInterval(d time.Duration) {
	t.s.cfgMu.Lock()
	t.s.cfg.Replay.CheckpointInterval = d
	t.s.cfgMu.Unlock()
}

// SetAggSplitRatio re-arms (or, with 0, disarms) the load-driven
// re-chunking controller at a new hot-interior threshold.
func (t Tuning) SetAggSplitRatio(r float64) {
	t.s.cfgMu.Lock()
	t.s.cfg.Agg.SplitRatio = r
	t.s.cfgMu.Unlock()
}

// SetDHTReplication changes the stream-definition replication factor.
// Existing keys re-replicate as they are re-put — operator checkpoints
// on the next sweep, stats on the next refresh — so raising it for a
// hot checkpoint class converges within one checkpoint interval.
func (t Tuning) SetDHTReplication(n int) {
	if n < 1 {
		n = 1
	}
	t.s.cfgMu.Lock()
	t.s.cfg.DHT.Replication = n
	t.s.cfgMu.Unlock()
	t.s.Ring.SetReplication(n)
}

// SetGossipSuspicion changes the suspicion window of every running
// gossip detector (the base value; adaptive health still scales it).
func (t Tuning) SetGossipSuspicion(d time.Duration) {
	t.s.cfgMu.Lock()
	t.s.cfg.Gossip.Suspicion = d
	t.s.cfgMu.Unlock()
	for _, g := range t.s.gossipDetectors() {
		g.SetSuspicion(d)
	}
}

// SetGossipProbeTimeout changes the probe round-trip budget of every
// running gossip detector.
func (t Tuning) SetGossipProbeTimeout(d time.Duration) {
	t.s.cfgMu.Lock()
	t.s.cfg.Gossip.ProbeTimeout = d
	t.s.cfgMu.Unlock()
	for _, g := range t.s.gossipDetectors() {
		g.SetProbeTimeout(d)
	}
}

// SetAdaptiveSuspicion toggles Lifeguard-style health scaling on every
// running gossip detector.
func (t Tuning) SetAdaptiveSuspicion(on bool) {
	t.s.cfgMu.Lock()
	t.s.cfg.Gossip.Adaptive = on
	t.s.cfgMu.Unlock()
	for _, g := range t.s.gossipDetectors() {
		g.SetAdaptive(on)
	}
}

// QuarantineAggHost removes a peer from aggregation-tree interior
// placement (on top of any SetAggHosts filter) and rebalances running
// trees off it. The control action a flap-monitoring query triggers.
func (t Tuning) QuarantineAggHost(name string) {
	t.s.mu.Lock()
	if t.s.quarantined == nil {
		t.s.quarantined = make(map[string]bool)
	}
	changed := !t.s.quarantined[name]
	t.s.quarantined[name] = true
	t.s.mu.Unlock()
	if changed && t.s.aggDegree() > 1 {
		t.s.RebalanceAggTrees(t.s.Net.Clock().Now())
	}
}

// LiftQuarantine re-admits a quarantined peer and rebalances trees
// (interiors whose DHT-derived home it is move back).
func (t Tuning) LiftQuarantine(name string) {
	t.s.mu.Lock()
	changed := t.s.quarantined[name]
	delete(t.s.quarantined, name)
	t.s.mu.Unlock()
	if changed && t.s.aggDegree() > 1 {
		t.s.RebalanceAggTrees(t.s.Net.Clock().Now())
	}
}

// Quarantined lists currently quarantined aggregation hosts, sorted.
func (t Tuning) Quarantined() []string {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	out := make([]string, 0, len(t.s.quarantined))
	for name := range t.s.quarantined {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// gossipDetectors snapshots the registered gossip detectors.
func (s *System) gossipDetectors() []*GossipDetector {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*GossipDetector
	for _, det := range s.detectors {
		if g, ok := det.(*GossipDetector); ok {
			out = append(out, g)
		}
	}
	return out
}
