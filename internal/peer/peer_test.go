package peer

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/rss"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// figure1 is the Figure 1 subscription, verbatim.
const figure1 = `for $c1 in outCOM(<p>http://a.com</p>
                   <p>http://b.com</p>),
    $c2 in inCOM(<p>http://meteo.com</p>)
let $duration := $c1.responseTimestamp
               - $c1.callTimestamp
where
    $duration > 10 and
    $c1.callMethod = "GetTemperature" and
    $c1.callee = "http://meteo.com" and
    $c1.callId = $c2.callId
return
    <incident type = "slowAnswer">
      <client>{$c1.caller}</client>
      <tstamp>{$c2.callTimestamp}</tstamp>
    </incident>
by publish as channel "alertQoS";`

// meteoWorld builds the 4-peer world of the running example: a monitor
// office p, two clients and the meteo.com server whose GetTemperature is
// slow whenever the provided function says so.
func meteoWorld(t *testing.T, opts Config, slow func(call int) bool) (*System, *Peer) {
	t.Helper()
	sys := MustSystem(opts)
	p := sys.MustAddPeer("p")
	sys.MustAddPeer("a.com")
	sys.MustAddPeer("b.com")
	meteo := sys.MustAddPeer("meteo.com")
	calls := 0
	meteo.Endpoint().Register("GetTemperature",
		func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.ElemText("temp", "21"), nil
		},
		func() time.Duration {
			calls++
			if slow(calls) {
				return 15 * time.Second
			}
			return 100 * time.Millisecond
		})
	meteo.Endpoint().Register("GetHumidity",
		func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.ElemText("hum", "40"), nil
		}, nil)
	return sys, p
}

// TestFigure1EndToEnd deploys the Figure 1 subscription on the simulated
// network, drives client traffic, and checks that exactly the slow calls
// surface as incidents.
func TestFigure1EndToEnd(t *testing.T) {
	// Calls 2 and 5 are slow.
	sys, p := meteoWorld(t, DefaultConfig(), func(c int) bool { return c == 2 || c == 5 })
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}

	a := sys.Peer("a.com").Endpoint()
	b := sys.Peer("b.com").Endpoint()
	clock := sys.Net.Clock()
	for i := 0; i < 6; i++ {
		caller := a
		if i%2 == 1 {
			caller = b
		}
		if _, err := caller.Invoke("meteo.com", "GetTemperature", xmltree.ElemText("city", "paris")); err != nil {
			t.Fatal(err)
		}
		clock.Advance(30 * time.Second)
	}
	// An unrelated method must not trigger anything.
	if _, err := a.Invoke("meteo.com", "GetHumidity", nil); err != nil {
		t.Fatal(err)
	}

	task.Stop()
	incidents := task.Results().Drain()
	if len(incidents) != 2 {
		for _, it := range incidents {
			t.Logf("incident: %s", it.Tree)
		}
		t.Fatalf("incidents = %d, want 2", len(incidents))
	}
	for _, it := range incidents {
		if it.Tree.Label != "incident" || it.Tree.AttrOr("type", "") != "slowAnswer" {
			t.Errorf("bad incident: %s", it.Tree)
		}
		client := it.Tree.Child("client").InnerText()
		if client != "http://a.com" && client != "http://b.com" {
			t.Errorf("client = %q", client)
		}
		if it.Tree.Child("tstamp").InnerText() == "" {
			t.Error("tstamp missing")
		}
	}
	// Call 2 came from b.com, call 5 from a.com.
	if incidents[0].Tree.Child("client").InnerText() == incidents[1].Tree.Child("client").InnerText() {
		t.Error("both incidents from the same client; expected one each")
	}
}

// TestFigure1TrafficSavedByPushdown measures the C5 effect end to end:
// with selection pushdown, non-matching alerts never leave their peer.
func TestFigure1TrafficSavedByPushdown(t *testing.T) {
	run := func(pushdown bool) uint64 {
		opts := DefaultConfig()
		opts.Pushdown = pushdown
		opts.Reuse = false
		sys, p := meteoWorld(t, opts, func(int) bool { return false }) // all fast
		task, err := p.Subscribe(figure1)
		if err != nil {
			t.Fatal(err)
		}
		a := sys.Peer("a.com").Endpoint()
		for i := 0; i < 20; i++ {
			if _, err := a.Invoke("meteo.com", "GetTemperature", nil); err != nil {
				t.Fatal(err)
			}
			sys.Net.Clock().Advance(time.Second)
		}
		task.Stop()
		task.Results().Drain()
		return sys.Net.Totals().Bytes
	}
	withPush := run(true)
	withoutPush := run(false)
	if withPush >= withoutPush {
		t.Errorf("pushdown did not reduce traffic: with=%d without=%d", withPush, withoutPush)
	}
}

// TestFigure2Architecture checks the component introspection against the
// peer architecture of Figure 2.
func TestFigure2Architecture(t *testing.T) {
	sys, p := meteoWorld(t, DefaultConfig(), func(int) bool { return false })
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { task.Stop(); task.Results().Drain() }()

	// The manager hosts its Subscription Manager and the Publisher.
	comps := p.Components()
	if comps[0] != "SubscriptionManager" {
		t.Errorf("manager components = %v", comps)
	}
	found := false
	for _, c := range comps {
		if c == "Publisher" {
			found = true
		}
	}
	if !found {
		t.Errorf("publisher missing at manager: %v", comps)
	}
	_ = sys
}

// TestDeployedChannelsMatchFigure4 verifies that deployment wires the
// per-peer fragments with channels, one per operator, as in Figure 4.
func TestDeployedChannelsMatchFigure4(t *testing.T) {
	opts := DefaultConfig()
	opts.Reuse = false
	_, p := meteoWorld(t, opts, func(int) bool { return false })
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { task.Stop(); task.Results().Drain() }()

	// 9 operators (Fig 4 plan) minus publisher = 8 operator channels,
	// plus the named alertQoS channel.
	if got := task.OperatorsDeployed(); got != 9 {
		t.Errorf("channels deployed = %d, want 9", got)
	}
	byPeer := map[string]int{}
	task.Plan.Walk(func(n *algebra.Node) { byPeer[n.Peer]++ })
	want := map[string]int{"a.com": 2, "b.com": 3, "meteo.com": 3, "p": 1}
	for peer, n := range want {
		if byPeer[peer] != n {
			t.Errorf("operators at %s = %d, want %d (plan:\n%s)", peer, byPeer[peer], n, task.Plan.Tree())
		}
	}
	if task.ResultChannel().String() != "alertQoS@p" {
		t.Errorf("result channel = %s", task.ResultChannel())
	}
}

// TestStreamReuseAcrossSubscriptions verifies the end-to-end C7 effect:
// a second identical subscription deploys nothing and still gets results.
func TestStreamReuseAcrossSubscriptions(t *testing.T) {
	sys, p := meteoWorld(t, DefaultConfig(), func(c int) bool { return c == 1 })
	t1, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	q := sys.MustAddPeer("q")
	t2, err := q.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Reuse == nil || t2.Reuse.NewOps != 0 {
		t.Fatalf("second subscription should reuse everything: %+v", t2.Reuse)
	}
	if t2.OperatorsDeployed() >= t1.OperatorsDeployed() {
		t.Errorf("t2 deployed %d ops, t1 %d", t2.OperatorsDeployed(), t1.OperatorsDeployed())
	}

	a := sys.Peer("a.com").Endpoint()
	if _, err := a.Invoke("meteo.com", "GetTemperature", nil); err != nil {
		t.Fatal(err)
	}
	// Both tasks observe the incident. Stop t1 (the producer) so eos
	// flows to t2's reused channel as well.
	t1.Stop()
	if got := len(t1.Results().Drain()); got != 1 {
		t.Errorf("t1 incidents = %d", got)
	}
	t2.Stop()
	if got := len(t2.Results().Drain()); got != 1 {
		t.Errorf("t2 incidents = %d", got)
	}
}

// TestDelegatedLocalTask runs the Section 3.4 delegated task on a.com:
// results published as channel X with b.com auto-subscribed.
func TestDelegatedLocalTask(t *testing.T) {
	sys, _ := meteoWorld(t, DefaultConfig(), func(int) bool { return true }) // all slow
	aPeer := sys.Peer("a.com")
	task, err := aPeer.Subscribe(`for $e in outCOM(<p>local</p>)
let $duration := $e.responseTimestamp - $e.callTimestamp
where $duration > 10 and $e.callMethod = "GetTemperature"
  and $e.callee = "http://meteo.com"
return $e
by channel X and subscribe(b.com, #X, X)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aPeer.Endpoint().Invoke("meteo.com", "GetTemperature", nil); err != nil {
		t.Fatal(err)
	}
	task.Stop()
	// b.com received the filtered alert in its #X queue.
	got := sys.Peer("b.com").Incoming("X").Drain()
	if len(got) != 1 {
		t.Fatalf("b.com #X items = %d", len(got))
	}
	if got[0].Tree.AttrOr("callMethod", "") != "GetTemperature" {
		t.Errorf("item = %s", got[0].Tree)
	}
	if task.ResultChannel().String() != "X@a.com" {
		t.Errorf("channel = %s", task.ResultChannel())
	}
}

// TestRSSMonitoringTask exercises the RSS alerter pipeline the paper
// reports testing ("We are currently testing our system by monitoring
// RSS feeds").
func TestRSSMonitoringTask(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mon := sys.MustAddPeer("monitor")
	portal := sys.MustAddPeer("portal.com")
	feed := &rss.Feed{Title: "news", Entries: []rss.Entry{{ID: "1", Title: "first"}}}
	portal.RegisterFeed("http://portal.com/feed", func() (*rss.Feed, error) { return feed.Clone(), nil })

	task, err := mon.Subscribe(`for $r in rssCOM(<p>portal.com</p>)
where $r.change = "add"
return <new entry="{$r.entryId}"/>
by publish as channel "newEntries" and email "ops@portal.com"`)
	if err != nil {
		t.Fatal(err)
	}
	// First poll after baseline: no changes yet.
	if n, err := sys.Poll(); err != nil || n != 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	feed.Entries = append(feed.Entries, rss.Entry{ID: "2", Title: "second"})
	feed.Entries[0].Title = "first-updated" // modify: filtered out
	if n, err := sys.Poll(); err != nil || n != 2 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	task.Stop()
	got := task.Results().Drain()
	if len(got) != 1 || got[0].Tree.AttrOr("entry", "") != "2" {
		t.Fatalf("results = %v", got)
	}
	if !strings.Contains(task.Mailbox.String(), "To: ops@portal.com") {
		t.Errorf("email not delivered: %q", task.Mailbox.String())
	}
}

// TestDynamicMembershipTask exercises inCOM($j): peers joining the DHT
// become monitored, peers leaving stop being monitored.
func TestDynamicMembershipTask(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mon := sys.MustAddPeer("monitor")
	task, err := mon.Subscribe(`for $j in areRegistered(<p>s.com/dht</p>)
for $c in inCOM($j)
return <seen callee="{$c.callee}" method="{$c.callMethod}"/>
by publish as channel "watch"`)
	if err != nil {
		t.Fatal(err)
	}

	// srv1 joins after the task is deployed: its in-calls are monitored.
	srv1, err := sys.AddPeer("srv1")
	if err != nil {
		t.Fatal(err)
	}
	srv1.Endpoint().Register("ping", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("pong"), nil
	}, nil)
	caller := sys.MustAddPeer("caller")
	waitFor(t, func() bool { return task.DynEventsProcessed() >= 2 }) // srv1 + caller joins
	if _, err := caller.Endpoint().Invoke("srv1", "ping", nil); err != nil {
		t.Fatal(err)
	}
	// srv1 leaves: subsequent calls are not monitored.
	if err := sys.Ring.Leave("srv1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return task.DynEventsProcessed() >= 3 })
	if _, err := caller.Endpoint().Invoke("srv1", "ping", nil); err != nil {
		t.Fatal(err)
	}

	task.Stop()
	got := task.Results().Drain()
	if len(got) != 1 {
		for _, it := range got {
			t.Logf("item: %s", it.Tree)
		}
		t.Fatalf("results = %d, want 1 (only the call while srv1 was joined)", len(got))
	}
	if got[0].Tree.AttrOr("callee", "") != "http://srv1" {
		t.Errorf("item = %s", got[0].Tree)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestSubscribeErrors(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	p := sys.MustAddPeer("p")
	if _, err := p.Subscribe(`garbage`); err == nil {
		t.Error("garbage subscription accepted")
	}
	if _, err := p.Subscribe(`for $r in rssCOM(<p>nosuchpeer</p>) return $r by channel X`); err == nil {
		t.Error("rss task against unknown peer accepted")
	}
}

func TestAXMLRepositoryTask(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mon := sys.MustAddPeer("monitor")
	store := sys.MustAddPeer("store.com")
	task, err := mon.Subscribe(`for $u in axmlCOM(<p>store.com</p>)
where $u.op = "update"
return <changed doc="{$u.doc}"/>
by publish as channel "changes"`)
	if err != nil {
		t.Fatal(err)
	}
	repo := store.Repo()
	repo.Put("catalog", xmltree.MustParse(`<c v="1"/>`))
	repo.Put("catalog", xmltree.MustParse(`<c v="2"/>`))
	repo.Delete("catalog")
	task.Stop()
	got := task.Results().Drain()
	if len(got) != 1 || got[0].Tree.AttrOr("doc", "") != "catalog" {
		t.Fatalf("results = %v", got)
	}
}

func TestWebPageMonitoringTask(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mon := sys.MustAddPeer("monitor")
	site := sys.MustAddPeer("site.com")
	page := xmltree.MustParse(`<html><p>v1</p></html>`)
	site.RegisterPage("http://site.com/", func() (*xmltree.Node, error) { return page.Clone(), nil })
	task, err := mon.Subscribe(`for $w in pageCOM(<p>site.com</p>)
return $w by publish as channel "pageChanges"`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Poll() // unchanged
	page.Children[0] = xmltree.MustParse(`<p>v2</p>`)
	if n, err := sys.Poll(); err != nil || n != 1 {
		t.Fatalf("poll n=%d err=%v", n, err)
	}
	task.Stop()
	got := task.Results().Drain()
	if len(got) != 1 || got[0].Tree.Child("delta") == nil {
		t.Fatalf("results = %v", got)
	}
}

func TestTrafficAccountedOnChannels(t *testing.T) {
	opts := DefaultConfig()
	opts.Reuse = false
	sys, p := meteoWorld(t, opts, func(int) bool { return true })
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Net.ResetTraffic() // ignore deployment-time noise
	a := sys.Peer("a.com").Endpoint()
	if _, err := a.Invoke("meteo.com", "GetTemperature", nil); err != nil {
		t.Fatal(err)
	}
	task.Stop()
	task.Results().Drain()
	tot := sys.Net.Totals()
	if tot.Bytes == 0 || tot.Messages == 0 {
		t.Errorf("no traffic recorded: %+v", tot)
	}
	// The a.com → b.com link (σ output into the union) must have carried
	// the matching alert.
	if sys.Net.Link("a.com", "b.com").Messages == 0 {
		t.Error("a.com→b.com channel leg silent")
	}
}

func TestTaskStopIdempotent(t *testing.T) {
	_, p := meteoWorld(t, DefaultConfig(), func(int) bool { return false })
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	task.Stop()
	task.Stop() // must not panic or deadlock
	task.Wait()
}

func TestSubscriptionDatabase(t *testing.T) {
	_, p := meteoWorld(t, DefaultConfig(), func(int) bool { return false })
	if len(p.Tasks()) != 0 {
		t.Fatal("fresh peer has tasks")
	}
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	defer task.Stop()
	tasks := p.Tasks()
	if len(tasks) != 1 || tasks[0].ID != task.ID {
		t.Errorf("tasks = %v", tasks)
	}
	if tasks[0].Sub.By[0].Name != "alertQoS" {
		t.Error("subscription AST not recorded")
	}
}

func TestChannelSubscriptionFromOutside(t *testing.T) {
	sys, p := meteoWorld(t, DefaultConfig(), func(int) bool { return true })
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	// Another peer subscribes to the published alertQoS channel directly.
	watcher := sys.MustAddPeer("watcher")
	sub, err := sys.SubscribeChannel(stream.Ref{StreamID: "alertQoS", PeerID: "p"}, watcher.Name())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Peer("a.com").Endpoint().Invoke("meteo.com", "GetTemperature", nil); err != nil {
		t.Fatal(err)
	}
	task.Stop()
	if got := len(sub.Queue.Drain()); got != 1 {
		t.Errorf("watcher got %d items", got)
	}
	if _, err := sys.SubscribeChannel(stream.Ref{StreamID: "nope", PeerID: "p"}, "watcher"); err == nil {
		t.Error("unknown channel accepted")
	}
}

func TestSystemAddPeerIdempotent(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	p1 := sys.MustAddPeer("x")
	p2 := sys.MustAddPeer("x")
	if p1 != p2 {
		t.Error("AddPeer not idempotent")
	}
	if len(sys.Peers()) != 1 {
		t.Errorf("peers = %v", sys.Peers())
	}
}

func TestGetTemperatureFromMultipleClients(t *testing.T) {
	// Both clients slow on every call: every call yields an incident and
	// the join must pair out-calls with in-calls correctly even when
	// interleaved.
	sys, p := meteoWorld(t, DefaultConfig(), func(int) bool { return true })
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Peer("a.com").Endpoint()
	b := sys.Peer("b.com").Endpoint()
	const rounds = 10
	for i := 0; i < rounds; i++ {
		if _, err := a.Invoke("meteo.com", "GetTemperature", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Invoke("meteo.com", "GetTemperature", nil); err != nil {
			t.Fatal(err)
		}
		sys.Net.Clock().Advance(time.Minute)
	}
	task.Stop()
	got := task.Results().Drain()
	if len(got) != 2*rounds {
		t.Fatalf("incidents = %d, want %d", len(got), 2*rounds)
	}
	counts := map[string]int{}
	for _, it := range got {
		counts[it.Tree.Child("client").InnerText()]++
	}
	if counts["http://a.com"] != rounds || counts["http://b.com"] != rounds {
		t.Errorf("counts = %v", counts)
	}
}

func TestComponentsListsAlertersAtMonitoredPeers(t *testing.T) {
	_, p := meteoWorld(t, DefaultConfig(), func(int) bool { return false })
	task, err := p.Subscribe(figure1)
	if err != nil {
		t.Fatal(err)
	}
	defer task.Stop()
	// meteo.com hosts the inCOM alerter, the join and Π per Figure 4 —
	// but Components introspects the *manager's* database. The plan's
	// operators placed at meteo.com are visible from the manager's task.
	var meteoOps []string
	task.Plan.Walk(func(n *algebra.Node) {
		if n.Peer == "meteo.com" {
			meteoOps = append(meteoOps, n.Op.String())
		}
	})
	want := fmt.Sprint([]string{"Alerter", "Join", "Restructure"})
	if fmt.Sprint(meteoOps) != want {
		t.Errorf("meteo ops = %v, want %v", meteoOps, want)
	}
}
