// Runtime re-chunking of aggregation trees: SplitInterior takes one hot
// merge interior and pushes its children down under two fresh key-routed
// sub-interiors, halving the hot host's fan-in while the tree keeps
// running. The move is exactly-once end to end: the old instance's
// state, input cursors and output position are captured as one
// consistent cut (the same Handle.Sync discipline checkpoints use), the
// new sub-interiors resume each child stream from the cut via the
// replay buffers, and the split interior restarts from the captured
// state on a replacement channel that continues the original sequence
// numbering — downstream cursors deduplicate any overlap, so the
// published output is byte-identical to the unsplit run.
package peer

import (
	"fmt"
	"time"

	"p2pm/internal/aggtree"
	"p2pm/internal/algebra"
	"p2pm/internal/operators"
	"p2pm/internal/stream"
)

// SplitEvent reports one completed interior split.
type SplitEvent struct {
	TaskID   string
	Operator string   // label of the re-chunked interior
	Peer     string   // its (unchanged) host
	Keys     []string // routing keys of the created sub-interiors
	Hosts    []string // their DHT-derived hosts, parallel to Keys
	At       time.Duration
}

// SplitInterior re-chunks the aggregation-tree interior identified by
// its routing key inside one task: direct actuation for tests and
// operators; the load-driven controller (startRechunkController) calls
// the same machinery. Requires the replay layer — without retained
// input history the children could not resume from the cut.
func (s *System) SplitInterior(t *Task, aggKey string) (SplitEvent, error) {
	if aggKey == "" {
		return SplitEvent{}, fmt.Errorf("peer: only key-routed interiors split (the Final root stays put)")
	}
	p := s.Peer(t.Manager)
	if p == nil || !s.Net.Alive(t.Manager) {
		return SplitEvent{}, fmt.Errorf("peer: task %s has no live manager", t.ID)
	}
	var target *algebra.Node
	t.Plan.Walk(func(n *algebra.Node) {
		if n.AggKey == aggKey {
			target = n
		}
	})
	if target == nil {
		return SplitEvent{}, fmt.Errorf("peer: no interior %q in task %s", aggKey, t.ID)
	}
	return p.splitInterior(t, target, s.Net.Clock().Now())
}

// splitInterior is the split transaction. Ordering mirrors
// redeployOperator: downstream consumers re-bind to the replacement
// channel BEFORE any old input queue closes (closing them makes the old
// instance flush and publish EOS — which must land in the abandoned
// channel, not in a queue someone still reads), then the moved children
// re-subscribe under the new sub-interiors from the cut, and finally
// the interior restarts from its captured state. A CheckpointNow at the
// end makes the new shape durable immediately: the pre-split checkpoint
// has the old arity (the loader's len(In) guard would discard it), so a
// crash in the gap would otherwise cold-restart the interior and lose
// the merged pre-cut state.
func (p *Peer) splitInterior(t *Task, n *algebra.Node, at time.Duration) (SplitEvent, error) {
	s := p.sys
	if !s.replayOn() {
		return SplitEvent{}, fmt.Errorf("peer: SplitInterior needs the replay layer")
	}
	if !s.Net.Alive(n.Peer) {
		// A dead host is failover's problem: repair re-derives the
		// interior's placement and restores its checkpoint; splitting a
		// corpse would capture nothing.
		return SplitEvent{}, fmt.Errorf("peer: interior host %s is down", n.Peer)
	}
	inst := t.procs[n]
	if inst == nil {
		return SplitEvent{}, fmt.Errorf("peer: interior %s is not running", n.Label())
	}
	out, ok := s.Channel(t.refs[n])
	if !ok {
		return SplitEvent{}, fmt.Errorf("peer: interior %s has no output channel", n.Label())
	}

	// 1. Capture the cut: state, per-input consumed positions and output
	// sequence, serialized with the processing loop so they are mutually
	// consistent; plus the undelivered output tail, which must survive
	// the old channel's abandonment.
	oldInputs := append([]*algebra.Node(nil), n.Inputs...)
	rec := &ckptRec{In: make([]uint64, len(oldInputs))}
	inst.handle.Sync(func() {
		for i := range oldInputs {
			rec.In[i] = inst.handle.Consumed(i)
		}
		rec.OutSeq = out.Seq()
		if sn, ok := inst.proc.(operators.Snapshotter); ok {
			rec.State = sn.Snapshot()
		}
	})
	if low := s.lowWater(out.Ref(), rec.OutSeq); low <= rec.OutSeq {
		rec.Tail, _ = out.Replay(low, rec.OutSeq)
	}
	cut := make(map[*algebra.Node]uint64, len(oldInputs))
	for i, c := range oldInputs {
		cut[c] = rec.In[i]
	}

	// 2. Re-chunk the plan under a fresh tree identity (unique per split,
	// so the new routing keys collide with nothing placed before), then
	// pin the new interiors to their DHT-derived homes.
	s.mu.Lock()
	s.splitSeq++
	id := fmt.Sprintf("%s.s%d", t.ID, s.splitSeq)
	s.mu.Unlock()
	created := aggtree.Split(n, id, aggtree.Config{Degree: s.aggDegree()})
	if len(created) == 0 {
		return SplitEvent{}, fmt.Errorf("peer: interior %s is too narrow to split (fan-in %d)", n.Label(), len(oldInputs))
	}
	desired := s.AggPlacements(t.Plan)
	for _, m := range created {
		if h := desired[m.AggKey]; h != "" {
			m.Peer = h
		}
	}

	// 3. Open the replacement output continuing the original numbering
	// and re-home every downstream consumer — this task's and, for shared
	// interiors, other tasks' — before anything can close.
	oldRef := t.refs[n]
	origRef, hasOrig := t.origRefs[n]
	if !hasOrig {
		origRef = oldRef
	}
	newOut := s.allocChannel(t, n.Peer, s.nextStreamID(n.Peer))
	newOut.SeedSeq(rec.OutSeq)
	newOut.SeedBuffer(rec.Tail)
	for _, b := range t.bindings {
		if b.child == n {
			p.rebind(t, b, newOut)
		}
	}
	for _, cp := range s.livePeers() {
		for _, ct := range sortedTasks(cp) {
			if ct == t {
				continue
			}
			for _, b := range ct.bindings {
				if b.src == nil || b.src.Ref() != oldRef {
					continue
				}
				cp.rebind(ct, b, newOut)
				if b.child != nil && b.child.Op == algebra.OpChannelIn && b.child.Channel == oldRef {
					b.child.Channel = newOut.Ref()
				}
				s.link.CountTransfer(b.consumerPeer, n.Peer, ctrlMsgBytes)
			}
		}
	}
	s.severForwardersFrom(oldRef)

	// 4. Start each sub-interior: the moved children's bindings change
	// consumer and resume from the cut (closing the old instance's
	// readers as a side effect — once the last closes, the old instance
	// flushes into the now-abandoned old channel and terminates). The
	// sub-interior starts with empty state: everything up to the cut
	// lives in the parent's captured snapshot, everything after replays
	// into the sub-interior. SeedConsumed pins the cut so a checkpoint
	// sweep racing the replay cannot record the cursors as 0.
	ev := SplitEvent{TaskID: t.ID, Operator: n.Label(), Peer: n.Peer, At: at}
	for _, m := range created {
		mOut := s.allocChannel(t, m.Peer, s.nextStreamID(m.Peer))
		t.refs[m], t.origRefs[m] = mOut.Ref(), mOut.Ref()
		queues := make([]*stream.Queue, len(m.Inputs))
		for i, c := range m.Inputs {
			var b *inputBinding
			for _, cand := range t.bindings {
				if cand.consumer == n && cand.child == c {
					b = cand
					break
				}
			}
			if b == nil {
				return ev, fmt.Errorf("peer: no binding for child %s of %s", c.Label(), n.Label())
			}
			ch, ok := s.nodeChannel(t, c)
			if !ok {
				return ev, fmt.Errorf("peer: input channel of %s not found", m.Label())
			}
			b.consumer = m
			queues[i] = p.resubscribeInput(t, b, ch, m.Peer, cut[c]+1)
		}
		proc, err := p.makeProc(m)
		if err != nil {
			return ev, err
		}
		h := operators.Run(proc, queues, operators.ChannelPublish(mOut))
		for i, c := range m.Inputs {
			h.SeedConsumed(i, cut[c])
		}
		t.handles = append(t.handles, h)
		t.procs[m] = &procInstance{proc: proc, handle: h}
		ev.Keys = append(ev.Keys, m.AggKey)
		ev.Hosts = append(ev.Hosts, m.Peer)
	}

	// 5. Restart the interior over the sub-interior streams, restored
	// from the captured state. The sub-interior channels are fresh and
	// unpublished, so plain from-now subscriptions lose nothing.
	mb := make([]*inputBinding, 0, len(created))
	for _, m := range created {
		mCh, ok := s.Channel(t.refs[m])
		if !ok {
			return ev, fmt.Errorf("peer: sub-interior channel of %s not found", m.Label())
		}
		mb = append(mb, p.subscribeInput(t, n, m, mCh, n.Peer))
	}
	proc, err := p.makeProc(n)
	if err != nil {
		return ev, err
	}
	if rec.State != nil {
		if sn, ok := proc.(operators.Snapshotter); ok {
			if err := sn.Restore(rec.State); err != nil {
				return ev, fmt.Errorf("peer: restoring %s across the split: %w", n.Label(), err)
			}
		}
	}
	queues := make([]*stream.Queue, len(mb))
	for i, b := range mb {
		queues[i] = b.queue
	}
	h := operators.Run(proc, queues, operators.ChannelPublish(newOut))
	t.handles = append(t.handles, h)
	t.procs[n] = &procInstance{proc: proc, handle: h}
	t.refs[n] = newOut.Ref()
	s.markStale(oldRef, newOut.Ref())
	// Chain the replacement to the stream's original identity so future
	// subscriptions and repairs find it, like any migration.
	s.DB.PublishReplica(origRef, newOut.Ref()) //nolint:errcheck // ring is non-empty here
	if oldRef != origRef {
		s.DB.PublishReplica(oldRef, newOut.Ref()) //nolint:errcheck // same ring
	}
	s.link.CountTransfer(t.Manager, n.Peer, ctrlMsgBytes)

	// 6. Make the new shape durable now: the pre-split checkpoint's arity
	// no longer matches, so until this sweep lands a crash would
	// cold-restart the interior without its pre-cut state.
	s.CheckpointNow()
	s.mu.Lock()
	s.splitLog = append(s.splitLog, ev)
	s.mu.Unlock()

	// 7. Re-derive placement tree-wide. The split pinned only its own
	// sub-interiors to their DHT homes, but adding keys moves the
	// bounded-load running caps, so other interiors' derived homes may
	// have shifted; migrate them now instead of leaving the invariant
	// broken until the next failover.
	s.RebalanceAggTrees(s.Net.Clock().Now())
	return ev, nil
}

// SplitEvents returns the audit log of every completed interior split,
// whether actuated directly or by the re-chunking controller.
func (s *System) SplitEvents() []SplitEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SplitEvent(nil), s.splitLog...)
}
