package peer

import (
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/telemetry"
)

// sysMetrics are a System's registered telemetry handles. A nil
// *sysMetrics (telemetry disabled, the default) keeps every seam at
// its uninstrumented cost.
type sysMetrics struct {
	reg *telemetry.Registry

	// Step loop: wall-clock time one Step takes (detectors, sweeps,
	// checkpoints, hooks) — the latency the self-adaptive controllers
	// add to the virtual-time drive.
	steps  *telemetry.Counter
	stepNs *telemetry.Histogram

	// Stream layer, updated pull-style at snapshot time.
	channels       *telemetry.Gauge
	queueDepth     *telemetry.Gauge
	replayBuffered *telemetry.Gauge
	replayTrimmed  *telemetry.Gauge
	replayedItems  *telemetry.Gauge

	// Aggregation-tree ingest, folded from AggLoad (the programmatic
	// snapshot keeps its API; this is the same data on the registry).
	aggMax       *telemetry.Gauge
	aggMeanMilli *telemetry.Gauge
}

// instrumentTelemetry wires the system into its configured registry:
// simnet and DHT counters, the Step histogram, the pull-style stream
// and aggregation collectors, and (with an Addr) the HTTP endpoint.
// Called from NewSystem after normalization; no-op when telemetry is
// disabled.
func (s *System) instrumentTelemetry() error {
	tc := s.cfg.Telemetry
	if !tc.enabled() {
		return nil
	}
	reg := tc.Registry
	s.Net.Instrument(reg)
	s.Ring.Instrument(reg)
	s.tele = &sysMetrics{
		reg:    reg,
		steps:  reg.Counter("system_steps_total"),
		stepNs: reg.Histogram("system_step_ns", telemetry.ExpBounds(1000, 10, 8)),

		channels:       reg.Gauge("stream_channels"),
		queueDepth:     reg.Gauge("stream_queue_depth"),
		replayBuffered: reg.Gauge("stream_replay_buffered"),
		replayTrimmed:  reg.Gauge("stream_replay_trimmed"),
		replayedItems:  reg.Gauge("stream_replayed_items"),

		aggMax:       reg.Gauge("agg_interior_ingest_max"),
		aggMeanMilli: reg.Gauge("agg_interior_ingest_mean_milli"),
	}
	reg.OnCollect(s.collectTelemetry)
	if tc.Addr != "" {
		srv, err := telemetry.Serve(tc.Addr, reg)
		if err != nil {
			return err
		}
		s.teleSrv = srv
	}
	return nil
}

// collectTelemetry is the snapshot-time hook: it refreshes the
// pull-style gauges from the live system. Registration inside the hook
// is fine (snapshots are not a hot path) and the registry's
// cardinality guard bounds the per-peer series.
func (s *System) collectTelemetry() {
	t := s.tele
	s.mu.Lock()
	chans := make([]*stream.Channel, 0, len(s.channels))
	for _, c := range s.channels {
		chans = append(chans, c)
	}
	s.mu.Unlock()
	depth, buffered, trimmed := 0, 0, uint64(0)
	for _, c := range chans {
		depth += c.QueueDepth()
		buffered += c.ReplayLen()
		trimmed += c.ReplayTrimmed()
	}
	t.channels.Set(int64(len(chans)))
	t.queueDepth.Set(int64(depth))
	t.replayBuffered.Set(int64(buffered))
	t.replayTrimmed.Set(int64(trimmed))
	t.replayedItems.Set(int64(s.ReplayedItems()))

	load := s.AggLoad()
	for peer, items := range load.ByPeer() {
		t.reg.Gauge("agg_ingest_items", telemetry.L("peer", peer)).Set(int64(items))
	}
	max, mean := load.Interiors().MaxMean()
	t.aggMax.Set(int64(max))
	t.aggMeanMilli.Set(int64(mean * 1000))
}

// TelemetryAddr returns the bound address of the system's metrics
// endpoint ("" when Telemetry.Addr was not configured). With ":0" this
// is where the free port landed.
func (s *System) TelemetryAddr() string {
	if s.teleSrv == nil {
		return ""
	}
	return s.teleSrv.Addr
}

// CloseTelemetry shuts down the metrics endpoint, if one is serving.
// The registry and its handles keep working.
func (s *System) CloseTelemetry() error {
	if s.teleSrv == nil {
		return nil
	}
	return s.teleSrv.Close()
}

// observeStep records one Step's wall-clock latency.
func (s *System) observeStep(start time.Time) {
	if s.tele == nil {
		return
	}
	s.tele.steps.Inc()
	s.tele.stepNs.Observe(time.Since(start).Nanoseconds())
}

// gossipMetrics are one detector's registered telemetry handles.
type gossipMetrics struct {
	probes     *telemetry.Counter
	indirect   *telemetry.Counter
	suspicions *telemetry.Counter
	deaths     *telemetry.Counter
	healthMax  *telemetry.Gauge
	suspects   *telemetry.Gauge
}

func newGossipMetrics(reg *telemetry.Registry) *gossipMetrics {
	return &gossipMetrics{
		probes:     reg.Counter("gossip_probes_total"),
		indirect:   reg.Counter("gossip_indirect_probes_total"),
		suspicions: reg.Counter("gossip_suspicions_total"),
		deaths:     reg.Counter("gossip_deaths_total"),
		healthMax:  reg.Gauge("gossip_health_max"),
		suspects:   reg.Gauge("gossip_suspects"),
	}
}
