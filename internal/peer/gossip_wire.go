package peer

import (
	"p2pm/internal/wire"
)

// Wire glue for the SWIM detector: gossipUpdate is the in-memory
// piggyback record (with its epidemic budget), wire.GossipUpdate is
// what crosses a Transport. The mapping drops the budget — remaining
// transmissions are a local dissemination concern, never a protocol
// fact — and pins the status enums to the wire constants so the two
// can evolve independently without silently renumbering each other.

// toWireStatus maps a SWIM member state to its wire constant.
func toWireStatus(s gossipStatus) wire.Status {
	switch s {
	case gossipAlive:
		return wire.StatusAlive
	case gossipSuspect:
		return wire.StatusSuspect
	default:
		return wire.StatusDead
	}
}

// fromWireStatus maps a wire status back; StatusLeft (a voluntary
// departure, which this detector does not model separately) arrives as
// dead, matching how the membership layer treats departed peers.
func fromWireStatus(s wire.Status) gossipStatus {
	switch s {
	case wire.StatusAlive:
		return gossipAlive
	case wire.StatusSuspect:
		return gossipSuspect
	default:
		return gossipDead
	}
}

// toWireUpdates renders piggybacked updates for a probe/ack frame.
func toWireUpdates(ups []gossipUpdate) []wire.GossipUpdate {
	if len(ups) == 0 {
		return nil
	}
	out := make([]wire.GossipUpdate, len(ups))
	for i, u := range ups {
		out[i] = wire.GossipUpdate{Peer: u.peer, Status: toWireStatus(u.status), Inc: u.inc}
	}
	return out
}

// fromWireUpdates parses received piggybacks into local updates with a
// fresh epidemic budget (the receiver re-disseminates on its own
// schedule, exactly as SWIM's infection-style dissemination requires).
func fromWireUpdates(ups []wire.GossipUpdate, budget int) []gossipUpdate {
	if len(ups) == 0 {
		return nil
	}
	out := make([]gossipUpdate, len(ups))
	for i, u := range ups {
		out[i] = gossipUpdate{peer: u.Peer, status: fromWireStatus(u.Status), inc: u.Inc, left: budget}
	}
	return out
}
