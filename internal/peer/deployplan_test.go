package peer

import (
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/p2pml"
	"p2pm/internal/xmltree"
)

// TestDeployPlanWithGroup builds a plan by hand — alerter → windowed
// Group → publisher — the statistics-gathering shape the Edos motivation
// needs (query rates per mirror), for which P2PML has no clause.
func TestDeployPlanWithGroup(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	noc := sys.MustAddPeer("noc")
	m := sys.MustAddPeer("mirror-0")
	m.Endpoint().Register("GetPackage", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("pkg"), nil
	}, nil)
	c := sys.MustAddPeer("client")

	alerter := algebra.NewAlerter("inCOM", "ws-in", "mirror-0", "e", nil)
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: algebra.AnyPeer,
		Inputs: []*algebra.Node{alerter},
		Schema: []string{"e"},
		Group:  &algebra.GroupSpec{KeyAttr: "caller", Window: "1m"},
	}
	pub := &algebra.Node{
		Op: algebra.OpPublish, Peer: algebra.AnyPeer,
		Inputs:  []*algebra.Node{group},
		Publish: &algebra.PublishSpec{ChannelID: "rates"},
	}
	plan := algebra.Optimize(pub, algebra.DefaultOptions("noc"))

	task, err := noc.DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Six calls in the first minute, two in the second.
	for i := 0; i < 6; i++ {
		c.Endpoint().Invoke("mirror-0", "GetPackage", nil)
		sys.Net.Clock().Advance(5 * time.Second)
	}
	sys.Net.Clock().Advance(time.Minute)
	for i := 0; i < 2; i++ {
		c.Endpoint().Invoke("mirror-0", "GetPackage", nil)
		sys.Net.Clock().Advance(time.Second)
	}
	task.Stop()
	got := task.Results().Drain()
	if len(got) != 2 {
		for _, it := range got {
			t.Logf("group: %s", it.Tree)
		}
		t.Fatalf("groups = %d, want 2 windows", len(got))
	}
	if got[0].Tree.AttrOr("count", "") != "6" || got[1].Tree.AttrOr("count", "") != "2" {
		t.Errorf("counts = %s / %s", got[0].Tree, got[1].Tree)
	}
	if got[0].Tree.AttrOr("key", "") != "http://client" {
		t.Errorf("key = %s", got[0].Tree.AttrOr("key", ""))
	}
}

func TestDeployPlanValidation(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	p := sys.MustAddPeer("p")
	if _, err := p.DeployPlan(nil); err == nil {
		t.Error("nil plan accepted")
	}
	alerter := algebra.NewAlerter("inCOM", "ws-in", "m", "e", nil)
	if _, err := p.DeployPlan(alerter); err == nil {
		t.Error("non-publish root accepted")
	}
	pub := &algebra.Node{
		Op: algebra.OpPublish, Peer: algebra.AnyPeer,
		Inputs:  []*algebra.Node{alerter},
		Publish: &algebra.PublishSpec{ChannelID: "x"},
	}
	if _, err := p.DeployPlan(pub); err == nil {
		t.Error("unplaced plan accepted")
	}
}

// TestDeployPlanEquivalentToSubscribe: deploying the optimized plan of a
// parsed subscription behaves like Subscribe (minus the reuse pass).
func TestDeployPlanEquivalentToSubscribe(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mgr := sys.MustAddPeer("mgr")
	m := sys.MustAddPeer("m.com")
	m.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	c := sys.MustAddPeer("c.com")

	sub := p2pml.MustParse(`for $e in inCOM(<p>m.com</p>)
where $e.callMethod = "Q"
return <q id="{$e.callId}"/> by publish as channel "qs"`)
	plan, err := algebra.Compile(sub)
	if err != nil {
		t.Fatal(err)
	}
	plan = algebra.Optimize(plan, algebra.DefaultOptions("mgr"))
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	c.Endpoint().Invoke("m.com", "Q", nil)
	task.Stop()
	if got := len(task.Results().Drain()); got != 1 {
		t.Errorf("results = %d", got)
	}
}
