// SWIM-style gossip failure detection (Das et al. 2002, adapted to the
// virtual clock): every peer probes a random member each protocol
// period, escalates to indirect probes through k proxies before
// suspecting, and piggybacks alive/suspect/dead membership updates with
// incarnation numbers on the probe traffic. A suspected peer that is
// still alive learns of the suspicion from the gossip and refutes it by
// bumping its incarnation. The supervisor consumes a quorum-confirmed
// aggregate of the per-peer views, so no single peer's blindness — the
// home detector's failure mode — can declare a death (or survive one
// undetected): detection keeps working when any individual peer,
// including the former detector home, crashes or is partitioned away.
//
// Detection traffic is O(1) per peer per period (one probe round trip
// plus at most k indirect relays, each carrying a bounded piggyback),
// instead of the home detector's O(n) heartbeats converging on one
// hotspot.
package peer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// GossipOptions configures the gossip failure detector.
type GossipOptions struct {
	// Seed drives probe-target and proxy selection. The protocol is
	// deterministic on the virtual clock for a fixed seed: same seed,
	// same membership, same fault schedule ⇒ identical suspect/dead
	// timelines. Default 1.
	Seed int64
	// ProbeInterval is one protocol period: each member probes Fanout
	// random other members per period. Default 1s.
	ProbeInterval time.Duration
	// Fanout is how many distinct members each peer probes per period.
	// SWIM's classic setting is 1; raising it cuts the tail of the
	// time-to-first-probe distribution (and so worst-case detection
	// latency) linearly at linearly more probe traffic. Default 1.
	Fanout int
	// ProbeTimeout bounds the round-trip a probe (direct, or one
	// indirect relay path) may take before it counts as failed; links
	// slower than this look dead, the classic accuracy/latency
	// trade-off. Default 500ms.
	ProbeTimeout time.Duration
	// IndirectProxies is k, the number of random proxies asked to probe
	// the target on the prober's behalf before it is suspected.
	// Default 2.
	IndirectProxies int
	// Suspicion is how long a member may stay suspected in a view
	// without an alive refutation before that view declares it dead.
	// Default 3×ProbeInterval.
	Suspicion time.Duration
	// Quorum is how many independent views must declare a member dead
	// before the aggregate (what the supervisor acts on) confirms the
	// death. It is clamped to the number of members able to vote. A
	// quorum ≥ 2 is what makes one isolated peer's false positives
	// harmless. Default 2.
	Quorum int
	// ProbeBytes is the accounted wire size of one probe or ack without
	// piggyback. Default 48.
	ProbeBytes int
	// PiggybackBytes is the accounted size of one piggybacked
	// membership update. Default 24.
	PiggybackBytes int
	// MaxPiggyback bounds how many updates ride on one message.
	// Default 6.
	MaxPiggyback int
	// RetransmitFactor is λ: each update is piggybacked on at most
	// λ·⌈log₂(n+1)⌉ outgoing messages per view, the epidemic
	// dissemination budget. Default 3.
	RetransmitFactor int
	// Adaptive enables Lifeguard-style local health awareness (Dadgar
	// et al. 2018): each view keeps a health score in [0, HealthMax],
	// raised when its own probes of live-believed members fail or when
	// it learns it is itself being suspected, lowered when a probe
	// succeeds within the base timeout while the view holds no open
	// suspicion. The view's probe timeout and suspicion window scale by
	// (1 + health), so a node whose own links are slow grows
	// conservative about declaring others dead — instead of flooding
	// the gossip with false suspicions — while a healthy node keeps the
	// base detection latency for true crashes. Default off.
	Adaptive bool
	// HealthMax caps the health score and so the timeout multiplier
	// (1 + HealthMax). Default 8.
	HealthMax int
}

func (o GossipOptions) withDefaults() GossipOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.Fanout <= 0 {
		o.Fanout = 1
	}
	if o.IndirectProxies <= 0 {
		o.IndirectProxies = 2
	}
	if o.Suspicion <= 0 {
		o.Suspicion = 3 * o.ProbeInterval
	}
	if o.Quorum <= 0 {
		o.Quorum = 2
	}
	if o.ProbeBytes <= 0 {
		o.ProbeBytes = 48
	}
	if o.PiggybackBytes <= 0 {
		o.PiggybackBytes = 24
	}
	if o.MaxPiggyback <= 0 {
		o.MaxPiggyback = 6
	}
	if o.RetransmitFactor <= 0 {
		o.RetransmitFactor = 3
	}
	if o.HealthMax <= 0 {
		o.HealthMax = 8
	}
	return o
}

// gossipStatus is the SWIM member state in one view.
type gossipStatus uint8

const (
	gossipAlive gossipStatus = iota
	gossipSuspect
	gossipDead
)

func (s gossipStatus) String() string {
	switch s {
	case gossipAlive:
		return "alive"
	case gossipSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// memberInfo is one view's knowledge about one other member.
type memberInfo struct {
	status gossipStatus
	inc    uint64        // highest incarnation this view has seen
	since  time.Duration // virtual time the current status was entered
	own    bool          // this view raised the current suspicion itself
	spent  bool          // the one failed-confirmation window extension was used
}

// gossipUpdate is one piggybacked membership statement.
type gossipUpdate struct {
	peer   string
	status gossipStatus
	inc    uint64
	left   int // remaining transmissions (epidemic budget)
}

// gossipView is one peer's local membership view: its own incarnation,
// what it believes about every other member, and the updates it still
// owes the gossip stream.
type gossipView struct {
	self       string
	inc        uint64 // own incarnation, bumped to refute suspicion
	members    map[string]*memberInfo
	queue      []gossipUpdate // pending dissemination, round-robin
	nextProbe  time.Duration  // virtual time of the next protocol period
	health     int            // Lifeguard local health score (adaptive mode)
	fastStreak int            // consecutive prompt probes since the last bump (adaptive mode)
}

// GossipDetector runs the protocol for every member on the shared
// virtual clock: System.Step ticks it, one probe round per member per
// ProbeInterval, deterministically (sorted member order, seeded RNG).
// It implements FailureDetector; the supervisor sees only the
// quorum-confirmed aggregate.
type GossipDetector struct {
	sys  *System
	opts GossipOptions

	mu        sync.Mutex
	rng       *rand.Rand
	views     map[string]*gossipView
	order     []string        // sorted member names
	confirmed map[string]bool // aggregate: quorum-confirmed dead
	onDeath   []func(peer string, at time.Duration)
	onRecover []func(peer string, at time.Duration)

	// probes/indirect/piggybacked count protocol activity for the
	// tuning and traffic experiments.
	probes      uint64
	indirect    uint64
	piggybacked uint64

	tele *gossipMetrics // nil unless the System's telemetry is on
}

// StartGossipDetector starts the gossip protocol over every currently
// registered peer. It is ticked by System.Step like any detector.
// Zero option fields fall back to the system Config's Gossip section
// before the protocol defaults apply, so tuning set at construction
// reaches detectors started later without repeating it per call.
func (s *System) StartGossipDetector(opts GossipOptions) *GossipDetector {
	gc := s.Config().Gossip
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = gc.ProbeInterval
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = gc.ProbeTimeout
	}
	if opts.Suspicion <= 0 {
		opts.Suspicion = gc.Suspicion
	}
	opts.Adaptive = opts.Adaptive || gc.Adaptive
	if opts.HealthMax <= 0 {
		opts.HealthMax = gc.HealthMax
	}
	g := &GossipDetector{
		sys:       s,
		opts:      opts.withDefaults(),
		views:     make(map[string]*gossipView),
		confirmed: make(map[string]bool),
	}
	g.rng = rand.New(rand.NewSource(g.opts.Seed))
	if s.tele != nil {
		g.tele = newGossipMetrics(s.tele.reg)
	}
	for _, p := range s.Peers() {
		g.addMember(p)
	}
	s.mu.Lock()
	s.detectors = append(s.detectors, g)
	s.mu.Unlock()
	return g
}

// Watch adds a peer to the member set by omniscient pre-registration:
// every view learns about it instantly and it gets a view of its own.
// This is the static-membership setup path; peers arriving at runtime
// go through Join, which disseminates the arrival over the gossip
// traffic instead.
func (g *GossipDetector) Watch(peer string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addMember(peer)
}

// joinPrecheck validates a join without changing any state: the seed
// must be a live gossip member the joiner can talk to. System.JoinPeer
// runs it before admitting the peer anywhere, so a rejected join never
// leaves half-registered membership behind. The partition check stands
// in for reachability: a rejoining (still-down) peer's node comes up
// between this check and the Join itself, but its partition group does
// not change.
func (g *GossipDetector) joinPrecheck(name, seed string) error {
	if name == seed {
		return fmt.Errorf("peer: %s cannot seed its own join", name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.views[seed] == nil {
		return fmt.Errorf("peer: join seed %s is not a gossip member", seed)
	}
	if !g.sys.Net.Alive(seed) || g.sys.Net.Partitioned(name, seed) {
		return fmt.Errorf("peer: join seed %s is unreachable from %s", seed, name)
	}
	return nil
}

// Join runs the membership join protocol for one peer: it contacts the
// seed member (paying the network, so an unreachable seed fails the
// join), receives a bootstrap copy of the seed's membership view, and
// is disseminated to every other view via piggybacked gossip — no
// pre-registration anywhere. A dead member rejoining (a recovered or
// replaced crash victim) adopts an incarnation above every death rumor
// the seed has seen, so its alive statement outranks the stale
// declarations wherever they still circulate; any higher-incarnation
// rumor it meets later is refuted by the standard self-defense bump.
func (g *GossipDetector) Join(name, seed string) error {
	if err := g.joinPrecheck(name, seed); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	sv := g.views[seed]
	now := g.sys.Net.Clock().Now()
	v := g.views[name]
	if v == nil {
		v = &gossipView{
			self:      name,
			members:   make(map[string]*memberInfo),
			nextProbe: now + g.opts.ProbeInterval,
		}
		g.views[name] = v
		g.order = append(g.order, name)
		sort.Strings(g.order)
	} else {
		// Rejoin: the protocol loop restarts fresh — stale dissemination
		// debt from the previous life must not ride the new one.
		v.nextProbe = now + g.opts.ProbeInterval
		v.queue = nil
	}
	// The join contact and the bootstrap transfer are accounted like any
	// protocol message.
	g.sys.link.CountTransfer(name, seed, g.opts.ProbeBytes+g.opts.MaxPiggyback*g.opts.PiggybackBytes)
	// Outrank every rumor the seed holds about a previous life.
	if m := sv.members[name]; m != nil && m.inc >= v.inc {
		v.inc = m.inc + 1
	}
	// Bootstrap: the joiner starts from the seed's member list and
	// opinions (minus anything about itself).
	for other, m := range sv.members {
		if other == name || v.members[other] != nil {
			continue
		}
		v.members[other] = &memberInfo{status: m.status, inc: m.inc, since: now}
	}
	if v.members[seed] == nil {
		v.members[seed] = &memberInfo{status: gossipAlive, inc: sv.inc, since: now}
	}
	// Mutual introduction, then epidemic dissemination: both sides queue
	// the alive statement, every message leaving either view carries it,
	// and receivers that never heard of the joiner learn it from the
	// piggyback (applyUpdate's discovery path).
	if m := sv.members[name]; m != nil {
		m.status, m.inc, m.since = gossipAlive, v.inc, now
	} else {
		sv.members[name] = &memberInfo{status: gossipAlive, inc: v.inc, since: now}
	}
	alive := gossipUpdate{peer: name, status: gossipAlive, inc: v.inc}
	g.enqueue(sv, alive)
	g.enqueue(v, alive)
	return nil
}

// Leave processes a graceful departure announcement: every view that
// knows the member records it dead at a fresh incarnation immediately —
// no probe failure, no suspicion window, no refutation race (the leaver
// itself outranks its own alive statements) — and the declaration is
// queued for epidemic dissemination so views that were partitioned away
// learn it from the gossip. The aggregate is updated directly without
// firing a death event: a graceful departure is already handled
// (System.LeavePeer migrated the work), so the supervisor must not run
// crash repair on top. A later rejoin adopts an incarnation above the
// departure statement through the standard Join path.
func (g *GossipDetector) Leave(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.views[name]
	if v == nil {
		return
	}
	v.inc++ // the departure statement outranks every alive rumor about this life
	v.queue = nil
	now := g.sys.Net.Clock().Now()
	for _, owner := range g.order {
		if owner == name {
			continue
		}
		ov := g.views[owner]
		if m := ov.members[name]; m != nil {
			m.status, m.inc, m.since = gossipDead, v.inc, now
			g.enqueue(ov, gossipUpdate{peer: name, status: gossipDead, inc: v.inc})
		}
	}
	g.confirmed[name] = true
}

// addMember registers a member (caller holds no lock at start time, the
// lock during Watch; both are single-threaded setup paths).
func (g *GossipDetector) addMember(name string) {
	if _, ok := g.views[name]; ok {
		return
	}
	now := g.sys.Net.Clock().Now()
	v := &gossipView{
		self:      name,
		members:   make(map[string]*memberInfo),
		nextProbe: now + g.opts.ProbeInterval,
	}
	for _, other := range g.order {
		v.members[other] = &memberInfo{status: gossipAlive, since: now}
		g.views[other].members[name] = &memberInfo{status: gossipAlive, since: now}
	}
	g.views[name] = v
	g.order = append(g.order, name)
	sort.Strings(g.order)
}

// OnDeath registers a callback fired (outside the lock) when the
// aggregate confirms a member dead.
func (g *GossipDetector) OnDeath(f func(peer string, at time.Duration)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onDeath = append(g.onDeath, f)
}

// OnRecover registers a callback fired when a confirmed-dead member is
// quorum-refuted alive again.
func (g *GossipDetector) OnRecover(f func(peer string, at time.Duration)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onRecover = append(g.onRecover, f)
}

// Suspects returns the members the aggregate currently confirms dead,
// sorted — the quorum view the supervisor acts on.
func (g *GossipDetector) Suspects() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for p, dead := range g.confirmed {
		if dead {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// MembersOf reports the members one view currently knows about, sorted
// — the join-dissemination introspection (how far has the arrival
// spread?).
func (g *GossipDetector) MembersOf(owner string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.views[owner]
	if v == nil {
		return nil
	}
	return sortedMembers(v)
}

// ViewOf reports one member's local opinion of another (diagnostics and
// tests): status name and incarnation.
func (g *GossipDetector) ViewOf(owner, about string) (string, uint64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.views[owner]
	if v == nil {
		return "", 0, false
	}
	m := v.members[about]
	if m == nil {
		return "", 0, false
	}
	return m.status.String(), m.inc, true
}

// ProtocolCounters returns (direct probes sent, indirect probe relays,
// piggybacked updates) so experiments can report the detection cost.
func (g *GossipDetector) ProtocolCounters() (probes, indirect, piggybacked uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.probes, g.indirect, g.piggybacked
}

// gossipEvent is one aggregate state change to report.
type gossipEvent struct {
	peer  string
	at    time.Duration
	death bool
}

// Tick advances the protocol to the current virtual time: every member
// runs the probe rounds due since the last tick (in sorted member
// order, so the seeded RNG draws are reproducible), per-view suspicion
// timeouts fire, and the quorum aggregate is recomputed. Death and
// recovery callbacks fire after the state update, outside the lock.
func (g *GossipDetector) Tick() {
	now := g.sys.Net.Clock().Now()
	g.mu.Lock()
	// Run protocol periods round by round across members, not member by
	// member across rounds, so dissemination within a period reaches
	// every view before the next period starts (matching the real
	// concurrent execution).
	for {
		ran := false
		for _, name := range g.order {
			v := g.views[name]
			if v.nextProbe > now {
				continue
			}
			at := v.nextProbe
			v.nextProbe += g.opts.ProbeInterval
			ran = true
			// A crashed peer runs no protocol rounds; its view freezes
			// until it recovers (fail-stop, not byzantine).
			if !g.sys.Net.Alive(name) {
				continue
			}
			g.probeRound(v, at)
		}
		if !ran {
			break
		}
		// Suspicion timeouts run per period so a suspect declared dead
		// in one round is disseminated in the next.
		g.sweepSuspicion(now)
	}
	g.sweepSuspicion(now)
	events := g.aggregateLocked(now)
	if g.tele != nil {
		// Level gauges refresh once per tick: the worst Lifeguard health
		// score and the number of open suspicions across all views.
		maxHealth, suspects := 0, 0
		for _, v := range g.views {
			if v.health > maxHealth {
				maxHealth = v.health
			}
			for _, m := range v.members {
				if m.status == gossipSuspect {
					suspects++
				}
			}
		}
		g.tele.healthMax.Set(int64(maxHealth))
		g.tele.suspects.Set(int64(suspects))
	}
	deathFns := append([]func(string, time.Duration){}, g.onDeath...)
	recoverFns := append([]func(string, time.Duration){}, g.onRecover...)
	g.mu.Unlock()

	for _, e := range events {
		if e.death {
			for _, f := range deathFns {
				f(e.peer, e.at)
			}
		} else {
			for _, f := range recoverFns {
				f(e.peer, e.at)
			}
		}
	}
}

// probeRound is one SWIM protocol period for one member: probe a
// random subset of Fanout members directly, escalate each failure
// through k random proxies, and suspect a target when every path to it
// fails.
func (g *GossipDetector) probeRound(v *gossipView, at time.Duration) {
	for _, target := range g.pickTargets(v) {
		if !g.probeOnce(v, target) {
			// Lifeguard: a fully failed probe of a member we believed
			// alive implicates our own node or links as much as the
			// target. Raise local health (widening our timeouts) before
			// suspecting. Probes of already-suspected or dead-believed
			// members don't count — re-probing a genuinely crashed peer
			// every period must not inflate our score and slow down
			// detection of the next real crash.
			if m := v.members[target]; m != nil && m.status == gossipAlive {
				g.healthBump(v)
			}
			g.suspect(v, target, at)
		}
	}
}

// probeOnce is one full probe cycle of one target: direct, then
// indirect escalation through k random live-believed proxies. Any
// successful path counts as hearing the target.
func (g *GossipDetector) probeOnce(v *gossipView, target string) bool {
	g.probes++
	if g.tele != nil {
		g.tele.probes.Inc()
	}
	if g.directProbe(v, target) {
		return true
	}
	for _, proxy := range g.pickProxies(v, target) {
		g.indirect++
		if g.tele != nil {
			g.tele.indirect.Inc()
		}
		if g.relayProbe(v, proxy, target) {
			return true
		}
	}
	return false
}

// pickTargets selects this period's probe subset uniformly from the
// members this view has learned of — including dead-believed ones,
// which is how a recovered peer is re-discovered even without a rejoin.
// Membership is view-local: a peer probes only peers it knows, so a
// freshly joined member's probe surface grows as the join disseminates.
func (g *GossipDetector) pickTargets(v *gossipView) []string {
	// Every known member is also in the (sorted) global order, so this
	// yields the view's members sorted without a per-round sort.
	candidates := make([]string, 0, len(v.members))
	for _, name := range g.order {
		if v.members[name] != nil {
			candidates = append(candidates, name)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	g.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > g.opts.Fanout {
		candidates = candidates[:g.opts.Fanout]
	}
	sort.Strings(candidates) // deterministic probe order within the round
	return candidates
}

// pickProxies selects up to k distinct proxies this view believes
// alive, not the target, not self.
func (g *GossipDetector) pickProxies(v *gossipView, target string) []string {
	var candidates []string
	for _, name := range g.order {
		if name == target || name == v.self {
			continue
		}
		if m := v.members[name]; m != nil && m.status == gossipAlive {
			candidates = append(candidates, name)
		}
	}
	g.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > g.opts.IndirectProxies {
		candidates = candidates[:g.opts.IndirectProxies]
	}
	sort.Strings(candidates) // deterministic relay order
	return candidates
}

// sortedMembers returns a view's known members in sorted order (the
// deterministic iteration every protocol step uses).
func sortedMembers(v *gossipView) []string {
	names := make([]string, 0, len(v.members))
	for name := range v.members {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// directProbe sends probe + ack between two members, each leg carrying
// piggybacked updates. It succeeds when both legs survive the fault
// model and the round trip beats the timeout.
func (g *GossipDetector) directProbe(v *gossipView, target string) bool {
	tv := g.views[target]
	if tv == nil {
		return false
	}
	lat1, ok := g.message(v, tv)
	if !ok {
		return false
	}
	lat2, ok := g.message(tv, v)
	if !ok {
		return false
	}
	if lat1+lat2 > g.probeTimeoutFor(v) {
		return false
	}
	g.observeAlive(v, target, tv.inc)
	if lat1+lat2 <= g.opts.ProbeTimeout {
		g.healthDecay(v)
	}
	return true
}

// relayProbe routes probe + ack through one proxy: four legs, each
// gossiping, all four within the shared timeout budget.
func (g *GossipDetector) relayProbe(v *gossipView, proxy, target string) bool {
	pv, tv := g.views[proxy], g.views[target]
	if pv == nil || tv == nil {
		return false
	}
	total := time.Duration(0)
	for _, leg := range [][2]*gossipView{{v, pv}, {pv, tv}, {tv, pv}, {pv, v}} {
		lat, ok := g.message(leg[0], leg[1])
		if !ok {
			return false
		}
		total += lat
	}
	if total > g.probeTimeoutFor(v) {
		return false
	}
	g.observeAlive(v, target, tv.inc)
	// The proxy heard the target too.
	g.observeAlive(pv, target, tv.inc)
	if total <= g.opts.ProbeTimeout {
		g.healthDecay(v)
	}
	return true
}

// message ships one protocol message from → to under the fault model,
// carrying from's piggybacked updates into to's view. Every message
// also states the sender's current opinion OF the recipient — the
// first-hand channel through which a falsely suspected (or recovered)
// peer learns of the rumor and refutes it, even after the rumor's
// epidemic budget is spent. Returns the link latency and whether the
// message survived.
func (g *GossipDetector) message(from, to *gossipView) (time.Duration, bool) {
	updates := g.takePiggyback(from)
	bytes := g.opts.ProbeBytes + len(updates)*g.opts.PiggybackBytes
	lat, ok := g.sys.Net.Ping(from.self, to.self, bytes)
	if !ok {
		return 0, false
	}
	g.piggybacked += uint64(len(updates))
	now := g.sys.Net.Clock().Now()
	for _, u := range updates {
		g.applyUpdate(to, u, now)
	}
	// A delivered message is first-hand evidence of its sender: a
	// recipient that never heard of the sender learns it here (a joiner
	// introducing itself by probing, after its queued join rumor's
	// epidemic budget was spent on a partitioned link). The statement
	// carries the sender's own incarnation; it does not outrank a
	// suspect/dead rumor at the same incarnation — refutation stays the
	// sender's job (the opinion-of-recipient statement below tells it).
	g.applyUpdate(to, gossipUpdate{peer: from.self, status: gossipAlive, inc: from.inc}, now)
	if m := from.members[to.self]; m != nil && m.status != gossipAlive {
		g.applyUpdate(to, gossipUpdate{peer: to.self, status: m.status, inc: m.inc}, now)
	}
	return lat, true
}

// takePiggyback dequeues up to MaxPiggyback updates, consuming one unit
// of each sent update's epidemic budget; still-budgeted entries requeue
// behind the ones that waited (round-robin fairness).
func (g *GossipDetector) takePiggyback(v *gossipView) []gossipUpdate {
	n := g.opts.MaxPiggyback
	if n > len(v.queue) {
		n = len(v.queue)
	}
	if n == 0 {
		return nil
	}
	out := make([]gossipUpdate, n)
	copy(out, v.queue[:n])
	keep := make([]gossipUpdate, 0, len(v.queue))
	keep = append(keep, v.queue[n:]...)
	for _, u := range v.queue[:n] {
		u.left--
		if u.left > 0 {
			keep = append(keep, u)
		}
	}
	v.queue = keep
	return out
}

// enqueue adds (or refreshes) an update in a view's dissemination
// queue with a fresh epidemic budget.
func (g *GossipDetector) enqueue(v *gossipView, u gossipUpdate) {
	u.left = g.budget()
	for i := range v.queue {
		if v.queue[i].peer == u.peer {
			v.queue[i] = u
			return
		}
	}
	v.queue = append(v.queue, u)
}

// budget is λ·⌈log₂(n+1)⌉, the SWIM retransmission allowance.
func (g *GossipDetector) budget() int {
	n := len(g.order)
	if n < 1 {
		n = 1
	}
	return g.opts.RetransmitFactor * int(math.Ceil(math.Log2(float64(n+1))))
}

// rank orders statuses at equal incarnation: dead > suspect > alive
// (SWIM's precedence — a confirm overrides, a suspicion overrides an
// alive of the same incarnation, an alive refutes only with a higher
// incarnation).
func rank(s gossipStatus) int { return int(s) }

// applyUpdate merges one gossiped statement into a view under the SWIM
// precedence rules, re-gossiping anything that changed the view.
func (g *GossipDetector) applyUpdate(v *gossipView, u gossipUpdate, now time.Duration) {
	if u.peer == v.self {
		// Refutation: someone claims we are suspect or dead. Bump our
		// incarnation above the claim and gossip the alive statement —
		// it outranks the rumor everywhere it lands. Being suspected is
		// also first-hand evidence that we look slow from outside —
		// Lifeguard raises local health on it, widening our own timeouts
		// so a degraded node stops suspecting everyone else in turn.
		if u.status != gossipAlive && u.inc >= v.inc {
			v.inc = u.inc + 1
			g.enqueue(v, gossipUpdate{peer: v.self, status: gossipAlive, inc: v.inc})
			g.healthBump(v)
		}
		return
	}
	m := v.members[u.peer]
	if m == nil {
		// Discovery: a member this view never heard of — the piggybacked
		// join dissemination path. Learn it at the gossiped state and
		// keep the rumor spreading.
		v.members[u.peer] = &memberInfo{status: u.status, inc: u.inc, since: now}
		g.enqueue(v, gossipUpdate{peer: u.peer, status: u.status, inc: u.inc})
		return
	}
	if u.inc < m.inc || (u.inc == m.inc && rank(u.status) <= rank(m.status)) {
		return
	}
	if m.status != u.status {
		m.since = now
	}
	// Lifeguard: a refuted own suspicion is first-hand proof this view
	// raised a false alarm — raise local health so the next encounter
	// with the same degraded member starts from a wider window instead
	// of repeating the mistake at base latency.
	if m.own && m.status == gossipSuspect && u.status == gossipAlive {
		g.healthBump(v)
	}
	m.status, m.inc, m.own, m.spent = u.status, u.inc, false, false
	g.enqueue(v, gossipUpdate{peer: u.peer, status: u.status, inc: u.inc})
}

// observeAlive records a successful direct observation of target (an
// acked probe) at the target's current self-incarnation. The probe
// itself told the target about any rumor this view held (the
// opinion-of-recipient statement in message), so by the time the ack
// returns the target's incarnation outranks the rumor and the standard
// merge applies it.
func (g *GossipDetector) observeAlive(v *gossipView, target string, inc uint64) {
	g.applyUpdate(v, gossipUpdate{peer: target, status: gossipAlive, inc: inc}, g.sys.Net.Clock().Now())
}

// suspect marks the target suspected in v and gossips the suspicion.
func (g *GossipDetector) suspect(v *gossipView, target string, at time.Duration) {
	m := v.members[target]
	if m == nil || m.status != gossipAlive {
		return // already suspected or declared dead
	}
	m.status = gossipSuspect
	m.since = at
	m.own = true
	m.spent = false
	if g.tele != nil {
		g.tele.suspicions.Inc()
	}
	g.enqueue(v, gossipUpdate{peer: target, status: gossipSuspect, inc: m.inc})
}

// probeTimeoutFor is the probe timeout one view applies: the base
// timeout scaled by (1 + health) in adaptive mode.
func (g *GossipDetector) probeTimeoutFor(v *gossipView) time.Duration {
	if !g.opts.Adaptive || v.health <= 0 {
		return g.opts.ProbeTimeout
	}
	return g.opts.ProbeTimeout * time.Duration(1+v.health)
}

// suspicionFor is the refutation window one view grants its suspects:
// the base window scaled by (1 + health) in adaptive mode. The sweep
// reads it fresh every period, so a health bump extends windows for
// suspicions already open.
func (g *GossipDetector) suspicionFor(v *gossipView) time.Duration {
	if !g.opts.Adaptive || v.health <= 0 {
		return g.opts.Suspicion
	}
	return g.opts.Suspicion * time.Duration(1+v.health)
}

// healthDecayStreak is the floor on how many consecutive
// promptly-answered probes a view must accumulate before its health
// score relaxes by one; decayStreakFor raises it to the view's member
// count so a full probe rotation must pass clean. Raising is instant,
// relaxing is slow (the Lifeguard asymmetry): a view that still fails
// on one member per rotation — a degraded peer somewhere in its random
// probe cycle — never completes the streak and keeps its widened
// timeouts, while a genuinely recovered view drains its score within a
// few rotations. Without the membership scaling, large memberships
// defeat the ratchet: a view meets the slow peer only every ~n rounds,
// drains its whole score on the fast peers in between, and every new
// suspicion restarts from the narrowest window.
const healthDecayStreak = 4

// decayStreakFor is the prompt-success streak one view must complete
// before healthDecay relaxes its score: one full rotation of its
// membership, floored at healthDecayStreak.
func decayStreakFor(v *gossipView) int {
	if n := len(v.members); n > healthDecayStreak {
		return n
	}
	return healthDecayStreak
}

// healthBump raises a view's local health score (saturating at
// HealthMax) and resets its success streak. No-op outside adaptive mode.
func (g *GossipDetector) healthBump(v *gossipView) {
	if !g.opts.Adaptive {
		return
	}
	v.fastStreak = 0
	if v.health < g.opts.HealthMax {
		v.health++
	}
}

// healthDecay counts a promptly answered probe toward the relax streak
// and lowers the health score when the streak completes — but only
// while the view holds no open suspicion. Decaying mid-suspicion would
// shrink the suspect's refutation window from under it and re-introduce
// the oscillating false kill the score exists to prevent; health thaws
// only once the slate is clean.
func (g *GossipDetector) healthDecay(v *gossipView) {
	if !g.opts.Adaptive || v.health == 0 || g.holdsSuspect(v) {
		return
	}
	v.fastStreak++
	if v.fastStreak >= decayStreakFor(v) {
		v.fastStreak = 0
		v.health--
	}
}

// holdsSuspect reports whether a view currently suspects anyone.
func (g *GossipDetector) holdsSuspect(v *gossipView) bool {
	for _, m := range v.members {
		if m.status == gossipSuspect {
			return true
		}
	}
	return false
}

// HealthOf reports a member's current Lifeguard health score (0 when
// unknown or adaptive mode is off) — diagnostics and tests.
func (g *GossipDetector) HealthOf(peer string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if v := g.views[peer]; v != nil {
		return v.health
	}
	return 0
}

// SetSuspicion replaces the base suspicion window at runtime. Open
// suspicions are re-judged against the new window at the next sweep.
// Non-positive values are ignored.
func (g *GossipDetector) SetSuspicion(d time.Duration) {
	if d <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.opts.Suspicion = d
}

// SetProbeTimeout replaces the base probe timeout at runtime.
// Non-positive values are ignored.
func (g *GossipDetector) SetProbeTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.opts.ProbeTimeout = d
}

// SetAdaptive switches Lifeguard health scaling on or off at runtime.
// Switching off resets every view's health so the next enable starts
// from a clean slate.
func (g *GossipDetector) SetAdaptive(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.opts.Adaptive = on
	if !on {
		for _, v := range g.views {
			v.health = 0
			v.fastStreak = 0
		}
	}
}

// sweepSuspicion promotes suspects whose refutation window expired to
// dead, per view, and gossips the declaration.
func (g *GossipDetector) sweepSuspicion(now time.Duration) {
	for _, name := range g.order {
		v := g.views[name]
		if !g.sys.Net.Alive(name) {
			continue
		}
		for _, other := range g.order {
			m := v.members[other]
			if m == nil || m.status != gossipSuspect {
				continue
			}
			// A spent extension re-armed the clock only to reach the next
			// confirmation round: it waits the base window, not the scaled
			// one, so a genuine crash pays one short grace period — not a
			// second full (1+health)-scaled suspicion — before declaration.
			window := g.suspicionFor(v)
			if m.spent {
				window = g.opts.Suspicion
			}
			if now-m.since <= window {
				continue
			}
			// Lifeguard last-chance confirmation: before declaring the
			// death, an adaptive view probes the suspect again. A
			// genuinely crashed peer fails instantly — true-crash latency
			// is unchanged — but a delayed-but-alive peer gets a final
			// direct channel to refute (the probe exchange carries the
			// suspicion to it and its incarnation bump back), closing the
			// race where every gossiped refutation was lost to the same
			// degraded links that raised the suspicion. Like the timeouts,
			// the number of attempts scales with the health score: a view
			// that already knows the network is degraded spends more paths
			// before trusting a silence.
			if g.opts.Adaptive {
				refuted := false
				for i := 0; i <= v.health && !refuted; i++ {
					refuted = g.probeOnce(v, other)
				}
				// A probe can miss its timeout and still deliver: the ack
				// already carried the target's incarnation bump into this
				// view. Declaring death now would stamp the rumor with the
				// refuted-past incarnation's successor and outrank the
				// refutation everywhere — so any evidence of life stands.
				if refuted || m.status != gossipSuspect {
					continue
				}
				// First failed confirmation: escalate instead of declaring.
				// A view that adopted this suspicion second-hand may still
				// sit at health 0 with base-latency expectations; the failed
				// confirmation is its own first-hand evidence of degradation,
				// so raise health and re-arm the clock once (for the base
				// window — see above). A genuinely crashed peer just fails
				// the re-probe one base window later, while a delayed-but-
				// alive peer gets a second confirmation round at escalated
				// timeouts, where a delivered probe now beats the timeout.
				if !m.spent {
					m.spent = true
					m.since = now
					g.healthBump(v)
					continue
				}
			}
			m.status = gossipDead
			m.since = now
			m.own = false
			if g.tele != nil {
				g.tele.deaths.Inc()
			}
			g.enqueue(v, gossipUpdate{peer: other, status: gossipDead, inc: m.inc})
		}
	}
}

// aggregateLocked recomputes the quorum-confirmed membership view and
// returns the death/recovery transitions to report. Views owned by
// confirmed-dead members do not vote — a partitioned or crashed peer's
// opinions must not poison the aggregate — and neither do views that
// have not yet learned of a member (a join mid-dissemination must not
// count silent ignorance as a death vote or a voter).
func (g *GossipDetector) aggregateLocked(now time.Duration) []gossipEvent {
	var events []gossipEvent
	for _, name := range g.order {
		votes := 0
		voters := 0
		for _, owner := range g.order {
			if owner == name || g.confirmed[owner] {
				continue
			}
			m := g.views[owner].members[name]
			if m == nil {
				continue
			}
			voters++
			if m.status == gossipDead {
				votes++
			}
		}
		q := g.opts.Quorum
		if q > voters {
			q = voters
		}
		if q < 1 {
			q = 1
		}
		dead := votes >= q
		switch {
		case dead && !g.confirmed[name]:
			g.confirmed[name] = true
			events = append(events, gossipEvent{peer: name, at: now, death: true})
		case !dead && g.confirmed[name]:
			g.confirmed[name] = false
			events = append(events, gossipEvent{peer: name, at: now, death: false})
		}
	}
	return events
}
