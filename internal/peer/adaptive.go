// The load-driven re-chunking controller: the monitor monitoring
// itself. Every Step it reads the ingest gauges the operator handles
// already keep, compares each first-level aggregation-tree interior
// against its tree's mean ingest rate, and splits an interior that
// stays hot for SplitObservations consecutive Steps (hysteresis) —
// SplitInterior then reshapes the running tree exactly-once. All knobs
// live in AggConfig and are runtime-mutable through Tuning.
// See docs/ADAPTIVE.md.
package peer

import (
	"sort"
	"time"

	"p2pm/internal/algebra"
)

// AggLoadEntry is one running operator instance's ingest gauge: items
// consumed across all inputs since deployment (replayed items included
// — they are real ingest work).
type AggLoadEntry struct {
	Task  string
	Peer  string
	Op    string
	Key   string // aggregation-tree routing key; "" for non-tree operators
	Items uint64
}

// AggLoad is the per-operator ingest snapshot, sorted by (Task, Key,
// Op, Peer) — the stats-style surface experiments and controllers read
// instead of reaching into task internals.
type AggLoad []AggLoadEntry

// ByPeer folds the snapshot into per-host totals.
func (l AggLoad) ByPeer() map[string]uint64 {
	out := make(map[string]uint64)
	for _, e := range l {
		out[e.Peer] += e.Items
	}
	return out
}

// Interiors filters the snapshot to key-routed aggregation-tree merge
// nodes — the fan-in hotspots the re-chunking controller watches.
func (l AggLoad) Interiors() AggLoad {
	var out AggLoad
	for _, e := range l {
		if e.Key != "" {
			out = append(out, e)
		}
	}
	return out
}

// MaxMean reports the hottest entry's ingest and the mean over the
// snapshot (0, 0 when empty) — the skew measure the aggregation
// experiments gate on.
func (l AggLoad) MaxMean() (max uint64, mean float64) {
	if len(l) == 0 {
		return 0, 0
	}
	var total uint64
	for _, e := range l {
		total += e.Items
		if e.Items > max {
			max = e.Items
		}
	}
	return max, float64(total) / float64(len(l))
}

// AggLoad snapshots every running operator instance's ingest across all
// live-managed tasks.
func (s *System) AggLoad() AggLoad {
	var out AggLoad
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			for n, inst := range t.procs {
				out = append(out, AggLoadEntry{
					Task:  t.ID,
					Peer:  n.Peer,
					Op:    n.Op.String(),
					Key:   n.AggKey,
					Items: inst.handle.ItemsIn(),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Items < b.Items
	})
	return out
}

// rechunkState is the controller's memory for one task.
type rechunkState struct {
	lastItems map[string]uint64 // interior key → ItemsIn at last observation
	overCount map[string]int    // interior key → consecutive over-ratio Steps
	splits    int
	lastSplit time.Duration
}

// startRechunkController registers the per-Step observe/decide/actuate
// loop. NewSystem calls it when Agg.SplitRatio is armed; the ratio knob
// stays live afterwards (Tuning.SetAggSplitRatio — 0 suspends the loop
// without unregistering it).
func (s *System) startRechunkController() {
	states := make(map[string]*rechunkState)
	s.OnStep(func(now time.Duration) {
		cfg := s.aggSplit()
		if cfg.SplitRatio <= 0 {
			return
		}
		for _, p := range s.livePeers() {
			for _, t := range sortedTasks(p) {
				st := states[t.ID]
				if st == nil {
					st = &rechunkState{lastItems: map[string]uint64{}, overCount: map[string]int{}}
					states[t.ID] = st
				}
				s.rechunkTask(p, t, st, cfg, now)
			}
		}
	})
}

// rechunkTask runs one controller observation for one task: delta
// ingest per first-level interior since the last Step, compared against
// the mean over its peers. Only first-level interiors — those merging
// PartialAgg leaves directly — are observed: deeper merges and the
// Final root ingest nothing until teardown flush (MergeAgg emits on
// EOS), so mid-run their gauges carry no signal. At most one split per
// task per Step, the hottest qualifying interior first (key order
// breaking ties), with SplitCooldown spacing consecutive reshapes.
func (s *System) rechunkTask(p *Peer, t *Task, st *rechunkState, cfg AggConfig, now time.Duration) {
	type cand struct {
		n     *algebra.Node
		delta uint64
	}
	var cands []cand
	var total uint64
	t.Plan.Walk(func(n *algebra.Node) {
		if n.Op != algebra.OpMergeAgg || n.AggKey == "" {
			return
		}
		for _, in := range n.Inputs {
			if in.Op != algebra.OpPartialAgg {
				return
			}
		}
		inst := t.procs[n]
		if inst == nil {
			return
		}
		items := inst.handle.ItemsIn()
		delta := items - st.lastItems[n.AggKey]
		st.lastItems[n.AggKey] = items
		total += delta
		cands = append(cands, cand{n, delta})
	})
	if len(cands) < 2 {
		// A single interior has no peers to be hot relative to.
		return
	}
	mean := float64(total) / float64(len(cands))
	for _, c := range cands {
		over := mean > 0 &&
			float64(c.delta) > cfg.SplitRatio*mean &&
			len(c.n.Inputs) >= cfg.SplitMinFanIn &&
			s.Net.Alive(c.n.Peer)
		if over {
			st.overCount[c.n.AggKey]++
		} else {
			delete(st.overCount, c.n.AggKey)
		}
	}
	if st.splits > 0 && now-st.lastSplit < cfg.SplitCooldown {
		return
	}
	var best *cand
	for i := range cands {
		c := &cands[i]
		if st.overCount[c.n.AggKey] < cfg.SplitObservations {
			continue
		}
		if best == nil || c.delta > best.delta ||
			(c.delta == best.delta && c.n.AggKey < best.n.AggKey) {
			best = c
		}
	}
	if best == nil {
		return
	}
	if _, err := p.splitInterior(t, best.n, now); err != nil {
		// A split that cannot run now (host died under us, replay gap)
		// retries naturally: the hysteresis counter stays armed.
		return
	}
	st.splits++
	st.lastSplit = now
	// The tree changed shape: stale hysteresis must not trigger on the
	// next observation's skewed deltas (the new sub-interiors start
	// their gauges at the cut).
	st.overCount = map[string]int{}
}
