package peer

import (
	"reflect"
	"testing"

	"p2pm/internal/wire"
)

func TestGossipStatusWireMapping(t *testing.T) {
	// Every local state round-trips through the wire constants.
	for _, s := range []gossipStatus{gossipAlive, gossipSuspect, gossipDead} {
		if got := fromWireStatus(toWireStatus(s)); got != s {
			t.Errorf("status %v round-tripped to %v", s, got)
		}
	}
	// StatusLeft degrades to dead locally — a departed peer is gone.
	if got := fromWireStatus(wire.StatusLeft); got != gossipDead {
		t.Errorf("StatusLeft mapped to %v, want dead", got)
	}
	// The wire numbers are protocol, not implementation: pin them.
	if toWireStatus(gossipAlive) != 0 || toWireStatus(gossipSuspect) != 1 || toWireStatus(gossipDead) != 2 {
		t.Error("wire status renumbered — breaks cross-version clusters")
	}
}

func TestGossipUpdatesWireRoundTrip(t *testing.T) {
	local := []gossipUpdate{
		{peer: "n1", status: gossipAlive, inc: 4, left: 3},
		{peer: "n2", status: gossipSuspect, inc: 7, left: 1},
	}
	w := toWireUpdates(local)
	want := []wire.GossipUpdate{
		{Peer: "n1", Status: wire.StatusAlive, Inc: 4},
		{Peer: "n2", Status: wire.StatusSuspect, Inc: 7},
	}
	if !reflect.DeepEqual(w, want) {
		t.Fatalf("toWireUpdates = %#v, want %#v", w, want)
	}
	// Survive an actual encode/decode inside a probe frame.
	m, err := wire.Decode(wire.Encode(&wire.Probe{Seq: 1, Updates: w}))
	if err != nil {
		t.Fatal(err)
	}
	back := fromWireUpdates(m.(*wire.Probe).Updates, 5)
	for i, u := range back {
		if u.peer != local[i].peer || u.status != local[i].status || u.inc != local[i].inc {
			t.Errorf("update %d = %+v, want fields of %+v", i, u, local[i])
		}
		if u.left != 5 {
			t.Errorf("update %d budget = %d, want the receiver-side 5 (not the sender's)", i, u.left)
		}
	}
	if toWireUpdates(nil) != nil || fromWireUpdates(nil, 3) != nil {
		t.Error("empty piggyback should stay nil")
	}
}
