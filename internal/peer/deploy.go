package peer

import (
	"fmt"
	"sync/atomic"
	"time"

	"p2pm/internal/aggtree"
	"p2pm/internal/alerters"
	"p2pm/internal/algebra"
	"p2pm/internal/monoid"
	"p2pm/internal/operators"
	"p2pm/internal/p2pml"
	"p2pm/internal/reuse"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// deploy turns an optimized (and possibly reuse-rewritten) plan into
// running operators. Every operator publishes its output as a channel at
// its peer — exactly the paper's deployment, where even intermediate
// results (the X, Y channels of Figure 4) are published so other tasks
// can reuse them — and consumes its inputs by subscribing to its
// children's channels, across the simulated network when peers differ.
func (p *Peer) deploy(task *Task) error {
	plan := task.Plan
	// Resolve the "local" placeholder (delegated local tasks, Section
	// 3.4) to the managing peer.
	plan.Walk(func(n *algebra.Node) {
		if n.Peer == "local" {
			n.Peer = p.name
		}
		if n.Op == algebra.OpAlerter && n.Alerter.Peer == "local" {
			n.Alerter.Peer = p.name
		}
	})
	// Tree-vs-flat aggregation decision: with AggDegree set, wide
	// windowed aggregations decompose into DHT-routed partial/merge
	// trees before a single channel is allocated. The task's plan IS the
	// rewritten plan — failover and checkpointing see the tree.
	if deg := p.sys.aggDegree(); deg > 1 {
		plan, _ = aggtree.Rewrite(plan, task.ID, aggtree.Config{Degree: deg, Place: p.sys.newAggPlacer()})
		task.Plan = plan
	}

	refs, err := reuse.PublishPlan(p.sys.DB, plan, p.sys.nextStreamID)
	if err != nil {
		return err
	}
	task.refs = refs
	task.origRefs = make(map[*algebra.Node]stream.Ref, len(refs))
	for n, ref := range refs {
		task.origRefs[n] = ref
	}
	task.procs = make(map[*algebra.Node]*procInstance)

	var build func(n *algebra.Node) (*stream.Channel, error)
	build = func(n *algebra.Node) (*stream.Channel, error) {
		switch n.Op {
		case algebra.OpChannelIn:
			ch, ok := p.sys.Channel(n.Channel)
			if !ok {
				return nil, fmt.Errorf("peer: channel %s not found (reuse of a stopped task?)", n.Channel)
			}
			return ch, nil
		case algebra.OpPublish:
			child, err := build(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			b := p.subscribeInput(task, n, n.Inputs[0], child, n.Peer)
			return p.deployPublisher(task, n, b.queue)
		}
		out := p.sys.allocChannel(task, n.Peer, refs[n].StreamID)

		switch n.Op {
		case algebra.OpAlerter:
			if err := p.deployAlerter(task, n, out); err != nil {
				return nil, err
			}
		case algebra.OpDynAlerter:
			driver, err := build(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			b := p.subscribeInput(task, n, n.Inputs[0], driver, n.Peer)
			p.runDynAlerter(task, n, b.queue, out)
		default:
			queues := make([]*stream.Queue, len(n.Inputs))
			for i, in := range n.Inputs {
				child, err := build(in)
				if err != nil {
					return nil, err
				}
				queues[i] = p.subscribeInput(task, n, in, child, n.Peer).queue
			}
			proc, err := p.makeProc(n)
			if err != nil {
				return nil, err
			}
			h := operators.Run(proc, queues, operators.ChannelPublish(out))
			task.handles = append(task.handles, h)
			task.procs[n] = &procInstance{proc: proc, handle: h}
		}
		return out, nil
	}
	resultCh, err := build(plan)
	if err != nil {
		return err
	}
	task.resultCh = resultCh
	p.bindResults(task, resultCh, 0)
	return nil
}

// bindResults subscribes the manager to the task's result channel,
// feeding the stable result queue through a dedup cursor so the
// subscription can be re-bound (publisher migration) without the reader
// noticing. fromSeq > 0 resumes from retained history.
func (p *Peer) bindResults(task *Task, ch *stream.Channel, fromSeq uint64) {
	if task.resultQ == nil {
		task.resultQ = stream.NewQueue()
		task.resultCur = stream.NewCursor(0, task.resultQ.Push)
	}
	cur, q := task.resultCur, task.resultQ
	deliver := func(it stream.Item, _ *stream.Queue) {
		if it.EOS() {
			cur.Terminate(it)
			q.Close()
			return
		}
		cur.Offer(it)
	}
	// Result reading is manager-local (no simulated link), but the
	// resume protocol is the shared one.
	task.resultSub = p.sys.attachResuming(ch, p.name, cur, fromSeq, deliver)
}

// subscribe wires a consumer at consumerPeer to a channel, routing over
// the simulated network when the producer lives elsewhere, and records
// the subscription for teardown. Subscriptions to channels the task does
// not own (reused streams, repository event channels) are tracked
// separately: Stop cancels them eagerly because no eos will ever arrive
// from a shared source.
func (p *Peer) subscribe(task *Task, ch *stream.Channel, consumerPeer string) *stream.Subscription {
	var deliver func(stream.Item, *stream.Queue)
	if ch.Ref().PeerID != consumerPeer {
		deliver = p.sys.link.DeliverHook(ch.Ref().PeerID, consumerPeer)
	}
	sub := ch.Subscribe(consumerPeer, deliver)
	p.trackSub(task, ch, sub)
	return sub
}

// trackSub records a subscription for teardown: subscriptions to shared
// channels (reused streams, repository event channels) are cancelled
// eagerly at Stop, owned ones after the operators drained. It reports
// whether the channel is task-owned.
func (p *Peer) trackSub(task *Task, ch *stream.Channel, sub *stream.Subscription) bool {
	owned := false
	for _, own := range task.channels {
		if own == ch {
			owned = true
			break
		}
	}
	if owned {
		task.subs = append(task.subs, sub)
	} else {
		task.extSubs = append(task.extSubs, sub)
	}
	return owned
}

// subscribeInput is subscribe for a plan-internal input edge: the
// consumer reads a binding-owned queue fed through a cursor gate
// (ordering, dedup, resumability), and the binding (consumer operator,
// producing plan node, queue, cursor) is recorded so failure handling
// can later re-bind the consumer to a replacement producer.
func (p *Peer) subscribeInput(task *Task, consumer, child *algebra.Node, ch *stream.Channel, consumerPeer string) *inputBinding {
	q, cur := p.sys.newBinding(0)
	sub := p.subscribeOrdered(ch, consumerPeer, cur, q, 0)
	if !p.trackSub(task, ch, sub) {
		// Shared source: it will never close on this task's account, so
		// Stop must close the consumer's queue explicitly.
		task.extQueues = append(task.extQueues, q)
	}
	b := &inputBinding{
		consumer:     consumer,
		child:        child,
		consumerPeer: consumerPeer,
		queue:        q,
		sub:          sub,
		cursor:       cur,
		src:          ch,
	}
	task.bindings = append(task.bindings, b)
	return b
}

// makeProc compiles a processor node's spec into a runnable operator.
func (p *Peer) makeProc(n *algebra.Node) (operators.Proc, error) {
	switch n.Op {
	case algebra.OpSelect:
		return &operators.Select{
			Desc: n.Label(),
			Pred: algebra.SelectPred(n.Inputs[0].Schema, n.Select),
		}, nil
	case algebra.OpUnion:
		return &operators.Union{}, nil
	case algebra.OpJoin:
		lk, rk := algebra.JoinKeys(n.Inputs[0].Schema, n.Inputs[1].Schema, n.Join)
		return &operators.Join{
			LeftKey:  lk,
			RightKey: rk,
			Residual: algebra.JoinResidual(n.Inputs[0].Schema, n.Inputs[1].Schema, n.Join),
			Combine:  algebra.JoinCombine(n.Inputs[0].Schema, n.Inputs[1].Schema),
			UseIndex: true,
			Window:   p.sys.Config().JoinWindow,
		}, nil
	case algebra.OpDistinct:
		return &operators.Distinct{Window: p.sys.Config().DistinctWindow}, nil
	case algebra.OpGroup:
		window, err := groupWindow(n)
		if err != nil {
			return nil, err
		}
		agg, err := groupAgg(n)
		if err != nil {
			return nil, err
		}
		return &operators.Group{
			Key:    attrGetter(n.Group.KeyAttr),
			Value:  valueGetter(n.Group),
			Window: window,
			Agg:    agg,
		}, nil
	case algebra.OpPartialAgg:
		window, err := groupWindow(n)
		if err != nil {
			return nil, err
		}
		agg, err := groupAgg(n)
		if err != nil {
			return nil, err
		}
		return &operators.PartialAgg{
			Key:    attrGetter(n.Group.KeyAttr),
			Value:  valueGetter(n.Group),
			Window: window,
			Agg:    agg,
		}, nil
	case algebra.OpMergeAgg:
		// Window indices ride inside the partial states, so the merge
		// needs only its role — interior (forward merged partials) or
		// Final root (emit the flat operator's records) — plus the
		// monoid that decodes and merges those states.
		agg, err := groupAgg(n)
		if err != nil {
			return nil, err
		}
		return &operators.MergeAgg{Final: n.Group.Final, Agg: agg}, nil
	case algebra.OpRestruct:
		return &operators.Restructure{
			Desc:  n.Label(),
			Apply: algebra.RestructApply(n.Inputs[0].Schema, n.Restruct),
		}, nil
	}
	return nil, fmt.Errorf("peer: cannot deploy operator %v", n.Op)
}

func attrGetter(attr string) func(*xmltree.Node) string {
	return func(t *xmltree.Node) string { return t.AttrOr(attr, "") }
}

// valueGetter extracts the aggregated value attribute; nil for count,
// which consumes no value.
func valueGetter(g *algebra.GroupSpec) func(*xmltree.Node) string {
	if g.ValueAttr == "" {
		return nil
	}
	return attrGetter(g.ValueAttr)
}

// groupAgg resolves a Group-family node's aggregate monoid (nil for the
// default count, keeping the operator's zero-value fast path).
func groupAgg(n *algebra.Node) (monoid.Monoid, error) {
	if n.Group.Fn == "" || n.Group.Fn == "count" {
		return nil, nil
	}
	m, ok := monoid.Lookup(n.Group.Fn)
	if !ok {
		return nil, fmt.Errorf("peer: unknown aggregate function %q", n.Group.Fn)
	}
	return m, nil
}

// groupWindow parses a Group-family node's window duration.
func groupWindow(n *algebra.Node) (time.Duration, error) {
	if n.Group.Window == "" {
		return 0, nil
	}
	window, err := time.ParseDuration(n.Group.Window)
	if err != nil {
		return 0, fmt.Errorf("peer: bad group window %q: %w", n.Group.Window, err)
	}
	return window, nil
}

// deployAlerter instantiates the event source a plan's alerter node
// describes and wires it to publish into out.
func (p *Peer) deployAlerter(task *Task, n *algebra.Node, out *stream.Channel) error {
	emit := func(it stream.Item) {
		if it.EOS() {
			out.Close()
			return
		}
		out.Publish(it)
	}
	clock := p.sys.Net.Clock().Now
	name := n.Alerter.Func + "@" + n.Alerter.Peer
	switch n.Alerter.Kind {
	case "ws-in", "ws-out":
		dir := alerters.Inbound
		if n.Alerter.Kind == "ws-out" {
			dir = alerters.Outbound
		}
		al := alerters.NewWS(name, dir, p.sys.Config().IncludeEnvelopes, clock, emit)
		ep := p.sys.Fabric.Endpoint(n.Alerter.Peer)
		if dir == alerters.Inbound {
			ep.OnInbound(al.Hook())
		} else {
			ep.OnOutbound(al.Hook())
		}
		task.closers = append(task.closers, al.Close)
	case "membership":
		al := alerters.NewMembership(name, clock, emit)
		p.sys.Ring.OnMembership(al)
		task.closers = append(task.closers, al.Close)
	case "rss":
		target := p.sys.Peer(n.Alerter.Peer)
		if target == nil {
			return fmt.Errorf("peer: rssCOM target %q is not a peer", n.Alerter.Peer)
		}
		url, fetch, err := target.feed(argAttr(n, "feed", "url"))
		if err != nil {
			return err
		}
		al := alerters.NewRSS(name, url, fetch, clock, emit)
		if _, err := al.Poll(); err != nil { // establish the baseline
			return err
		}
		task.pollers = append(task.pollers, func() (int, error) { return al.Poll() })
		task.closers = append(task.closers, al.Close)
	case "webpage":
		target := p.sys.Peer(n.Alerter.Peer)
		if target == nil {
			return fmt.Errorf("peer: pageCOM target %q is not a peer", n.Alerter.Peer)
		}
		url, fetch, err := target.page(argAttr(n, "page", "url"))
		if err != nil {
			return err
		}
		al := alerters.NewWebPage(name, url, fetch, true, clock, emit)
		if _, err := al.Poll(); err != nil {
			return err
		}
		task.pollers = append(task.pollers, func() (int, error) {
			ok, err := al.Poll()
			if ok {
				return 1, err
			}
			return 0, err
		})
		task.closers = append(task.closers, al.Close)
	case "axml":
		target := p.sys.Peer(n.Alerter.Peer)
		if target == nil {
			return fmt.Errorf("peer: axmlCOM target %q is not a peer", n.Alerter.Peer)
		}
		target.Repo() // ensure the repository event channel exists
		sub := p.subscribe(task, target.repoCh, n.Peer)
		h := operators.Run(&operators.Union{}, []*stream.Queue{sub.Queue}, emit)
		task.handles = append(task.handles, h)
	default:
		return fmt.Errorf("peer: unknown alerter kind %q", n.Alerter.Kind)
	}
	return nil
}

// argAttr extracts an attribute from an alerter's XML argument, e.g. the
// url of <feed url="..."/>.
func argAttr(n *algebra.Node, elem, attr string) string {
	for _, a := range n.Alerter.Args {
		if a.Label == elem {
			return a.AttrOr(attr, "")
		}
	}
	return ""
}

// runDynAlerter manages the dynamic alerter set of an inCOM($j)-style
// source: membership events attach and detach WS alerters on the joined
// peers, all publishing into the same output channel.
func (p *Peer) runDynAlerter(task *Task, n *algebra.Node, driver *stream.Queue, out *stream.Channel) {
	dir := alerters.Inbound
	if n.Alerter.Func == "outCOM" {
		dir = alerters.Outbound
	}
	clock := p.sys.Net.Clock().Now
	done := make(chan struct{})
	task.dynDone = append(task.dynDone, done)
	go func() {
		defer close(done)
		type entry struct {
			active *atomic.Bool
		}
		active := make(map[string]*entry)
		for {
			it, ok := driver.Pop()
			if !ok || it.EOS() {
				break
			}
			switch it.Tree.Label {
			case "p-join":
				peerName := it.Tree.InnerText()
				if _, dup := active[peerName]; dup {
					continue
				}
				flag := &atomic.Bool{}
				flag.Store(true)
				al := alerters.NewWS(n.Alerter.Func+"@"+peerName, dir, p.sys.Config().IncludeEnvelopes, clock,
					func(item stream.Item) {
						if flag.Load() && !item.EOS() {
							out.Publish(item)
						}
					})
				ep := p.sys.Fabric.Endpoint(peerName)
				if dir == alerters.Inbound {
					ep.OnInbound(al.Hook())
				} else {
					ep.OnOutbound(al.Hook())
				}
				active[peerName] = &entry{active: flag}
			case "p-leave":
				// "inCOM removes peers from the collection of monitored
				// peers" (Section 2).
				if e, ok := active[it.Tree.InnerText()]; ok {
					e.active.Store(false)
					delete(active, it.Tree.InnerText())
				}
			}
			task.dynEvents.Add(1)
		}
		// Deactivate every attached alerter before closing: the fabric
		// has no hook-removal API, so the leaked closures must become
		// no-ops (their flag check short-circuits before any work).
		for _, e := range active {
			e.active.Store(false)
		}
		out.Close()
	}()
}

// deployPublisher wires the BY-clause targets: the named result channel,
// plus e-mail / file / RSS sinks and delegated channel subscriptions. It
// returns the named channel, which is the task's public result stream.
func (p *Peer) deployPublisher(task *Task, n *algebra.Node, in *stream.Queue) (*stream.Channel, error) {
	named := p.sys.allocChannel(task, n.Peer, n.Publish.ChannelID)
	task.namedCh = named
	if err := p.runPublisher(task, n, in, named); err != nil {
		return nil, err
	}
	return named, nil
}

// runPublisher builds the sink fan-out feeding the named channel and the
// human-facing targets, and starts the publisher operator over in. The
// sinks reference task-level state (Mailbox, FileOut, RSSOut), so
// failover can rebuild them at a new host without losing what was
// already published.
func (p *Peer) runPublisher(task *Task, n *algebra.Node, in *stream.Queue, named *stream.Channel) error {
	spec := n.Publish

	var sinks []operators.Emit
	sinks = append(sinks, operators.ChannelPublish(named))
	for _, tgt := range spec.Targets {
		switch tgt.Kind {
		case p2pml.ByPublishChannel, p2pml.ByChannel:
			// The named channel above covers channel publication.
		case p2pml.ByEmail:
			ep := &operators.EmailPublisher{W: &task.Mailbox, To: tgt.Name}
			sinks = append(sinks, ep.Emit)
		case p2pml.ByFile:
			fp := &operators.XMLFilePublisher{W: &task.FileOut}
			sinks = append(sinks, fp.Emit)
		case p2pml.ByRSS:
			if task.RSSOut == nil { // re-deployments keep the accumulated feed
				task.RSSOut = &operators.RSSPublisher{Title: tgt.Name, MaxItems: 50}
			}
			sinks = append(sinks, task.RSSOut.Emit)
		case p2pml.BySubscribe:
			// subscribe(peer, #id, name): the target peer is enrolled as
			// the channel's first client, delivery landing in its #id
			// incoming queue.
			target, err := p.sys.AddPeer(tgt.Peer)
			if err != nil {
				return err
			}
			dest := target.Incoming(tgt.ChannelID)
			// The target's incoming queue is task-level state like the
			// other sinks: its cursor survives publisher migrations, so
			// the rebuilt fan-out resumes from what the target already
			// received and re-emissions deduplicate.
			var cur *stream.Cursor
			var fromSeq uint64
			if p.sys.replayOn() {
				key := tgt.Peer + "#" + tgt.ChannelID
				if task.subTargets == nil {
					task.subTargets = make(map[string]*subTarget)
				}
				st := task.subTargets[key]
				if st == nil {
					st = &subTarget{peer: tgt.Peer, cur: stream.NewCursor(0, dest.Push), dest: dest}
					task.subTargets[key] = st
				}
				cur = st.cur
				fromSeq = cur.Next()
			}
			sub := p.sys.attachResuming(named, tgt.Peer, cur, fromSeq,
				p.sys.link.DeliverHook(named.Ref().PeerID, tgt.Peer))
			task.subs = append(task.subs, sub)
			go func() {
				for {
					it, ok := sub.Queue.Pop()
					if !ok {
						dest.Close()
						return
					}
					switch {
					case cur == nil:
						dest.Push(it)
					case it.EOS():
						cur.Terminate(it) // flush parked items before the terminator
					default:
						cur.Offer(it)
					}
				}
			}()
		}
	}
	host := named.Ref().PeerID
	fanout := func(it stream.Item) {
		// Fail-stop fidelity: a fan-out whose host crashed (or whose
		// channel was superseded by a migration) emits nothing — its
		// replacement instance owns the sinks now. Without this guard the
		// dead instance would keep draining its closed queue into the
		// shared mailbox/file/feed alongside the replacement.
		if !p.sys.Net.Alive(host) || p.sys.isStale(named.Ref()) {
			return
		}
		for _, s := range sinks {
			s(it)
		}
	}
	proc := &operators.Union{}
	h := operators.Run(proc, []*stream.Queue{in}, fanout)
	task.handles = append(task.handles, h)
	task.procs[n] = &procInstance{proc: proc, handle: h}
	return nil
}
