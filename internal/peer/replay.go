// Replay and recovery: the peer-side half of the lossless-failover
// subsystem. Channels retain their published tail (internal/stream's
// replay buffers); this file adds the consumer cursors on every operator
// input binding, the anti-entropy sweep that refills link-fault losses
// from those buffers, and periodic operator checkpointing through the
// stream-definition database's replicated DHT storage — so a migrated
// operator resumes from its checkpoint and its consumers resume from
// their cursors, exactly once, instead of restarting at "now".
package peer

import (
	"strconv"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/kadop"
	"p2pm/internal/operators"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// subscribeOrdered attaches a consumer to a channel through a cursor
// gate: network transport (accounting, latency, faults) applies as
// usual, then the cursor deduplicates and orders deliveries into q.
// fromSeq > 0 resumes from the retained history (SubscribeFrom); the
// cursor may be nil when the replay layer is off, reproducing the plain
// lossy delivery path. The subscription is not tracked — callers own
// teardown bookkeeping.
func (p *Peer) subscribeOrdered(ch *stream.Channel, consumerPeer string, cur *stream.Cursor, q *stream.Queue, fromSeq uint64) *stream.Subscription {
	s := p.sys
	from := ch.Ref().PeerID
	deliver := func(it stream.Item, _ *stream.Queue) {
		if from != consumerPeer {
			var ok bool
			if it, ok = s.link.Deliver(from, consumerPeer, it); !ok {
				return
			}
		}
		if it.EOS() {
			if cur != nil {
				cur.Terminate(it)
			} else {
				q.Push(it)
			}
			q.Close()
			return
		}
		if cur != nil {
			cur.Offer(it)
		} else {
			q.Push(it)
		}
	}
	return s.attachResuming(ch, consumerPeer, cur, fromSeq, deliver)
}

// attachResuming is the shared core of the cursor-resume protocol:
// attach at fromSeq via the retention buffer (counting retransmissions,
// releasing the cursor past any trimmed prefix) or, with fromSeq 0, at
// "now" with the cursor floored at the attach point.
func (s *System) attachResuming(ch *stream.Channel, name string, cur *stream.Cursor, fromSeq uint64, deliver func(stream.Item, *stream.Queue)) *stream.Subscription {
	if fromSeq > 0 && ch.ReplayEnabled() {
		sub := ch.SubscribeFrom(name, fromSeq, deliver)
		if sub.Replayed > 0 {
			s.replayed.Add(uint64(sub.Replayed))
		}
		if cur != nil && sub.ReplayFrom > fromSeq {
			// The retention buffer already trimmed the prefix: those
			// sequences are unrecoverable, release anything parked behind
			// them.
			cur.SkipTo(sub.ReplayFrom)
		}
		return sub
	}
	sub := ch.Subscribe(name, deliver)
	if cur != nil {
		cur.AdvanceTo(sub.StartSeq)
	}
	return sub
}

// newBinding builds the cursor-gated queue for one operator input edge.
// after is the highest sequence the consumer is NOT owed (0 = owed
// everything the subscription delivers).
func (s *System) newBinding(after uint64) (*stream.Queue, *stream.Cursor) {
	q := stream.NewQueue()
	if !s.replayOn() {
		return q, nil
	}
	return q, stream.NewCursor(after, q.Push)
}

// resubscribeInput replaces one input binding's subscription for a
// consumer instance re-deployed at newPeer: the old subscription and
// queue are torn down (terminating the dead instance's reader) and a
// fresh cursor-gated queue resumes from fromSeq (0 = attach at "now").
// It returns the new queue feeding the replacement instance.
func (p *Peer) resubscribeInput(t *Task, b *inputBinding, ch *stream.Channel, newPeer string, fromSeq uint64) *stream.Queue {
	s := p.sys
	b.sub.Unsubscribe()
	// When an earlier repair in the same pass re-bound this input
	// (chained operators on the dead peer), b.sub's queue is not the old
	// operator's reader — close that reader explicitly so the dead
	// instance's goroutine terminates.
	b.queue.Close()
	var after uint64
	if fromSeq > 0 {
		after = fromSeq - 1
	}
	q, cur := s.newBinding(after)
	sub := p.subscribeOrdered(ch, newPeer, cur, q, fromSeq)
	if !p.trackSub(t, ch, sub) {
		// Shared source: Stop must close the replacement queue explicitly.
		t.extQueues = append(t.extQueues, q)
	}
	b.sub, b.queue, b.cursor, b.src, b.consumerPeer = sub, q, cur, ch, newPeer
	s.link.CountTransfer(t.Manager, ch.Ref().PeerID, ctrlMsgBytes)
	return q
}

// syncBindings is the anti-entropy sweep: for every operator input edge
// whose producing channel retains history, retransmit the sequences the
// consumer's cursor is still missing (items lost to drop faults or
// partitions). Retransmissions pay the link like any delivery, but
// reliably — replay stands in for the acknowledged transfer a real
// deployment would use.
func (s *System) syncBindings() {
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			for _, b := range t.bindings {
				s.syncBinding(b)
			}
			for _, st := range t.subTargets {
				s.syncSubTarget(t, st)
			}
			s.syncResults(t)
		}
	}
}

// syncSubTarget refills a BySubscribe target's gaps from the named
// channel's retention buffer, like any binding.
func (s *System) syncSubTarget(t *Task, st *subTarget) {
	ch := t.namedCh
	if ch == nil || !ch.ReplayEnabled() || st.dest.Closed() {
		return
	}
	ref := ch.Ref()
	if s.isStale(ref) || !s.Net.Alive(st.peer) || !s.Net.Reachable(ref.PeerID, st.peer) {
		return
	}
	s.refill(ref.PeerID, st.peer, ch, st.cur)
}

// syncResults refills the manager's result reader (delivery is local, so
// gaps only appear across publisher migrations with trimmed buffers —
// repairing them here keeps Results() live instead of parked).
func (s *System) syncResults(t *Task) {
	ch := t.namedCh
	if ch == nil || t.resultCur == nil || !ch.ReplayEnabled() || t.resultQ.Closed() {
		return
	}
	if s.isStale(ch.Ref()) || !s.Net.Alive(t.Manager) {
		return
	}
	s.refill(ch.Ref().PeerID, t.Manager, ch, t.resultCur)
}

func (s *System) syncBinding(b *inputBinding) {
	ch, cur := b.src, b.cursor
	if ch == nil || cur == nil || !ch.ReplayEnabled() || b.queue.Closed() {
		return
	}
	ref := ch.Ref()
	if s.isStale(ref) || !s.Net.Alive(b.consumerPeer) || !s.Net.Reachable(ref.PeerID, b.consumerPeer) {
		return
	}
	s.refill(ref.PeerID, b.consumerPeer, ch, cur)
}

// syncReplicas keeps announced-replica mirrors gap-free: a forwarder
// whose cursor is missing sequences (lost on the origin→replica link)
// re-pulls them from the origin's retention buffer.
func (s *System) syncReplicas() {
	s.mu.Lock()
	fwds := append([]*replicaForwarder(nil), s.forwarders...)
	s.mu.Unlock()
	for _, f := range fwds {
		if f.cur == nil || f.severed || f.rep.Closed() {
			continue
		}
		ch, ok := s.Channel(f.orig)
		if !ok || !ch.ReplayEnabled() {
			continue
		}
		to := f.rep.Ref().PeerID
		if s.isStale(f.orig) || !s.Net.Alive(to) || !s.Net.Reachable(f.orig.PeerID, to) {
			continue
		}
		s.refill(f.orig.PeerID, to, ch, f.cur)
	}
}

// refill retransmits the retained items the cursor is genuinely missing:
// sequences it already delivered or holds parked ahead-of-order are not
// re-sent (they would only inflate the traffic counters to be dropped as
// duplicates on arrival).
func (s *System) refill(from, to string, ch *stream.Channel, cur *stream.Cursor) {
	next, hi := cur.Next(), ch.Seq()
	if next > hi {
		return
	}
	items, first := ch.Replay(next, hi)
	if first > next {
		cur.SkipTo(first)
	}
	sent := 0
	for _, it := range items {
		if cur.Has(it.Seq) {
			continue
		}
		cur.Offer(s.Net.Send(from, to, it))
		sent++
	}
	if sent > 0 {
		s.replayed.Add(uint64(sent))
	}
}

// coldSeed positions a replacement output channel for a checkpoint-less
// restart. With the full input history still retained upstream, the
// re-emission reproduces the original numbering exactly — rewind to 0 so
// downstream cursors deduplicate the overlap. Once any input has trimmed
// its buffer, that alignment is impossible (re-emission would renumber
// and collide with sequences consumers already hold, silently swallowing
// new data): continue above the old channel's high-water mark instead,
// trading bounded content duplicates (the retained window re-emitted
// under fresh numbers) for zero silent loss.
func (s *System) coldSeed(t *Task, n *algebra.Node, out *stream.Channel, oldSeq uint64) {
	for _, in := range n.Inputs {
		if ch, ok := s.nodeChannel(t, in); ok && ch.ReplayTrimmed() > 0 {
			if oldSeq > out.Seq() {
				out.SeedSeq(oldSeq)
			}
			return
		}
	}
	out.SeedSeq(0)
}

// ckptRec is one operator checkpoint: the output stream position, the
// per-input consumed positions, (for stateful processors) the operator
// state snapshot, and the undelivered output tail — retained items some
// live consumer has not received yet, which would otherwise die with the
// producer's buffer (an output published during a partition, or dropped
// on a link, counts as stable only once delivered). Together they pin a
// consistent cut: the tail re-seeds the replacement channel's buffer,
// and replaying each input from In[i]+1 into the restored state re-emits
// exactly the post-checkpoint output suffix, under the same sequence
// numbers from OutSeq+1, which downstream cursors deduplicate.
type ckptRec struct {
	OutSeq uint64
	In     []uint64
	State  *xmltree.Node
	Tail   []stream.Item
}

func (c *ckptRec) toXML() *xmltree.Node {
	n := xmltree.Elem("Ckpt")
	n.SetAttr("outSeq", strconv.FormatUint(c.OutSeq, 10))
	for i, seq := range c.In {
		in := xmltree.Elem("In")
		in.SetAttr("idx", strconv.Itoa(i))
		in.SetAttr("seq", strconv.FormatUint(seq, 10))
		n.Append(in)
	}
	if c.State != nil {
		n.Append(xmltree.Elem("State", c.State))
	}
	for _, it := range c.Tail {
		o := xmltree.Elem("Out", it.Tree.Clone())
		o.SetAttr("seq", strconv.FormatUint(it.Seq, 10))
		o.SetAttr("t", strconv.FormatInt(int64(it.Time), 10))
		n.Append(o)
	}
	return n
}

func parseCkpt(n *xmltree.Node) *ckptRec {
	if n == nil || n.Label != "Ckpt" {
		return nil
	}
	out, err := strconv.ParseUint(n.AttrOr("outSeq", "0"), 10, 64)
	if err != nil {
		return nil
	}
	rec := &ckptRec{OutSeq: out}
	for _, in := range n.ChildrenByLabel("In") {
		seq, err := strconv.ParseUint(in.AttrOr("seq", "0"), 10, 64)
		if err != nil {
			return nil
		}
		rec.In = append(rec.In, seq)
	}
	if st := n.Child("State"); st != nil {
		for _, c := range st.Children {
			if !c.IsText() {
				rec.State = c
				break
			}
		}
	}
	for _, o := range n.ChildrenByLabel("Out") {
		seq, err := strconv.ParseUint(o.AttrOr("seq", "0"), 10, 64)
		if err != nil {
			return nil
		}
		t, err := strconv.ParseInt(o.AttrOr("t", "0"), 10, 64)
		if err != nil {
			return nil
		}
		var tree *xmltree.Node
		for _, ch := range o.Children {
			if !ch.IsText() {
				tree = ch
				break
			}
		}
		if tree == nil {
			continue
		}
		rec.Tail = append(rec.Tail, stream.Item{Tree: tree, Seq: seq, Time: time.Duration(t)})
	}
	return rec
}

// lowWater returns the lowest next-undelivered sequence any live
// consumer of the channel still needs — binding cursors, replica
// forwarders and manager result readers alike. Items at or above it are
// not yet stable and belong in the checkpoint's tail.
func (s *System) lowWater(ref stream.Ref, hi uint64) uint64 {
	low := hi + 1
	consider := func(next uint64) {
		if next < low {
			low = next
		}
	}
	s.mu.Lock()
	peers := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	fwds := append([]*replicaForwarder(nil), s.forwarders...)
	s.mu.Unlock()
	for _, p := range peers {
		for _, t := range p.Tasks() {
			for _, b := range t.bindings {
				if b.src != nil && b.cursor != nil && b.src.Ref() == ref && !b.queue.Closed() {
					consider(b.cursor.Next())
				}
			}
			if t.resultCur != nil && t.namedCh != nil && t.namedCh.Ref() == ref && !t.resultQ.Closed() {
				consider(t.resultCur.Next())
			}
			if t.namedCh != nil && t.namedCh.Ref() == ref {
				for _, st := range t.subTargets {
					if !st.dest.Closed() {
						consider(st.cur.Next())
					}
				}
			}
		}
	}
	for _, f := range fwds {
		if f.cur != nil && !f.severed && f.orig == ref {
			consider(f.cur.Next())
		}
	}
	return low
}

// ckptOpID names one plan operator stably across migrations: the
// stream's first-deployment identity, which is also what replica records
// chain to.
func ckptOpID(t *Task, n *algebra.Node) string {
	if ref, ok := t.origRefs[n]; ok && ref != (stream.Ref{}) {
		return ref.String()
	}
	if n.Op == algebra.OpPublish && n.Publish != nil {
		return "publish:" + n.Publish.ChannelID
	}
	return "op:" + n.Label()
}

// CheckpointNow snapshots every running operator of every live peer's
// tasks into the stream-definition database (replicated DHT storage, so
// checkpoints survive the crash of their own host). Each snapshot is
// taken inside Handle.Sync — serialized with the operator's processing
// loop — so state, consumed cursors and output sequence form one
// consistent cut. Step drives this on the CheckpointInterval cadence;
// tests may call it directly.
func (s *System) CheckpointNow() {
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			p.checkpointTask(t)
		}
	}
}

func (p *Peer) checkpointTask(t *Task) {
	s := p.sys
	for n, inst := range t.procs {
		if !s.Net.Alive(n.Peer) {
			continue // a dead host cannot checkpoint
		}
		var out *stream.Channel
		if n.Op == algebra.OpPublish {
			out = t.namedCh
		} else if ch, ok := s.Channel(t.refs[n]); ok {
			out = ch
		}
		if out == nil {
			continue
		}
		rec := &ckptRec{In: make([]uint64, len(n.Inputs))}
		inst.handle.Sync(func() {
			for i := range n.Inputs {
				rec.In[i] = inst.handle.Consumed(i)
			}
			rec.OutSeq = out.Seq()
			if sn, ok := inst.proc.(operators.Snapshotter); ok {
				rec.State = sn.Snapshot()
			}
		})
		// An output is stable only once delivered: retained items some
		// live consumer still lacks (partition in progress, drop not yet
		// swept) ride along as the checkpoint's tail, so they survive the
		// producer's buffer.
		if low := s.lowWater(out.Ref(), rec.OutSeq); low <= rec.OutSeq {
			rec.Tail, _ = out.Replay(low, rec.OutSeq)
		}
		xml := rec.toXML().String()
		op := ckptOpID(t, n)
		if err := s.DB.PutCheckpoint(t.ID, op, xml); err != nil {
			continue // empty ring mid-churn: retry next interval
		}
		// The checkpoint ships from the operator's host to the record's
		// DHT owner and shows up in the traffic counters like any other
		// monitoring cost.
		if owner, err := s.Ring.Owner(kadop.CheckpointKey(t.ID, op)); err == nil {
			s.link.CountTransfer(n.Peer, owner, len(xml))
		}
	}
}

// loadCheckpoint fetches the latest surviving checkpoint for one plan
// operator, or nil for a cold restart.
func (s *System) loadCheckpoint(from string, t *Task, n *algebra.Node) *ckptRec {
	raw, ok, err := s.DB.Checkpoint(from, t.ID, ckptOpID(t, n))
	if err != nil || !ok {
		return nil
	}
	doc, err := xmltree.Parse(raw)
	if err != nil {
		return nil
	}
	return parseCkpt(doc)
}
