package peer

import (
	"testing"
	"time"
)

// TestManagerDeathRehomesTask closes PR 2's orphaned-manager gap: when
// the peer acting as a task's subscription manager dies, the task must
// not vanish from the live peers' databases. The supervisor re-homes
// the management role to a live peer, the ordinary repair phases then
// migrate whatever else the dead peer hosted (here: the publisher), and
// with the replay layer on the run stays exactly-once — including the
// events driven while the manager was down.
func TestManagerDeathRehomesTask(t *testing.T) {
	opts := DefaultConfig()
	opts.Replay.Buffer = 256
	opts.Replay.CheckpointInterval = 2 * time.Second
	sys := MustSystem(opts)
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src.com")
	registerService(src)
	client := sys.MustAddPeer("c.com")
	sys.MustAddPeer("w1")
	sys.MustAddPeer("w2")
	sys.MustAddPeer("mon")
	for _, busy := range []string{"src.com", "c.com", "mon"} {
		sys.Net.AddLoad(busy, 10)
	}

	task, err := mgr.DeployPlan(relayPlan("src.com", "w1", "mgr", "rehomed"))
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.StartSupervisor("mon", DetectorOptions{Interval: time.Second, Suspicion: 2 * time.Second})

	drive := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
				t.Fatal(err)
			}
			sys.Step(time.Second)
		}
	}
	drive(3)
	waitResults(t, task, 3)

	// The manager (which also hosts the publisher) dies mid-run.
	sys.Net.Crash("mgr")
	drive(2) // events during the outage — recoverable via replay
	for i := 0; i < 20 && len(sup.Deaths()) == 0; i++ {
		sys.Step(time.Second)
	}
	if got := sup.Deaths(); len(got) != 1 || got[0] != "mgr" {
		t.Fatalf("deaths = %v, want [mgr]", got)
	}

	var rehome FailoverEvent
	for _, ev := range sup.Events() {
		if ev.Operator == "manager" && ev.From == "mgr" {
			rehome = ev
		}
	}
	if !rehome.Repaired() {
		t.Fatalf("no manager re-home event (events: %+v)", sup.Events())
	}
	newMgr := sys.Peer(rehome.To)
	if newMgr == nil || !sys.Net.Alive(rehome.To) {
		t.Fatalf("task re-homed to %q, which is not a live peer", rehome.To)
	}
	if task.Manager != rehome.To {
		t.Errorf("task.Manager = %q, want %q", task.Manager, rehome.To)
	}
	found := false
	for _, tt := range newMgr.Tasks() {
		if tt == task {
			found = true
		}
	}
	if !found {
		t.Errorf("task missing from %s's subscription database", rehome.To)
	}
	if len(mgr.Tasks()) != 0 {
		t.Errorf("dead manager still lists %d tasks", len(mgr.Tasks()))
	}

	drive(3)
	// 3 pre-crash + 2 outage (replayed) + 3 post-repair, exactly once.
	waitResults(t, task, 8)
	task.Stop()
	if got := len(task.Results().Drain()); got != 8 {
		t.Fatalf("results = %d, want exactly 8 (exactly-once across the manager migration)", got)
	}
	if len(task.Degraded()) != 0 {
		t.Errorf("task degraded: %v", task.Degraded())
	}
}

// TestManagerDeathRehomesLossy: with the replay layer off, re-homing
// still works — the task keeps its manager and publisher, only the
// outage window is lost (PR 1's fail-stop semantics).
func TestManagerDeathRehomesLossy(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src.com")
	registerService(src)
	client := sys.MustAddPeer("c.com")
	sys.MustAddPeer("w1")
	sys.MustAddPeer("w2")
	sys.MustAddPeer("mon")
	for _, busy := range []string{"src.com", "c.com", "mon"} {
		sys.Net.AddLoad(busy, 10)
	}
	task, err := mgr.DeployPlan(relayPlan("src.com", "w1", "mgr", "rehomed2"))
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.StartSupervisor("mon", DetectorOptions{Interval: time.Second, Suspicion: 2 * time.Second})

	drive := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
				t.Fatal(err)
			}
			sys.Step(time.Second)
		}
	}
	drive(3)
	waitResults(t, task, 3)
	sys.Net.Crash("mgr")
	for i := 0; i < 20 && len(sup.Deaths()) == 0; i++ {
		sys.Step(time.Second)
	}
	if task.Manager == "mgr" {
		t.Fatal("task was not re-homed")
	}
	drive(3)
	waitResults(t, task, 6)
	task.Stop()
	if got := len(task.Results().Drain()); got < 6 {
		t.Fatalf("results = %d, want >= 6 (post-repair events must flow)", got)
	}
}
