package peer

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/operators"
	"p2pm/internal/reuse"
	"p2pm/internal/stream"
)

// ctrlMsgBytes is the accounted size of one failover control message
// (re-deployment order, re-subscription): the repair path shows up in
// the traffic counters like everything else.
const ctrlMsgBytes = 256

// FailoverEvent records one repair action taken when a peer died.
type FailoverEvent struct {
	TaskID   string
	Operator string // label of the affected operator (or consumed channel)
	From     string // the dead host
	To       string // the new host; empty when the loss is unrepairable
	// ViaReplica is true when an announced replica (Section 5) provided
	// the failover path.
	ViaReplica bool
	// At is the virtual time of the repair (= detection time: repair is
	// immediate once the detector fires).
	At time.Duration
}

// Repaired reports whether the event found a new host.
func (e FailoverEvent) Repaired() bool { return e.To != "" }

// markStale records that a channel lost its producer (the operator
// migrated elsewhere). Staleness propagates through replica forwarders:
// a replica of a stale stream forwards nothing, so it is stale too —
// except the channel a re-deployed operator just adopted as its new
// output.
func (s *System) markStale(ref, except stream.Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markStaleLocked(ref, except)
}

func (s *System) markStaleLocked(ref, except stream.Ref) {
	if ref == except || s.stale[ref] {
		return
	}
	s.stale[ref] = true
	for _, f := range s.forwarders {
		if f.orig == ref {
			s.markStaleLocked(f.rep.Ref(), except)
		}
	}
}

// isStale reports whether a channel lost its producer to a migration.
func (s *System) isStale(ref stream.Ref) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stale[ref]
}

// usable reports whether a channel is a viable provider: host alive and
// producer still attached.
func (s *System) usable(ref stream.Ref) bool {
	return s.Net.Alive(ref.PeerID) && !s.isStale(ref)
}

// aliveOnly wraps a reuse chooser so it never selects a provider hosted
// on a crashed peer, or one whose producer migrated away, when a viable
// alternative exists.
func aliveOnly(s *System, inner reuse.Chooser) reuse.Chooser {
	return func(consumer string, original stream.Ref, replicas []stream.Ref) stream.Ref {
		var ok []stream.Ref
		for _, r := range replicas {
			if s.usable(r) {
				ok = append(ok, r)
			}
		}
		if !s.usable(original) && len(ok) > 0 {
			return inner(consumer, ok[0], ok[1:])
		}
		return inner(consumer, original, ok)
	}
}

// Supervisor couples a failure detector with self-healing: a declared
// death triggers FailPeer (crash the substrate links, re-replicate DHT
// keys, migrate the dead peer's operators), a recovery rejoins the peer.
type Supervisor struct {
	sys *System
	det *Detector

	mu     sync.Mutex
	events []FailoverEvent
	deaths []string
}

// StartSupervisor starts a failure detector hosted at home (watching all
// currently registered peers) and wires self-healing to it. Tick it via
// System.Step.
func (s *System) StartSupervisor(home string, opts DetectorOptions) *Supervisor {
	sup := &Supervisor{sys: s, det: s.StartDetector(home, opts)}
	sup.det.OnDeath(func(peer string, at time.Duration) {
		evs := s.FailPeer(peer, at)
		sup.mu.Lock()
		sup.deaths = append(sup.deaths, peer)
		sup.events = append(sup.events, evs...)
		sup.mu.Unlock()
	})
	sup.det.OnRecover(func(peer string, at time.Duration) {
		s.RejoinPeer(peer)
	})
	return sup
}

// Detector exposes the underlying failure detector (e.g. to Watch peers
// added after the supervisor started).
func (sup *Supervisor) Detector() *Detector { return sup.det }

// Events returns all failover actions taken so far.
func (sup *Supervisor) Events() []FailoverEvent {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return append([]FailoverEvent(nil), sup.events...)
}

// Deaths returns the peers declared dead so far, in detection order.
func (sup *Supervisor) Deaths() []string {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return append([]string(nil), sup.deaths...)
}

// FailPeer processes a confirmed-dead peer: its substrate links go down,
// the DHT drops it and re-replicates the keys it held, and every live
// task with operators or consumed channels on it is repaired — operators
// are re-deployed onto live peers (preferring hosts that announced a
// replica of the affected stream) and consumers are re-bound end-to-end.
// It returns the repair actions taken. FailPeer is what the Supervisor
// calls on detection; tests and harnesses may call it directly.
func (s *System) FailPeer(dead string, at time.Duration) []FailoverEvent {
	s.Net.Crash(dead) //nolint:errcheck // unknown nodes have no links to cut
	if s.Peer(dead) != nil {
		s.Ring.Fail(dead) //nolint:errcheck // double-fail is a no-op
	}
	// Sever replica forwarders fed from the dead peer: the origin's
	// eventual teardown must not close replica channels a re-deployed
	// operator is about to take over.
	s.mu.Lock()
	for _, f := range s.forwarders {
		if f.orig.PeerID == dead {
			f.sub.Detach()
		}
	}
	s.mu.Unlock()
	var events []FailoverEvent
	// Phase 1: re-deploy the operators the dead peer hosted. This runs
	// before consumer re-binding so replacement providers exist (and are
	// announced as replicas) by the time consumers look for one.
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			events = append(events, p.repairOperators(t, dead, at)...)
		}
	}
	// Phase 2: re-bind subscriptions that consumed channels hosted on
	// the dead peer (reused streams, replicas).
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			events = append(events, p.repairChannelIns(t, dead, at)...)
		}
	}
	return events
}

// RejoinPeer brings a recovered peer back: its links come up and it
// rejoins the DHT ring (which rebalances key placement). Tasks migrated
// away during the outage stay where they are — the peer simply becomes
// eligible for new work.
func (s *System) RejoinPeer(name string) {
	s.Net.Recover(name) //nolint:errcheck // unknown nodes have no links
	if s.Peer(name) != nil {
		s.Ring.Join(name) //nolint:errcheck // already-joined is fine
	}
}

// livePeers returns the registered peers whose node is up, sorted by
// name for deterministic repair order.
func (s *System) livePeers() []*Peer {
	s.mu.Lock()
	names := make([]string, 0, len(s.peers))
	for n := range s.peers {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	var out []*Peer
	for _, n := range names {
		if s.Net.Alive(n) {
			out = append(out, s.Peer(n))
		}
	}
	return out
}

func sortedTasks(p *Peer) []*Task {
	ts := p.Tasks()
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	return ts
}

// repairOperators migrates every operator of t hosted on the dead peer.
// Children are visited before parents so a parent re-deployed in the
// same pass subscribes to its child's replacement channel.
func (p *Peer) repairOperators(t *Task, dead string, at time.Duration) []FailoverEvent {
	var events []FailoverEvent
	postorder(t.Plan, func(n *algebra.Node) {
		if n.Peer != dead {
			return
		}
		switch n.Op {
		case algebra.OpChannelIn:
			// Consumed channels are re-bound in phase 2.
		case algebra.OpAlerter, algebra.OpDynAlerter:
			// The event source itself died: its events originate at the
			// dead peer, so no live peer can produce them. The task is
			// degraded until the peer returns.
			t.degraded = append(t.degraded, n.Label())
			events = append(events, FailoverEvent{
				TaskID: t.ID, Operator: n.Label(), From: dead, At: at,
			})
		case algebra.OpPublish:
			// The publisher runs at the subscription manager; a task
			// whose manager died is not repaired (its subscriber is
			// gone). A publisher stranded elsewhere is unrepairable too:
			// its human-facing sinks lived on the dead peer.
			t.degraded = append(t.degraded, n.Label())
			events = append(events, FailoverEvent{
				TaskID: t.ID, Operator: n.Label(), From: dead, At: at,
			})
		default:
			ev, err := p.redeployOperator(t, n, dead, at)
			if err != nil {
				t.degraded = append(t.degraded, n.Label()+": "+err.Error())
				ev = FailoverEvent{TaskID: t.ID, Operator: n.Label(), From: dead, At: at}
			}
			events = append(events, ev)
		}
	})
	return events
}

// redeployOperator moves one processor from the dead peer to a live one:
// a host is chosen (preferring one that announced a replica of the
// operator's output stream, whose channel then simply continues), the
// operator restarts there with fresh subscriptions to its inputs, and
// every downstream consumer is re-bound to the replacement channel while
// keeping its queue. State accumulated at the dead peer (join histories,
// duplicate-removal memory) is lost — the price of fail-stop crashes.
func (p *Peer) redeployOperator(t *Task, n *algebra.Node, dead string, at time.Duration) (FailoverEvent, error) {
	s := p.sys
	oldRef := t.refs[n]
	origRef, hasOrig := t.origRefs[n]
	if !hasOrig {
		origRef = oldRef
	}

	// Prefer a live peer that announced a replica of this stream: it is
	// already receiving the data and republishing it under a channel
	// other consumers may already use. Replica records chain to the
	// original identity, so look them up there.
	replicas, _, _ := s.DB.Replicas(p.name, origRef)
	newPeer := ""
	var out *stream.Channel
	viaReplica := false
	for _, r := range replicas {
		if r.PeerID == dead || !s.usable(r) {
			continue
		}
		if ch, ok := s.Channel(r); ok {
			newPeer, out, viaReplica = r.PeerID, ch, true
			// The task's operator now produces this channel, so the
			// task owns its lifecycle: it closes when the operator's
			// inputs end.
			t.channels = append(t.channels, ch)
			break
		}
	}
	if newPeer == "" {
		newPeer = s.leastLoadedLive(dead)
		if newPeer == "" {
			return FailoverEvent{}, fmt.Errorf("no live peer to host %s", n.Label())
		}
		out = stream.NewChannel(newPeer, s.nextStreamID(newPeer))
		s.registerChannel(out)
		t.channels = append(t.channels, out)
		s.Net.AddLoad(newPeer, 1)
		t.loads = append(t.loads, newPeer)
	}

	// Re-bind downstream consumers first, so the old channel's teardown
	// can no longer reach them.
	for _, b := range t.bindings {
		if b.child == n {
			p.rebind(t, b, out)
		}
	}

	// Fresh subscriptions to the inputs; the dead operator's old input
	// queues are closed so its goroutine terminates instead of waiting
	// on starved queues forever. Items buffered there are lost (they
	// were at the crashed peer).
	myBindings := t.bindingsOf(n)
	if len(myBindings) != len(n.Inputs) {
		return FailoverEvent{}, fmt.Errorf("bindings out of sync for %s", n.Label())
	}
	queues := make([]*stream.Queue, len(n.Inputs))
	for i, in := range n.Inputs {
		ch, ok := s.nodeChannel(t, in)
		if !ok {
			return FailoverEvent{}, fmt.Errorf("input channel of %s not found", n.Label())
		}
		sub := p.subscribe(t, ch, newPeer)
		b := myBindings[i]
		b.sub.Unsubscribe()
		// When an earlier repair in the same pass re-bound this input
		// (chained operators on the dead peer), b.sub's queue is not the
		// old operator's reader — close that reader explicitly so the
		// dead instance's goroutine terminates.
		b.queue.Close()
		b.sub = sub
		b.queue = sub.Queue
		b.consumerPeer = newPeer
		queues[i] = sub.Queue
		s.Net.CountTransfer(t.Manager, ch.Ref().PeerID, ctrlMsgBytes)
	}

	proc, err := p.makeProc(n)
	if err != nil {
		return FailoverEvent{}, err
	}
	h := operators.Run(proc, queues, operators.ChannelPublish(out))
	t.handles = append(t.handles, h)

	n.Peer = newPeer
	t.refs[n] = out.Ref()
	// The abandoned channel has no producer anymore: never offer it (or
	// forwarders fed from it, other than the adopted one) as a provider
	// again, even after its host recovers.
	s.markStale(oldRef, out.Ref())
	// Announce the replacement as a provider under the stream's original
	// identity (consumers' ChannelIn Origin and published descriptors
	// both name it), so phase 2 and future subscriptions find it across
	// any number of migrations.
	s.DB.PublishReplica(origRef, out.Ref()) //nolint:errcheck // ring is non-empty here
	if oldRef != origRef {
		s.DB.PublishReplica(oldRef, out.Ref()) //nolint:errcheck // same ring
	}
	s.Net.CountTransfer(t.Manager, newPeer, ctrlMsgBytes)

	return FailoverEvent{
		TaskID: t.ID, Operator: n.Label(), From: dead, To: newPeer,
		ViaReplica: viaReplica, At: at,
	}, nil
}

// repairChannelIns re-binds the task's subscriptions to channels that
// lived on the dead peer (reused streams and replicas) onto a live
// provider of the same original stream.
func (p *Peer) repairChannelIns(t *Task, dead string, at time.Duration) []FailoverEvent {
	var events []FailoverEvent
	postorder(t.Plan, func(n *algebra.Node) {
		if n.Op != algebra.OpChannelIn || n.Channel.PeerID != dead {
			return
		}
		origin := n.Origin
		if origin == (stream.Ref{}) {
			origin = n.Channel
		}
		repl, viaReplica := p.sys.liveProvider(p.name, origin, dead)
		if repl == nil {
			t.degraded = append(t.degraded, "channel "+n.Channel.String())
			events = append(events, FailoverEvent{
				TaskID: t.ID, Operator: "∈" + n.Channel.String(), From: dead, At: at,
			})
			return
		}
		for _, b := range t.bindings {
			if b.child == n {
				p.rebind(t, b, repl)
				p.sys.Net.CountTransfer(b.consumerPeer, repl.Ref().PeerID, ctrlMsgBytes)
			}
		}
		n.Channel = repl.Ref()
		events = append(events, FailoverEvent{
			TaskID: t.ID, Operator: "∈" + origin.String(), From: dead,
			To: repl.Ref().PeerID, ViaReplica: viaReplica, At: at,
		})
	})
	return events
}

// liveProvider finds a live channel carrying the stream origin: the
// original channel if its host is up and it still has its producer,
// else any usable announced replica (including re-deployments
// registered by redeployOperator, which chain to the origin).
func (s *System) liveProvider(from string, origin stream.Ref, dead string) (*stream.Channel, bool) {
	if origin.PeerID != dead && s.usable(origin) {
		if ch, ok := s.Channel(origin); ok {
			return ch, false
		}
	}
	replicas, _, _ := s.DB.Replicas(from, origin)
	for _, r := range replicas {
		if r.PeerID == dead || !s.usable(r) {
			continue
		}
		if ch, ok := s.Channel(r); ok {
			return ch, true
		}
	}
	return nil, false
}

// rebind swaps the producer feeding one input binding: the old
// subscription detaches (without closing the consumer's queue) and a new
// subscription on ch delivers into the same queue over the simulated
// network. The consumer operator never notices the swap.
func (p *Peer) rebind(t *Task, b *inputBinding, ch *stream.Channel) {
	b.sub.Detach()
	s := p.sys
	from, to, q := ch.Ref().PeerID, b.consumerPeer, b.queue
	sub := ch.Subscribe(to, func(it stream.Item, _ *stream.Queue) {
		if d, ok := s.Net.Deliver(from, to, it); ok {
			q.Push(d)
			if d.EOS() {
				q.Close()
			}
		}
	})
	b.sub = sub
	if !p.trackSub(t, ch, sub) {
		// Shared source: it will never close on this task's account, so
		// Stop must close the consumer's queue explicitly (the eager
		// cancellation extSubs get closes only the subscription's own,
		// unused, queue).
		t.extQueues = append(t.extQueues, q)
	}
}

// nodeChannel resolves the channel currently carrying a plan node's
// output stream.
func (s *System) nodeChannel(t *Task, n *algebra.Node) (*stream.Channel, bool) {
	if n.Op == algebra.OpChannelIn {
		return s.Channel(n.Channel)
	}
	ref, ok := t.refs[n]
	if !ok {
		return nil, false
	}
	return s.Channel(ref)
}

// bindingsOf returns the input bindings of one consumer operator in
// input order (they are recorded in deployment order).
func (t *Task) bindingsOf(n *algebra.Node) []*inputBinding {
	var out []*inputBinding
	for _, b := range t.bindings {
		if b.consumer == n {
			out = append(out, b)
		}
	}
	return out
}

// leastLoadedLive picks the live peer with the lowest operator load
// (name as tie-breaker), excluding the dead peer.
func (s *System) leastLoadedLive(dead string) string {
	best, bestLoad := "", 0
	for _, p := range s.livePeers() {
		if p.name == dead {
			continue
		}
		l := s.Net.Load(p.name)
		if best == "" || l < bestLoad {
			best, bestLoad = p.name, l
		}
	}
	return best
}

// postorder visits children before parents.
func postorder(n *algebra.Node, f func(*algebra.Node)) {
	for _, in := range n.Inputs {
		postorder(in, f)
	}
	f(n)
}
