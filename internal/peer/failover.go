package peer

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/operators"
	"p2pm/internal/reuse"
	"p2pm/internal/stream"
)

// ctrlMsgBytes is the accounted size of one failover control message
// (re-deployment order, re-subscription): the repair path shows up in
// the traffic counters like everything else.
const ctrlMsgBytes = 256

// FailoverEvent records one repair action taken when a peer died.
type FailoverEvent struct {
	TaskID   string
	Operator string // label of the affected operator (or consumed channel)
	From     string // the dead host
	To       string // the new host; empty when the loss is unrepairable
	// ViaReplica is true when an announced replica (Section 5) provided
	// the failover path.
	ViaReplica bool
	// At is the virtual time of the repair (= detection time: repair is
	// immediate once the detector fires).
	At time.Duration
}

// Repaired reports whether the event found a new host.
func (e FailoverEvent) Repaired() bool { return e.To != "" }

// markStale records that a channel lost its producer (the operator
// migrated elsewhere). Staleness propagates through replica forwarders:
// a replica of a stale stream forwards nothing, so it is stale too —
// except the channel a re-deployed operator just adopted as its new
// output.
func (s *System) markStale(ref, except stream.Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markStaleLocked(ref, except)
}

func (s *System) markStaleLocked(ref, except stream.Ref) {
	if ref == except || s.stale[ref] {
		return
	}
	s.stale[ref] = true
	for _, f := range s.forwarders {
		if f.orig == ref {
			s.markStaleLocked(f.rep.Ref(), except)
		}
	}
}

// isStale reports whether a channel lost its producer to a migration.
func (s *System) isStale(ref stream.Ref) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stale[ref]
}

// usable reports whether a channel is a viable provider: host alive and
// producer still attached.
func (s *System) usable(ref stream.Ref) bool {
	return s.Net.Alive(ref.PeerID) && !s.isStale(ref)
}

// aliveOnly wraps a reuse chooser so it never selects a provider hosted
// on a crashed peer, or one whose producer migrated away, when a viable
// alternative exists.
func aliveOnly(s *System, inner reuse.Chooser) reuse.Chooser {
	return func(consumer string, original stream.Ref, replicas []stream.Ref) stream.Ref {
		var ok []stream.Ref
		for _, r := range replicas {
			if s.usable(r) {
				ok = append(ok, r)
			}
		}
		if !s.usable(original) && len(ok) > 0 {
			return inner(consumer, ok[0], ok[1:])
		}
		return inner(consumer, original, ok)
	}
}

// Supervisor couples a failure detector with self-healing: a declared
// death triggers FailPeer (crash the substrate links, re-replicate DHT
// keys, migrate the dead peer's operators), a recovery rejoins the peer.
// The detector may be the single-home heartbeat Detector or the
// decentralized GossipDetector — the supervisor only sees the
// FailureDetector events.
type Supervisor struct {
	sys *System
	det FailureDetector

	mu     sync.Mutex
	events []FailoverEvent
	deaths []string
}

// StartSupervisor starts a heartbeat failure detector hosted at home
// (watching all currently registered peers) and wires self-healing to
// it. Tick it via System.Step.
func (s *System) StartSupervisor(home string, opts DetectorOptions) *Supervisor {
	return s.superviseDetector(s.StartDetector(home, opts))
}

// StartGossipSupervisor wires self-healing to a SWIM-style gossip
// failure detector spanning every registered peer. Unlike
// StartSupervisor there is no home: detection is hosted everywhere, and
// the supervisor acts on the quorum-confirmed membership view, so it
// keeps working when any individual peer — including whichever peer a
// home detector would have lived on — crashes or is partitioned away.
func (s *System) StartGossipSupervisor(opts GossipOptions) *Supervisor {
	if opts.Seed == 0 {
		opts.Seed = s.Config().Seed
	}
	return s.superviseDetector(s.StartGossipDetector(opts))
}

// superviseDetector is the shared supervisor wiring over any detector.
func (s *System) superviseDetector(det FailureDetector) *Supervisor {
	sup := &Supervisor{sys: s, det: det}
	sup.det.OnDeath(func(peer string, at time.Duration) {
		evs := s.FailPeer(peer, at)
		sup.mu.Lock()
		sup.deaths = append(sup.deaths, peer)
		sup.events = append(sup.events, evs...)
		sup.mu.Unlock()
	})
	sup.det.OnRecover(func(peer string, at time.Duration) {
		evs := s.RejoinPeer(peer)
		sup.mu.Lock()
		sup.events = append(sup.events, evs...)
		sup.mu.Unlock()
	})
	return sup
}

// Detector exposes the underlying failure detector (e.g. to Watch peers
// added after the supervisor started).
func (sup *Supervisor) Detector() FailureDetector { return sup.det }

// Events returns all failover actions taken so far.
func (sup *Supervisor) Events() []FailoverEvent {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return append([]FailoverEvent(nil), sup.events...)
}

// Deaths returns the peers declared dead so far, in detection order.
func (sup *Supervisor) Deaths() []string {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return append([]string(nil), sup.deaths...)
}

// FailPeer processes a confirmed-dead peer: its substrate links go down,
// the DHT drops it and re-replicates the keys it held, and every live
// task with operators or consumed channels on it is repaired — operators
// are re-deployed onto live peers (preferring hosts that announced a
// replica of the affected stream) and consumers are re-bound end-to-end.
// It returns the repair actions taken. FailPeer is what the Supervisor
// calls on detection; tests and harnesses may call it directly.
func (s *System) FailPeer(dead string, at time.Duration) []FailoverEvent {
	s.Net.Crash(dead) //nolint:errcheck // unknown nodes have no links to cut
	if s.Peer(dead) != nil {
		s.Ring.Fail(dead) //nolint:errcheck // double-fail is a no-op
	}
	s.severForwarders(dead)
	return s.repairDeparted(dead, at)
}

// LeavePeer removes a peer gracefully — the cooperative counterpart of
// FailPeer's crash handling, closing the membership layer's "a departing
// peer announces and hands off instead of being suspected" follow-up.
// The departure is announced to every failure detector (gossip
// disseminates it, no suspicion window ever opens, no death event
// fires), the peer's DHT keys migrate to their new owners with the store
// intact (Ring.Leave, not Fail — replication never thins), and its
// hosted operators and managed tasks move to live peers immediately
// through the ordinary repair phases. With the replay layer on, a
// checkpoint sweep runs first while the leaver is still up, so the
// migrations restore warm state and the handoff is lossless — zero
// detection latency, zero outage window. The repair actions taken are
// returned; leave events reach membership alerters through the ring's
// leave hooks as usual.
func (s *System) LeavePeer(name string) ([]FailoverEvent, error) {
	if s.Peer(name) == nil {
		return nil, fmt.Errorf("peer: %s is not a member", name)
	}
	if !s.Net.Alive(name) {
		return nil, fmt.Errorf("peer: %s is down; a crashed peer cannot leave gracefully", name)
	}
	at := s.Net.Clock().Now()
	// Warm handoff: capture fresh checkpoints while the leaver still
	// runs, so its operators' replacements restore the present, not the
	// last periodic sweep.
	if s.replayOn() {
		s.CheckpointNow()
	}
	// The departure announcement: one control message on the wire, every
	// detector unlearns the peer with no suspicion window.
	s.mu.Lock()
	dets := append([]FailureDetector(nil), s.detectors...)
	s.mu.Unlock()
	for _, det := range dets {
		det.Leave(name)
	}
	if tgt := s.leastLoadedLive(name); tgt != "" {
		s.link.CountTransfer(name, tgt, ctrlMsgBytes)
	}
	// Graceful ring departure: the leaver's stored copies migrate to the
	// new owners (unlike Fail, where they die with it).
	s.Ring.Leave(name) //nolint:errcheck // membership was checked above
	s.Net.Crash(name)  //nolint:errcheck // the peer is gone; links go down
	s.severForwarders(name)
	events := s.repairDeparted(name, at)
	if s.aggDegree() > 1 {
		// Ring ownership changed: re-parent any aggregation-tree
		// interiors whose DHT-derived host moved with the departure.
		events = append(events, s.RebalanceAggTrees(at)...)
	}
	return events, nil
}

// severForwardersFrom detaches replica forwarders fed from one specific
// channel — the planned-move counterpart of severForwarders: the origin's
// host stays alive, but the producer is migrating and the old channel's
// teardown EOS must not cascade into replica channels consumers read.
func (s *System) severForwardersFrom(ref stream.Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.forwarders {
		if f.orig == ref && !f.severed {
			f.sub.Detach()
			f.severed = true
		}
	}
}

// severForwarders detaches replica forwarders fed from a departed peer:
// the origin's eventual teardown must not close replica channels a
// re-deployed operator is about to take over, and the anti-entropy sweep
// must stop pulling from the abandoned origin.
func (s *System) severForwarders(from string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.forwarders {
		if f.orig.PeerID == from {
			f.sub.Detach()
			f.severed = true
		}
	}
}

// repairDeparted runs the repair phases over a peer that is gone —
// crashed (FailPeer) or gracefully left (LeavePeer); its links are
// already down and the ring no longer holds it.
func (s *System) repairDeparted(dead string, at time.Duration) []FailoverEvent {
	var events []FailoverEvent
	// Phase 0: re-home orphaned tasks. A task whose subscription manager
	// died would otherwise vanish from every live peer's database —
	// never repaired, never checkpointed, never swept (PR 2's
	// "orphaned manager" gap). The management role moves to a live
	// peer, which then owns the repair of whatever the dead peer also
	// hosted (phases 1–2 find the task in its new home).
	if mgrPeer := s.Peer(dead); mgrPeer != nil {
		for _, t := range sortedTasks(mgrPeer) {
			newMgr := s.leastLoadedLive(dead)
			if newMgr == "" {
				continue // nobody left to adopt it; the task stays orphaned
			}
			events = append(events, s.rehomeTask(mgrPeer, t, newMgr, at))
		}
	}
	// Phase 1: re-deploy the operators the dead peer hosted. This runs
	// before consumer re-binding so replacement providers exist (and are
	// announced as replicas) by the time consumers look for one.
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			events = append(events, p.repairOperators(t, dead, at)...)
		}
	}
	// Phase 2: re-bind subscriptions that consumed channels hosted on
	// the dead peer (reused streams, replicas).
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			events = append(events, p.repairChannelIns(t, dead, at)...)
		}
	}
	return events
}

// rehomeTask moves a task's subscription-manager role off a dead peer:
// the task record migrates to newMgr's subscription database and the
// result reader re-binds there, resuming from the result cursor when
// the replay layer is on. Operators the dead peer hosted (often
// including the publisher, when the manager ran it locally) are NOT
// handled here — the task now lives in a live peer's database, so the
// ordinary repair phases find and migrate them.
func (s *System) rehomeTask(old *Peer, t *Task, newMgr string, at time.Duration) FailoverEvent {
	np := s.Peer(newMgr)
	old.mu.Lock()
	delete(old.tasks, t.ID)
	old.mu.Unlock()
	np.mu.Lock()
	np.tasks[t.ID] = t
	np.mu.Unlock()
	t.Manager = newMgr

	// Re-bind the result reader at the new manager. When the named
	// channel itself sat on the dead peer the publisher is about to be
	// re-deployed (phase 1), which re-binds results as part of the
	// migration — re-binding to the doomed channel here would replay
	// from a buffer that died with its host.
	ch := t.namedCh
	if ch == nil {
		ch = t.resultCh
	}
	if ch != nil && ch.Ref().PeerID != old.name {
		if t.resultSub != nil {
			t.resultSub.Detach()
		}
		var resume uint64
		if t.resultCur != nil && ch.ReplayEnabled() {
			resume = t.resultCur.Next()
		}
		np.bindResults(t, ch, resume)
	}
	// The adopting manager pulls the subscription-database record from
	// its surviving DHT copy (the dead peer's links are already cut, so
	// nothing can flow to or from it); the fetch is accounted like any
	// other repair control message.
	if owner, err := s.Ring.Owner(t.ID); err == nil {
		s.link.CountTransfer(owner, newMgr, ctrlMsgBytes)
	}
	return FailoverEvent{TaskID: t.ID, Operator: "manager", From: old.name, To: newMgr, At: at}
}

// RejoinPeer brings a recovered peer back: its links come up and it
// rejoins the DHT ring (which rebalances key placement). Tasks migrated
// away during the outage stay where they are — the peer simply becomes
// eligible for new work. Aggregation-tree interiors ARE re-placed,
// though: rejoining moves ring ownership, and leaving the interiors
// where the outage pushed them would let the deployed tree drift from
// the DHT-derived placement that joins, leaves and future failovers
// re-derive (System.AggPlacements) — the same rebalance every other
// membership change performs.
func (s *System) RejoinPeer(name string) []FailoverEvent {
	s.Net.Recover(name) //nolint:errcheck // unknown nodes have no links
	if s.Peer(name) == nil {
		return nil
	}
	s.Ring.Join(name) //nolint:errcheck // already-joined is fine
	if s.aggDegree() > 1 {
		return s.RebalanceAggTrees(s.Net.Clock().Now())
	}
	return nil
}

// RebalanceAggTrees re-places aggregation-tree interior operators whose
// DHT-derived host changed with ring membership: each interior's routing
// key is resolved against the current ring, and nodes whose owner moved
// migrate there through the ordinary operator re-deployment path —
// downstream consumers re-bind, inputs re-subscribe from their cursors,
// and with replay on the move restores the latest checkpoint and
// deduplicates the overlap (exactly-once, like any failover). The old
// host is alive during a planned move; it is passed as the "departed"
// peer only to scope the re-deployment. Returns the migrations taken.
// System.JoinPeer and LeavePeer invoke this when AggDegree is on; tests
// and harnesses may call it directly.
func (s *System) RebalanceAggTrees(at time.Duration) []FailoverEvent {
	var events []FailoverEvent
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			desired := s.AggPlacements(t.Plan)
			postorder(t.Plan, func(n *algebra.Node) {
				if n.AggKey == "" || !s.Net.Alive(n.Peer) {
					return // crashed hosts are the failover path's job
				}
				want := desired[n.AggKey]
				if want == "" || want == n.Peer {
					return
				}
				ev, err := p.redeployOperator(t, n, n.Peer, at)
				if err != nil {
					// A failed planned move is not a loss: the operator
					// keeps running where it is and the next membership
					// change retries.
					return
				}
				events = append(events, ev)
			})
		}
	}
	if len(events) > 0 {
		// A migrated interior may feed *other* tasks (shared aggregation
		// trees): redeployOperator re-binds only its own task's consumers,
		// so sweep every task for subscriptions left on now-stale channels.
		events = append(events, s.repairStaleChannelIns(at)...)
	}
	return events
}

// repairStaleChannelIns re-binds channel subscriptions whose provider
// migrated away in a *planned* move. The crash path (repairChannelIns)
// only considers channels hosted on the departed peer; after a
// rebalance the old host is alive but the channel lost its producer —
// consumers of a shared interior from other tasks would starve on it
// silently. Each stale subscription follows the replica chain to the
// stream's live provider, resuming from its cursor.
func (s *System) repairStaleChannelIns(at time.Duration) []FailoverEvent {
	var events []FailoverEvent
	for _, p := range s.livePeers() {
		for _, t := range sortedTasks(p) {
			postorder(t.Plan, func(n *algebra.Node) {
				if n.Op != algebra.OpChannelIn || s.usable(n.Channel) {
					return
				}
				origin := n.Origin
				if origin == (stream.Ref{}) {
					origin = n.Channel
				}
				from := n.Channel.PeerID
				repl, viaReplica := s.liveProvider(p.name, origin, "")
				if repl == nil || repl.Ref() == n.Channel {
					return
				}
				for _, b := range t.bindings {
					if b.child == n {
						p.rebind(t, b, repl)
						s.link.CountTransfer(b.consumerPeer, repl.Ref().PeerID, ctrlMsgBytes)
					}
				}
				n.Channel = repl.Ref()
				events = append(events, FailoverEvent{
					TaskID: t.ID, Operator: "∈" + origin.String(), From: from,
					To: repl.Ref().PeerID, ViaReplica: viaReplica, At: at,
				})
			})
		}
	}
	return events
}

// livePeers returns the registered peers whose node is up, sorted by
// name for deterministic repair order.
func (s *System) livePeers() []*Peer {
	s.mu.Lock()
	names := make([]string, 0, len(s.peers))
	for n := range s.peers {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	var out []*Peer
	for _, n := range names {
		if s.Net.Alive(n) {
			out = append(out, s.Peer(n))
		}
	}
	return out
}

func sortedTasks(p *Peer) []*Task {
	ts := p.Tasks()
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	return ts
}

// repairOperators migrates every operator of t hosted on the dead peer.
// Children are visited before parents so a parent re-deployed in the
// same pass subscribes to its child's replacement channel.
func (p *Peer) repairOperators(t *Task, dead string, at time.Duration) []FailoverEvent {
	var events []FailoverEvent
	postorder(t.Plan, func(n *algebra.Node) {
		if n.Peer != dead {
			return
		}
		switch n.Op {
		case algebra.OpChannelIn:
			// Consumed channels are re-bound in phase 2.
		case algebra.OpAlerter:
			// The event source itself died: its events originate at the
			// dead peer, so no live peer can produce them. The task is
			// degraded until the peer returns.
			t.degraded = append(t.degraded, n.Label())
			events = append(events, FailoverEvent{
				TaskID: t.ID, Operator: n.Label(), From: dead, At: at,
			})
		case algebra.OpDynAlerter:
			// The *manager* of the dynamic alerter set died, not the
			// monitored peers: a new manager elsewhere replays the
			// membership stream to reconstruct the active set and
			// re-attaches the hooks. Without the replay layer there is no
			// membership history to reconstruct from — reporting a repair
			// while silently dropping every already-joined peer would be
			// worse than PR 1's visible degradation.
			if !p.sys.replayOn() {
				t.degraded = append(t.degraded, n.Label())
				events = append(events, FailoverEvent{
					TaskID: t.ID, Operator: n.Label(), From: dead, At: at,
				})
				return
			}
			ev, err := p.redeployDynAlerter(t, n, dead, at)
			if err != nil {
				t.degraded = append(t.degraded, n.Label()+": "+err.Error())
				ev = FailoverEvent{TaskID: t.ID, Operator: n.Label(), From: dead, At: at}
			}
			events = append(events, ev)
		case algebra.OpPublish:
			// The publisher's sinks (mailbox, file, feed) are task-level
			// state at the live manager, so the fan-out itself can move:
			// a new named channel opens at a live host and external
			// consumers find it through a replica record.
			ev, err := p.redeployPublisher(t, n, dead, at)
			if err != nil {
				t.degraded = append(t.degraded, n.Label()+": "+err.Error())
				ev = FailoverEvent{TaskID: t.ID, Operator: n.Label(), From: dead, At: at}
			}
			events = append(events, ev)
		default:
			ev, err := p.redeployOperator(t, n, dead, at)
			if err != nil {
				t.degraded = append(t.degraded, n.Label()+": "+err.Error())
				ev = FailoverEvent{TaskID: t.ID, Operator: n.Label(), From: dead, At: at}
			}
			events = append(events, ev)
		}
	})
	return events
}

// redeployOperator moves one processor from the dead peer to a live one:
// a host is chosen (preferring one that announced a replica of the
// operator's output stream, whose channel then simply continues), the
// operator restarts there and every downstream consumer is re-bound to
// the replacement channel while keeping its queue.
//
// Without the replay layer, the operator restarts cold with fresh
// subscriptions from "now": state accumulated at the dead peer and
// events published during the outage are lost — the price of fail-stop
// crashes. With it, the operator restores the latest replicated
// checkpoint (state + input cursors + output sequence), resumes its
// inputs from the checkpointed positions via the upstream replay
// buffers, and re-emits its post-checkpoint suffix under the original
// sequence numbers, which downstream cursors deduplicate — exactly-once
// from the consumer's point of view.
func (p *Peer) redeployOperator(t *Task, n *algebra.Node, dead string, at time.Duration) (FailoverEvent, error) {
	s := p.sys
	oldRef := t.refs[n]
	origRef, hasOrig := t.origRefs[n]
	if !hasOrig {
		origRef = oldRef
	}

	newPeer := ""
	var out *stream.Channel
	viaReplica := false
	// Aggregation-tree interiors are placed by bounded DHT key routing,
	// and repair keeps that invariant: the replacement host is re-derived
	// from the plan's routing keys against the *current* ring (the dead
	// peer already left it), so the tree shape keeps tracking membership
	// across any number of migrations.
	if n.AggKey != "" {
		if cand := s.AggPlacements(t.Plan)[n.AggKey]; cand != "" && cand != dead {
			newPeer = cand
			out = s.allocChannel(t, newPeer, s.nextStreamID(newPeer))
		}
	}
	// Otherwise prefer a live peer that announced a replica of this
	// stream: it is already receiving the data and republishing it under
	// a channel other consumers may already use. Replica records chain
	// to the original identity, so look them up there.
	if newPeer == "" {
		replicas, _, _ := s.DB.Replicas(p.name, origRef)
		for _, r := range replicas {
			if r.PeerID == dead || !s.usable(r) {
				continue
			}
			if ch, ok := s.Channel(r); ok {
				newPeer, out, viaReplica = r.PeerID, ch, true
				// The task's operator now produces this channel, so the
				// task owns its lifecycle: it closes when the operator's
				// inputs end.
				t.channels = append(t.channels, ch)
				break
			}
		}
	}
	if newPeer == "" {
		newPeer = s.leastLoadedLive(dead)
		if newPeer == "" {
			return FailoverEvent{}, fmt.Errorf("no live peer to host %s", n.Label())
		}
		out = s.allocChannel(t, newPeer, s.nextStreamID(newPeer))
	}

	// The replicated checkpoint, if one survives, pins where to resume:
	// output numbering continues from OutSeq and each input replays from
	// its checkpointed cursor. Without one (or with replay off), the
	// inputs replay their full retained history (replay on) or attach at
	// "now" (replay off).
	var ck *ckptRec
	if s.replayOn() {
		ck = s.loadCheckpoint(p.name, t, n)
		if ck != nil && len(ck.In) != len(n.Inputs) {
			ck = nil
		}
		if ck != nil {
			out.SeedSeq(ck.OutSeq)
			// Restore the undelivered output tail into the replacement
			// buffer: consumers the crash caught mid-partition (or
			// mid-drop) can still fetch what the dead producer had
			// published but not delivered.
			out.SeedBuffer(ck.Tail)
		} else {
			// Cold restart: the re-emission either reproduces the
			// original numbering from 1 (full history retained — an
			// adopted replica channel rewinds from its mirrored
			// high-water mark so nothing reappears under fresh numbers)
			// or, with trimmed inputs, continues above the old numbering.
			var oldSeq uint64
			if old, ok := s.Channel(oldRef); ok {
				oldSeq = old.Seq()
			}
			s.coldSeed(t, n, out, oldSeq)
		}
	}

	// Re-bind downstream consumers first, so the old channel's teardown
	// can no longer reach them. A shared interior feeds consumers in
	// *other* tasks too (grafted aggregation trees, reused streams):
	// every binding still reading the old channel is re-bound now, not
	// left to a later sweep — the moment the old instance's input queues
	// close it flushes and publishes EOS, and an EOS that reaches a
	// consumer's queue terminates that input permanently (re-binding the
	// queue afterwards feeds items nobody reads).
	for _, b := range t.bindings {
		if b.child == n {
			p.rebind(t, b, out)
		}
	}
	for _, cp := range s.livePeers() {
		for _, ct := range sortedTasks(cp) {
			if ct == t {
				continue
			}
			for _, b := range ct.bindings {
				if b.src == nil || b.src.Ref() != oldRef {
					continue
				}
				cp.rebind(ct, b, out)
				if b.child != nil && b.child.Op == algebra.OpChannelIn && b.child.Channel == oldRef {
					b.child.Channel = out.Ref()
				}
				s.link.CountTransfer(b.consumerPeer, newPeer, ctrlMsgBytes)
			}
		}
	}
	// Replica forwarders fed from the old channel must not relay its
	// terminal EOS into their replica channels (closing them under any
	// consumer — including, when the replacement adopted one, the very
	// channel the new instance is about to publish into). Detach them;
	// markStale below propagates to the non-adopted ones and the stale
	// sweep re-binds their consumers.
	s.severForwardersFrom(oldRef)

	// Re-subscribe the inputs; the dead operator's old input queues are
	// closed so its goroutine terminates instead of waiting on starved
	// queues forever. Items buffered there die with the crashed peer —
	// with replay on they are retransmitted from the producers' buffers.
	myBindings := t.bindingsOf(n)
	if len(myBindings) != len(n.Inputs) {
		return FailoverEvent{}, fmt.Errorf("bindings out of sync for %s", n.Label())
	}
	queues := make([]*stream.Queue, len(n.Inputs))
	for i, in := range n.Inputs {
		ch, ok := s.nodeChannel(t, in)
		if !ok {
			return FailoverEvent{}, fmt.Errorf("input channel of %s not found", n.Label())
		}
		var fromSeq uint64
		if s.replayOn() {
			fromSeq = 1
			if ck != nil {
				fromSeq = ck.In[i] + 1
			}
		}
		queues[i] = p.resubscribeInput(t, myBindings[i], ch, newPeer, fromSeq)
	}

	proc, err := p.makeProc(n)
	if err != nil {
		return FailoverEvent{}, err
	}
	if ck != nil && ck.State != nil {
		if sn, ok := proc.(operators.Snapshotter); ok {
			if err := sn.Restore(ck.State); err != nil {
				// A corrupt snapshot degrades to a cold restart; the
				// input replay still reconstructs what the buffers hold.
				proc, _ = p.makeProc(n)
			}
		}
	}
	h := operators.Run(proc, queues, operators.ChannelPublish(out))
	if ck != nil {
		// The restored instance has logically consumed everything up to
		// the checkpoint — a checkpoint sweep racing the replayed suffix
		// must not record its cursors as 0.
		for i, seq := range ck.In {
			h.SeedConsumed(i, seq)
		}
	}
	t.handles = append(t.handles, h)
	t.procs[n] = &procInstance{proc: proc, handle: h}

	n.Peer = newPeer
	t.refs[n] = out.Ref()
	// The abandoned channel has no producer anymore: never offer it (or
	// forwarders fed from it, other than the adopted one) as a provider
	// again, even after its host recovers.
	s.markStale(oldRef, out.Ref())
	// Announce the replacement as a provider under the stream's original
	// identity (consumers' ChannelIn Origin and published descriptors
	// both name it), so phase 2 and future subscriptions find it across
	// any number of migrations.
	s.DB.PublishReplica(origRef, out.Ref()) //nolint:errcheck // ring is non-empty here
	if oldRef != origRef {
		s.DB.PublishReplica(oldRef, out.Ref()) //nolint:errcheck // same ring
	}
	s.link.CountTransfer(t.Manager, newPeer, ctrlMsgBytes)

	return FailoverEvent{
		TaskID: t.ID, Operator: n.Label(), From: dead, To: newPeer,
		ViaReplica: viaReplica, At: at,
	}, nil
}

// redeployPublisher moves a task's publisher fan-out off a dead host.
// The task's manager is live by the time this runs — either it was
// never the dead peer, or FailPeer phase 0 already re-homed the
// management role (rehomeTask) — but the publisher may have sat on the
// dead peer either way. A new named channel with the same ChannelID
// opens at a live peer, the sink fan-out is rebuilt over the task-level
// sink state, the manager's result subscription re-binds to it, and a
// replica record chains the old channel identity to the new one so
// external consumers re-bound in phase 2 (or subscribing later) find it.
func (p *Peer) redeployPublisher(t *Task, n *algebra.Node, dead string, at time.Duration) (FailoverEvent, error) {
	s := p.sys
	newPeer := s.leastLoadedLive(dead)
	if newPeer == "" {
		return FailoverEvent{}, fmt.Errorf("no live peer to host %s", n.Label())
	}
	var ck *ckptRec
	if s.replayOn() {
		ck = s.loadCheckpoint(p.name, t, n)
		if ck != nil && len(ck.In) != 1 {
			ck = nil
		}
	}
	oldNamed := t.namedCh
	named := s.allocChannel(t, newPeer, n.Publish.ChannelID)
	switch {
	case ck != nil:
		named.SeedSeq(ck.OutSeq)
		named.SeedBuffer(ck.Tail) // undelivered results survive the host
	case s.replayOn():
		// Cold restart: re-emit under the original numbering when the
		// input history is complete, else continue above the old results.
		var oldSeq uint64
		if oldNamed != nil {
			oldSeq = oldNamed.Seq()
		}
		s.coldSeed(t, n, named, oldSeq)
	case oldNamed != nil:
		// Replay off: nothing is re-emitted, so continue the result
		// numbering from the stream's last known sequence (in a real
		// deployment, the published stream statistics; here, the
		// abandoned channel object) to keep it monotonic.
		named.SeedSeq(oldNamed.Seq())
	}

	// Re-subscribe the publisher's input, resuming from the checkpoint.
	myBindings := t.bindingsOf(n)
	if len(myBindings) != 1 {
		return FailoverEvent{}, fmt.Errorf("bindings out of sync for %s", n.Label())
	}
	ch, ok := s.nodeChannel(t, n.Inputs[0])
	if !ok {
		return FailoverEvent{}, fmt.Errorf("input channel of %s not found", n.Label())
	}
	var fromSeq uint64
	if s.replayOn() {
		fromSeq = 1
		if ck != nil {
			fromSeq = ck.In[0] + 1
		}
	}
	q := p.resubscribeInput(t, myBindings[0], ch, newPeer, fromSeq)

	if err := p.runPublisher(t, n, q, named); err != nil {
		return FailoverEvent{}, err
	}
	if ck != nil {
		t.procs[n].handle.SeedConsumed(0, ck.In[0])
	}

	// The manager keeps reading the same Results() queue: its
	// subscription re-binds to the new named channel and the result
	// cursor drops the re-published overlap.
	var resumeFrom uint64
	if t.resultCur != nil && named.ReplayEnabled() {
		resumeFrom = t.resultCur.Next()
	}
	if t.resultSub != nil {
		t.resultSub.Detach()
	}
	p.bindResults(t, named, resumeFrom)

	t.namedCh = named
	if t.resultCh == oldNamed {
		t.resultCh = named
	}
	n.Peer = newPeer
	if oldNamed != nil {
		s.markStale(oldNamed.Ref(), named.Ref())
		s.DB.PublishReplica(oldNamed.Ref(), named.Ref()) //nolint:errcheck // ring is non-empty here
	}
	s.link.CountTransfer(t.Manager, newPeer, ctrlMsgBytes)
	return FailoverEvent{
		TaskID: t.ID, Operator: n.Label(), From: dead, To: newPeer, At: at,
	}, nil
}

// redeployDynAlerter moves the manager of an inCOM($j)-style dynamic
// alerter set off a dead host. The monitored peers (where the hooks
// attach) are unaffected — only the coordination loop died. A fresh
// manager at a live peer replays the full membership stream from the
// driver channel's retention buffer, reconstructing the active alerter
// set; its output channel continues the logical stream's numbering so
// downstream cursors stay valid. Events the monitored peers emitted
// during the outage are not recoverable (they originate live at the
// substrate), matching the alerter semantics.
func (p *Peer) redeployDynAlerter(t *Task, n *algebra.Node, dead string, at time.Duration) (FailoverEvent, error) {
	s := p.sys
	oldRef := t.refs[n]
	origRef, hasOrig := t.origRefs[n]
	if !hasOrig {
		origRef = oldRef
	}
	newPeer := s.leastLoadedLive(dead)
	if newPeer == "" {
		return FailoverEvent{}, fmt.Errorf("no live peer to host %s", n.Label())
	}
	out := s.allocChannel(t, newPeer, s.nextStreamID(newPeer))
	if old, ok := s.Channel(oldRef); ok {
		// Continue the logical numbering past everything the old manager
		// published; live alert streams cannot replay, so there is no
		// overlap to re-emit.
		out.SeedSeq(old.Seq())
	}

	for _, b := range t.bindings {
		if b.child == n {
			p.rebind(t, b, out)
		}
	}

	// Re-subscribe the membership driver from the beginning of its
	// retained history: p-join/p-leave events replayed in order rebuild
	// the active set (a fresh manager deduplicates joins by construction).
	myBindings := t.bindingsOf(n)
	if len(myBindings) != 1 {
		return FailoverEvent{}, fmt.Errorf("bindings out of sync for %s", n.Label())
	}
	ch, ok := s.nodeChannel(t, n.Inputs[0])
	if !ok {
		return FailoverEvent{}, fmt.Errorf("driver channel of %s not found", n.Label())
	}
	var fromSeq uint64
	if s.replayOn() {
		fromSeq = 1
	}
	// Closing the old binding queue makes the old manager loop exit,
	// deactivate its alerters and close its stale channel.
	q := p.resubscribeInput(t, myBindings[0], ch, newPeer, fromSeq)

	p.runDynAlerter(t, n, q, out)
	if ch.ReplayTrimmed() > 0 {
		// Part of the membership history was evicted from the driver's
		// bounded buffer: the reconstructed active set may be missing
		// peers that joined early. Report it — silently narrowing the
		// monitored set would defeat the point of re-deploying at all.
		t.degraded = append(t.degraded, n.Label()+": membership history truncated, active set may be partial")
	}

	n.Peer = newPeer
	t.refs[n] = out.Ref()
	s.markStale(oldRef, out.Ref())
	s.DB.PublishReplica(origRef, out.Ref()) //nolint:errcheck // ring is non-empty here
	if oldRef != origRef {
		s.DB.PublishReplica(oldRef, out.Ref()) //nolint:errcheck // same ring
	}
	s.link.CountTransfer(t.Manager, newPeer, ctrlMsgBytes)
	return FailoverEvent{
		TaskID: t.ID, Operator: n.Label(), From: dead, To: newPeer, At: at,
	}, nil
}

// repairChannelIns re-binds the task's subscriptions to channels that
// lived on the dead peer (reused streams and replicas) onto a live
// provider of the same original stream.
func (p *Peer) repairChannelIns(t *Task, dead string, at time.Duration) []FailoverEvent {
	var events []FailoverEvent
	postorder(t.Plan, func(n *algebra.Node) {
		if n.Op != algebra.OpChannelIn || n.Channel.PeerID != dead {
			return
		}
		origin := n.Origin
		if origin == (stream.Ref{}) {
			origin = n.Channel
		}
		repl, viaReplica := p.sys.liveProvider(p.name, origin, dead)
		if repl == nil {
			t.degraded = append(t.degraded, "channel "+n.Channel.String())
			events = append(events, FailoverEvent{
				TaskID: t.ID, Operator: "∈" + n.Channel.String(), From: dead, At: at,
			})
			return
		}
		for _, b := range t.bindings {
			if b.child == n {
				p.rebind(t, b, repl)
				p.sys.link.CountTransfer(b.consumerPeer, repl.Ref().PeerID, ctrlMsgBytes)
			}
		}
		n.Channel = repl.Ref()
		events = append(events, FailoverEvent{
			TaskID: t.ID, Operator: "∈" + origin.String(), From: dead,
			To: repl.Ref().PeerID, ViaReplica: viaReplica, At: at,
		})
	})
	return events
}

// liveProvider finds a live channel carrying the stream origin: the
// original channel if its host is up and it still has its producer,
// else any usable announced replica (including re-deployments
// registered by redeployOperator, which chain to the origin).
func (s *System) liveProvider(from string, origin stream.Ref, dead string) (*stream.Channel, bool) {
	if origin.PeerID != dead && s.usable(origin) {
		if ch, ok := s.Channel(origin); ok {
			return ch, false
		}
	}
	replicas, _, _ := s.DB.Replicas(from, origin)
	for _, r := range replicas {
		if r.PeerID == dead || !s.usable(r) {
			continue
		}
		if ch, ok := s.Channel(r); ok {
			return ch, true
		}
	}
	return nil, false
}

// rebind swaps the producer feeding one input binding: the old
// subscription detaches (without closing the consumer's queue) and a new
// subscription on ch delivers into the same queue over the simulated
// network. The consumer operator never notices the swap. With the replay
// layer on, the new subscription resumes from the binding's cursor —
// replaying what the consumer missed, deduplicating what it already has
// — instead of attaching at "now".
func (p *Peer) rebind(t *Task, b *inputBinding, ch *stream.Channel) {
	b.sub.Detach()
	var fromSeq uint64
	if b.cursor != nil && ch.ReplayEnabled() {
		fromSeq = b.cursor.Next()
	}
	sub := p.subscribeOrdered(ch, b.consumerPeer, b.cursor, b.queue, fromSeq)
	b.sub = sub
	b.src = ch
	if !p.trackSub(t, ch, sub) {
		// Shared source: it will never close on this task's account, so
		// Stop must close the consumer's queue explicitly (the eager
		// cancellation extSubs get closes only the subscription's own,
		// unused, queue).
		t.extQueues = append(t.extQueues, b.queue)
	}
}

// nodeChannel resolves the channel currently carrying a plan node's
// output stream.
func (s *System) nodeChannel(t *Task, n *algebra.Node) (*stream.Channel, bool) {
	if n.Op == algebra.OpChannelIn {
		return s.Channel(n.Channel)
	}
	ref, ok := t.refs[n]
	if !ok {
		return nil, false
	}
	return s.Channel(ref)
}

// bindingsOf returns the input bindings of one consumer operator in
// input order (they are recorded in deployment order).
func (t *Task) bindingsOf(n *algebra.Node) []*inputBinding {
	var out []*inputBinding
	for _, b := range t.bindings {
		if b.consumer == n {
			out = append(out, b)
		}
	}
	return out
}

// leastLoadedLive picks the live peer with the lowest operator load
// (name as tie-breaker), excluding the dead peer.
func (s *System) leastLoadedLive(dead string) string {
	best, bestLoad := "", 0
	for _, p := range s.livePeers() {
		if p.name == dead {
			continue
		}
		l := s.Net.Load(p.name)
		if best == "" || l < bestLoad {
			best, bestLoad = p.name, l
		}
	}
	return best
}

// postorder visits children before parents.
func postorder(n *algebra.Node, f func(*algebra.Node)) {
	for _, in := range n.Inputs {
		postorder(in, f)
	}
	f(n)
}
