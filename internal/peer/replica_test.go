package peer

import (
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// TestAnnounceReplicaEndToEnd closes the Figure 7 loop in the live
// system: a subscriber re-publishes a stream; a later subscription whose
// manager is close to the replica consumes from it instead of the
// original, and the data actually flows over the replica's links.
func TestAnnounceReplicaEndToEnd(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	m := sys.MustAddPeer("m.com")
	m.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	c := sys.MustAddPeer("c.com")

	p1 := sys.MustAddPeer("p1")
	base, err := p1.Subscribe(`for $e in inCOM(<p>m.com</p>)
where $e.callMethod = "Q"
return $e by publish as channel "qStream"`)
	if err != nil {
		t.Fatal(err)
	}

	// edge.com announces a replica of the σ output stream (the stream
	// below the publisher — find its ref from the task's plan).
	var sigmaRef = base.ResultChannel()
	for node, ref := range base.StreamRefs() {
		if node.Op == algebra.OpSelect {
			sigmaRef = ref
		}
	}
	sys.MustAddPeer("edge.com")
	repRef, err := sys.AnnounceReplica(sigmaRef, "edge.com")
	if err != nil {
		t.Fatal(err)
	}
	if repRef.PeerID != "edge.com" {
		t.Fatalf("replica ref = %v", repRef)
	}

	// far.com is network-close to edge.com and far from m.com.
	far := sys.MustAddPeer("far.com")
	sys.Net.SetLatency("edge.com", "far.com", time.Millisecond)
	sys.Net.SetLatency("m.com", "far.com", 200*time.Millisecond)
	// Make the distance metric agree with the latency override.
	sys.Net.Node("far.com").X = sys.Net.Node("edge.com").X
	sys.Net.Node("far.com").Y = sys.Net.Node("edge.com").Y

	t2, err := far.Subscribe(`for $e in inCOM(<p>m.com</p>)
where $e.callMethod = "Q" and $e.caller = "http://c.com"
return <hit id="{$e.callId}"/> by publish as channel "hits"`)
	if err != nil {
		t.Fatal(err)
	}
	// The residual σ must consume from the replica at edge.com.
	usedReplica := false
	t2.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn && n.Channel == repRef {
			usedReplica = true
			if n.Origin != sigmaRef {
				t.Errorf("origin = %v, want %v", n.Origin, sigmaRef)
			}
		}
	})
	if !usedReplica {
		t.Fatalf("replica not chosen:\n%s", t2.Plan.Tree())
	}

	sys.Net.ResetTraffic()
	if _, err := c.Endpoint().Invoke("m.com", "Q", nil); err != nil {
		t.Fatal(err)
	}
	base.Stop()
	t2.Stop()
	if got := len(t2.Results().Drain()); got != 1 {
		t.Fatalf("results via replica = %d", got)
	}
	// The data reached far.com from edge.com, not directly from m.com.
	if sys.Net.Link("edge.com", "far.com").Messages == 0 {
		t.Error("no traffic on the replica link")
	}
	if sys.Net.Link("m.com", "far.com").Messages != 0 {
		t.Error("traffic bypassed the replica")
	}
}

func TestAnnounceReplicaUnknownChannel(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	sys.MustAddPeer("x")
	if _, err := sys.AnnounceReplica(stream.Ref{StreamID: "ghost", PeerID: "nowhere"}, "x"); err == nil {
		t.Error("unknown channel accepted")
	}
}

func TestRefreshStreamStats(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	p := sys.MustAddPeer("p")
	m := sys.MustAddPeer("m.com")
	m.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	c := sys.MustAddPeer("c.com")
	task, err := p.Subscribe(`for $e in inCOM(<p>m.com</p>) return $e by publish as channel "raw"`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Endpoint().Invoke("m.com", "Q", nil)
	}
	task.Stop()
	task.Results().Drain()
	if err := sys.RefreshStreamStats(); err != nil {
		t.Fatal(err)
	}
	stats, _, err := sys.DB.StatsFor("p", task.ResultChannel())
	if err != nil {
		t.Fatal(err)
	}
	if stats["items"] != "4" {
		t.Errorf("items = %q (stats=%v)", stats["items"], stats)
	}
	if stats["volume"] == "" || stats["avgItemSize"] == "" {
		t.Errorf("volume stats missing: %v", stats)
	}
	// A second refresh overwrites (latest wins).
	if err := sys.RefreshStreamStats(); err != nil {
		t.Fatal(err)
	}
	again, _, _ := sys.DB.StatsFor("p", task.ResultChannel())
	if again["items"] != "4" {
		t.Errorf("items after second refresh = %q", again["items"])
	}
}
