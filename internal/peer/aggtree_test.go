package peer

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"p2pm/internal/aggtree"
	"p2pm/internal/algebra"
	"p2pm/internal/xmltree"
)

// aggWorld assembles an aggregation deployment: sources s0..sS-1 each
// host a monitored service and a ws-in alerter, workers w0..wW-1 are the
// merge-host pool (the aggHosts filter keeps DHT-routed interiors on
// them), the flat plan Group(Union(alerters)) sits at w0 and publishes
// at mgr. With opts.Agg.Degree set, deployment decomposes it into a tree.
func aggWorld(t *testing.T, opts Config, sources, workers int) (*System, *Task) {
	t.Helper()
	sys := MustSystem(opts)
	mgr := sys.MustAddPeer("mgr")
	sys.MustAddPeer("client")
	var branches []*algebra.Node
	for i := 0; i < sources; i++ {
		name := fmt.Sprintf("s%d", i)
		sp := sys.MustAddPeer(name)
		sp.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.Elem("ok"), nil
		}, nil)
		branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", name, "e", nil))
	}
	for i := 0; i < workers; i++ {
		sys.MustAddPeer(fmt.Sprintf("w%d", i))
	}
	sys.SetAggHosts(func(name string) bool { return name[0] == 'w' })
	union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
		Schema: []string{"e"}, Group: &algebra.GroupSpec{KeyAttr: "callee", Window: "10s"},
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "agg"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	return sys, task
}

// settleTask waits (bounded) until the task's operators stop consuming —
// the virtual Step models enough real time for an event to traverse the
// deployment, so fault injection points see processed state instead of a
// wall-clock scheduling snapshot.
func settleTask(task *Task) {
	last, stable := uint64(0), 0
	for i := 0; i < 2000 && stable < 3; i++ {
		cur := task.ItemsProcessed()
		if cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// driveAgg invokes the sources round-robin, one event per virtual step.
func driveAgg(t *testing.T, sys *System, sources, events int, step time.Duration) {
	t.Helper()
	client := sys.Peer("client")
	for i := 0; i < events; i++ {
		target := fmt.Sprintf("s%d", i%sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		sys.Step(step)
	}
}

// groupRecords drains and canonicalizes a task's result records.
func groupRecords(t *testing.T, task *Task) []string {
	t.Helper()
	task.Stop()
	var out []string
	for _, it := range task.Results().Drain() {
		out = append(out, it.Tree.String())
	}
	sort.Strings(out)
	return out
}

func equalRecords(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAggTreeDeployMatchesFlat: the planner decomposes a wide windowed
// aggregation into a partial/merge tree whose final records are
// byte-identical to the flat single-aggregator deployment of the same
// plan, and the union's O(n) ingest hotspot disappears.
func TestAggTreeDeployMatchesFlat(t *testing.T) {
	const sources, workers, events = 6, 3, 48
	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	driveAgg(t, flatSys, sources, events, time.Second)
	want := groupRecords(t, flatTask)
	if len(want) == 0 {
		t.Fatal("flat baseline produced no records")
	}

	opts := DefaultConfig()
	opts.Agg.Degree = 3
	treeSys, treeTask := aggWorld(t, opts, sources, workers)
	leaves, interiors := 0, 0
	treeTask.Plan.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpPartialAgg:
			leaves++
		case algebra.OpMergeAgg:
			interiors++
		case algebra.OpUnion, algebra.OpGroup:
			t.Errorf("flat operator %s survived the rewrite", n.Label())
		}
	})
	if leaves != sources || interiors < 2 {
		t.Fatalf("tree shape: %d leaves, %d merges", leaves, interiors)
	}
	desired := treeSys.AggPlacements(treeTask.Plan)
	for _, n := range aggtree.Interiors(treeTask.Plan) {
		if n.Peer[0] != 'w' {
			t.Errorf("interior %s placed at %s, outside the worker pool", n.Label(), n.Peer)
		}
		if desired[n.AggKey] != n.Peer {
			t.Errorf("interior %s at %s, bounded placement says %s", n.Label(), n.Peer, desired[n.AggKey])
		}
	}
	driveAgg(t, treeSys, sources, events, time.Second)
	got := groupRecords(t, treeTask)
	if !equalRecords(got, want) {
		t.Errorf("tree records differ from flat:\n tree: %v\n flat: %v", got, want)
	}
}

// TestAggTreeTwoTreesPlacementInvariant: a plan holding TWO decomposed
// aggregations must deploy every interior exactly where AggPlacements
// re-derives it — the root of the first tree consumes no placer state,
// so the second tree's keys see the same bounded-placement walk on
// deployment and on every later re-derivation (repair, rebalance).
func TestAggTreeTwoTreesPlacementInvariant(t *testing.T) {
	opts := DefaultConfig()
	opts.Agg.Degree = 2
	sys := MustSystem(opts)
	mgr := sys.MustAddPeer("mgr")
	mkGroup := func(lo, hi int) *algebra.Node {
		var branches []*algebra.Node
		for i := lo; i < hi; i++ {
			name := fmt.Sprintf("s%d", i)
			if sys.Peer(name) == nil {
				sp := sys.MustAddPeer(name)
				sp.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
					return xmltree.Elem("ok"), nil
				}, nil)
			}
			branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", name, "e", nil))
		}
		union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
		return &algebra.Node{
			Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
			Schema: []string{"e"}, Group: &algebra.GroupSpec{KeyAttr: "callee", Window: "10s"},
		}
	}
	for i := 0; i < 3; i++ {
		sys.MustAddPeer(fmt.Sprintf("w%d", i))
	}
	sys.SetAggHosts(func(name string) bool { return name[0] == 'w' })
	merge := &algebra.Node{
		Op: algebra.OpUnion, Peer: "mgr", Schema: []string{"e"},
		Inputs: []*algebra.Node{mkGroup(0, 5), mkGroup(5, 10)},
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{merge},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "twotrees"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer task.Stop()
	interiors := aggtree.Interiors(task.Plan)
	if len(interiors) < 4 {
		t.Fatalf("expected interiors from both trees, got %d", len(interiors))
	}
	desired := sys.AggPlacements(task.Plan)
	for _, n := range interiors {
		if desired[n.AggKey] != n.Peer {
			t.Errorf("interior %s deployed at %s, re-derivation says %s — placement not re-derivable",
				n.AggKey, n.Peer, desired[n.AggKey])
		}
	}
}

// TestAggTreeInteriorCrashExactlyOnce: an interior merge host crashes
// mid-window; the supervisor machinery migrates it (DHT-re-derived
// placement), checkpoint restore plus input replay re-merge the in-
// flight partial windows, and the final records still match the flat
// no-churn baseline byte for byte.
func TestAggTreeInteriorCrashExactlyOnce(t *testing.T) {
	const sources, workers, events = 6, 3, 48
	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	driveAgg(t, flatSys, sources, events, time.Second)
	want := groupRecords(t, flatTask)

	opts := DefaultConfig()
	opts.Agg.Degree = 3
	opts.Replay.Buffer = 4096
	opts.Replay.CheckpointInterval = 2 * time.Second
	sys, task := aggWorld(t, opts, sources, workers)
	client := sys.Peer("client")
	// Crash mid-window (27s into 10s windows) and repair only three
	// events later — the detection-latency gap during which the live
	// leaves keep publishing partials the dead interior never receives.
	// Those in-flight partials must come back through the replay path.
	const crashAt, repairAt = 27, 30
	victim := ""
	for i := 0; i < events; i++ {
		target := fmt.Sprintf("s%d", i%sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		settleTask(task)
		sys.Step(time.Second)
		switch i {
		case crashAt:
			victim = aggtree.Interiors(task.Plan)[0].Peer
			sys.Net.Crash(victim) //nolint:errcheck // known node
		case repairAt:
			evs := sys.FailPeer(victim, sys.Net.Clock().Now())
			repaired := 0
			for _, ev := range evs {
				if ev.Repaired() {
					repaired++
				}
			}
			if repaired == 0 {
				t.Fatalf("no repairs after crashing interior host %s (%v)", victim, evs)
			}
			for _, n := range aggtree.Interiors(task.Plan) {
				if n.Peer == victim {
					t.Errorf("interior %s still placed on the dead %s", n.Label(), victim)
				}
			}
		}
	}
	// Drain the replay/anti-entropy machinery before closing.
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	got := groupRecords(t, task)
	if !equalRecords(got, want) {
		t.Errorf("post-crash records differ from flat baseline:\n got: %v\nwant: %v", got, want)
	}
	if sys.ReplayedItems() == 0 {
		t.Error("no items were replayed; the crash repair did not exercise the replay path")
	}
}

// TestAggTreeRebalanceOnJoin: peers joining at runtime shift ring
// ownership; interiors re-parent onto the new DHT owners and the
// windowed counts stay byte-identical to the flat baseline.
func TestAggTreeRebalanceOnJoin(t *testing.T) {
	const sources, workers, events = 6, 2, 48
	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	driveAgg(t, flatSys, sources, events, time.Second)
	want := groupRecords(t, flatTask)

	opts := DefaultConfig()
	opts.Agg.Degree = 3
	opts.Replay.Buffer = 4096
	opts.Replay.CheckpointInterval = 2 * time.Second
	sys, task := aggWorld(t, opts, sources, workers)
	client := sys.Peer("client")
	joined := 0
	for i := 0; i < events; i++ {
		target := fmt.Sprintf("s%d", i%sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		settleTask(task)
		sys.Step(time.Second)
		if i == 15 || i == 31 { // join mid-run, mid-window
			name := fmt.Sprintf("w%d", workers+joined)
			joined++
			if _, err := sys.JoinPeer(name, "mgr"); err != nil {
				t.Fatalf("joining %s: %v", name, err)
			}
		}
	}
	if joined == 0 {
		t.Fatal("no joins executed")
	}
	// After the joins, every interior must sit where the current ring's
	// bounded placement routes its key — the membership-tracking
	// invariant RebalanceAggTrees restores.
	desired := sys.AggPlacements(task.Plan)
	for _, n := range aggtree.Interiors(task.Plan) {
		if desired[n.AggKey] != n.Peer {
			t.Errorf("interior %s at %s, bounded placement says %s", n.Label(), n.Peer, desired[n.AggKey])
		}
	}
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	got := groupRecords(t, task)
	if !equalRecords(got, want) {
		t.Errorf("post-join records differ from flat baseline:\n got: %v\nwant: %v", got, want)
	}
}

// TestAggTreeRebalanceOnRejoin: a recovered host re-enters the ring, so
// ring ownership shifts back — RejoinPeer must re-place interiors just
// like joins and leaves do, or the deployed tree drifts from the
// DHT-derived placement until the next unrelated membership change
// (the drift bug this is a regression test for).
func TestAggTreeRebalanceOnRejoin(t *testing.T) {
	const sources, workers, events = 6, 3, 48
	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	driveAgg(t, flatSys, sources, events, time.Second)
	want := groupRecords(t, flatTask)

	opts := DefaultConfig()
	opts.Agg.Degree = 3
	opts.Replay.Buffer = 4096
	opts.Replay.CheckpointInterval = 2 * time.Second
	sys, task := aggWorld(t, opts, sources, workers)
	client := sys.Peer("client")
	const crashAt, repairAt, rejoinAt = 17, 20, 33
	victim := ""
	for i := 0; i < events; i++ {
		target := fmt.Sprintf("s%d", i%sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		settleTask(task)
		sys.Step(time.Second)
		switch i {
		case crashAt:
			victim = aggtree.Interiors(task.Plan)[0].Peer
			sys.Net.Crash(victim) //nolint:errcheck // known node
		case repairAt:
			sys.FailPeer(victim, sys.Net.Clock().Now())
		case rejoinAt:
			sys.Net.Recover(victim) //nolint:errcheck // known node
			sys.RejoinPeer(victim)
			// The recovered host owns part of the keyspace again; the
			// deployed interiors must follow immediately.
			desired := sys.AggPlacements(task.Plan)
			for _, n := range aggtree.Interiors(task.Plan) {
				if desired[n.AggKey] != n.Peer {
					t.Errorf("after rejoin, interior %s at %s, bounded placement says %s",
						n.Label(), n.Peer, desired[n.AggKey])
				}
			}
		}
	}
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	got := groupRecords(t, task)
	if !equalRecords(got, want) {
		t.Errorf("post-rejoin records differ from flat baseline:\n got: %v\nwant: %v", got, want)
	}
}
