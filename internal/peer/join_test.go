package peer

import (
	"fmt"
	"testing"
	"time"
)

// TestJoinPeerDisseminatesViaGossip: a peer admitted through JoinPeer —
// no Watch pre-registration anywhere — is learned by every other view
// over the piggybacked gossip traffic, bootstraps its own view from the
// seed, and ends up a full first-class member (never suspected, usable
// as a DHT member).
func TestJoinPeerDisseminatesViaGossip(t *testing.T) {
	sys, det := gossipLab(t, 5, GossipOptions{Seed: 13, ProbeInterval: time.Second, Suspicion: 3 * time.Second})
	var tl timeline
	recordTimeline(det, &tl)
	for i := 0; i < 3; i++ {
		sys.Step(time.Second)
	}

	if _, err := sys.JoinPeer("p5", "p0"); err != nil {
		t.Fatal(err)
	}
	// The seed knows the joiner first-hand and the joiner bootstrapped
	// the seed's member list.
	if got := det.MembersOf("p5"); len(got) != 5 {
		t.Fatalf("joiner bootstrapped %v, want the seed's 5 members", got)
	}
	// Dissemination: within a bounded number of protocol periods every
	// view has learned of p5.
	for i := 0; i < 20; i++ {
		sys.Step(time.Second)
	}
	for i := 0; i < 5; i++ {
		owner := fmt.Sprintf("p%d", i)
		st, _, ok := det.ViewOf(owner, "p5")
		if !ok {
			t.Errorf("%s never learned of the joined peer", owner)
		} else if st != "alive" {
			t.Errorf("%s's view of p5 = %q, want alive", owner, st)
		}
	}
	if len(tl) != 0 {
		t.Fatalf("join produced death/recovery events: %v", tl)
	}
	// The joiner is ring-placed and placement-eligible.
	if sys.Ring.Size() != 6 {
		t.Errorf("ring size = %d, want 6 (joiner owns DHT keys)", sys.Ring.Size())
	}
	if sys.Peer("p5") == nil {
		t.Error("joined peer missing from the peer registry")
	}
}

// TestJoinSameIDTwice: simultaneous (and repeated) joins of the same
// identity must collapse to one membership — the second join is a
// harmless refresh, not a duplicate member or a protocol error, even
// when raced from two goroutines against different seeds.
func TestJoinSameIDTwice(t *testing.T) {
	sys, det := gossipLab(t, 4, GossipOptions{Seed: 21, ProbeInterval: time.Second, Suspicion: 3 * time.Second})
	done := make(chan error, 2)
	go func() { _, err := sys.JoinPeer("px", "p0"); done <- err }()
	go func() { _, err := sys.JoinPeer("px", "p1"); done <- err }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		sys.Step(time.Second)
	}
	if got := det.Suspects(); len(got) != 0 {
		t.Fatalf("suspects after duplicate join = %v, want none", got)
	}
	// Exactly one ring membership and one registry entry.
	if sys.Ring.Size() != 5 {
		t.Errorf("ring size = %d, want 5", sys.Ring.Size())
	}
	count := 0
	for _, p := range sys.Peers() {
		if p == "px" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("registry holds %d entries for px, want 1", count)
	}
	// Every view settled on the single member, alive.
	for i := 0; i < 4; i++ {
		if st, _, ok := det.ViewOf(fmt.Sprintf("p%d", i), "px"); !ok || st != "alive" {
			t.Errorf("p%d's view of px = %q (known=%v), want alive", i, st, ok)
		}
	}
}

// TestJoinDuringPartitionThenHeal: a peer joining through a seed on one
// side of a partition is known only on that side until the partition
// heals, after which the arrival disseminates to the far side — and the
// join never produces a death declaration for the joiner.
func TestJoinDuringPartitionThenHeal(t *testing.T) {
	sys, det := gossipLab(t, 6, GossipOptions{Seed: 31, ProbeInterval: time.Second, Suspicion: 6 * time.Second})
	var tl timeline
	recordTimeline(det, &tl)
	for i := 0; i < 3; i++ {
		sys.Step(time.Second)
	}
	near := []string{"p0", "p1", "p2"}
	far := []string{"p3", "p4", "p5"}
	sys.Net.Partition(near, far)
	if _, err := sys.JoinPeer("pj", "p0"); err != nil {
		t.Fatal(err)
	}
	// The joiner lands on the seed's side of the split: rumors about it
	// can only travel where gossip travels, so the far side must stay
	// ignorant while the partition holds.
	sys.Net.Partition(append(near, "pj"), far)
	for i := 0; i < 4; i++ {
		sys.Step(time.Second)
	}
	for _, owner := range far {
		if _, _, known := det.ViewOf(owner, "pj"); known {
			t.Errorf("%s learned of the joiner across a partition", owner)
		}
	}
	for _, owner := range near {
		if st, _, ok := det.ViewOf(owner, "pj"); !ok || st != "alive" {
			t.Errorf("%s's view of joiner = %q (known=%v), want alive", owner, st, ok)
		}
	}
	sys.Net.Heal()
	for i := 0; i < 25; i++ {
		sys.Step(time.Second)
	}
	for _, owner := range append(near, far...) {
		if st, _, ok := det.ViewOf(owner, "pj"); !ok || st != "alive" {
			t.Errorf("after heal: %s's view of joiner = %q (known=%v), want alive", owner, st, ok)
		}
	}
	for _, e := range tl {
		if e == "dead pj" {
			t.Errorf("joiner declared dead during dissemination: %v", tl)
		}
	}
	if got := det.Suspects(); len(got) != 0 {
		t.Errorf("suspects after heal = %v, want none", got)
	}
}

// TestDeadPeerRejoinsWithHigherIncarnation: a confirmed-dead peer that
// comes back through the join protocol adopts an incarnation above the
// death rumor, so the stale declarations cannot re-kill it; the
// supervisor sees the recovery and the peer is placement-eligible
// again.
func TestDeadPeerRejoinsWithHigherIncarnation(t *testing.T) {
	sys, det := gossipLab(t, 5, GossipOptions{Seed: 17, ProbeInterval: time.Second, Suspicion: 2 * time.Second})
	for i := 0; i < 3; i++ {
		sys.Step(time.Second)
	}
	sys.Net.Crash("p3")
	for i := 0; i < 30 && len(det.Suspects()) == 0; i++ {
		sys.Step(time.Second)
	}
	if got := det.Suspects(); len(got) != 1 || got[0] != "p3" {
		t.Fatalf("suspects = %v, want [p3] before the rejoin", got)
	}
	_, incBefore, _ := det.ViewOf("p0", "p3")

	if _, err := sys.JoinPeer("p3", "p0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30 && len(det.Suspects()) != 0; i++ {
		sys.Step(time.Second)
	}
	if got := det.Suspects(); len(got) != 0 {
		t.Fatalf("suspects after rejoin = %v, want none (stale death rumor won)", got)
	}
	for i := 0; i < 5; i++ {
		owner := fmt.Sprintf("p%d", i)
		if owner == "p3" {
			continue
		}
		st, inc, ok := det.ViewOf(owner, "p3")
		if !ok || st != "alive" {
			t.Errorf("%s's view of the rejoined peer = %q, want alive", owner, st)
		}
		if inc <= incBefore {
			t.Errorf("%s holds incarnation %d for the rejoined peer, want > %d (the dead declaration's)", owner, inc, incBefore)
		}
	}
	if !sys.Net.Alive("p3") {
		t.Error("rejoined peer's node is still down")
	}
}

// TestJoinSeedValidation: joins through missing, dead, or self seeds
// are rejected instead of half-creating membership.
func TestJoinSeedValidation(t *testing.T) {
	sys, _ := gossipLab(t, 3, GossipOptions{Seed: 1})
	if _, err := sys.JoinPeer("new", "ghost"); err == nil {
		t.Error("join through an unknown seed was accepted")
	}
	sys.Net.Crash("p1")
	if _, err := sys.JoinPeer("new", "p1"); err == nil {
		t.Error("join through a crashed seed was accepted")
	}
	if _, err := sys.JoinPeer("new", "new"); err == nil {
		t.Error("self-seeded join was accepted")
	}
}

// TestJoinedPeerBecomesFailoverTarget: the supervisor migrates a
// crashed relay onto a peer that was admitted at runtime via JoinPeer —
// runtime membership is placement-eligible without any registration
// step (the join-protocol half of "supervisor placement on joined
// peers").
func TestJoinedPeerBecomesFailoverTarget(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	mgr := sys.MustAddPeer("mgr")
	src := sys.MustAddPeer("src.com")
	registerService(src)
	client := sys.MustAddPeer("c.com")
	sys.MustAddPeer("w1")
	for _, busy := range []string{"src.com", "c.com", "mgr"} {
		sys.Net.AddLoad(busy, 1000)
	}
	task, err := mgr.DeployPlan(relayPlan("src.com", "w1", "mgr", "elastic"))
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.StartGossipSupervisor(GossipOptions{Seed: 19, ProbeInterval: time.Second, Suspicion: 2 * time.Second})

	drive := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
				t.Fatal(err)
			}
			sys.Step(time.Second)
		}
	}
	drive(3)
	waitResults(t, task, 3)

	// A fresh worker joins at runtime; then the only original worker
	// dies. The supervisor must place the relay on the joined peer.
	if _, err := sys.JoinPeer("w2", "mgr"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sys.Step(time.Second)
	}
	sys.Net.Crash("w1")
	for i := 0; i < 25 && relayHost(task) == "w1"; i++ {
		sys.Step(time.Second)
	}
	if got := relayHost(task); got != "w2" {
		t.Fatalf("relay migrated to %q, want the runtime-joined w2", got)
	}
	drive(3)
	waitResults(t, task, 6)
	migrated := false
	for _, ev := range sup.Events() {
		if ev.From == "w1" && ev.To == "w2" {
			migrated = true
		}
	}
	if !migrated {
		t.Error("no failover event records the migration onto the joined peer")
	}
	task.Stop()
}
