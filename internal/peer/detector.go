package peer

import (
	"sort"
	"sync"
	"time"
)

// FailureDetector is what the supervisor consumes: a source of
// death/recovery events over a watched membership, ticked on the
// virtual clock by System.Step. Two implementations exist — the
// single-home heartbeat Detector (this file) and the decentralized
// GossipDetector (gossip.go).
type FailureDetector interface {
	// Watch adds a peer to the watched membership.
	Watch(peer string)
	// Leave processes a graceful departure announcement: the peer is
	// removed from the watched membership with no suspicion window and
	// no death event — System.LeavePeer already handed its work off.
	Leave(peer string)
	// OnDeath registers a callback fired when a peer is declared dead.
	OnDeath(f func(peer string, at time.Duration))
	// OnRecover registers a callback fired when a declared-dead peer is
	// heard from again.
	OnRecover(f func(peer string, at time.Duration))
	// Suspects returns the peers currently declared dead, sorted.
	Suspects() []string
	// Tick advances the detector to the current virtual time.
	Tick()
}

// DetectorOptions configures a heartbeat failure detector.
type DetectorOptions struct {
	// Interval is the heartbeat period (virtual time). Default 1s.
	Interval time.Duration
	// Suspicion is how long a peer may stay silent before it is declared
	// dead. It must exceed the worst-case heartbeat latency or slow-but-
	// alive peers produce false positives. Default 3×Interval.
	Suspicion time.Duration
	// HeartbeatBytes is the accounted wire size of one heartbeat
	// message. Default 64 — heartbeat traffic shows up in the simnet
	// counters like any other monitoring cost.
	HeartbeatBytes int
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Suspicion <= 0 {
		o.Suspicion = 3 * o.Interval
	}
	if o.HeartbeatBytes <= 0 {
		o.HeartbeatBytes = 64
	}
	return o
}

// Detector is a heartbeat-based failure detector hosted at one peer.
// Every watched peer sends it a heartbeat each Interval over the
// simulated network (accounted, latency-stamped, subject to crashes,
// partitions and injected loss). A peer silent for longer than Suspicion
// is declared dead; a heartbeat from a declared-dead peer triggers
// recovery.
//
// The detector runs on the virtual clock: System.Step advances time and
// ticks every registered detector, which makes detection deterministic —
// wall-clock goroutine scheduling never changes what the detector sees.
type Detector struct {
	sys  *System
	home string
	opts DetectorOptions

	mu        sync.Mutex
	watched   map[string]*monitorState
	onDeath   []func(peer string, at time.Duration)
	onRecover []func(peer string, at time.Duration)
}

// monitorState tracks one watched peer.
type monitorState struct {
	peer     string
	nextBeat time.Duration   // virtual send time of the next heartbeat
	lastSeen time.Duration   // arrival time of the latest received heartbeat
	inflight []time.Duration // arrival times of heartbeats still en route
	dead     bool
}

// StartDetector creates a failure detector hosted at home watching every
// currently registered peer (except home itself). It is ticked by
// System.Step.
func (s *System) StartDetector(home string, opts DetectorOptions) *Detector {
	d := &Detector{
		sys:     s,
		home:    home,
		opts:    opts.withDefaults(),
		watched: make(map[string]*monitorState),
	}
	for _, p := range s.Peers() {
		if p != home {
			d.Watch(p)
		}
	}
	s.mu.Lock()
	s.detectors = append(s.detectors, d)
	s.mu.Unlock()
	return d
}

// Home returns the peer hosting the detector.
func (d *Detector) Home() string { return d.home }

// Watch adds a peer to the watch set. The first heartbeat is scheduled
// one interval from now; the peer starts in the alive state.
func (d *Detector) Watch(peer string) {
	now := d.sys.Net.Clock().Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.watched[peer]; ok {
		return
	}
	d.watched[peer] = &monitorState{peer: peer, nextBeat: now + d.opts.Interval, lastSeen: now}
}

// Leave removes a peer from the watch set on a graceful departure
// announcement: its silence is expected, so no suspicion ever opens and
// no death fires. A later Watch (rejoin) re-admits it fresh.
func (d *Detector) Leave(peer string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.watched, peer)
}

// OnDeath registers a callback fired (outside the detector lock) when a
// watched peer is declared dead, with the virtual detection time.
func (d *Detector) OnDeath(f func(peer string, at time.Duration)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onDeath = append(d.onDeath, f)
}

// OnRecover registers a callback fired when a declared-dead peer is
// heard from again.
func (d *Detector) OnRecover(f func(peer string, at time.Duration)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onRecover = append(d.onRecover, f)
}

// Suspects returns the peers currently declared dead, sorted.
func (d *Detector) Suspects() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, m := range d.watched {
		if m.dead {
			out = append(out, m.peer)
		}
	}
	sort.Strings(out)
	return out
}

// Tick advances the detector to the current virtual time: watched peers
// emit the heartbeats due since the last tick (each paying the simulated
// link, so crashed or partitioned peers' beats are lost), arrivals are
// processed, and the suspicion rule runs. Death and recovery callbacks
// fire after the state update.
func (d *Detector) Tick() {
	now := d.sys.Net.Clock().Now()
	type event struct {
		peer  string
		at    time.Duration
		death bool
	}
	var events []event

	d.mu.Lock()
	peers := make([]*monitorState, 0, len(d.watched))
	for _, m := range d.watched {
		peers = append(peers, m)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].peer < peers[j].peer })
	for _, m := range peers {
		// Emit the heartbeats due since the last tick at their scheduled
		// virtual send times.
		for m.nextBeat <= now {
			t := m.nextBeat
			m.nextBeat += d.opts.Interval
			if lat, ok := d.sys.Net.Ping(m.peer, d.home, d.opts.HeartbeatBytes); ok {
				m.inflight = append(m.inflight, t+lat)
			}
		}
		// Process arrivals up to now.
		rest := m.inflight[:0]
		for _, at := range m.inflight {
			if at <= now {
				if at > m.lastSeen {
					m.lastSeen = at
				}
			} else {
				rest = append(rest, at)
			}
		}
		m.inflight = rest
		// Suspicion rule.
		if m.dead && now-m.lastSeen <= d.opts.Suspicion {
			m.dead = false
			events = append(events, event{peer: m.peer, at: now, death: false})
		} else if !m.dead && now-m.lastSeen > d.opts.Suspicion {
			m.dead = true
			events = append(events, event{peer: m.peer, at: now, death: true})
		}
	}
	deathFns := append([]func(peer string, at time.Duration){}, d.onDeath...)
	recoverFns := append([]func(peer string, at time.Duration){}, d.onRecover...)
	d.mu.Unlock()

	for _, e := range events {
		if e.death {
			for _, f := range deathFns {
				f(e.peer, e.at)
			}
		} else {
			for _, f := range recoverFns {
				f(e.peer, e.at)
			}
		}
	}
}
