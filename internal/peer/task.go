package peer

import (
	"bytes"
	"sync"
	"sync/atomic"

	"p2pm/internal/algebra"
	"p2pm/internal/operators"
	"p2pm/internal/p2pml"
	"p2pm/internal/reuse"
	"p2pm/internal/stream"
)

// Task is one deployed monitoring subscription, as tracked by its
// Subscription Manager's database.
type Task struct {
	ID      string
	Manager string
	Sub     *p2pml.Subscription
	Plan    *algebra.Node
	Reuse   *reuse.Result // nil when reuse was disabled

	refs       map[*algebra.Node]stream.Ref // current stream identity per operator
	origRefs   map[*algebra.Node]stream.Ref // first-deployment identity (replica records chain to it)
	channels   []*stream.Channel
	subs       []*stream.Subscription // subscriptions to channels this task owns
	extSubs    []*stream.Subscription // subscriptions to shared channels
	extQueues  []*stream.Queue        // consumer queues re-bound to shared channels
	bindings   []*inputBinding        // operator-input wiring, for failover re-binding
	procs      map[*algebra.Node]*procInstance
	degraded   []string // operators lost without a repair path
	handles    []*operators.Handle
	closers    []func()
	pollers    []func() (int, error)
	dynDone    []chan struct{}
	loads      []string
	resultCh   *stream.Channel
	namedCh    *stream.Channel
	resultSub  *stream.Subscription
	resultQ    *stream.Queue         // stable result queue, survives publisher migration
	resultCur  *stream.Cursor        // dedup/ordering gate feeding resultQ
	subTargets map[string]*subTarget // per-BySubscribe-target gates, survive publisher migration

	// Human-facing publication sinks (BY email/file/rss).
	Mailbox SafeBuffer
	FileOut SafeBuffer
	RSSOut  *operators.RSSPublisher

	dynEvents atomic.Uint64
	stopOnce  sync.Once
}

// inputBinding records one operator-input edge of the deployed plan: the
// consumer operator, the plan node producing the stream it reads, and the
// live subscription feeding its queue. Failure handling re-binds the
// queue to a replacement producer by detaching sub and re-subscribing —
// the consumer keeps reading the same queue and never observes the swap.
type inputBinding struct {
	consumer     *algebra.Node
	child        *algebra.Node
	consumerPeer string
	queue        *stream.Queue
	sub          *stream.Subscription
	// cursor gates deliveries into queue: in sequence order, exactly
	// once, tracking where a re-bound subscription must resume.
	cursor *stream.Cursor
	// src is the channel currently feeding the binding.
	src *stream.Channel
}

// subTarget is one BySubscribe delivery destination: the target peer and
// the cursor gating its incoming queue. Task-level so the gate survives
// publisher migrations, and registered with the anti-entropy sweep like
// any binding cursor.
type subTarget struct {
	peer string
	cur  *stream.Cursor
	dest *stream.Queue
}

// procInstance tracks one deployed processor (or publisher fan-out): the
// running Proc and its Handle, so the checkpoint sweep can capture a
// consistent (state, consumed cursors, output sequence) cut and failover
// can restore it.
type procInstance struct {
	proc   operators.Proc
	handle *operators.Handle
}

// Degraded lists operators this task lost without a repair path (e.g. an
// alerter whose monitored peer crashed: its events originate there, so
// nothing can take over). Empty for fully healthy or fully repaired
// tasks.
func (t *Task) Degraded() []string { return append([]string(nil), t.degraded...) }

// DynEventsProcessed counts membership events the task's dynamic alerter
// managers have fully applied; callers can synchronize on it before
// driving traffic at newly joined peers. After a manager migration the
// count includes the replayed membership history the new manager
// re-applied — it is a progress watermark, not a distinct-event count.
func (t *Task) DynEventsProcessed() uint64 { return t.dynEvents.Load() }

// Results returns the queue of result items, subscribed since deployment
// (no items are missed between Subscribe and the first read). The queue
// is stable across publisher migrations: failover re-binds the
// underlying subscription and the cursor deduplicates the overlap.
func (t *Task) Results() *stream.Queue {
	if t.resultQ != nil {
		return t.resultQ
	}
	return t.resultSub.Queue
}

// ResultChannel returns the named channel the task publishes under
// (e.g. alertQoS@p), so other peers and tasks can subscribe to it.
func (t *Task) ResultChannel() stream.Ref {
	if t.namedCh != nil {
		return t.namedCh.Ref()
	}
	return t.resultCh.Ref()
}

// StreamRefs exposes the per-operator stream identities assigned at
// deployment (diagnostics, Figure 4 style inspection).
func (t *Task) StreamRefs() map[*algebra.Node]stream.Ref { return t.refs }

// Poll drives the task's polling alerters (RSS, Web pages) once and
// returns the number of alerts produced.
func (t *Task) Poll() (int, error) {
	total := 0
	var firstErr error
	for _, p := range t.pollers {
		n, err := p()
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// OperatorsDeployed counts the operators this task actually deployed
// (channels created), excluding reused streams.
func (t *Task) OperatorsDeployed() int { return len(t.channels) }

// IngestByPeer sums items consumed by the task's operators per hosting
// peer — the per-peer ingest load the X4 aggregation-tree experiment
// compares between flat and tree deployments. Attribution follows each
// operator's current placement (after migrations, the live host).
func (t *Task) IngestByPeer() map[string]uint64 {
	out := make(map[string]uint64)
	for n, inst := range t.procs {
		out[n.Peer] += inst.handle.ItemsIn()
	}
	return out
}

// ItemsProcessed sums items consumed across the task's own operators —
// the CPU-side measure of the reuse experiments.
func (t *Task) ItemsProcessed() uint64 {
	var total uint64
	for _, h := range t.handles {
		total += h.ItemsIn()
	}
	return total
}

// Stop tears the task down in two phases. First the task's own alerters
// emit eos and subscriptions to *shared* channels (reused streams, which
// will never close on our account) are cancelled; that guarantees every
// operator's inputs terminate, so eos cascades cleanly through the
// task's own channels without losing buffered items. Then the operator
// goroutines are awaited and everything remaining is closed.
func (t *Task) Stop() {
	t.stopOnce.Do(func() {
		for _, c := range t.closers {
			c()
		}
		for _, s := range t.extSubs {
			s.Unsubscribe()
		}
		// Queues re-bound to shared channels are not closed by their
		// subscription's own queue; close them here so their consumers
		// terminate like any other shared-source reader.
		for _, q := range t.extQueues {
			q.Close()
		}
		for _, h := range t.handles {
			h.Wait()
		}
		for _, d := range t.dynDone {
			<-d
		}
		for _, ch := range t.channels {
			ch.Close()
		}
		for _, s := range t.subs {
			s.Unsubscribe()
		}
		if t.resultSub != nil {
			t.resultSub.Unsubscribe()
		}
	})
}

// Wait blocks until all operator goroutines have finished (after the
// sources have closed).
func (t *Task) Wait() {
	for _, h := range t.handles {
		h.Wait()
	}
	for _, d := range t.dynDone {
		<-d
	}
}

// SafeBuffer is a mutex-guarded bytes.Buffer usable as an io.Writer sink
// by publisher operators while tests read it concurrently.
type SafeBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

// Write implements io.Writer.
func (s *SafeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

// String returns the accumulated contents.
func (s *SafeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// Len returns the accumulated size.
func (s *SafeBuffer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Len()
}
