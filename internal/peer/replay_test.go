package peer

import (
	"fmt"
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/p2pml"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// replayOptions returns DefaultConfig with the lossless-failover layer
// on.
func replayOptions() Config {
	opts := DefaultConfig()
	opts.Replay.Buffer = 4096
	opts.Replay.CheckpointInterval = 2 * time.Second
	return opts
}

// relayRig is the canonical exactly-once topology: a hand-fed source
// channel at src, a relay operator at w1 (the peer the tests kill),
// publishing at mgr, supervised from mon.
type relayRig struct {
	sys   *System
	srcCh *stream.Channel
	task  *Task
	sup   *Supervisor
	next  int
}

func newRelayRig(t *testing.T, opts Config) *relayRig {
	t.Helper()
	sys := MustSystem(opts)
	for _, name := range []string{"src", "mgr", "mon", "w1", "w2"} {
		sys.MustAddPeer(name)
	}
	for _, busy := range []string{"src", "mgr", "mon"} {
		sys.Net.AddLoad(busy, 100)
	}
	srcCh := stream.NewChannel("src", "ev")
	sys.registerChannel(srcCh)
	chin := &algebra.Node{Op: algebra.OpChannelIn, Peer: "src", Channel: srcCh.Ref(), Schema: []string{"e"}}
	relay := &algebra.Node{Op: algebra.OpUnion, Peer: "w1", Inputs: []*algebra.Node{chin}, Schema: []string{"e"}}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{relay},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "out"},
	}
	task, err := sys.Peer("mgr").DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.StartSupervisor("mon", DetectorOptions{Interval: time.Second, Suspicion: 2 * time.Second})
	return &relayRig{sys: sys, srcCh: srcCh, task: task, sup: sup}
}

// emit publishes the next uniquely-identified event into the source.
func (r *relayRig) emit() {
	r.next++
	tree := xmltree.Elem("e")
	tree.SetAttr("id", fmt.Sprintf("%d", r.next))
	r.srcCh.Publish(stream.Item{Tree: tree, Time: r.sys.Net.Clock().Now()})
}

// syncUntil steps the system (letting anti-entropy sweeps and pending
// detections run) until the task has settled at least want results.
func (r *relayRig) syncUntil(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.task.Results().Len() < want && time.Now().Before(deadline) {
		r.sys.Step(time.Second)
		time.Sleep(time.Millisecond)
	}
}

// assertExactlyOnce drains the stopped task's results and checks each id
// in [1, n] arrived exactly once.
func assertExactlyOnce(t *testing.T, task *Task, n int) {
	t.Helper()
	counts := make(map[string]int)
	for _, it := range task.Results().Drain() {
		counts[it.Tree.AttrOr("id", "?")]++
	}
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("%d", i)
		switch counts[id] {
		case 1:
		case 0:
			t.Errorf("event %s missing", id)
		default:
			t.Errorf("event %s delivered %d times", id, counts[id])
		}
	}
	if len(counts) != n {
		t.Errorf("result id set has %d entries, want %d (%v)", len(counts), n, counts)
	}
}

// TestExactlyOnceAcrossFaultMixes is the end-to-end exactly-once
// property test: 20 uniquely-numbered events flow through the relay
// pipeline while the table's fault mix strikes — per-link drop
// probability, extra delay, a partition that heals, a crash that forces
// a migration, and their combination. With replay buffers, cursors and
// checkpoints on, the subscriber must see every sequence number exactly
// once: no duplicate, no gap. Run with -race and -shuffle=on.
func TestExactlyOnceAcrossFaultMixes(t *testing.T) {
	const events = 20
	cases := []struct {
		name string
		// at is called after event i (1-based) has been driven.
		at         func(r *relayRig, i int)
		wantReplay bool
		migrates   bool
	}{
		{name: "no faults"},
		{
			name: "lossy links",
			at: func(r *relayRig, i int) {
				if i == 1 {
					r.sys.Net.SetDrop("src", "w1", 0.5)
					r.sys.Net.SetDrop("w1", "mgr", 0.5)
				}
			},
			wantReplay: true,
		},
		{
			name: "slow links",
			at: func(r *relayRig, i int) {
				if i == 1 {
					r.sys.Net.SetExtraDelay("src", "w1", 1500*time.Millisecond)
					r.sys.Net.SetExtraDelay("w1", "mgr", 900*time.Millisecond)
				}
			},
		},
		{
			name: "partition heals",
			at: func(r *relayRig, i int) {
				// src cannot reach the relay for a third of the run; the
				// monitor sees both sides, so no migration happens and the
				// sweep must repair the hole after the heal.
				if i == 7 {
					r.sys.Net.Partition([]string{"src"}, []string{"w1"})
				}
				if i == 14 {
					r.sys.Net.Heal()
				}
			},
			wantReplay: true,
		},
		{
			name: "crash and migrate",
			at: func(r *relayRig, i int) {
				if i == 7 {
					r.sys.Net.Crash("w1") //nolint:errcheck // known node
				}
				if i == 15 {
					r.sys.Net.Recover("w1") //nolint:errcheck // known node
				}
			},
			wantReplay: true,
			migrates:   true,
		},
		{
			name: "lossy links and crash",
			at: func(r *relayRig, i int) {
				if i == 1 {
					for _, link := range [][2]string{{"src", "w1"}, {"w1", "mgr"}, {"src", "w2"}, {"w2", "mgr"}} {
						r.sys.Net.SetDrop(link[0], link[1], 0.4)
					}
				}
				if i == 7 {
					r.sys.Net.Crash("w1") //nolint:errcheck // known node
				}
			},
			wantReplay: true,
			migrates:   true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newRelayRig(t, replayOptions())
			for i := 1; i <= events; i++ {
				r.emit()
				r.sys.Step(time.Second)
				if c.at != nil {
					c.at(r, i)
				}
			}
			r.syncUntil(t, events)
			if c.migrates {
				if got := relayHost(r.task); got != "w2" {
					t.Errorf("relay host = %q, want w2 after migration", got)
				}
				if len(r.sup.Deaths()) == 0 {
					t.Error("crash never detected")
				}
			}
			if c.wantReplay && r.sys.ReplayedItems() == 0 {
				t.Error("fault mix should have forced retransmissions")
			}
			if got := r.task.Degraded(); len(got) != 0 {
				t.Errorf("task degraded: %v", got)
			}
			r.task.Stop()
			assertExactlyOnce(t, r.task, events)
		})
	}
}

// TestCheckpointTailSurvivesPartitionedCrash: outputs published while
// the downstream consumer was partitioned away are not yet delivered
// when the producer crashes — and the producer's retention buffer dies
// with it. The checkpoint's undelivered-output tail must carry them to
// the replacement channel, or the consumer's cursor would SkipTo past a
// permanent hole. (The relay keeps consuming from the source during the
// partition, so the checkpoint's OutSeq covers the undelivered items.)
func TestCheckpointTailSurvivesPartitionedCrash(t *testing.T) {
	const events = 15
	r := newRelayRig(t, replayOptions())
	var relayRef stream.Ref
	for n, ref := range r.task.StreamRefs() {
		if n.Op == algebra.OpUnion {
			relayRef = ref
		}
	}
	for i := 1; i <= 9; i++ {
		r.emit()
		r.sys.Step(time.Second)
		if i == 4 {
			// The relay can still hear the source (and the monitor hears
			// the relay), but nothing reaches the publisher.
			r.sys.Net.Partition([]string{"w1"}, []string{"mgr"})
		}
	}
	// Quiesce the relay and take a *fresh* checkpoint: its input cursor
	// and OutSeq now cover the whole partition window, so only the
	// checkpoint's undelivered-output tail can carry items 5..9 past the
	// crash (input replay resumes after them, and the producer's buffer
	// dies with the host).
	relayCh, _ := r.sys.Channel(relayRef)
	deadline := time.Now().Add(5 * time.Second)
	for relayCh.Seq() < 9 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if relayCh.Seq() < 9 {
		t.Fatalf("relay only published %d/9 before the crash", relayCh.Seq())
	}
	r.sys.CheckpointNow()
	r.sys.Net.Crash("w1") //nolint:errcheck // known node
	for i := 10; i <= events; i++ {
		r.emit()
		r.sys.Step(time.Second)
		if i == 12 {
			r.sys.Net.Heal()
		}
	}
	r.syncUntil(t, events)
	if len(r.sup.Deaths()) == 0 {
		t.Fatal("relay crash never detected")
	}
	r.task.Stop()
	assertExactlyOnce(t, r.task, events)
}

// TestColdAdoptionDoesNotDuplicate: replay on, checkpointing OFF, and
// the migrated operator adopts an announced replica channel that
// already mirrored the pre-crash output. The cold restart replays the
// full input history and re-publishes everything into the adopted
// channel — which must rewind to sequence 0 first, so the re-emission
// lands under the original numbers and downstream cursors drop it. (A
// regression here delivers the entire pre-crash stream twice.)
func TestColdAdoptionDoesNotDuplicate(t *testing.T) {
	const events = 12
	opts := replayOptions()
	opts.Replay.CheckpointInterval = 0 // no checkpoints: cold restarts only
	r := newRelayRig(t, opts)
	var relayRef stream.Ref
	for n, ref := range r.task.StreamRefs() {
		if n.Op == algebra.OpUnion {
			relayRef = ref
		}
	}
	if _, err := r.sys.AnnounceReplica(relayRef, "w2"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		r.emit()
		r.sys.Step(time.Second)
	}
	// Quiesce so the replica has mirrored the full pre-crash output: the
	// cold restart's re-emission then maximally overlaps what downstream
	// cursors already saw — the worst case for duplication.
	waitResults(t, r.task, 7)
	r.sys.Net.Crash("w1") //nolint:errcheck // known node
	for i := 8; i <= events; i++ {
		r.emit()
		r.sys.Step(time.Second)
	}
	r.syncUntil(t, events)
	var adopted FailoverEvent
	for _, e := range r.sup.Events() {
		if e.From == "w1" && e.Repaired() {
			adopted = e
		}
	}
	if !adopted.ViaReplica || adopted.To != "w2" {
		t.Fatalf("failover = %+v, want adoption of the w2 replica", adopted)
	}
	r.task.Stop()
	assertExactlyOnce(t, r.task, events)
}

// TestCheckpointRestoresDistinctState: duplicate suppression must
// survive a migration. The retention buffer is deliberately smaller than
// the stream history, so only the replicated checkpoint — not a full
// input replay — can carry the Distinct memory to the new host:
// duplicates of the earliest items re-driven after the migration arrive
// with fresh sequence numbers and would re-emit from a cold instance.
func TestCheckpointRestoresDistinctState(t *testing.T) {
	opts := replayOptions()
	opts.Replay.Buffer = 4 // ≪ history: full replay cannot rebuild the state
	opts.Replay.CheckpointInterval = time.Second
	sys := MustSystem(opts)
	for _, name := range []string{"src", "mgr", "mon", "w1", "w2"} {
		sys.MustAddPeer(name)
	}
	for _, busy := range []string{"src", "mgr", "mon"} {
		sys.Net.AddLoad(busy, 100)
	}
	srcCh := stream.NewChannel("src", "ev")
	sys.registerChannel(srcCh)
	chin := &algebra.Node{Op: algebra.OpChannelIn, Peer: "src", Channel: srcCh.Ref(), Schema: []string{"e"}}
	dist := &algebra.Node{Op: algebra.OpDistinct, Peer: "w1", Inputs: []*algebra.Node{chin}, Schema: []string{"e"}}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{dist},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "uniq"},
	}
	task, err := sys.Peer("mgr").DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(id int) {
		tree := xmltree.Elem("e")
		tree.SetAttr("id", fmt.Sprintf("%d", id))
		srcCh.Publish(stream.Item{Tree: tree, Time: sys.Net.Clock().Now()})
	}

	for i := 1; i <= 6; i++ {
		emit(i)
		sys.Step(time.Second)
	}
	waitResults(t, task, 6)
	sys.Step(time.Second) // a checkpoint capturing the full Distinct memory
	sys.Step(time.Second)

	events := sys.FailPeer("w1", 0)
	repaired := 0
	for _, e := range events {
		if e.Repaired() {
			repaired++
		}
	}
	if repaired == 0 {
		t.Fatalf("no repairs in %+v", events)
	}
	// Duplicates of the oldest items (long trimmed from the 4-item
	// retention buffer) plus two genuinely new items.
	for _, id := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		emit(id)
		sys.Step(time.Second)
	}
	deadline := time.Now().Add(5 * time.Second)
	for task.Results().Len() < 8 && time.Now().Before(deadline) {
		sys.Step(time.Second)
		time.Sleep(time.Millisecond)
	}
	task.Stop()
	assertExactlyOnce(t, task, 8)
}

// TestPublisherRedeploysOnHostDeath: PR 1 marked a publisher stranded on
// a dead host Degraded; now the fan-out moves. The named channel reopens
// at a live peer under the same ChannelID, the manager's Results() queue
// keeps filling without duplicates, the human-facing sinks keep
// appending, and an external consumer of the named channel is re-bound
// through the chained replica record.
func TestPublisherRedeploysOnHostDeath(t *testing.T) {
	sys := MustSystem(replayOptions())
	for _, name := range []string{"src", "mgr", "pub", "far", "w2"} {
		sys.MustAddPeer(name)
	}
	for _, busy := range []string{"src", "mgr", "far"} {
		sys.Net.AddLoad(busy, 100)
	}
	srcCh := stream.NewChannel("src", "ev")
	sys.registerChannel(srcCh)
	chin := &algebra.Node{Op: algebra.OpChannelIn, Peer: "src", Channel: srcCh.Ref(), Schema: []string{"e"}}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "pub", Inputs: []*algebra.Node{chin},
		Schema: []string{"e"},
		Publish: &algebra.PublishSpec{
			ChannelID: "out",
			Targets: []p2pml.ByTarget{
				{Kind: p2pml.ByEmail, Name: "ops@mgr"},
				{Kind: p2pml.BySubscribe, Peer: "far", ChannelID: "inbox"},
			},
		},
	}
	task, err := sys.Peer("mgr").DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	oldNamed := task.ResultChannel()
	if oldNamed.PeerID != "pub" {
		t.Fatalf("named channel at %s, want pub", oldNamed.PeerID)
	}

	// An external task mirrors the named channel.
	mirror := &algebra.Node{
		Op: algebra.OpPublish, Peer: "far", Schema: []string{"e"},
		Publish: &algebra.PublishSpec{ChannelID: "mirror"},
		Inputs: []*algebra.Node{{
			Op: algebra.OpChannelIn, Peer: oldNamed.PeerID, Schema: []string{"e"},
			Channel: oldNamed,
		}},
	}
	t2, err := sys.Peer("far").DeployPlan(mirror)
	if err != nil {
		t.Fatal(err)
	}

	emit := func(id int) {
		tree := xmltree.Elem("e")
		tree.SetAttr("id", fmt.Sprintf("%d", id))
		srcCh.Publish(stream.Item{Tree: tree, Time: sys.Net.Clock().Now()})
	}
	for i := 1; i <= 3; i++ {
		emit(i)
		sys.Step(time.Second)
	}
	waitResults(t, task, 3)
	waitResults(t, t2, 3)

	events := sys.FailPeer("pub", 0)
	repaired := 0
	for _, e := range events {
		if e.Repaired() {
			repaired++
		}
	}
	if repaired == 0 {
		t.Fatalf("publisher not repaired: %+v", events)
	}
	if got := task.Degraded(); len(got) != 0 {
		t.Fatalf("task degraded: %v", got)
	}
	newNamed := task.ResultChannel()
	if newNamed.PeerID == "pub" || newNamed.StreamID != "out" {
		t.Fatalf("named channel after failover = %v, want out@<live peer>", newNamed)
	}
	for i := 4; i <= 6; i++ {
		emit(i)
		sys.Step(time.Second)
	}
	deadline := time.Now().Add(5 * time.Second)
	for (task.Results().Len() < 6 || t2.Results().Len() < 6) && time.Now().Before(deadline) {
		sys.Step(time.Second)
		time.Sleep(time.Millisecond)
	}
	task.Stop()
	t2.Stop()
	assertExactlyOnce(t, task, 6)
	assertExactlyOnce(t, t2, 6)
	if got := task.Mailbox.Len(); got == 0 {
		t.Error("email sink stopped after the publisher migrated")
	}
	// The BySubscribe target's incoming queue is gated by its own
	// cursor: the rebuilt fan-out's re-emissions must not duplicate what
	// the target already received.
	inbox := sys.Peer("far").Incoming("inbox")
	counts := make(map[string]int)
	for {
		it, ok := inbox.TryPop()
		if !ok {
			break
		}
		if !it.EOS() {
			counts[it.Tree.AttrOr("id", "?")]++
		}
	}
	if len(counts) != 6 {
		t.Errorf("subscribe-target received %d distinct ids, want 6 (%v)", len(counts), counts)
	}
	for id, n := range counts {
		if n != 1 {
			t.Errorf("subscribe-target received id %s %d times", id, n)
		}
	}
}

// TestDynAlerterDegradesWithoutReplay: with the replay layer off there
// is no membership history to reconstruct the active set from, so the
// task must visibly degrade (PR 1 semantics) rather than report a repair
// that silently stopped monitoring every already-joined peer.
func TestDynAlerterDegradesWithoutReplay(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	for _, name := range []string{"mgr", "w1", "w2"} {
		sys.MustAddPeer(name)
	}
	driver := algebra.NewAlerter("areRegistered", "membership", "mgr", "j", nil)
	dyn := &algebra.Node{
		Op: algebra.OpDynAlerter, Peer: "w1", Inputs: []*algebra.Node{driver},
		Schema:  []string{"c"},
		Alerter: &algebra.AlerterSpec{Func: "inCOM", Kind: "ws-in"},
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{dyn},
		Schema: []string{"c"}, Publish: &algebra.PublishSpec{ChannelID: "watch"},
	}
	task, err := sys.Peer("mgr").DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	sys.FailPeer("w1", 0)
	if got := task.Degraded(); len(got) != 1 {
		t.Fatalf("degraded = %v, want the dyn-alerter manager", got)
	}
	task.Stop()
}

// TestDynAlerterManagerRedeploysOnHostDeath: killing the host of an
// inCOM($j) dynamic-alerter manager no longer degrades the task. The
// new manager replays the membership stream from the driver channel's
// retention buffer, reconstructs the active set, re-attaches the hooks,
// and keeps capturing calls at the monitored peers.
func TestDynAlerterManagerRedeploysOnHostDeath(t *testing.T) {
	sys := MustSystem(replayOptions())
	for _, name := range []string{"mgr", "mon", "w1", "w2"} {
		sys.MustAddPeer(name)
	}
	for _, busy := range []string{"mgr", "mon"} {
		sys.Net.AddLoad(busy, 100)
	}
	driver := algebra.NewAlerter("areRegistered", "membership", "mgr", "j", nil)
	dyn := &algebra.Node{
		Op: algebra.OpDynAlerter, Peer: "w1", Inputs: []*algebra.Node{driver},
		Schema:  []string{"c"},
		Alerter: &algebra.AlerterSpec{Func: "inCOM", Kind: "ws-in"},
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{dyn},
		Schema: []string{"c"}, Publish: &algebra.PublishSpec{ChannelID: "watch"},
	}
	task, err := sys.Peer("mgr").DeployPlan(plan)
	if err != nil {
		t.Fatal(err)
	}

	// svc joins after deployment: the manager attaches an alerter there.
	svc := sys.MustAddPeer("svc")
	svc.Endpoint().Register("ping", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("pong"), nil
	}, nil)
	caller := sys.MustAddPeer("caller")
	waitFor(t, func() bool { return task.DynEventsProcessed() >= 2 }) // svc + caller joins
	if _, err := caller.Endpoint().Invoke("svc", "ping", nil); err != nil {
		t.Fatal(err)
	}
	waitResults(t, task, 1)

	before := task.DynEventsProcessed()
	events := sys.FailPeer("w1", 0)
	repaired := false
	for _, e := range events {
		if e.Repaired() && e.To != "" {
			repaired = true
		}
	}
	if !repaired {
		t.Fatalf("dyn-alerter manager not repaired: %+v", events)
	}
	if got := task.Degraded(); len(got) != 0 {
		t.Fatalf("task degraded: %v", got)
	}
	var dynHost string
	task.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpDynAlerter {
			dynHost = n.Peer
		}
	})
	if dynHost == "w1" || dynHost == "" {
		t.Fatalf("dyn-alerter manager still at %q", dynHost)
	}
	// The replayed membership history (svc join, caller join, w1's own
	// departure) rebuilds the active set before new traffic flows.
	waitFor(t, func() bool { return task.DynEventsProcessed() >= before+3 })
	if _, err := caller.Endpoint().Invoke("svc", "ping", nil); err != nil {
		t.Fatal(err)
	}
	waitResults(t, task, 2)
	task.Stop()
	if got := len(task.Results().Drain()); got != 2 {
		t.Fatalf("results = %d, want 2 (one call per epoch, no duplicates)", got)
	}
}
