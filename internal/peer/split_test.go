package peer

import (
	"fmt"
	"testing"
	"time"

	"p2pm/internal/aggtree"
	"p2pm/internal/algebra"
)

// splitConfig arms the replay layer the split transaction requires on
// top of an aggregation tree of the given degree.
func splitConfig(degree int) Config {
	opts := DefaultConfig()
	opts.Agg.Degree = degree
	opts.Replay.Buffer = 4096
	opts.Replay.CheckpointInterval = 2 * time.Second
	return opts
}

// firstLevelInterior finds a key-routed interior merging PartialAgg
// leaves directly — the only kind whose gauge moves mid-run and so the
// only split candidate.
func firstLevelInterior(task *Task) *algebra.Node {
	var target *algebra.Node
	task.Plan.Walk(func(n *algebra.Node) {
		if target != nil || n.Op != algebra.OpMergeAgg || n.AggKey == "" {
			return
		}
		for _, in := range n.Inputs {
			if in.Op != algebra.OpPartialAgg {
				return
			}
		}
		target = n
	})
	return target
}

// TestSplitInteriorMatchesFlat: re-chunking a running interior halves
// its fan-in and the final records stay byte-identical to the flat
// baseline — the mid-stream cut loses nothing and duplicates nothing.
func TestSplitInteriorMatchesFlat(t *testing.T) {
	const sources, workers, events = 8, 3, 64
	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	driveAgg(t, flatSys, sources, events, time.Second)
	want := groupRecords(t, flatTask)
	if len(want) == 0 {
		t.Fatal("flat baseline produced no records")
	}

	sys, task := aggWorld(t, splitConfig(4), sources, workers)
	client := sys.Peer("client")
	var ev SplitEvent
	for i := 0; i < events; i++ {
		target := fmt.Sprintf("s%d", i%sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		settleTask(task)
		sys.Step(time.Second)
		if i == events/2 {
			// Mid-window, mid-stream: the interior holds merged state
			// and its inputs hold unconsumed partials.
			n := firstLevelInterior(task)
			if n == nil {
				t.Fatal("no first-level interior in the tree")
			}
			fanIn := len(n.Inputs)
			var err error
			ev, err = sys.SplitInterior(task, n.AggKey)
			if err != nil {
				t.Fatalf("split: %v", err)
			}
			if len(n.Inputs) != 2 || len(ev.Keys) != 2 {
				t.Fatalf("fan-in %d after splitting %d-ary interior, events %v", len(n.Inputs), fanIn, ev)
			}
			for _, m := range n.Inputs {
				if m.Op != algebra.OpMergeAgg || m.AggKey == "" {
					t.Fatalf("child %s of the split interior is not a key-routed merge", m.Label())
				}
				if len(m.Inputs) != fanIn/2 {
					t.Errorf("sub-interior %s fan-in = %d, want %d", m.AggKey, len(m.Inputs), fanIn/2)
				}
			}
		}
	}
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	got := groupRecords(t, task)
	if !equalRecords(got, want) {
		t.Errorf("post-split records differ from flat baseline:\n got: %v\nwant: %v", got, want)
	}
	if evs := sys.SplitEvents(); len(evs) != 1 || evs[0].Operator != ev.Operator {
		t.Errorf("split audit log = %v, want the one recorded event", evs)
	}
}

// TestSplitThenCrashExactlyOnce is the re-chunk-under-churn regression:
// the just-split interior's host crashes before another checkpoint
// cadence; failover must restore the new shape from the split's own
// checkpoint (the pre-split one has the wrong arity) and the output must
// still match the flat baseline.
func TestSplitThenCrashExactlyOnce(t *testing.T) {
	const sources, workers, events = 8, 3, 64
	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	driveAgg(t, flatSys, sources, events, time.Second)
	want := groupRecords(t, flatTask)

	sys, task := aggWorld(t, splitConfig(4), sources, workers)
	client := sys.Peer("client")
	victim := ""
	for i := 0; i < events; i++ {
		target := fmt.Sprintf("s%d", i%sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		settleTask(task)
		sys.Step(time.Second)
		switch i {
		case events / 2:
			n := firstLevelInterior(task)
			if n == nil {
				t.Fatal("no first-level interior")
			}
			if _, err := sys.SplitInterior(task, n.AggKey); err != nil {
				t.Fatalf("split: %v", err)
			}
			victim = n.Peer
			sys.Net.Crash(victim)
		case events/2 + 3:
			evs := sys.FailPeer(victim, sys.Net.Clock().Now())
			repaired := 0
			for _, ev := range evs {
				if ev.Repaired() {
					repaired++
				}
			}
			if repaired == 0 {
				t.Fatalf("no repairs after crashing split host %s (%v)", victim, evs)
			}
		}
	}
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	got := groupRecords(t, task)
	if !equalRecords(got, want) {
		t.Errorf("split+crash records differ from flat baseline:\n got: %v\nwant: %v", got, want)
	}
}

// TestRechunkControllerSplitsHotInterior: the load controller notices a
// skewed drive — one interior ingesting far above its tree's mean — and
// splits it without any direct actuation, and the records still match
// the flat baseline driven with the same skew.
func TestRechunkControllerSplitsHotInterior(t *testing.T) {
	const sources, workers, events = 8, 3, 96
	// Skew: five of every six events land on sources s0..s3 — the first
	// interior's leaves under Degree 4.
	skewTarget := func(i int) string {
		if i%6 == 5 {
			return fmt.Sprintf("s%d", 4+i%4)
		}
		return fmt.Sprintf("s%d", i%4)
	}
	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	flatClient := flatSys.Peer("client")
	for i := 0; i < events; i++ {
		if _, err := flatClient.Endpoint().Invoke(skewTarget(i), "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		flatSys.Step(time.Second)
	}
	want := groupRecords(t, flatTask)

	opts := splitConfig(4)
	opts.Agg.SplitRatio = 1.5
	opts.Agg.SplitMinFanIn = 4
	opts.Agg.SplitObservations = 3
	opts.Agg.SplitCooldown = 10 * time.Second
	sys, task := aggWorld(t, opts, sources, workers)
	client := sys.Peer("client")
	for i := 0; i < events; i++ {
		if _, err := client.Endpoint().Invoke(skewTarget(i), "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		settleTask(task)
		sys.Step(time.Second)
	}
	evs := sys.SplitEvents()
	if len(evs) == 0 {
		t.Fatal("controller never split the hot interior")
	}
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	got := groupRecords(t, task)
	if !equalRecords(got, want) {
		t.Errorf("controller-split records differ from flat baseline:\n got: %v\nwant: %v", got, want)
	}
}

// TestTuningMidRunDeterministic is the API-redesign acceptance test:
// mutating the runtime tuning surface mid-run — arming the split
// controller via SetAggSplitRatio and widening gossip suspicion via
// SetGossipSuspicion — preserves seeded determinism (two identical runs
// produce identical outputs and identical split logs) and exactly-once
// output (records match the flat baseline).
func TestTuningMidRunDeterministic(t *testing.T) {
	const sources, workers, events = 8, 3, 96
	skewTarget := func(i int) string {
		if i%6 == 5 {
			return fmt.Sprintf("s%d", 4+i%4)
		}
		return fmt.Sprintf("s%d", i%4)
	}
	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	flatClient := flatSys.Peer("client")
	for i := 0; i < events; i++ {
		if _, err := flatClient.Endpoint().Invoke(skewTarget(i), "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		flatSys.Step(time.Second)
	}
	want := groupRecords(t, flatTask)

	run := func() ([]string, []SplitEvent) {
		opts := splitConfig(4)
		// The controller starts disarmed but registered: SplitRatio > 0
		// at construction wires the Step hook, the mid-run setter below
		// re-arms the deciding ratio.
		opts.Agg.SplitRatio = 1.5
		opts.Agg.SplitMinFanIn = 4
		opts.Agg.SplitObservations = 3
		opts.Agg.SplitCooldown = 10 * time.Second
		sys, task := aggWorld(t, opts, sources, workers)
		tun := sys.Tuning()
		tun.SetAggSplitRatio(0) // suspend before any traffic
		sys.StartGossipDetector(GossipOptions{Seed: 11, ProbeInterval: time.Second})
		client := sys.Peer("client")
		for i := 0; i < events; i++ {
			if _, err := client.Endpoint().Invoke(skewTarget(i), "Q", nil); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			settleTask(task)
			sys.Step(time.Second)
			switch i {
			case events / 3:
				// Re-arm the controller mid-run; splits may begin.
				tun.SetAggSplitRatio(1.5)
			case events / 2:
				tun.SetGossipSuspicion(5 * time.Second)
				tun.SetCheckpointInterval(time.Second)
			}
		}
		for i := 0; i < 8; i++ {
			sys.Step(time.Second)
		}
		return groupRecords(t, task), sys.SplitEvents()
	}

	got1, splits1 := run()
	got2, splits2 := run()
	if len(splits1) == 0 {
		t.Fatal("mid-run SetAggSplitRatio never produced a split — the knob is dead")
	}
	if fmt.Sprint(splits1) != fmt.Sprint(splits2) {
		t.Fatalf("same seed, different split timelines:\n run1: %v\n run2: %v", splits1, splits2)
	}
	if !equalRecords(got1, got2) {
		t.Fatalf("same seed, different records:\n run1: %v\n run2: %v", got1, got2)
	}
	if !equalRecords(got1, want) {
		t.Errorf("tuned-run records differ from flat baseline:\n got: %v\nwant: %v", got1, want)
	}
}

// TestSplitGuards: the transaction refuses the Final root, unknown keys,
// dead hosts and systems without the replay layer.
func TestSplitGuards(t *testing.T) {
	sys, task := aggWorld(t, splitConfig(4), 8, 3)
	defer task.Stop()
	if _, err := sys.SplitInterior(task, ""); err == nil {
		t.Error("splitting the Final root was allowed")
	}
	if _, err := sys.SplitInterior(task, "no-such-key"); err == nil {
		t.Error("splitting an unknown key was allowed")
	}
	n := firstLevelInterior(task)
	sys.Net.Crash(n.Peer)
	if _, err := sys.SplitInterior(task, n.AggKey); err == nil {
		t.Error("splitting an interior on a dead host was allowed")
	}
	sys.Net.Recover(n.Peer)

	plain := DefaultConfig()
	plain.Agg.Degree = 4
	sys2, task2 := aggWorld(t, plain, 8, 3)
	defer task2.Stop()
	n2 := firstLevelInterior(task2)
	if _, err := sys2.SplitInterior(task2, n2.AggKey); err == nil {
		t.Error("split without the replay layer was allowed")
	}
}

var _ = aggtree.Interiors // keep the import stable across edits

// TestSplitRebalancesTreeWide: after a crash + failover moves interiors
// onto fallback hosts and the crashed worker recovers, the tree sits
// off its DHT-derived placement until the next membership event.
// SplitInterior must restore the invariant tree-wide at split time (via
// RebalanceAggTrees) — the recovered worker gets its interiors back —
// instead of leaving the placement stale, and the relocations must not
// disturb the output.
func TestSplitRebalancesTreeWide(t *testing.T) {
	const sources, workers, events = 16, 3, 48

	flatSys, flatTask := aggWorld(t, DefaultConfig(), sources, workers)
	driveAgg(t, flatSys, sources, events, time.Second)
	want := groupRecords(t, flatTask)
	if len(want) == 0 {
		t.Fatal("flat baseline produced no records")
	}

	sys, task := aggWorld(t, splitConfig(4), sources, workers)
	client := sys.Peer("client")
	victim := ""
	for i := 0; i < events; i++ {
		target := fmt.Sprintf("s%d", i%sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		settleTask(task)
		sys.Step(time.Second)
		switch i {
		case events / 3:
			// Crash one interior host and repair: its interiors move to
			// fallback homes derived without it.
			task.Plan.Walk(func(n *algebra.Node) {
				if victim == "" && n.AggKey != "" {
					victim = n.Peer
				}
			})
			if victim == "" {
				t.Fatal("no interior host to crash")
			}
			sys.Net.Crash(victim)
			sys.FailPeer(victim, sys.Net.Clock().Now())
		case events/3 + 3:
			// Recovery alone rebalances nothing: the derived placement
			// now includes the recovered worker again, so the tree is off
			// its homes — the staleness the split must clean up.
			sys.Net.Recover(victim)
			displaced := 0
			desired := sys.AggPlacements(task.Plan)
			task.Plan.Walk(func(m *algebra.Node) {
				if m.AggKey != "" && desired[m.AggKey] != "" && desired[m.AggKey] != m.Peer {
					displaced++
				}
			})
			if displaced == 0 {
				t.Fatal("recovery left no interior off its derived home; the scenario lost its teeth")
			}
		case events / 2:
			n := firstLevelInterior(task)
			if n == nil {
				t.Fatal("no first-level interior in the tree")
			}
			if _, err := sys.SplitInterior(task, n.AggKey); err != nil {
				t.Fatalf("split: %v", err)
			}
			// The invariant: every live interior sits on its DHT-derived
			// home immediately after the split returns.
			desired := sys.AggPlacements(task.Plan)
			task.Plan.Walk(func(m *algebra.Node) {
				if m.AggKey == "" {
					return
				}
				if home := desired[m.AggKey]; home != "" && home != m.Peer {
					t.Errorf("interior %s on %s, derived home %s — split did not rebalance tree-wide", m.AggKey, m.Peer, home)
				}
			})
		}
	}
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	if got := groupRecords(t, task); !equalRecords(got, want) {
		t.Errorf("post-split records differ from flat baseline:\n got: %v\nwant: %v", got, want)
	}
}
