package peer

import (
	"fmt"
	"testing"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/xmltree"
)

// TestGroupClauseEndToEnd drives the Edos statistics shape through the
// P2PML extension clause: per-mirror download counts per window.
func TestGroupClauseEndToEnd(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	noc := sys.MustAddPeer("noc")
	for _, m := range []string{"mirror-0", "mirror-1"} {
		mp := sys.MustAddPeer(m)
		mp.Endpoint().Register("GetPackage", func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.Elem("pkg"), nil
		}, nil)
	}
	client := sys.MustAddPeer("client")

	task, err := noc.Subscribe(`for $c in inCOM(<p>mirror-0</p><p>mirror-1</p>)
where $c.callMethod = "GetPackage"
return <dl mirror="{$c.callee}"/>
group on "mirror" window "1m"
by publish as channel "rates"`)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: 3 downloads from mirror-0, 1 from mirror-1.
	for i := 0; i < 3; i++ {
		client.Endpoint().Invoke("mirror-0", "GetPackage", nil)
	}
	client.Endpoint().Invoke("mirror-1", "GetPackage", nil)
	sys.Net.Clock().Advance(2 * time.Minute)
	// Window 2: 2 downloads from mirror-1.
	client.Endpoint().Invoke("mirror-1", "GetPackage", nil)
	client.Endpoint().Invoke("mirror-1", "GetPackage", nil)

	task.Stop()
	got := task.Results().Drain()
	counts := map[string]string{}
	for _, it := range got {
		key := fmt.Sprintf("w%s/%s", it.Tree.AttrOr("window", "?"), it.Tree.AttrOr("key", "?"))
		counts[key] = it.Tree.AttrOr("count", "")
	}
	if len(got) != 3 {
		t.Fatalf("groups = %d (%v), want 3", len(got), counts)
	}
	if counts["w0/http://mirror-0"] != "3" || counts["w0/http://mirror-1"] != "1" {
		t.Errorf("window 0 counts = %v", counts)
	}
	if counts["w2/http://mirror-1"] != "2" {
		t.Errorf("window 2 counts = %v", counts)
	}
}

// TestGroupCheckpointRestoreMidWindow migrates a flat Group aggregator
// whose host crashes with windows open: the replicated checkpoint
// (window counts + Late bookkeeping) restores at the new host, the
// replayed input suffix re-accumulates, and the final records are
// byte-identical to an undisturbed run — identical window boundaries,
// identical counts.
func TestGroupCheckpointRestoreMidWindow(t *testing.T) {
	const sources, workers, events = 4, 3, 40
	baseSys, baseTask := aggWorld(t, DefaultConfig(), sources, workers)
	driveAgg(t, baseSys, sources, events, time.Second)
	want := groupRecords(t, baseTask)
	if len(want) == 0 {
		t.Fatal("baseline produced no records")
	}

	opts := DefaultConfig()
	opts.Replay.Buffer = 4096
	opts.Replay.CheckpointInterval = 2 * time.Second
	sys, task := aggWorld(t, opts, sources, workers)
	client := sys.Peer("client")
	groupHost := func() string {
		host := ""
		task.Plan.Walk(func(n *algebra.Node) {
			if n.Op == algebra.OpGroup {
				host = n.Peer
			}
		})
		return host
	}
	for i := 0; i < events; i++ {
		target := fmt.Sprintf("s%d", i%sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		settleTask(task)
		sys.Step(time.Second)
		if i == 25 { // mid-window: 25s into 10s windows
			victim := groupHost()
			evs := sys.FailPeer(victim, sys.Net.Clock().Now())
			repaired := false
			for _, ev := range evs {
				repaired = repaired || ev.Repaired()
			}
			if !repaired {
				t.Fatalf("group migration failed: %v", evs)
			}
			if got := groupHost(); got == victim {
				t.Fatalf("group still on the dead %s", got)
			}
		}
	}
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
	}
	got := groupRecords(t, task)
	if !equalRecords(got, want) {
		t.Errorf("post-migration records differ from the undisturbed run:\n got: %v\nwant: %v", got, want)
	}
}

func TestGroupClauseParsingErrors(t *testing.T) {
	sys := MustSystem(DefaultConfig())
	p := sys.MustAddPeer("p")
	bad := []string{
		`for $e in inCOM(<p>m</p>) return $e group on "k" window "nonsense" by channel X`,
		`for $e in inCOM(<p>m</p>) return $e group "k" window "1m" by channel X`,
		`for $e in inCOM(<p>m</p>) return $e group on "k" by channel X`,
	}
	for _, src := range bad {
		if _, err := p.Subscribe(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}
