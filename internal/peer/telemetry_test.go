package peer

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"p2pm/internal/telemetry"
)

// TestTelemetryEndToEnd scrapes a live System's HTTP metrics endpoint:
// Config.Telemetry.Addr brings up the exporter, Steps and monitored
// traffic move the instruments, and both export formats answer with
// them.
func TestTelemetryEndToEnd(t *testing.T) {
	const sources = 4
	cfg := DefaultConfig()
	cfg.Telemetry.Addr = "127.0.0.1:0"
	cfg.Telemetry.Registry = telemetry.NewRegistry() // keep Default clean
	sys, _ := aggWorld(t, cfg, sources, 2)
	defer sys.CloseTelemetry() //nolint:errcheck

	client := sys.Peer("client")
	for i := 0; i < 3; i++ {
		if _, err := client.Endpoint().Invoke(fmt.Sprintf("s%d", i%sources), "Q", nil); err != nil {
			t.Fatal(err)
		}
		sys.Step(time.Second)
	}

	addr := sys.TelemetryAddr()
	if addr == "" {
		t.Fatal("no bound telemetry address despite Config.Telemetry.Addr")
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return string(b)
	}

	prom := get("/metrics")
	for _, want := range []string{"system_steps_total 3", "stream_channels", "system_step_ns_bucket", "simnet_messages_total"} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, prom)
		}
	}
	js := get("/metrics.json")
	if !strings.Contains(js, `"name":"system_steps_total"`) || !strings.Contains(js, `"value":3`) {
		t.Errorf("json export missing the step counter:\n%s", js)
	}
}
