package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
)

// every returns one populated example of every message kind. Tests that
// claim "every kind" range over this; TestEveryKindCovered enforces
// that no kind constant is missing from it.
func every() []Message {
	return []Message{
		&Hello{Peer: "n2", Proto: ProtoVersion, Cluster: "demo"},
		&Item{Stream: "s3@relay", Seq: 41, TimeNS: 9_500_000_000, XML: `<call id="7" method="Reserve"/>`},
		&Item{Stream: "s3@relay", Seq: 42, EOS: true},
		&Partial{Fn: "avg", Window: 6, Key: "eu-west", Source: "n3", Count: 18, State: "18|452"},
		&Probe{Seq: 12, Updates: []GossipUpdate{{Peer: "n4", Status: StatusSuspect, Inc: 3}}},
		&Ack{Seq: 12, Stream: "s1@n2", Window: 5, Updates: []GossipUpdate{{Peer: "n4", Status: StatusAlive, Inc: 4}}},
		&Gossip{Updates: []GossipUpdate{
			{Peer: "n1", Status: StatusAlive, Inc: 1},
			{Peer: "n5", Status: StatusDead, Inc: 2},
			{Peer: "n6", Status: StatusLeft, Inc: 7},
		}},
		&CkptPut{Key: "ckpt|task-3|s2@merge", Value: `<op kind="Group"><window id="4"/></op>`},
		&CkptGet{ReqID: 77, Key: "ckpt|task-3|s2@merge"},
		&CkptResp{ReqID: 77, Key: "ckpt|task-3|s2@merge", Found: true, Values: []string{"<op/>", "<op v=\"2\"/>"}},
		&Publish{Def: `<Stream PeerId="p1" StreamId="s1" isAChannel="true"><Operator><Filter/></Operator><Operands/><Stats/></Stream>`},
		&Lookup{ReqID: 8, Query: "sig|Filter(inCOM@p1)[a=b]"},
		&LookupResp{ReqID: 8, Values: []string{"<Stream/>"}},
	}
}

func TestEveryKindCovered(t *testing.T) {
	seen := map[Kind]bool{}
	for _, m := range every() {
		seen[m.Kind()] = true
	}
	for k := KindHello; k <= KindLookupResp; k++ {
		if !seen[k] {
			t.Errorf("every() has no example for kind %s", k)
		}
	}
}

// TestRoundTripEveryKind: decode(encode(m)) == m, and the encoding is
// deterministic (two encodes are byte-equal).
func TestRoundTripEveryKind(t *testing.T) {
	for _, m := range every() {
		b := Encode(m)
		if !bytes.Equal(b, Encode(m)) {
			t.Fatalf("%s: nondeterministic encoding", m.Kind())
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Kind(), err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip mismatch\n got %#v\nwant %#v", m.Kind(), got, m)
		}
	}
}

// TestRoundTripProperty fuzzes random field values through the codec:
// arbitrary strings (including separators, NULs, non-UTF8) and uint64s
// must survive unchanged.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randStr := func() string {
		n := rng.Intn(40)
		b := make([]byte, n)
		rng.Read(b)
		return string(b)
	}
	for i := 0; i < 500; i++ {
		var ups []GossipUpdate
		for j := rng.Intn(4); j > 0; j-- {
			ups = append(ups, GossipUpdate{Peer: randStr(), Status: Status(rng.Intn(4)), Inc: rng.Uint64()})
		}
		msgs := []Message{
			&Item{Stream: randStr(), Seq: rng.Uint64(), TimeNS: rng.Uint64(), XML: randStr(), EOS: rng.Intn(2) == 0},
			&Partial{Fn: randStr(), Window: rng.Uint64(), Key: randStr(), Source: randStr(), Count: rng.Uint64(), State: randStr()},
			&Probe{Seq: rng.Uint64(), Updates: ups},
			&CkptPut{Key: randStr(), Value: randStr()},
		}
		for _, m := range msgs {
			got, err := Decode(Encode(m))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip mismatch\n got %#v\nwant %#v", got, m)
			}
		}
	}
}

// TestCrossVersionUnknownFields: a frame stamped with a future protocol
// version and carrying unknown field tags decodes cleanly — the known
// fields land, the unknown ones are skipped. This is the forward-
// compatibility contract of docs/TRANSPORT.md.
func TestCrossVersionUnknownFields(t *testing.T) {
	b := Encode(&Partial{Fn: "count", Window: 3, Source: "n2", Count: 5, State: "5"})
	b[2] = ProtoVersion + 1 // future version
	// Append two fields from the future: tag 99 (string-ish) and tag
	// 100 (varint-ish). Decoders must skip both.
	b = appendStrField(b, 99, "a-field-from-the-future")
	b = appendUintField(b, 100, 12345)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("cross-version decode: %v", err)
	}
	p, ok := got.(*Partial)
	if !ok {
		t.Fatalf("decoded %T, want *Partial", got)
	}
	want := &Partial{Fn: "count", Window: 3, Source: "n2", Count: 5, State: "5"}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("known fields corrupted by unknown ones:\n got %#v\nwant %#v", p, want)
	}
}

// TestUnknownFieldsInterleaved: unknown tags interleaved between known
// ones (not only appended) are skipped too.
func TestUnknownFieldsInterleaved(t *testing.T) {
	b := []byte{magic0, magic1, ProtoVersion, byte(KindLookup)}
	b = appendUintField(b, 1, 9)
	b = appendStrField(b, 7, "unknown middle field")
	b = appendStrField(b, 2, "sig|x")
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := &Lookup{ReqID: 9, Query: "sig|x"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v want %#v", got, want)
	}
}

// TestDecodeGarbage: hostile inputs error (never panic) and land in
// the dropped counter.
func TestDecodeGarbage(t *testing.T) {
	var st Stats
	cases := [][]byte{
		nil,
		{},
		{'P'},
		{'P', 'W'},
		{'P', 'W', 1},
		{'X', 'Y', 1, byte(KindItem)},          // bad magic
		{'P', 'W', 0, byte(KindItem)},          // version 0
		{'P', 'W', 1, 0},                       // kind 0
		{'P', 'W', 1, 200},                     // unknown kind
		{'P', 'W', 1, byte(KindItem), 0x80},    // truncated tag varint
		{'P', 'W', 1, byte(KindItem), 1, 0x80}, // truncated length varint
		{'P', 'W', 1, byte(KindItem), 1, 50, 'x'},                         // length overruns payload
		{'P', 'W', 1, byte(KindItem), 2, 1, 0xff},                         // seq field: bad uvarint value
		{'P', 'W', 1, byte(KindProbe), 2, 2, 0x80, 0x80},                  // update: corrupt sub-framing
		append([]byte{'P', 'W', 1, byte(KindCkptResp)}, 3, 2, 0xc0, 0xc0), // bool: bad uvarint
	}
	for i, c := range cases {
		if _, err := st.Decode(c); err == nil {
			t.Errorf("case %d (% x): expected decode error", i, c)
		}
	}
	if got := st.Dropped(); got != uint64(len(cases)) {
		t.Errorf("dropped counter = %d, want %d", got, len(cases))
	}
	if got := st.Decoded(); got != 0 {
		t.Errorf("decoded counter = %d, want 0", got)
	}
}

func TestStatsCountsSuccesses(t *testing.T) {
	var st Stats
	for _, m := range every() {
		if _, err := st.Decode(Encode(m)); err != nil {
			t.Fatalf("%s: %v", m.Kind(), err)
		}
	}
	if got, want := st.Decoded(), uint64(len(every())); got != want {
		t.Errorf("decoded = %d, want %d", got, want)
	}
	if st.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", st.Dropped())
	}
}

// TestSizeMatchesEncoding pins Size to the actual encoded length —
// transports charge byte counters from it.
func TestSizeMatchesEncoding(t *testing.T) {
	for _, m := range every() {
		if Size(m) != len(Encode(m)) {
			t.Errorf("%s: Size=%d, len(Encode)=%d", m.Kind(), Size(m), len(Encode(m)))
		}
	}
}

// TestHeaderLayout pins the first four bytes: magic "PW", version,
// kind. The multi-process cluster depends on this layout across builds,
// so it is wire format, not an implementation detail.
func TestHeaderLayout(t *testing.T) {
	b := Encode(&Hello{Peer: "n1"})
	if b[0] != 'P' || b[1] != 'W' {
		t.Errorf("magic = %q, want \"PW\"", b[:2])
	}
	if b[2] != ProtoVersion {
		t.Errorf("version byte = %d, want %d", b[2], ProtoVersion)
	}
	if Kind(b[3]) != KindHello {
		t.Errorf("kind byte = %d, want %d", b[3], KindHello)
	}
}

// TestVarintBoundary: a max-uint64 survives (9-byte uvarint edge).
func TestVarintBoundary(t *testing.T) {
	m := &Item{Stream: "s@p", Seq: ^uint64(0), TimeNS: ^uint64(0)}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %#v want %#v", got, m)
	}
	// And reject a 10-byte overlong uvarint as a field value.
	over := binary.AppendUvarint(nil, ^uint64(0))
	over = append(over, 0x01) // trailing junk inside the value
	b := []byte{magic0, magic1, ProtoVersion, byte(KindItem)}
	b = appendField(b, 2, over)
	if _, err := Decode(b); err == nil {
		t.Error("overlong uvarint value decoded without error")
	}
}
