package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through Decode. The invariants:
// Decode never panics, every rejection is an error counted in the
// dropped counter, and anything that decodes re-encodes into bytes
// that decode to the same message (the codec is self-consistent even
// for inputs a peer never produced — unknown fields are dropped on
// re-encode, so we compare the second decode against the first).
//
// The committed seed corpus (testdata/fuzz/FuzzDecode) covers every
// message kind plus the truncation/corruption edges; `go test -fuzz
// FuzzDecode ./internal/wire` explores from there.
func FuzzDecode(f *testing.F) {
	for _, m := range every() {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{'P', 'W'})
	f.Add([]byte{'P', 'W', 1, byte(KindItem), 0x80})
	f.Add([]byte{'P', 'W', 2, byte(KindGossip), 1, 2, 0x80, 0x80})
	f.Add(append(Encode(&CkptPut{Key: "k", Value: "v"}), 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		var st Stats
		m, err := st.Decode(data)
		if err != nil {
			if st.Dropped() != 1 || st.Decoded() != 0 {
				t.Fatalf("error not counted as dropped: dropped=%d decoded=%d", st.Dropped(), st.Decoded())
			}
			return
		}
		if st.Decoded() != 1 {
			t.Fatalf("success not counted: decoded=%d", st.Decoded())
		}
		// Re-encode and decode again: must be stable.
		b2 := Encode(m)
		m2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if !bytes.Equal(Encode(m2), b2) {
			t.Fatalf("re-encoding is not a fixed point:\n first %x\nsecond %x", b2, Encode(m2))
		}
	})
}
