// Package wire is the versioned, deterministic codec for every message
// that crosses a peer boundary: stream items, <partial> monoid
// aggregation payloads, gossip probe/ack/membership updates, DHT
// checkpoint put/get, and stream-definition publish/lookup. The same
// bytes travel over both transport backends — in-process simnet counts
// their length against its link statistics, the tcp backend writes them
// into length-prefixed frames — so a scenario's traffic is identical no
// matter which substrate carries it (docs/TRANSPORT.md).
//
// Encoding is a fixed header (magic "PW", version, kind) followed by
// tagged fields: tag uvarint, length uvarint, value bytes, in ascending
// tag order. Integers are uvarints inside the value; strings are raw
// bytes; repeated tags build lists in order. The tagging buys forward
// compatibility: a decoder skips tags it does not know, so a newer
// peer can add fields without breaking an older one, and a version
// bump alone never makes a message unreadable. Decode never panics on
// garbage — every malformed input returns an error, which transports
// count in their dropped-message statistics.
package wire

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"p2pm/internal/telemetry"
)

// ProtoVersion is the wire protocol version this codec emits. Decoders
// accept any version ≥ 1 and skip unknown fields; a reader only refuses
// bytes whose header it cannot parse at all.
const ProtoVersion = 1

// magic identifies a wire message ("PW" = P2PM wire).
const (
	magic0 = 'P'
	magic1 = 'W'
)

// headerLen is magic(2) + version(1) + kind(1).
const headerLen = 4

// Kind identifies a message type.
type Kind byte

// Message kinds. The values are wire format — never renumber.
const (
	KindHello      Kind = 1  // connection handshake: who is speaking
	KindItem       Kind = 2  // one stream item (serialized XML tree)
	KindPartial    Kind = 3  // one monoid partial-aggregation state
	KindProbe      Kind = 4  // gossip liveness probe (+ piggyback)
	KindAck        Kind = 5  // gossip probe ack / partial-receipt ack
	KindGossip     Kind = 6  // standalone membership update batch
	KindCkptPut    Kind = 7  // DHT checkpoint store
	KindCkptGet    Kind = 8  // DHT checkpoint fetch
	KindCkptResp   Kind = 9  // DHT checkpoint fetch response
	KindPublish    Kind = 10 // stream-definition publish (reuse layer)
	KindLookup     Kind = 11 // stream-definition lookup (reuse layer)
	KindLookupResp Kind = 12 // stream-definition lookup response
)

// String names a kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindItem:
		return "item"
	case KindPartial:
		return "partial"
	case KindProbe:
		return "probe"
	case KindAck:
		return "ack"
	case KindGossip:
		return "gossip"
	case KindCkptPut:
		return "ckpt-put"
	case KindCkptGet:
		return "ckpt-get"
	case KindCkptResp:
		return "ckpt-resp"
	case KindPublish:
		return "publish"
	case KindLookup:
		return "lookup"
	case KindLookupResp:
		return "lookup-resp"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Message is one decoded wire message.
type Message interface {
	Kind() Kind
}

// Status is the wire representation of a gossip membership opinion.
// The values are wire format and the canonical cross-peer encoding of
// the detector's internal states.
type Status byte

const (
	StatusAlive   Status = 0
	StatusSuspect Status = 1
	StatusDead    Status = 2
	// StatusLeft marks a graceful departure: no suspicion window, no
	// death event, the member is simply gone (docs/MEMBERSHIP.md).
	StatusLeft Status = 3
)

// String names a status.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	case StatusLeft:
		return "left"
	}
	return fmt.Sprintf("status(%d)", byte(s))
}

// Hello opens every tcp connection: it names the dialing peer so the
// accepting side can attribute all later frames on the connection.
type Hello struct {
	// Peer is the sender's peer name.
	Peer string
	// Proto is the sender's ProtoVersion.
	Proto uint64
	// Cluster names the deployment; mismatched clusters refuse the
	// connection rather than silently cross-feed.
	Cluster string
}

func (*Hello) Kind() Kind { return KindHello }

// Item carries one stream item: a serialized XML tree plus the
// stream identity, sequence number and virtual timestamp that the
// in-process representation (stream.Item) carries as struct fields.
type Item struct {
	// Stream is the producing stream in s@p notation.
	Stream string
	// Seq is the item's sequence number within the stream.
	Seq uint64
	// TimeNS is the production timestamp in nanoseconds.
	TimeNS uint64
	// XML is the serialized tree; empty together with EOS=true is the
	// end-of-stream symbol.
	XML string
	// EOS marks the end-of-stream terminator.
	EOS bool
}

func (*Item) Kind() Kind { return KindItem }

// Partial carries one monoid partial-aggregation state — the wire form
// of the <partial> payloads the aggregation trees exchange. State is
// the monoid's deterministic Encode (internal/monoid); the receiver
// Decodes and Merges it, rejecting malformed states into its dropped
// counter exactly like parsePartial does on simnet.
type Partial struct {
	// Fn names the aggregate function in the monoid registry.
	Fn string
	// Window is the window index the state belongs to.
	Window uint64
	// Key is the group key within the window.
	Key string
	// Source names the peer (or leaf stream) that produced the state.
	Source string
	// Count is the number of raw values absorbed into the state, for
	// completeness accounting.
	Count uint64
	// State is the monoid's Encode output.
	State string
}

func (*Partial) Kind() Kind { return KindPartial }

// GossipUpdate is one piggybacked membership statement.
type GossipUpdate struct {
	Peer   string
	Status Status
	Inc    uint64
}

// Probe is a gossip liveness probe with piggybacked updates.
type Probe struct {
	Seq     uint64
	Updates []GossipUpdate
}

func (*Probe) Kind() Kind { return KindProbe }

// Ack answers a Probe (echoing its Seq) and doubles as the receipt ack
// of a Partial: Stream/AckSeq identify what is being acknowledged when
// the ack is not answering a probe.
type Ack struct {
	Seq     uint64
	Updates []GossipUpdate
	// Stream and Window acknowledge receipt of a Partial from Stream
	// for window Window (exactly-once resend protocol).
	Stream string
	Window uint64
}

func (*Ack) Kind() Kind { return KindAck }

// Gossip is a standalone batch of membership updates (anti-entropy
// push when no probe is due).
type Gossip struct {
	Updates []GossipUpdate
}

func (*Gossip) Kind() Kind { return KindGossip }

// CkptPut stores one operator checkpoint under its key (latest wins,
// kadop.PutCheckpoint semantics).
type CkptPut struct {
	Key string
	// Value is the serialized checkpoint XML.
	Value string
}

func (*CkptPut) Kind() Kind { return KindCkptPut }

// CkptGet fetches the checkpoint stored under Key.
type CkptGet struct {
	ReqID uint64
	Key   string
}

func (*CkptGet) Kind() Kind { return KindCkptGet }

// CkptResp answers a CkptGet.
type CkptResp struct {
	ReqID uint64
	Key   string
	Found bool
	// Values are the stored records, oldest first (latest wins).
	Values []string
}

func (*CkptResp) Kind() Kind { return KindCkptResp }

// Publish indexes a stream descriptor (kadop.StreamDef XML) in the
// stream-definition database — the reuse layer's publication path.
type Publish struct {
	// Def is the descriptor in the kadop <Stream> schema.
	Def string
}

func (*Publish) Kind() Kind { return KindPublish }

// Lookup queries the stream-definition database by index key
// (signature, operand, aggregate identity, replica — the kadop keys).
type Lookup struct {
	ReqID uint64
	Query string
}

func (*Lookup) Kind() Kind { return KindLookup }

// LookupResp answers a Lookup with the raw descriptor values.
type LookupResp struct {
	ReqID  uint64
	Values []string
}

func (*LookupResp) Kind() Kind { return KindLookupResp }

// Stats counts codec outcomes on one transport. All methods are safe
// for concurrent use.
type Stats struct {
	decoded atomic.Uint64
	dropped atomic.Uint64
	// Telemetry mirrors, installed by Mirror; nil when the transport is
	// not instrumented (the zero-cost default).
	mDecoded atomic.Pointer[telemetry.Counter]
	mDropped atomic.Pointer[telemetry.Counter]
}

// Mirror installs registry counters that track decode outcomes
// alongside the internal atomics, so instrumented transports export
// wire_decoded_total / wire_dropped_total without a second code path.
func (s *Stats) Mirror(decoded, dropped *telemetry.Counter) {
	s.mDecoded.Store(decoded)
	s.mDropped.Store(dropped)
}

// Decoded returns how many messages decoded successfully.
func (s *Stats) Decoded() uint64 { return s.decoded.Load() }

// Dropped returns how many inputs were rejected by Decode. A garbage
// or truncated frame lands here instead of crashing the reader.
func (s *Stats) Dropped() uint64 { return s.dropped.Load() }

// Decode decodes counting the outcome into the stats.
func (s *Stats) Decode(b []byte) (Message, error) {
	m, err := Decode(b)
	if err != nil {
		s.dropped.Add(1)
		if c := s.mDropped.Load(); c != nil {
			c.Inc()
		}
		return nil, err
	}
	s.decoded.Add(1)
	if c := s.mDecoded.Load(); c != nil {
		c.Inc()
	}
	return m, nil
}

// ---------------------------------------------------------------------
// Encoding

func appendField(dst []byte, tag uint64, val []byte) []byte {
	dst = binary.AppendUvarint(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	return append(dst, val...)
}

func appendUintField(dst []byte, tag, v uint64) []byte {
	return appendField(dst, tag, binary.AppendUvarint(nil, v))
}

func appendStrField(dst []byte, tag uint64, s string) []byte {
	return appendField(dst, tag, []byte(s))
}

func appendUpdates(dst []byte, tag uint64, ups []GossipUpdate) []byte {
	for _, u := range ups {
		var v []byte
		v = appendStrField(v, 1, u.Peer)
		v = appendUintField(v, 2, uint64(u.Status))
		v = appendUintField(v, 3, u.Inc)
		dst = appendField(dst, tag, v)
	}
	return dst
}

// Encode renders a message. The encoding is deterministic: equal
// messages encode to equal bytes (fields in fixed tag order, lists in
// caller order, no maps).
func Encode(m Message) []byte {
	b := []byte{magic0, magic1, ProtoVersion, byte(m.Kind())}
	switch t := m.(type) {
	case *Hello:
		b = appendStrField(b, 1, t.Peer)
		b = appendUintField(b, 2, t.Proto)
		b = appendStrField(b, 3, t.Cluster)
	case *Item:
		b = appendStrField(b, 1, t.Stream)
		b = appendUintField(b, 2, t.Seq)
		b = appendUintField(b, 3, t.TimeNS)
		b = appendStrField(b, 4, t.XML)
		if t.EOS {
			b = appendUintField(b, 5, 1)
		}
	case *Partial:
		b = appendStrField(b, 1, t.Fn)
		b = appendUintField(b, 2, t.Window)
		b = appendStrField(b, 3, t.Key)
		b = appendStrField(b, 4, t.Source)
		b = appendUintField(b, 5, t.Count)
		b = appendStrField(b, 6, t.State)
	case *Probe:
		b = appendUintField(b, 1, t.Seq)
		b = appendUpdates(b, 2, t.Updates)
	case *Ack:
		b = appendUintField(b, 1, t.Seq)
		b = appendUpdates(b, 2, t.Updates)
		b = appendStrField(b, 3, t.Stream)
		b = appendUintField(b, 4, t.Window)
	case *Gossip:
		b = appendUpdates(b, 1, t.Updates)
	case *CkptPut:
		b = appendStrField(b, 1, t.Key)
		b = appendStrField(b, 2, t.Value)
	case *CkptGet:
		b = appendUintField(b, 1, t.ReqID)
		b = appendStrField(b, 2, t.Key)
	case *CkptResp:
		b = appendUintField(b, 1, t.ReqID)
		b = appendStrField(b, 2, t.Key)
		if t.Found {
			b = appendUintField(b, 3, 1)
		}
		for _, v := range t.Values {
			b = appendStrField(b, 4, v)
		}
	case *Publish:
		b = appendStrField(b, 1, t.Def)
	case *Lookup:
		b = appendUintField(b, 1, t.ReqID)
		b = appendStrField(b, 2, t.Query)
	case *LookupResp:
		b = appendUintField(b, 1, t.ReqID)
		for _, v := range t.Values {
			b = appendStrField(b, 2, v)
		}
	default:
		panic(fmt.Sprintf("wire: Encode of unknown message type %T", m))
	}
	return b
}

// Size returns the encoded length of a message — what a transport
// charges against its byte counters.
func Size(m Message) int { return len(Encode(m)) }

// ---------------------------------------------------------------------
// Decoding

// fieldIter walks the tagged fields of a payload.
type fieldIter struct {
	b []byte
}

// next returns the next (tag, value) pair. done=true ends the walk;
// err is a malformed field (truncated varint or overlong length).
func (it *fieldIter) next() (tag uint64, val []byte, done bool, err error) {
	if len(it.b) == 0 {
		return 0, nil, true, nil
	}
	tag, n := binary.Uvarint(it.b)
	if n <= 0 {
		return 0, nil, false, fmt.Errorf("wire: bad field tag")
	}
	it.b = it.b[n:]
	ln, n := binary.Uvarint(it.b)
	if n <= 0 {
		return 0, nil, false, fmt.Errorf("wire: bad field length")
	}
	it.b = it.b[n:]
	if ln > uint64(len(it.b)) {
		return 0, nil, false, fmt.Errorf("wire: field length %d exceeds remaining %d bytes", ln, len(it.b))
	}
	val = it.b[:ln]
	it.b = it.b[ln:]
	return tag, val, false, nil
}

func decodeUint(val []byte) (uint64, error) {
	v, n := binary.Uvarint(val)
	if n <= 0 || n != len(val) {
		return 0, fmt.Errorf("wire: bad uvarint value")
	}
	return v, nil
}

func decodeUpdate(val []byte) (GossipUpdate, error) {
	var u GossipUpdate
	it := fieldIter{b: val}
	for {
		tag, v, done, err := it.next()
		if err != nil {
			return u, err
		}
		if done {
			return u, nil
		}
		switch tag {
		case 1:
			u.Peer = string(v)
		case 2:
			s, err := decodeUint(v)
			if err != nil {
				return u, err
			}
			u.Status = Status(s)
		case 3:
			inc, err := decodeUint(v)
			if err != nil {
				return u, err
			}
			u.Inc = inc
		}
	}
}

// Decode parses an encoded message. It never panics: malformed input —
// wrong magic, truncated header, corrupt field framing — returns an
// error. Unknown field tags are skipped (a newer peer's extra fields
// decode cleanly on an older one), and the version byte is informative
// only: any version ≥ 1 is read with the same field rules.
func Decode(b []byte) (Message, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("wire: message truncated at %d bytes", len(b))
	}
	if b[0] != magic0 || b[1] != magic1 {
		return nil, fmt.Errorf("wire: bad magic %#02x%02x", b[0], b[1])
	}
	if b[2] < 1 {
		return nil, fmt.Errorf("wire: bad protocol version %d", b[2])
	}
	kind := Kind(b[3])
	it := fieldIter{b: b[headerLen:]}

	var msg Message
	switch kind {
	case KindHello:
		msg = &Hello{}
	case KindItem:
		msg = &Item{}
	case KindPartial:
		msg = &Partial{}
	case KindProbe:
		msg = &Probe{}
	case KindAck:
		msg = &Ack{}
	case KindGossip:
		msg = &Gossip{}
	case KindCkptPut:
		msg = &CkptPut{}
	case KindCkptGet:
		msg = &CkptGet{}
	case KindCkptResp:
		msg = &CkptResp{}
	case KindPublish:
		msg = &Publish{}
	case KindLookup:
		msg = &Lookup{}
	case KindLookupResp:
		msg = &LookupResp{}
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", byte(kind))
	}

	for {
		tag, val, done, err := it.next()
		if err != nil {
			return nil, err
		}
		if done {
			return msg, nil
		}
		if err := setField(msg, tag, val); err != nil {
			return nil, err
		}
	}
}

// setField assigns one decoded field; unknown tags are ignored.
func setField(msg Message, tag uint64, val []byte) error {
	asUint := func(dst *uint64) error {
		v, err := decodeUint(val)
		if err != nil {
			return err
		}
		*dst = v
		return nil
	}
	asBool := func(dst *bool) error {
		v, err := decodeUint(val)
		if err != nil {
			return err
		}
		*dst = v != 0
		return nil
	}
	asUpdate := func(dst *[]GossipUpdate) error {
		u, err := decodeUpdate(val)
		if err != nil {
			return err
		}
		*dst = append(*dst, u)
		return nil
	}
	switch t := msg.(type) {
	case *Hello:
		switch tag {
		case 1:
			t.Peer = string(val)
		case 2:
			return asUint(&t.Proto)
		case 3:
			t.Cluster = string(val)
		}
	case *Item:
		switch tag {
		case 1:
			t.Stream = string(val)
		case 2:
			return asUint(&t.Seq)
		case 3:
			return asUint(&t.TimeNS)
		case 4:
			t.XML = string(val)
		case 5:
			return asBool(&t.EOS)
		}
	case *Partial:
		switch tag {
		case 1:
			t.Fn = string(val)
		case 2:
			return asUint(&t.Window)
		case 3:
			t.Key = string(val)
		case 4:
			t.Source = string(val)
		case 5:
			return asUint(&t.Count)
		case 6:
			t.State = string(val)
		}
	case *Probe:
		switch tag {
		case 1:
			return asUint(&t.Seq)
		case 2:
			return asUpdate(&t.Updates)
		}
	case *Ack:
		switch tag {
		case 1:
			return asUint(&t.Seq)
		case 2:
			return asUpdate(&t.Updates)
		case 3:
			t.Stream = string(val)
		case 4:
			return asUint(&t.Window)
		}
	case *Gossip:
		if tag == 1 {
			return asUpdate(&t.Updates)
		}
	case *CkptPut:
		switch tag {
		case 1:
			t.Key = string(val)
		case 2:
			t.Value = string(val)
		}
	case *CkptGet:
		switch tag {
		case 1:
			return asUint(&t.ReqID)
		case 2:
			t.Key = string(val)
		}
	case *CkptResp:
		switch tag {
		case 1:
			return asUint(&t.ReqID)
		case 2:
			t.Key = string(val)
		case 3:
			return asBool(&t.Found)
		case 4:
			t.Values = append(t.Values, string(val))
		}
	case *Publish:
		if tag == 1 {
			t.Def = string(val)
		}
	case *Lookup:
		switch tag {
		case 1:
			return asUint(&t.ReqID)
		case 2:
			t.Query = string(val)
		}
	case *LookupResp:
		switch tag {
		case 1:
			return asUint(&t.ReqID)
		case 2:
			t.Values = append(t.Values, string(val))
		}
	}
	return nil
}
