package kadop

import (
	"testing"

	"p2pm/internal/wire"
)

func TestServeWireCheckpointPutGet(t *testing.T) {
	d := db(t, 5)
	key := CheckpointKey("task-1", "s2@merge")
	if resp, err := ServeWire(d, "peer-1", &wire.CkptPut{Key: key, Value: "<op v=\"1\"/>"}); err != nil || resp != nil {
		t.Fatalf("put: resp=%v err=%v", resp, err)
	}
	// Latest wins, like PutCheckpoint.
	if _, err := ServeWire(d, "peer-1", &wire.CkptPut{Key: key, Value: "<op v=\"2\"/>"}); err != nil {
		t.Fatal(err)
	}
	resp, err := ServeWire(d, "peer-2", &wire.CkptGet{ReqID: 9, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := resp.(*wire.CkptResp)
	if !ok || cr.ReqID != 9 || !cr.Found || len(cr.Values) == 0 {
		t.Fatalf("get response %#v", resp)
	}
	if got := cr.Values[len(cr.Values)-1]; got != "<op v=\"2\"/>" {
		t.Errorf("latest checkpoint = %q", got)
	}
	// And the DB-level read path agrees with the wire-level one.
	if val, ok, err := d.Checkpoint("peer-3", "task-1", "s2@merge"); err != nil || !ok || val != "<op v=\"2\"/>" {
		t.Errorf("Checkpoint() = %q %v %v", val, ok, err)
	}
}

func TestServeWireCheckpointMiss(t *testing.T) {
	d := db(t, 3)
	resp, err := ServeWire(d, "peer-0", &wire.CkptGet{ReqID: 1, Key: CheckpointKey("t", "none")})
	if err != nil {
		t.Fatal(err)
	}
	if cr := resp.(*wire.CkptResp); cr.Found || len(cr.Values) != 0 {
		t.Errorf("miss response %#v", cr)
	}
	if _, err := ServeWire(d, "peer-0", &wire.CkptPut{Value: "x"}); err == nil {
		t.Error("keyless put accepted")
	}
}

func TestServeWirePublishLookup(t *testing.T) {
	d := db(t, 5)
	def := alerterDef("s1@p1", "inCOM")
	if resp, err := ServeWire(d, "peer-1", &wire.Publish{Def: def.ToXML().String()}); err != nil || resp != nil {
		t.Fatalf("publish: resp=%v err=%v", resp, err)
	}
	if d.Defs() != 1 {
		t.Fatalf("defs = %d, want 1", d.Defs())
	}
	// Wire-level lookup under the same index key the client builders
	// produce.
	resp, err := ServeWire(d, "peer-2", &wire.Lookup{ReqID: 4, Query: alerterKey("p1", "inCOM")})
	if err != nil {
		t.Fatal(err)
	}
	lr, ok := resp.(*wire.LookupResp)
	if !ok || lr.ReqID != 4 || len(lr.Values) != 1 {
		t.Fatalf("lookup response %#v", resp)
	}
	// The in-process query path sees the published descriptor too.
	if defs, _, err := d.FindAlerters("peer-3", "p1", "inCOM"); err != nil || len(defs) != 1 {
		t.Errorf("FindAlerters after wire publish: %v %v", defs, err)
	}
}

func TestServeWireRejectsBadInput(t *testing.T) {
	d := db(t, 3)
	if _, err := ServeWire(d, "p", &wire.Publish{Def: "<not-closed"}); err == nil {
		t.Error("corrupt publish XML accepted")
	}
	if _, err := ServeWire(d, "p", &wire.Publish{Def: "<Stream/>"}); err == nil {
		t.Error("publish without stream identity accepted")
	}
	if _, err := ServeWire(d, "p", &wire.Probe{Seq: 1}); err == nil {
		t.Error("non-directory message accepted")
	}
}
