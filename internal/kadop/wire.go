package kadop

import (
	"fmt"

	"p2pm/internal/wire"
	"p2pm/internal/xmltree"
)

// ServeWire is the DHT node's request handler for transport-carried
// directory traffic: it applies one wire message against the stream
// definition database and returns the response frame to send back, or
// nil for one-way messages (puts and publishes are fire-and-forget,
// exactly like their in-process counterparts). Requests the database
// rejects produce a negative response where the protocol has one
// (CkptResp/LookupResp with Found=false / no values) and an error the
// caller may log; the transport itself never sees a panic.
//
//   - CkptPut     -> Ring.Set under the raw key (latest-wins), no reply
//   - CkptGet     -> CkptResp with every surviving replica value
//   - Publish     -> parse the StreamDef XML, index it, no reply
//   - Lookup      -> LookupResp with the raw values under the index key
//
// Keys cross the wire verbatim — CheckpointKey and the kadop index-key
// builders produce them on the client side, so the server stays a dumb
// key/value servant, as in Kademlia.
func ServeWire(db *DB, from string, m wire.Message) (wire.Message, error) {
	switch t := m.(type) {
	case *wire.CkptPut:
		if t.Key == "" {
			return nil, fmt.Errorf("kadop: checkpoint put without a key")
		}
		return nil, db.ring.Set(t.Key, t.Value)
	case *wire.CkptGet:
		vals, _, err := db.ring.Get(from, t.Key)
		resp := &wire.CkptResp{ReqID: t.ReqID, Key: t.Key}
		if err == nil && len(vals) > 0 {
			resp.Found = true
			resp.Values = vals
		}
		return resp, err
	case *wire.Publish:
		n, err := xmltree.Parse(t.Def)
		if err != nil {
			return nil, fmt.Errorf("kadop: publish carries corrupt XML: %w", err)
		}
		def, err := ParseDef(n)
		if err != nil {
			return nil, err
		}
		return nil, db.Publish(def)
	case *wire.Lookup:
		vals, _, err := db.ring.Get(from, t.Query)
		return &wire.LookupResp{ReqID: t.ReqID, Values: vals}, err
	default:
		return nil, fmt.Errorf("kadop: unexpected wire message %s", m.Kind())
	}
}
