package kadop

import (
	"fmt"
	"testing"

	"p2pm/internal/dht"
	"p2pm/internal/stream"
)

func db(t *testing.T, peers int) *DB {
	t.Helper()
	ring := dht.New()
	for i := 0; i < peers; i++ {
		if err := ring.Join(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return New(ring)
}

func ref(s string) stream.Ref {
	r, err := stream.ParseRef(s)
	if err != nil {
		panic(err)
	}
	return r
}

func alerterDef(r, fn string) *StreamDef {
	return &StreamDef{Ref: ref(r), Operator: fn, IsChannel: true,
		Signature: fn + "(" + ref(r).PeerID + ")", Stats: map[string]string{"avgVolume": "120"}}
}

func TestDefXMLRoundTrip(t *testing.T) {
	d := &StreamDef{
		Ref: ref("s3@p1"), IsChannel: true, Operator: "Filter",
		Signature: "Select{...}(inCOM(p1))",
		Operands:  []stream.Ref{ref("s1@p1")},
		Stats:     map[string]string{"avgVolume": "42"},
	}
	back, err := ParseDef(d.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if back.Ref != d.Ref || back.Operator != "Filter" || !back.IsChannel ||
		back.Signature != d.Signature || len(back.Operands) != 1 || back.Operands[0] != d.Operands[0] ||
		back.Stats["avgVolume"] != "42" {
		t.Errorf("round trip: %+v", back)
	}
}

func TestParseDefErrors(t *testing.T) {
	if _, err := ParseDef(nil); err == nil {
		t.Error("nil accepted")
	}
	d := alerterDef("s1@p1", "inCOM").ToXML()
	d.RemoveAttr("PeerId")
	if _, err := ParseDef(d); err == nil {
		t.Error("missing PeerId accepted")
	}
}

func TestIsSource(t *testing.T) {
	if !alerterDef("s1@p1", "inCOM").IsSource() {
		t.Error("alerter def should be a source")
	}
	d := &StreamDef{Ref: ref("s2@p1"), Operator: "Filter", Operands: []stream.Ref{ref("s1@p1")}}
	if d.IsSource() {
		t.Error("filter def is not a source")
	}
}

func TestFindAlerters(t *testing.T) {
	d := db(t, 10)
	if err := d.Publish(alerterDef("s1@p1", "inCOM")); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(alerterDef("s2@p2", "inCOM")); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.FindAlerters("peer-0", "p1", "inCOM")
	if err != nil || len(got) != 1 || got[0].Ref.String() != "s1@p1" {
		t.Fatalf("got %v err %v", got, err)
	}
	if got, _, _ := d.FindAlerters("peer-0", "p1", "outCOM"); len(got) != 0 {
		t.Errorf("wrong function matched: %v", got)
	}
}

func TestFindByOperand(t *testing.T) {
	d := db(t, 10)
	filter := &StreamDef{Ref: ref("s3@p1"), Operator: "Filter",
		Signature: "Select{F}(inCOM(p1))", Operands: []stream.Ref{ref("s1@p1")}}
	if err := d.Publish(filter); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.FindByOperand("peer-1", "Filter", ref("s1@p1"))
	if err != nil || len(got) != 1 || got[0].Ref.String() != "s3@p1" {
		t.Fatalf("got %v err %v", got, err)
	}
	if got, _, _ := d.FindByOperand("peer-1", "Join", ref("s1@p1")); len(got) != 0 {
		t.Errorf("operator constraint ignored: %v", got)
	}
}

func TestFindJoinByBothOperands(t *testing.T) {
	d := db(t, 10)
	join := &StreamDef{Ref: ref("s9@p3"), Operator: "Join",
		Signature: "Join{k}(A,B)",
		Operands:  []stream.Ref{ref("s3@p1"), ref("s2@p2")}}
	if err := d.Publish(join); err != nil {
		t.Fatal(err)
	}
	// The join is discoverable through either operand.
	a, _, _ := d.FindByOperand("", "Join", ref("s3@p1"))
	b, _, _ := d.FindByOperand("", "Join", ref("s2@p2"))
	if len(a) != 1 || len(b) != 1 || a[0].Ref != b[0].Ref {
		t.Errorf("a=%v b=%v", a, b)
	}
}

func TestFindBySignature(t *testing.T) {
	d := db(t, 10)
	def := &StreamDef{Ref: ref("s3@p1"), Operator: "Filter",
		Signature: "Select{@x = \"1\"}(inCOM(p1))", Operands: []stream.Ref{ref("s1@p1")}}
	if err := d.Publish(def); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.FindBySignature("peer-2", def.Signature)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
	if got, _, _ := d.FindBySignature("peer-2", "other"); len(got) != 0 {
		t.Error("wrong signature matched")
	}
}

func TestPublishValidation(t *testing.T) {
	d := db(t, 3)
	if err := d.Publish(&StreamDef{}); err == nil {
		t.Error("empty def accepted")
	}
	if err := d.Publish(&StreamDef{Ref: ref("s@p")}); err == nil {
		t.Error("def without operator accepted")
	}
}

func TestDuplicatePublishDedupedOnRead(t *testing.T) {
	d := db(t, 5)
	def := alerterDef("s1@p1", "inCOM")
	d.Publish(def)
	d.Publish(def)
	got, _, _ := d.FindAlerters("", "p1", "inCOM")
	if len(got) != 1 {
		t.Errorf("got %d defs", len(got))
	}
}

func TestReplicas(t *testing.T) {
	d := db(t, 10)
	orig := ref("alertQoS@meteo.com")
	if err := d.PublishReplica(orig, ref("r1@b.com")); err != nil {
		t.Fatal(err)
	}
	if err := d.PublishReplica(orig, ref("r2@c.com")); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Replicas("peer-0", orig)
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v err %v", got, err)
	}
	if got[0].String() != "r1@b.com" || got[1].String() != "r2@c.com" {
		t.Errorf("replicas = %v", got)
	}
}

// TestSection5XPathQueries runs the three discovery queries of Section 5
// verbatim (modulo the $-variable bindings) against a populated database
// through the XPath diagnostic interface.
func TestSection5XPathQueries(t *testing.T) {
	d := db(t, 8)
	defs := []*StreamDef{
		{Ref: ref("s1@p1"), Operator: "inCom", Signature: "inCom(p1)"},
		{Ref: ref("s3@p1"), Operator: "Filter", Signature: "F(s1)", Operands: []stream.Ref{ref("s1@p1")}},
		{Ref: ref("s2@p2"), Operator: "outCom", Signature: "outCom(p2)"},
		{Ref: ref("s9@p3"), Operator: "Join", Signature: "J(s3,s2)",
			Operands: []stream.Ref{ref("s3@p1"), ref("s2@p2")}},
	}
	for _, def := range defs {
		if err := d.PublishIndexed(def); err != nil {
			t.Fatal(err)
		}
	}

	q1 := `/Stream[@PeerId = $p1][Operator/inCom]`
	got, err := d.QueryXPath(q1, map[string]string{"p1": "p1"})
	if err != nil || len(got) != 1 || got[0].Ref.String() != "s1@p1" {
		t.Fatalf("q1: %v err %v", got, err)
	}

	q2 := `/Stream[Operator/Filter][Operands/Operand[@OPeerId=$p1][@OStreamId=$s1]]`
	got, err = d.QueryXPath(q2, map[string]string{"p1": "p1", "s1": "s1"})
	if err != nil || len(got) != 1 || got[0].Ref.String() != "s3@p1" {
		t.Fatalf("q2: %v err %v", got, err)
	}

	q3 := `/Stream[Operator/Join][Operands/Operand[@OPeerId=$p1][@OStreamId=$s3]][Operands/Operand[@OPeerId=$p2][@OStreamId=$s2]]`
	got, err = d.QueryXPath(q3, map[string]string{"p1": "p1", "s3": "s3", "p2": "p2", "s2": "s2"})
	if err != nil || len(got) != 1 || got[0].Ref.String() != "s9@p3" {
		t.Fatalf("q3: %v err %v", got, err)
	}
}

func TestDocumentAssemblesIndexedDefs(t *testing.T) {
	d := db(t, 6)
	d.PublishIndexed(alerterDef("s1@p1", "inCOM"))
	d.PublishIndexed(alerterDef("s2@p2", "outCOM"))
	d.Publish(alerterDef("s3@p3", "inCOM")) // not in the enumeration index
	doc := d.Document()
	if got := len(doc.ChildrenByLabel("Stream")); got != 2 {
		t.Errorf("document streams = %d, want 2 (only indexed defs)", got)
	}
	if d.Defs() != 3 {
		t.Errorf("Defs = %d", d.Defs())
	}
}

func TestQueryXPathNonStreamRootedQuery(t *testing.T) {
	d := db(t, 4)
	d.PublishIndexed(alerterDef("s1@p1", "inCOM"))
	// A query already rooted elsewhere passes through unchanged.
	got, err := d.QueryXPath(`/db/Stream[@PeerId = "p1"]`, nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := d.QueryXPath(`/Stream[`, nil); err == nil {
		t.Error("bad query accepted")
	}
}

func TestUpdateAndReadStats(t *testing.T) {
	d := db(t, 6)
	r := ref("s1@p1")
	if err := d.UpdateStats(r, map[string]string{"items": "10", "volume": "900"}); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateStats(r, map[string]string{"items": "25", "volume": "2100"}); err != nil {
		t.Fatal(err)
	}
	stats, _, err := d.StatsFor("peer-0", r)
	if err != nil {
		t.Fatal(err)
	}
	if stats["items"] != "25" || stats["volume"] != "2100" {
		t.Errorf("latest stats not returned: %v", stats)
	}
	// Unknown stream: empty, no error.
	none, _, err := d.StatsFor("peer-0", ref("ghost@p9"))
	if err != nil || none != nil {
		t.Errorf("none=%v err=%v", none, err)
	}
}

func TestReplicasEmpty(t *testing.T) {
	d := db(t, 4)
	got, _, err := d.Replicas("", ref("s1@p1"))
	if err != nil || len(got) != 0 {
		t.Errorf("got %v err %v", got, err)
	}
}

func TestFindByRefMissing(t *testing.T) {
	d := db(t, 4)
	def, _, err := d.FindByRef("", ref("nope@p"))
	if err != nil || def != nil {
		t.Errorf("def=%v err=%v", def, err)
	}
}

func TestCondsRoundTripInDescriptor(t *testing.T) {
	d := &StreamDef{
		Ref: ref("s3@p1"), Operator: "Filter",
		Operands: []stream.Ref{ref("s1@p1")},
		Conds:    []string{`$_.callMethod = "Q"`, `$_.fault != ""`},
	}
	back, err := ParseDef(d.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Conds) != 2 || back.Conds[0] != d.Conds[0] || back.Conds[1] != d.Conds[1] {
		t.Errorf("conds = %v", back.Conds)
	}
}

func TestLookupReportsHops(t *testing.T) {
	d := db(t, 64)
	d.Publish(alerterDef("s1@p1", "inCOM"))
	_, hops, err := d.FindAlerters("peer-63", "p1", "inCOM")
	if err != nil {
		t.Fatal(err)
	}
	if hops < 0 || hops > 64 {
		t.Errorf("hops = %d", hops)
	}
}

func TestCheckpointLatestWinsAndSurvivesCrash(t *testing.T) {
	ring := dht.New()
	ring.SetReplication(2)
	for i := 0; i < 8; i++ {
		if err := ring.Join(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	d := New(ring)
	for i := 0; i < 3; i++ {
		if err := d.PutCheckpoint("task-1", "s1@p1", fmt.Sprintf("<ckpt v=\"%d\"/>", i)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := d.Checkpoint("peer-3", "task-1", "s1@p1")
	if err != nil || !ok || got != `<ckpt v="2"/>` {
		t.Fatalf("checkpoint = (%q, %v, %v), want latest record", got, ok, err)
	}
	// The checkpoint must outlive the crash of a node holding it.
	holders := ring.Holders(CheckpointKey("task-1", "s1@p1"))
	if len(holders) != 2 {
		t.Fatalf("checkpoint holders = %v, want 2", holders)
	}
	if err := ring.Fail(holders[0]); err != nil {
		t.Fatal(err)
	}
	got, ok, err = d.Checkpoint("peer-3", "task-1", "s1@p1")
	if err != nil || !ok || got != `<ckpt v="2"/>` {
		t.Fatalf("checkpoint after holder crash = (%q, %v, %v)", got, ok, err)
	}
	if _, ok, _ := d.Checkpoint("peer-3", "task-9", "s1@p1"); ok {
		t.Error("missing checkpoint reported ok")
	}
}

// TestCheckpointSurvivesElasticHandoff: a checkpoint record written
// before a membership change stays readable (latest wins) after virtual-
// node rebalancing hands its key to new owners, and the service-load
// counters attribute the traffic to exactly one primary per operation.
func TestCheckpointSurvivesElasticHandoff(t *testing.T) {
	ring := dht.New()
	ring.SetReplication(2)
	ring.SetVirtual(32)
	for i := 0; i < 6; i++ {
		if err := ring.Join(fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	db := New(ring)
	if err := db.PutCheckpoint("task-1", "relay", "<Ckpt outSeq=\"1\"/>"); err != nil {
		t.Fatal(err)
	}
	if err := ring.Join("p6"); err != nil {
		t.Fatal(err)
	}
	if err := db.PutCheckpoint("task-1", "relay", "<Ckpt outSeq=\"2\"/>"); err != nil {
		t.Fatal(err)
	}
	if err := ring.Fail("p0"); err != nil {
		t.Fatal(err)
	}
	got, ok, err := db.Checkpoint("p1", "task-1", "relay")
	if err != nil || !ok {
		t.Fatalf("checkpoint lost across join+fail: ok=%v err=%v", ok, err)
	}
	if got != "<Ckpt outSeq=\"2\"/>" {
		t.Fatalf("checkpoint = %q, want the latest write", got)
	}
	var puts, gets uint64
	for _, l := range db.CheckpointLoad() {
		puts += l.Puts
		gets += l.Gets
	}
	if puts != 2 || gets != 1 {
		t.Errorf("ckpt load: puts=%d gets=%d, want 2/1", puts, gets)
	}
	db.ResetLoad()
	for name, l := range db.CheckpointLoad() {
		if l.Puts+l.Gets != 0 {
			t.Errorf("%s still loaded after reset: %+v", name, l)
		}
	}
}
