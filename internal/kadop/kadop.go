// Package kadop implements the Stream Definition Database of Section 5: a
// distributed index of stream descriptors built over a DHT (standing in
// for the KadoP system [3]). Every deployed stream is described in XML —
//
//	<Stream PeerId="..." StreamId="..." isAChannel="...">
//	  <Operator>...</Operator><Operands>...</Operands><Stats>...</Stats>
//	</Stream>
//
// — published under index keys that answer exactly the discovery queries
// the Reuse algorithm issues: alerters at a peer, operators over a given
// operand stream, exact sub-plan signatures, and channel replicas.
package kadop

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"p2pm/internal/dht"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// StreamDef describes one published stream.
type StreamDef struct {
	Ref       stream.Ref
	IsChannel bool
	// Operator is the producing operator's name: an alerter function
	// (inCOM, outCOM, ...) when Operands is empty, else Filter, Join,
	// Union, Restructure, Distinct, Group.
	Operator string
	// Signature is the placement-independent canonical description of
	// the computation (algebra.Node.Signature); equal signatures mean
	// equivalent streams.
	Signature string
	// Operands reference the input streams — always the *original*
	// streams, never replicas (Section 5: "When we publish the
	// specification of a stream, we always do it with respect to the
	// original streams").
	Operands []stream.Ref
	// Conds, for Filter streams, lists the σ's conditions in canonical
	// form (variable-name normalized, LETs inlined). They enable
	// subsumption-based reuse: a stream filtering a *subset* of a new
	// task's conditions "holds sufficient data" for it (the paper's
	// future-work item), needing only a residual filter on top.
	Conds []string
	// Group, for partial-aggregation streams (PartialAgg leaves and
	// non-final MergeAgg interiors), names the aggregate's identity
	// (fn/value/key/window). Such streams are additionally indexed under
	// the aggregate so containment queries find every partial stream of
	// the same logical aggregate in one lookup.
	Group string
	// Sources lists the canonical signatures of the source streams whose
	// data the partial stream aggregates — the containment side of
	// aggregate sharing: a stream whose source set is contained in a new
	// subscription's union can be grafted in as a pre-merged input.
	Sources []string
	// Stats carries statistical attributes (average item volume etc.).
	Stats map[string]string
}

// ToXML renders the descriptor in the paper's schema.
func (d *StreamDef) ToXML() *xmltree.Node {
	n := xmltree.Elem("Stream")
	n.SetAttr("PeerId", d.Ref.PeerID)
	n.SetAttr("StreamId", d.Ref.StreamID)
	n.SetAttr("isAChannel", strconv.FormatBool(d.IsChannel))
	if d.Signature != "" {
		n.SetAttr("signature", d.Signature)
	}
	if d.Group != "" {
		n.SetAttr("group", d.Group)
	}
	opInner := xmltree.Elem(d.Operator)
	for _, c := range d.Conds {
		opInner.Append(xmltree.ElemText("Cond", c))
	}
	n.Append(xmltree.Elem("Operator", opInner))
	if len(d.Sources) > 0 {
		srcs := xmltree.Elem("Sources")
		for _, s := range d.Sources {
			srcs.Append(xmltree.ElemText("Src", s))
		}
		n.Append(srcs)
	}
	operands := xmltree.Elem("Operands")
	for _, o := range d.Operands {
		oe := xmltree.Elem("Operand")
		oe.SetAttr("OPeerId", o.PeerID)
		oe.SetAttr("OStreamId", o.StreamID)
		operands.Append(oe)
	}
	n.Append(operands)
	stats := xmltree.Elem("Stats")
	keys := make([]string, 0, len(d.Stats))
	for k := range d.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		stats.SetAttr(k, d.Stats[k])
	}
	n.Append(stats)
	return n
}

// ParseDef reads a descriptor back from XML.
func ParseDef(n *xmltree.Node) (*StreamDef, error) {
	if n == nil || n.Label != "Stream" {
		return nil, fmt.Errorf("kadop: not a Stream descriptor")
	}
	d := &StreamDef{
		Ref: stream.Ref{
			PeerID:   n.AttrOr("PeerId", ""),
			StreamID: n.AttrOr("StreamId", ""),
		},
		IsChannel: n.AttrOr("isAChannel", "") == "true",
		Signature: n.AttrOr("signature", ""),
		Group:     n.AttrOr("group", ""),
		Stats:     make(map[string]string),
	}
	if d.Ref.PeerID == "" || d.Ref.StreamID == "" {
		return nil, fmt.Errorf("kadop: descriptor missing stream identity")
	}
	op := n.Child("Operator")
	if op == nil || len(op.Children) == 0 {
		return nil, fmt.Errorf("kadop: descriptor missing operator")
	}
	d.Operator = op.Children[0].Label
	for _, c := range op.Children[0].ChildrenByLabel("Cond") {
		d.Conds = append(d.Conds, c.InnerText())
	}
	if ops := n.Child("Operands"); ops != nil {
		for _, o := range ops.ChildrenByLabel("Operand") {
			d.Operands = append(d.Operands, stream.Ref{
				PeerID:   o.AttrOr("OPeerId", ""),
				StreamID: o.AttrOr("OStreamId", ""),
			})
		}
	}
	if srcs := n.Child("Sources"); srcs != nil {
		for _, s := range srcs.ChildrenByLabel("Src") {
			d.Sources = append(d.Sources, s.InnerText())
		}
	}
	if st := n.Child("Stats"); st != nil {
		for _, a := range st.Attrs {
			d.Stats[a.Name] = a.Value
		}
	}
	return d, nil
}

// IsSource reports whether the stream is produced by an alerter ("When
// the set Operands is empty ... it is produced by an alerter").
func (d *StreamDef) IsSource() bool { return len(d.Operands) == 0 }

// DB is the stream definition database.
type DB struct {
	ring *dht.Ring
	defs uint64
}

// New builds a database over a DHT ring.
func New(ring *dht.Ring) *DB { return &DB{ring: ring} }

// Index keys. Each descriptor is stored under several keys so every
// discovery query of Section 5 is a single DHT lookup.
func alerterKey(peer, fn string) string         { return "alerter|" + peer + "|" + fn }
func operandKey(op string, o stream.Ref) string { return "op|" + op + "|" + o.String() }
func sigKey(sig string) string                  { return "sig|" + sig }
func aggKey(group string) string                { return "agg|" + group }
func replicaKey(orig stream.Ref) string         { return "replica|" + orig.String() }
func refKey(ref stream.Ref) string              { return "def|" + ref.String() }

// Publish indexes a stream descriptor.
func (db *DB) Publish(def *StreamDef) error {
	if def.Ref.PeerID == "" || def.Ref.StreamID == "" {
		return fmt.Errorf("kadop: descriptor needs a stream identity")
	}
	if def.Operator == "" {
		return fmt.Errorf("kadop: descriptor needs an operator")
	}
	xml := def.ToXML().String()
	keys := []string{refKey(def.Ref)}
	if def.IsSource() {
		keys = append(keys, alerterKey(def.Ref.PeerID, def.Operator))
	}
	for _, o := range def.Operands {
		keys = append(keys, operandKey(def.Operator, o))
	}
	if def.Signature != "" {
		keys = append(keys, sigKey(def.Signature))
	}
	if def.Group != "" && len(def.Sources) > 0 {
		keys = append(keys, aggKey(def.Group))
	}
	for _, k := range keys {
		if err := db.ring.Put(k, xml); err != nil {
			return err
		}
	}
	db.defs++
	return nil
}

// Defs returns the number of descriptors published.
func (db *DB) Defs() uint64 { return db.defs }

func (db *DB) lookup(from, key string) ([]*StreamDef, int, error) {
	vals, hops, err := db.ring.Get(from, key)
	if err != nil {
		return nil, hops, err
	}
	seen := make(map[string]bool)
	var out []*StreamDef
	for _, v := range vals {
		n, err := xmltree.Parse(v)
		if err != nil {
			return nil, hops, fmt.Errorf("kadop: corrupt descriptor: %w", err)
		}
		d, err := ParseDef(n)
		if err != nil {
			return nil, hops, err
		}
		if !seen[d.Ref.String()] {
			seen[d.Ref.String()] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref.String() < out[j].Ref.String() })
	return out, hops, nil
}

// FindAlerters answers "is there a communication alerter for p1?" —
// the first discovery query of Section 5.
func (db *DB) FindAlerters(from, peer, fn string) ([]*StreamDef, int, error) {
	return db.lookup(from, alerterKey(peer, fn))
}

// FindByOperand answers "is there a <op> over stream s1@p1?" — e.g. all
// filters of a given source stream.
func (db *DB) FindByOperand(from, op string, operand stream.Ref) ([]*StreamDef, int, error) {
	return db.lookup(from, operandKey(op, operand))
}

// FindBySignature answers exact sub-plan matches.
func (db *DB) FindBySignature(from, sig string) ([]*StreamDef, int, error) {
	return db.lookup(from, sigKey(sig))
}

// FindAggParts answers "which partial-aggregation streams exist for this
// aggregate identity?" — the containment query of aggregate-tree
// sharing. Every returned descriptor carries the Sources it pre-merges.
func (db *DB) FindAggParts(from, group string) ([]*StreamDef, int, error) {
	return db.lookup(from, aggKey(group))
}

// FindByRef resolves a stream's own descriptor from its identity.
func (db *DB) FindByRef(from string, ref stream.Ref) (*StreamDef, int, error) {
	defs, hops, err := db.lookup(from, refKey(ref))
	if err != nil {
		return nil, hops, err
	}
	if len(defs) == 0 {
		return nil, hops, nil
	}
	return defs[0], hops, nil
}

func statsKey(ref stream.Ref) string { return "stats|" + ref.String() }

// UpdateStats records the latest statistics for a stream (appended;
// StatsFor reads the most recent record). The paper's descriptors carry
// "statistical information maintained for the stream such as the average
// volume of data".
func (db *DB) UpdateStats(ref stream.Ref, stats map[string]string) error {
	n := xmltree.Elem("Stats")
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n.SetAttr(k, stats[k])
	}
	return db.ring.Put(statsKey(ref), n.String())
}

// StatsFor returns the most recently recorded statistics for a stream.
func (db *DB) StatsFor(from string, ref stream.Ref) (map[string]string, int, error) {
	vals, hops, err := db.ring.Get(from, statsKey(ref))
	if err != nil || len(vals) == 0 {
		return nil, hops, err
	}
	n, err := xmltree.Parse(vals[len(vals)-1])
	if err != nil {
		return nil, hops, fmt.Errorf("kadop: corrupt stats record: %w", err)
	}
	out := make(map[string]string, len(n.Attrs))
	for _, a := range n.Attrs {
		out[a.Name] = a.Value
	}
	return out, hops, nil
}

// CheckpointKey is the DHT key of one operator checkpoint record —
// exported so callers can locate the record's owner (e.g. to account
// the checkpoint shipment on the right link).
func CheckpointKey(task, op string) string { return "ckpt|" + task + "|" + op }

// PutCheckpoint stores one operator checkpoint (serialized XML) under
// the (task, operator-stream) identity. The record rides the DHT's
// normal key replication — owner plus successors — so it survives the
// crash of its own host, and Ring.Fail's re-replication keeps the copy
// count up through churn. Latest wins: each write replaces the previous
// checkpoint.
func (db *DB) PutCheckpoint(task, op, xml string) error {
	return db.ring.Set(CheckpointKey(task, op), xml)
}

// Checkpoint returns the most recent checkpoint stored for the (task,
// operator-stream) identity, or ok=false when none survives.
func (db *DB) Checkpoint(from, task, op string) (string, bool, error) {
	vals, _, err := db.ring.Get(from, CheckpointKey(task, op))
	if err != nil || len(vals) == 0 {
		return "", false, err
	}
	return vals[len(vals)-1], true, nil
}

// CheckpointLoad returns the per-member DHT service counters for the
// checkpoint key class: how many checkpoint puts/gets each ring member
// served as a primary holder. The X3 elasticity experiment reads its
// max-vs-mean spread from here.
func (db *DB) CheckpointLoad() map[string]dht.Load {
	return db.ring.ServiceLoad("ckpt")
}

// ResetLoad zeroes the ring's service counters, so a steady-state
// measurement window can exclude deployment and growth traffic.
func (db *DB) ResetLoad() { db.ring.ResetServiceLoad() }

// PublishReplica records that replicaRef re-publishes origRef (the
// paper's InChannel record: a subscriber announcing it can also provide
// the stream).
func (db *DB) PublishReplica(orig, replica stream.Ref) error {
	n := xmltree.Elem("InChannel")
	n.SetAttr("PeerId", orig.PeerID)
	n.SetAttr("StreamId", orig.StreamID)
	n.SetAttr("ReplicaPeerId", replica.PeerID)
	n.SetAttr("ReplicaStreamId", replica.StreamID)
	return db.ring.Put(replicaKey(orig), n.String())
}

// Replicas returns all known replicas of a stream.
func (db *DB) Replicas(from string, orig stream.Ref) ([]stream.Ref, int, error) {
	vals, hops, err := db.ring.Get(from, replicaKey(orig))
	if err != nil {
		return nil, hops, err
	}
	var out []stream.Ref
	seen := make(map[string]bool)
	for _, v := range vals {
		n, err := xmltree.Parse(v)
		if err != nil || n.Label != "InChannel" {
			return nil, hops, fmt.Errorf("kadop: corrupt replica record")
		}
		r := stream.Ref{PeerID: n.AttrOr("ReplicaPeerId", ""), StreamID: n.AttrOr("ReplicaStreamId", "")}
		if !seen[r.String()] {
			seen[r.String()] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, hops, nil
}

// Document assembles every stored descriptor into one <db> document and
// QueryXPath evaluates a Section 5-style XPath query against it. This is
// the diagnostic evaluator used by tests and the explain tooling; the
// reuse algorithm itself uses the indexed lookups above.
func (db *DB) Document() *xmltree.Node {
	doc := xmltree.Elem("db")
	seen := make(map[string]bool)
	for _, v := range db.allRaw() {
		n, err := xmltree.Parse(v)
		if err != nil || n.Label != "Stream" {
			continue
		}
		id := n.AttrOr("StreamId", "") + "@" + n.AttrOr("PeerId", "")
		if !seen[id] {
			seen[id] = true
			doc.Append(n)
		}
	}
	return doc
}

// allRaw enumerates all raw descriptor values. The ring has no global
// scan primitive (that is the point of a DHT); enumeration walks the
// identity index maintained alongside the semantic keys.
func (db *DB) allRaw() []string {
	vals, _, err := db.ring.Get("", identityIndexKey)
	if err != nil {
		return nil
	}
	return vals
}

const identityIndexKey = "kadop|all"

// PublishIndexed is Publish plus enrollment in the enumeration index.
// The identity index is a convenience for diagnostics and small
// deployments; large deployments use only the semantic keys.
func (db *DB) PublishIndexed(def *StreamDef) error {
	if err := db.Publish(def); err != nil {
		return err
	}
	return db.ring.Put(identityIndexKey, def.ToXML().String())
}

// QueryXPath evaluates a rooted XPath query (e.g. the three queries of
// Section 5) over the assembled descriptor document.
func (db *DB) QueryXPath(q string, binds map[string]string) ([]*StreamDef, error) {
	path, err := xpath.Compile(rewriteRootedQuery(q))
	if err != nil {
		return nil, err
	}
	doc := db.Document()
	var out []*StreamDef
	for _, n := range path.SelectNodes(doc, xpath.Bindings(binds)) {
		d, err := ParseDef(n)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// rewriteRootedQuery maps the paper's "/Stream[...]" form onto our <db>
// wrapper document.
func rewriteRootedQuery(q string) string {
	if strings.HasPrefix(q, "/Stream") {
		return "/db" + q
	}
	return q
}
