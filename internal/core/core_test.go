package core

import (
	"strings"
	"testing"

	"p2pm/internal/peer"
	"p2pm/internal/xmltree"
)

const demoSub = `for $c1 in outCOM(<p>a.com</p><p>b.com</p>),
    $c2 in inCOM(<p>meteo.com</p>)
where $c1.callMethod = "GetTemperature" and $c1.callId = $c2.callId
return <m c="{$c1.caller}"/> by publish as channel "out"`

func TestExplainStages(t *testing.T) {
	ex, err := Explain(demoSub, "p")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Subscription == nil || len(ex.Subscription.For) != 2 {
		t.Fatal("subscription stage missing")
	}
	if ex.NaivePlan.Count() >= ex.Optimized.Count() {
		// Pushdown duplicates the σ into union branches: optimized has
		// more (cheaper) operators here.
		t.Logf("naive=%d optimized=%d", ex.NaivePlan.Count(), ex.Optimized.Count())
	}
	if ex.Reuse != nil {
		t.Error("plain Explain should not run reuse")
	}
	out := ex.String()
	for _, want := range []string{"== Subscription", "== Compiled plan", "== Optimized plan"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestExplainParseError(t *testing.T) {
	if _, err := Explain("bogus", "p"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMonitorExplainWithReuse(t *testing.T) {
	mon := MustNew(peer.DefaultConfig())
	mgr := mon.MustAddPeer("p")
	mon.MustAddPeer("a.com")
	mon.MustAddPeer("b.com")
	meteo := mon.MustAddPeer("meteo.com")
	meteo.Endpoint().Register("GetTemperature", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("t"), nil
	}, nil)
	task, err := mgr.Subscribe(demoSub)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { task.Stop(); task.Results().Drain() }()

	ex, err := mon.Explain(demoSub, "q")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Reuse == nil || len(ex.Reuse.Mappings) == 0 {
		t.Fatal("reuse stage missing against the live database")
	}
	if !strings.Contains(ex.String(), "== Stream reuse ==") {
		t.Error("reuse section not rendered")
	}
	// Explaining must not deploy anything — not even the subscriber peer
	// comes into existence.
	if mon.Peer("q") != nil {
		t.Error("Explain materialized the subscriber peer")
	}
	if len(mgr.Tasks()) != 1 {
		t.Errorf("manager task count changed: %d", len(mgr.Tasks()))
	}
}

func TestMonitorExplainReuseDisabled(t *testing.T) {
	opts := peer.DefaultConfig()
	opts.Reuse = false
	mon := MustNew(opts)
	mon.MustAddPeer("a.com")
	mon.MustAddPeer("b.com")
	mon.MustAddPeer("meteo.com")
	ex, err := mon.Explain(demoSub, "p")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Reuse != nil {
		t.Error("reuse section present despite disabled reuse")
	}
}
