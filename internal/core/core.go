// Package core ties the P2PM pieces into the system the paper presents:
// a Monitor wraps a peer.System with the compilation/optimization/reuse
// pipeline of Figure 3 and explain tooling that renders each processing
// stage.
package core

import (
	"fmt"
	"strings"

	"p2pm/internal/algebra"
	"p2pm/internal/p2pml"
	"p2pm/internal/peer"
	"p2pm/internal/reuse"
)

// Monitor is the top-level P2PM deployment handle.
type Monitor struct {
	*peer.System
}

// New builds a monitor system from a validated configuration.
func New(cfg peer.Config) (*Monitor, error) {
	sys, err := peer.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{System: sys}, nil
}

// MustNew is New that panics on a bad configuration (setup code and
// tests).
func MustNew(cfg peer.Config) *Monitor {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Explanation captures every stage of the Figure 3 processing chain for
// one subscription.
type Explanation struct {
	Subscription *p2pml.Subscription
	NaivePlan    *algebra.Node
	Optimized    *algebra.Node
	Reuse        *reuse.Result // nil when explained without a system
}

// Explain runs the compile→optimize pipeline without deploying,
// against no stream database. subscriber names the managing peer.
func Explain(src, subscriber string) (*Explanation, error) {
	sub, err := p2pml.Parse(src)
	if err != nil {
		return nil, err
	}
	naive, err := algebra.Compile(sub)
	if err != nil {
		return nil, err
	}
	optimized := algebra.Optimize(naive.Clone(), algebra.DefaultOptions(subscriber))
	return &Explanation{Subscription: sub, NaivePlan: naive, Optimized: optimized}, nil
}

// Explain runs the full pipeline including the reuse pass against this
// monitor's stream-definition database, without deploying anything.
func (m *Monitor) Explain(src, subscriber string) (*Explanation, error) {
	ex, err := Explain(src, subscriber)
	if err != nil {
		return nil, err
	}
	if m.Config().Reuse {
		ro := reuse.Options{From: subscriber}
		res, err := ro.Apply(ex.Optimized, m.DB)
		if err != nil {
			return nil, err
		}
		ex.Reuse = res
	}
	return ex, nil
}

// String renders the explanation as the Figure 3 chain.
func (e *Explanation) String() string {
	var b strings.Builder
	b.WriteString("== Subscription (P2PML) ==\n")
	b.WriteString(e.Subscription.String())
	b.WriteString("\n\n== Compiled plan (generic operators @any) ==\n")
	b.WriteString(e.NaivePlan.String())
	b.WriteString("\n")
	b.WriteString(e.NaivePlan.Tree())
	b.WriteString("\n== Optimized plan (selections pushed, operators placed) ==\n")
	b.WriteString(e.Optimized.String())
	b.WriteString("\n")
	b.WriteString(e.Optimized.Tree())
	if e.Reuse != nil {
		fmt.Fprintf(&b, "\n== Stream reuse ==\nreused sub-plans: %d   operators still to deploy: %d\n",
			len(e.Reuse.Mappings), e.Reuse.NewOps)
		for _, m := range e.Reuse.Mappings {
			fmt.Fprintf(&b, "  %s <- %s (replica=%v)\n", m.Provider, m.Original, m.IsReplica)
		}
		b.WriteString(e.Reuse.Plan.Tree())
	}
	return b.String()
}
