package p2pml

import (
	"fmt"
	"sort"
	"time"
)

// AlerterFuncs lists the alerter functions known to the system and the
// alerter kind each maps to. The set mirrors Section 3.1's alerter
// catalogue; deployments may extend it before parsing.
var AlerterFuncs = map[string]string{
	"inCOM":         "ws-in",      // inbound Web service calls
	"outCOM":        "ws-out",     // outbound Web service calls
	"rssCOM":        "rss",        // RSS feed changes
	"pageCOM":       "webpage",    // Web page changes
	"axmlCOM":       "axml",       // ActiveXML repository updates
	"areRegistered": "membership", // DHT join/leave events
}

// Validate checks static semantics: variable scoping, known alerter
// functions, source arities and BY-clause consistency. Parse calls it
// automatically.
func Validate(s *Subscription) error {
	if len(s.For) == 0 {
		return fmt.Errorf("p2pml: subscription needs at least one FOR binding")
	}
	defined := make(map[string]bool)
	for _, f := range s.For {
		if defined[f.Var] {
			return fmt.Errorf("p2pml: variable $%s bound twice", f.Var)
		}
		switch src := f.Source.(type) {
		case *AlerterSource:
			if _, ok := AlerterFuncs[src.Func]; !ok {
				return fmt.Errorf("p2pml: unknown alerter function %q (known: %v)", src.Func, knownFuncs())
			}
			if len(src.Peers) == 0 && src.StreamVar == "" {
				return fmt.Errorf("p2pml: %s needs at least one <p>peer</p> or a stream variable", src.Func)
			}
			if src.StreamVar != "" && !defined[src.StreamVar] {
				return fmt.Errorf("p2pml: %s($%s): stream variable not yet bound", src.Func, src.StreamVar)
			}
		case *NestedSource:
			if err := Validate(src.Sub); err != nil {
				return fmt.Errorf("p2pml: in nested subscription: %w", err)
			}
			if len(src.Sub.By) > 0 {
				return fmt.Errorf("p2pml: nested subscriptions cannot carry a BY clause")
			}
		case *ChannelSource:
			if src.Ref == "" {
				return fmt.Errorf("p2pml: empty channel reference")
			}
		default:
			return fmt.Errorf("p2pml: unknown source type %T", f.Source)
		}
		defined[f.Var] = true
	}
	for _, l := range s.Let {
		if defined[l.Var] {
			return fmt.Errorf("p2pml: variable $%s bound twice", l.Var)
		}
		if err := checkVars(l.Expr.Vars(), defined, "LET $"+l.Var); err != nil {
			return err
		}
		defined[l.Var] = true
	}
	for _, c := range s.Where {
		if err := checkVars(c.Vars(), defined, "WHERE"); err != nil {
			return err
		}
	}
	if s.Return == nil {
		return fmt.Errorf("p2pml: missing RETURN clause")
	}
	var retVars []string
	if s.Return.Expr != nil {
		retVars = s.Return.Expr.Vars()
	} else if s.Return.Template != nil {
		retVars = s.Return.Template.Vars()
	}
	if err := checkVars(retVars, defined, "RETURN"); err != nil {
		return err
	}
	if s.Group != nil {
		if s.Group.Attr == "" {
			return fmt.Errorf("p2pml: group clause needs an attribute name")
		}
		if _, err := time.ParseDuration(s.Group.Window); err != nil {
			return fmt.Errorf("p2pml: bad group window %q: %w", s.Group.Window, err)
		}
	}
	for _, t := range s.By {
		if t.Name == "" {
			return fmt.Errorf("p2pml: BY target %v needs a name", t.Kind)
		}
	}
	return nil
}

func checkVars(vars []string, defined map[string]bool, where string) error {
	for _, v := range vars {
		if !defined[v] {
			return fmt.Errorf("p2pml: %s references unbound variable $%s", where, v)
		}
	}
	return nil
}

func knownFuncs() []string {
	fns := make([]string, 0, len(AlerterFuncs))
	for f := range AlerterFuncs {
		fns = append(fns, f)
	}
	sort.Strings(fns)
	return fns
}
