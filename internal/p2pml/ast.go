// Package p2pml implements the Peer-to-Peer Monitor Language of Section 2:
// a declarative subscription language with FOR / LET / WHERE / RETURN / BY
// clauses, XQuery-flavoured syntax, dot notation for root-attribute
// conditions, nested subscriptions, and curly-brace-guarded expressions in
// the RETURN template.
package p2pml

import (
	"fmt"
	"strings"

	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// Subscription is a parsed P2PML statement.
type Subscription struct {
	For    []ForBinding
	Let    []LetBinding
	Where  []Condition
	Return *ReturnClause
	// Group, when present, aggregates the RETURN stream: one count per
	// distinct value of an output-root attribute per time window. This
	// is an extension clause exposing the paper's Group processor, which
	// the original language leaves without syntax.
	Group *GroupClause
	By    []ByTarget
	// Source preserves the original text for explain output.
	Source string
}

// GroupClause is the extension "group [fn [of "value"]] on "attr"
// window "1m"". Without a function name it counts, the historical
// default; otherwise fn names a registered aggregate monoid (sum, min,
// max, avg, set, distinct, freq) and "of" names the output-root
// attribute whose values are aggregated.
type GroupClause struct {
	// Attr is the output-root attribute whose values key the groups.
	Attr string
	// Window is a Go duration string ("30s", "1m").
	Window string
	// Fn is the aggregate function name; empty means count.
	Fn string
	// ValueAttr is the aggregated attribute (empty for count).
	ValueAttr string
}

func (g *GroupClause) String() string {
	switch {
	case g.Fn == "":
		return fmt.Sprintf("group on %q window %q", g.Attr, g.Window)
	case g.ValueAttr == "":
		return fmt.Sprintf("group %s on %q window %q", g.Fn, g.Attr, g.Window)
	}
	return fmt.Sprintf("group %s of %q on %q window %q", g.Fn, g.ValueAttr, g.Attr, g.Window)
}

// ForBinding binds a variable to a stream source.
type ForBinding struct {
	Var    string
	Source Source
}

// Source is a stream source in a FOR clause.
type Source interface {
	isSource()
	String() string
}

// AlerterSource is an alerter function call: outCOM(<p>http://a.com</p>),
// inCOM($j), areRegistered(<p>s.com/dht</p>), rssCOM(...), etc.
type AlerterSource struct {
	Func string
	// Peers lists the statically named monitored peers (one <p> element
	// each, scheme prefix stripped).
	Peers []string
	// StreamVar, when non-empty, makes the monitored peer set dynamic:
	// it is fed by another FOR variable's stream of p-join/p-leave
	// events (the inCOM($j) form).
	StreamVar string
	// Args keeps any non-<p> XML arguments verbatim.
	Args []*xmltree.Node
}

func (*AlerterSource) isSource() {}

func (s *AlerterSource) String() string {
	var parts []string
	for _, p := range s.Peers {
		parts = append(parts, "<p>"+p+"</p>")
	}
	if s.StreamVar != "" {
		parts = append(parts, "$"+s.StreamVar)
	}
	for _, a := range s.Args {
		parts = append(parts, a.String())
	}
	return s.Func + "(" + strings.Join(parts, " ") + ")"
}

// NestedSource is a parenthesized inner subscription:
// for $x in ( for $y in ... ) ...
type NestedSource struct {
	Sub *Subscription
}

func (*NestedSource) isSource() {}

func (s *NestedSource) String() string { return "( " + s.Sub.String() + " )" }

// ChannelSource consumes an already-published channel: channel("s@peer").
type ChannelSource struct {
	Ref string // "streamID@peerID"
}

func (*ChannelSource) isSource() {}

func (s *ChannelSource) String() string { return fmt.Sprintf("channel(%q)", s.Ref) }

// LetBinding defines a derived variable.
type LetBinding struct {
	Var  string
	Expr Expr
}

// Condition is one conjunct of the WHERE clause.
type Condition interface {
	isCondition()
	String() string
	// Vars returns the stream/let variables the condition references.
	Vars() []string
}

// CmpCond compares two expressions.
type CmpCond struct {
	Left  Expr
	Op    xpath.CmpOp
	Right Expr
}

func (*CmpCond) isCondition() {}

func (c *CmpCond) String() string {
	return fmt.Sprintf("%s %s %s", c.Left.String(), c.Op.String(), c.Right.String())
}

// Vars implements Condition.
func (c *CmpCond) Vars() []string { return append(c.Left.Vars(), c.Right.Vars()...) }

// PathCond is a bare tree-pattern existence condition: $c1//c/d.
type PathCond struct {
	Var  string
	Path *xpath.Path
}

func (*PathCond) isCondition() {}

func (c *PathCond) String() string { return "$" + c.Var + pathSuffix(c.Path) }

// Vars implements Condition.
func (c *PathCond) Vars() []string { return []string{c.Var} }

func pathSuffix(p *xpath.Path) string {
	s := p.String()
	if !strings.HasPrefix(s, "/") {
		return "/" + s
	}
	return s
}

// ReturnClause specifies the output stream: either a bare expression
// (return $e) or an XML template with {expr} holes, optionally
// duplicate-free.
type ReturnClause struct {
	Distinct bool
	Expr     Expr      // set for "return $e" style
	Template *Template // set for XML templates
}

func (r *ReturnClause) String() string {
	var b strings.Builder
	b.WriteString("return ")
	if r.Distinct {
		b.WriteString("distinct ")
	}
	if r.Expr != nil {
		b.WriteString(r.Expr.String())
	} else {
		b.WriteString(r.Template.String())
	}
	return b.String()
}

// ByKind classifies the notification targets of the BY clause.
type ByKind int

// The supported BY targets.
const (
	ByPublishChannel ByKind = iota // publish as channel "name"
	ByChannel                      // channel X (local task form)
	BySubscribe                    // subscribe(peer, #X, X)
	ByEmail                        // email "addr"
	ByFile                         // file "name"
	ByRSS                          // rss "title"
)

// ByTarget is one notification target.
type ByTarget struct {
	Kind ByKind
	// Name is the channel name / address / file name / feed title.
	Name string
	// Peer and ChannelID apply to BySubscribe: subscribe(peer, #id, name).
	Peer      string
	ChannelID string
}

func (t ByTarget) String() string {
	switch t.Kind {
	case ByPublishChannel:
		return fmt.Sprintf("publish as channel %q", t.Name)
	case ByChannel:
		return "channel " + t.Name
	case BySubscribe:
		return fmt.Sprintf("subscribe(%s, #%s, %s)", t.Peer, t.ChannelID, t.Name)
	case ByEmail:
		return fmt.Sprintf("email %q", t.Name)
	case ByFile:
		return fmt.Sprintf("file %q", t.Name)
	case ByRSS:
		return fmt.Sprintf("rss %q", t.Name)
	}
	return "?"
}

// String renders the subscription in canonical P2PML.
func (s *Subscription) String() string {
	var b strings.Builder
	b.WriteString("for ")
	for i, f := range s.For {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "$%s in %s", f.Var, f.Source.String())
	}
	for _, l := range s.Let {
		fmt.Fprintf(&b, " let $%s := %s", l.Var, l.Expr.String())
	}
	if len(s.Where) > 0 {
		b.WriteString(" where ")
		for i, c := range s.Where {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(c.String())
		}
	}
	if s.Return != nil {
		b.WriteString(" ")
		b.WriteString(s.Return.String())
	}
	if s.Group != nil {
		b.WriteString(" ")
		b.WriteString(s.Group.String())
	}
	if len(s.By) > 0 {
		b.WriteString(" by ")
		for i, t := range s.By {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(t.String())
		}
	}
	return b.String()
}

// StreamVars returns the FOR-bound variable names in order.
func (s *Subscription) StreamVars() []string {
	vars := make([]string, len(s.For))
	for i, f := range s.For {
		vars[i] = f.Var
	}
	return vars
}
