package p2pml

import (
	"strings"
	"testing"

	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// figure1 is the subscription of Figure 1, verbatim from the paper.
const figure1 = `for $c1 in outCOM(<p>http://a.com</p>
                   <p>http://b.com</p>),
    $c2 in inCOM(<p>http://meteo.com</p>)
let $duration := $c1.responseTimestamp
               - $c1.callTimestamp
where
    $duration > 10 and
    $c1.callMethod = "GetTemperature" and
    $c1.callee = "http://meteo.com" and
    $c1.callId = $c2.callId
return
    <incident type = "slowAnswer">
      <client>{$c1.caller}</client>
      <tstamp>{$c2.callTimestamp}</tstamp>
    </incident>
by publish as channel "alertQoS";`

func TestParseFigure1(t *testing.T) {
	sub, err := Parse(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.For) != 2 {
		t.Fatalf("for bindings = %d", len(sub.For))
	}
	c1 := sub.For[0]
	if c1.Var != "c1" {
		t.Errorf("var = %s", c1.Var)
	}
	al := c1.Source.(*AlerterSource)
	if al.Func != "outCOM" || len(al.Peers) != 2 || al.Peers[0] != "a.com" || al.Peers[1] != "b.com" {
		t.Errorf("source = %+v", al)
	}
	c2 := sub.For[1].Source.(*AlerterSource)
	if c2.Func != "inCOM" || len(c2.Peers) != 1 || c2.Peers[0] != "meteo.com" {
		t.Errorf("c2 source = %+v", c2)
	}
	if len(sub.Let) != 1 || sub.Let[0].Var != "duration" {
		t.Fatalf("let = %+v", sub.Let)
	}
	if len(sub.Where) != 4 {
		t.Fatalf("where = %d conjuncts", len(sub.Where))
	}
	if sub.Return == nil || sub.Return.Template == nil {
		t.Fatal("return template missing")
	}
	if len(sub.By) != 1 || sub.By[0].Kind != ByPublishChannel || sub.By[0].Name != "alertQoS" {
		t.Fatalf("by = %+v", sub.By)
	}
}

// TestFigure1Semantics runs the parsed Figure 1 subscription's LET, WHERE
// and RETURN machinery against hand-built alerts and checks the incident
// output.
func TestFigure1Semantics(t *testing.T) {
	sub := MustParse(figure1)
	mkOut := func(callID, method, callee, caller string, callT, respT string) *xmltree.Node {
		n := xmltree.Elem("alert")
		n.SetAttr("callId", callID)
		n.SetAttr("callMethod", method)
		n.SetAttr("callee", callee)
		n.SetAttr("caller", caller)
		n.SetAttr("callTimestamp", callT)
		n.SetAttr("responseTimestamp", respT)
		return n
	}
	mkIn := func(callID, callT string) *xmltree.Node {
		n := xmltree.Elem("alert")
		n.SetAttr("callId", callID)
		n.SetAttr("callTimestamp", callT)
		return n
	}

	eval := func(c1, c2 *xmltree.Node) (*xmltree.Node, bool) {
		env := NewEnv()
		env.Bind("c1", c1)
		env.Bind("c2", c2)
		if err := EvalLets(sub.Let, env); err != nil {
			t.Fatal(err)
		}
		for _, cond := range sub.Where {
			ok, err := EvalCondition(cond, env)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return nil, false
			}
		}
		out, err := sub.Return.Template.Instantiate(env)
		if err != nil {
			t.Fatal(err)
		}
		return out, true
	}

	// Slow matching call: duration 15 > 10, same callId.
	out, ok := eval(
		mkOut("call-9", "GetTemperature", "http://meteo.com", "a.com", "100.0", "115.0"),
		mkIn("call-9", "100.1"))
	if !ok {
		t.Fatal("matching tuple rejected")
	}
	if out.Label != "incident" || out.AttrOr("type", "") != "slowAnswer" {
		t.Errorf("out = %s", out)
	}
	if out.Child("client").InnerText() != "a.com" {
		t.Errorf("client = %s", out.Child("client").InnerText())
	}
	if out.Child("tstamp").InnerText() != "100.1" {
		t.Errorf("tstamp = %s", out.Child("tstamp").InnerText())
	}

	// Fast call: rejected by $duration > 10.
	if _, ok := eval(
		mkOut("call-1", "GetTemperature", "http://meteo.com", "a.com", "100.0", "101.0"),
		mkIn("call-1", "100.1")); ok {
		t.Error("fast call accepted")
	}
	// Different callIds: rejected by the join condition.
	if _, ok := eval(
		mkOut("call-1", "GetTemperature", "http://meteo.com", "a.com", "100.0", "115.0"),
		mkIn("call-2", "100.1")); ok {
		t.Error("mismatched callIds accepted")
	}
	// Wrong method.
	if _, ok := eval(
		mkOut("call-1", "Other", "http://meteo.com", "a.com", "100.0", "115.0"),
		mkIn("call-1", "100.1")); ok {
		t.Error("wrong method accepted")
	}
}

// TestParseLocalTaskFigure4 parses the delegated local task the paper
// assigns to peer a.com in Section 3.4.
func TestParseLocalTaskFigure4(t *testing.T) {
	src := `for $e in outCOM(<p>local</p>)
let $duration := $e.responseTimestamp
               - $e.callTimestamp
where
   $duration > 10 and $e.callMethod = "GetTemperature"
   and $e.callee = "http://meteo.com"
return $e
by channel X and subscribe(b.com, #X, X)`
	sub, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if sub.For[0].Source.(*AlerterSource).Peers[0] != "local" {
		t.Error("local peer lost")
	}
	if sub.Return.Expr == nil {
		t.Fatal("bare return $e should be an expression")
	}
	if len(sub.By) != 2 {
		t.Fatalf("by = %+v", sub.By)
	}
	if sub.By[0].Kind != ByChannel || sub.By[0].Name != "X" {
		t.Errorf("by[0] = %+v", sub.By[0])
	}
	if sub.By[1].Kind != BySubscribe || sub.By[1].Peer != "b.com" || sub.By[1].ChannelID != "X" {
		t.Errorf("by[1] = %+v", sub.By[1])
	}
}

// TestParseDynamicMembership parses the Section 2 example where the
// monitored peer collection is fed by a DHT membership stream.
func TestParseDynamicMembership(t *testing.T) {
	src := `for $j in areRegistered(<p>s.com/dht</p>)
for $c in inCOM($j)
where $c.callMethod = "GetTemperature"
return <seen>{$c.caller}</seen>
by publish as channel "watch"`
	sub, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.For) != 2 {
		t.Fatalf("for = %d", len(sub.For))
	}
	src2 := sub.For[1].Source.(*AlerterSource)
	if src2.Func != "inCOM" || src2.StreamVar != "j" {
		t.Errorf("dynamic source = %+v", src2)
	}
}

func TestParseNestedSubscription(t *testing.T) {
	src := `for $x in ( for $y in inCOM(<p>m.com</p>) return $y )
where $x.callMethod = "Q"
return distinct <a>{$x.caller}</a>
by publish as channel "c"`
	sub, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ns, ok := sub.For[0].Source.(*NestedSource)
	if !ok {
		t.Fatalf("source = %T", sub.For[0].Source)
	}
	if ns.Sub.For[0].Var != "y" {
		t.Error("inner var lost")
	}
	if !sub.Return.Distinct {
		t.Error("distinct flag lost")
	}
}

func TestParseChannelSource(t *testing.T) {
	sub := MustParse(`for $x in channel("alertQoS@meteo.com") return $x by file "out.xml"`)
	cs := sub.For[0].Source.(*ChannelSource)
	if cs.Ref != "alertQoS@meteo.com" {
		t.Errorf("ref = %s", cs.Ref)
	}
	if sub.By[0].Kind != ByFile {
		t.Errorf("by = %+v", sub.By[0])
	}
}

func TestParsePathConditions(t *testing.T) {
	sub := MustParse(`for $c in inCOM(<p>m</p>)
where $c/alert[@callMethod = "GetTemperature"] and $c.attr1 = "x" and $c//c/d
return $c by email "ops@m"`)
	if len(sub.Where) != 3 {
		t.Fatalf("where = %d", len(sub.Where))
	}
	if _, ok := sub.Where[0].(*PathCond); !ok {
		t.Errorf("where[0] = %T", sub.Where[0])
	}
	if _, ok := sub.Where[2].(*PathCond); !ok {
		t.Errorf("where[2] = %T", sub.Where[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`where $x = 1`,                        // no FOR
		`for $x in inCOM(<p>m</p>)`,           // no RETURN
		`for $x in bogus(<p>m</p>) return $x`, // unknown alerter
		`for $x in inCOM() return $x`,         // no peers
		`for $x in inCOM(<p>m</p>) return $y`, // unbound var
		`for $x in inCOM(<p>m</p>) where $y = 1 return $x`,                           // unbound in where
		`for $x in inCOM(<p>m</p>), $x in inCOM(<p>n</p>) return $x`,                 // dup var
		`for $x in inCOM($z) return $x`,                                              // unbound stream var
		`for $x in inCOM(<p>m</p>) let $x := 1 return $x`,                            // let shadows for
		`for $x in inCOM(<p>m</p>) where $x return $x`,                               // bare var condition
		`for $x in inCOM(<p>m</p>) return <a>{$x.}</a>`,                              // bad template expr
		`for $x in inCOM(<p>m</p>) return <a>{$x.y}</a> by channel`,                  // missing channel name
		`for $x in ( for $y in inCOM(<p>m</p>) return $y by channel "c" ) return $x`, // nested BY
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseCommentsSkipped(t *testing.T) {
	sub := MustParse(`for $x in inCOM(<p>m</p>) % monitored server
return $x % forward everything
by publish as channel "c"`)
	if len(sub.For) != 1 {
		t.Error("comment handling broke parsing")
	}
}

func TestExprArithmetic(t *testing.T) {
	env := NewEnv()
	tree := xmltree.Elem("alert")
	tree.SetAttr("a", "10")
	tree.SetAttr("b", "4")
	env.Bind("x", tree)
	cases := []struct {
		src  string
		want float64
	}{
		{`$x.a + $x.b`, 14},
		{`$x.a - $x.b`, 6},
		{`$x.a * $x.b`, 40},
		{`$x.a / $x.b`, 2.5},
		{`$x.a - $x.b - 1`, 5}, // left associative
		{`$x.a - ($x.b - 1)`, 7},
		{`2 + 3 * 4`, 14}, // precedence
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		v, err := e.Eval(env)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if !v.IsNum || v.Num != c.want {
			t.Errorf("%s = %v, want %v", c.src, v.Num, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	env := NewEnv()
	tree := xmltree.Elem("alert")
	tree.SetAttr("s", "hello")
	env.Bind("x", tree)
	e, _ := ParseExpr(`$x.s + 1`)
	if _, err := e.Eval(env); err == nil {
		t.Error("string arithmetic should fail")
	}
	e, _ = ParseExpr(`1 / 0`)
	if _, err := e.Eval(env); err == nil {
		t.Error("division by zero should fail")
	}
	e, _ = ParseExpr(`$ghost`)
	if _, err := e.Eval(env); err == nil {
		t.Error("unbound variable should fail")
	}
}

func TestConditionMissingAttrIsFalse(t *testing.T) {
	env := NewEnv()
	env.Bind("x", xmltree.Elem("alert"))
	c := &CmpCond{Left: &AttrRef{Var: "x", Attr: "nope"}, Op: xpath.OpEq, Right: &Lit{Val: Value{Str: "v"}}}
	ok, err := EvalCondition(c, env)
	if err != nil || ok {
		t.Errorf("ok=%v err=%v; missing attribute should be false, not error", ok, err)
	}
}

func TestTemplateSpliceWholeTree(t *testing.T) {
	tpl, err := CompileTemplate(`<wrap>{$e}</wrap>`)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Bind("e", xmltree.MustParse(`<alert x="1"><body/></alert>`))
	out, err := tpl.Instantiate(env)
	if err != nil {
		t.Fatal(err)
	}
	if out.Child("alert") == nil || out.Child("alert").Child("body") == nil {
		t.Errorf("out = %s", out)
	}
}

func TestTemplateAttrSubstitution(t *testing.T) {
	tpl, err := CompileTemplate(`<a id="pre-{$x.k}-post"/>`)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	tr := xmltree.Elem("t")
	tr.SetAttr("k", "42")
	env.Bind("x", tr)
	out, err := tpl.Instantiate(env)
	if err != nil {
		t.Fatal(err)
	}
	if out.AttrOr("id", "") != "pre-42-post" {
		t.Errorf("id = %s", out.AttrOr("id", ""))
	}
}

func TestTemplateMixedTextSegments(t *testing.T) {
	tpl, err := CompileTemplate(`<m>client {$x.c} was slow</m>`)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	tr := xmltree.Elem("t")
	tr.SetAttr("c", "a.com")
	env.Bind("x", tr)
	out, err := tpl.Instantiate(env)
	if err != nil {
		t.Fatal(err)
	}
	if out.InnerText() != "client a.com was slow" {
		t.Errorf("text = %q", out.InnerText())
	}
}

func TestTemplateErrors(t *testing.T) {
	if _, err := CompileTemplate(`<a>{$x`); err == nil {
		t.Error("unbalanced template accepted")
	}
	if _, err := CompileTemplate(`<a>{unclosed</a>`); err == nil {
		t.Error("unterminated brace accepted")
	}
	tpl, err := CompileTemplate(`<a>{$missing.k}</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Instantiate(NewEnv()); err == nil {
		t.Error("unbound template var should fail at instantiation")
	}
}

func TestSubscriptionStringRoundTrips(t *testing.T) {
	sub := MustParse(figure1)
	rendered := sub.String()
	// The canonical rendering must itself parse to the same structure.
	again, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", rendered, err)
	}
	if len(again.For) != 2 || len(again.Where) != 4 || again.By[0].Name != "alertQoS" {
		t.Errorf("round trip lost structure: %s", again.String())
	}
}

func TestStripScheme(t *testing.T) {
	cases := map[string]string{
		"http://a.com":   "a.com",
		"https://b.com/": "b.com",
		"plain":          "plain",
		" s.com/dht ":    "s.com/dht",
	}
	for in, want := range cases {
		if got := stripScheme(in); got != want {
			t.Errorf("stripScheme(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEvalLetsMissingAttrSkips(t *testing.T) {
	sub := MustParse(`for $x in inCOM(<p>m</p>)
let $d := $x.responseTimestamp - $x.callTimestamp
where $d > 10
return $x by file "f"`)
	env := NewEnv()
	env.Bind("x", xmltree.Elem("alert")) // no timestamps
	if err := EvalLets(sub.Let, env); err != nil {
		t.Fatalf("missing attr in LET should not error: %v", err)
	}
	if _, bound := env.Vals["d"]; bound {
		t.Error("d should stay unbound")
	}
	// The WHERE over the unbound LET var then errors (caller drops tuple).
	if _, err := EvalCondition(sub.Where[0], env); err == nil {
		t.Error("condition over unbound let var should error")
	}
}

func TestParseMultipleXMLArgsWithoutComma(t *testing.T) {
	// The paper juxtaposes <p> arguments without separators.
	sub := MustParse(`for $c in outCOM(<p>http://a.com</p><p>http://b.com</p>) return $c by file "f"`)
	al := sub.For[0].Source.(*AlerterSource)
	if len(al.Peers) != 2 {
		t.Errorf("peers = %v", al.Peers)
	}
}

func TestNonPeerXMLArgsPreserved(t *testing.T) {
	AlerterFuncs["rssCOM"] = "rss"
	sub := MustParse(`for $r in rssCOM(<p>portal.com</p><config depth="2"/>) return $r by file "f"`)
	al := sub.For[0].Source.(*AlerterSource)
	if len(al.Args) != 1 || al.Args[0].Label != "config" {
		t.Errorf("args = %v", al.Args)
	}
}

func TestSourceStringForms(t *testing.T) {
	sub := MustParse(`for $j in areRegistered(<p>s.com/dht</p>) for $c in inCOM($j) return $c by file "f"`)
	s := sub.String()
	if !strings.Contains(s, "areRegistered(<p>s.com/dht</p>)") || !strings.Contains(s, "inCOM($c") == strings.Contains(s, "inCOM($j)") {
		// inCOM($j) must render with its stream variable
		if !strings.Contains(s, "inCOM($j)") {
			t.Errorf("rendered = %s", s)
		}
	}
}
