package p2pml

import (
	"fmt"
	"strconv"
	"strings"

	"p2pm/internal/monoid"
	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// Parse parses and validates a P2PML subscription.
func Parse(src string) (*Subscription, error) {
	p := &parser{src: src}
	sub, err := p.parseSubscription()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	p.consume(";")
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", snippet(p.src[p.pos:]))
	}
	sub.Source = src
	if err := Validate(sub); err != nil {
		return nil, err
	}
	return sub, nil
}

// MustParse is Parse that panics on error; for fixtures and tests.
func MustParse(src string) *Subscription {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseExpr parses a standalone P2PML expression (used by templates).
func ParseExpr(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q in expression", snippet(p.src[p.pos:]))
	}
	return e, nil
}

func snippet(s string) string {
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("p2pml: line %d: %s", line, fmt.Sprintf(format, args...))
}

// skipSpace skips whitespace and %-to-end-of-line comments.
func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		case '%':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func wordChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

// keyword consumes the given keyword (case-insensitive, word boundary).
func (p *parser) keyword(kw string) bool {
	p.skipSpace()
	end := p.pos + len(kw)
	if end > len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:end], kw) {
		return false
	}
	if end < len(p.src) && wordChar(p.src[end]) {
		return false
	}
	p.pos = end
	return true
}

// nameChar admits identifier characters for peer names, channel ids and
// attribute names (dots and dashes appear in DNS-style peer names).
func nameChar(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
		return true
	case !first && (b >= '0' && b <= '9' || b == '-' || b == '.' || b == ':'):
		return true
	}
	return false
}

func (p *parser) name() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && nameChar(p.src[p.pos], p.pos == start) {
		p.pos++
	}
	return p.src[start:p.pos]
}

// word reads a bare identifier without dots (for attribute names after
// the dot notation, where the dot is the separator).
func (p *parser) word() string {
	start := p.pos
	for p.pos < len(p.src) && (wordChar(p.src[p.pos]) || p.src[p.pos] == '-') {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) stringLit() (string, error) {
	p.skipSpace()
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", p.errf("expected string literal")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated string literal")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

func (p *parser) varName() (string, error) {
	p.skipSpace()
	if !p.consume("$") {
		return "", p.errf("expected variable (starting with '$')")
	}
	// Variable names are dot-free: the dot separates the attribute in the
	// sugar notation $c1.callMethod.
	start := p.pos
	for p.pos < len(p.src) && wordChar(p.src[p.pos]) {
		p.pos++
	}
	v := p.src[start:p.pos]
	if v == "" {
		return "", p.errf("expected variable name after '$'")
	}
	return v, nil
}

// --- subscription structure ---

func (p *parser) parseSubscription() (*Subscription, error) {
	sub := &Subscription{}
	if !p.keyword("for") {
		return nil, p.errf("subscription must start with FOR")
	}
	for {
		v, err := p.varName()
		if err != nil {
			return nil, err
		}
		if !p.keyword("in") {
			return nil, p.errf("expected IN after $%s", v)
		}
		src, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		sub.For = append(sub.For, ForBinding{Var: v, Source: src})
		p.skipSpace()
		if !p.consume(",") {
			break
		}
	}
	// A second FOR keyword continues the bindings (the paper writes
	// "for $j in ... for $c in inCOM($j)").
	for p.keyword("for") {
		for {
			v, err := p.varName()
			if err != nil {
				return nil, err
			}
			if !p.keyword("in") {
				return nil, p.errf("expected IN after $%s", v)
			}
			src, err := p.parseSource()
			if err != nil {
				return nil, err
			}
			sub.For = append(sub.For, ForBinding{Var: v, Source: src})
			p.skipSpace()
			if !p.consume(",") {
				break
			}
		}
	}
	for p.keyword("let") {
		for {
			v, err := p.varName()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if !p.consume(":=") {
				return nil, p.errf("expected ':=' after let $%s", v)
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sub.Let = append(sub.Let, LetBinding{Var: v, Expr: e})
			p.skipSpace()
			if !p.consume(",") {
				break
			}
		}
	}
	if p.keyword("where") {
		for {
			c, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			sub.Where = append(sub.Where, c)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("return") {
		r, err := p.parseReturn()
		if err != nil {
			return nil, err
		}
		sub.Return = r
	} else {
		return nil, p.errf("expected RETURN clause")
	}
	if p.keyword("group") {
		fn, valueAttr := "", ""
		if !p.keyword("on") {
			p.skipSpace()
			fn = p.word()
			m, ok := monoid.Lookup(fn)
			if fn == "" || !ok {
				return nil, p.errf("unknown aggregate function %q (have %s)", fn, strings.Join(monoid.Names(), ", "))
			}
			if m.NeedsValue() {
				if !p.keyword("of") {
					return nil, p.errf(`expected "of" after aggregate %q`, fn)
				}
				var err error
				if valueAttr, err = p.stringLit(); err != nil {
					return nil, err
				}
			}
			if fn == "count" {
				fn = "" // canonical spelling of the default
			}
			if !p.keyword("on") {
				return nil, p.errf(`expected "on" in group clause`)
			}
		}
		attr, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		if !p.keyword("window") {
			return nil, p.errf(`expected "window" in group clause`)
		}
		window, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		sub.Group = &GroupClause{Attr: attr, Window: window, Fn: fn, ValueAttr: valueAttr}
	}
	if p.keyword("by") {
		for {
			t, err := p.parseByTarget()
			if err != nil {
				return nil, err
			}
			sub.By = append(sub.By, *t)
			if !p.keyword("and") {
				break
			}
		}
	}
	return sub, nil
}

func (p *parser) parseSource() (Source, error) {
	p.skipSpace()
	if p.consume("(") {
		inner, err := p.parseSubscription()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.consume(")") {
			return nil, p.errf("expected ')' closing nested subscription")
		}
		return &NestedSource{Sub: inner}, nil
	}
	fn := p.name()
	if fn == "" {
		return nil, p.errf("expected stream source (alerter call or nested subscription)")
	}
	p.skipSpace()
	if !p.consume("(") {
		return nil, p.errf("expected '(' after source function %q", fn)
	}
	if strings.EqualFold(fn, "channel") {
		ref, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.consume(")") {
			return nil, p.errf("expected ')' after channel reference")
		}
		return &ChannelSource{Ref: ref}, nil
	}
	src := &AlerterSource{Func: fn}
	for {
		p.skipSpace()
		switch {
		case p.consume(")"):
			return src, nil
		case p.peek() == '<':
			frag, err := p.scanXML()
			if err != nil {
				return nil, err
			}
			node, err := xmltree.Parse(frag)
			if err != nil {
				return nil, p.errf("bad XML argument: %v", err)
			}
			if node.Label == "p" {
				src.Peers = append(src.Peers, stripScheme(node.InnerText()))
			} else {
				src.Args = append(src.Args, node)
			}
		case p.peek() == '$':
			v, err := p.varName()
			if err != nil {
				return nil, err
			}
			if src.StreamVar != "" {
				return nil, p.errf("source %s: only one stream argument allowed", fn)
			}
			src.StreamVar = v
		case p.consume(","):
			// Argument separator; XML args may also be juxtaposed.
		default:
			return nil, p.errf("unexpected character %q in arguments of %s", string(p.peek()), fn)
		}
	}
}

func stripScheme(s string) string {
	s = strings.TrimSpace(s)
	for _, scheme := range []string{"http://", "https://"} {
		if strings.HasPrefix(s, scheme) {
			return strings.TrimSuffix(s[len(scheme):], "/")
		}
	}
	return s
}

// --- expressions ---

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.consume("+"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: '+', L: left, R: right}
		case p.peek() == '-' && !p.startsArrow():
			p.pos++
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: '-', L: left, R: right}
		default:
			return left, nil
		}
	}
}

// startsArrow guards against eating "->" style tokens; P2PML has none
// today, but the check keeps the lexer honest if operators grow.
func (p *parser) startsArrow() bool {
	return strings.HasPrefix(p.src[p.pos:], "->")
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.consume("*"):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: '*', L: left, R: right}
		case p.peek() == '/' && !strings.HasPrefix(p.src[p.pos:], "//"):
			// A '/' directly after a factor would be ambiguous with path
			// syntax; paths only follow variables and are handled in
			// parseFactor, so this is arithmetic division.
			p.pos++
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: '/', L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	p.skipSpace()
	switch b := p.peek(); {
	case b == '(':
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.consume(")") {
			return nil, p.errf("expected ')'")
		}
		return e, nil
	case b == '"' || b == '\'':
		s, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		return &Lit{Val: Value{Str: s}}, nil
	case b == '$':
		return p.parseVarExpr()
	case b >= '0' && b <= '9' || b == '-':
		start := p.pos
		if b == '-' {
			p.pos++
		}
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		n, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, p.errf("bad number %q", p.src[start:p.pos])
		}
		return &Lit{Val: NumValue(n)}, nil
	}
	return nil, p.errf("expected expression")
}

func (p *parser) parseVarExpr() (Expr, error) {
	v, err := p.varName()
	if err != nil {
		return nil, err
	}
	switch {
	case p.peek() == '.':
		p.pos++
		attr := p.word()
		if attr == "" {
			return nil, p.errf("expected attribute name after $%s.", v)
		}
		return &AttrRef{Var: v, Attr: attr}, nil
	case p.peek() == '/':
		path, n, err := xpath.CompilePrefix(p.src[p.pos:])
		if err != nil {
			return nil, p.errf("bad path after $%s: %v", v, err)
		}
		p.pos += n
		return &PathRef{Var: v, Path: path}, nil
	}
	return &VarRef{Var: v}, nil
}

func (p *parser) parseCondition() (Condition, error) {
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	for _, tok := range []string{"!=", "<>", "<=", ">=", "=", "<", ">"} {
		if p.consume(tok) {
			op, _ := xpath.ParseOp(tok)
			right, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &CmpCond{Left: left, Op: op, Right: right}, nil
		}
	}
	// No comparison: must be an existence tree pattern on a variable.
	if pr, ok := left.(*PathRef); ok {
		return &PathCond{Var: pr.Var, Path: pr.Path}, nil
	}
	return nil, p.errf("condition %q needs a comparison operator", left.String())
}

func (p *parser) parseReturn() (*ReturnClause, error) {
	r := &ReturnClause{}
	if p.keyword("distinct") {
		r.Distinct = true
	}
	p.skipSpace()
	if p.peek() == '<' {
		frag, err := p.scanXML()
		if err != nil {
			return nil, err
		}
		tpl, err := CompileTemplate(frag)
		if err != nil {
			return nil, err
		}
		r.Template = tpl
		return r, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	r.Expr = e
	return r, nil
}

func (p *parser) parseByTarget() (*ByTarget, error) {
	switch {
	case p.keyword("publish"):
		if !p.keyword("as") || !p.keyword("channel") {
			return nil, p.errf(`expected "publish as channel"`)
		}
		name, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		return &ByTarget{Kind: ByPublishChannel, Name: name}, nil
	case p.keyword("channel"):
		name := p.name()
		if name == "" {
			return nil, p.errf("expected channel name")
		}
		return &ByTarget{Kind: ByChannel, Name: name}, nil
	case p.keyword("subscribe"):
		p.skipSpace()
		if !p.consume("(") {
			return nil, p.errf("expected '(' after subscribe")
		}
		peer := p.name()
		p.skipSpace()
		if peer == "" || !p.consume(",") {
			return nil, p.errf("expected subscriber peer name")
		}
		p.skipSpace()
		if !p.consume("#") {
			return nil, p.errf("expected '#channelId'")
		}
		id := p.name()
		p.skipSpace()
		if id == "" || !p.consume(",") {
			return nil, p.errf("expected channel id")
		}
		name := p.name()
		p.skipSpace()
		if name == "" || !p.consume(")") {
			return nil, p.errf("expected channel name and ')'")
		}
		return &ByTarget{Kind: BySubscribe, Peer: peer, ChannelID: id, Name: name}, nil
	case p.keyword("email"):
		addr, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		return &ByTarget{Kind: ByEmail, Name: addr}, nil
	case p.keyword("file"):
		name, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		return &ByTarget{Kind: ByFile, Name: name}, nil
	case p.keyword("rss"):
		name, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		return &ByTarget{Kind: ByRSS, Name: name}, nil
	}
	return nil, p.errf("expected BY target (publish as channel / channel / subscribe / email / file / rss)")
}

// scanXML extracts one balanced XML element starting at the current
// position, without interpreting it (template braces stay intact).
func (p *parser) scanXML() (string, error) {
	start := p.pos
	depth := 0
	for {
		if p.pos >= len(p.src) {
			return "", p.errf("unterminated XML fragment starting at %q", snippet(p.src[start:]))
		}
		if p.src[p.pos] != '<' {
			p.pos++
			continue
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			i := strings.Index(p.src[p.pos:], "-->")
			if i < 0 {
				return "", p.errf("unterminated comment in XML fragment")
			}
			p.pos += i + 3
		case strings.HasPrefix(p.src[p.pos:], "</"):
			i := strings.IndexByte(p.src[p.pos:], '>')
			if i < 0 {
				return "", p.errf("unterminated end tag")
			}
			p.pos += i + 1
			depth--
			if depth == 0 {
				return p.src[start:p.pos], nil
			}
		default:
			// Start tag: scan to '>' honoring quoted attribute values.
			i := p.pos + 1
			var quote byte
			for i < len(p.src) {
				c := p.src[i]
				if quote != 0 {
					if c == quote {
						quote = 0
					}
				} else if c == '"' || c == '\'' {
					quote = c
				} else if c == '>' {
					break
				}
				i++
			}
			if i >= len(p.src) {
				return "", p.errf("unterminated start tag")
			}
			selfClosing := p.src[i-1] == '/'
			p.pos = i + 1
			if !selfClosing {
				depth++
			} else if depth == 0 {
				return p.src[start:p.pos], nil
			}
		}
	}
}
