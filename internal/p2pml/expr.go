package p2pml

import (
	"fmt"
	"strconv"
	"strings"

	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// Value is the result of evaluating an expression: a string, a number, or
// a whole XML tree (for bare variable references like "return $e").
type Value struct {
	Str   string
	Num   float64
	IsNum bool
	Node  *xmltree.Node
}

// StringValue builds a string Value, auto-detecting numerics so that
// attribute timestamps participate in arithmetic.
func StringValue(s string) Value {
	if n, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
		return Value{Str: s, Num: n, IsNum: true}
	}
	return Value{Str: s}
}

// NumValue builds a numeric Value.
func NumValue(n float64) Value {
	return Value{Str: strconv.FormatFloat(n, 'g', -1, 64), Num: n, IsNum: true}
}

// Text renders the value for template substitution.
func (v Value) Text() string {
	if v.Node != nil {
		return v.Node.InnerText()
	}
	return v.Str
}

// Env holds the variable bindings during evaluation of one candidate
// tuple: stream variables bind to trees, LET variables to computed
// values.
type Env struct {
	Trees map[string]*xmltree.Node
	Vals  map[string]Value
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{Trees: make(map[string]*xmltree.Node), Vals: make(map[string]Value)}
}

// Bind sets a stream variable.
func (e *Env) Bind(v string, tree *xmltree.Node) { e.Trees[v] = tree }

// Expr is an evaluable P2PML expression.
type Expr interface {
	Eval(env *Env) (Value, error)
	String() string
	// Vars returns the variables referenced by the expression.
	Vars() []string
}

// AttrRef is the dot notation: $c1.callMethod reads attribute callMethod
// of the root of the tree bound to $c1 — "syntactic sugaring" for the
// XPath condition on root attributes (Section 2).
type AttrRef struct {
	Var  string
	Attr string
}

// Eval implements Expr.
func (a *AttrRef) Eval(env *Env) (Value, error) {
	tree, ok := env.Trees[a.Var]
	if !ok {
		return Value{}, fmt.Errorf("p2pml: unbound variable $%s", a.Var)
	}
	v, ok := tree.Attr(a.Attr)
	if !ok {
		return Value{}, errAttrMissing{a.Var, a.Attr}
	}
	return StringValue(v), nil
}

type errAttrMissing struct{ v, attr string }

func (e errAttrMissing) Error() string {
	return fmt.Sprintf("p2pml: $%s has no root attribute %q", e.v, e.attr)
}

// IsAttrMissing reports whether err is a missing-root-attribute error;
// conditions over absent attributes are false rather than fatal.
func IsAttrMissing(err error) bool {
	_, ok := err.(errAttrMissing)
	return ok
}

func (a *AttrRef) String() string { return "$" + a.Var + "." + a.Attr }

// Vars implements Expr.
func (a *AttrRef) Vars() []string { return []string{a.Var} }

// PathRef extracts a value via a tree pattern: $c1/alert/client.
type PathRef struct {
	Var  string
	Path *xpath.Path
}

// Eval implements Expr.
func (p *PathRef) Eval(env *Env) (Value, error) {
	tree, ok := env.Trees[p.Var]
	if !ok {
		return Value{}, fmt.Errorf("p2pml: unbound variable $%s", p.Var)
	}
	v, ok := evalPathRooted(p.Path, tree)
	if !ok {
		return Value{}, errAttrMissing{p.Var, p.Path.String()}
	}
	return StringValue(v), nil
}

// evalPathRooted evaluates a path against a stream item, treating the
// item's root element as the document root (so $c1/alert matches an item
// whose root is <alert>).
func evalPathRooted(p *xpath.Path, tree *xmltree.Node) (string, bool) {
	if p.Rooted {
		return p.First(tree, nil)
	}
	wrap := xmltree.Elem("#item", tree)
	return p.First(wrap, nil)
}

// matchPathRooted is the boolean form of evalPathRooted.
func matchPathRooted(p *xpath.Path, tree *xmltree.Node) bool {
	if p.Rooted {
		return p.Matches(tree, nil)
	}
	wrap := xmltree.Elem("#item", tree)
	return p.Matches(wrap, nil)
}

func (p *PathRef) String() string { return "$" + p.Var + pathSuffix(p.Path) }

// Vars implements Expr.
func (p *PathRef) Vars() []string { return []string{p.Var} }

// VarRef references a variable directly: a LET value, or the whole tree
// for a stream variable.
type VarRef struct {
	Var string
}

// Eval implements Expr.
func (v *VarRef) Eval(env *Env) (Value, error) {
	if val, ok := env.Vals[v.Var]; ok {
		return val, nil
	}
	if tree, ok := env.Trees[v.Var]; ok {
		return Value{Node: tree}, nil
	}
	return Value{}, fmt.Errorf("p2pml: unbound variable $%s", v.Var)
}

func (v *VarRef) String() string { return "$" + v.Var }

// Vars implements Expr.
func (v *VarRef) Vars() []string { return []string{v.Var} }

// Lit is a literal string or number.
type Lit struct {
	Val Value
}

// Eval implements Expr.
func (l *Lit) Eval(*Env) (Value, error) { return l.Val, nil }

func (l *Lit) String() string {
	if l.Val.IsNum {
		return strconv.FormatFloat(l.Val.Num, 'g', -1, 64)
	}
	return strconv.Quote(l.Val.Str)
}

// Vars implements Expr.
func (l *Lit) Vars() []string { return nil }

// Binary is an arithmetic expression over numbers.
type Binary struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// Eval implements Expr.
func (b *Binary) Eval(env *Env) (Value, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return Value{}, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if !l.IsNum || !r.IsNum {
		return Value{}, fmt.Errorf("p2pml: arithmetic %q needs numeric operands (got %q, %q)", string(b.Op), l.Str, r.Str)
	}
	switch b.Op {
	case '+':
		return NumValue(l.Num + r.Num), nil
	case '-':
		return NumValue(l.Num - r.Num), nil
	case '*':
		return NumValue(l.Num * r.Num), nil
	case '/':
		if r.Num == 0 {
			return Value{}, fmt.Errorf("p2pml: division by zero")
		}
		return NumValue(l.Num / r.Num), nil
	}
	return Value{}, fmt.Errorf("p2pml: unknown operator %q", string(b.Op))
}

func (b *Binary) String() string {
	return fmt.Sprintf("%s %c %s", b.L.String(), b.Op, b.R.String())
}

// Vars implements Expr.
func (b *Binary) Vars() []string { return append(b.L.Vars(), b.R.Vars()...) }

// EvalCondition evaluates one WHERE conjunct against an environment.
// Conditions referencing absent root attributes are false, not errors.
func EvalCondition(c Condition, env *Env) (bool, error) {
	switch cond := c.(type) {
	case *PathCond:
		tree, ok := env.Trees[cond.Var]
		if !ok {
			return false, fmt.Errorf("p2pml: unbound variable $%s", cond.Var)
		}
		return matchPathRooted(cond.Path, tree), nil
	case *CmpCond:
		l, err := cond.Left.Eval(env)
		if err != nil {
			if IsAttrMissing(err) {
				return false, nil
			}
			return false, err
		}
		r, err := cond.Right.Eval(env)
		if err != nil {
			if IsAttrMissing(err) {
				return false, nil
			}
			return false, err
		}
		if l.IsNum && r.IsNum {
			return xpath.Compare(l.Str, cond.Op, r.Str), nil
		}
		return xpath.Compare(l.Text(), cond.Op, r.Text()), nil
	}
	return false, fmt.Errorf("p2pml: unknown condition type %T", c)
}

// EvalLets computes the LET bindings into the environment, in order.
func EvalLets(lets []LetBinding, env *Env) error {
	for _, l := range lets {
		v, err := l.Expr.Eval(env)
		if err != nil {
			if IsAttrMissing(err) {
				// A LET over a missing attribute leaves the variable
				// unbound; conditions using it will fail to evaluate and
				// the tuple is dropped by the caller.
				continue
			}
			return err
		}
		env.Vals[l.Var] = v
	}
	return nil
}
