package p2pml

import (
	"testing"
	"testing/quick"
)

// TestQuickParseNeverPanics: the subscription parser handles arbitrary
// input with a clean error.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		sub, err := Parse(s)
		return (sub != nil) != (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParseExprNeverPanics covers the expression sub-grammar, which
// templates expose to user-controlled text.
func TestQuickParseExprNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		_, _ = ParseExpr(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseTruncations feeds every prefix of a full subscription: each
// must parse or error cleanly.
func TestParseTruncations(t *testing.T) {
	src := `for $c1 in outCOM(<p>http://a.com</p>), $c2 in inCOM(<p>m.com</p>)
let $d := $c1.responseTimestamp - $c1.callTimestamp
where $d > 10 and $c1.callId = $c2.callId
return <i c="{$c1.caller}"/>
group on "c" window "1m"
by publish as channel "x" and email "ops@m.com";`
	for cut := 0; cut <= len(src); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at cut %d: %v", cut, r)
				}
			}()
			Parse(src[:cut])
		}()
	}
	if _, err := Parse(src); err != nil {
		t.Fatalf("full source must parse: %v", err)
	}
}

// TestGroupClauseRoundTrip checks the extension clause renders and
// reparses.
func TestGroupClauseRoundTrip(t *testing.T) {
	sub := MustParse(`for $e in inCOM(<p>m</p>) return <d m="{$e.callee}"/> group on "m" window "30s" by channel C`)
	if sub.Group == nil || sub.Group.Attr != "m" || sub.Group.Window != "30s" {
		t.Fatalf("group = %+v", sub.Group)
	}
	again, err := Parse(sub.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", sub.String(), err)
	}
	if again.Group == nil || *again.Group != *sub.Group {
		t.Errorf("group lost in round trip: %+v", again.Group)
	}
}

// TestGroupClauseAggregates: the aggregate-function forms of the group
// clause parse, validate against the monoid registry, and round-trip.
func TestGroupClauseAggregates(t *testing.T) {
	cases := []struct {
		src, fn, valueAttr string
	}{
		{`group sum of "v" on "m" window "30s"`, "sum", "v"},
		{`group avg of "responseTime" on "callee" window "1m"`, "avg", "responseTime"},
		{`group distinct of "caller" on "callee" window "1m"`, "distinct", "caller"},
		{`group freq of "callMethod" on "callee" window "10s"`, "freq", "callMethod"},
		// "count" is the canonical default and normalizes away.
		{`group count on "m" window "30s"`, "", ""},
	}
	for _, c := range cases {
		sub := MustParse(`for $e in inCOM(<p>m</p>) return <d m="{$e.callee}"/> ` + c.src + ` by channel C`)
		if sub.Group == nil || sub.Group.Fn != c.fn || sub.Group.ValueAttr != c.valueAttr {
			t.Fatalf("%s: group = %+v", c.src, sub.Group)
		}
		again, err := Parse(sub.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", sub.String(), err)
		}
		if again.Group == nil || *again.Group != *sub.Group {
			t.Errorf("%s: lost in round trip: %+v vs %+v", c.src, again.Group, sub.Group)
		}
	}
	bad := []string{
		`group median of "v" on "m" window "30s"`, // unknown fn
		`group distinct on "m" window "30s"`,      // missing value attr
		`group sum of on "m" window "30s"`,        // malformed value attr
	}
	for _, b := range bad {
		if _, err := Parse(`for $e in inCOM(<p>m</p>) return <d/> ` + b); err == nil {
			t.Errorf("accepted %q", b)
		}
	}
}
