package p2pml

import (
	"fmt"
	"strings"

	"p2pm/internal/xmltree"
)

// Template is a compiled RETURN-clause XML template: literal XML with
// curly-brace-guarded expressions "evaluated at runtime" (Section 2), as
// in
//
//	<incident type="slowAnswer">
//	  <client>{$c1.caller}</client>
//	  <tstamp>{$c2.callTimestamp}</tstamp>
//	</incident>
type Template struct {
	src  string
	root *tplNode
	vars []string
}

type tplNode struct {
	label    string
	attrs    []tplAttr
	children []*tplNode
	segs     []segment // for text nodes
}

type tplAttr struct {
	name string
	segs []segment
}

type segment struct {
	lit  string
	expr Expr
}

// CompileTemplate compiles the template from its XML source. Expressions
// inside {...} use the P2PML expression grammar.
func CompileTemplate(src string) (*Template, error) {
	tree, err := xmltree.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("p2pml: template is not well-formed XML: %w", err)
	}
	t := &Template{src: src}
	root, err := t.compile(tree)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func (t *Template) compile(n *xmltree.Node) (*tplNode, error) {
	if n.IsText() {
		segs, err := parseSegments(n.Text)
		if err != nil {
			return nil, err
		}
		t.collectVars(segs)
		return &tplNode{segs: segs}, nil
	}
	out := &tplNode{label: n.Label}
	for _, a := range n.Attrs {
		segs, err := parseSegments(a.Value)
		if err != nil {
			return nil, err
		}
		t.collectVars(segs)
		out.attrs = append(out.attrs, tplAttr{name: a.Name, segs: segs})
	}
	for _, c := range n.Children {
		cc, err := t.compile(c)
		if err != nil {
			return nil, err
		}
		out.children = append(out.children, cc)
	}
	return out, nil
}

func (t *Template) collectVars(segs []segment) {
	for _, s := range segs {
		if s.expr != nil {
			t.vars = append(t.vars, s.expr.Vars()...)
		}
	}
}

// Vars returns the variables referenced anywhere in the template.
func (t *Template) Vars() []string { return t.vars }

// String returns the template source.
func (t *Template) String() string { return t.src }

// parseSegments splits "ab{expr}cd" into literal and expression segments.
func parseSegments(s string) ([]segment, error) {
	var segs []segment
	for len(s) > 0 {
		open := strings.IndexByte(s, '{')
		if open < 0 {
			segs = append(segs, segment{lit: s})
			break
		}
		if open > 0 {
			segs = append(segs, segment{lit: s[:open]})
		}
		close := strings.IndexByte(s[open:], '}')
		if close < 0 {
			return nil, fmt.Errorf("p2pml: unterminated '{' in template segment %q", s)
		}
		exprSrc := s[open+1 : open+close]
		expr, err := ParseExpr(exprSrc)
		if err != nil {
			return nil, fmt.Errorf("p2pml: bad template expression {%s}: %w", exprSrc, err)
		}
		segs = append(segs, segment{expr: expr})
		s = s[open+close+1:]
	}
	return segs, nil
}

// Instantiate evaluates the template under an environment and returns the
// output tree. An expression evaluating to a whole tree (a bare stream
// variable) is spliced as a subtree when it is the only content of a text
// position; elsewhere its text content is used.
func (t *Template) Instantiate(env *Env) (*xmltree.Node, error) {
	nodes, err := instantiate(t.root, env)
	if err != nil {
		return nil, err
	}
	if len(nodes) != 1 {
		return nil, fmt.Errorf("p2pml: template must produce exactly one root (got %d)", len(nodes))
	}
	return nodes[0], nil
}

func instantiate(n *tplNode, env *Env) ([]*xmltree.Node, error) {
	if n.label == "" {
		// Text position: single tree-valued expression splices.
		if len(n.segs) == 1 && n.segs[0].expr != nil {
			v, err := n.segs[0].expr.Eval(env)
			if err != nil {
				return nil, err
			}
			if v.Node != nil {
				return []*xmltree.Node{v.Node.Clone()}, nil
			}
			return []*xmltree.Node{xmltree.Text(v.Text())}, nil
		}
		s, err := renderSegments(n.segs, env)
		if err != nil {
			return nil, err
		}
		return []*xmltree.Node{xmltree.Text(s)}, nil
	}
	out := xmltree.Elem(n.label)
	for _, a := range n.attrs {
		s, err := renderSegments(a.segs, env)
		if err != nil {
			return nil, err
		}
		out.SetAttr(a.name, s)
	}
	for _, c := range n.children {
		nodes, err := instantiate(c, env)
		if err != nil {
			return nil, err
		}
		out.Append(nodes...)
	}
	return []*xmltree.Node{out}, nil
}

func renderSegments(segs []segment, env *Env) (string, error) {
	var b strings.Builder
	for _, s := range segs {
		if s.expr == nil {
			b.WriteString(s.lit)
			continue
		}
		v, err := s.expr.Eval(env)
		if err != nil {
			return "", err
		}
		b.WriteString(v.Text())
	}
	return b.String(), nil
}
