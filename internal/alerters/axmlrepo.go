package alerters

import (
	"sort"
	"sync"
	"time"

	"p2pm/internal/xmltree"
)

// AXMLRepo is a small ActiveXML document repository with update
// detection: the ActiveXML alerter of the paper "detects updates to the
// ActiveXML peer's repository". Every Put/Delete emits an alert:
//
//	<alert type="axml" doc="name" op="create|update|delete">[new doc]</alert>
type AXMLRepo struct {
	Base
	mu          sync.Mutex
	docs        map[string]*xmltree.Node
	includeDocs bool
}

// NewAXMLRepo builds a repository whose alerter reports to emit.
// includeDocs controls whether the new document version is embedded in
// update alerts.
func NewAXMLRepo(name string, includeDocs bool, clock func() time.Duration, emit Emit) *AXMLRepo {
	return &AXMLRepo{Base: NewBase(name, clock, emit), docs: make(map[string]*xmltree.Node), includeDocs: includeDocs}
}

// Put stores (or replaces) a document and emits a create/update alert.
// Storing an identical document is a no-op and emits nothing.
func (r *AXMLRepo) Put(name string, doc *xmltree.Node) {
	r.mu.Lock()
	prev, existed := r.docs[name]
	if existed && xmltree.Equal(prev, doc) {
		r.mu.Unlock()
		return
	}
	r.docs[name] = doc.Clone()
	r.mu.Unlock()
	op := "create"
	if existed {
		op = "update"
	}
	r.alert(name, op, doc)
}

// Delete removes a document and emits a delete alert; deleting an unknown
// document is a no-op.
func (r *AXMLRepo) Delete(name string) {
	r.mu.Lock()
	_, existed := r.docs[name]
	delete(r.docs, name)
	r.mu.Unlock()
	if existed {
		r.alert(name, "delete", nil)
	}
}

// Get returns a copy of a stored document.
func (r *AXMLRepo) Get(name string) (*xmltree.Node, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.docs[name]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// Names lists stored document names, sorted.
func (r *AXMLRepo) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.docs))
	for n := range r.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *AXMLRepo) alert(name, op string, doc *xmltree.Node) {
	n := xmltree.Elem("alert")
	n.SetAttr("type", "axml")
	n.SetAttr("doc", name)
	n.SetAttr("op", op)
	if r.includeDocs && doc != nil {
		n.Append(doc.Clone())
	}
	r.Emit(n)
}
