// Package alerters implements P2PM's event sources (Section 3.1): 0-ary
// operators placed on monitored peers that detect local events and
// produce streams of XML alerts. Each alert's root attributes carry the
// generic information that simple conditions test (call identifiers,
// timestamps, identities), while subtrees carry payloads such as SOAP
// envelopes — matching the two-part stream-item structure of Section 2.
package alerters

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"p2pm/internal/rss"
	"p2pm/internal/soap"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// Emit receives produced alerts.
type Emit func(stream.Item)

// Base carries the plumbing shared by all alerters.
type Base struct {
	mu    sync.Mutex
	name  string
	clock func() time.Duration
	emit  Emit
	seq   uint64
}

// NewBase wires an alerter core. clock may be nil (alerts are then
// stamped with zero time, useful in unit tests).
func NewBase(name string, clock func() time.Duration, emit Emit) Base {
	return Base{name: name, clock: clock, emit: emit}
}

// Name returns the alerter name.
func (b *Base) Name() string { return b.name }

// Produced returns the number of alerts emitted.
func (b *Base) Produced() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Emit stamps and emits one alert tree.
func (b *Base) Emit(tree *xmltree.Node) {
	b.mu.Lock()
	b.seq++
	seq := b.seq
	var now time.Duration
	if b.clock != nil {
		now = b.clock()
	}
	emit := b.emit
	b.mu.Unlock()
	if emit != nil {
		emit(stream.Item{Tree: tree, Seq: seq, Source: b.name, Time: now})
	}
}

// Close emits eos downstream.
func (b *Base) Close() {
	b.mu.Lock()
	emit := b.emit
	name := b.name
	b.mu.Unlock()
	if emit != nil {
		emit(stream.EOSItem(name))
	}
}

// seconds renders a duration as a decimal-seconds attribute value so that
// P2PML arithmetic like "$c1.responseTimestamp - $c1.callTimestamp" works
// numerically.
func seconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}

// endpointURL renders a peer identity as its service endpoint URL.
func endpointURL(peer string) string {
	if strings.HasPrefix(peer, "http://") || strings.HasPrefix(peer, "https://") {
		return peer
	}
	return "http://" + peer
}

// Direction selects which side of a Web service call a WS alerter
// observes.
type Direction int

// The two WS alerter kinds of the paper's FOR clause.
const (
	Inbound  Direction = iota // inCOM: calls received by the peer
	Outbound                  // outCOM: calls issued by the peer
)

func (d Direction) String() string {
	if d == Inbound {
		return "inCOM"
	}
	return "outCOM"
}

// WS is the Web service alerter: it intercepts inbound or outbound SOAP
// calls (an Axis handler in the paper) and produces alerts that include
// the SOAP envelope expanded with annotations — timestamps and
// caller/callee identifiers.
type WS struct {
	Base
	dir             Direction
	includeEnvelope bool
}

// NewWS builds a WS alerter. includeEnvelope controls whether the full
// SOAP envelope is embedded in each alert (it dominates alert size, which
// matters for the pushdown experiments).
func NewWS(name string, dir Direction, includeEnvelope bool, clock func() time.Duration, emit Emit) *WS {
	return &WS{Base: NewBase(name, clock, emit), dir: dir, includeEnvelope: includeEnvelope}
}

// Direction returns the observed direction.
func (w *WS) Direction() Direction { return w.dir }

// Hook returns the soap.Hook to attach to an endpoint (OnInbound for
// inCOM, OnOutbound for outCOM).
func (w *WS) Hook() soap.Hook {
	return func(x soap.Exchange) { w.Emit(w.alert(x)) }
}

func (w *WS) alert(x soap.Exchange) *xmltree.Node {
	n := xmltree.Elem("alert")
	if w.dir == Inbound {
		n.SetAttr("type", "ws-in")
	} else {
		n.SetAttr("type", "ws-out")
	}
	n.SetAttr("callId", x.CallID)
	n.SetAttr("callMethod", x.Method)
	// Caller/callee identities are annotated as endpoint URLs (the Axis
	// form the paper's conditions compare against, e.g. the Figure 1
	// condition $c1.callee = "http://meteo.com").
	n.SetAttr("caller", endpointURL(x.Caller))
	n.SetAttr("callee", endpointURL(x.Callee))
	n.SetAttr("callTimestamp", seconds(x.CallTime))
	n.SetAttr("responseTimestamp", seconds(x.ResponseTime))
	if x.Fault != "" {
		n.SetAttr("fault", x.Fault)
	}
	if w.includeEnvelope {
		n.Append(x.Envelope())
	}
	return n
}

// RSS is the RSS feed alerter: it polls a feed, diffs snapshots, and
// emits one alert per entry-level change with add/remove/modify
// semantics.
type RSS struct {
	Base
	url   string
	fetch func() (*rss.Feed, error)
	last  *rss.Feed
}

// NewRSS builds an RSS alerter polling the given fetch function.
func NewRSS(name, url string, fetch func() (*rss.Feed, error), clock func() time.Duration, emit Emit) *RSS {
	return &RSS{Base: NewBase(name, clock, emit), url: url, fetch: fetch}
}

// Poll fetches the feed, emits alerts for every change since the previous
// snapshot, and returns the number of alerts emitted. The first poll
// establishes the baseline without alerting (there is no previous
// snapshot to compare against).
func (r *RSS) Poll() (int, error) {
	f, err := r.fetch()
	if err != nil {
		return 0, fmt.Errorf("alerters: rss poll %s: %w", r.url, err)
	}
	if r.last == nil {
		r.last = f.Clone()
		return 0, nil
	}
	changes := rss.Diff(r.last, f)
	for _, c := range changes {
		n := xmltree.Elem("alert")
		n.SetAttr("type", "rss")
		n.SetAttr("feed", r.url)
		n.SetAttr("change", string(c.Kind))
		n.SetAttr("entryId", c.Entry.ID)
		n.Append(xmltree.Elem("item",
			xmltree.ElemText("guid", c.Entry.ID),
			xmltree.ElemText("title", c.Entry.Title),
			xmltree.ElemText("description", c.Entry.Content)))
		r.Emit(n)
	}
	r.last = f.Clone()
	return len(changes), nil
}

// WebPage is the Web page alerter: it detects changes in XML/XHTML pages
// by comparing snapshots, optionally including the delta between the two
// pages.
type WebPage struct {
	Base
	url          string
	fetch        func() (*xmltree.Node, error)
	includeDelta bool
	last         *xmltree.Node
}

// NewWebPage builds a page alerter.
func NewWebPage(name, url string, fetch func() (*xmltree.Node, error), includeDelta bool, clock func() time.Duration, emit Emit) *WebPage {
	return &WebPage{Base: NewBase(name, clock, emit), url: url, fetch: fetch, includeDelta: includeDelta}
}

// Poll fetches the page and emits one alert if it changed since the last
// snapshot. The first poll establishes the baseline.
func (w *WebPage) Poll() (bool, error) {
	page, err := w.fetch()
	if err != nil {
		return false, fmt.Errorf("alerters: page poll %s: %w", w.url, err)
	}
	if w.last == nil {
		w.last = page.Clone()
		return false, nil
	}
	if w.last.Canonical() == page.Canonical() {
		return false, nil
	}
	n := xmltree.Elem("alert")
	n.SetAttr("type", "webpage")
	n.SetAttr("url", w.url)
	if w.includeDelta {
		n.Append(pageDelta(w.last, page))
	}
	w.last = page.Clone()
	w.Emit(n)
	return true, nil
}

// pageDelta computes a top-level-children delta between two snapshots:
// subtrees present only in the old page land under <removed>, subtrees
// present only in the new page under <added>.
func pageDelta(old, new *xmltree.Node) *xmltree.Node {
	oldSet := make(map[string]int)
	for _, c := range old.Children {
		oldSet[c.Canonical()]++
	}
	newSet := make(map[string]int)
	for _, c := range new.Children {
		newSet[c.Canonical()]++
	}
	delta := xmltree.Elem("delta")
	removed := xmltree.Elem("removed")
	for _, c := range old.Children {
		key := c.Canonical()
		if newSet[key] == 0 {
			removed.Append(c.Clone())
		} else {
			newSet[key]--
		}
	}
	added := xmltree.Elem("added")
	for _, c := range new.Children {
		key := c.Canonical()
		if oldSet[key] == 0 {
			added.Append(c.Clone())
		} else {
			oldSet[key]--
		}
	}
	if len(removed.Children) > 0 {
		delta.Append(removed)
	}
	if len(added.Children) > 0 {
		delta.Append(added)
	}
	return delta
}

// Crawler drives a collection of WebPage alerters — the paper's
// "auxiliary Web crawler for the surveillance of collections of Web
// pages".
type Crawler struct {
	mu    sync.Mutex
	pages map[string]*WebPage
}

// NewCrawler returns an empty crawler.
func NewCrawler() *Crawler { return &Crawler{pages: make(map[string]*WebPage)} }

// Watch adds a page alerter under its URL.
func (c *Crawler) Watch(w *WebPage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pages[w.url] = w
}

// PollAll polls every watched page and returns how many changed. The
// first error is returned but remaining pages are still polled.
func (c *Crawler) PollAll() (int, error) {
	c.mu.Lock()
	pages := make([]*WebPage, 0, len(c.pages))
	for _, w := range c.pages {
		pages = append(pages, w)
	}
	c.mu.Unlock()
	changed := 0
	var firstErr error
	for _, w := range pages {
		ok, err := w.Poll()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ok {
			changed++
		}
	}
	return changed, firstErr
}

// Membership is the DHT membership alerter: it exports the stream of
// peers joining and leaving in exactly the paper's format:
//
//	<p-join>a.com</p-join>
//	<p-leave>a.com</p-leave>
type Membership struct {
	Base
}

// NewMembership builds a membership alerter (the areRegistered source).
func NewMembership(name string, clock func() time.Duration, emit Emit) *Membership {
	return &Membership{Base: NewBase(name, clock, emit)}
}

// NotifyJoin emits a p-join event.
func (m *Membership) NotifyJoin(peer string) {
	m.Emit(xmltree.ElemText("p-join", peer))
}

// NotifyLeave emits a p-leave event.
func (m *Membership) NotifyLeave(peer string) {
	m.Emit(xmltree.ElemText("p-leave", peer))
}
