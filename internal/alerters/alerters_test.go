package alerters

import (
	"fmt"
	"testing"
	"time"

	"p2pm/internal/rss"
	"p2pm/internal/simnet"
	"p2pm/internal/soap"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

func sinkQueue() (*stream.Queue, Emit) {
	q := stream.NewQueue()
	return q, func(it stream.Item) {
		if it.EOS() {
			q.Close()
			return
		}
		q.Push(it)
	}
}

func TestWSAlerterProducesPaperShapedAlerts(t *testing.T) {
	nw := simnet.New(simnet.DefaultOptions())
	fab := soap.NewFabric(nw)
	meteo := fab.Endpoint("meteo.com")
	meteo.Register("GetTemperature", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.ElemText("temp", "21"), nil
	}, func() time.Duration { return 11 * time.Second })
	a := fab.Endpoint("a.com")

	inQ, inEmit := sinkQueue()
	outQ, outEmit := sinkQueue()
	inAl := NewWS("in@meteo.com", Inbound, true, nw.Clock().Now, inEmit)
	outAl := NewWS("out@a.com", Outbound, true, nw.Clock().Now, outEmit)
	meteo.OnInbound(inAl.Hook())
	a.OnOutbound(outAl.Hook())

	if _, err := a.Invoke("meteo.com", "GetTemperature", xmltree.ElemText("city", "paris")); err != nil {
		t.Fatal(err)
	}
	inAl.Close()
	outAl.Close()

	inAlerts, outAlerts := inQ.Drain(), outQ.Drain()
	if len(inAlerts) != 1 || len(outAlerts) != 1 {
		t.Fatalf("in=%d out=%d", len(inAlerts), len(outAlerts))
	}
	in, out := inAlerts[0].Tree, outAlerts[0].Tree
	if in.AttrOr("type", "") != "ws-in" || out.AttrOr("type", "") != "ws-out" {
		t.Errorf("types: %s / %s", in.AttrOr("type", ""), out.AttrOr("type", ""))
	}
	if in.AttrOr("callId", "") != out.AttrOr("callId", "") {
		t.Error("same call must carry the same callId on both sides")
	}
	for _, attr := range []string{"callMethod", "caller", "callee", "callTimestamp", "responseTimestamp"} {
		if _, ok := in.Attr(attr); !ok {
			t.Errorf("missing attribute %s", attr)
		}
	}
	if in.Child("Envelope") == nil {
		t.Error("envelope missing")
	}
	// The duration is recoverable from the attributes, as Figure 1 needs.
	var callT, respT float64
	fmt.Sscanf(in.AttrOr("callTimestamp", ""), "%f", &callT)
	fmt.Sscanf(in.AttrOr("responseTimestamp", ""), "%f", &respT)
	if respT-callT <= 10 {
		t.Errorf("duration = %f, want > 10s", respT-callT)
	}
	if inAl.Produced() != 1 {
		t.Errorf("Produced = %d", inAl.Produced())
	}
}

func TestWSAlerterWithoutEnvelope(t *testing.T) {
	nw := simnet.New(simnet.DefaultOptions())
	fab := soap.NewFabric(nw)
	m := fab.Endpoint("m")
	m.Register("ping", func(*xmltree.Node) (*xmltree.Node, error) { return xmltree.Elem("pong"), nil }, nil)
	q, emit := sinkQueue()
	al := NewWS("in@m", Inbound, false, nil, emit)
	m.OnInbound(al.Hook())
	if _, err := fab.Endpoint("a").Invoke("m", "ping", nil); err != nil {
		t.Fatal(err)
	}
	al.Close()
	alerts := q.Drain()
	if len(alerts) != 1 || len(alerts[0].Tree.Children) != 0 {
		t.Errorf("alert should have no children: %v", alerts)
	}
}

func TestWSAlertFaultAttribute(t *testing.T) {
	nw := simnet.New(simnet.DefaultOptions())
	fab := soap.NewFabric(nw)
	m := fab.Endpoint("m")
	m.Register("bad", func(*xmltree.Node) (*xmltree.Node, error) {
		return nil, fmt.Errorf("backend down")
	}, nil)
	q, emit := sinkQueue()
	al := NewWS("in@m", Inbound, false, nil, emit)
	m.OnInbound(al.Hook())
	fab.Endpoint("a").Invoke("m", "bad", nil)
	al.Close()
	alerts := q.Drain()
	if len(alerts) != 1 || alerts[0].Tree.AttrOr("fault", "") != "backend down" {
		t.Errorf("alerts = %v", alerts)
	}
}

func TestRSSAlerterDiffs(t *testing.T) {
	feed := &rss.Feed{Title: "news", Entries: []rss.Entry{{ID: "1", Title: "t1"}}}
	q, emit := sinkQueue()
	al := NewRSS("rss@p", "http://p/feed", func() (*rss.Feed, error) { return feed.Clone(), nil }, nil, emit)

	// First poll: baseline, no alerts.
	if n, err := al.Poll(); err != nil || n != 0 {
		t.Fatalf("first poll n=%d err=%v", n, err)
	}
	// Add and modify.
	feed.Entries = append(feed.Entries, rss.Entry{ID: "2", Title: "t2"})
	feed.Entries[0].Title = "t1-v2"
	if n, err := al.Poll(); err != nil || n != 2 {
		t.Fatalf("second poll n=%d err=%v", n, err)
	}
	// Steady state: nothing new.
	if n, _ := al.Poll(); n != 0 {
		t.Fatalf("steady poll n=%d", n)
	}
	al.Close()
	alerts := q.Drain()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	kinds := map[string]bool{}
	for _, a := range alerts {
		if a.Tree.AttrOr("type", "") != "rss" {
			t.Errorf("type = %s", a.Tree.AttrOr("type", ""))
		}
		kinds[a.Tree.AttrOr("change", "")] = true
		if a.Tree.Child("item") == nil {
			t.Error("item payload missing")
		}
	}
	if !kinds["add"] || !kinds["modify"] {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestRSSAlerterFetchError(t *testing.T) {
	_, emit := sinkQueue()
	al := NewRSS("rss@p", "u", func() (*rss.Feed, error) { return nil, fmt.Errorf("404") }, nil, emit)
	if _, err := al.Poll(); err == nil {
		t.Error("fetch error swallowed")
	}
}

func TestWebPageAlerter(t *testing.T) {
	page := xmltree.MustParse(`<html><h1>hello</h1><p>v1</p></html>`)
	q, emit := sinkQueue()
	al := NewWebPage("wp@p", "http://p/index", func() (*xmltree.Node, error) { return page.Clone(), nil }, true, nil, emit)

	if ch, err := al.Poll(); err != nil || ch {
		t.Fatalf("baseline poll changed=%v err=%v", ch, err)
	}
	if ch, _ := al.Poll(); ch {
		t.Fatal("unchanged page reported as changed")
	}
	page.Children[1] = xmltree.MustParse(`<p>v2</p>`)
	ch, err := al.Poll()
	if err != nil || !ch {
		t.Fatalf("changed=%v err=%v", ch, err)
	}
	al.Close()
	alerts := q.Drain()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	delta := alerts[0].Tree.Child("delta")
	if delta == nil {
		t.Fatal("delta missing")
	}
	if delta.Child("removed") == nil || delta.Child("added") == nil {
		t.Errorf("delta = %s", delta)
	}
	if delta.Child("added").Children[0].InnerText() != "v2" {
		t.Errorf("added = %s", delta.Child("added"))
	}
}

func TestCrawlerPollsCollection(t *testing.T) {
	p1 := xmltree.MustParse(`<html><p>a</p></html>`)
	p2 := xmltree.MustParse(`<html><p>b</p></html>`)
	_, emit := sinkQueue()
	c := NewCrawler()
	c.Watch(NewWebPage("wp1", "u1", func() (*xmltree.Node, error) { return p1.Clone(), nil }, false, nil, emit))
	c.Watch(NewWebPage("wp2", "u2", func() (*xmltree.Node, error) { return p2.Clone(), nil }, false, nil, emit))
	if n, err := c.PollAll(); err != nil || n != 0 {
		t.Fatalf("baseline n=%d err=%v", n, err)
	}
	p1.Children[0] = xmltree.MustParse(`<p>a2</p>`)
	p2.Children[0] = xmltree.MustParse(`<p>b2</p>`)
	if n, err := c.PollAll(); err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestAXMLRepoAlerts(t *testing.T) {
	q, emit := sinkQueue()
	repo := NewAXMLRepo("axml@p", true, nil, emit)
	repo.Put("doc1", xmltree.MustParse(`<d v="1"/>`))
	repo.Put("doc1", xmltree.MustParse(`<d v="2"/>`))
	repo.Put("doc1", xmltree.MustParse(`<d v="2"/>`)) // identical: no alert
	repo.Delete("doc1")
	repo.Delete("ghost") // no alert
	repo.Close()
	alerts := q.Drain()
	if len(alerts) != 3 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	ops := []string{alerts[0].Tree.AttrOr("op", ""), alerts[1].Tree.AttrOr("op", ""), alerts[2].Tree.AttrOr("op", "")}
	if fmt.Sprint(ops) != "[create update delete]" {
		t.Errorf("ops = %v", ops)
	}
	if alerts[1].Tree.Child("d") == nil {
		t.Error("update alert should embed new doc")
	}
}

func TestAXMLRepoGetNames(t *testing.T) {
	_, emit := sinkQueue()
	repo := NewAXMLRepo("axml@p", false, nil, emit)
	repo.Put("b", xmltree.Elem("x"))
	repo.Put("a", xmltree.Elem("y"))
	if got, ok := repo.Get("a"); !ok || got.Label != "y" {
		t.Error("Get failed")
	}
	// Get returns a copy.
	got, _ := repo.Get("a")
	got.Label = "mutated"
	if again, _ := repo.Get("a"); again.Label != "y" {
		t.Error("Get leaked internal state")
	}
	if _, ok := repo.Get("ghost"); ok {
		t.Error("ghost doc found")
	}
	names := repo.Names()
	if fmt.Sprint(names) != "[a b]" {
		t.Errorf("names = %v", names)
	}
}

func TestMembershipAlerterPaperFormat(t *testing.T) {
	q, emit := sinkQueue()
	m := NewMembership("dht@s.com", nil, emit)
	m.NotifyJoin("a.com")
	m.NotifyLeave("a.com")
	m.Close()
	events := q.Drain()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Tree.String() != `<p-join>a.com</p-join>` {
		t.Errorf("join = %s", events[0].Tree)
	}
	if events[1].Tree.String() != `<p-leave>a.com</p-leave>` {
		t.Errorf("leave = %s", events[1].Tree)
	}
}

func TestBaseSequenceNumbers(t *testing.T) {
	q, emit := sinkQueue()
	b := NewBase("src", nil, emit)
	b.Emit(xmltree.Elem("a"))
	b.Emit(xmltree.Elem("b"))
	b.Close()
	items := q.Drain()
	if items[0].Seq != 1 || items[1].Seq != 2 {
		t.Errorf("seqs = %d,%d", items[0].Seq, items[1].Seq)
	}
	if items[0].Source != "src" {
		t.Errorf("source = %s", items[0].Source)
	}
}
