// Package monoid defines the mergeable aggregate states that power the
// windowed group-by operators. Each aggregate function is a commutative
// monoid: a Zero state, an Absorb step folding one stream value in, and
// an associative+commutative Merge combining two states. That algebraic
// contract is exactly what the in-network aggregation trees (PR 5) rely
// on: partial states may be split across interiors, reordered by
// failover replay, checkpointed and re-merged, and the final window is
// unchanged.
//
// States travel on the wire inside <partial> trees and checkpoint
// snapshots, so every state has a deterministic string encoding:
// Encode is a pure function of the abstract state (never of absorb or
// merge order), and Decode validates untrusted input — a corrupt or
// replayed partial is rejected rather than merged.
//
// Exact monoids (count, sum, min, max, avg, set) reproduce the flat
// operator bit-for-bit. Sketch monoids (distinct = HyperLogLog, freq =
// Count-Min + candidate set) trade bounded relative error for
// constant-size states regardless of stream cardinality — the property
// that lets a monitoring tree scale to millions of users (Section 6 of
// the paper; cf. the distributed entropy-monitoring estimators in
// PAPERS.md).
package monoid

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// State is one aggregate accumulator. Implementations are NOT
// concurrency-safe; the owning operator serializes access.
type State interface {
	// Absorb folds one raw stream value into the state. For value-less
	// aggregates (count) the value is ignored. A value the aggregate
	// cannot use (e.g. non-numeric input to sum) returns an error and
	// leaves the state unchanged; the operator counts it as dropped.
	Absorb(val string) error
	// Merge combines another state of the same monoid into this one.
	// Merge is associative and commutative up to Encode equality.
	Merge(other State) error
	// Encode renders the state as a deterministic wire string: equal
	// abstract states encode to equal bytes regardless of the
	// absorb/merge order that produced them.
	Encode() string
	// Final emits the aggregate result as record attributes via set.
	Final(set func(attr, val string))
}

// Monoid names an aggregate function and constructs/decodes its states.
type Monoid interface {
	Name() string
	// Zero returns a fresh identity state.
	Zero() State
	// Decode parses a wire encoding produced by Encode, rejecting
	// malformed or out-of-domain input (negative counts, bad lengths).
	Decode(enc string) (State, error)
	// Exact reports whether the aggregate is exact (true) or a bounded
	// -error sketch (false).
	Exact() bool
	// NeedsValue reports whether the aggregate consumes a value
	// attribute (everything except count).
	NeedsValue() bool
}

// registry holds the built-in aggregate functions. It is populated at
// init time and read-only afterwards, so lookups need no lock.
var registry = map[string]Monoid{}

func register(m Monoid) { registry[m.Name()] = m }

// Lookup resolves an aggregate function by name. The empty name is the
// historical default, count.
func Lookup(name string) (Monoid, bool) {
	if name == "" {
		name = "count"
	}
	m, ok := registry[name]
	return m, ok
}

// Names lists the registered aggregate functions, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	register(countMonoid{})
	register(sumMonoid{})
	register(extremumMonoid{name: "min"})
	register(extremumMonoid{name: "max"})
	register(avgMonoid{})
	register(setMonoid{})
	register(hllMonoid{})
	register(freqMonoid{})
}

func mismatch(want string, got State) error {
	return fmt.Errorf("monoid: cannot merge %T into %s state", got, want)
}

// ---------------------------------------------------------------------
// count — the PR 5 aggregate. Its encoding is the bare decimal that
// PartialAgg/MergeAgg already shipped as the n attribute, so count
// partials and checkpoints remain byte-identical to the map[string]int
// era.

type countMonoid struct{}

func (countMonoid) Name() string     { return "count" }
func (countMonoid) Exact() bool      { return true }
func (countMonoid) NeedsValue() bool { return false }
func (countMonoid) Zero() State      { return &countState{} }
func (countMonoid) Decode(enc string) (State, error) {
	n, err := strconv.ParseInt(enc, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("count: bad state %q: %w", enc, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("count: negative state %q", enc)
	}
	return &countState{n: n}, nil
}

type countState struct{ n int64 }

func (s *countState) Absorb(string) error { s.n++; return nil }
func (s *countState) Merge(other State) error {
	o, ok := other.(*countState)
	if !ok {
		return mismatch("count", other)
	}
	s.n += o.n
	return nil
}
func (s *countState) Encode() string { return strconv.FormatInt(s.n, 10) }
func (s *countState) Final(set func(attr, val string)) {
	set("count", strconv.FormatInt(s.n, 10))
}

// ---------------------------------------------------------------------
// sum / min / max / avg — exact numeric aggregates over int64 values.
// Integer arithmetic keeps Merge exactly associative (float addition is
// not), which the byte-identity gate across churn schedules depends on.

func parseValue(val string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("monoid: non-integer value %q", val)
	}
	return v, nil
}

type sumMonoid struct{}

func (sumMonoid) Name() string     { return "sum" }
func (sumMonoid) Exact() bool      { return true }
func (sumMonoid) NeedsValue() bool { return true }
func (sumMonoid) Zero() State      { return &sumState{} }
func (sumMonoid) Decode(enc string) (State, error) {
	if enc == "" {
		return &sumState{}, nil
	}
	parts := strings.SplitN(enc, "/", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("sum: bad state %q", enc)
	}
	sum, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("sum: bad state %q: %w", enc, err)
	}
	n, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("sum: bad state %q", enc)
	}
	return &sumState{sum: sum, n: n}, nil
}

// sumState carries the contribution count alongside the running sum so
// the empty state ("" on the wire) is distinguishable from a sum of 0.
type sumState struct {
	sum int64
	n   int64
}

func (s *sumState) Absorb(val string) error {
	v, err := parseValue(val)
	if err != nil {
		return err
	}
	s.sum += v
	s.n++
	return nil
}
func (s *sumState) Merge(other State) error {
	o, ok := other.(*sumState)
	if !ok {
		return mismatch("sum", other)
	}
	s.sum += o.sum
	s.n += o.n
	return nil
}
func (s *sumState) Encode() string {
	if s.n == 0 {
		return ""
	}
	return strconv.FormatInt(s.sum, 10) + "/" + strconv.FormatInt(s.n, 10)
}
func (s *sumState) Final(set func(attr, val string)) {
	set("sum", strconv.FormatInt(s.sum, 10))
}

type extremumMonoid struct{ name string }

func (m extremumMonoid) Name() string   { return m.name }
func (extremumMonoid) Exact() bool      { return true }
func (extremumMonoid) NeedsValue() bool { return true }
func (m extremumMonoid) Zero() State    { return &extremumState{attr: m.name, max: m.name == "max"} }
func (m extremumMonoid) Decode(enc string) (State, error) {
	s := m.Zero().(*extremumState)
	if enc == "" {
		return s, nil
	}
	v, err := strconv.ParseInt(enc, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%s: bad state %q: %w", m.name, enc, err)
	}
	s.set, s.v = true, v
	return s, nil
}

type extremumState struct {
	attr string
	max  bool
	set  bool
	v    int64
}

func (s *extremumState) take(v int64) {
	if !s.set || (s.max && v > s.v) || (!s.max && v < s.v) {
		s.set, s.v = true, v
	}
}
func (s *extremumState) Absorb(val string) error {
	v, err := parseValue(val)
	if err != nil {
		return err
	}
	s.take(v)
	return nil
}
func (s *extremumState) Merge(other State) error {
	o, ok := other.(*extremumState)
	if !ok || o.max != s.max {
		return mismatch(s.attr, other)
	}
	if o.set {
		s.take(o.v)
	}
	return nil
}
func (s *extremumState) Encode() string {
	if !s.set {
		return ""
	}
	return strconv.FormatInt(s.v, 10)
}
func (s *extremumState) Final(set func(attr, val string)) {
	if s.set {
		set(s.attr, strconv.FormatInt(s.v, 10))
	} else {
		set(s.attr, "")
	}
}

type avgMonoid struct{}

func (avgMonoid) Name() string     { return "avg" }
func (avgMonoid) Exact() bool      { return true }
func (avgMonoid) NeedsValue() bool { return true }
func (avgMonoid) Zero() State      { return &avgState{} }
func (avgMonoid) Decode(enc string) (State, error) {
	st, err := sumMonoid{}.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("avg: %w", err)
	}
	s := st.(*sumState)
	return &avgState{sum: s.sum, n: s.n}, nil
}

// avgState is {sum, n}; the division happens only at Final, rendered
// with a fixed format so equal states always print identical bytes.
type avgState struct {
	sum int64
	n   int64
}

func (s *avgState) Absorb(val string) error {
	v, err := parseValue(val)
	if err != nil {
		return err
	}
	s.sum += v
	s.n++
	return nil
}
func (s *avgState) Merge(other State) error {
	o, ok := other.(*avgState)
	if !ok {
		return mismatch("avg", other)
	}
	s.sum += o.sum
	s.n += o.n
	return nil
}
func (s *avgState) Encode() string {
	if s.n == 0 {
		return ""
	}
	return strconv.FormatInt(s.sum, 10) + "/" + strconv.FormatInt(s.n, 10)
}
func (s *avgState) Final(set func(attr, val string)) {
	if s.n == 0 {
		set("avg", "")
		return
	}
	set("avg", strconv.FormatFloat(float64(s.sum)/float64(s.n), 'g', -1, 64))
	set("n", strconv.FormatInt(s.n, 10))
}

// ---------------------------------------------------------------------
// set — exact distinct count. The state is the full value set, so its
// size grows with stream cardinality; it exists as the exact baseline
// the HyperLogLog sketch is judged against (X4's accuracy-vs-bytes
// axis) and for small-domain queries where exactness is cheap.

type setMonoid struct{}

func (setMonoid) Name() string     { return "set" }
func (setMonoid) Exact() bool      { return true }
func (setMonoid) NeedsValue() bool { return true }
func (setMonoid) Zero() State      { return &setState{vals: map[string]struct{}{}} }
func (setMonoid) Decode(enc string) (State, error) {
	s := &setState{vals: map[string]struct{}{}}
	if enc == "" {
		return s, nil
	}
	for _, part := range strings.Split(enc, ",") {
		v, err := url.QueryUnescape(part)
		if err != nil || v == "" {
			return nil, fmt.Errorf("set: bad state element %q", part)
		}
		s.vals[v] = struct{}{}
	}
	return s, nil
}

type setState struct{ vals map[string]struct{} }

func (s *setState) Absorb(val string) error {
	if val == "" {
		return fmt.Errorf("set: empty value")
	}
	s.vals[val] = struct{}{}
	return nil
}
func (s *setState) Merge(other State) error {
	o, ok := other.(*setState)
	if !ok {
		return mismatch("set", other)
	}
	for v := range o.vals {
		s.vals[v] = struct{}{}
	}
	return nil
}
func (s *setState) Encode() string {
	if len(s.vals) == 0 {
		return ""
	}
	parts := make([]string, 0, len(s.vals))
	for v := range s.vals {
		parts = append(parts, url.QueryEscape(v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
func (s *setState) Final(set func(attr, val string)) {
	set("distinct", strconv.Itoa(len(s.vals)))
}
