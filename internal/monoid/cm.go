package monoid

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// freq — heavy hitters via a Count-Min sketch plus a bounded candidate
// set (Cormode & Muthukrishnan 2005). The sketch gives an
// overestimate-only frequency oracle in O(depth × width) space; the
// candidate set remembers up to cmCandidates concrete values so the
// final record can name the heavy hitters, pruned by sketch estimate
// whenever it overflows. Sketch counters merge by elementwise addition
// (exactly associative/commutative); candidate pruning is the one
// deliberate approximation — with at most cmCandidates distinct values
// the monoid is exact and merge-order independent, beyond that the
// reported tail may depend on merge order while the per-value estimates
// keep the Count-Min ε-δ guarantee.

const (
	cmDepth      = 4
	cmWidth      = 512
	cmCandidates = 32
	cmTopK       = 8
)

type freqMonoid struct{}

func (freqMonoid) Name() string     { return "freq" }
func (freqMonoid) Exact() bool      { return false }
func (freqMonoid) NeedsValue() bool { return true }
func (freqMonoid) Zero() State      { return newFreqState() }

func (freqMonoid) Decode(enc string) (State, error) {
	s := newFreqState()
	if enc == "" {
		return s, nil
	}
	sketch, cands, ok := strings.Cut(enc, "|")
	if !ok {
		return nil, fmt.Errorf("freq: bad state %q", enc)
	}
	if sketch != "" {
		for _, part := range strings.Split(sketch, ";") {
			pos, count, ok := strings.Cut(part, ":")
			rs, cs, ok2 := strings.Cut(pos, ".")
			r, err1 := strconv.Atoi(rs)
			c, err2 := strconv.Atoi(cs)
			v, err3 := strconv.ParseInt(count, 10, 64)
			if !ok || !ok2 || err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("freq: bad sketch cell %q", part)
			}
			if r < 0 || r >= cmDepth || c < 0 || c >= cmWidth || v < 1 {
				return nil, fmt.Errorf("freq: out-of-range sketch cell %q", part)
			}
			s.cells[r][c] += v
		}
	}
	if cands != "" {
		for _, part := range strings.Split(cands, ",") {
			v, err := url.QueryUnescape(part)
			if err != nil || v == "" {
				return nil, fmt.Errorf("freq: bad candidate %q", part)
			}
			s.cands[v] = struct{}{}
		}
		if len(s.cands) > cmCandidates {
			return nil, fmt.Errorf("freq: %d candidates exceeds cap %d", len(s.cands), cmCandidates)
		}
	}
	return s, nil
}

type freqState struct {
	cells [cmDepth][cmWidth]int64
	cands map[string]struct{}
}

func newFreqState() *freqState {
	return &freqState{cands: map[string]struct{}{}}
}

// cmHash derives the per-row bucket indexes from two independent FNV
// hashes (Kirsch–Mitzenmacher double hashing).
func cmHash(val string) (rows [cmDepth]int) {
	h := fnv.New64a()
	h.Write([]byte(val))
	h1 := mix64(h.Sum64())
	h.Write([]byte{0x9e})
	h2 := mix64(h.Sum64()) | 1
	for i := 0; i < cmDepth; i++ {
		rows[i] = int((h1 + uint64(i)*h2) % cmWidth)
	}
	return rows
}

func (s *freqState) estimate(val string) int64 {
	rows := cmHash(val)
	est := s.cells[0][rows[0]]
	for i := 1; i < cmDepth; i++ {
		if v := s.cells[i][rows[i]]; v < est {
			est = v
		}
	}
	return est
}

// prune drops the weakest candidates until the cap holds, keeping the
// highest sketch estimates (ties broken by value so the survivors are
// deterministic for a given merged sketch).
func (s *freqState) prune() {
	if len(s.cands) <= cmCandidates {
		return
	}
	type ce struct {
		v   string
		est int64
	}
	all := make([]ce, 0, len(s.cands))
	for v := range s.cands {
		all = append(all, ce{v, s.estimate(v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].est != all[j].est {
			return all[i].est > all[j].est
		}
		return all[i].v < all[j].v
	})
	for _, e := range all[cmCandidates:] {
		delete(s.cands, e.v)
	}
}

func (s *freqState) Absorb(val string) error {
	if val == "" {
		return fmt.Errorf("freq: empty value")
	}
	rows := cmHash(val)
	for i := 0; i < cmDepth; i++ {
		s.cells[i][rows[i]]++
	}
	s.cands[val] = struct{}{}
	s.prune()
	return nil
}

func (s *freqState) Merge(other State) error {
	o, ok := other.(*freqState)
	if !ok {
		return mismatch("freq", other)
	}
	for i := range s.cells {
		for j := range s.cells[i] {
			s.cells[i][j] += o.cells[i][j]
		}
	}
	for v := range o.cands {
		s.cands[v] = struct{}{}
	}
	s.prune()
	return nil
}

func (s *freqState) Encode() string {
	var b strings.Builder
	first := true
	for i := range s.cells {
		for j, v := range s.cells[i] {
			if v == 0 {
				continue
			}
			if !first {
				b.WriteByte(';')
			}
			first = false
			fmt.Fprintf(&b, "%d.%d:%d", i, j, v)
		}
	}
	if first && len(s.cands) == 0 {
		return ""
	}
	b.WriteByte('|')
	parts := make([]string, 0, len(s.cands))
	for v := range s.cands {
		parts = append(parts, url.QueryEscape(v))
	}
	sort.Strings(parts)
	b.WriteString(strings.Join(parts, ","))
	return b.String()
}

// Top returns up to k candidates ordered by estimated frequency
// (descending, ties by value).
func (s *freqState) Top(k int) []struct {
	Val string
	Est int64
} {
	type ce struct {
		Val string
		Est int64
	}
	all := make([]ce, 0, len(s.cands))
	for v := range s.cands {
		all = append(all, ce{v, s.estimate(v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Est != all[j].Est {
			return all[i].Est > all[j].Est
		}
		return all[i].Val < all[j].Val
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]struct {
		Val string
		Est int64
	}, len(all))
	for i, e := range all {
		out[i] = struct {
			Val string
			Est int64
		}{e.Val, e.Est}
	}
	return out
}

func (s *freqState) Final(set func(attr, val string)) {
	top := s.Top(cmTopK)
	parts := make([]string, len(top))
	for i, e := range top {
		parts[i] = url.QueryEscape(e.Val) + ":" + strconv.FormatInt(e.Est, 10)
	}
	set("top", strings.Join(parts, " "))
}
