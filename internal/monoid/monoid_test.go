package monoid

import (
	"fmt"
	"strconv"
	"testing"
)

// values returns a deterministic pseudo-random value stream: decimal
// strings drawn from a universe of the given size, so every monoid
// (numeric and set-like alike) can absorb them.
func values(n, universe, salt int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = strconv.Itoa(1 + ((i+salt)*7919)%universe)
	}
	return out
}

func absorbAll(t *testing.T, m Monoid, vals []string) State {
	t.Helper()
	s := m.Zero()
	for _, v := range vals {
		if err := s.Absorb(v); err != nil {
			t.Fatalf("%s: absorb %q: %v", m.Name(), v, err)
		}
	}
	return s
}

func merged(t *testing.T, m Monoid, a, b State) State {
	t.Helper()
	// Merge through the wire: states round-trip before merging, like
	// partials crossing the network do.
	s, err := m.Decode(a.Encode())
	if err != nil {
		t.Fatalf("%s: decode own encoding %q: %v", m.Name(), a.Encode(), err)
	}
	o, err := m.Decode(b.Encode())
	if err != nil {
		t.Fatalf("%s: decode own encoding %q: %v", m.Name(), b.Encode(), err)
	}
	if err := s.Merge(o); err != nil {
		t.Fatalf("%s: merge: %v", m.Name(), err)
	}
	return s
}

func finals(s State) string {
	out := ""
	s.Final(func(a, v string) { out += a + "=" + v + " " })
	return out
}

// TestMonoidLaws checks, for every registered monoid, the properties the
// aggregation tree rests on: Encode/Decode round-trips bit-for-bit,
// Merge is commutative and associative over the wire, absorbing a
// partitioned stream then merging equals absorbing the union, and the
// zero state is the Merge identity.
func TestMonoidLaws(t *testing.T) {
	for _, name := range append([]string{""}, Names()...) {
		m, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		t.Run(m.Name(), func(t *testing.T) {
			vals := values(200, 37, 3)
			whole := absorbAll(t, m, vals)

			// Round-trip: decode(encode(s)) encodes identically.
			rt, err := m.Decode(whole.Encode())
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if rt.Encode() != whole.Encode() {
				t.Errorf("round-trip drifted: %q vs %q", rt.Encode(), whole.Encode())
			}

			// Partition into three, merge in both orders and groupings.
			a := absorbAll(t, m, vals[:50])
			b := absorbAll(t, m, vals[50:120])
			c := absorbAll(t, m, vals[120:])
			ab := merged(t, m, a, b)
			ba := merged(t, m, b, a)
			if ab.Encode() != ba.Encode() {
				t.Errorf("merge not commutative: %q vs %q", ab.Encode(), ba.Encode())
			}
			left := merged(t, m, ab, c)
			right := merged(t, m, a, merged(t, m, b, c))
			if left.Encode() != right.Encode() {
				t.Errorf("merge not associative: %q vs %q", left.Encode(), right.Encode())
			}
			if left.Encode() != whole.Encode() {
				t.Errorf("partitioned absorb+merge != whole absorb: %q vs %q", left.Encode(), whole.Encode())
			}
			if finals(left) != finals(whole) {
				t.Errorf("finals differ: %q vs %q", finals(left), finals(whole))
			}

			// Zero is the identity and encodes/decodes cleanly.
			z := merged(t, m, whole, m.Zero())
			if z.Encode() != whole.Encode() {
				t.Errorf("zero not identity: %q vs %q", z.Encode(), whole.Encode())
			}
			if _, err := m.Decode(m.Zero().Encode()); err != nil {
				t.Errorf("zero does not round-trip: %v", err)
			}

			// Merging a state of a different monoid is a type error.
			for _, otherName := range Names() {
				other, _ := Lookup(otherName)
				if other.Name() == m.Name() {
					continue
				}
				if err := whole.Merge(other.Zero()); err == nil {
					t.Errorf("merged a %s state into %s", other.Name(), m.Name())
				}
			}
		})
	}
}

// TestCountDecodeRejects: the wire validator refuses negative and
// overflowing counts — a malformed partial lands in the dropped counter
// instead of corrupting a window.
func TestCountDecodeRejects(t *testing.T) {
	m, _ := Lookup("")
	for _, bad := range []string{"-1", "-99999", "9223372036854775808", "1.5", "1e3", "", "x", "1 "} {
		if _, err := m.Decode(bad); err == nil {
			t.Errorf("count accepted %q", bad)
		}
	}
	s, err := m.Decode("42")
	if err != nil || s.Encode() != "42" {
		t.Errorf("count rejected a valid state: %v, %q", err, s.Encode())
	}
}

// TestDecodeRejectsGarbage feeds each monoid malformed encodings; all
// must be refused, never half-parsed.
func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]string{
		"sum":      {"x", "1/", "/2", "1/2/3", "1/-2", "5/0x2", "9223372036854775808/1"},
		"avg":      {"x", "3/", "1/2/3", "4/-1"},
		"min":      {"1x", "0.5", " 3"},
		"max":      {"1x", "--2", "3 "},
		"set":      {"%zz", "a,%"},
		"distinct": {"q", "sX:1", "s4096:3", "s1:0", "s1:65", "d1234", "s1:2,", "dzz"},
		"freq":     {"junk", "9.0:1|", "0.512:1|", "0.1:-3|", "0.1:x|a", "|" + tooManyCandidates()},
	}
	for name, bads := range cases {
		m, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		for _, bad := range bads {
			if _, err := m.Decode(bad); err == nil {
				t.Errorf("%s accepted %q", name, bad)
			}
		}
	}
}

func tooManyCandidates() string {
	out := ""
	for i := 0; i < 40; i++ {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("v%d", i)
	}
	return out
}

// TestHLLAccuracy: the estimate tracks the true cardinality within the
// documented tolerance at the scales the workloads use. Deterministic —
// the registers depend only on the value set.
func TestHLLAccuracy(t *testing.T) {
	m, _ := Lookup("distinct")
	for _, n := range []int{1, 10, 100, 1000, 5000} {
		s := m.Zero()
		for i := 0; i < n; i++ {
			if err := s.Absorb(fmt.Sprintf("user-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		got := ""
		s.Final(func(a, v string) {
			if a == "distinct" {
				got = v
			}
		})
		est, err := strconv.ParseFloat(got, 64)
		if err != nil {
			t.Fatalf("n=%d: bad estimate %q", n, got)
		}
		re := (est - float64(n)) / float64(n)
		if re < 0 {
			re = -re
		}
		if re > 0.05 {
			t.Errorf("n=%d: estimate %s off by %.1f%%", n, got, re*100)
		}
	}
}

// TestHLLDenseSparseAgree: the two encodings of the same registers merge
// and estimate identically — a dense partial meeting a sparse one is the
// normal mid-window migration case.
func TestHLLDenseSparseAgree(t *testing.T) {
	m, _ := Lookup("distinct")
	sparse := m.Zero()
	for i := 0; i < 20; i++ {
		sparse.Absorb(fmt.Sprintf("s%d", i)) //nolint:errcheck
	}
	dense := m.Zero()
	for i := 0; i < 3000; i++ {
		dense.Absorb(fmt.Sprintf("d%d", i)) //nolint:errcheck
	}
	if sparse.Encode()[0] != 's' || dense.Encode()[0] != 'd' {
		t.Fatalf("expected sparse+dense encodings, got %q / %q", sparse.Encode()[:1], dense.Encode()[:1])
	}
	ab := merged(t, m, sparse, dense)
	ba := merged(t, m, dense, sparse)
	if ab.Encode() != ba.Encode() || finals(ab) != finals(ba) {
		t.Errorf("sparse/dense merge order changed the state: %q vs %q", finals(ab), finals(ba))
	}
}

// TestFreqExactWithinCapacity: while a group's distinct values fit the
// candidate set, the top-k report is exact and order-independent.
func TestFreqExactWithinCapacity(t *testing.T) {
	m, _ := Lookup("freq")
	s := m.Zero()
	// value i appears i times: a clean frequency ladder.
	for v := 1; v <= 10; v++ {
		for i := 0; i < v; i++ {
			if err := s.Absorb(strconv.Itoa(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	top := ""
	s.Final(func(a, v string) {
		if a == "top" {
			top = v
		}
	})
	want := "10:10 9:9 8:8 7:7 6:6 5:5 4:4 3:3"
	if top != want {
		t.Errorf("top = %q, want %q", top, want)
	}
}
