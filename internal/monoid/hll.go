package monoid

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"strconv"
	"strings"
)

// distinct — HyperLogLog distinct-count sketch (Flajolet et al. 2007,
// with the small-range linear-counting correction from Heule et al.'s
// HLL++ analysis). Precision p=12 gives m=4096 one-byte registers: the
// state is at most ~8 KB encoded no matter how many distinct values the
// stream carries, and the asymptotic standard error is 1.04/sqrt(m) ≈
// 1.6% — inside the soak gate's 2% tolerance. Merge is elementwise
// register max, which is associative, commutative and idempotent, so
// the sketch is a true monoid and survives replay/re-merge unchanged.

const (
	hllP = 12
	hllM = 1 << hllP
	// hllSparseMax is the largest number of non-zero registers encoded
	// in the sparse "i:v,..." form; beyond it the dense hex form (fixed
	// 2*m+1 bytes) is smaller per register and bounds the state size.
	hllSparseMax = hllM / 8
)

type hllMonoid struct{}

func (hllMonoid) Name() string     { return "distinct" }
func (hllMonoid) Exact() bool      { return false }
func (hllMonoid) NeedsValue() bool { return true }
func (hllMonoid) Zero() State      { return &hllState{} }

func (hllMonoid) Decode(enc string) (State, error) {
	s := &hllState{}
	if enc == "" {
		return s, nil
	}
	switch enc[0] {
	case 's':
		body := enc[1:]
		if body == "" {
			return s, nil
		}
		for _, part := range strings.Split(body, ",") {
			iv := strings.SplitN(part, ":", 2)
			if len(iv) != 2 {
				return nil, fmt.Errorf("distinct: bad sparse cell %q", part)
			}
			i, err := strconv.Atoi(iv[0])
			if err != nil || i < 0 || i >= hllM {
				return nil, fmt.Errorf("distinct: bad register index %q", part)
			}
			v, err := strconv.Atoi(iv[1])
			if err != nil || v < 1 || v > 64-hllP+1 {
				return nil, fmt.Errorf("distinct: bad register value %q", part)
			}
			if byte(v) > s.reg[i] {
				s.reg[i] = byte(v)
			}
		}
		return s, nil
	case 'd':
		body := enc[1:]
		if len(body) != 2*hllM {
			return nil, fmt.Errorf("distinct: dense state has %d hex chars, want %d", len(body), 2*hllM)
		}
		for i := 0; i < hllM; i++ {
			v, err := strconv.ParseUint(body[2*i:2*i+2], 16, 8)
			if err != nil || v > 64-hllP+1 {
				return nil, fmt.Errorf("distinct: bad dense register %d", i)
			}
			s.reg[i] = byte(v)
		}
		return s, nil
	}
	return nil, fmt.Errorf("distinct: bad state prefix %q", enc[:1])
}

type hllState struct {
	reg [hllM]byte
}

// mix64 is a 64-bit finalizer (the murmur3 fmix64 constants): FNV's
// high-order bits avalanche poorly on short, similar keys, and the
// register index comes from exactly those bits — without this mix a
// handful of registers absorbs the whole value universe and the
// estimate collapses.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func hllHash(val string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(val))
	return mix64(h.Sum64())
}

func (s *hllState) Absorb(val string) error {
	if val == "" {
		return fmt.Errorf("distinct: empty value")
	}
	h := hllHash(val)
	i := h >> (64 - hllP)
	w := h << hllP
	var rank byte
	if w == 0 {
		rank = 64 - hllP + 1
	} else {
		rank = byte(bits.LeadingZeros64(w)) + 1
	}
	if rank > s.reg[i] {
		s.reg[i] = rank
	}
	return nil
}

func (s *hllState) Merge(other State) error {
	o, ok := other.(*hllState)
	if !ok {
		return mismatch("distinct", other)
	}
	for i := range s.reg {
		if o.reg[i] > s.reg[i] {
			s.reg[i] = o.reg[i]
		}
	}
	return nil
}

// Estimate returns the cardinality estimate, rounded to an integer.
func (s *hllState) Estimate() int64 {
	var sum float64
	zeros := 0
	for _, r := range s.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/float64(hllM))
	e := alpha * hllM * hllM / sum
	// Small-range correction: linear counting is far more accurate
	// while empty registers remain. With a 64-bit hash no large-range
	// correction is needed at monitoring scales.
	if e <= 2.5*hllM && zeros > 0 {
		e = hllM * math.Log(float64(hllM)/float64(zeros))
	}
	return int64(math.Round(e))
}

func (s *hllState) Encode() string {
	nonzero := 0
	for _, r := range s.reg {
		if r != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		return ""
	}
	var b strings.Builder
	if nonzero <= hllSparseMax {
		b.WriteByte('s')
		first := true
		for i, r := range s.reg {
			if r == 0 {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(strconv.Itoa(i))
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(int(r)))
		}
		return b.String()
	}
	b.WriteByte('d')
	const hex = "0123456789abcdef"
	for _, r := range s.reg {
		b.WriteByte(hex[r>>4])
		b.WriteByte(hex[r&0xf])
	}
	return b.String()
}

func (s *hllState) Final(set func(attr, val string)) {
	set("distinct", strconv.FormatInt(s.Estimate(), 10))
}
