package reuse

import (
	"fmt"
	"testing"

	"p2pm/internal/algebra"
	"p2pm/internal/dht"
	"p2pm/internal/kadop"
	"p2pm/internal/p2pml"
	"p2pm/internal/stream"
)

// TestChannelNodeKeepsOriginalForUnknownConsumer: when a covered node has
// no concrete placement yet (AnyPeer) and Options.Consumer is unset, the
// chooser cannot be given a meaningful consumer — a distance-based policy
// would score distance("", ·). The rewrite must keep the original
// provider and must not invoke the chooser at all.
func TestChannelNodeKeepsOriginalForUnknownConsumer(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q"
	return $e by publish as channel "base"`, "p1")
	refs, err := PublishPlan(db, first, idGen())
	if err != nil {
		t.Fatal(err)
	}
	var sigmaRef stream.Ref
	first.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpSelect {
			sigmaRef = refs[n]
		}
	})
	replica := stream.Ref{PeerID: "nearby.com", StreamID: "rep1"}
	if err := db.PublishReplica(sigmaRef, replica); err != nil {
		t.Fatal(err)
	}

	// Same filter, different Π, compiled but *not* optimized: no operator
	// has a concrete placement, so the consumer of the reused stream is
	// unknown.
	sub := p2pml.MustParse(`for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q"
	return <q/> by publish as channel "other"`)
	plan, err := algebra.Compile(sub)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	choose := func(consumer string, orig stream.Ref, reps []stream.Ref) stream.Ref {
		calls++
		if consumer == "" {
			t.Error("chooser invoked with empty consumer")
		}
		if len(reps) > 0 {
			return reps[0]
		}
		return orig
	}
	res, err := Options{From: "dht-0", Choose: choose}.Apply(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	var chIn *algebra.Node
	res.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn {
			chIn = n
		}
	})
	if chIn == nil {
		t.Fatalf("no substitution:\n%s", res.Plan.Tree())
	}
	if chIn.Channel != sigmaRef {
		t.Errorf("provider = %v, want original %v (replica must not be chosen for an unknown consumer)", chIn.Channel, sigmaRef)
	}
	if calls != 0 {
		t.Errorf("chooser invoked %d times with no known consumer", calls)
	}
}

// TestFailedReplicaLookupRecordedNotFatal: a corrupt replica record makes
// db.Replicas fail. The rewrite must fall back to the original provider
// (not abort, not consult the chooser with a broken replica set) and
// surface the failure in Result.FailedLookups.
func TestFailedReplicaLookupRecordedNotFatal(t *testing.T) {
	ring := dht.New()
	for i := 0; i < 8; i++ {
		if err := ring.Join(fmt.Sprintf("dht-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	db := kadop.New(ring)
	first := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q"
	return $e by publish as channel "base"`, "p1")
	refs, err := PublishPlan(db, first, idGen())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every published stream's replica record: whichever node the
	// rewrite substitutes, its replica lookup fails.
	for _, ref := range refs {
		if err := ring.Put("replica|"+ref.String(), "<x/>"); err != nil {
			t.Fatal(err)
		}
	}

	second := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q"
	return $e by publish as channel "other"`, "p2")
	calls := 0
	choose := func(consumer string, orig stream.Ref, reps []stream.Ref) stream.Ref {
		calls++
		return orig
	}
	res, err := Options{From: "dht-0", Consumer: "p2", Choose: choose}.Apply(second, db)
	if err != nil {
		t.Fatalf("failed replica lookup must not abort the rewrite: %v", err)
	}
	if res.FailedLookups == 0 {
		t.Error("failed replica lookup not recorded in Result.FailedLookups")
	}
	if calls != 0 {
		t.Errorf("chooser invoked %d times over a failed replica set", calls)
	}
	for _, m := range res.Mappings {
		if m.Provider != m.Original || m.IsReplica {
			t.Errorf("mapping %+v: must keep the original provider when the replica set is unknown", m)
		}
	}
}

// TestSubsumeProviderChoiceDeterministic: two covering filters of equal
// width are a tie; the choice must depend only on DB contents — same
// descriptors inserted in a different order must yield the identical
// Mapping (two managers resolving the same subscription pick the same
// provider). The tie breaks toward the lexicographically smallest
// stream reference.
func TestSubsumeProviderChoiceDeterministic(t *testing.T) {
	baseSrc := `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q"
	return $e by publish as channel "cq"`
	altSrc := `for $e in inCOM(<p>m.com</p>)
	where $e.fault != ""
	return $e by publish as channel "cf"`
	target := `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q" and $e.fault != ""
	return $e by publish as channel "both"`

	// Build the descriptor set once, then replay it into fresh databases
	// in both orders: identical contents, shuffled insertion.
	seed := newDB(t)
	gen := idGen()
	for _, src := range []string{baseSrc, altSrc} {
		if _, err := PublishPlan(seed, compile(t, src, "p1"), gen); err != nil {
			t.Fatal(err)
		}
	}
	var defs []*kadop.StreamDef
	for _, c := range seed.Document().Children {
		d, err := kadop.ParseDef(c)
		if err != nil {
			t.Fatal(err)
		}
		defs = append(defs, d)
	}
	if len(defs) < 3 {
		t.Fatalf("expected alerter + two filters, got %d defs", len(defs))
	}

	run := func(order []*kadop.StreamDef) []Mapping {
		db := newDB(t)
		for _, d := range order {
			if err := db.PublishIndexed(d); err != nil {
				t.Fatal(err)
			}
		}
		res, err := Options{From: "dht-0"}.Apply(compile(t, target, "p2"), db)
		if err != nil {
			t.Fatal(err)
		}
		return res.Mappings
	}
	fwd := run(defs)
	rev := make([]*kadop.StreamDef, len(defs))
	for i, d := range defs {
		rev[len(defs)-1-i] = d
	}
	bwd := run(rev)
	if fmt.Sprint(fwd) != fmt.Sprint(bwd) {
		t.Errorf("mapping depends on insertion order:\n fwd %v\n bwd %v", fwd, bwd)
	}
	// The tie between the two single-condition covers breaks toward the
	// smallest Ref.String() among the published filter streams.
	var want stream.Ref
	for _, d := range defs {
		if d.Operator != "Filter" {
			continue
		}
		if want == (stream.Ref{}) || d.Ref.String() < want.String() {
			want = d.Ref
		}
	}
	found := false
	for _, m := range fwd {
		if m.Original == want {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the tie to pick %v; mappings = %v", want, fwd)
	}
}

// TestResidualLetsPrunedToResidualConds: the residual σ of a partial
// subsumption must carry only the LET bindings its own conditions
// reference — carrying the covered conditions' bindings makes the node
// differ from an equivalently hand-written filter. The chain through the
// published residual must still resolve to full reuse.
func TestResidualLetsPrunedToResidualConds(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>m.com</p>)
	let $d := $e.responseTimestamp - $e.callTimestamp
	where $d > 10
	return $e by publish as channel "slow"`, "p1")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	narrowSrc := `for $e in inCOM(<p>m.com</p>)
	let $d := $e.responseTimestamp - $e.callTimestamp
	where $d > 10 and $e.caller = "http://x.com"
	return $e by publish as channel "slowX"`
	second := compile(t, narrowSrc, "p2")
	res2, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	var sigma *algebra.Node
	res2.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpSelect {
			sigma = n
		}
	})
	if sigma == nil || sigma.Inputs[0].Op != algebra.OpChannelIn {
		t.Fatalf("no residual σ over channel:\n%s", res2.Plan.Tree())
	}
	// The residual condition ($e.caller = ...) references no LET: the $d
	// binding covered by the reused stream must not ride along.
	if len(sigma.Select.Lets) != 0 {
		t.Errorf("residual Lets = %v, want none", sigma.Select.Lets)
	}
	if _, err := PublishPlan(db, res2.Plan, idGen()); err != nil {
		t.Fatal(err)
	}
	third := compile(t, narrowSrc, "p3")
	res3, err := Options{From: "dht-0"}.Apply(third, db)
	if err != nil {
		t.Fatal(err)
	}
	if res3.NewOps > 1 {
		t.Errorf("chained subsumption through the residual failed (NewOps=%d):\n%s", res3.NewOps, res3.Plan.Tree())
	}
}

// TestResidualLetsKeepTransitiveDeps: when the residual condition *does*
// reference a LET that itself references another, both bindings survive
// the pruning.
func TestResidualLetsKeepTransitiveDeps(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q"
	return $e by publish as channel "q"`, "p1")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	second := compile(t, `for $e in inCOM(<p>m.com</p>)
	let $d := $e.responseTimestamp - $e.callTimestamp, $dd := $d - 5
	where $e.callMethod = "Q" and $dd > 10
	return $e by publish as channel "slowQ"`, "p2")
	res, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	var sigma *algebra.Node
	res.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpSelect {
			sigma = n
		}
	})
	if sigma == nil || sigma.Inputs[0].Op != algebra.OpChannelIn {
		t.Fatalf("no residual σ over channel:\n%s", res.Plan.Tree())
	}
	if len(sigma.Select.Lets) != 2 {
		t.Errorf("residual Lets = %v, want the $d and $dd chain", sigma.Select.Lets)
	}
}

// TestReplaceVarWordBoundaries pins the word-boundary contract of
// replaceVar: `$x` must not fire inside `$xy`, and a needle in suffix
// position substitutes cleanly.
func TestReplaceVarWordBoundaries(t *testing.T) {
	cases := []struct{ in, name, repl, want string }{
		{"$xy > 1", "x", "$_", "$xy > 1"},                  // longer var untouched
		{"$x > $xy", "x", "$_", "$_ > $xy"},                // both in one string
		{"$a = $x", "x", "$_", "$a = $_"},                  // suffix position
		{"$x", "x", "$_", "$_"},                            // whole string
		{"$x_tail > 1", "x", "$_", "$x_tail > 1"},          // underscore continues the word
		{"$x9 > 1", "x", "$_", "$x9 > 1"},                  // digit continues the word
		{"($x) + $x.attr", "x", "$_", "($_) + $_.attr"},    // punctuation ends the word
		{"$x and $X", "x", "$_", "$_ and $X"},              // case-sensitive
		{"$lag > 10", "lag", "(a - b)", "(a - b) > 10"},    // inline form
		{"$lagging > 10", "lag", "(a - b)", "$lagging > 10"},
	}
	for _, c := range cases {
		if got := replaceVar(c.in, c.name, c.repl); got != c.want {
			t.Errorf("replaceVar(%q, %q, %q) = %q, want %q", c.in, c.name, c.repl, got, c.want)
		}
	}
}
