package reuse

import (
	"strings"
	"testing"

	"p2pm/internal/algebra"
	"p2pm/internal/p2pml"
)

// TestSubsumptionPartialReuse: sub2's conditions are a strict superset of
// sub1's, so sub2 reuses sub1's filtered stream and deploys only the
// residual condition.
func TestSubsumptionPartialReuse(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q"
	return $e by publish as channel "base"`, "p1")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}

	second := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q" and $e.caller = "http://x.com"
	return $e by publish as channel "narrow"`, "p2")
	res, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	// Expected rewritten shape: publisher(Π(σ[caller](chan(σ1)))).
	var sigma *algebra.Node
	res.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpSelect {
			sigma = n
		}
	})
	if sigma == nil {
		t.Fatalf("no residual σ:\n%s", res.Plan.Tree())
	}
	if len(sigma.Select.Conds) != 1 || !strings.Contains(sigma.Select.Conds[0].String(), "caller") {
		t.Fatalf("residual conds = %v", sigma.Select.Conds)
	}
	if sigma.Inputs[0].Op != algebra.OpChannelIn {
		t.Fatalf("residual σ not over a channel:\n%s", res.Plan.Tree())
	}
	// Only the residual σ and the Π remain to deploy.
	if res.NewOps != 2 {
		t.Errorf("NewOps = %d, want 2:\n%s", res.NewOps, res.Plan.Tree())
	}
}

// TestSubsumptionVarNameIndependent: the same conditions under different
// variable names are recognized.
func TestSubsumptionVarNameIndependent(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $a in inCOM(<p>m.com</p>)
	where $a.callMethod = "Q"
	return $a by publish as channel "c1"`, "p1")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	second := compile(t, `for $zz in inCOM(<p>m.com</p>)
	where $zz.callMethod = "Q" and $zz.fault != ""
	return $zz by publish as channel "c2"`, "p2")
	res, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	res.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn && n.Origin.StreamID != "" && n.Origin.PeerID == "m.com" {
			found = true
		}
	})
	if !found || res.NewOps != 2 {
		t.Errorf("var-renamed subsumption failed (NewOps=%d):\n%s", res.NewOps, res.Plan.Tree())
	}
}

// TestSubsumptionChainBecomesFullReuse: after the residual filter from a
// partial reuse is itself published, a third identical subscription
// chains through it and deploys nothing new but its Π/publisher.
func TestSubsumptionChainBecomesFullReuse(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q"
	return $e by publish as channel "c1"`, "p1")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	narrowSrc := `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q" and $e.caller = "http://x.com"
	return $e by publish as channel "c2"`
	second := compile(t, narrowSrc, "p2")
	res2, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PublishPlan(db, res2.Plan, idGen()); err != nil {
		t.Fatal(err)
	}

	third := compile(t, narrowSrc, "p3")
	res3, err := Options{From: "dht-0"}.Apply(third, db)
	if err != nil {
		t.Fatal(err)
	}
	// The whole σ chain is covered; only Π remains (the residual σ from
	// sub2 is discovered through the operand chain).
	if res3.NewOps > 1 {
		t.Errorf("NewOps = %d, want ≤ 1:\n%s", res3.NewOps, res3.Plan.Tree())
	}
}

// TestSubsumptionRequiresSubset: overlapping but non-subset condition
// sets must not be "reused" (that would change semantics).
func TestSubsumptionRequiresSubset(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q" and $e.fault != ""
	return $e by publish as channel "c1"`, "p1")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	// Shares callMethod="Q" but lacks the fault condition: σ1 filters
	// *too much* and must not be used.
	second := compile(t, `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q" and $e.caller = "http://x.com"
	return $e by publish as channel "c2"`, "p2")
	res, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	// Only the alerter is shared; the full σ must be deployed fresh.
	var sigma *algebra.Node
	res.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpSelect {
			sigma = n
		}
	})
	if sigma == nil || len(sigma.Select.Conds) != 2 {
		t.Fatalf("expected fresh 2-condition σ:\n%s", res.Plan.Tree())
	}
}

// TestSubsumptionWithLets: conditions over LET-derived values
// canonicalize by inlining, so equivalent derived conditions match.
func TestSubsumptionWithLets(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>m.com</p>)
	let $d := $e.responseTimestamp - $e.callTimestamp
	where $d > 10
	return $e by publish as channel "slow"`, "p1")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	second := compile(t, `for $x in inCOM(<p>m.com</p>)
	let $lag := $x.responseTimestamp - $x.callTimestamp
	where $lag > 10 and $x.callMethod = "Q"
	return $x by publish as channel "slowQ"`, "p2")
	res, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	var sigma *algebra.Node
	res.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpSelect {
			sigma = n
		}
	})
	if sigma == nil || sigma.Inputs[0].Op != algebra.OpChannelIn {
		t.Fatalf("LET-inlined subsumption failed:\n%s", res.Plan.Tree())
	}
	if len(sigma.Select.Conds) != 1 || !strings.Contains(sigma.Select.Conds[0].String(), "callMethod") {
		t.Errorf("residual = %v", sigma.Select.Conds)
	}
}

func TestCanonCondHelpers(t *testing.T) {
	if got := replaceVar("$e.a = $early", "e", "$_"); got != "$_.a = $early" {
		t.Errorf("replaceVar word boundary broken: %q", got)
	}
	if got := replaceVar("$d > 10", "d", "(x)"); got != "(x) > 10" {
		t.Errorf("replaceVar basic: %q", got)
	}
	// Multi-variable σ specs are ineligible.
	sub := p2pml.MustParse(`for $a in inCOM(<p>m</p>), $b in inCOM(<p>n</p>)
	where $a.x = $b.x and $a.y = "1"
	return <r/> by channel C`)
	plan, err := algebra.Compile(sub)
	if err != nil {
		t.Fatal(err)
	}
	var sigma *algebra.Node
	plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpSelect && len(n.Schema) > 1 {
			sigma = n
		}
	})
	if sigma != nil {
		if _, ok := canonCondStrings(sigma.Select, sigma.Inputs[0].Schema); ok {
			t.Error("multi-var σ should be ineligible")
		}
	}
}
