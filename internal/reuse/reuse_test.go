package reuse

import (
	"fmt"
	"testing"

	"p2pm/internal/algebra"
	"p2pm/internal/dht"
	"p2pm/internal/kadop"
	"p2pm/internal/p2pml"
	"p2pm/internal/stream"
)

func newDB(t *testing.T) *kadop.DB {
	t.Helper()
	ring := dht.New()
	for i := 0; i < 8; i++ {
		if err := ring.Join(fmt.Sprintf("dht-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return kadop.New(ring)
}

func idGen() func(string) string {
	counters := make(map[string]int)
	return func(peer string) string {
		counters[peer]++
		return fmt.Sprintf("s%d", counters[peer])
	}
}

func compile(t *testing.T, src, subscriber string) *algebra.Node {
	t.Helper()
	plan, err := algebra.Compile(p2pml.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return algebra.Optimize(plan, algebra.DefaultOptions(subscriber))
}

const qosSub = `for $c1 in outCOM(<p>a.com</p><p>b.com</p>),
    $c2 in inCOM(<p>meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where $duration > 10 and
      $c1.callMethod = "GetTemperature" and
      $c1.callee = "http://meteo.com" and
      $c1.callId = $c2.callId
return <incident type="slowAnswer"><client>{$c1.caller}</client></incident>
by publish as channel "alertQoS"`

func TestNoReuseOnEmptyDatabase(t *testing.T) {
	db := newDB(t)
	plan := compile(t, qosSub, "p")
	res, err := Options{From: "dht-0"}.Apply(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReusedOps != 0 || len(res.Mappings) != 0 {
		t.Errorf("unexpected reuse: %+v", res)
	}
	if res.NewOps != plan.Count()-1 { // everything but the publisher
		t.Errorf("NewOps = %d, want %d", res.NewOps, plan.Count()-1)
	}
	if res.Lookups == 0 {
		t.Error("no discovery queries issued")
	}
}

func TestFullReuseOfIdenticalSubscription(t *testing.T) {
	db := newDB(t)
	first := compile(t, qosSub, "p")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	second := compile(t, qosSub, "q") // different subscriber, same task
	res, err := Options{From: "dht-1"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	// The whole pipeline below the publisher is one reused channel.
	pub := res.Plan
	if pub.Op != algebra.OpPublish {
		t.Fatalf("root = %v", pub.Op)
	}
	if pub.Inputs[0].Op != algebra.OpChannelIn {
		t.Fatalf("expected full substitution, got:\n%s", res.Plan.Tree())
	}
	if res.NewOps != 0 {
		t.Errorf("NewOps = %d, want 0", res.NewOps)
	}
	if len(res.Mappings) != 1 {
		t.Errorf("mappings = %+v", res.Mappings)
	}
}

func TestPartialReuseSharesSourcesAndFilters(t *testing.T) {
	db := newDB(t)
	first := compile(t, qosSub, "p")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	// Same sources and filter conditions, different output template →
	// the Π differs, everything below it is reusable.
	variant := `for $c1 in outCOM(<p>a.com</p><p>b.com</p>),
	    $c2 in inCOM(<p>meteo.com</p>)
	let $duration := $c1.responseTimestamp - $c1.callTimestamp
	where $duration > 10 and
	      $c1.callMethod = "GetTemperature" and
	      $c1.callee = "http://meteo.com" and
	      $c1.callId = $c2.callId
	return <slow client="{$c1.caller}"/>
	by publish as channel "slowClients"`
	second := compile(t, variant, "q")
	res, err := Options{From: "dht-2"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	// The join (and everything below) is reused; only Π and the publisher
	// remain.
	if res.NewOps != 1 {
		t.Errorf("NewOps = %d, want 1 (the new Π):\n%s", res.NewOps, res.Plan.Tree())
	}
	pi := res.Plan.Inputs[0]
	if pi.Op != algebra.OpRestruct || pi.Inputs[0].Op != algebra.OpChannelIn {
		t.Fatalf("plan:\n%s", res.Plan.Tree())
	}
}

func TestLeafOnlyReuseWhenFiltersDiffer(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>meteo.com</p>)
	where $e.callMethod = "GetTemperature"
	return $e by publish as channel "temps"`, "p")
	if _, err := PublishPlan(db, first, idGen()); err != nil {
		t.Fatal(err)
	}
	second := compile(t, `for $e in inCOM(<p>meteo.com</p>)
	where $e.callMethod = "GetHumidity"
	return $e by publish as channel "humid"`, "q")
	res, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	// Only the alerter stream is shared: the σ and Π must be new.
	if len(res.Mappings) != 1 {
		t.Fatalf("mappings = %+v", res.Mappings)
	}
	if res.NewOps != 2 {
		t.Errorf("NewOps = %d, want 2 (σ and Π):\n%s", res.NewOps, res.Plan.Tree())
	}
	var chIn *algebra.Node
	res.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn {
			chIn = n
		}
	})
	if chIn == nil || chIn.Channel.PeerID != "meteo.com" {
		t.Fatalf("alerter substitution missing:\n%s", res.Plan.Tree())
	}
}

func TestReplicaSelectionPrefersClose(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>meteo.com</p>) return $e by publish as channel "raw"`, "p")
	refs, err := PublishPlan(db, first, idGen())
	if err != nil {
		t.Fatal(err)
	}
	// Find the alerter's stream and declare a replica at nearby.com.
	var alerterRef stream.Ref
	first.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpAlerter {
			alerterRef = refs[n]
		}
	})
	replica := stream.Ref{PeerID: "nearby.com", StreamID: "rep1"}
	if err := db.PublishReplica(alerterRef, replica); err != nil {
		t.Fatal(err)
	}

	dist := func(a, b string) float64 {
		if b == "nearby.com" {
			return 0.1
		}
		return 0.9
	}
	load := func(string) int { return 0 }
	second := compile(t, `for $e in inCOM(<p>meteo.com</p>)
	where $e.callMethod = "Q" return $e by publish as channel "filtered"`, "q")
	res, err := Options{From: "dht-0", Choose: PreferClose(dist, load)}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	var chIn *algebra.Node
	res.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpChannelIn {
			chIn = n
		}
	})
	if chIn == nil {
		t.Fatalf("no substitution:\n%s", res.Plan.Tree())
	}
	if chIn.Channel != replica {
		t.Errorf("provider = %v, want replica %v", chIn.Channel, replica)
	}
	if chIn.Origin != alerterRef {
		t.Errorf("origin = %v, want %v", chIn.Origin, alerterRef)
	}
}

func TestPreferCloseTieBreaksOnLoad(t *testing.T) {
	orig := stream.Ref{PeerID: "a", StreamID: "s"}
	rep := stream.Ref{PeerID: "b", StreamID: "r"}
	dist := func(string, string) float64 { return 1 }
	load := func(p string) int {
		if p == "b" {
			return 0
		}
		return 5
	}
	got := PreferClose(dist, load)("c", orig, []stream.Ref{rep})
	if got != rep {
		t.Errorf("got %v", got)
	}
}

// TestPublishedDescriptorsReferenceOriginals checks the Section 5
// bookkeeping rule: a consumer built on a reused (possibly replicated)
// stream publishes its own descriptors against the original stream.
func TestPublishedDescriptorsReferenceOriginals(t *testing.T) {
	db := newDB(t)
	first := compile(t, `for $e in inCOM(<p>meteo.com</p>) return $e by publish as channel "raw"`, "p")
	refs, err := PublishPlan(db, first, idGen())
	if err != nil {
		t.Fatal(err)
	}
	var alerterRef stream.Ref
	first.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpAlerter {
			alerterRef = refs[n]
		}
	})

	second := compile(t, `for $e in inCOM(<p>meteo.com</p>)
	where $e.callMethod = "Q" return $e by publish as channel "f"`, "q")
	res, err := Options{From: "dht-0"}.Apply(second, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PublishPlan(db, res.Plan, idGen()); err != nil {
		t.Fatal(err)
	}
	// The new σ's descriptor must name the original alerter stream as its
	// operand.
	defs, _, err := db.FindByOperand("dht-0", "Filter", alerterRef)
	if err != nil || len(defs) == 0 {
		t.Fatalf("filter descriptor not discoverable via original operand: %v, %v", defs, err)
	}
}

func TestReuseChainAcrossThreeSubscriptions(t *testing.T) {
	// sub1 deploys alerter; sub2 deploys σ over it (reusing the alerter);
	// sub3 asks for the same σ and reuses sub2's stream — transitive
	// sharing of derived streams, which the paper contrasts with
	// StreamGlobe's unary-only sharing.
	db := newDB(t)
	plan1 := compile(t, `for $e in inCOM(<p>m.com</p>) return $e by publish as channel "raw"`, "p1")
	if _, err := PublishPlan(db, plan1, idGen()); err != nil {
		t.Fatal(err)
	}
	subSrc := `for $e in inCOM(<p>m.com</p>)
	where $e.callMethod = "Q" return $e by publish as channel "fq"`
	plan2 := compile(t, subSrc, "p2")
	res2, err := Options{From: "dht-0"}.Apply(plan2, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PublishPlan(db, res2.Plan, idGen()); err != nil {
		t.Fatal(err)
	}
	plan3 := compile(t, subSrc, "p3")
	res3, err := Options{From: "dht-0"}.Apply(plan3, db)
	if err != nil {
		t.Fatal(err)
	}
	if res3.NewOps != 0 {
		t.Errorf("third subscription should deploy nothing new:\n%s", res3.Plan.Tree())
	}
}
