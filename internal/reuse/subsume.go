package reuse

import (
	"sort"
	"strings"

	"p2pm/internal/algebra"
	"p2pm/internal/kadop"
	"p2pm/internal/p2pml"
	"p2pm/internal/stream"
)

// This file implements subsumption-based reuse, the paper's future-work
// item "detecting and reusing streams that hold sufficient data"
// (Section 7): a published filter σ_A(s) holds sufficient data for a new
// task σ_{A∧B}(s), so the new task deploys only the residual σ_B over a
// subscription to the existing stream. Chains compose: once σ_B over
// σ_A(s) is itself published, a third σ_{A∧B}(s) subscription reuses the
// chain fully and deploys nothing.

// canonCondStrings renders a σ's conditions canonically for subsumption
// comparison: LET definitions are inlined and the (single) stream
// variable is renamed to "_" so textual variable choices don't matter.
// ok is false when the node is not eligible (multi-variable schema, or a
// condition that cannot be canonicalized).
func canonCondStrings(spec *algebra.SelectSpec, schema []string) (map[string]p2pml.Condition, bool) {
	if len(schema) != 1 {
		return nil, false
	}
	out := make(map[string]p2pml.Condition, len(spec.Conds))
	for _, cond := range spec.Conds {
		s := cond.String()
		// Inline LETs, last-defined first so chained LETs resolve.
		for i := len(spec.Lets) - 1; i >= 0; i-- {
			l := spec.Lets[i]
			s = replaceVar(s, l.Var, "("+l.Expr.String()+")")
		}
		s = replaceVar(s, schema[0], "$_")
		if strings.Contains(s, "$"+schema[0]) {
			return nil, false
		}
		out[s] = cond
	}
	return out, true
}

// replaceVar substitutes $name by repl at word boundaries.
func replaceVar(s, name, repl string) string {
	needle := "$" + name
	var b strings.Builder
	for {
		i := strings.Index(s, needle)
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		end := i + len(needle)
		boundary := end >= len(s) || !isWordByte(s[end])
		b.WriteString(s[:i])
		if boundary {
			b.WriteString(repl)
		} else {
			b.WriteString(needle)
		}
		s = s[end:]
	}
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// CanonConds exposes the canonical condition strings of a σ node for
// descriptor publication; ok is false for ineligible nodes.
func CanonConds(n *algebra.Node) ([]string, bool) {
	if n.Op != algebra.OpSelect || len(n.Inputs) != 1 {
		return nil, false
	}
	m, ok := canonCondStrings(n.Select, n.Inputs[0].Schema)
	if !ok {
		return nil, false
	}
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, true
}

// partialMatch records a σ node whose conditions are partially covered by
// a chain of published filter streams.
type partialMatch struct {
	ref      stream.Ref // the deepest covering stream
	sig      string     // its published signature
	residual []p2pml.Condition
}

// subsume attempts to cover the conditions of σ node n (whose single
// input resolved to childRef) with published filter streams over
// childRef, chaining through derived filters. It returns either a full
// matchInfo (all conditions covered) or a partialMatch (some covered).
func (o Options) subsume(n *algebra.Node, childRef stream.Ref, db *kadop.DB, r *Result) (*matchInfo, *partialMatch, error) {
	mine, ok := canonCondStrings(n.Select, n.Inputs[0].Schema)
	if !ok || len(mine) == 0 {
		return nil, nil, nil
	}
	remaining := make(map[string]p2pml.Condition, len(mine))
	for s, c := range mine {
		remaining[s] = c
	}
	cur := childRef
	curSig := ""
	progress := false
	for len(remaining) > 0 {
		candidates, hops, err := db.FindByOperand(o.From, "Filter", cur)
		r.Lookups++
		r.Hops += hops
		if err != nil {
			return nil, nil, err
		}
		var best *kadop.StreamDef
		for _, c := range candidates {
			if len(c.Conds) == 0 || !condsSubset(c.Conds, remaining) {
				continue
			}
			if best == nil || len(c.Conds) > len(best.Conds) ||
				(len(c.Conds) == len(best.Conds) && c.Ref.String() < best.Ref.String()) {
				// Widest cover first; equal covers tie-break on the stream
				// reference so the choice does not depend on DB enumeration
				// order (two managers resolving the same subscription must
				// pick the same provider).
				best = c
			}
		}
		if best == nil {
			break
		}
		for _, covered := range best.Conds {
			delete(remaining, covered)
		}
		cur = best.Ref
		curSig = best.Signature
		progress = true
	}
	if !progress {
		return nil, nil, nil
	}
	if len(remaining) == 0 {
		return &matchInfo{ref: cur, sig: curSig}, nil, nil
	}
	// Keep declaration order of the residual conditions for determinism.
	var residual []p2pml.Condition
	for _, cond := range n.Select.Conds {
		for _, rc := range remaining {
			if rc == cond {
				residual = append(residual, cond)
				break
			}
		}
	}
	return nil, &partialMatch{ref: cur, sig: curSig, residual: residual}, nil
}

func condsSubset(conds []string, remaining map[string]p2pml.Condition) bool {
	for _, c := range conds {
		if _, ok := remaining[c]; !ok {
			return false
		}
	}
	return true
}
