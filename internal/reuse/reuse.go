// Package reuse implements the stream-reuse algorithm of Section 5: when
// a new subscription arrives, the Subscription Manager searches the
// Stream Definition Database for existing streams that already compute
// sub-plans of the new monitoring plan, "to save CPU consumption and
// network traffic". The algorithm proceeds from the leaves: operators
// whose operands are all matched generate discovery queries; matched
// nodes are substituted by channel subscriptions, preferring a replica
// that is close (networkwise) and not overloaded.
package reuse

import (
	"fmt"
	"sort"

	"p2pm/internal/algebra"
	"p2pm/internal/kadop"
	"p2pm/internal/stream"
)

// Chooser selects the provider among the original stream and its
// replicas, given the consuming peer. A nil Chooser always picks the
// original.
type Chooser func(consumer string, original stream.Ref, replicas []stream.Ref) stream.Ref

// PreferClose builds a Chooser that minimizes distance(consumer,
// provider) with load as tie-breaker — the optimizer policy sketched in
// Section 5 ("preferably close (networkwise) and not overloaded").
func PreferClose(distance func(a, b string) float64, load func(peer string) int) Chooser {
	return func(consumer string, original stream.Ref, replicas []stream.Ref) stream.Ref {
		best := original
		bestD := distance(consumer, original.PeerID)
		bestL := load(original.PeerID)
		for _, r := range replicas {
			d := distance(consumer, r.PeerID)
			l := load(r.PeerID)
			if d < bestD || (d == bestD && l < bestL) {
				best, bestD, bestL = r, d, l
			}
		}
		return best
	}
}

// Options configures one reuse pass.
type Options struct {
	// From is the peer issuing the discovery queries (hop accounting).
	From string
	// Consumer is the peer on whose behalf providers are chosen (the
	// subscription manager); empty falls back to the covered node's
	// placement.
	Consumer string
	// Choose selects among original and replicas; nil keeps originals.
	Choose Chooser
}

// Mapping records one substitution.
type Mapping struct {
	Signature string
	Original  stream.Ref
	Provider  stream.Ref
	IsReplica bool
}

// Result reports the outcome of a reuse pass.
type Result struct {
	Plan     *algebra.Node
	Mappings []Mapping
	// ReusedOps counts plan operators that no longer need deployment;
	// NewOps counts the ones that still do (publishers excluded).
	ReusedOps int
	NewOps    int
	// Lookups/Hops account the DHT traffic of the discovery queries.
	Lookups int
	Hops    int
	// FailedLookups counts discovery queries that errored and were
	// answered conservatively (e.g. a replica lookup that failed, so the
	// original provider was kept). Nonzero values flag DHT trouble the
	// rewrite papered over.
	FailedLookups int
}

// matchInfo records a covered plan node: the original stream computing it
// and that stream's published signature (signatures compose over
// *published* definitions, so a plan built on reused channels matches
// streams built on the original computations).
type matchInfo struct {
	ref stream.Ref
	sig string
}

// Apply searches db for streams covering sub-plans of plan and returns a
// rewritten plan in which every topmost covered node is replaced by a
// channel subscription (and every partially covered σ by a residual
// filter over one). The input plan is not modified.
func (o Options) Apply(plan *algebra.Node, db *kadop.DB) (*Result, error) {
	r := &Result{}
	work := plan.Clone()
	st := &matchState{
		matched:   make(map[*algebra.Node]matchInfo),
		partials:  make(map[*algebra.Node]*partialMatch),
		aggCovers: make(map[*algebra.Node]*aggCover),
		sigs:      make(map[*algebra.Node]string),
	}
	if _, err := o.match(work, db, st, r); err != nil {
		return nil, err
	}
	r.Plan = o.rewrite(work, db, st, r)
	r.Plan.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpPublish:
		case algebra.OpChannelIn:
		default:
			r.NewOps++
		}
	})
	return r, nil
}

// matchState carries the bottom-up cover computed by match.
type matchState struct {
	matched   map[*algebra.Node]matchInfo
	partials  map[*algebra.Node]*partialMatch
	aggCovers map[*algebra.Node]*aggCover
	// sigs records every node's compositional signature — aggregate
	// containment compares a union's branch identities against published
	// partial streams' source sets.
	sigs map[*algebra.Node]string
}

// match fills the state bottom-up and returns the node's compositional
// signature (over published definitions where inputs matched, over the
// plan structure otherwise).
func (o Options) match(n *algebra.Node, db *kadop.DB, st *matchState, r *Result) (string, error) {
	sig, err := o.matchNode(n, db, st, r)
	if err == nil {
		st.sigs[n] = sig
	}
	return sig, err
}

func (o Options) matchNode(n *algebra.Node, db *kadop.DB, st *matchState, r *Result) (string, error) {
	childSigs := make([]string, len(n.Inputs))
	allChildren := true
	for i, in := range n.Inputs {
		sig, err := o.match(in, db, st, r)
		if err != nil {
			return "", err
		}
		childSigs[i] = sig
		if _, ok := st.matched[in]; !ok {
			allChildren = false
		}
	}
	sig := n.SignatureWith(childSigs)
	switch n.Op {
	case algebra.OpPublish, algebra.OpDynAlerter:
		// Sinks are never reused; dynamic alerter sets have no static
		// stream identity.
		return sig, nil
	case algebra.OpChannelIn:
		// An explicit channel subscription: resolve its published
		// signature so operators above it can match streams derived from
		// the same computation.
		orig := n.Origin
		if orig == (stream.Ref{}) {
			orig = n.Channel
		}
		def, hops, err := db.FindByRef(o.From, orig)
		r.Lookups++
		r.Hops += hops
		if err != nil {
			return "", fmt.Errorf("reuse: channel resolution: %w", err)
		}
		if def != nil && def.Signature != "" {
			sig = def.Signature
		}
		st.matched[n] = matchInfo{ref: orig, sig: sig}
		return sig, nil
	case algebra.OpAlerter:
		defs, hops, err := db.FindAlerters(o.From, n.Alerter.Peer, n.Alerter.Func)
		r.Lookups++
		r.Hops += hops
		if err != nil {
			return "", fmt.Errorf("reuse: alerter discovery: %w", err)
		}
		if len(defs) > 0 {
			if defs[0].Signature != "" {
				sig = defs[0].Signature
			}
			st.matched[n] = matchInfo{ref: defs[0].Ref, sig: sig}
		}
		return sig, nil
	default:
		if !allChildren {
			// An operand must be produced fresh, so must this node — with
			// one exception: aggregates. A tree deployment publishes no
			// Union stream (the union dissolves into partial/merge nodes),
			// so a Group whose branches all matched still reaches here. Its
			// compositional signature equals the flat alias a tree's Final
			// root publishes under, so try the exact match anyway; failing
			// that, covered branches can still arrive pre-merged even when
			// other branches must be produced fresh.
			if n.Op == algebra.OpGroup && n.Group != nil &&
				len(n.Inputs) == 1 && n.Inputs[0].Op == algebra.OpUnion &&
				allIn(st.matched, n.Inputs[0].Inputs) {
				defs, hops, err := db.FindBySignature(o.From, sig)
				r.Lookups++
				r.Hops += hops
				if err != nil {
					return "", fmt.Errorf("reuse: signature discovery: %w", err)
				}
				if len(defs) > 0 {
					st.matched[n] = matchInfo{ref: defs[0].Ref, sig: sig}
					return sig, nil
				}
			}
			if cover, cerr := o.coverAgg(n, db, st, r); cerr != nil {
				return "", cerr
			} else if cover != nil {
				st.aggCovers[n] = cover
			}
			return sig, nil
		}
		defs, hops, err := db.FindBySignature(o.From, sig)
		r.Lookups++
		r.Hops += hops
		if err != nil {
			return "", fmt.Errorf("reuse: signature discovery: %w", err)
		}
		if len(defs) > 0 {
			st.matched[n] = matchInfo{ref: defs[0].Ref, sig: sig}
			return sig, nil
		}
		// No exact match. For σ over a matched input, look for streams
		// that hold *sufficient* data: published filters covering a
		// subset of our conditions (chained through derived filters).
		if n.Op == algebra.OpSelect {
			child := st.matched[n.Inputs[0]]
			full, partial, err := o.subsume(n, child.ref, db, r)
			if err != nil {
				return "", err
			}
			if full != nil {
				st.matched[n] = *full
				return full.sig, nil
			}
			if partial != nil {
				st.partials[n] = partial
			}
		}
		// For Group over a union, look for partial-aggregation streams
		// whose source sets are contained in ours: they hold sufficient
		// (pre-merged) data for the covered branches.
		if cover, cerr := o.coverAgg(n, db, st, r); cerr != nil {
			return "", cerr
		} else if cover != nil {
			st.aggCovers[n] = cover
		}
		return sig, nil
	}
}

// rewrite replaces each topmost matched node with a channel subscription
// to the chosen provider, and each partially covered σ with a residual
// filter over one.
func (o Options) rewrite(n *algebra.Node, db *kadop.DB, st *matchState, r *Result) *algebra.Node {
	if m, ok := st.matched[n]; ok && n.Op != algebra.OpChannelIn {
		r.ReusedOps += n.Count()
		return o.channelNode(n, m, db, r)
	}
	if p, ok := st.partials[n]; ok && n.Op == algebra.OpSelect {
		m := matchInfo{ref: p.ref, sig: p.sig}
		chIn := o.channelNode(n, m, db, r)
		r.ReusedOps += n.Inputs[0].Count()
		return &algebra.Node{
			Op:     algebra.OpSelect,
			Peer:   n.Peer,
			Inputs: []*algebra.Node{chIn},
			Schema: append([]string(nil), n.Schema...),
			// Only the LET bindings the residual conditions reference ride
			// along: the full set would make this node differ from an
			// equivalently hand-written σ and break later chain matches.
			Select: &algebra.SelectSpec{Conds: p.residual, Lets: algebra.NeededLets(n.Select.Lets, p.residual...)},
		}
	}
	if c, ok := st.aggCovers[n]; ok {
		return o.graftNode(n, c, db, st, r)
	}
	for i, in := range n.Inputs {
		n.Inputs[i] = o.rewrite(in, db, st, r)
	}
	return n
}

// channelNode builds the channel-subscription replacement for a covered
// node, selecting among the original stream and its replicas.
func (o Options) channelNode(n *algebra.Node, m matchInfo, db *kadop.DB, r *Result) *algebra.Node {
	provider := m.ref
	isReplica := false
	replicas, hops, err := db.Replicas(o.From, m.ref)
	r.Lookups++
	r.Hops += hops
	if err != nil {
		// The original stream is always a valid provider, so a failed
		// replica lookup degrades the choice rather than the rewrite —
		// but it must not pass silently.
		r.FailedLookups++
	}
	consumer := o.Consumer
	if consumer == "" {
		consumer = consumerPeer(n)
	}
	// Choosing needs a known consumer: for AnyPeer nodes (not yet
	// placed) a distance-based chooser would score distance("", ·),
	// which is meaningless — keep the original provider instead.
	if err == nil && o.Choose != nil && consumer != "" {
		provider = o.Choose(consumer, m.ref, replicas)
		isReplica = provider != m.ref
	}
	r.Mappings = append(r.Mappings, Mapping{
		Signature: m.sig, Original: m.ref, Provider: provider, IsReplica: isReplica,
	})
	return &algebra.Node{
		Op:      algebra.OpChannelIn,
		Peer:    provider.PeerID,
		Schema:  append([]string(nil), n.Schema...),
		Channel: provider,
		Origin:  m.ref,
	}
}

// allIn reports whether every node is matched.
func allIn(matched map[*algebra.Node]matchInfo, nodes []*algebra.Node) bool {
	for _, n := range nodes {
		if _, ok := matched[n]; !ok {
			return false
		}
	}
	return true
}

// consumerPeer estimates where the substituted stream will be consumed:
// the node's assigned peer when concrete, else the original provider.
func consumerPeer(n *algebra.Node) string {
	if n.Peer != algebra.AnyPeer && n.Peer != "" {
		return n.Peer
	}
	return ""
}

// PublishPlan assigns a stream reference to every non-publisher node of a
// deployed plan and publishes the corresponding descriptors — the "derived
// streams are declared with respect to original streams" bookkeeping that
// deployment performs so later subscriptions can reuse this work.
// nextID generates fresh stream IDs per peer. It returns the per-node
// references.
func PublishPlan(db *kadop.DB, plan *algebra.Node, nextID func(peer string) string) (map[*algebra.Node]stream.Ref, error) {
	refs := make(map[*algebra.Node]stream.Ref)
	sigs := make(map[*algebra.Node]string)
	srcs := make(map[*algebra.Node][]string)
	var err error
	plan.Walk(func(n *algebra.Node) {
		if err != nil {
			return
		}
		switch n.Op {
		case algebra.OpPublish:
			return
		case algebra.OpChannelIn:
			// Reused stream: identify by its original so descriptors of
			// consumers reference originals, and adopt its published
			// signature (and, for partial-aggregation streams, the source
			// set it pre-merges) so streams built on top stay matchable.
			orig := n.Origin
			if orig == (stream.Ref{}) {
				orig = n.Channel
			}
			refs[n] = orig
			sigs[n] = "chan(" + orig.String() + ")"
			if def, _, e := db.FindByRef("", orig); e == nil && def != nil {
				if def.Signature != "" {
					sigs[n] = def.Signature
				}
				srcs[n] = def.Sources
			}
			return
		}
		ref := stream.Ref{PeerID: n.Peer, StreamID: nextID(n.Peer)}
		refs[n] = ref
		childSigs := make([]string, len(n.Inputs))
		for i, in := range n.Inputs {
			childSigs[i] = sigs[in]
		}
		sigs[n] = n.SignatureWith(childSigs)
		switch n.Op {
		case algebra.OpPartialAgg:
			srcs[n] = []string{sigs[n.Inputs[0]]}
		case algebra.OpMergeAgg:
			srcs[n] = mergedSources(n, srcs)
		}
		def := &kadop.StreamDef{
			Ref:       ref,
			IsChannel: true,
			Operator:  operatorName(n),
			Signature: sigs[n],
			Stats:     map[string]string{},
		}
		if conds, ok := CanonConds(n); ok {
			def.Conds = conds
		}
		switch {
		case n.Op == algebra.OpPartialAgg || (n.Op == algebra.OpMergeAgg && !n.Group.Final):
			// Partial-format emitters: indexed under the aggregate identity
			// with the source set they pre-merge, so later subscriptions
			// whose unions contain those sources graft them in.
			if len(srcs[n]) > 0 {
				def.Group = n.Group.Ident()
				def.Sources = srcs[n]
			}
		case n.Op == algebra.OpMergeAgg && n.Group.Final:
			// The Final root emits exactly the records a flat Group over
			// the union of all sources would: publish it under that flat
			// alias so later flat plans match tree-deployed work exactly,
			// whatever the tree shape.
			if ss := srcs[n]; len(ss) > 0 {
				sigs[n] = algebra.FlatGroupSignature(n.Group, ss)
				def.Signature = sigs[n]
			}
		}
		for _, in := range n.Inputs {
			def.Operands = append(def.Operands, refs[in])
		}
		if e := db.PublishIndexed(def); e != nil {
			err = e
		}
	})
	return refs, err
}

// mergedSources unions the source sets of a merge node's inputs, sorted
// and deduplicated. Any input with an unknown source set poisons the
// result (nil): a descriptor claiming a partial source set would let a
// later graft drop branches silently.
func mergedSources(n *algebra.Node, srcs map[*algebra.Node][]string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, in := range n.Inputs {
		ss := srcs[in]
		if len(ss) == 0 {
			return nil
		}
		for _, s := range ss {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Strings(out)
	return out
}

func operatorName(n *algebra.Node) string {
	switch n.Op {
	case algebra.OpAlerter:
		return n.Alerter.Func
	case algebra.OpSelect:
		return "Filter"
	case algebra.OpJoin:
		return "Join"
	case algebra.OpUnion:
		return "Union"
	case algebra.OpRestruct:
		return "Restructure"
	case algebra.OpDistinct:
		return "Distinct"
	case algebra.OpGroup:
		return "Group"
	case algebra.OpPartialAgg:
		return "PartialAgg"
	case algebra.OpMergeAgg:
		return "MergeAgg"
	case algebra.OpDynAlerter:
		return "DynAlerter"
	}
	return n.Op.String()
}
