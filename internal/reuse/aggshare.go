package reuse

import (
	"sort"

	"p2pm/internal/algebra"
	"p2pm/internal/kadop"
	"p2pm/internal/stream"
)

// This file implements aggregate-tree sharing: the containment analogue
// of filter subsumption. Partial-aggregation streams (PartialAgg leaves
// and non-final MergeAgg interiors of deployed trees) are published with
// the aggregate's identity and the set of source streams they pre-merge.
// A new Group subscription over a union whose source set *contains* a
// published partial stream's sources grafts that stream in as a
// pre-merged input — the covered branches and their leaf aggregation are
// never deployed again — and merges it with fresh partial leaves for the
// uncovered remainder. When the source sets coincide exactly, the
// existing tree's Final root is found by plain signature matching
// instead (it publishes under the flat Group alias), so grafting only
// handles the strictly-contained case.

// aggPart is one published partial stream chosen to cover part of a new
// aggregate's source set.
type aggPart struct {
	ref     stream.Ref
	sig     string
	sources []string
}

// aggCover is a disjoint cover of (part of) a Group-over-union's
// branches by published partial streams.
type aggCover struct {
	parts   []aggPart
	covered map[string]bool // branch signatures absorbed by parts
}

// coverAgg looks for published partial-aggregation streams of the same
// aggregate identity whose source sets are contained in n's union, and
// greedily assembles a disjoint cover, widest streams first with
// Ref-order tie-breaking so two managers resolving the same subscription
// build the same graft. Returns nil when n is not a Group over a union,
// branches are ambiguous (duplicate identities), or nothing covers.
func (o Options) coverAgg(n *algebra.Node, db *kadop.DB, st *matchState, r *Result) (*aggCover, error) {
	if n.Op != algebra.OpGroup || n.Group == nil ||
		len(n.Inputs) != 1 || n.Inputs[0].Op != algebra.OpUnion {
		return nil, nil
	}
	want := make(map[string]bool)
	for _, b := range n.Inputs[0].Inputs {
		s := st.sigs[b]
		if s == "" || want[s] {
			// Unknown or duplicate branch identity: a cover could double-
			// or mis-count events, so fall back to building the tree fresh.
			return nil, nil
		}
		want[s] = true
	}
	cands, hops, err := db.FindAggParts(o.From, n.Group.Ident())
	r.Lookups++
	r.Hops += hops
	if err != nil {
		// Sharing is an optimization: a failed containment query degrades
		// to an unshared tree, but must not pass silently.
		r.FailedLookups++
		return nil, nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].Sources) != len(cands[j].Sources) {
			return len(cands[i].Sources) > len(cands[j].Sources)
		}
		return cands[i].Ref.String() < cands[j].Ref.String()
	})
	covered := make(map[string]bool)
	var parts []aggPart
	for _, c := range cands {
		if len(c.Sources) == 0 {
			continue
		}
		fits := true
		for _, s := range c.Sources {
			if !want[s] || covered[s] {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for _, s := range c.Sources {
			covered[s] = true
		}
		parts = append(parts, aggPart{ref: c.Ref, sig: c.Signature, sources: c.Sources})
	}
	if len(parts) == 0 {
		return nil, nil
	}
	return &aggCover{parts: parts, covered: covered}, nil
}

// graftNode builds the replacement for a covered Group-over-union: a
// Final merge at the planner's Group placement, fed by channel
// subscriptions to the covering partial streams plus fresh PartialAgg
// leaves over the uncovered branches (placed with their branch once the
// plan is re-placed). Over-wide grafts are later chunked into interior
// levels by aggtree.Rewrite.
func (o Options) graftNode(n *algebra.Node, c *aggCover, db *kadop.DB, st *matchState, r *Result) *algebra.Node {
	union := n.Inputs[0]
	inputs := make([]*algebra.Node, 0, len(c.parts)+len(union.Inputs))
	for _, p := range c.parts {
		inputs = append(inputs, o.channelNode(n, matchInfo{ref: p.ref, sig: p.sig}, db, r))
	}
	leafSpec := derivedGroupSpec(n.Group, false)
	for _, b := range union.Inputs {
		if c.covered[st.sigs[b]] {
			r.ReusedOps += b.Count()
			continue
		}
		inputs = append(inputs, &algebra.Node{
			Op:     algebra.OpPartialAgg,
			Peer:   algebra.AnyPeer,
			Inputs: []*algebra.Node{o.rewrite(b, db, st, r)},
			Schema: append([]string(nil), n.Schema...),
			Group:  leafSpec,
		})
	}
	return &algebra.Node{
		Op:     algebra.OpMergeAgg,
		Peer:   n.Peer,
		Inputs: inputs,
		Schema: append([]string(nil), n.Schema...),
		Group:  derivedGroupSpec(n.Group, true),
	}
}

// derivedGroupSpec copies the flat Group's spec for a graft node,
// mirroring the aggregation-tree rewrite's spec derivation.
func derivedGroupSpec(g *algebra.GroupSpec, final bool) *algebra.GroupSpec {
	c := *g
	c.Final = final
	return &c
}
