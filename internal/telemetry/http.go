package telemetry

import (
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler exporting the registry:
//
//	GET /metrics         Prometheus text format
//	GET /metrics?format=json   JSON
//	GET /metrics.json    JSON
//
// Each request takes a fresh snapshot, so scrapes always see current
// values and two concurrent scrapes never share state.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request, json bool) {
		snap := reg.Snapshot()
		if json || r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			snap.WriteJSON(w) //nolint:errcheck // client gone = nothing to do
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w) //nolint:errcheck // client gone = nothing to do
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) { serve(w, r, false) })
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) { serve(w, r, true) })
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
}

// Close shuts the endpoint down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the registry's HTTP endpoint on addr (e.g.
// "127.0.0.1:9090"; ":0" picks a free port — read the bound address
// from Server.Addr). The server runs on its own goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Close's ErrServerClosed is expected
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}
