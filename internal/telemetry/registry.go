package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the three series types.
type Kind uint8

// The three metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the kind the way both encodings spell it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// DefaultMaxSeries is the per-family label-cardinality guard: a metric
// name holds at most this many distinct label sets; further sets share
// one overflow series (labeled overflow="true") instead of growing the
// registry without bound. Raise per registry with SetMaxSeries.
const DefaultMaxSeries = 256

// overflowLabel marks the shared series label sets beyond the
// cardinality guard collapse into.
var overflowLabel = Label{Key: "overflow", Value: "true"}

// series is one registered (name, labels) instrument.
type series struct {
	labels []Label // sorted
	key    string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups every series of one metric name.
type family struct {
	name   string
	kind   Kind
	bounds []int64 // histograms: shared bucket bounds
	series map[string]*series
}

// Registry holds metric families and hands out series handles.
// Registration takes a lock and allocates; the returned handles are
// lock-free. A Registry is safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	order     []string // registration-independent: kept sorted
	collect   []func()
	maxSeries int
	// dropped counts label sets redirected to an overflow series by the
	// cardinality guard — the registry's own health metric.
	dropped Counter
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), maxSeries: DefaultMaxSeries}
}

// Default is the process-wide registry instrumented code uses unless a
// component was handed a specific one.
var Default = NewRegistry()

// SetMaxSeries adjusts the per-family cardinality guard (minimum 1).
func (r *Registry) SetMaxSeries(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.maxSeries = n
	r.mu.Unlock()
}

// DroppedSeries returns how many label sets the cardinality guard
// redirected into overflow series.
func (r *Registry) DroppedSeries() uint64 { return r.dropped.Value() }

// Counter returns the counter registered under name with the given
// labels, creating it on first use. Same name + same labels → same
// handle. Registering a name that already exists with a different kind
// panics: metric names are a global namespace and a kind clash is a
// programming error that would corrupt every export.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.register(name, KindCounter, nil, labels).ctr
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.register(name, KindGauge, nil, labels).gauge
}

// Histogram returns the histogram registered under name+labels with the
// given bucket bounds (ascending upper bounds; +Inf is implicit). The
// first registration of a name fixes the bounds; later ones may pass
// nil to reuse them.
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	return r.register(name, KindHistogram, bounds, labels).hist
}

func (r *Registry) register(name string, kind Kind, bounds []int64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		if kind == KindHistogram && len(bounds) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %q needs bucket bounds", name))
		}
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		if kind == KindHistogram {
			f.bounds = append([]int64(nil), bounds...)
			if !sort.SliceIsSorted(f.bounds, func(i, j int) bool { return f.bounds[i] < f.bounds[j] }) {
				panic(fmt.Sprintf("telemetry: histogram %q bounds are not ascending", name))
			}
		}
		r.families[name] = f
		i := sort.SearchStrings(r.order, name)
		r.order = append(r.order, "")
		copy(r.order[i+1:], r.order[i:])
		r.order[i] = name
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (is %s)", name, kind, f.kind))
	}
	sorted := sortLabels(labels)
	key := labelKey(sorted)
	if s := f.series[key]; s != nil {
		return s
	}
	if len(f.series) >= r.maxSeries {
		// Cardinality guard: collapse into the shared overflow series.
		r.dropped.Inc()
		okey := labelKey([]Label{overflowLabel})
		if s := f.series[okey]; s != nil {
			return s
		}
		sorted, key = []Label{overflowLabel}, okey
	}
	s := &series{labels: sorted, key: key}
	switch kind {
	case KindCounter:
		s.ctr = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = &Histogram{bounds: f.bounds, buckets: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.series[key] = s
	return s
}

// OnCollect registers a hook run (in registration order) at the start
// of every Snapshot — the seam pull-style gauges update through (queue
// depths, per-peer ingest folds). Hooks must not call back into
// Snapshot.
func (r *Registry) OnCollect(f func()) {
	r.mu.Lock()
	r.collect = append(r.collect, f)
	r.mu.Unlock()
}

// Metric is one exported series in a Snapshot.
type Metric struct {
	Name   string
	Kind   Kind
	Labels []Label // sorted by key
	// Value carries counters (cast) and gauges.
	Value int64
	// Histogram-only fields.
	Count   uint64
	Sum     int64
	Bounds  []int64
	Buckets []uint64
}

// key orders metrics within a snapshot.
func (m Metric) key() string { return m.Name + "\x00" + labelKey(m.Labels) }

// Snapshot is a deterministic point-in-time copy of a registry: series
// sorted by (name, labels), including the registry's own
// telemetry_series_dropped_total guard counter.
type Snapshot struct {
	Metrics []Metric
}

// Snapshot collects every series. Collect hooks run first, then values
// are read with atomic loads; series registered concurrently with the
// snapshot appear in it or in the next one.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	hooks := append([]func(){}, r.collect...)
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out Snapshot
	for _, name := range r.order {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			m := Metric{Name: f.name, Kind: f.kind, Labels: s.labels}
			switch f.kind {
			case KindCounter:
				m.Value = int64(s.ctr.Value())
			case KindGauge:
				m.Value = s.gauge.Value()
			case KindHistogram:
				m.Count = s.hist.Count()
				m.Sum = s.hist.Sum()
				m.Bounds = f.bounds
				m.Buckets = make([]uint64, len(s.hist.buckets))
				for i := range s.hist.buckets {
					m.Buckets[i] = s.hist.buckets[i].Load()
				}
			}
			out.Metrics = append(out.Metrics, m)
		}
	}
	if d := r.dropped.Value(); d > 0 {
		m := Metric{Name: "telemetry_series_dropped_total", Kind: KindCounter, Value: int64(d)}
		i := sort.Search(len(out.Metrics), func(i int) bool { return out.Metrics[i].key() >= m.key() })
		out.Metrics = append(out.Metrics, Metric{})
		copy(out.Metrics[i+1:], out.Metrics[i:])
		out.Metrics[i] = m
	}
	return out
}

// Delta returns this snapshot with counters and histogram buckets
// expressed relative to prev. Counter resets (current below previous —
// a restarted process re-registering the series) yield the current
// value, the Prometheus rate() convention, so deltas never go negative.
// Gauges keep their current value: a gauge is already a level, not an
// accumulation. Series absent from prev pass through unchanged.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	old := make(map[string]*Metric, len(prev.Metrics))
	for i := range prev.Metrics {
		old[prev.Metrics[i].key()] = &prev.Metrics[i]
	}
	out := Snapshot{Metrics: make([]Metric, len(s.Metrics))}
	copy(out.Metrics, s.Metrics)
	for i := range out.Metrics {
		m := &out.Metrics[i]
		p := old[m.key()]
		if p == nil || p.Kind != m.Kind {
			continue
		}
		switch m.Kind {
		case KindCounter:
			if m.Value >= p.Value {
				m.Value -= p.Value
			}
		case KindHistogram:
			// A reset shows as any component going backwards (count, sum
			// with non-negative observations, or a bucket); keep absolute
			// values then, like the counter convention.
			reset := m.Count < p.Count || m.Sum < p.Sum
			for j := range m.Buckets {
				if j < len(p.Buckets) && m.Buckets[j] < p.Buckets[j] {
					reset = true
				}
			}
			if reset {
				continue
			}
			m.Count -= p.Count
			m.Sum -= p.Sum
			buckets := append([]uint64(nil), m.Buckets...)
			for j := range buckets {
				if j < len(p.Buckets) {
					buckets[j] -= p.Buckets[j]
				}
			}
			m.Buckets = buckets
		}
	}
	return out
}

// Get returns the metric with the given name and labels, if present.
func (s Snapshot) Get(name string, labels ...Label) (Metric, bool) {
	want := Metric{Name: name, Labels: sortLabels(labels)}.key()
	for _, m := range s.Metrics {
		if m.key() == want {
			return m, true
		}
	}
	return Metric{}, false
}
