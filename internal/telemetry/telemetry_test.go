package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// drive applies a fixed operation history to a fresh registry — the
// determinism tests require identical histories to produce identical
// bytes.
func drive(reg *Registry) {
	c := reg.Counter("wire_dropped_total", L("peer", "n1"))
	c.Add(7)
	reg.Counter("wire_dropped_total", L("peer", "n2")).Add(3)
	reg.Counter("transport_sent_total").Add(41)
	reg.Gauge("stream_queue_depth").Set(12)
	h := reg.Histogram("step_ns", ExpBounds(100, 10, 4))
	for _, v := range []int64{50, 150, 99999, 5_000_000} {
		h.Observe(v)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", L("a", "1"), L("b", "2"))
	b := reg.Counter("x_total", L("b", "2"), L("a", "1")) // label order irrelevant
	if a != b {
		t.Fatalf("same name+labels returned distinct handles")
	}
	if c := reg.Counter("x_total", L("a", "1")); c == a {
		t.Fatalf("different label set returned the same handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind clash did not panic")
		}
	}()
	reg.Gauge("x_total")
}

func TestConcurrentIncrement(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers register their own handle (exercising the
			// registration lock under race), half share one.
			c := reg.Counter("conc_total", L("shard", fmt.Sprint(w%2)))
			g := reg.Gauge("conc_gauge")
			h := reg.Histogram("conc_hist", []int64{10, 100})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	var total int64
	for _, m := range snap.Metrics {
		if m.Name == "conc_total" {
			total += m.Value
		}
	}
	if total != workers*perWorker {
		t.Fatalf("lost increments: %d != %d", total, workers*perWorker)
	}
	if m, ok := snap.Get("conc_gauge"); !ok || m.Value != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", m.Value, workers*perWorker)
	}
	if m, ok := snap.Get("conc_hist"); !ok || m.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", m.Count, workers*perWorker)
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	drive(a)
	drive(b)
	for _, enc := range []struct {
		name string
		f    func(Snapshot) []byte
	}{
		{"json", Snapshot.JSON},
		{"prometheus", Snapshot.Prometheus},
	} {
		ea, eb := enc.f(a.Snapshot()), enc.f(b.Snapshot())
		if !bytes.Equal(ea, eb) {
			t.Errorf("%s: same ops, different bytes:\n%s\nvs\n%s", enc.name, ea, eb)
		}
		if len(ea) == 0 {
			t.Errorf("%s: empty encoding", enc.name)
		}
	}
	// Sorted output: names ascending, label sets ascending within a name.
	snap := a.Snapshot()
	for i := 1; i < len(snap.Metrics); i++ {
		if snap.Metrics[i-1].key() >= snap.Metrics[i].key() {
			t.Fatalf("snapshot not sorted at %d: %q then %q", i, snap.Metrics[i-1].key(), snap.Metrics[i].key())
		}
	}
}

func TestDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h", []int64{10})
	c.Add(5)
	g.Set(3)
	h.Observe(4)
	prev := reg.Snapshot()
	c.Add(2)
	g.Set(-7)
	h.Observe(40)
	d := reg.Snapshot().Delta(prev)
	if m, _ := d.Get("c_total"); m.Value != 2 {
		t.Errorf("counter delta = %d, want 2", m.Value)
	}
	if m, _ := d.Get("g"); m.Value != -7 {
		t.Errorf("gauge in a delta keeps its level: got %d, want -7", m.Value)
	}
	if m, _ := d.Get("h"); m.Count != 1 || m.Sum != 40 || m.Buckets[0] != 0 || m.Buckets[1] != 1 {
		t.Errorf("histogram delta = %+v", m)
	}

	// A reset (fresh process re-registering the series) must not produce
	// a negative delta: the current value stands, per rate() convention.
	fresh := NewRegistry()
	fresh.Counter("c_total").Add(1)
	fresh.Histogram("h", []int64{10}).Observe(3)
	d = fresh.Snapshot().Delta(prev)
	if m, _ := d.Get("c_total"); m.Value != 1 {
		t.Errorf("counter delta across reset = %d, want 1", m.Value)
	}
	if m, _ := d.Get("h"); m.Count != 1 {
		t.Errorf("histogram delta across reset = %+v, want absolute values", m)
	}

	// Series unseen in prev pass through.
	fresh.Counter("new_total").Add(9)
	if m, _ := fresh.Snapshot().Delta(prev).Get("new_total"); m.Value != 9 {
		t.Errorf("new series delta = %d, want 9", m.Value)
	}
}

func TestCardinalityGuard(t *testing.T) {
	reg := NewRegistry()
	reg.SetMaxSeries(4)
	handles := make(map[*Counter]bool)
	for i := 0; i < 20; i++ {
		handles[reg.Counter("hot_total", L("peer", fmt.Sprintf("p%02d", i)))] = true
	}
	if len(handles) != 5 { // 4 real series + 1 shared overflow
		t.Fatalf("guard admitted %d handles, want 5", len(handles))
	}
	if reg.DroppedSeries() != 16 {
		t.Fatalf("dropped = %d, want 16", reg.DroppedSeries())
	}
	snap := reg.Snapshot()
	if _, ok := snap.Get("hot_total", overflowLabel); !ok {
		t.Fatalf("overflow series missing from snapshot")
	}
	if m, ok := snap.Get("telemetry_series_dropped_total"); !ok || m.Value != 16 {
		t.Fatalf("guard self-metric = %+v ok=%v", m, ok)
	}
	// The overflow handle still counts — increments are not lost.
	reg.Counter("hot_total", L("peer", "p19")).Add(3)
	if m, _ := reg.Snapshot().Get("hot_total", overflowLabel); m.Value != 3 {
		t.Fatalf("overflow series value = %d, want 3", m.Value)
	}
}

func TestZeroAllocHotPath(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("z_total", L("peer", "n1"))
	g := reg.Gauge("z")
	h := reg.Histogram("z_ns", ExpBounds(100, 10, 6))
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Errorf("Counter hot path allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-2) }); n != 0 {
		t.Errorf("Gauge hot path allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram hot path allocates %.1f/op", n)
	}
}

func TestPrometheusShape(t *testing.T) {
	reg := NewRegistry()
	drive(reg)
	text := string(reg.Snapshot().Prometheus())
	for _, want := range []string{
		"# TYPE wire_dropped_total counter",
		`wire_dropped_total{peer="n1"} 7`,
		"# TYPE step_ns histogram",
		`step_ns_bucket{le="+Inf"} 4`,
		"step_ns_count 4",
		"transport_sent_total 41",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// Cumulative buckets: the +Inf bucket equals the count.
	if !strings.Contains(text, `step_ns_bucket{le="100"} 1`) {
		t.Errorf("cumulative bucket wrong:\n%s", text)
	}
}

func TestServeHTTP(t *testing.T) {
	reg := NewRegistry()
	drive(reg)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(b)
	}
	if text := get("/metrics"); !strings.Contains(text, "wire_dropped_total") {
		t.Errorf("/metrics missing counters:\n%s", text)
	}
	for _, path := range []string{"/metrics.json", "/metrics?format=json"} {
		if j := get(path); !strings.Contains(j, `"name":"wire_dropped_total"`) || !strings.HasPrefix(j, `{"metrics":[`) {
			t.Errorf("%s not JSON:\n%s", path, j)
		}
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(100, 10, 4)
	want := []int64{100, 1000, 10000, 100000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v", b)
		}
	}
}
