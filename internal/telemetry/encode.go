package telemetry

import (
	"bytes"
	"io"
	"strconv"
)

// Both encoders are hand-written so a snapshot's encoding is a pure,
// byte-deterministic function of its contents — the property the
// snapshot-determinism tests and the Sysmon ActiveXML stream rely on.
// encoding/json would work, but its struct-order coupling and HTML
// escaping make "byte-identical across versions" a promise someone else
// owns.

// WriteJSON writes the snapshot as one JSON object:
//
//	{"metrics":[{"name":"a","kind":"counter","labels":{"k":"v"},"value":1}, ...]}
//
// Histograms carry count/sum/buckets, with the bucket upper bounds
// inline and the implicit +Inf bound spelled null.
func (s Snapshot) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString(`{"metrics":[`)
	for i, m := range s.Metrics {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"name":`)
		b.WriteString(strconv.Quote(m.Name))
		b.WriteString(`,"kind":"`)
		b.WriteString(m.Kind.String())
		b.WriteByte('"')
		if len(m.Labels) > 0 {
			b.WriteString(`,"labels":{`)
			for j, l := range m.Labels {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Quote(l.Key))
				b.WriteByte(':')
				b.WriteString(strconv.Quote(l.Value))
			}
			b.WriteByte('}')
		}
		if m.Kind == KindHistogram {
			b.WriteString(`,"count":`)
			b.WriteString(strconv.FormatUint(m.Count, 10))
			b.WriteString(`,"sum":`)
			b.WriteString(strconv.FormatInt(m.Sum, 10))
			b.WriteString(`,"buckets":[`)
			for j, n := range m.Buckets {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(`{"le":`)
				if j < len(m.Bounds) {
					b.WriteString(strconv.FormatInt(m.Bounds[j], 10))
				} else {
					b.WriteString("null")
				}
				b.WriteString(`,"n":`)
				b.WriteString(strconv.FormatUint(n, 10))
				b.WriteByte('}')
			}
			b.WriteByte(']')
		} else {
			b.WriteString(`,"value":`)
			b.WriteString(strconv.FormatInt(m.Value, 10))
		}
		b.WriteByte('}')
	}
	b.WriteString("]}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// JSON returns the WriteJSON encoding.
func (s Snapshot) JSON() []byte {
	var b bytes.Buffer
	s.WriteJSON(&b) //nolint:errcheck // bytes.Buffer cannot fail
	return b.Bytes()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (one # TYPE line per family, cumulative histogram buckets with
// le labels, +Inf last).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b bytes.Buffer
	lastFamily := ""
	for _, m := range s.Metrics {
		if m.Name != lastFamily {
			b.WriteString("# TYPE ")
			b.WriteString(m.Name)
			b.WriteByte(' ')
			b.WriteString(m.Kind.String())
			b.WriteByte('\n')
			lastFamily = m.Name
		}
		switch m.Kind {
		case KindHistogram:
			cum := uint64(0)
			for j, n := range m.Buckets {
				cum += n
				b.WriteString(m.Name)
				b.WriteString("_bucket")
				le := "+Inf"
				if j < len(m.Bounds) {
					le = strconv.FormatInt(m.Bounds[j], 10)
				}
				writePromLabels(&b, append(append([]Label(nil), m.Labels...), Label{Key: "le", Value: le}))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
			b.WriteString(m.Name)
			b.WriteString("_sum")
			writePromLabels(&b, m.Labels)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(m.Sum, 10))
			b.WriteByte('\n')
			b.WriteString(m.Name)
			b.WriteString("_count")
			writePromLabels(&b, m.Labels)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(m.Count, 10))
			b.WriteByte('\n')
		default:
			b.WriteString(m.Name)
			writePromLabels(&b, m.Labels)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(m.Value, 10))
			b.WriteByte('\n')
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Prometheus returns the WritePrometheus encoding.
func (s Snapshot) Prometheus() []byte {
	var b bytes.Buffer
	s.WritePrometheus(&b) //nolint:errcheck // bytes.Buffer cannot fail
	return b.Bytes()
}

// writePromLabels renders {k="v",...} or nothing for an empty set.
func writePromLabels(b *bytes.Buffer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
}
