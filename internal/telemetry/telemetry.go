// Package telemetry is the process-wide metrics layer: a registry of
// named Counter/Gauge/Histogram series with lock-free atomic hot paths,
// snapshotted deterministically for export.
//
// Every layer of the monitor grew its own ad-hoc counters — transport
// endpoint stats, wire decode/drop counts, simnet byte accounting,
// gossip health scores, DHT service loads, per-operator ingest gauges.
// This package gives them one registry with one export story, so the
// multi-process `p2pmon net` mode is scrapeable over HTTP (JSON and
// Prometheus text format) and adapt.MetricsSysmon can publish the same
// snapshots as an ActiveXML stream an ordinary P2PML subscription
// watches — the monitor monitoring its own runtime the way the paper
// monitors peers. See docs/TELEMETRY.md.
//
// Design rules:
//
//   - Handles are registered once (name + labels) and then incremented
//     with zero allocations: Counter.Add is a single atomic add on a
//     pre-resolved pointer. Never register on a hot path.
//   - Snapshots are deterministic: series sort by (name, labels), and
//     both encodings are hand-written so the same operation history
//     yields byte-identical output.
//   - Values are integers. Durations are recorded in nanoseconds,
//     ratios as scaled integers (documented per metric); this is what
//     keeps encoding exact and snapshots comparable.
package telemetry

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing series handle. The zero value
// is usable standalone (not exported anywhere) — registry-created
// counters are exported by Snapshot.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Zero allocations.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Zero allocations.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a series handle for a value that goes up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value. Zero allocations.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution handle: cumulative-style
// export, atomic per-bucket counts, zero allocations per Observe.
type Histogram struct {
	bounds  []int64 // inclusive upper bounds, ascending; implicit +Inf last
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// Observe records one value. Zero allocations: a binary search over the
// fixed bounds plus three atomic adds.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []int64 { return append([]int64(nil), h.bounds...) }

// ExpBounds builds n histogram bounds starting at start, each factor
// times the previous — the usual latency/size bucket shape.
func ExpBounds(start int64, factor float64, n int) []int64 {
	out := make([]int64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		b := int64(v)
		if len(out) > 0 && b <= out[len(out)-1] {
			b = out[len(out)-1] + 1
		}
		out = append(out, b)
		v *= factor
	}
	return out
}

// labelKey canonicalizes a label set: sorted by key, joined with
// non-printing separators so distinct sets cannot collide.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(0x1f)
		sb.WriteString(l.Value)
		sb.WriteByte(0x1e)
	}
	return sb.String()
}

// sortLabels returns a sorted copy of a label set.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
