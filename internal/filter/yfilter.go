package filter

import (
	"fmt"
	"sort"
	"sync"

	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// YFilter is a shared-prefix NFA over linear path queries, after [8]
// (Diao et al., "YFilter", ICDE 2002). All registered queries are compiled
// into one automaton whose states are shared between queries with common
// path prefixes, so a single traversal of the document matches every query
// at once. Final-step predicates (attribute tests, nested structural
// predicates) are checked at accepting states.
//
// P2PM runs a *pruned* variant (the paper's YFilterσ): matching is
// restricted to the queries still active after the AES stage, passed per
// document to MatchActive.
type YFilter struct {
	start   *yfState
	nstates int
	queries int
	pool    sync.Pool // *matcher scratch, reused across documents
}

type yfState struct {
	id       int
	children map[string]*yfState
	wildcard *yfState
	dslash   *yfState // descendant-axis helper state, self-looping
	selfLoop bool
	accepts  []yfAccept
}

type yfAccept struct {
	qid      int
	preds    []xpath.Pred
	termAttr string // terminal @attr step: attribute must exist
	termText bool   // terminal text() step: element must carry text
}

// NewYFilter returns an empty automaton.
func NewYFilter() *YFilter {
	y := &YFilter{}
	y.start = y.newState()
	return y
}

func (y *YFilter) newState() *yfState {
	s := &yfState{id: y.nstates, children: make(map[string]*yfState)}
	y.nstates++
	return s
}

// States returns the number of NFA states, the quantity whose sub-linear
// growth in the number of queries is YFilter's core scaling claim
// (bench C4).
func (y *YFilter) States() int { return y.nstates }

// Queries returns the number of registered queries.
func (y *YFilter) Queries() int { return y.queries }

// Add compiles a linear path query into the automaton under the given
// query ID. Paths are evaluated rooted at the document: the first step
// tests the document's root element. Non-linear paths are rejected; the
// caller (Filter) falls back to direct tree-pattern evaluation for those.
func (y *YFilter) Add(qid int, p *xpath.Path) error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("filter: empty path")
	}
	if !p.IsLinear() {
		return fmt.Errorf("filter: path %s is not linear", p)
	}
	cur := y.start
	acc := yfAccept{qid: qid}
	for i, step := range p.Steps {
		switch step.Kind {
		case xpath.AttrKind:
			if i == 0 {
				return fmt.Errorf("filter: attribute-only path %s", p)
			}
			acc.termAttr = step.Label
			continue
		case xpath.TextKind:
			if i == 0 {
				return fmt.Errorf("filter: text-only path %s", p)
			}
			acc.termText = true
			continue
		}
		if step.Axis == xpath.Descendant {
			if cur.dslash == nil {
				cur.dslash = y.newState()
				cur.dslash.selfLoop = true
			}
			cur = cur.dslash
		}
		var next *yfState
		if step.Label == "*" {
			if cur.wildcard == nil {
				cur.wildcard = y.newState()
			}
			next = cur.wildcard
		} else {
			next = cur.children[step.Label]
			if next == nil {
				next = y.newState()
				cur.children[step.Label] = next
			}
		}
		cur = next
		// IsLinear guarantees predicates occur only on the last element
		// step, so collecting them unconditionally is safe.
		acc.preds = append(acc.preds, step.Preds...)
	}
	cur.accepts = append(cur.accepts, acc)
	y.queries++
	return nil
}

// MatchResult reports which queries matched and how much work the run did.
type MatchResult struct {
	Matched     []int // query IDs, ascending, deduplicated
	Transitions int   // NFA transitions taken (work measure for C4)
}

// matcher holds per-run scratch space: an epoch-stamped visited array for
// deduplicating NFA state sets (self-looping descendant states would
// otherwise multiply).
type matcher struct {
	seen  []uint32
	epoch uint32
}

func (y *YFilter) getMatcher() *matcher {
	m, _ := y.pool.Get().(*matcher)
	if m == nil {
		m = &matcher{}
	}
	if len(m.seen) < y.nstates {
		m.seen = make([]uint32, y.nstates)
		m.epoch = 0
	}
	// Guard against epoch wrap-around on very long-lived matchers: a wrap
	// could alias stale stamps and drop states silently.
	if m.epoch > ^uint32(0)-1<<16 {
		clear(m.seen)
		m.epoch = 0
	}
	return m
}

// add appends s (and its dslash closure) to dst, deduplicating within the
// current epoch.
func (m *matcher) add(dst []*yfState, s *yfState) []*yfState {
	for {
		if m.seen[s.id] != m.epoch {
			m.seen[s.id] = m.epoch
			dst = append(dst, s)
		}
		if s.dslash == nil {
			return dst
		}
		s = s.dslash
	}
}

// MatchAll matches every registered query against the document.
func (y *YFilter) MatchAll(doc *xmltree.Node) MatchResult {
	return y.match(doc, nil)
}

// MatchActive matches only the queries in the active set (YFilterσ).
// A nil active set means "all queries".
func (y *YFilter) MatchActive(doc *xmltree.Node, active map[int]bool) MatchResult {
	if active != nil && len(active) == 0 {
		return MatchResult{}
	}
	return y.match(doc, active)
}

func (y *YFilter) match(doc *xmltree.Node, active map[int]bool) MatchResult {
	var res MatchResult
	m := y.getMatcher()
	defer y.pool.Put(m)
	matched := make(map[int]bool)

	// The start set is the closure of the start state: the virtual
	// document node sits "above" the root element, so /a tests the root
	// element and //a tests any element.
	m.epoch++
	var startSet []*yfState
	startSet = m.add(startSet, y.start)

	var visit func(n *xmltree.Node, activeStates []*yfState)
	visit = func(n *xmltree.Node, activeStates []*yfState) {
		if n.IsText() {
			return
		}
		m.epoch++
		var next []*yfState
		for _, s := range activeStates {
			if t := s.children[n.Label]; t != nil {
				res.Transitions++
				next = m.add(next, t)
			}
			if s.wildcard != nil {
				res.Transitions++
				next = m.add(next, s.wildcard)
			}
			if s.selfLoop {
				next = m.add(next, s)
			}
		}
		for _, s := range next {
			for _, acc := range s.accepts {
				if active != nil && !active[acc.qid] {
					continue
				}
				if matched[acc.qid] {
					continue
				}
				if acceptHolds(acc, n) {
					matched[acc.qid] = true
				}
			}
		}
		if len(next) == 0 {
			return // no state can progress below this element
		}
		for _, c := range n.Children {
			visit(c, next)
		}
	}
	visit(doc, startSet)

	res.Matched = make([]int, 0, len(matched))
	for q := range matched {
		res.Matched = append(res.Matched, q)
	}
	sort.Ints(res.Matched)
	return res
}

func acceptHolds(acc yfAccept, n *xmltree.Node) bool {
	if acc.termAttr != "" {
		if _, ok := n.Attr(acc.termAttr); !ok {
			return false
		}
	}
	if acc.termText && n.InnerText() == "" {
		return false
	}
	return xpath.PredsHold(n, acc.preds, nil)
}
