package filter

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAESInsertValidation(t *testing.T) {
	a := NewAES()
	if err := a.Insert(nil, 0); err == nil {
		t.Error("empty sequence should fail")
	}
	if err := a.Insert([]int{2, 1}, 0); err == nil {
		t.Error("descending sequence should fail")
	}
	if err := a.Insert([]int{1, 1}, 0); err == nil {
		t.Error("duplicate condition should fail")
	}
	if err := a.Insert([]int{1, 2}, 0); err != nil {
		t.Errorf("valid insert failed: %v", err)
	}
	if a.Size() != 1 {
		t.Errorf("Size = %d", a.Size())
	}
}

// TestAESFigure6 builds exactly the subscription set of Figure 6:
//
//	Q1 = C1, C2, Q'1      Q4 = C1, C3, Q'4
//	Q2 = C1, C2, Q'2      Q5 = C1
//	Q3 = C3, Q'3          Q6 = C1, C2, C4, Q'6
//
// (complex parts are irrelevant to the AES itself) and checks the paper's
// worked example: a document satisfying {C1, C3} yields exactly
// {Q3, Q4, Q5}.
func TestAESFigure6(t *testing.T) {
	const (
		c1, c2, c3, c4         = 1, 2, 3, 4
		q1, q2, q3, q4, q5, q6 = 1, 2, 3, 4, 5, 6
	)
	a := NewAES()
	mustInsert := func(seq []int, q int) {
		t.Helper()
		if err := a.Insert(seq, q); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert([]int{c1, c2}, q1)
	mustInsert([]int{c1, c2}, q2)
	mustInsert([]int{c3}, q3)
	mustInsert([]int{c1, c3}, q4)
	mustInsert([]int{c1}, q5)
	mustInsert([]int{c1, c2, c4}, q6)

	got, _ := a.Match([]int{c1, c3})
	if fmt.Sprint(got) != fmt.Sprint([]int{q3, q4, q5}) {
		t.Errorf("Match(C1,C3) = %v, want [3 4 5]", got)
	}

	// All conditions satisfied: everything matches.
	got, _ = a.Match([]int{c1, c2, c3, c4})
	if fmt.Sprint(got) != fmt.Sprint([]int{q1, q2, q3, q4, q5, q6}) {
		t.Errorf("Match(all) = %v", got)
	}

	// C2 alone matches nothing (C2 only appears after C1).
	if got, _ := a.Match([]int{c2}); len(got) != 0 {
		t.Errorf("Match(C2) = %v, want empty", got)
	}

	// The structure itself: H has C1 and C3; H[C1] has C2 and C3; H[C1,C2]
	// has C4 marked with Q6 — mirrors the paper's figure.
	dump := a.Dump(func(id int) string { return fmt.Sprintf("C%d", id) })
	for _, want := range []string{
		"H: C1{#5} C3{#3}",
		"H[C1]: C2{#1,#2} C3{#4}",
		"H[C1,C2]: C4{#6}",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestAESSubsequenceSemantics(t *testing.T) {
	a := NewAES()
	if err := a.Insert([]int{1, 3, 5}, 7); err != nil {
		t.Fatal(err)
	}
	// Satisfied list is a strict superset interleaving other conditions.
	if got, _ := a.Match([]int{0, 1, 2, 3, 4, 5, 6}); len(got) != 1 || got[0] != 7 {
		t.Errorf("got %v", got)
	}
	// Missing middle condition: no match.
	if got, _ := a.Match([]int{1, 5}); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestAESEmptyMatch(t *testing.T) {
	a := NewAES()
	if got, probes := a.Match(nil); len(got) != 0 || probes != 0 {
		t.Errorf("got %v probes=%d", got, probes)
	}
}

func TestAESProbesBounded(t *testing.T) {
	// Probes depend on satisfied conditions and activated tables, not on
	// total subscriptions sharing no conditions with the document.
	a := NewAES()
	for i := 0; i < 1000; i++ {
		if err := a.Insert([]int{10 + i}, i); err != nil {
			t.Fatal(err)
		}
	}
	_, probes := a.Match([]int{5}) // condition 5 is in no subscription
	if probes != 1 {
		t.Errorf("probes = %d, want 1 (single root probe)", probes)
	}
}

// Property: brute-force subset check agrees with the hash-tree.
func TestQuickAESMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rnd := newRand(seed)
		a := NewAES()
		type entry struct {
			seq []int
			id  int
		}
		var subs []entry
		nconds := 8
		for i := 0; i < 12; i++ {
			var seq []int
			for c := 0; c < nconds; c++ {
				if rnd.Intn(3) == 0 {
					seq = append(seq, c)
				}
			}
			if len(seq) == 0 {
				continue
			}
			if err := a.Insert(seq, i); err != nil {
				return false
			}
			subs = append(subs, entry{seq, i})
		}
		var satisfied []int
		for c := 0; c < nconds; c++ {
			if rnd.Intn(2) == 0 {
				satisfied = append(satisfied, c)
			}
		}
		got, _ := a.Match(satisfied)
		sat := make(map[int]bool)
		for _, c := range satisfied {
			sat[c] = true
		}
		var want []int
		for _, s := range subs {
			all := true
			for _, c := range s.seq {
				if !sat[c] {
					all = false
					break
				}
			}
			if all {
				want = append(want, s.id)
			}
		}
		sort.Ints(want)
		return fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

type lcg struct{ state uint64 }

func newRand(seed int64) *lcg { return &lcg{state: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) Intn(n int) int {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return int((l.state >> 33) % uint64(n))
}
