package filter

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// Subscription is a filtering subscription in the sense of Section 4: a
// conjunction of simple conditions on root attributes plus zero or more
// complex tree-pattern queries. A subscription with no complex part is
// *simple*; otherwise it is *complex*.
type Subscription struct {
	ID      string
	Simple  []Cond
	Complex []*xpath.Path
}

// IsSimple reports whether the subscription has no complex part.
func (s Subscription) IsSimple() bool { return len(s.Complex) == 0 }

// Mode selects the matching strategy, primarily for the C2 ablation.
type Mode int

const (
	// ModeTwoStage is the paper's design: preFilter + AES first, then a
	// YFilter pruned to the active complex subscriptions.
	ModeTwoStage Mode = iota
	// ModeYFilterOnly skips the simple-condition stages: every complex
	// query runs through the (unpruned) YFilter and simple conditions are
	// checked afterwards, per candidate.
	ModeYFilterOnly
	// ModeNaive evaluates every subscription independently against the
	// document: linear in the number of subscriptions.
	ModeNaive
)

func (m Mode) String() string {
	switch m {
	case ModeTwoStage:
		return "two-stage"
	case ModeYFilterOnly:
		return "yfilter-only"
	case ModeNaive:
		return "naive"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Materializer resolves ActiveXML service calls inside a document before
// complex matching; it returns the number of calls performed. It is
// invoked only when some complex subscription is still active — this is
// the lazy strategy of Section 4 that "avoids the unnecessary call to
// service storage@site".
type Materializer func(*xmltree.Node) (int, error)

// Stats are cumulative counters over all matched documents.
type Stats struct {
	Docs            uint64 // documents processed
	PreFilterEvals  uint64 // simple-condition evaluations
	AESProbes       uint64 // hash-tree probes
	YFilterRuns     uint64 // documents that reached the YFilter stage
	YFilterSkips    uint64 // documents rejected before the YFilter stage
	NFATransitions  uint64 // transitions taken inside YFilter
	ServiceCalls    uint64 // ActiveXML materialization calls
	BodiesParsed    uint64 // MatchSerialized: documents fully parsed
	BodiesSkipped   uint64 // MatchSerialized: first-tag-only documents
	MatchesReported uint64 // total subscription matches emitted
}

type sub struct {
	Subscription
	handle  int   // index in rebuilt order
	seq     []int // ascending simple-condition IDs
	pathIDs []int // YFilter query IDs (parallel to Complex) or nil
	direct  []*xpath.Path
}

// directEvalThreshold bounds the "virtually pruned" fast path: when the
// active complex-query set is at most this large (and a small fraction of
// all registered queries), the filter evaluates the active tree patterns
// directly instead of running the shared NFA — the per-document pruning
// Section 4 describes. Dense active sets still use the shared automaton,
// which amortizes across queries.
const directEvalThreshold = 16

// Filter is the multi-subscription stream filter of Section 4 (Figure 5):
// preFilter → AESFilter → YFilterσ, with lazy ActiveXML materialization.
// Subscriptions can be added and removed at run time; structural rebuilds
// happen lazily (the "offline adjustment" dotted path of Figure 5).
type Filter struct {
	mu    sync.RWMutex
	subs  map[string]*Subscription
	order []string // insertion order, drives deterministic condition IDs
	dirty bool

	// Built structures (valid when !dirty):
	reg          *condRegistry
	aes          *AES
	yf           *YFilter
	built        []*sub
	byHandle     []*sub
	alwaysActive []*sub // complex subscriptions with no simple conditions
	pathOwner    []pathRef
	pathByQID    []*xpath.Path

	materializer Materializer

	stats struct {
		docs, preEvals, aesProbes, yfRuns, yfSkips atomic.Uint64
		nfaTrans, svcCalls, parsed, skipped, outs  atomic.Uint64
	}
}

type pathRef struct {
	subHandle int
	pathIdx   int
}

// New returns an empty filter.
func New() *Filter {
	return &Filter{subs: make(map[string]*Subscription)}
}

// SetMaterializer installs the ActiveXML materialization hook.
func (f *Filter) SetMaterializer(m Materializer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.materializer = m
}

// Add registers a subscription. Adding an ID that already exists replaces
// the previous definition.
func (f *Filter) Add(s Subscription) error {
	if s.ID == "" {
		return fmt.Errorf("filter: subscription needs an ID")
	}
	if len(s.Simple) == 0 && len(s.Complex) == 0 {
		return fmt.Errorf("filter: subscription %s has no conditions", s.ID)
	}
	for _, c := range s.Simple {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("subscription %s: %w", s.ID, err)
		}
	}
	for _, p := range s.Complex {
		if p == nil || len(p.Steps) == 0 {
			return fmt.Errorf("filter: subscription %s has an empty complex query", s.ID)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, exists := f.subs[s.ID]; !exists {
		f.order = append(f.order, s.ID)
	}
	cp := s
	cp.Simple = append([]Cond(nil), s.Simple...)
	cp.Complex = append([]*xpath.Path(nil), s.Complex...)
	f.subs[s.ID] = &cp
	f.dirty = true
	return nil
}

// Remove drops a subscription; removing an unknown ID is a no-op.
func (f *Filter) Remove(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.subs[id]; !ok {
		return
	}
	delete(f.subs, id)
	for i, x := range f.order {
		if x == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	f.dirty = true
}

// Len returns the number of registered subscriptions.
func (f *Filter) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.subs)
}

// rebuild reconstructs the condition registry, AES hash-tree and YFilter
// automaton from the current subscription set. Callers hold f.mu.
func (f *Filter) rebuild() {
	f.reg = newCondRegistry()
	f.aes = NewAES()
	f.yf = NewYFilter()
	f.built = f.built[:0]
	f.alwaysActive = f.alwaysActive[:0]
	f.pathOwner = f.pathOwner[:0]
	f.pathByQID = f.pathByQID[:0]
	f.byHandle = f.byHandle[:0]
	for _, id := range f.order {
		src := f.subs[id]
		s := &sub{Subscription: *src, handle: len(f.byHandle)}
		s.seq = f.reg.normalizeSimple(src.Simple)
		for i, p := range src.Complex {
			if p.IsLinear() {
				qid := len(f.pathOwner)
				f.pathOwner = append(f.pathOwner, pathRef{subHandle: s.handle, pathIdx: i})
				if err := f.yf.Add(qid, p); err == nil {
					s.pathIDs = append(s.pathIDs, qid)
					f.pathByQID = append(f.pathByQID, p)
					continue
				}
				f.pathOwner = f.pathOwner[:qid]
			}
			// Non-linear tree patterns are evaluated directly per active
			// document; rare in practice, but supported.
			s.direct = append(s.direct, p)
		}
		if len(s.seq) > 0 {
			if err := f.aes.Insert(s.seq, s.handle); err != nil {
				// normalizeSimple produces strictly ascending non-empty
				// sequences; an error here is a programming bug.
				panic(err)
			}
		} else {
			f.alwaysActive = append(f.alwaysActive, s)
		}
		f.built = append(f.built, s)
		f.byHandle = append(f.byHandle, s)
	}
	f.dirty = false
}

// snapshot returns the built structures, rebuilding first if needed.
func (f *Filter) snapshot() *Filter {
	f.mu.RLock()
	if !f.dirty {
		defer f.mu.RUnlock()
		return f
	}
	f.mu.RUnlock()
	f.mu.Lock()
	if f.dirty {
		f.rebuild()
	}
	f.mu.Unlock()
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f
}

// Match runs the full two-stage pipeline on a parsed document and returns
// the IDs of matching subscriptions in registration order.
func (f *Filter) Match(doc *xmltree.Node) ([]string, error) {
	return f.MatchMode(doc, ModeTwoStage)
}

// MatchMode matches with an explicit strategy (for the C2 ablation).
func (f *Filter) MatchMode(doc *xmltree.Node, mode Mode) ([]string, error) {
	if doc == nil {
		return nil, fmt.Errorf("filter: nil document")
	}
	f.snapshot()
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.stats.docs.Add(1)
	switch mode {
	case ModeTwoStage:
		return f.matchTwoStage(doc)
	case ModeYFilterOnly:
		return f.matchYFilterOnly(doc)
	case ModeNaive:
		return f.matchNaive(doc)
	}
	return nil, fmt.Errorf("filter: unknown mode %v", mode)
}

func (f *Filter) matchTwoStage(doc *xmltree.Node) ([]string, error) {
	satisfied, evals := f.reg.preFilter(doc.Attrs)
	f.stats.preEvals.Add(uint64(evals))
	handles, probes := f.aes.Match(satisfied)
	f.stats.aesProbes.Add(uint64(probes))

	var out []*sub
	// Active complex subscriptions: AES survivors with a complex part,
	// plus subscriptions that have no simple conditions at all.
	var activeComplex []*sub
	for _, h := range handles {
		s := f.byHandle[h]
		if s.IsSimple() {
			out = append(out, s)
		} else {
			activeComplex = append(activeComplex, s)
		}
	}
	activeComplex = append(activeComplex, f.alwaysActive...)
	if len(activeComplex) == 0 {
		f.stats.yfSkips.Add(1)
		return f.report(out), nil
	}
	matched, err := f.runComplex(doc, activeComplex)
	if err != nil {
		return nil, err
	}
	out = append(out, matched...)
	return f.report(out), nil
}

// runComplex materializes service calls if needed and evaluates the
// complex parts of the given active subscriptions via YFilterσ (plus
// direct evaluation for non-linear patterns).
func (f *Filter) runComplex(doc *xmltree.Node, active []*sub) ([]*sub, error) {
	if f.materializer != nil {
		calls, err := f.materializer(doc)
		f.stats.svcCalls.Add(uint64(calls))
		if err != nil {
			return nil, fmt.Errorf("filter: materialization failed: %w", err)
		}
	}
	f.stats.yfRuns.Add(1)
	activeQ := make(map[int]bool)
	for _, s := range active {
		for _, qid := range s.pathIDs {
			activeQ[qid] = true
		}
	}
	var matchedQ map[int]bool
	switch {
	case len(activeQ) == 0:
	case len(activeQ) <= directEvalThreshold && len(activeQ)*8 <= f.yf.Queries():
		// Virtually pruned automaton: with only a handful of active
		// queries, evaluating them directly beats traversing the shared
		// NFA built for the full workload.
		matchedQ = make(map[int]bool, len(activeQ))
		for qid := range activeQ {
			if matchRooted(f.pathByQID[qid], doc) {
				matchedQ[qid] = true
			}
		}
	default:
		res := f.yf.MatchActive(doc, activeQ)
		f.stats.nfaTrans.Add(uint64(res.Transitions))
		matchedQ = make(map[int]bool, len(res.Matched))
		for _, q := range res.Matched {
			matchedQ[q] = true
		}
	}
	var out []*sub
	for _, s := range active {
		ok := true
		for _, qid := range s.pathIDs {
			if !matchedQ[qid] {
				ok = false
				break
			}
		}
		if ok {
			for _, p := range s.direct {
				if !matchRooted(p, doc) {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out, nil
}

// matchRooted evaluates a tree pattern the way the filter defines it:
// rooted at a virtual document node above the item, so /a tests the root
// element and //a any element — identical to YFilter's semantics.
func matchRooted(p *xpath.Path, doc *xmltree.Node) bool {
	if p.Rooted {
		return p.Matches(doc, nil)
	}
	wrap := xmltree.Elem("#doc", doc)
	return p.Matches(wrap, nil)
}

func (f *Filter) matchYFilterOnly(doc *xmltree.Node) ([]string, error) {
	// Every complex query is active; simple conditions are evaluated per
	// candidate afterwards — no preFilter, no AES.
	matched, err := f.runComplex(doc, f.built)
	if err != nil {
		return nil, err
	}
	var out []*sub
	for _, s := range matched {
		if f.simpleHold(s, doc) {
			out = append(out, s)
		}
	}
	return f.report(out), nil
}

func (f *Filter) matchNaive(doc *xmltree.Node) ([]string, error) {
	if f.materializer != nil {
		calls, err := f.materializer(doc)
		f.stats.svcCalls.Add(uint64(calls))
		if err != nil {
			return nil, err
		}
	}
	var out []*sub
	for _, s := range f.built {
		if !f.simpleHold(s, doc) {
			continue
		}
		ok := true
		for _, p := range s.Complex {
			if !matchRooted(p, doc) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return f.report(out), nil
}

func (f *Filter) simpleHold(s *sub, doc *xmltree.Node) bool {
	for _, id := range s.seq {
		c := f.reg.conds[id]
		v, ok := doc.Attr(c.Attr)
		if !ok || !c.Eval(v) {
			return false
		}
	}
	return true
}

func (f *Filter) report(matched []*sub) []string {
	sort.Slice(matched, func(i, j int) bool { return matched[i].handle < matched[j].handle })
	out := make([]string, 0, len(matched))
	var last string
	for _, s := range matched {
		if s.ID == last {
			continue
		}
		out = append(out, s.ID)
		last = s.ID
	}
	f.stats.outs.Add(uint64(len(out)))
	return out
}

// MatchSerialized filters a document from its serialized form. When the
// simple-condition stages already determine the outcome (no complex
// subscription remains active), the document body is never parsed — only
// its first tag is read, which is the paper's "on the fly" fast path.
func (f *Filter) MatchSerialized(raw string) ([]string, error) {
	f.snapshot()
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.stats.docs.Add(1)

	_, attrs, err := xmltree.ReadFirstTag(raw)
	if err != nil {
		return nil, err
	}
	satisfied, evals := f.reg.preFilter(attrs)
	f.stats.preEvals.Add(uint64(evals))
	handles, probes := f.aes.Match(satisfied)
	f.stats.aesProbes.Add(uint64(probes))

	var out []*sub
	var activeComplex []*sub
	for _, h := range handles {
		s := f.byHandle[h]
		if s.IsSimple() {
			out = append(out, s)
		} else {
			activeComplex = append(activeComplex, s)
		}
	}
	activeComplex = append(activeComplex, f.alwaysActive...)
	if len(activeComplex) == 0 {
		f.stats.yfSkips.Add(1)
		f.stats.skipped.Add(1)
		return f.report(out), nil
	}
	doc, err := xmltree.Parse(raw)
	if err != nil {
		return nil, err
	}
	f.stats.parsed.Add(1)
	matched, err := f.runComplex(doc, activeComplex)
	if err != nil {
		return nil, err
	}
	out = append(out, matched...)
	return f.report(out), nil
}

// Stats returns a snapshot of the cumulative counters.
func (f *Filter) Stats() Stats {
	return Stats{
		Docs:            f.stats.docs.Load(),
		PreFilterEvals:  f.stats.preEvals.Load(),
		AESProbes:       f.stats.aesProbes.Load(),
		YFilterRuns:     f.stats.yfRuns.Load(),
		YFilterSkips:    f.stats.yfSkips.Load(),
		NFATransitions:  f.stats.nfaTrans.Load(),
		ServiceCalls:    f.stats.svcCalls.Load(),
		BodiesParsed:    f.stats.parsed.Load(),
		BodiesSkipped:   f.stats.skipped.Load(),
		MatchesReported: f.stats.outs.Load(),
	}
}

// DumpAES renders the AES hash-tree (Figure 6 style) for inspection.
func (f *Filter) DumpAES() string {
	f.snapshot()
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.aes.Dump(func(id int) string { return f.reg.conds[id].String() })
}

// YFilterStates exposes the NFA size for the scaling experiments.
func (f *Filter) YFilterStates() int {
	f.snapshot()
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.yf.States()
}
