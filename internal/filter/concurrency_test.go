package filter

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// TestFilterConcurrentMatchAndAdjust hammers the filter with concurrent
// matching and online subscription changes — the runtime behavior a
// long-lived monitoring peer exhibits. Run with -race for full value.
func TestFilterConcurrentMatchAndAdjust(t *testing.T) {
	f := New()
	for i := 0; i < 200; i++ {
		mustAdd(t, f, Subscription{
			ID:     fmt.Sprintf("base-%03d", i),
			Simple: []Cond{{Attr: fmt.Sprintf("a%02d", i%20), Op: xpath.OpEq, Value: "v"}},
		})
	}
	docs := make([]*xmltree.Node, 16)
	for i := range docs {
		d := xmltree.Elem("alert")
		d.SetAttr(fmt.Sprintf("a%02d", i), "v")
		d.Append(xmltree.Elem("body", xmltree.Elem("c")))
		docs[i] = d
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := f.Match(docs[(w+i)%len(docs)]); err != nil {
					t.Errorf("match: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("dyn-%d-%d", w, i)
				if err := f.Add(Subscription{
					ID:      id,
					Simple:  []Cond{{Attr: "a00", Op: xpath.OpEq, Value: "v"}},
					Complex: []*xpath.Path{xpath.MustCompile(`//c`)},
				}); err != nil {
					t.Errorf("add: %v", err)
					return
				}
				f.Remove(id)
			}
		}(w)
	}
	wg.Wait()
	if f.Len() != 200 {
		t.Errorf("Len = %d after churn", f.Len())
	}
}

// TestQuickMatchSerializedAgreesWithMatch: the serialized fast path must
// report exactly what the parsed path reports, for any document.
func TestQuickMatchSerializedAgreesWithMatch(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "s1", Simple: []Cond{{Attr: "k0", Op: xpath.OpEq, Value: "v0"}}})
	mustAdd(t, f, Subscription{ID: "s2",
		Simple:  []Cond{{Attr: "k1", Op: xpath.OpEq, Value: "v1"}},
		Complex: []*xpath.Path{xpath.MustCompile(`//b`)}})
	mustAdd(t, f, Subscription{ID: "s3", Complex: []*xpath.Path{xpath.MustCompile(`//c//d`)}})

	prop := func(seed int64) bool {
		doc := genTree(newRand(seed), 4)
		parsed, err1 := f.Match(doc)
		serial, err2 := f.MatchSerialized(doc.String())
		if err1 != nil || err2 != nil {
			t.Logf("errs: %v %v", err1, err2)
			return false
		}
		return fmt.Sprint(parsed) == fmt.Sprint(serial)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDirectEvalAgreesWithNFA: the "virtually pruned" direct path
// and the shared NFA must agree for any active-set size. We force both
// paths by controlling the subscription count around the threshold.
func TestQuickDirectEvalAgreesWithNFA(t *testing.T) {
	queries := []string{`//a`, `//a/b`, `/a//c`, `//b[@k0 = "v0"]`, `//d//a`}
	// Small filter: active set is a large fraction -> NFA path.
	small := New()
	// Large filter: same queries plus many inert ones -> direct path for
	// the active few.
	large := New()
	for i, q := range queries {
		sub := Subscription{
			ID:      fmt.Sprintf("q%d", i),
			Simple:  []Cond{{Attr: "sel", Op: xpath.OpEq, Value: "yes"}},
			Complex: []*xpath.Path{xpath.MustCompile(q)},
		}
		mustAdd(t, small, sub)
		mustAdd(t, large, sub)
	}
	for i := 0; i < 400; i++ {
		mustAdd(t, large, Subscription{
			ID:      fmt.Sprintf("inert-%03d", i),
			Simple:  []Cond{{Attr: "never", Op: xpath.OpEq, Value: fmt.Sprintf("x%d", i)}},
			Complex: []*xpath.Path{xpath.MustCompile(fmt.Sprintf(`//z%d`, i))},
		})
	}
	prop := func(seed int64) bool {
		doc := genTree(newRand(seed), 4)
		doc.SetAttr("sel", "yes")
		a, err1 := small.Match(doc)
		b, err2 := large.Match(doc)
		if err1 != nil || err2 != nil {
			return false
		}
		return fmt.Sprint(a) == fmt.Sprint(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
