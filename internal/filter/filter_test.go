package filter

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"p2pm/internal/axml"
	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

func simpleCond(attr, op, val string) Cond {
	o, err := xpath.ParseOp(op)
	if err != nil {
		panic(err)
	}
	return Cond{Attr: attr, Op: o, Value: val}
}

func TestFilterSimpleOnly(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "hot", Simple: []Cond{simpleCond("temp", ">", "30")}})
	mustAdd(t, f, Subscription{ID: "paris", Simple: []Cond{simpleCond("city", "=", "paris")}})
	mustAdd(t, f, Subscription{ID: "hot-paris", Simple: []Cond{
		simpleCond("temp", ">", "30"), simpleCond("city", "=", "paris")}})

	got := mustMatch(t, f, `<m temp="35" city="paris"/>`)
	if fmt.Sprint(got) != "[hot paris hot-paris]" {
		t.Errorf("got %v", got)
	}
	got = mustMatch(t, f, `<m temp="20" city="paris"/>`)
	if fmt.Sprint(got) != "[paris]" {
		t.Errorf("got %v", got)
	}
	got = mustMatch(t, f, `<m temp="35"/>`)
	if fmt.Sprint(got) != "[hot]" {
		t.Errorf("got %v", got)
	}
}

func mustAdd(t *testing.T, f *Filter, s Subscription) {
	t.Helper()
	if err := f.Add(s); err != nil {
		t.Fatal(err)
	}
}

func mustMatch(t *testing.T, f *Filter, doc string) []string {
	t.Helper()
	got, err := f.Match(xmltree.MustParse(doc))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFilterComplexGating(t *testing.T) {
	// Complex query is only evaluated when simple conditions pass.
	f := New()
	mustAdd(t, f, Subscription{
		ID:      "q",
		Simple:  []Cond{simpleCond("type", "=", "alert")},
		Complex: []*xpath.Path{xpath.MustCompile(`//c/d`)},
	})
	if got := mustMatch(t, f, `<m type="alert"><c><d/></c></m>`); len(got) != 1 {
		t.Errorf("got %v", got)
	}
	if got := mustMatch(t, f, `<m type="other"><c><d/></c></m>`); len(got) != 0 {
		t.Errorf("got %v", got)
	}
	if got := mustMatch(t, f, `<m type="alert"><c/></m>`); len(got) != 0 {
		t.Errorf("got %v", got)
	}
	st := f.Stats()
	if st.YFilterRuns != 2 || st.YFilterSkips != 1 {
		t.Errorf("runs=%d skips=%d, want 2/1", st.YFilterRuns, st.YFilterSkips)
	}
}

func TestFilterNoSimpleConditions(t *testing.T) {
	// Subscriptions without simple conditions are always active.
	f := New()
	mustAdd(t, f, Subscription{ID: "anyB", Complex: []*xpath.Path{xpath.MustCompile(`//b`)}})
	if got := mustMatch(t, f, `<a><b/></a>`); len(got) != 1 {
		t.Errorf("got %v", got)
	}
	if got := mustMatch(t, f, `<a><c/></a>`); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestFilterMultiPathConjunction(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "both", Complex: []*xpath.Path{
		xpath.MustCompile(`//b`), xpath.MustCompile(`//c`)}})
	if got := mustMatch(t, f, `<a><b/><c/></a>`); len(got) != 1 {
		t.Errorf("got %v", got)
	}
	if got := mustMatch(t, f, `<a><b/></a>`); len(got) != 0 {
		t.Errorf("conjunction half-matched: %v", got)
	}
}

func TestFilterNonLinearFallback(t *testing.T) {
	// Interior-predicate paths can't go through YFilter; direct evaluation
	// must still give correct results.
	f := New()
	p := xpath.MustCompile(`//order[@status = "paid"]/item`)
	if p.IsLinear() {
		t.Fatal("test premise wrong: path should be non-linear")
	}
	mustAdd(t, f, Subscription{ID: "paid-items", Complex: []*xpath.Path{p}})
	if got := mustMatch(t, f, `<r><order status="paid"><item/></order></r>`); len(got) != 1 {
		t.Errorf("got %v", got)
	}
	if got := mustMatch(t, f, `<r><order status="open"><item/></order></r>`); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestFilterValidation(t *testing.T) {
	f := New()
	if err := f.Add(Subscription{}); err == nil {
		t.Error("empty subscription accepted")
	}
	if err := f.Add(Subscription{ID: "x"}); err == nil {
		t.Error("no conditions accepted")
	}
	if err := f.Add(Subscription{ID: "x", Simple: []Cond{{Attr: ""}}}); err == nil {
		t.Error("bad condition accepted")
	}
	if err := f.Add(Subscription{ID: "x", Complex: []*xpath.Path{nil}}); err == nil {
		t.Error("nil path accepted")
	}
}

func TestFilterAddReplaceRemove(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "q", Simple: []Cond{simpleCond("a", "=", "1")}})
	if got := mustMatch(t, f, `<m a="1"/>`); len(got) != 1 {
		t.Fatal("initial subscription should match")
	}
	// Replace with a different condition.
	mustAdd(t, f, Subscription{ID: "q", Simple: []Cond{simpleCond("a", "=", "2")}})
	if f.Len() != 1 {
		t.Fatalf("Len = %d after replace", f.Len())
	}
	if got := mustMatch(t, f, `<m a="1"/>`); len(got) != 0 {
		t.Error("old definition still matching")
	}
	if got := mustMatch(t, f, `<m a="2"/>`); len(got) != 1 {
		t.Error("new definition not matching")
	}
	f.Remove("q")
	f.Remove("q") // idempotent
	if got := mustMatch(t, f, `<m a="2"/>`); len(got) != 0 {
		t.Error("removed subscription still matching")
	}
}

func TestFilterModesAgree(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "s1", Simple: []Cond{simpleCond("k", "=", "v")}})
	mustAdd(t, f, Subscription{ID: "s2",
		Simple:  []Cond{simpleCond("k", "=", "v")},
		Complex: []*xpath.Path{xpath.MustCompile(`//b`)}})
	mustAdd(t, f, Subscription{ID: "s3", Complex: []*xpath.Path{xpath.MustCompile(`//c/d`)}})

	docs := []string{
		`<m k="v"><b/></m>`,
		`<m k="x"><b/><c><d/></c></m>`,
		`<m k="v"/>`,
		`<m><c><d/></c></m>`,
	}
	for _, d := range docs {
		doc := xmltree.MustParse(d)
		two, err1 := f.MatchMode(doc, ModeTwoStage)
		yfo, err2 := f.MatchMode(doc, ModeYFilterOnly)
		nai, err3 := f.MatchMode(doc, ModeNaive)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatal(err1, err2, err3)
		}
		if fmt.Sprint(two) != fmt.Sprint(nai) || fmt.Sprint(yfo) != fmt.Sprint(nai) {
			t.Errorf("doc %s: two=%v yfo=%v naive=%v", d, two, yfo, nai)
		}
	}
}

func TestFilterMatchSerializedSkipsBody(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "simple", Simple: []Cond{simpleCond("k", "=", "v")}})
	// No complex subscriptions: bodies must never be parsed, even when
	// they are garbage.
	got, err := f.MatchSerialized(`<m k="v"><<<broken`)
	if err != nil || fmt.Sprint(got) != "[simple]" {
		t.Fatalf("got %v err %v", got, err)
	}
	st := f.Stats()
	if st.BodiesParsed != 0 || st.BodiesSkipped != 1 {
		t.Errorf("parsed=%d skipped=%d", st.BodiesParsed, st.BodiesSkipped)
	}
}

func TestFilterMatchSerializedParsesWhenComplexActive(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "cx",
		Simple:  []Cond{simpleCond("k", "=", "v")},
		Complex: []*xpath.Path{xpath.MustCompile(`//b`)}})
	got, err := f.MatchSerialized(`<m k="v"><b/></m>`)
	if err != nil || fmt.Sprint(got) != "[cx]" {
		t.Fatalf("got %v err %v", got, err)
	}
	if st := f.Stats(); st.BodiesParsed != 1 {
		t.Errorf("parsed=%d", st.BodiesParsed)
	}
	// Simple conditions fail: body (broken here) untouched.
	if _, err := f.MatchSerialized(`<m k="x"><broken`); err != nil {
		t.Fatalf("body should not be parsed: %v", err)
	}
}

// TestFilterLazyAXML reproduces the Section 4 scenario: a document carries
// an sc call to storage@site; a subscription whose simple conditions fail
// must never trigger the call, while one whose simple conditions pass
// materializes and matches //c/d.
func TestFilterLazyAXML(t *testing.T) {
	reg := axml.NewRegistry()
	reg.Register("storage", func(axml.Call) (*xmltree.Node, error) {
		return xmltree.MustParse(`<c><d>data</d></c>`), nil
	})
	f := New()
	f.SetMaterializer(reg.Materialize)
	mustAdd(t, f, Subscription{ID: "q",
		Simple: []Cond{
			simpleCond("attr1", "=", "x"),
			simpleCond("attr2", "=", "z"),
		},
		Complex: []*xpath.Path{xpath.MustCompile(`//c/d`)}})

	// attr2="y" != "z": simple conditions fail, no call performed.
	doc := xmltree.MustParse(`<root attr1="x" attr2="y"><sc service="storage" address="site"><parameters/></sc></root>`)
	if got := mustMatch(t, f, doc.String()); len(got) != 0 {
		t.Errorf("got %v", got)
	}
	if reg.Calls() != 0 {
		t.Fatalf("service called %d times despite failed simple conditions", reg.Calls())
	}

	// attr2="z": simple conditions pass, call performed, query matches.
	doc2 := xmltree.MustParse(`<root attr1="x" attr2="z"><sc service="storage" address="site"><parameters/></sc></root>`)
	if got := mustMatch(t, f, doc2.String()); len(got) != 1 {
		t.Errorf("got %v", got)
	}
	if reg.Calls() != 1 {
		t.Errorf("calls = %d, want 1", reg.Calls())
	}
}

func TestFilterMaterializerError(t *testing.T) {
	f := New()
	f.SetMaterializer(func(*xmltree.Node) (int, error) { return 0, fmt.Errorf("boom") })
	mustAdd(t, f, Subscription{ID: "q", Complex: []*xpath.Path{xpath.MustCompile(`//b`)}})
	if _, err := f.Match(xmltree.MustParse(`<a><b/></a>`)); err == nil {
		t.Error("materializer error swallowed")
	}
}

func TestFilterSharedConditionsAcrossSubscriptions(t *testing.T) {
	// Many subscriptions sharing one condition: a matching document
	// reports all of them; condition is evaluated once (preFilter) per
	// document, not per subscription.
	f := New()
	for i := 0; i < 50; i++ {
		mustAdd(t, f, Subscription{ID: fmt.Sprintf("s%02d", i),
			Simple: []Cond{simpleCond("shared", "=", "yes")}})
	}
	got := mustMatch(t, f, `<m shared="yes"/>`)
	if len(got) != 50 {
		t.Fatalf("got %d matches", len(got))
	}
	if st := f.Stats(); st.PreFilterEvals != 1 {
		t.Errorf("PreFilterEvals = %d, want 1 (shared condition interned once)", st.PreFilterEvals)
	}
}

func TestFilterDumpAES(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "a", Simple: []Cond{simpleCond("x", "=", "1"), simpleCond("y", "=", "2")}})
	dump := f.DumpAES()
	if !strings.Contains(dump, `@x = "1"`) || !strings.Contains(dump, "H[") {
		t.Errorf("dump = %s", dump)
	}
}

func TestFilterStatsAccumulate(t *testing.T) {
	f := New()
	mustAdd(t, f, Subscription{ID: "q", Simple: []Cond{simpleCond("a", "=", "1")}})
	mustMatch(t, f, `<m a="1"/>`)
	mustMatch(t, f, `<m a="2"/>`)
	st := f.Stats()
	if st.Docs != 2 || st.MatchesReported != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// Property: on random documents and random subscription sets, the
// two-stage pipeline agrees exactly with naive per-subscription
// evaluation. This is the core correctness property of Section 4.
func TestQuickTwoStageAgreesWithNaive(t *testing.T) {
	complexPool := []string{`//a`, `//b/c`, `/a/b`, `//d`, `//c[@k1 = "v1"]`}
	f := func(seed int64) bool {
		rnd := newRand(seed)
		fl := New()
		n := 1 + rnd.Intn(10)
		for i := 0; i < n; i++ {
			var s Subscription
			s.ID = fmt.Sprintf("s%d", i)
			for c := 0; c < rnd.Intn(3); c++ {
				s.Simple = append(s.Simple, Cond{
					Attr:  "k" + string(rune('0'+rnd.Intn(3))),
					Op:    xpath.OpEq,
					Value: "v" + string(rune('0'+rnd.Intn(3))),
				})
			}
			for c := 0; c < rnd.Intn(2); c++ {
				s.Complex = append(s.Complex, xpath.MustCompile(complexPool[rnd.Intn(len(complexPool))]))
			}
			if len(s.Simple) == 0 && len(s.Complex) == 0 {
				s.Simple = append(s.Simple, Cond{Attr: "k0", Op: xpath.OpEq, Value: "v0"})
			}
			if err := fl.Add(s); err != nil {
				return false
			}
		}
		for d := 0; d < 5; d++ {
			doc := genTree(rnd, 4)
			two, err1 := fl.MatchMode(doc, ModeTwoStage)
			nai, err2 := fl.MatchMode(doc, ModeNaive)
			if err1 != nil || err2 != nil || fmt.Sprint(two) != fmt.Sprint(nai) {
				t.Logf("seed=%d doc=%s two=%v naive=%v", seed, doc, two, nai)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
