// Package filter implements the paper's central stream processor
// (Section 4): a multi-subscription filter over streams of XML documents
// that scales to a large number of subscriptions by evaluating cheap
// *simple conditions* on root attributes first (preFilter + the Atomic
// Event Set hash-tree of [15]) and only then running a shared-prefix
// YFilter automaton ([8]) for the *complex* tree-pattern queries that are
// still active.
package filter

import (
	"fmt"
	"sort"
	"strings"

	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// Cond is a simple condition: an equality or inequality between a root
// attribute and a constant, e.g. callee = "http://meteo.com". Simple
// conditions can be tested from the first tag of a document alone.
type Cond struct {
	Attr  string
	Op    xpath.CmpOp
	Value string
}

// String renders the condition in the paper's dot-free form.
func (c Cond) String() string { return fmt.Sprintf("@%s %s %q", c.Attr, c.Op, c.Value) }

// Eval tests the condition against an attribute value.
func (c Cond) Eval(got string) bool { return xpath.Compare(got, c.Op, c.Value) }

// Validate rejects malformed conditions.
func (c Cond) Validate() error {
	if c.Attr == "" {
		return fmt.Errorf("filter: condition with empty attribute name")
	}
	if c.Op == xpath.OpExists {
		return fmt.Errorf("filter: simple conditions need a comparison operator")
	}
	return nil
}

// condRegistry assigns each distinct simple condition a stable integer ID.
// The AES algorithm assumes a total order over simple conditions; we use
// registration order, which is deterministic because the filter rebuilds
// its structures by iterating subscriptions in insertion order.
type condRegistry struct {
	ids    map[Cond]int
	conds  []Cond
	byAttr map[string][]int // attribute name -> IDs of conditions testing it
}

func newCondRegistry() *condRegistry {
	return &condRegistry{ids: make(map[Cond]int), byAttr: make(map[string][]int)}
}

// intern returns the ID for c, registering it if new.
func (r *condRegistry) intern(c Cond) int {
	if id, ok := r.ids[c]; ok {
		return id
	}
	id := len(r.conds)
	r.ids[c] = id
	r.conds = append(r.conds, c)
	r.byAttr[c.Attr] = append(r.byAttr[c.Attr], id)
	return id
}

func (r *condRegistry) len() int { return len(r.conds) }

// preFilter evaluates the registered simple conditions against a
// document's root attributes — nothing else of the document is touched —
// and returns the ordered (ascending ID) list of satisfied conditions.
// evals counts condition evaluations performed, for the benchmarks.
func (r *condRegistry) preFilter(attrs []xmltree.Attr) (satisfied []int, evals int) {
	for _, a := range attrs {
		for _, id := range r.byAttr[a.Name] {
			evals++
			if r.conds[id].Eval(a.Value) {
				satisfied = append(satisfied, id)
			}
		}
	}
	sort.Ints(satisfied)
	// Duplicate attributes cannot occur in well-formed XML, but inputs can
	// be hostile; dedup to keep AES sound.
	satisfied = dedupSorted(satisfied)
	return satisfied, evals
}

func dedupSorted(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// normalizeSimple interns the subscription's simple conditions and returns
// their IDs in ascending order (the AES prefix sequence). Duplicate
// conditions within one subscription collapse.
func (r *condRegistry) normalizeSimple(conds []Cond) []int {
	seq := make([]int, 0, len(conds))
	for _, c := range conds {
		seq = append(seq, r.intern(c))
	}
	sort.Ints(seq)
	return dedupSorted(seq)
}

func condSeqString(r *condRegistry, seq []int) string {
	parts := make([]string, len(seq))
	for i, id := range seq {
		parts[i] = r.conds[id].String()
	}
	return strings.Join(parts, " AND ")
}
