package filter

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

func yf(t *testing.T, queries ...string) *YFilter {
	t.Helper()
	y := NewYFilter()
	for i, q := range queries {
		if err := y.Add(i, xpath.MustCompile(q)); err != nil {
			t.Fatalf("Add(%s): %v", q, err)
		}
	}
	return y
}

func matchAll(y *YFilter, doc string) []int {
	return y.MatchAll(xmltree.MustParse(doc)).Matched
}

func TestYFilterChildAxis(t *testing.T) {
	y := yf(t, `/a/b`, `/a/c`, `/x/b`)
	got := matchAll(y, `<a><b/><z/></a>`)
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("got %v", got)
	}
}

func TestYFilterDescendantAxis(t *testing.T) {
	y := yf(t, `//b`, `/a//c`, `//a//b`)
	got := matchAll(y, `<a><x><b/></x><x><y><c/></y></x></a>`)
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Errorf("got %v", got)
	}
	got = matchAll(y, `<b/>`)
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("root-level //b: got %v", got)
	}
}

func TestYFilterWildcard(t *testing.T) {
	y := yf(t, `/a/*/c`, `/*/b`)
	got := matchAll(y, `<a><b/><q><c/></q></a>`)
	if fmt.Sprint(got) != "[0 1]" {
		t.Errorf("got %v", got)
	}
}

func TestYFilterRepeatedLabelsSelfLoop(t *testing.T) {
	// Deep nesting of the same label must not blow up or miss matches.
	y := yf(t, `//a//a//a`)
	if got := matchAll(y, `<a><a><a/></a></a>`); fmt.Sprint(got) != "[0]" {
		t.Errorf("got %v", got)
	}
	if got := matchAll(y, `<a><a/></a>`); len(got) != 0 {
		t.Errorf("two levels should not match: %v", got)
	}
	deep := `<a><a><a><a><a><a><a/></a></a></a></a></a></a>`
	if got := matchAll(y, deep); fmt.Sprint(got) != "[0]" {
		t.Errorf("deep: got %v", got)
	}
}

func TestYFilterFinalStepPredicates(t *testing.T) {
	y := yf(t,
		`//alert[@callMethod = "GetTemperature"]`,
		`//alert[@callMethod = "Other"]`,
		`//item[price > 10]`,
	)
	got := matchAll(y, `<root><alert callMethod="GetTemperature"/><item><price>30</price></item></root>`)
	if fmt.Sprint(got) != "[0 2]" {
		t.Errorf("got %v", got)
	}
}

func TestYFilterTerminalAttrAndText(t *testing.T) {
	y := yf(t, `/a/b/@id`, `/a/c/text()`)
	got := matchAll(y, `<a><b id="1"/><c>hello</c></a>`)
	if fmt.Sprint(got) != "[0 1]" {
		t.Errorf("got %v", got)
	}
	got = matchAll(y, `<a><b/><c/></a>`)
	if len(got) != 0 {
		t.Errorf("missing attr/text matched: %v", got)
	}
}

func TestYFilterActivePruning(t *testing.T) {
	y := yf(t, `//a`, `//b`, `//c`)
	doc := xmltree.MustParse(`<r><a/><b/><c/></r>`)
	res := y.MatchActive(doc, map[int]bool{1: true})
	if fmt.Sprint(res.Matched) != "[1]" {
		t.Errorf("got %v", res.Matched)
	}
	if res := y.MatchActive(doc, map[int]bool{}); len(res.Matched) != 0 || res.Transitions != 0 {
		t.Errorf("empty active set should short-circuit: %+v", res)
	}
}

func TestYFilterPrefixSharing(t *testing.T) {
	// Queries sharing a prefix must share states: the automaton for
	// /w/x/y1../y100 has 2 shared prefix states + 100 leaves + start,
	// far fewer than 100 separate 3-state chains.
	y := NewYFilter()
	for i := 0; i < 100; i++ {
		if err := y.Add(i, xpath.MustCompile(fmt.Sprintf(`/w/x/y%d`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if y.States() != 1+2+100 {
		t.Errorf("States = %d, want 103", y.States())
	}
	if y.Queries() != 100 {
		t.Errorf("Queries = %d", y.Queries())
	}
}

func TestYFilterRejectsNonLinear(t *testing.T) {
	y := NewYFilter()
	if err := y.Add(0, xpath.MustCompile(`/a[@x = "1"]/b`)); err == nil {
		t.Error("interior predicate should be rejected")
	}
	if err := y.Add(0, xpath.MustCompile(`/@id`)); err == nil {
		t.Error("attribute-only path should be rejected")
	}
}

func TestYFilterStructuralFinalPredicate(t *testing.T) {
	y := yf(t, `/Stream[Operator/Join]`)
	if got := matchAll(y, `<Stream><Operator><Join/></Operator></Stream>`); len(got) != 1 {
		t.Errorf("got %v", got)
	}
	if got := matchAll(y, `<Stream><Operator><Filter/></Operator></Stream>`); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestYFilterDuplicateReporting(t *testing.T) {
	// A query that matches at several document positions is reported once.
	y := yf(t, `//b`)
	got := matchAll(y, `<a><b/><b/><c><b/></c></a>`)
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("got %v", got)
	}
}

// Property: YFilter agrees with direct xpath evaluation on random trees
// and a fixed battery of linear queries.
func TestQuickYFilterAgreesWithXPath(t *testing.T) {
	queries := []string{
		`//a`, `//a/b`, `/a`, `/a//c`, `//b//d`, `/a/*/b`, `//c[@k0 = "v0"]`,
		`//a/@k1`, `//d//a//b`,
	}
	paths := make([]*xpath.Path, len(queries))
	y := NewYFilter()
	for i, q := range queries {
		paths[i] = xpath.MustCompile(q)
		if err := y.Add(i, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	f := func(seed int64) bool {
		tree := genTree(newRand(seed), 5)
		res := y.MatchAll(tree)
		matched := make(map[int]bool)
		for _, q := range res.Matched {
			matched[q] = true
		}
		for i, p := range paths {
			want := matchRooted(p, tree)
			if matched[i] != want {
				t.Logf("seed=%d query=%s yfilter=%v xpath=%v tree=%s",
					seed, queries[i], matched[i], want, tree)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func genTree(rnd *lcg, depth int) *xmltree.Node {
	labels := []string{"a", "b", "c", "d"}
	n := xmltree.Elem(labels[rnd.Intn(len(labels))])
	for i := 0; i < rnd.Intn(3); i++ {
		n.SetAttr("k"+string(rune('0'+rnd.Intn(3))), "v"+string(rune('0'+rnd.Intn(3))))
	}
	if depth > 0 {
		for i := 0; i < rnd.Intn(4); i++ {
			n.Append(genTree(rnd, depth-1))
		}
	}
	return n
}

func sortedInts(xs []int) []int { out := append([]int(nil), xs...); sort.Ints(out); return out }
