package filter

import (
	"fmt"
	"sort"
	"strings"
)

// AES is the Atomic Event Set hash-tree of [15], as described in
// Section 4 and Figure 6 of the paper. Each subscription's simple
// conditions form an ordered sequence; the tree stores one hash table per
// distinct prefix. A cell for condition c in table H_{i1..ik} exists when
// some subscription's sequence starts with C_{i1},..,C_{ik},c; the cell is
// *marked* with every subscription whose sequence ends exactly there.
//
// Matching feeds the ordered list of satisfied conditions through the
// tree: a frontier of active tables starts at the root, and each satisfied
// condition both collects markings and activates child tables, so every
// subscription whose (ordered) condition sequence is a subsequence of the
// satisfied list is reported — in time that depends on the satisfied
// conditions, not on the total number of subscriptions.
type AES struct {
	root    *aesNode
	inserts int
}

type aesNode struct {
	entries map[int]*aesEntry
}

type aesEntry struct {
	child    *aesNode
	markings []int
}

// NewAES returns an empty hash-tree.
func NewAES() *AES {
	return &AES{root: &aesNode{entries: make(map[int]*aesEntry)}}
}

// Insert adds a subscription (identified by an integer handle) with the
// given ascending condition-ID sequence. Sequences must be non-empty:
// subscriptions without simple conditions bypass the AES (the paper
// likewise sets them aside).
func (a *AES) Insert(seq []int, subHandle int) error {
	if len(seq) == 0 {
		return fmt.Errorf("filter: AES sequences must be non-empty")
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] <= seq[i-1] {
			return fmt.Errorf("filter: AES sequence not strictly ascending: %v", seq)
		}
	}
	node := a.root
	for i, c := range seq {
		e := node.entries[c]
		if e == nil {
			e = &aesEntry{}
			node.entries[c] = e
		}
		if i == len(seq)-1 {
			e.markings = append(e.markings, subHandle)
			break
		}
		if e.child == nil {
			e.child = &aesNode{entries: make(map[int]*aesEntry)}
		}
		node = e.child
	}
	a.inserts++
	return nil
}

// Match feeds the ordered satisfied-condition list through the hash-tree
// and returns the handles of all matched subscriptions (those whose whole
// simple-condition sequence is satisfied), plus the number of hash probes
// performed (for the C3 benchmark).
func (a *AES) Match(satisfied []int) (handles []int, probes int) {
	frontier := []*aesNode{a.root}
	for _, c := range satisfied {
		// Snapshot: tables activated by this same condition hold only
		// conditions strictly greater than c, so probing them for c is
		// pointless.
		n := len(frontier)
		for i := 0; i < n; i++ {
			probes++
			e := frontier[i].entries[c]
			if e == nil {
				continue
			}
			handles = append(handles, e.markings...)
			if e.child != nil {
				frontier = append(frontier, e.child)
			}
		}
	}
	sort.Ints(handles)
	return handles, probes
}

// Size returns the number of inserted subscriptions.
func (a *AES) Size() int { return a.inserts }

// Dump renders the tree structure for Figure 6 style inspection: each line
// is "prefix -> {cond: markings...}". Intended for tests and the explain
// tooling.
func (a *AES) Dump(condName func(int) string) string {
	var b strings.Builder
	var walk func(n *aesNode, prefix []int)
	walk = func(n *aesNode, prefix []int) {
		conds := make([]int, 0, len(n.entries))
		for c := range n.entries {
			conds = append(conds, c)
		}
		sort.Ints(conds)
		name := "H"
		if len(prefix) > 0 {
			parts := make([]string, len(prefix))
			for i, p := range prefix {
				parts[i] = condName(p)
			}
			name = "H[" + strings.Join(parts, ",") + "]"
		}
		fmt.Fprintf(&b, "%s:", name)
		for _, c := range conds {
			e := n.entries[c]
			fmt.Fprintf(&b, " %s", condName(c))
			if len(e.markings) > 0 {
				marks := make([]string, len(e.markings))
				for i, m := range e.markings {
					marks[i] = fmt.Sprintf("#%d", m)
				}
				fmt.Fprintf(&b, "{%s}", strings.Join(marks, ","))
			}
		}
		b.WriteByte('\n')
		for _, c := range conds {
			if e := n.entries[c]; e.child != nil {
				walk(e.child, append(append([]int(nil), prefix...), c))
			}
		}
	}
	walk(a.root, nil)
	return b.String()
}
