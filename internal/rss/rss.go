// Package rss models the RSS feeds P2PM's RSS alerter monitors. An
// alerter keeps feed snapshots and diffs them; "with RSS, the alerts have
// more semantics than with arbitrary XML: e.g., add, remove and modify
// entry" (Section 3.1).
package rss

import (
	"fmt"
	"sort"

	"p2pm/internal/xmltree"
)

// Entry is one feed item, identified by its GUID.
type Entry struct {
	ID      string
	Title   string
	Content string
}

// Feed is a snapshot of an RSS feed.
type Feed struct {
	Title   string
	Entries []Entry
}

// Clone returns a deep copy of the feed.
func (f *Feed) Clone() *Feed {
	cp := &Feed{Title: f.Title, Entries: append([]Entry(nil), f.Entries...)}
	return cp
}

// ToXML renders the feed as an RSS 2.0 document.
func (f *Feed) ToXML() *xmltree.Node {
	ch := xmltree.Elem("channel", xmltree.ElemText("title", f.Title))
	for _, e := range f.Entries {
		item := xmltree.Elem("item",
			xmltree.ElemText("guid", e.ID),
			xmltree.ElemText("title", e.Title),
			xmltree.ElemText("description", e.Content))
		ch.Append(item)
	}
	rss := xmltree.Elem("rss", ch)
	rss.SetAttr("version", "2.0")
	return rss
}

// Parse reads a feed back from its XML form.
func Parse(doc *xmltree.Node) (*Feed, error) {
	if doc == nil || doc.Label != "rss" {
		return nil, fmt.Errorf("rss: not an rss document")
	}
	ch := doc.Child("channel")
	if ch == nil {
		return nil, fmt.Errorf("rss: missing channel")
	}
	f := &Feed{}
	if t := ch.Child("title"); t != nil {
		f.Title = t.InnerText()
	}
	for _, item := range ch.ChildrenByLabel("item") {
		var e Entry
		if g := item.Child("guid"); g != nil {
			e.ID = g.InnerText()
		}
		if t := item.Child("title"); t != nil {
			e.Title = t.InnerText()
		}
		if d := item.Child("description"); d != nil {
			e.Content = d.InnerText()
		}
		if e.ID == "" {
			return nil, fmt.Errorf("rss: item without guid")
		}
		f.Entries = append(f.Entries, e)
	}
	return f, nil
}

// ChangeKind classifies a feed change.
type ChangeKind string

// The three RSS change kinds named by the paper.
const (
	Added    ChangeKind = "add"
	Removed  ChangeKind = "remove"
	Modified ChangeKind = "modify"
)

// Change describes one entry-level difference between two snapshots.
type Change struct {
	Kind  ChangeKind
	Entry Entry // new state for add/modify, old state for remove
}

// Diff computes entry-level changes from an old to a new snapshot,
// ordered add < modify < remove and by entry ID within each kind, so
// results are deterministic.
func Diff(old, new *Feed) []Change {
	oldByID := make(map[string]Entry)
	if old != nil {
		for _, e := range old.Entries {
			oldByID[e.ID] = e
		}
	}
	newByID := make(map[string]Entry)
	var changes []Change
	if new != nil {
		for _, e := range new.Entries {
			newByID[e.ID] = e
			if prev, ok := oldByID[e.ID]; !ok {
				changes = append(changes, Change{Kind: Added, Entry: e})
			} else if prev != e {
				changes = append(changes, Change{Kind: Modified, Entry: e})
			}
		}
	}
	for id, e := range oldByID {
		if _, ok := newByID[id]; !ok {
			changes = append(changes, Change{Kind: Removed, Entry: e})
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].Kind != changes[j].Kind {
			return kindRank(changes[i].Kind) < kindRank(changes[j].Kind)
		}
		return changes[i].Entry.ID < changes[j].Entry.ID
	})
	return changes
}

func kindRank(k ChangeKind) int {
	switch k {
	case Added:
		return 0
	case Modified:
		return 1
	default:
		return 2
	}
}
