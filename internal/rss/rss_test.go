package rss

import (
	"testing"
	"testing/quick"
)

func TestToXMLParseRoundTrip(t *testing.T) {
	f := &Feed{Title: "news", Entries: []Entry{
		{ID: "1", Title: "first", Content: "body one"},
		{ID: "2", Title: "second", Content: "body two"},
	}}
	back, err := Parse(f.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if back.Title != f.Title || len(back.Entries) != 2 || back.Entries[1] != f.Entries[1] {
		t.Errorf("round trip: %+v", back)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("nil doc accepted")
	}
	bad := (&Feed{Title: "x"}).ToXML()
	bad.Label = "atom"
	if _, err := Parse(bad); err == nil {
		t.Error("non-rss root accepted")
	}
}

func TestDiffKinds(t *testing.T) {
	old := &Feed{Entries: []Entry{
		{ID: "keep", Title: "same"},
		{ID: "mod", Title: "v1"},
		{ID: "gone", Title: "bye"},
	}}
	new := &Feed{Entries: []Entry{
		{ID: "keep", Title: "same"},
		{ID: "mod", Title: "v2"},
		{ID: "new", Title: "hello"},
	}}
	changes := Diff(old, new)
	if len(changes) != 3 {
		t.Fatalf("changes = %v", changes)
	}
	if changes[0].Kind != Added || changes[0].Entry.ID != "new" {
		t.Errorf("c0 = %+v", changes[0])
	}
	if changes[1].Kind != Modified || changes[1].Entry.Title != "v2" {
		t.Errorf("c1 = %+v", changes[1])
	}
	if changes[2].Kind != Removed || changes[2].Entry.ID != "gone" {
		t.Errorf("c2 = %+v", changes[2])
	}
}

func TestDiffNilOldMeansAllAdded(t *testing.T) {
	new := &Feed{Entries: []Entry{{ID: "a"}, {ID: "b"}}}
	changes := Diff(nil, new)
	if len(changes) != 2 || changes[0].Kind != Added {
		t.Errorf("changes = %v", changes)
	}
}

func TestDiffIdenticalEmpty(t *testing.T) {
	f := &Feed{Entries: []Entry{{ID: "a", Title: "t"}}}
	if got := Diff(f, f.Clone()); len(got) != 0 {
		t.Errorf("diff of identical feeds = %v", got)
	}
}

// Property: Diff(old,new) reversed in kind equals Diff(new,old): adds
// become removes, removes become adds, modifies stay modifies.
func TestQuickDiffSymmetry(t *testing.T) {
	gen := func(seed int64, which int) *Feed {
		s := uint64(seed)*2862933555777941757 + uint64(which)
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		f := &Feed{Title: "f"}
		for i := 0; i < next(6); i++ {
			f.Entries = append(f.Entries, Entry{
				ID:    string(rune('a' + next(5))),
				Title: string(rune('t' + next(3))),
			})
		}
		// Dedup IDs (feeds have unique GUIDs).
		seen := map[string]bool{}
		var out []Entry
		for _, e := range f.Entries {
			if !seen[e.ID] {
				seen[e.ID] = true
				out = append(out, e)
			}
		}
		f.Entries = out
		return f
	}
	f := func(seed int64) bool {
		oldF, newF := gen(seed, 1), gen(seed, 2)
		fwd := Diff(oldF, newF)
		rev := Diff(newF, oldF)
		count := func(cs []Change, k ChangeKind) int {
			n := 0
			for _, c := range cs {
				if c.Kind == k {
					n++
				}
			}
			return n
		}
		return count(fwd, Added) == count(rev, Removed) &&
			count(fwd, Removed) == count(rev, Added) &&
			count(fwd, Modified) == count(rev, Modified)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
