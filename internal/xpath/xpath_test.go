package xpath

import (
	"strings"
	"testing"
	"testing/quick"

	"p2pm/internal/xmltree"
)

func doc(s string) *xmltree.Node { return xmltree.MustParse(s) }

func TestCompileShapes(t *testing.T) {
	for _, src := range []string{
		`//a//b`,
		`alert[@callMethod = "GetTemperature"]`,
		`//c/d`,
		`/Stream[@PeerId = $p1][Operator/inCom]`,
		`/Stream[Operator/Filter][Operands/Operand[@OPeerId=$p1][@OStreamId=$s1]]`,
		`/Stream[Operator/Join][Operands/Operand[@OPeerId="p1"][@OStreamId="s3"]][Operands/Operand[@OPeerId="p2"][@OStreamId="s2"]]`,
		`a/b/@id`,
		`a/text()`,
		`*[@x != 3]`,
		`item[@n >= 10]`,
	} {
		if _, err := Compile(src); err != nil {
			t.Errorf("Compile(%q): %v", src, err)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`/`,
		`a[`,
		`a[]`,
		`a[@]`,
		`a[@x =]`,
		`a[@x ? 3]`,
		`a[@x = "unterminated]`,
		`a]b`,
		`a[/rooted]`,
		`a[@x = $]`,
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestDescendantMatch(t *testing.T) {
	d := doc(`<r><a><x/><b><c/></b></a><b/></r>`)
	if !MustCompile(`//a//b`).Matches(d, nil) {
		t.Error("//a//b should match")
	}
	if MustCompile(`//c//b`).Matches(d, nil) {
		t.Error("//c//b should not match")
	}
	if !MustCompile(`//b/c`).Matches(d, nil) {
		t.Error("//b/c should match")
	}
}

func TestRootedVsRelative(t *testing.T) {
	d := doc(`<Stream><Operator><inCom/></Operator></Stream>`)
	if !MustCompile(`/Stream`).Matches(d, nil) {
		t.Error("/Stream should match the root element")
	}
	if MustCompile(`/Operator`).Matches(d, nil) {
		t.Error("/Operator should not match below root")
	}
	// Relative path from root's children:
	if !MustCompile(`Operator/inCom`).Matches(d, nil) {
		t.Error("relative Operator/inCom should match")
	}
}

func TestWildcard(t *testing.T) {
	d := doc(`<r><a id="1"/><b id="2"/></r>`)
	vals := MustCompile(`*/@id`).Values(d, nil)
	if strings.Join(vals, ",") != "1,2" {
		t.Errorf("vals = %v", vals)
	}
}

func TestAttrPredicates(t *testing.T) {
	d := doc(`<r><alert callMethod="GetTemperature" callee="http://meteo.com"/><alert callMethod="Other"/></r>`)
	q := MustCompile(`alert[@callMethod = "GetTemperature"]`)
	got := q.SelectNodes(d, nil)
	if len(got) != 1 {
		t.Fatalf("got %d nodes", len(got))
	}
	if v, _ := got[0].Attr("callee"); v != "http://meteo.com" {
		t.Errorf("selected wrong node")
	}
}

func TestNumericPredicates(t *testing.T) {
	d := doc(`<r><it n="5"/><it n="10"/><it n="30"/></r>`)
	cases := []struct {
		q    string
		want int
	}{
		{`it[@n > 10]`, 1},
		{`it[@n >= 10]`, 2},
		{`it[@n < 10]`, 1},
		{`it[@n <= 10]`, 2},
		{`it[@n = 10]`, 1},
		{`it[@n != 10]`, 2},
	}
	for _, c := range cases {
		if got := len(MustCompile(c.q).SelectNodes(d, nil)); got != c.want {
			t.Errorf("%s: got %d want %d", c.q, got, c.want)
		}
	}
}

func TestExistencePredicate(t *testing.T) {
	d := doc(`<r><Stream PeerId="p1"><Operator><inCom/></Operator></Stream><Stream PeerId="p1"/></r>`)
	q := MustCompile(`Stream[@PeerId = "p1"][Operator/inCom]`)
	if got := len(q.SelectNodes(d, nil)); got != 1 {
		t.Errorf("got %d matches, want 1", got)
	}
}

func TestVariableBindings(t *testing.T) {
	d := doc(`<db><Stream PeerId="p1" StreamId="s1"/><Stream PeerId="p2" StreamId="s2"/></db>`)
	q := MustCompile(`Stream[@PeerId = $p][@StreamId = $s]`)
	if len(q.SelectNodes(d, Bindings{"p": "p2", "s": "s2"})) != 1 {
		t.Error("binding p2/s2 should match one stream")
	}
	if len(q.SelectNodes(d, Bindings{"p": "p2", "s": "s1"})) != 0 {
		t.Error("mismatched binding should match nothing")
	}
	if len(q.SelectNodes(d, nil)) != 0 {
		t.Error("unresolved variable should match nothing")
	}
}

// TestPaperReuseQueries exercises the three discovery queries from
// Section 5 verbatim against a small stream-definition database.
func TestPaperReuseQueries(t *testing.T) {
	db := doc(`<db>
	  <Stream PeerId="p1" StreamId="s1"><Operator><inCom/></Operator><Operands/></Stream>
	  <Stream PeerId="p1" StreamId="s3"><Operator><Filter/></Operator>
	    <Operands><Operand OPeerId="p1" OStreamId="s1"/></Operands></Stream>
	  <Stream PeerId="p2" StreamId="s2"><Operator><outCom/></Operator><Operands/></Stream>
	  <Stream PeerId="p3" StreamId="s9"><Operator><Join/></Operator>
	    <Operands><Operand OPeerId="p1" OStreamId="s3"/><Operand OPeerId="p2" OStreamId="s2"/></Operands></Stream>
	</db>`)
	q1 := MustCompile(`/db/Stream[@PeerId = $p1][Operator/inCom]`)
	got := q1.SelectNodes(db, Bindings{"p1": "p1"})
	if len(got) != 1 || got[0].AttrOr("StreamId", "") != "s1" {
		t.Fatalf("q1 got %v", got)
	}
	q2 := MustCompile(`/db/Stream[Operator/Filter][Operands/Operand[@OPeerId=$p1][@OStreamId=$s1]]`)
	got = q2.SelectNodes(db, Bindings{"p1": "p1", "s1": "s1"})
	if len(got) != 1 || got[0].AttrOr("StreamId", "") != "s3" {
		t.Fatalf("q2 got %v", got)
	}
	q3 := MustCompile(`/db/Stream[Operator/Join][Operands/Operand[@OPeerId=$p1][@OStreamId=$s3]][Operands/Operand[@OPeerId=$p2][@OStreamId=$s2]]`)
	got = q3.SelectNodes(db, Bindings{"p1": "p1", "s3": "s3", "p2": "p2", "s2": "s2"})
	if len(got) != 1 || got[0].AttrOr("StreamId", "") != "s9" {
		t.Fatalf("q3 got %v", got)
	}
}

func TestValuesAndFirst(t *testing.T) {
	d := doc(`<r><p id="1">one</p><p id="2">two</p></r>`)
	if vals := MustCompile(`p/@id`).Values(d, nil); strings.Join(vals, ",") != "1,2" {
		t.Errorf("ids = %v", vals)
	}
	if vals := MustCompile(`p/text()`).Values(d, nil); strings.Join(vals, ",") != "one,two" {
		t.Errorf("texts = %v", vals)
	}
	v, ok := MustCompile(`p`).First(d, nil)
	if !ok || v != "one" {
		t.Errorf("First = %q, %v", v, ok)
	}
	if _, ok := MustCompile(`zz`).First(d, nil); ok {
		t.Error("First on no match should report false")
	}
}

func TestTextPredicate(t *testing.T) {
	d := doc(`<r><p>alpha</p><p>beta</p></r>`)
	q := MustCompile(`p[text() = "beta"]`)
	if len(q.SelectNodes(d, nil)) != 1 {
		t.Error("text() predicate failed")
	}
}

func TestNestedElementValueComparison(t *testing.T) {
	d := doc(`<r><item><price>9</price></item><item><price>20</price></item></r>`)
	q := MustCompile(`item[price > 10]`)
	if got := len(q.SelectNodes(d, nil)); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}

func TestIsLinear(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{`//a//b`, true},
		{`a/b/c`, true},
		{`a/b[@x = "1"]`, true},          // predicate on final step ok
		{`a[@x = "1"]/b`, false},         // predicate mid-path
		{`a/b/@id`, true},                // trailing attr ok
		{`a[Operator/inCom]/b`, false},   // structural predicate mid-path
		{`/Stream[Operator/Join]`, true}, // final step predicate
	}
	for _, c := range cases {
		if got := MustCompile(c.q).IsLinear(); got != c.want {
			t.Errorf("IsLinear(%s) = %v want %v", c.q, got, c.want)
		}
	}
}

func TestStringRendersSource(t *testing.T) {
	src := `/Stream[@PeerId = $p1][Operator/inCom]`
	if got := MustCompile(src).String(); got != src {
		t.Errorf("String = %q", got)
	}
}

// TestRelStringRendering covers the synthesized rendering path (paths
// built without source text, as predicates are during evaluation).
func TestRelStringRendering(t *testing.T) {
	cases := []string{
		`//a//b`,
		`a/b/@id`,
		`a[@x = "1"]/text()`,
		`/Stream[Operator/Join][@n >= 10]`,
		`*[@k != $v]`,
		`item[price > 10.5]`,
	}
	for _, src := range cases {
		p := MustCompile(src)
		// Clear the preserved source so String falls back to relString,
		// then check the rendering reparses to an equivalent query.
		rendered := p.relString()
		again, err := Compile(rendered)
		if err != nil {
			t.Fatalf("%s rendered as %q which fails to parse: %v", src, rendered, err)
		}
		if again.relString() != rendered {
			t.Errorf("%s: rendering not fixed-point: %q vs %q", src, again.relString(), rendered)
		}
	}
}

func TestCompilePrefix(t *testing.T) {
	p, n, err := CompilePrefix(`/alert[@m = "Q"]/x and more text`)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != `/alert[@m = "Q"]/x` {
		t.Errorf("prefix = %q", p.String())
	}
	if n != len(`/alert[@m = "Q"]/x`) {
		t.Errorf("consumed = %d", n)
	}
	if _, _, err := CompilePrefix(`[broken`); err == nil {
		t.Error("bad prefix accepted")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad input")
		}
	}()
	MustCompile(`a[`)
}

func TestCompareAllOpsStringFallback(t *testing.T) {
	// Lexicographic fallback for every operator.
	if !Compare("abc", OpLe, "abd") || !Compare("abd", OpGe, "abc") ||
		Compare("abc", OpGt, "abd") || !Compare("abc", OpLt, "abd") {
		t.Error("string ordering wrong")
	}
	// Numeric on both sides for every operator.
	if !Compare("2", OpNe, "3") || !Compare("2", OpLe, "2") || !Compare("2", OpGe, "2") {
		t.Error("numeric comparisons wrong")
	}
	// OpExists through Compare is always false (not a comparison).
	if Compare("x", OpExists, "x") {
		t.Error("OpExists should not compare")
	}
}

func TestCompareNumericVsString(t *testing.T) {
	if !Compare("10", OpGt, "9") {
		t.Error("numeric 10 > 9")
	}
	if Compare("10", OpGt, "9x") && false {
		t.Error("unreachable")
	}
	// String comparison: "10" < "9" lexicographically.
	if !Compare("10", OpLt, "9x") {
		t.Error("lexicographic fallback expected")
	}
	if !Compare("abc", OpEq, "abc") || Compare("abc", OpNe, "abc") {
		t.Error("string equality wrong")
	}
}

func TestDocumentOrderSelection(t *testing.T) {
	d := doc(`<r><a><x>1</x></a><x>2</x><b><x>3</x></b></r>`)
	vals := MustCompile(`//x`).Values(d, nil)
	if strings.Join(vals, ",") != "1,2,3" {
		t.Errorf("order = %v", vals)
	}
}

// Property: Matches is consistent with len(SelectNodes) > 0.
func TestQuickMatchesConsistent(t *testing.T) {
	queries := []*Path{
		MustCompile(`//a`),
		MustCompile(`//a/b`),
		MustCompile(`a//b`),
		MustCompile(`//b[@k0 = "v0"]`),
		MustCompile(`*/*`),
	}
	f := func(seed int64) bool {
		tree := genTree(newRand(seed), 4)
		for _, q := range queries {
			if q.Matches(tree, nil) != (len(q.SelectNodes(tree, nil)) > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: descendant axis is a superset of any child-axis chain over the
// same labels.
func TestQuickDescendantSuperset(t *testing.T) {
	child := MustCompile(`a/b`)
	desc := MustCompile(`//a//b`)
	f := func(seed int64) bool {
		tree := genTree(newRand(seed), 4)
		if child.Matches(tree, nil) && !desc.Matches(tree, nil) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func genTree(rnd *lcg, depth int) *xmltree.Node {
	labels := []string{"a", "b", "c", "d"}
	n := xmltree.Elem(labels[rnd.Intn(len(labels))])
	for i := 0; i < rnd.Intn(3); i++ {
		n.SetAttr("k"+string(rune('0'+rnd.Intn(3))), "v"+string(rune('0'+rnd.Intn(3))))
	}
	if depth > 0 {
		for i := 0; i < rnd.Intn(4); i++ {
			n.Append(genTree(rnd, depth-1))
		}
	}
	return n
}

type lcg struct{ state uint64 }

func newRand(seed int64) *lcg { return &lcg{state: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) Intn(n int) int {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return int((l.state >> 33) % uint64(n))
}
