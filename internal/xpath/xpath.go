// Package xpath implements the tree-pattern query subset P2PM needs:
// child (/) and descendant (//) axes, element name tests and wildcards,
// terminal attribute (@a) and text() steps, and nested predicates with
// existence tests and comparisons against literals or variables.
//
// This covers every query shape that appears in the paper:
//
//	//a//b
//	$c1/alert[@callMethod = "GetTemperature"]     (variable prefix stripped by caller)
//	$item//c/d
//	/Stream[@PeerId = $p1][Operator/inCom]
//	/Stream[Operator/Join][Operands/Operand[@OPeerId=$p1][@OStreamId=$s1]]
//
// Variables ($x) are allowed in the value position of comparisons and are
// resolved at evaluation time through a Bindings map.
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"p2pm/internal/xmltree"
)

// Axis selects how a step relates to its context node.
type Axis int

const (
	// Child matches direct children ("/step").
	Child Axis = iota
	// Descendant matches any descendant ("//step").
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// NodeKind is the kind of node a step selects.
type NodeKind int

const (
	// ElementKind selects element nodes by label (or "*").
	ElementKind NodeKind = iota
	// AttrKind selects an attribute of the context element ("@name").
	AttrKind
	// TextKind selects the text content of the context element ("text()").
	TextKind
)

// CmpOp is a comparison operator inside a predicate, or OpExists for bare
// existence predicates like [Operator/inCom].
type CmpOp int

// The comparison operators of the condition language.
const (
	OpExists CmpOp = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = map[CmpOp]string{
	OpExists: "", OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

func (o CmpOp) String() string { return opNames[o] }

// Value is the right-hand side of a comparison: a literal string, a number
// or a variable reference.
type Value struct {
	Var     string // non-empty for $var references
	Literal string
	Num     float64
	IsNum   bool
}

func (v Value) String() string {
	if v.Var != "" {
		return "$" + v.Var
	}
	if v.IsNum {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return strconv.Quote(v.Literal)
}

// Bindings resolves variables referenced in comparisons.
type Bindings map[string]string

// Pred is a predicate attached to a step: a relative path, optionally
// compared against a value. With Op == OpExists the predicate holds if the
// path selects at least one node.
type Pred struct {
	Path  *Path
	Op    CmpOp
	Value Value
}

func (p Pred) String() string {
	if p.Op == OpExists {
		return "[" + p.Path.relString() + "]"
	}
	return "[" + p.Path.relString() + " " + p.Op.String() + " " + p.Value.String() + "]"
}

// Step is one location step.
type Step struct {
	Axis  Axis
	Kind  NodeKind
	Label string // element name, attribute name, or "*"
	Preds []Pred
}

func (s Step) test() string {
	switch s.Kind {
	case AttrKind:
		return "@" + s.Label
	case TextKind:
		return "text()"
	default:
		return s.Label
	}
}

// Path is a compiled tree-pattern query.
type Path struct {
	// Rooted paths ("/Stream/...") are evaluated from the document root;
	// relative paths are evaluated from a context node's children.
	Rooted bool
	Steps  []Step
	src    string
}

// String returns the query in source form.
func (p *Path) String() string {
	if p.src != "" {
		return p.src
	}
	return p.relString()
}

func (p *Path) relString() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i == 0 && !p.Rooted && s.Axis == Child {
			// relative child step has no leading slash
		} else {
			b.WriteString(s.Axis.String())
		}
		b.WriteString(s.test())
		for _, pr := range s.Preds {
			b.WriteString(pr.String())
		}
	}
	return b.String()
}

// IsLinear reports whether the path is a linear path query in the YFilter
// sense: element steps only, no predicates except on the final element
// step. YFilter builds its NFA from the step skeleton and checks final-step
// predicates at accepting states. A trailing @attr or text() step is fine:
// it acts as a final-state predicate on the last element step.
func (p *Path) IsLinear() bool {
	lastElem := -1
	for i, s := range p.Steps {
		if s.Kind == ElementKind {
			lastElem = i
		}
	}
	for i, s := range p.Steps {
		if s.Kind != ElementKind {
			if i != len(p.Steps)-1 {
				return false
			}
			continue
		}
		if len(s.Preds) > 0 && i != lastElem {
			return false
		}
	}
	return true
}

// Matches reports whether the query selects at least one node under root.
func (p *Path) Matches(root *xmltree.Node, binds Bindings) bool {
	found := false
	p.eval(root, binds, func(*xmltree.Node, string) bool {
		found = true
		return false // stop at first match
	})
	return found
}

// SelectNodes returns the element nodes selected by the query, in document
// order. Terminal @attr/text() steps select their owner element.
func (p *Path) SelectNodes(root *xmltree.Node, binds Bindings) []*xmltree.Node {
	var out []*xmltree.Node
	p.eval(root, binds, func(n *xmltree.Node, _ string) bool {
		out = append(out, n)
		return true
	})
	return out
}

// Values returns the string values selected by the query: attribute values
// for terminal @attr steps, text content otherwise.
func (p *Path) Values(root *xmltree.Node, binds Bindings) []string {
	var out []string
	p.eval(root, binds, func(_ *xmltree.Node, v string) bool {
		out = append(out, v)
		return true
	})
	return out
}

// First returns the first selected value and whether any node matched.
func (p *Path) First(root *xmltree.Node, binds Bindings) (string, bool) {
	var val string
	ok := false
	p.eval(root, binds, func(_ *xmltree.Node, v string) bool {
		val, ok = v, true
		return false
	})
	return val, ok
}

// eval walks the tree; emit receives (owner element, string value) for each
// match and returns false to stop the evaluation early.
func (p *Path) eval(root *xmltree.Node, binds Bindings, emit func(*xmltree.Node, string) bool) {
	if root == nil || len(p.Steps) == 0 {
		return
	}
	// Rooted evaluation treats root as the single child of a virtual
	// document node, which gives /label and //label standard semantics.
	doc := &xmltree.Node{Label: "#doc", Children: []*xmltree.Node{root}}
	ctx := root
	if p.Rooted {
		ctx = doc
	}
	p.evalSteps(ctx, 0, binds, emit)
}

// evalSteps evaluates Steps[i:] against the children/descendants of ctx.
// It returns false if emit requested an early stop.
func (p *Path) evalSteps(ctx *xmltree.Node, i int, binds Bindings, emit func(*xmltree.Node, string) bool) bool {
	step := p.Steps[i]
	switch step.Kind {
	case AttrKind:
		// Attribute of the context element (the node matched by the
		// previous step).
		if v, ok := ctx.Attr(step.Label); ok {
			return emit(ctx, v)
		}
		return true
	case TextKind:
		return emit(ctx, ctx.InnerText())
	}
	cont := true
	var visit func(n *xmltree.Node, depth int)
	visit = func(n *xmltree.Node, depth int) {
		if !cont {
			return
		}
		for _, c := range n.Children {
			if !cont {
				return
			}
			if !c.IsText() && (step.Label == "*" || c.Label == step.Label) && p.predsHold(c, step.Preds, binds) {
				if i == len(p.Steps)-1 {
					if !emit(c, c.InnerText()) {
						cont = false
						return
					}
				} else if !p.evalSteps(c, i+1, binds, emit) {
					cont = false
					return
				}
			}
			if step.Axis == Descendant && !c.IsText() {
				visit(c, depth+1)
			}
		}
	}
	visit(ctx, 0)
	return cont
}

func (p *Path) predsHold(n *xmltree.Node, preds []Pred, binds Bindings) bool {
	return PredsHold(n, preds, binds)
}

// PredsHold reports whether all predicates hold at context node n. The
// filter's YFilter stage uses it to check final-step predicates at
// accepting states.
func PredsHold(n *xmltree.Node, preds []Pred, binds Bindings) bool {
	for _, pr := range preds {
		if !predHolds(n, pr, binds) {
			return false
		}
	}
	return true
}

func predHolds(n *xmltree.Node, pr Pred, binds Bindings) bool {
	if pr.Op == OpExists {
		return pr.Path.Matches(n, binds)
	}
	want, ok := pr.Value.resolve(binds)
	if !ok {
		return false
	}
	vals := pr.Path.Values(n, binds)
	for _, got := range vals {
		if Compare(got, pr.Op, want) {
			return true
		}
	}
	return false
}

func (v Value) resolve(binds Bindings) (string, bool) {
	if v.Var != "" {
		got, ok := binds[v.Var]
		return got, ok
	}
	if v.IsNum {
		return strconv.FormatFloat(v.Num, 'g', -1, 64), true
	}
	return v.Literal, true
}

// Compare applies op between two string values, numerically when both
// parse as numbers (the paper's conditions mix integers and strings).
func Compare(got string, op CmpOp, want string) bool {
	gn, gerr := strconv.ParseFloat(strings.TrimSpace(got), 64)
	wn, werr := strconv.ParseFloat(strings.TrimSpace(want), 64)
	if gerr == nil && werr == nil {
		switch op {
		case OpEq:
			return gn == wn
		case OpNe:
			return gn != wn
		case OpLt:
			return gn < wn
		case OpLe:
			return gn <= wn
		case OpGt:
			return gn > wn
		case OpGe:
			return gn >= wn
		}
		return false
	}
	switch op {
	case OpEq:
		return got == want
	case OpNe:
		return got != want
	case OpLt:
		return got < want
	case OpLe:
		return got <= want
	case OpGt:
		return got > want
	case OpGe:
		return got >= want
	}
	return false
}

// ParseOp parses a comparison operator token.
func ParseOp(s string) (CmpOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	}
	return OpExists, fmt.Errorf("xpath: unknown operator %q", s)
}
