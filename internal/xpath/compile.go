package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Compile parses a tree-pattern query. A leading "$var" prefix (as in the
// paper's "$c1/alert[...]") is rejected here; callers strip variables and
// pass the path part (see p2pml).
func Compile(src string) (*Path, error) {
	c := &compiler{src: src}
	p, err := c.parsePath(true)
	if err != nil {
		return nil, err
	}
	c.skipSpace()
	if c.pos != len(c.src) {
		return nil, c.errf("trailing input %q", c.src[c.pos:])
	}
	p.src = src
	return p, nil
}

// MustCompile is Compile that panics on error; for fixtures and tests.
func MustCompile(src string) *Path {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// CompilePrefix parses a path starting at the beginning of src and stops
// at the first character that cannot continue it, returning the number of
// bytes consumed. The P2PML parser uses it for embedded paths such as
// "$c1/alert[@callMethod = \"x\"] and ..." where the path ends mid-string.
func CompilePrefix(src string) (*Path, int, error) {
	c := &compiler{src: src}
	p, err := c.parsePath(true)
	if err != nil {
		return nil, 0, err
	}
	p.src = src[:c.pos]
	return p, c.pos, nil
}

type compiler struct {
	src string
	pos int
}

func (c *compiler) errf(format string, args ...any) error {
	return fmt.Errorf("xpath: %s (at offset %d in %q)", fmt.Sprintf(format, args...), c.pos, c.src)
}

func (c *compiler) skipSpace() {
	for c.pos < len(c.src) && (c.src[c.pos] == ' ' || c.src[c.pos] == '\t') {
		c.pos++
	}
}

func (c *compiler) peek() byte {
	if c.pos < len(c.src) {
		return c.src[c.pos]
	}
	return 0
}

func (c *compiler) consume(s string) bool {
	if strings.HasPrefix(c.src[c.pos:], s) {
		c.pos += len(s)
		return true
	}
	return false
}

func identChar(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
		return true
	case !first && (b >= '0' && b <= '9' || b == '-' || b == '.' || b == ':'):
		return true
	}
	return false
}

func (c *compiler) readIdent() string {
	start := c.pos
	for c.pos < len(c.src) && identChar(c.src[c.pos], c.pos == start) {
		c.pos++
	}
	return c.src[start:c.pos]
}

// parsePath parses a path; topLevel controls the error message only.
func (c *compiler) parsePath(topLevel bool) (*Path, error) {
	p := &Path{}
	c.skipSpace()
	first := true
	for {
		axis := Child
		switch {
		case c.consume("//"):
			axis = Descendant
			if first {
				p.Rooted = true
			}
		case c.consume("/"):
			if first {
				p.Rooted = true
			}
		default:
			if !first {
				return p, nil // end of path
			}
			// relative path with implicit child axis
		}
		step, err := c.parseStep(axis)
		if err != nil {
			return nil, err
		}
		p.Steps = append(p.Steps, step)
		if step.Kind != ElementKind {
			// @attr and text() are terminal.
			return p, nil
		}
		first = false
		if c.peek() != '/' {
			return p, nil
		}
	}
}

func (c *compiler) parseStep(axis Axis) (Step, error) {
	s := Step{Axis: axis}
	switch {
	case c.consume("@"):
		s.Kind = AttrKind
		s.Label = c.readIdent()
		if s.Label == "" {
			return s, c.errf("expected attribute name after '@'")
		}
		return s, nil
	case c.consume("text()"):
		s.Kind = TextKind
		return s, nil
	case c.consume("*"):
		s.Kind = ElementKind
		s.Label = "*"
	default:
		s.Kind = ElementKind
		s.Label = c.readIdent()
		if s.Label == "" {
			return s, c.errf("expected step")
		}
	}
	for c.peek() == '[' {
		pred, err := c.parsePred()
		if err != nil {
			return s, err
		}
		s.Preds = append(s.Preds, pred)
	}
	return s, nil
}

func (c *compiler) parsePred() (Pred, error) {
	var pr Pred
	if !c.consume("[") {
		return pr, c.errf("expected '['")
	}
	c.skipSpace()
	inner, err := c.parsePath(false)
	if err != nil {
		return pr, err
	}
	if len(inner.Steps) == 0 {
		return pr, c.errf("empty predicate")
	}
	if inner.Rooted {
		return pr, c.errf("predicates must use relative paths")
	}
	pr.Path = inner
	c.skipSpace()
	if c.peek() == ']' {
		c.pos++
		pr.Op = OpExists
		return pr, nil
	}
	op, err := c.parseOpToken()
	if err != nil {
		return pr, err
	}
	pr.Op = op
	c.skipSpace()
	val, err := c.parseValue()
	if err != nil {
		return pr, err
	}
	pr.Value = val
	c.skipSpace()
	if !c.consume("]") {
		return pr, c.errf("expected ']'")
	}
	return pr, nil
}

func (c *compiler) parseOpToken() (CmpOp, error) {
	for _, tok := range []string{"!=", "<>", "<=", ">=", "=", "<", ">"} {
		if c.consume(tok) {
			return ParseOp(tok)
		}
	}
	return OpExists, c.errf("expected comparison operator")
}

func (c *compiler) parseValue() (Value, error) {
	c.skipSpace()
	switch b := c.peek(); {
	case b == '$':
		c.pos++
		name := c.readIdent()
		if name == "" {
			return Value{}, c.errf("expected variable name after '$'")
		}
		return Value{Var: name}, nil
	case b == '"' || b == '\'':
		quote := b
		c.pos++
		start := c.pos
		for c.pos < len(c.src) && c.src[c.pos] != quote {
			c.pos++
		}
		if c.pos >= len(c.src) {
			return Value{}, c.errf("unterminated string literal")
		}
		lit := c.src[start:c.pos]
		c.pos++
		return Value{Literal: lit}, nil
	case b == '-' || (b >= '0' && b <= '9'):
		start := c.pos
		if b == '-' {
			c.pos++
		}
		for c.pos < len(c.src) && (c.src[c.pos] >= '0' && c.src[c.pos] <= '9' || c.src[c.pos] == '.') {
			c.pos++
		}
		num, err := strconv.ParseFloat(c.src[start:c.pos], 64)
		if err != nil {
			return Value{}, c.errf("bad number %q", c.src[start:c.pos])
		}
		return Value{Num: num, IsNum: true, Literal: c.src[start:c.pos]}, nil
	}
	return Value{}, c.errf("expected value")
}
