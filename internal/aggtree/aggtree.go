// Package aggtree builds in-network aggregation trees: it decomposes a
// windowed Group operator over a wide fan-in into a hierarchy of
// PartialAgg leaves (local pre-aggregation, co-located with each source
// branch) and MergeAgg interiors (partial-state combination), with the
// interior nodes placed by DHT key routing so the tree shape is a
// deterministic function of the ring membership — it rebalances when
// peers join or leave, and failover re-derives an interior's host from
// its routing key. The root merge is Final: it emits exactly the flat
// operator's <group> records, at the peer the planner originally chose
// for the Group, so publishers and downstream consumers are unaffected
// by the decomposition.
//
// The point is the ingest hotspot: a flat Group makes one peer ingest
// every monitored stream — the same O(n) convergence eliminated for
// heartbeats (PR 3) and checkpoint keys (PR 4). A degree-d tree caps any
// single peer's fan-in at d partial streams, each bounded by windows ×
// keys items regardless of the subtree's raw event volume. See
// docs/AGGREGATION.md.
package aggtree

import (
	"fmt"

	"p2pm/internal/algebra"
)

// Config parameterizes one rewrite pass.
type Config struct {
	// Degree is the maximum fan-in of any merge node. Group nodes whose
	// union input fans in no more than Degree branches stay flat (the
	// planner's tree-vs-flat decision). Must be >= 2.
	Degree int
	// Place resolves a tree-interior routing key to the hosting peer
	// (typically the first live DHT successor of the key's hash). An
	// empty result keeps the node at the flat Group's planned peer — the
	// safe fallback when the ring cannot answer.
	Place func(key string) string
}

// Key builds the DHT routing key of one interior node: the tree's
// identity (typically the task ID) plus the node's level and index. The
// key is stable across re-deployments, so repair and membership
// rebalancing re-derive the same ring position. Level and index are
// zero-padded so the lexicographic key order equals the construction
// order — bounded placement walks keys in that order on every
// re-derivation.
func Key(id string, level, idx int) string {
	return fmt.Sprintf("aggtree|%s|L%02d|%03d", id, level, idx)
}

// Rewrite returns the plan with every eligible Group decomposed into a
// partial/merge tree, plus the number of trees built. A Group is
// eligible when its input is a Union fanning in more than cfg.Degree
// branches; everything else is left untouched (flat aggregation stays
// the right plan for narrow fan-ins). id scopes the interior routing
// keys — callers pass the task identity. The input plan is modified in
// place and returned (deployment owns its clone).
func Rewrite(plan *algebra.Node, id string, cfg Config) (*algebra.Node, int) {
	if cfg.Degree < 2 {
		return plan, 0
	}
	built := 0
	var walk func(n *algebra.Node) *algebra.Node
	walk = func(n *algebra.Node) *algebra.Node {
		for i, in := range n.Inputs {
			n.Inputs[i] = walk(in)
		}
		if n.Op == algebra.OpGroup {
			if t := build(n, fmt.Sprintf("%s.%d", id, built), cfg); t != nil {
				built++
				return t
			}
		}
		if n.Op == algebra.OpMergeAgg && n.Group != nil && n.Group.Final && len(n.Inputs) > cfg.Degree {
			widen(n, fmt.Sprintf("%s.%d", id, built), cfg)
			built++
		}
		return n
	}
	return walk(plan), built
}

// widen inserts key-routed interior levels under an over-wide Final
// merge root — the shape reuse grafting produces when a root merges
// pre-existing partial streams with fresh leaves — capping every merge
// fan-in at cfg.Degree. Unlike build, every created interior is
// key-routed: the root already exists and keeps its placement.
func widen(root *algebra.Node, id string, cfg Config) {
	nodes := root.Inputs
	level := 0
	for len(nodes) > cfg.Degree {
		level++
		var next []*algebra.Node
		for i := 0; i < len(nodes); i += cfg.Degree {
			end := i + cfg.Degree
			if end > len(nodes) {
				end = len(nodes)
			}
			chunk := nodes[i:end:end]
			if len(chunk) == 1 {
				next = append(next, chunk[0])
				continue
			}
			key, peer := Key(id, level, len(next)), ""
			if cfg.Place != nil {
				peer = cfg.Place(key)
			}
			if peer == "" {
				peer = root.Peer
			}
			next = append(next, &algebra.Node{
				Op: algebra.OpMergeAgg, Peer: peer, AggKey: key, Inputs: chunk,
				Schema: append([]string(nil), root.Schema...),
				Group:  derivedSpec(root.Group, false),
			})
		}
		nodes = next
	}
	root.Inputs = nodes
}

// Split re-chunks one hot merge node's fan-in at runtime: the node's
// children are divided into two halves, each pushed down under a fresh
// key-routed sub-interior, so the hot node ingests two partial streams
// where it ingested k. It is the load-adaptive counterpart of the
// static Degree cap: Rewrite bounds fan-in by shape, Split bounds it by
// observed ingest. The node is modified in place; the newly created
// interiors are returned so the runtime can deploy them (empty when the
// node is too narrow — every sub-interior must merge at least two
// children, so k >= 4 is required). id must be unique per split (the
// runtime passes a fresh sequence-numbered tree identity) so the new
// routing keys collide with nothing already placed.
func Split(n *algebra.Node, id string, cfg Config) []*algebra.Node {
	k := len(n.Inputs)
	if n.Op != algebra.OpMergeAgg || n.Group == nil || k < 4 {
		return nil
	}
	size := (k + 1) / 2
	var next, created []*algebra.Node
	for i := 0; i < k; i += size {
		end := i + size
		if end > k {
			end = k
		}
		chunk := n.Inputs[i:end:end]
		key, peer := Key(id, 1, len(next)), ""
		if cfg.Place != nil {
			peer = cfg.Place(key)
		}
		if peer == "" {
			peer = n.Peer
		}
		m := &algebra.Node{
			Op: algebra.OpMergeAgg, Peer: peer, AggKey: key, Inputs: chunk,
			Schema: append([]string(nil), n.Schema...),
			Group:  derivedSpec(n.Group, false),
		}
		next = append(next, m)
		created = append(created, m)
	}
	n.Inputs = next
	return created
}

// build decomposes one Group node, or returns nil when it should stay
// flat.
// derivedSpec copies the flat Group's spec for a tree node, carrying the
// aggregate function and value attribute so every leaf and interior
// accumulates the same monoid the flat operator would have.
func derivedSpec(g *algebra.GroupSpec, final bool) *algebra.GroupSpec {
	spec := *g
	spec.Final = final
	return &spec
}

func build(g *algebra.Node, id string, cfg Config) *algebra.Node {
	if len(g.Inputs) != 1 || g.Inputs[0].Op != algebra.OpUnion {
		return nil
	}
	branches := g.Inputs[0].Inputs
	if len(branches) <= cfg.Degree {
		return nil
	}

	// Leaves: one PartialAgg per union branch, co-located with the
	// branch's output so raw events never cross the network — the union
	// (and its fan-in) disappears entirely.
	spec := derivedSpec(g.Group, false)
	nodes := make([]*algebra.Node, len(branches))
	for i, c := range branches {
		nodes[i] = &algebra.Node{
			Op: algebra.OpPartialAgg, Peer: c.Peer, Inputs: []*algebra.Node{c},
			Schema: append([]string(nil), g.Schema...), Group: spec,
		}
	}

	// Interior levels: chunk into parents of fan-in <= Degree until one
	// node remains. Singleton chunks pass through unwrapped (a 1-ary
	// merge would only add a hop). Interiors are placed by DHT key
	// routing; the key records level and index, so the shape is
	// deterministic per membership. The last level — the one that
	// collapses to a single node, the root — is NOT key-routed: its host
	// is the planner's original Group placement, and it must not consume
	// bounded-placer state either, or re-deriving the placement from the
	// surviving routing keys (System.AggPlacements) would diverge from
	// the deployed one whenever a plan holds a second tree.
	level := 0
	for len(nodes) > 1 {
		level++
		rootLevel := len(nodes) <= cfg.Degree
		var next []*algebra.Node
		for i := 0; i < len(nodes); i += cfg.Degree {
			end := i + cfg.Degree
			if end > len(nodes) {
				end = len(nodes)
			}
			chunk := nodes[i:end:end]
			if len(chunk) == 1 {
				next = append(next, chunk[0])
				continue
			}
			key, peer := "", ""
			if !rootLevel {
				key = Key(id, level, len(next))
				if cfg.Place != nil {
					peer = cfg.Place(key)
				}
			}
			if peer == "" {
				peer = g.Peer
			}
			next = append(next, &algebra.Node{
				Op: algebra.OpMergeAgg, Peer: peer, AggKey: key, Inputs: chunk,
				Schema: append([]string(nil), g.Schema...),
				Group:  derivedSpec(g.Group, false),
			})
		}
		nodes = next
	}

	// Root: Final, at the planner's original Group placement (the
	// publisher's subscription and any downstream consumers stay local
	// to where the flat aggregate would have been).
	root := nodes[0]
	root.Peer = g.Peer
	root.AggKey = ""
	root.Group = derivedSpec(g.Group, true)
	return root
}

// Interiors returns the merge nodes of a rewritten plan that are placed
// by DHT routing (AggKey set), in plan postorder — the set failover
// re-places and membership changes rebalance.
func Interiors(plan *algebra.Node) []*algebra.Node {
	var out []*algebra.Node
	plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpMergeAgg && n.AggKey != "" {
			out = append(out, n)
		}
	})
	return out
}
