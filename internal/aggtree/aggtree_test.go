package aggtree

import (
	"fmt"
	"strings"
	"testing"

	"p2pm/internal/algebra"
)

// groupOverUnion builds Publish(Group(Union(alerter×n))) — the flat shape
// the planner decomposes.
func groupOverUnion(n int) *algebra.Node {
	var branches []*algebra.Node
	for i := 0; i < n; i++ {
		branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", fmt.Sprintf("s%d", i), "e", nil))
	}
	union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
		Schema: []string{"e"}, Group: &algebra.GroupSpec{KeyAttr: "callee", Window: "10s"},
	}
	return &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "agg"},
	}
}

func TestRewriteBuildsBalancedTree(t *testing.T) {
	placed := map[string]string{}
	plan, built := Rewrite(groupOverUnion(9), "t1", Config{
		Degree: 3,
		Place: func(key string) string {
			peer := fmt.Sprintf("h%d", len(placed))
			placed[key] = peer
			return peer
		},
	})
	if built != 1 {
		t.Fatalf("built = %d trees, want 1", built)
	}
	root := plan.Inputs[0]
	if root.Op != algebra.OpMergeAgg || !root.Group.Final {
		t.Fatalf("root = %s, want a Final MergeAgg", root.Label())
	}
	if root.Peer != "w0" {
		t.Errorf("root placed at %s, want the flat Group's peer w0", root.Peer)
	}
	if root.AggKey != "" {
		t.Errorf("root carries routing key %q; the root's home is a planning choice", root.AggKey)
	}
	if len(root.Inputs) != 3 {
		t.Fatalf("root fan-in = %d, want 3", len(root.Inputs))
	}
	leaves, interiors, unions := 0, 0, 0
	plan.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpPartialAgg:
			leaves++
			if n.Inputs[0].Op != algebra.OpAlerter || n.Peer != n.Inputs[0].Peer {
				t.Errorf("leaf %s not co-located with its source (%s vs %s)", n.Label(), n.Peer, n.Inputs[0].Peer)
			}
		case algebra.OpMergeAgg:
			if n != root {
				interiors++
				if n.AggKey == "" {
					t.Errorf("interior %s has no routing key", n.Label())
				}
				if n.Peer != placed[n.AggKey] {
					t.Errorf("interior %s at %s, placer said %s", n.Label(), n.Peer, placed[n.AggKey])
				}
				if n.Group.Final {
					t.Errorf("interior %s is Final", n.Label())
				}
			}
		case algebra.OpUnion:
			unions++
		}
	})
	if leaves != 9 || interiors != 3 || unions != 0 {
		t.Errorf("leaves=%d interiors=%d unions=%d, want 9/3/0", leaves, interiors, unions)
	}
	if got := len(Interiors(plan)); got != 3 {
		t.Errorf("Interiors = %d, want 3", got)
	}
}

// TestRewriteLeavesNarrowFanInFlat: the tree-vs-flat decision — at or
// below the degree, the flat Group is the better plan and survives
// untouched.
func TestRewriteLeavesNarrowFanInFlat(t *testing.T) {
	plan, built := Rewrite(groupOverUnion(3), "t1", Config{Degree: 3, Place: func(string) string { return "x" }})
	if built != 0 {
		t.Fatalf("built = %d, want 0", built)
	}
	if plan.Inputs[0].Op != algebra.OpGroup {
		t.Errorf("narrow plan rewritten to %s", plan.Inputs[0].Label())
	}
	if _, built := Rewrite(groupOverUnion(9), "t1", Config{Degree: 1}); built != 0 {
		t.Error("degree < 2 must disable the rewrite")
	}
}

// TestRewriteSingletonChunksPassThrough: a trailing chunk of one child
// is lifted, not wrapped in a 1-ary merge.
func TestRewriteSingletonChunksPassThrough(t *testing.T) {
	plan, built := Rewrite(groupOverUnion(4), "t1", Config{Degree: 3, Place: func(k string) string { return "h" }})
	if built != 1 {
		t.Fatalf("built = %d, want 1", built)
	}
	root := plan.Inputs[0]
	if len(root.Inputs) != 2 {
		t.Fatalf("root fan-in = %d, want 2 (merge of 3 + lifted leaf)", len(root.Inputs))
	}
	kinds := []algebra.OpKind{root.Inputs[0].Op, root.Inputs[1].Op}
	if kinds[0] != algebra.OpMergeAgg || kinds[1] != algebra.OpPartialAgg {
		t.Errorf("root children = %v, want [MergeAgg PartialAgg]", kinds)
	}
}

// TestRewriteFallsBackWithoutPlacement: an empty placer answer keeps the
// interior at the flat Group's peer instead of failing the deployment.
func TestRewriteFallsBackWithoutPlacement(t *testing.T) {
	plan, built := Rewrite(groupOverUnion(6), "t1", Config{Degree: 2, Place: func(string) string { return "" }})
	if built != 1 {
		t.Fatalf("built = %d, want 1", built)
	}
	plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpMergeAgg && n.Peer != "w0" {
			t.Errorf("unplaceable interior %s landed at %s, want w0", n.Label(), n.Peer)
		}
	})
}

// TestRewritePlacesOnlyKeyedInteriors: the placer is consulted exactly
// once per routing key that survives in the plan — in particular, the
// root (whose key is cleared) must never consume bounded-placer state,
// or re-deriving the placement from the surviving keys would diverge
// from the deployed one in plans holding a second tree.
func TestRewritePlacesOnlyKeyedInteriors(t *testing.T) {
	calls := 0
	plan, built := Rewrite(groupOverUnion(9), "t1", Config{
		Degree: 3,
		Place:  func(string) string { calls++; return fmt.Sprintf("h%d", calls) },
	})
	if built != 1 {
		t.Fatalf("built = %d, want 1", built)
	}
	if keyed := len(Interiors(plan)); calls != keyed {
		t.Errorf("placer consulted %d times for %d surviving routing keys", calls, keyed)
	}
}

func TestKeyShape(t *testing.T) {
	k := Key("task-7.0", 2, 5)
	if !strings.HasPrefix(k, "aggtree|task-7.0|") || !strings.Contains(k, "L02") {
		t.Errorf("key = %q", k)
	}
	if Key("a", 1, 0) == Key("a", 0, 1) {
		t.Error("level/index collide in the key space")
	}
	// Construction order must equal lexicographic order — bounded
	// placement re-derives hosts by walking keys sorted.
	prev := ""
	for _, k := range []string{Key("a", 1, 0), Key("a", 1, 1), Key("a", 1, 10), Key("a", 2, 0)} {
		if k <= prev {
			t.Errorf("key order broken: %q !> %q", k, prev)
		}
		prev = k
	}
}
