// Package axml implements the ActiveXML fragment P2PM relies on: XML trees
// in which some elements (sc elements) denote calls to Web services. The
// evaluation of such a call replaces the sc subtree with the call's result.
//
// ActiveXML lets producers keep large subtrees *intensional*: instead of
// shipping a heavy payload in every stream item, the item carries a service
// call that consumers evaluate only when (and if) they actually need the
// data. Section 4 of the paper uses this to avoid unnecessary calls during
// filtering: if the simple conditions already reject a document, the
// service is never invoked.
package axml

import (
	"fmt"
	"sync"

	"p2pm/internal/xmltree"
)

// SCLabel is the element label that marks a service call.
const SCLabel = "sc"

// Call describes a service call embedded in a document.
type Call struct {
	Service string        // service name ("storage")
	Address string        // peer/site hosting the service
	Params  *xmltree.Node // the <parameters> subtree (may be nil)
}

// SC builds an sc element for the given call.
func SC(service, address string, params *xmltree.Node) *xmltree.Node {
	n := xmltree.Elem(SCLabel)
	n.SetAttr("service", service)
	n.SetAttr("address", address)
	if params != nil {
		n.Append(params)
	}
	return n
}

// ParseSC extracts the call from an sc element; ok is false if n is not a
// well-formed sc element.
func ParseSC(n *xmltree.Node) (Call, bool) {
	if n == nil || n.Label != SCLabel {
		return Call{}, false
	}
	svc, ok := n.Attr("service")
	if !ok {
		return Call{}, false
	}
	return Call{
		Service: svc,
		Address: n.AttrOr("address", ""),
		Params:  n.Child("parameters"),
	}, true
}

// HasCalls reports whether the tree contains at least one sc element.
func HasCalls(doc *xmltree.Node) bool {
	found := false
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Label == SCLabel {
			found = true
			return false
		}
		return !found
	})
	return found
}

// ServiceFunc evaluates one service call and returns the replacement
// subtree (possibly several siblings wrapped under the returned node's
// children when the root label is "#result").
type ServiceFunc func(call Call) (*xmltree.Node, error)

// Registry resolves service names to implementations. It is safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	services map[string]ServiceFunc
	calls    uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]ServiceFunc)}
}

// Register installs a service implementation under the given name.
func (r *Registry) Register(name string, fn ServiceFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[name] = fn
}

// Calls returns the total number of service invocations performed through
// this registry (the quantity benchmark C6 measures).
func (r *Registry) Calls() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.calls
}

// ResetCalls zeroes the invocation counter.
func (r *Registry) ResetCalls() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = 0
}

func (r *Registry) invoke(call Call) (*xmltree.Node, error) {
	r.mu.Lock()
	fn, ok := r.services[call.Service]
	if ok {
		r.calls++
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("axml: unknown service %q", call.Service)
	}
	return fn(call)
}

// Materialize replaces every sc element in doc (in place) with the result
// of its service call and returns the number of calls performed. Results
// whose root label is "#result" are spliced: their children replace the sc
// element. Nested sc elements introduced by results are materialized too.
func (r *Registry) Materialize(doc *xmltree.Node) (int, error) {
	return r.materialize(doc, 0)
}

const maxDepth = 16 // guards against services returning sc elements forever

func (r *Registry) materialize(n *xmltree.Node, depth int) (int, error) {
	if depth > maxDepth {
		return 0, fmt.Errorf("axml: materialization exceeded depth %d (cyclic service result?)", maxDepth)
	}
	total := 0
	for i := 0; i < len(n.Children); i++ {
		c := n.Children[i]
		if c.IsText() {
			continue
		}
		if call, ok := ParseSC(c); ok {
			result, err := r.invoke(call)
			if err != nil {
				return total, err
			}
			total++
			var repl []*xmltree.Node
			if result == nil {
				repl = nil
			} else if result.Label == "#result" {
				repl = result.Children
			} else {
				repl = []*xmltree.Node{result}
			}
			n.Children = append(n.Children[:i], append(repl, n.Children[i+1:]...)...)
			// Re-scan from the same index: results may contain sc elements.
			i--
			continue
		}
		sub, err := r.materialize(c, depth+1)
		total += sub
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
