package axml

import (
	"strings"
	"testing"

	"p2pm/internal/xmltree"
)

func storageService(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Register("storage", func(call Call) (*xmltree.Node, error) {
		return xmltree.MustParse(`<c><d>payload</d></c>`), nil
	})
	return r
}

func TestSCAndParseSC(t *testing.T) {
	sc := SC("storage", "site", xmltree.Elem("parameters"))
	call, ok := ParseSC(sc)
	if !ok || call.Service != "storage" || call.Address != "site" || call.Params == nil {
		t.Fatalf("call = %+v ok=%v", call, ok)
	}
	if _, ok := ParseSC(xmltree.Elem("notsc")); ok {
		t.Error("non-sc element parsed")
	}
	if _, ok := ParseSC(xmltree.Elem(SCLabel)); ok {
		t.Error("sc without service attr parsed")
	}
}

func TestHasCalls(t *testing.T) {
	doc := xmltree.MustParse(`<root attr1="x"><sc service="storage" address="site"><parameters/></sc></root>`)
	if !HasCalls(doc) {
		t.Error("HasCalls should be true")
	}
	if HasCalls(xmltree.MustParse(`<root><plain/></root>`)) {
		t.Error("HasCalls should be false")
	}
}

// TestMaterializePaperExample reproduces the Section 4 document: the sc
// subtree is replaced by <c><d>...</d></c>, after which //c/d matches.
func TestMaterializePaperExample(t *testing.T) {
	r := storageService(t)
	doc := xmltree.MustParse(
		`<root attr1="x" attr2="y"><sc service="storage" address="site"><parameters/></sc></root>`)
	n, err := r.Materialize(doc)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if doc.Child("sc") != nil {
		t.Error("sc element not replaced")
	}
	if doc.Child("c") == nil || doc.Child("c").Child("d") == nil {
		t.Errorf("replacement missing: %s", doc)
	}
	if r.Calls() != 1 {
		t.Errorf("calls = %d", r.Calls())
	}
}

func TestMaterializeSpliceResult(t *testing.T) {
	r := NewRegistry()
	r.Register("multi", func(Call) (*xmltree.Node, error) {
		res := xmltree.Elem("#result")
		res.Append(xmltree.Elem("a"), xmltree.Elem("b"))
		return res, nil
	})
	doc := xmltree.MustParse(`<root><sc service="multi"/></root>`)
	if _, err := r.Materialize(doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Children) != 2 || doc.Children[0].Label != "a" || doc.Children[1].Label != "b" {
		t.Errorf("splice wrong: %s", doc)
	}
}

func TestMaterializeNilResultRemovesSC(t *testing.T) {
	r := NewRegistry()
	r.Register("void", func(Call) (*xmltree.Node, error) { return nil, nil })
	doc := xmltree.MustParse(`<root><sc service="void"/><keep/></root>`)
	if _, err := r.Materialize(doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Children) != 1 || doc.Children[0].Label != "keep" {
		t.Errorf("doc = %s", doc)
	}
}

func TestMaterializeNestedResults(t *testing.T) {
	r := NewRegistry()
	r.Register("outer", func(Call) (*xmltree.Node, error) {
		return xmltree.MustParse(`<wrap><sc service="inner"/></wrap>`), nil
	})
	r.Register("inner", func(Call) (*xmltree.Node, error) {
		return xmltree.MustParse(`<leaf/>`), nil
	})
	doc := xmltree.MustParse(`<root><sc service="outer"/></root>`)
	n, err := r.Materialize(doc)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v doc=%s", n, err, doc)
	}
	if doc.Child("wrap") == nil || doc.Child("wrap").Child("leaf") == nil {
		t.Errorf("doc = %s", doc)
	}
}

func TestMaterializeCycleGuard(t *testing.T) {
	r := NewRegistry()
	r.Register("loop", func(Call) (*xmltree.Node, error) {
		return xmltree.MustParse(`<w><sc service="loop"/></w>`), nil
	})
	doc := xmltree.MustParse(`<root><sc service="loop"/></root>`)
	if _, err := r.Materialize(doc); err == nil {
		t.Error("cyclic materialization should fail")
	}
}

func TestMaterializeUnknownService(t *testing.T) {
	r := NewRegistry()
	doc := xmltree.MustParse(`<root><sc service="nope"/></root>`)
	_, err := r.Materialize(doc)
	if err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Errorf("err = %v", err)
	}
	if r.Calls() != 0 {
		t.Error("failed lookup should not count as a call")
	}
}

func TestResetCalls(t *testing.T) {
	r := storageService(t)
	doc := xmltree.MustParse(`<root><sc service="storage"/></root>`)
	if _, err := r.Materialize(doc); err != nil {
		t.Fatal(err)
	}
	r.ResetCalls()
	if r.Calls() != 0 {
		t.Error("ResetCalls failed")
	}
}

func TestMaterializeNoCallsIsNoop(t *testing.T) {
	r := storageService(t)
	doc := xmltree.MustParse(`<root a="1"><x/></root>`)
	before := doc.String()
	n, err := r.Materialize(doc)
	if err != nil || n != 0 || doc.String() != before {
		t.Errorf("n=%d err=%v doc=%s", n, err, doc)
	}
}
