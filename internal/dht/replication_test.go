package dht

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringWith(t *testing.T, k int, names ...string) *Ring {
	t.Helper()
	r := New()
	r.SetReplication(k)
	for _, n := range names {
		if err := r.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestReplicationCopiesKeys(t *testing.T) {
	r := ringWith(t, 3, "a", "b", "c", "d", "e")
	for i := 0; i < 20; i++ {
		if err := r.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, n := range r.Nodes() {
		total += r.KeysAt(n)
	}
	if total != 20*3 {
		t.Errorf("total stored copies = %d, want 60", total)
	}
}

func TestFailLosesKeysWithoutReplication(t *testing.T) {
	r := ringWith(t, 1, "a", "b", "c")
	r.Put("k", "v")
	owner, _ := r.Owner("k")
	if err := r.Fail(owner); err != nil {
		t.Fatal(err)
	}
	vals, _, err := r.Get("", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 {
		t.Errorf("unreplicated key survived its owner's crash: %v", vals)
	}
}

func TestFailKeepsKeysWithReplication(t *testing.T) {
	r := ringWith(t, 2, "a", "b", "c", "d", "e")
	for i := 0; i < 10; i++ {
		r.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("v%d", i))
	}
	// Crash every node but two, one at a time; with 2 copies per key and
	// re-replication after each failure, no key is ever lost.
	for _, victim := range []string{"a", "b", "c"} {
		if err := r.Fail(victim); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("key-%d", i)
			vals, _, err := r.Get("", key)
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != 1 || vals[0] != fmt.Sprintf("v%d", i) {
				t.Fatalf("after failing %s, %s = %v", victim, key, vals)
			}
		}
	}
	// Every surviving key is back at full replication.
	total := 0
	for _, n := range r.Nodes() {
		total += r.KeysAt(n)
	}
	if total != 10*2 {
		t.Errorf("copies after re-replication = %d, want 20", total)
	}
}

func TestFailFiresLeaveHook(t *testing.T) {
	r := ringWith(t, 2, "a", "b", "c")
	var left []string
	r.OnMembership(hookFuncs{join: func(string) {}, leave: func(p string) { left = append(left, p) }})
	if err := r.Fail("b"); err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 || left[0] != "b" {
		t.Errorf("leave hooks = %v", left)
	}
	if err := r.Fail("b"); err == nil {
		t.Error("failing a non-member should error")
	}
}

func TestJoinAfterFailRestoresPlacement(t *testing.T) {
	r := ringWith(t, 2, "a", "b", "c")
	r.Put("k", "v1")
	r.Put("k", "v2")
	if err := r.Fail("b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Join("d"); err != nil {
		t.Fatal(err)
	}
	vals, _, err := r.Get("d", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "v1" || vals[1] != "v2" {
		t.Errorf("values after churn = %v, want [v1 v2] in order", vals)
	}
}

// TestIncrementalPlacementInvariant hammers the ring with random
// membership churn and puts, checking after every operation that each
// key sits on exactly its replica set (min(k, nodes) copies) with all
// its values intact — i.e. the local neighborhood rebalance never
// under- or over-replicates compared to the placement rule.
func TestIncrementalPlacementInvariant(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		rng := rand.New(rand.NewSource(int64(40 + k)))
		r := New()
		r.SetReplication(k)
		members := []string{}
		expected := map[string][]string{}
		nextPeer, nextKey := 0, 0
		join := func() {
			name := fmt.Sprintf("n%d", nextPeer)
			nextPeer++
			if err := r.Join(name); err != nil {
				t.Fatal(err)
			}
			members = append(members, name)
		}
		for i := 0; i < 4; i++ {
			join()
		}
		for op := 0; op < 120; op++ {
			switch c := rng.Intn(4); {
			case c == 0 && len(members) < 12:
				join()
			case c == 1 && len(members) > k+2:
				i := rng.Intn(len(members))
				if err := r.Leave(members[i]); err != nil {
					t.Fatal(err)
				}
				members = append(members[:i], members[i+1:]...)
			case c == 2 && k >= 2 && len(members) > k+2:
				// With k copies and one failure at a time, no key may be
				// lost: re-replication restores the count before the
				// next churn event.
				i := rng.Intn(len(members))
				if err := r.Fail(members[i]); err != nil {
					t.Fatal(err)
				}
				members = append(members[:i], members[i+1:]...)
			default:
				key := fmt.Sprintf("key-%d", nextKey%15)
				nextKey++
				val := fmt.Sprintf("v%d", op)
				if err := r.Put(key, val); err != nil {
					t.Fatal(err)
				}
				expected[key] = append(expected[key], val)
			}
			// Invariant: every key readable with all values in order...
			for key, want := range expected {
				got, _, err := r.Get("", key)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("k=%d op=%d: %s = %v, want %v", k, op, key, got, want)
				}
			}
			// ...and exactly min(k, nodes) copies of each key overall.
			copies := 0
			for _, m := range members {
				copies += r.KeysAt(m)
			}
			wantPer := k
			if wantPer > len(members) {
				wantPer = len(members)
			}
			if copies != len(expected)*wantPer {
				t.Fatalf("k=%d op=%d: total copies = %d, want %d keys × %d",
					k, op, copies, len(expected), wantPer)
			}
		}
	}
}

func TestSetReplicationClampsAndRebalances(t *testing.T) {
	r := ringWith(t, 1, "a", "b", "c")
	r.Put("k", "v")
	r.SetReplication(0) // clamped to 1
	if got := r.Replication(); got != 1 {
		t.Errorf("replication = %d, want 1", got)
	}
	r.SetReplication(5) // more copies than nodes: one per node
	total := 0
	for _, n := range r.Nodes() {
		total += r.KeysAt(n)
	}
	if total != 3 {
		t.Errorf("copies = %d, want one per node", total)
	}
}
