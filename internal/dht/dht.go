// Package dht implements the distributed hash table substrate that KadoP
// (the paper's P2P XML index, [3]) builds on: a Chord-style ring over a
// 64-bit identifier space with consistent hashing, finger-based greedy
// routing (hop counts are the scalability measure of bench C9), key
// migration on membership changes, and join/leave notification hooks that
// feed the paper's areRegistered membership stream.
//
// Two elasticity mechanisms ride on top of the plain ring (both off by
// default, so the classic single-token placement stays available as the
// experimental baseline):
//
//   - Virtual nodes (SetVirtual): every peer owns v tokens on the ring
//     instead of one, so key ownership fragments into small arcs and a
//     join/leave hands off only ~K/n keys instead of a whole successor
//     arc. Handoffs() counts the copies that actually moved.
//
//   - Bounded-load placement (SetLoadBound): a key's primary copy goes to
//     the first successor whose primary-key count is below c·K/n
//     (consistent hashing with bounded loads), which caps any node's
//     share of the checkpoint/descriptor write traffic at c× the mean —
//     the anti-hotspot guarantee the X3 experiment measures.
//
// The ring's state lives in one process — the routing *metric* (hops,
// per-node key placement) is simulated faithfully while transport is
// in-memory, consistent with the simnet substitution documented in
// DESIGN.md.
package dht

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"

	"p2pm/internal/telemetry"
)

// ID is a position on the ring.
type ID uint64

// HashID maps a string to its ring position.
func HashID(s string) ID {
	h := fnv.New64a()
	h.Write([]byte(s))
	return ID(h.Sum64())
}

// vnodeID is the ring position of a peer's i-th virtual token. Token 0
// keeps the peer's classic position, so enabling virtual nodes only adds
// arcs — it never moves the base token.
func vnodeID(name string, i int) ID {
	if i == 0 {
		return HashID(name)
	}
	return HashID(name + "#" + strconv.Itoa(i))
}

// fingerBits is the identifier-space width: fingers are successors of
// n + 2^i for i < fingerBits.
const fingerBits = 64

// MembershipHook observes peers joining and leaving the ring.
type MembershipHook interface {
	NotifyJoin(peer string)
	NotifyLeave(peer string)
}

// Load counts the DHT requests a node served as a key's primary holder —
// the per-peer service cost the spreading mechanisms bound.
type Load struct {
	Puts uint64
	Gets uint64
}

// Total is puts plus gets.
func (l Load) Total() uint64 { return l.Puts + l.Gets }

type node struct {
	id    ID
	name  string
	store map[string][]string
	// primaries counts, per key class, the keys whose primary copy this
	// node holds (maintained in bounded-load mode, where placement must
	// respect it). The bound is per class: key classes have wildly
	// different write rates (a checkpoint key is rewritten every sweep,
	// a descriptor once), so capping the mixed total would still let
	// one node hoard the hot class.
	primaries map[string]int
	// served accumulates request counters by key class ("ckpt", "def",
	// "replica", ...).
	served map[string]*Load
}

func (n *node) primaryCount(class string) int {
	return n.primaries[class]
}

func (n *node) addPrimary(class string) {
	if n.primaries == nil {
		n.primaries = make(map[string]int)
	}
	n.primaries[class]++
}

func (n *node) serve(class string) *Load {
	if n.served == nil {
		n.served = make(map[string]*Load)
	}
	l := n.served[class]
	if l == nil {
		l = &Load{}
		n.served[class] = l
	}
	return l
}

// keyClass buckets keys by their index-namespace prefix (up to the first
// '|'), matching kadop's key scheme; the whole key when it has none.
func keyClass(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[:i]
		}
	}
	return key
}

// vnode is one ring token: a position owned by a physical node.
type vnode struct {
	id   ID
	phys *node
}

// Ring is a Chord-style DHT.
type Ring struct {
	mu          sync.RWMutex
	nodes       []*node // physical members, sorted by base id
	vnodes      []vnode // ring tokens, sorted by id
	byKey       map[string]*node
	hooks       []MembershipHook
	replication int     // copies per key: primary + replication-1 distinct successors
	virtual     int     // ring tokens per member (1 = classic placement)
	loadBound   float64 // bounded-load capacity factor c (0 = unbounded)
	primary     map[string]*node
	classKeys   map[string]int // distinct keys per class (bounded mode)

	// readCache, when enabled, remembers per reader which member served
	// a key's primary copy, so repeat bounded-load reads skip the
	// successor-scan hops past full members. Any membership or placement
	// change invalidates it wholesale — a cached holder is only ever
	// trusted if it is still a member and still stores the key.
	readCache map[string]map[string]*node
	cacheHits uint64

	handoffs uint64
	lookups  uint64
	hops     uint64

	tele *ringMetrics // nil unless Instrument was called
}

// ringMetrics are the ring's telemetry handles, mirroring the internal
// counters the experiments read.
type ringMetrics struct {
	puts, gets, handoffs, cacheHits, lookups, hops *telemetry.Counter
}

// Instrument registers the ring's service counters (dht_puts_total,
// dht_gets_total, dht_handoffs_total, dht_cache_hits_total,
// dht_lookups_total, dht_hops_total) with the telemetry registry.
// Idempotent; uninstrumented rings pay nothing.
func (r *Ring) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tele = &ringMetrics{
		puts:      reg.Counter("dht_puts_total"),
		gets:      reg.Counter("dht_gets_total"),
		handoffs:  reg.Counter("dht_handoffs_total"),
		cacheHits: reg.Counter("dht_cache_hits_total"),
		lookups:   reg.Counter("dht_lookups_total"),
		hops:      reg.Counter("dht_hops_total"),
	}
}

// New returns an empty ring with no replication (one copy per key), one
// token per member, and unbounded placement.
func New() *Ring {
	return &Ring{
		byKey:       make(map[string]*node),
		replication: 1,
		virtual:     1,
		primary:     make(map[string]*node),
		classKeys:   make(map[string]int),
	}
}

// SetReplication sets the number of copies kept per key (primary plus
// k-1 distinct successors) and rebalances existing keys. k < 1 is
// clamped to 1. Replication is what lets stream-definition lookups keep
// working when a node crashes (Fail) instead of leaving gracefully.
func (r *Ring) SetReplication(k int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k < 1 {
		k = 1
	}
	r.replication = k
	r.rebalanceLocked(nil)
}

// Replication returns the configured copies per key.
func (r *Ring) Replication() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.replication
}

// SetVirtual sets the number of ring tokens per member (clamped to >= 1)
// and rebalances: existing arcs fragment, so subsequent joins and leaves
// hand off ~K/n keys instead of whole successor arcs. v = 1 restores the
// classic one-token placement.
func (r *Ring) SetVirtual(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v < 1 {
		v = 1
	}
	if v == r.virtual {
		return
	}
	r.virtual = v
	r.rebuildVnodesLocked()
	r.rebalanceLocked(nil)
}

// Virtual returns the tokens per member.
func (r *Ring) Virtual() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.virtual
}

// SetLoadBound enables bounded-load placement: a key's primary copy goes
// to the first successor holding fewer than ceil(c·K/n) primaries, so no
// member's share of the write/read traffic exceeds ~c× the mean. c <= 0
// disables the bound. Changing the bound re-places every key.
func (r *Ring) SetLoadBound(c float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c < 0 {
		c = 0
	}
	if c == r.loadBound {
		return
	}
	r.loadBound = c
	r.rebalanceLocked(nil)
}

// LoadBound returns the bounded-load capacity factor (0 = unbounded).
func (r *Ring) LoadBound() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.loadBound
}

// EnableReadCache turns on per-reader caching of resolved primary
// locations for the bounded-load read path: the first Get pays the
// successor-scan hops past full members, repeats from the same reader
// go straight to the remembered holder. The cache is invalidated on
// every membership or placement change (join, leave, fail, rebalance),
// so it can serve stale routes only within one membership epoch — and
// even then a hit is verified against the live store before trusting it.
func (r *Ring) EnableReadCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.readCache == nil {
		r.readCache = make(map[string]map[string]*node)
	}
}

// ReadCacheHits returns how many bounded-load reads the location cache
// short-circuited.
func (r *Ring) ReadCacheHits() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cacheHits
}

// invalidateReadCacheLocked drops every cached location (membership or
// placement changed).
func (r *Ring) invalidateReadCacheLocked() {
	if r.readCache != nil && len(r.readCache) > 0 {
		r.readCache = make(map[string]map[string]*node)
	}
}

// cachedHolderLocked returns the remembered holder of key for reader,
// if it is still a member whose store has the key.
func (r *Ring) cachedHolderLocked(reader, key string) *node {
	if r.readCache == nil || reader == "" {
		return nil
	}
	n := r.readCache[reader][key]
	if n == nil || r.byKey[n.name] != n || len(n.store[key]) == 0 {
		return nil
	}
	return n
}

func (r *Ring) rememberHolderLocked(reader, key string, n *node) {
	if r.readCache == nil || reader == "" || n == nil {
		return
	}
	m := r.readCache[reader]
	if m == nil {
		m = make(map[string]*node)
		r.readCache[reader] = m
	}
	m[key] = n
}

// OnMembership registers a membership hook.
func (r *Ring) OnMembership(h MembershipHook) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, h)
}

// Size returns the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns member names in base-token ring order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.name
	}
	return out
}

// Join adds a peer to the ring, migrating the keys it now owns from its
// successors, and fires join hooks. With virtual nodes or bounded load
// enabled the handoff is a deterministic full re-placement (sorted key
// order); the number of copies that actually moved is visible via
// Handoffs().
func (r *Ring) Join(name string) error {
	r.mu.Lock()
	if _, dup := r.byKey[name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("dht: %s already joined", name)
	}
	n := &node{id: HashID(name), name: name, store: make(map[string][]string)}
	if prev := r.findByID(n.id); prev != nil {
		r.mu.Unlock()
		return fmt.Errorf("dht: id collision between %s and %s", name, prev.name)
	}
	nidx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= n.id })
	r.nodes = append(r.nodes, nil)
	copy(r.nodes[nidx+1:], r.nodes[nidx:])
	r.nodes[nidx] = n
	r.byKey[name] = n
	baseIdx := r.insertVnodesLocked(n)
	if r.spreadLocked() {
		r.rebalanceLocked(nil)
	} else {
		// The new node takes over the keys it now owns (and, with
		// replication, drops out-of-range copies from old replica sets).
		// Only keys stored in the neighborhood of the insertion point can
		// be affected, so the rebalance is local, not full-ring.
		r.neighborhoodRebalanceLocked(baseIdx, nil)
	}
	hooks := append([]MembershipHook(nil), r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h.NotifyJoin(name)
	}
	return nil
}

// Leave removes a peer gracefully, migrating its keys to their new
// owners, and fires leave hooks.
func (r *Ring) Leave(name string) error {
	return r.remove(name, true)
}

// Fail removes a crashed peer: unlike Leave, the node gets no chance to
// migrate its store — its copies are simply gone. Keys survive only if
// replication keeps other copies; the rebalance re-replicates them onto
// the new replica sets so lookups keep working during churn. Leave hooks
// fire (the membership stream reports the departure either way).
func (r *Ring) Fail(name string) error {
	return r.remove(name, false)
}

func (r *Ring) remove(name string, graceful bool) error {
	r.mu.Lock()
	n, ok := r.byKey[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("dht: %s is not a member", name)
	}
	delete(r.byKey, name)
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= n.id })
	r.nodes = append(r.nodes[:idx], r.nodes[idx+1:]...)
	baseIdx := r.removeVnodesLocked(n)
	extra := n.store
	if !graceful {
		// A crashed node's copies are lost; surviving replicas in the
		// neighborhood re-seed the new replica sets.
		extra = nil
	}
	if r.spreadLocked() {
		r.rebalanceLocked(extra)
	} else {
		r.neighborhoodRebalanceLocked(baseIdx, extra)
	}
	hooks := append([]MembershipHook(nil), r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h.NotifyLeave(name)
	}
	return nil
}

// spreadLocked reports whether placement uses the elastic machinery
// (virtual tokens or bounded load), which rebalances by deterministic
// full re-placement instead of the classic local neighborhood scan.
func (r *Ring) spreadLocked() bool { return r.virtual > 1 || r.loadBound > 0 }

// rebuildVnodesLocked regenerates every member's tokens (after a
// SetVirtual change).
func (r *Ring) rebuildVnodesLocked() {
	r.vnodes = r.vnodes[:0]
	for _, n := range r.nodes {
		r.insertVnodesLocked(n)
	}
}

// insertVnodesLocked adds a member's tokens to the sorted token list and
// returns the final index of its base token. Token-id collisions with
// already-placed tokens are skipped (FNV collisions across 64 bits are
// vanishingly rare; dropping a secondary token only costs balance).
func (r *Ring) insertVnodesLocked(n *node) int {
	for i := 0; i < r.virtual; i++ {
		id := vnodeID(n.name, i)
		idx := sort.Search(len(r.vnodes), func(j int) bool { return r.vnodes[j].id >= id })
		if idx < len(r.vnodes) && r.vnodes[idx].id == id {
			continue
		}
		r.vnodes = append(r.vnodes, vnode{})
		copy(r.vnodes[idx+1:], r.vnodes[idx:])
		r.vnodes[idx] = vnode{id: id, phys: n}
	}
	return sort.Search(len(r.vnodes), func(j int) bool { return r.vnodes[j].id >= n.id })
}

// removeVnodesLocked drops a member's tokens and returns the index its
// base token occupied (the neighborhood-rebalance anchor).
func (r *Ring) removeVnodesLocked(n *node) int {
	base := sort.Search(len(r.vnodes), func(j int) bool { return r.vnodes[j].id >= n.id })
	kept := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.phys != n {
			kept = append(kept, v)
		}
	}
	r.vnodes = kept
	if base > len(r.vnodes) {
		base = len(r.vnodes)
	}
	return base
}

// capacityLocked is the per-class bounded-load primary cap for a ring
// holding keys distinct keys of that class: ceil(c·keys/n), at least 1.
func (r *Ring) capacityLocked(keys int) int {
	if r.loadBound <= 0 || len(r.nodes) == 0 {
		return int(^uint(0) >> 1)
	}
	cap := int(math.Ceil(r.loadBound * float64(keys) / float64(len(r.nodes))))
	if cap < 1 {
		cap = 1
	}
	return cap
}

// rebalanceLocked reassigns every stored key to its current replica set.
// extra, when non-nil, contributes the store of a gracefully departing
// node. Keys are placed in sorted order so bounded-load placement (which
// depends on placement order) is deterministic. Values keep their order
// (readers rely on "latest wins"); identical values held by multiple
// replicas merge to one copy. Copies landing on a node that did not hold
// the key count as handoffs.
func (r *Ring) rebalanceLocked(extra map[string][]string) {
	r.invalidateReadCacheLocked()
	r.primary = make(map[string]*node)
	r.classKeys = make(map[string]int)
	for _, n := range r.nodes {
		n.primaries = nil
	}
	if len(r.nodes) == 0 {
		return
	}
	merged := make(map[string][]string)
	prev := make(map[string]map[*node]bool)
	for _, n := range r.nodes {
		for k, vs := range n.store {
			merged[k] = mergeVals(merged[k], vs)
			if prev[k] == nil {
				prev[k] = make(map[*node]bool)
			}
			prev[k][n] = true
		}
	}
	for k, vs := range extra {
		merged[k] = mergeVals(merged[k], vs)
	}
	for _, n := range r.nodes {
		n.store = make(map[string][]string)
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	classTotal := make(map[string]int)
	for _, k := range keys {
		classTotal[keyClass(k)]++
	}
	for _, k := range keys {
		for _, n := range r.assignLocked(k, r.capacityLocked(classTotal[keyClass(k)])) {
			n.store[k] = append([]string(nil), merged[k]...)
			if !prev[k][n] {
				r.handoffs++
				if r.tele != nil {
					r.tele.handoffs.Inc()
				}
			}
		}
	}
}

// neighborhoodRebalanceLocked re-places the keys affected by a
// membership change at token position idx — the classic (one token per
// member, unbounded) path. A key's replica set is a contiguous run of
// successors of its hash, so only keys whose window crosses the change
// point can gain or lose a holder, and their surviving copies live
// within replication-1 positions before idx or replication positions
// after it — the rest of the ring is untouched. extra contributes the
// store of a gracefully departed node.
func (r *Ring) neighborhoodRebalanceLocked(idx int, extra map[string][]string) {
	r.invalidateReadCacheLocked()
	n := len(r.vnodes)
	if n == 0 {
		return
	}
	k := r.replication
	if k > n {
		k = n
	}
	span := 2 * k
	if span > n {
		span = n
	}
	start := ((idx-(k-1))%n + n) % n
	merged := make(map[string][]string)
	scanned := make([]*node, 0, span)
	for i := 0; i < span; i++ {
		nd := r.vnodes[(start+i)%n].phys
		scanned = append(scanned, nd)
		for key, vs := range nd.store {
			merged[key] = mergeVals(merged[key], vs)
		}
	}
	for key, vs := range extra {
		merged[key] = mergeVals(merged[key], vs)
	}
	for key, vs := range merged {
		desired := r.replicaSetLocked(HashID(key))
		inDesired := make(map[*node]bool, len(desired))
		for _, d := range desired {
			inDesired[d] = true
			if _, had := d.store[key]; !had {
				r.handoffs++
				if r.tele != nil {
					r.tele.handoffs.Inc()
				}
			}
			d.store[key] = append([]string(nil), vs...)
		}
		for _, s := range scanned {
			if !inDesired[s] {
				delete(s.store, key)
			}
		}
	}
}

// mergeVals appends the values of src not already in dst, preserving
// order.
func mergeVals(dst, src []string) []string {
	seen := make(map[string]bool, len(dst))
	for _, v := range dst {
		seen[v] = true
	}
	for _, v := range src {
		if !seen[v] {
			dst = append(dst, v)
			seen[v] = true
		}
	}
	return dst
}

// distinctSuccessorsLocked walks the token ring from id's successor and
// returns up to max distinct physical members in encounter order.
func (r *Ring) distinctSuccessorsLocked(id ID, max int) []*node {
	if len(r.vnodes) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.nodes) {
		max = len(r.nodes)
	}
	idx := r.insertionPoint(id)
	if idx == len(r.vnodes) {
		idx = 0
	}
	out := make([]*node, 0, max)
	seen := make(map[*node]bool, max)
	for i := 0; i < len(r.vnodes) && len(out) < max; i++ {
		p := r.vnodes[(idx+i)%len(r.vnodes)].phys
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// replicaSetLocked returns the nodes holding a key placed at its hash:
// the successor owner and the next replication-1 distinct members.
func (r *Ring) replicaSetLocked(id ID) []*node {
	k := r.replication
	if k > len(r.nodes) {
		k = len(r.nodes)
	}
	return r.distinctSuccessorsLocked(id, k)
}

// assignLocked chooses a key's replica set fresh (rebalance, or first
// write of a new key): the primary is the first successor below the
// bounded-load capacity (the plain successor when unbounded, or when
// every member is at capacity), replicas are the next distinct members
// after it. Records the primary and its load count.
func (r *Ring) assignLocked(key string, cap int) []*node {
	// Unbounded placement needs only the replica-set prefix; the full
	// distinct-member walk is materialized only when the bounded walk
	// may have to skip past full members.
	want := r.replication
	if r.loadBound > 0 {
		want = len(r.nodes)
	}
	physes := r.distinctSuccessorsLocked(HashID(key), want)
	if len(physes) == 0 {
		return nil
	}
	class := keyClass(key)
	pi := 0
	if r.loadBound > 0 {
		for i, p := range physes {
			if p.primaryCount(class) < cap {
				pi = i
				break
			}
		}
	}
	k := r.replication
	if k > len(physes) {
		k = len(physes)
	}
	out := make([]*node, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, physes[(pi+i)%len(physes)])
	}
	r.primary[key] = out[0]
	out[0].addPrimary(class)
	r.classKeys[class]++
	return out
}

// placeLocked resolves a key's replica set for a write: the recorded
// bounded-load placement when one exists (placement is sticky between
// membership changes), a fresh assignment for a new key, or the plain
// hash replica set when unbounded.
func (r *Ring) placeLocked(key string) []*node {
	if len(r.nodes) == 0 {
		return nil
	}
	if r.loadBound <= 0 {
		return r.replicaSetLocked(HashID(key))
	}
	if p, ok := r.primary[key]; ok && r.byKey[p.name] == p {
		physes := r.distinctSuccessorsLocked(HashID(key), len(r.nodes))
		for i, cand := range physes {
			if cand == p {
				k := r.replication
				if k > len(physes) {
					k = len(physes)
				}
				out := make([]*node, 0, k)
				for j := 0; j < k; j++ {
					out = append(out, physes[(i+j)%len(physes)])
				}
				return out
			}
		}
	}
	return r.assignLocked(key, r.capacityLocked(r.classKeys[keyClass(key)]+1))
}

func (r *Ring) findByID(id ID) *node {
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= id })
	if idx < len(r.nodes) && r.nodes[idx].id == id {
		return r.nodes[idx]
	}
	return nil
}

// insertionPoint locates id in the token ring.
func (r *Ring) insertionPoint(id ID) int {
	return sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].id >= id })
}

// ownerLocked returns the member whose token succeeds id (the hash
// owner of a key, before any bounded-load adjustment).
func (r *Ring) ownerLocked(id ID) *node {
	if len(r.vnodes) == 0 {
		return nil
	}
	idx := r.insertionPoint(id)
	if idx == len(r.vnodes) {
		idx = 0
	}
	return r.vnodes[idx].phys
}

// Owner returns the name of the node holding a key's primary copy: the
// recorded bounded-load placement when one exists, the hash owner
// otherwise.
func (r *Ring) Owner(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.loadBound > 0 {
		if p, ok := r.primary[key]; ok && r.byKey[p.name] == p {
			return p.name, nil
		}
	}
	n := r.ownerLocked(HashID(key))
	if n == nil {
		return "", fmt.Errorf("dht: empty ring")
	}
	return n.name, nil
}

// Put appends a value under a key at the key's primary and, with
// replication enabled, at the replica successors.
func (r *Ring) Put(key, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.placeLocked(key)
	if len(set) == 0 {
		return fmt.Errorf("dht: empty ring")
	}
	for _, n := range set {
		n.store[key] = append(n.store[key], value)
	}
	set[0].serve(keyClass(key)).Puts++
	if r.tele != nil {
		r.tele.puts.Inc()
	}
	return nil
}

// Set replaces the values stored under a key with the single given
// value, at the primary and every replica successor — the latest-wins
// single-record keys (operator checkpoints) that would otherwise grow
// one appended copy per write.
func (r *Ring) Set(key, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.placeLocked(key)
	if len(set) == 0 {
		return fmt.Errorf("dht: empty ring")
	}
	for _, n := range set {
		n.store[key] = []string{value}
	}
	set[0].serve(keyClass(key)).Puts++
	if r.tele != nil {
		r.tele.puts.Inc()
	}
	return nil
}

// Holders returns the names of the nodes whose store currently holds the
// key, in base-token ring order — the replica-placement introspection
// the re-replication tests use.
func (r *Ring) Holders(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, n := range r.nodes {
		if len(n.store[key]) > 0 {
			out = append(out, n.name)
		}
	}
	return out
}

// Get returns all values stored under key and the routing hop count a
// real lookup from `from` would incur (greedy finger routing). An empty
// `from` starts at the first ring node. In bounded-load mode the lookup
// walks the successor list past full members until it finds the primary,
// paying one extra hop per member skipped — the read-side cost of the
// placement freedom.
func (r *Ring) Get(from, key string) ([]string, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.nodes) == 0 {
		return nil, 0, fmt.Errorf("dht: empty ring")
	}
	target := HashID(key)
	start := r.nodes[0]
	if from != "" {
		if n, ok := r.byKey[from]; ok {
			start = n
		}
	}
	hops := r.routeLocked(start, target)
	r.lookups++
	r.hops += uint64(hops)
	if r.tele != nil {
		r.tele.lookups.Inc()
		r.tele.hops.Add(uint64(hops))
	}
	var vals []string
	var serving *node
	if r.loadBound > 0 {
		// The reader's location cache short-circuits the successor scan:
		// a remembered (and still valid) holder costs no extra hops.
		if n := r.cachedHolderLocked(from, key); n != nil {
			vals = append([]string(nil), n.store[key]...)
			serving = n
			r.cacheHits++
			if r.tele != nil {
				r.tele.cacheHits.Inc()
			}
		}
		if serving == nil {
			for i, n := range r.distinctSuccessorsLocked(target, len(r.nodes)) {
				if len(n.store[key]) > 0 {
					vals = append([]string(nil), n.store[key]...)
					serving = n
					hops += i
					r.hops += uint64(i)
					if r.tele != nil {
						r.tele.hops.Add(uint64(i))
					}
					r.rememberHolderLocked(from, key, n)
					break
				}
			}
		}
		if serving == nil {
			serving = r.ownerLocked(target)
		}
	} else {
		owner := r.ownerLocked(target)
		serving = owner
		vals = append([]string(nil), owner.store[key]...)
		if len(vals) == 0 && r.replication > 1 {
			// Owner miss (e.g. mid-churn before a rebalance): one extra hop
			// to a replica successor still answers the lookup.
			for _, n := range r.replicaSetLocked(target)[1:] {
				if len(n.store[key]) > 0 {
					vals = append(vals, n.store[key]...)
					serving = n
					hops++
					r.hops++
					break
				}
			}
		}
	}
	serving.serve(keyClass(key)).Gets++
	if r.tele != nil {
		r.tele.gets.Inc()
	}
	return vals, hops, nil
}

// routeLocked simulates Chord greedy routing from start to the owner of
// target, returning the hop count. Each step jumps to the closest
// preceding finger, computed on demand from the token ring (equivalent
// to fully-converged finger tables). Moving between two tokens of the
// same member costs nothing — virtual nodes add arcs, not network hops.
func (r *Ring) routeLocked(start *node, target ID) int {
	if len(r.vnodes) == 0 {
		return 0
	}
	cur := r.insertionPoint(start.id)
	if cur >= len(r.vnodes) {
		cur = 0
	}
	hops := 0
	for steps := 0; steps <= len(r.vnodes); steps++ {
		succ := (cur + 1) % len(r.vnodes)
		// Done when target ∈ (cur, successor(cur)].
		if inHalfOpen(target, r.vnodes[cur].id, r.vnodes[succ].id) {
			if r.vnodes[succ].phys != r.vnodes[cur].phys {
				hops++
			}
			return hops
		}
		next := r.closestPrecedingLocked(cur, target)
		if next == cur {
			next = succ
		}
		if r.vnodes[next].phys != r.vnodes[cur].phys {
			hops++
		}
		cur = next
	}
	return hops
}

// closestPrecedingLocked returns the token index closest to (but
// preceding) target reachable from cur's fingers: the largest jump cur
// can make without overshooting.
func (r *Ring) closestPrecedingLocked(cur int, target ID) int {
	curID := r.vnodes[cur].id
	for i := fingerBits - 1; i >= 0; i-- {
		fingerStart := curID + (ID(1) << uint(i))
		idx := r.insertionPoint(fingerStart)
		if idx == len(r.vnodes) {
			idx = 0
		}
		// The finger must lie strictly within (cur, target) to make
		// progress.
		if id := r.vnodes[idx].id; id != curID && inOpen(id, curID, target) {
			return idx
		}
	}
	return cur
}

// inHalfOpen reports x ∈ (a, b] on the ring.
func inHalfOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: single token owns everything
}

// inOpen reports x ∈ (a, b) on the ring.
func inOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

// Successors returns up to max distinct member names starting at the
// key's hash owner, in ring-walk order — the candidate sequence that
// DHT-routed placement (aggregation-tree interiors) and bounded-load
// reads both walk. Deterministic per membership.
func (r *Ring) Successors(key string, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	nodes := r.distinctSuccessorsLocked(HashID(key), max)
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.name
	}
	return out
}

// Stats returns cumulative lookup count and total hops.
func (r *Ring) Stats() (lookups, hops uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookups, r.hops
}

// Handoffs returns the cumulative number of key copies that moved to a
// new holder across membership changes — the rebalance cost the
// virtual-node fragmentation keeps incremental.
func (r *Ring) Handoffs() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.handoffs
}

// ServiceLoad returns the per-member primary-copy request counters for
// one key class (e.g. "ckpt" for operator checkpoints). Every current
// member appears, including ones that served nothing — the denominator
// of the max-vs-mean spread measure.
func (r *Ring) ServiceLoad(class string) map[string]Load {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]Load, len(r.nodes))
	for _, n := range r.nodes {
		if l := n.served[class]; l != nil {
			out[n.name] = *l
		} else {
			out[n.name] = Load{}
		}
	}
	return out
}

// ResetServiceLoad zeroes every member's request counters (steady-state
// measurements that must exclude a warm-up or growth phase).
func (r *Ring) ResetServiceLoad() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		n.served = nil
	}
}

// KeysAt returns the number of keys stored on a node (placement check).
func (r *Ring) KeysAt(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n, ok := r.byKey[name]; ok {
		return len(n.store)
	}
	return 0
}

// PrimaryKeys returns the number of keys whose primary copy a member
// holds — the quantity bounded-load placement caps at ceil(c·K/n).
func (r *Ring) PrimaryKeys(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.byKey[name]
	if !ok {
		return 0
	}
	if r.loadBound > 0 {
		total := 0
		for _, c := range n.primaries {
			total += c
		}
		return total
	}
	count := 0
	for key := range n.store {
		if r.ownerLocked(HashID(key)) == n {
			count++
		}
	}
	return count
}
